package minoaner

import (
	"errors"
	"fmt"
	"io"

	"minoaner/internal/binio"
	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// Index snapshot format. A snapshot persists everything BuildIndex
// derives — the two built KBs, the block collections, and the complete
// match set — so a server process loads it and answers queries without
// re-parsing a single triple. Layout (see internal/binio for the
// section framing; every section is CRC32-checksummed):
//
//	magic "MSNP" | uvarint version | sections | end marker
//
//	section 1 (config):       the Config the index was built under,
//	                          followed by the section inventory (the
//	                          IDs of every section written) — the
//	                          checksummed defense against a corrupted
//	                          section ID making an optional section
//	                          silently vanish. Pre-inventory snapshots
//	                          end after the config fields and load
//	                          fine.
//	section 2 (kb1):          first KB, embedded KB binary (internal/kb;
//	                          includes retained source triples when the
//	                          KB is mutable)
//	section 3 (kb2):          second KB, embedded KB binary
//	section 4 (name-blocks):  B_N, embedded collection binary (internal/blocking)
//	section 5 (token-blocks): B_T after purging, embedded collection binary
//	section 6 (stats):        purge result and block accounting
//	section 7 (matches):      H1, H2, H3, final matches, H4 discard count
//	section 8 (prepared):     frozen left-side substrate of the delta
//	                          path (see Index.Prepare): the embedded
//	                          one-sided token/name index
//	                          (internal/blocking "MPS1") followed by the
//	                          frozen per-entity neighbor lists. Written
//	                          only when the substrate has been built.
//	section 9 (journal):      epoch number and the mutation journal —
//	                          one record per absorbed Upsert/Delete
//	                          since the last Compact. Written only for
//	                          indexes past epoch 0 (or with journal
//	                          entries, or a non-zero compaction count);
//	                          snapshots of mutated indexes persist the
//	                          *mutated* state in sections 1-8, so
//	                          readers that skip this section still
//	                          serve correct matches. After the entry
//	                          list the section may carry a trailing
//	                          extension — the Compact count and the
//	                          per-entry replay payloads (upsert deltas
//	                          as N-Triples lines) — that pre-extension
//	                          readers ignore; it is omitted when
//	                          everything in it would be empty, so
//	                          resaving a pre-extension snapshot
//	                          reproduces its bytes.
//	section 10 (sharding):    shard count and the per-shard owned-entity
//	                          counts of the URI-hash partition. Written
//	                          only for sharded indexes (K > 1); the
//	                          partition itself is re-derived
//	                          deterministically on load and checked
//	                          against the recorded counts. Readers that
//	                          skip this section (or snapshots from
//	                          before it) load as K = 1 — unsharded, with
//	                          identical answers.
//
// Compatibility promise: a reader accepts exactly the format versions
// it names (currently 1), skips unknown section IDs within them, and
// rejects everything else — including any payload whose checksum does
// not match — with an error wrapping ErrSnapshotCorrupt. Saving a
// loaded index reproduces the snapshot bit-for-bit, journal included.
// The prepared and journal sections are optional in both directions:
// snapshots from before they existed load fine, and older readers skip
// them unharmed.

var snapshotMagic = [4]byte{'M', 'S', 'N', 'P'}

const snapshotVersion = 1

// Section IDs of the snapshot frame.
//
//minoaner:sections writer=SaveIndex reader=LoadIndex
const (
	snapConfig      = 1
	snapKB1         = 2
	snapKB2         = 3
	snapNameBlocks  = 4
	snapTokenBlocks = 5
	snapStats       = 6
	snapMatches     = 7
	snapPrepared    = 8
	snapJournal     = 9
	snapSharding    = 10
)

// ErrSnapshotCorrupt is wrapped by every LoadIndex failure caused by
// damaged or incompatible data.
var ErrSnapshotCorrupt = errors.New("minoaner: corrupt index snapshot")

// SaveIndex writes the index snapshot. The encoding is deterministic:
// saving the same index (built or loaded) always produces the same
// bytes. SaveIndex captures a consistent epoch/journal pair: it
// briefly excludes mutations (readers are unaffected), so a snapshot
// never interleaves two epochs.
func SaveIndex(w io.Writer, ix *Index) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// A mapped index serializes from fully decoded structures — the
	// save must include sections the read path has not touched yet.
	if err := ix.materializeLocked(); err != nil {
		return err
	}
	e := ix.cur.Load()

	withJournal := e.seq > 0 || len(ix.journal) > 0 || ix.compactions.Load() > 0
	sections := []uint64{snapConfig, snapKB1, snapKB2, snapNameBlocks, snapTokenBlocks, snapStats, snapMatches}
	if e.prep != nil {
		sections = append(sections, snapPrepared)
	}
	if withJournal {
		sections = append(sections, snapJournal)
	}
	if e.shards > 1 {
		sections = append(sections, snapSharding)
	}

	bw := binio.NewWriter(w)
	bw.Raw(snapshotMagic[:])
	bw.Uvarint(snapshotVersion)
	bw.Section(snapConfig, func(enc *binio.Writer) {
		writeConfig(enc, e.cfg)
		enc.Int(len(sections))
		for _, id := range sections {
			enc.Uvarint(id)
		}
	})
	if err := writeEmbedded(bw, snapKB1, e.kb1.kb.WriteBinary); err != nil {
		return err
	}
	if err := writeEmbedded(bw, snapKB2, e.kb2.kb.WriteBinary); err != nil {
		return err
	}
	if err := writeEmbedded(bw, snapNameBlocks, e.nameBlocks.WriteBinary); err != nil {
		return err
	}
	if err := writeEmbedded(bw, snapTokenBlocks, e.tokenBlocks.WriteBinary); err != nil {
		return err
	}
	bw.Section(snapStats, func(enc *binio.Writer) {
		enc.Int(e.purge.Cutoff1)
		enc.Int(e.purge.Cutoff2)
		enc.Int(e.purge.RemovedBlocks)
		enc.Uvarint(uint64(e.purge.RemovedComparisons))
		enc.Int(e.nameBlockCount)
		enc.Int(e.tokenBlockCount)
		enc.Uvarint(uint64(e.nameComparisons))
		enc.Uvarint(uint64(e.tokenComparisons))
	})
	bw.Section(snapMatches, func(enc *binio.Writer) {
		writePairs(enc, e.h1)
		writePairs(enc, e.h2)
		writePairs(enc, e.h3)
		writePairs(enc, e.matches)
		enc.Int(e.discardedByH4)
	})
	if e.prep != nil {
		bw.Section(snapPrepared, func(enc *binio.Writer) {
			enc.Int(e.prep.Neighbors.N())
			enc.Embed(e.prep.Blocks.WriteBinary)
			writeNeighborLists(enc, e.prep.Neighbors.TopLists())
		})
	}
	if withJournal {
		bw.Section(snapJournal, func(enc *binio.Writer) {
			writeJournalSection(enc, e.seq, ix.journal, ix.compactions.Load())
		})
	}
	if e.shards > 1 {
		bw.Section(snapSharding, func(enc *binio.Writer) {
			enc.Int(e.shards)
			for _, c := range shardOwnerCounts(e) {
				enc.Int(c)
			}
		})
	}
	bw.End()
	return bw.Flush()
}

// shardOwnerCounts tallies how many KB1 entities each shard owns under
// the URI-hash partition — the snapshot's integrity check that a
// loading build partitions the KB exactly as the writing one did.
func shardOwnerCounts(e *epoch) []int {
	counts := make([]int, e.shards)
	var owners []int32
	if e.sharded != nil {
		owners = e.sharded.Owners()
	} else {
		owners = pipeline.ShardOwners(e.kb1.kb, e.shards)
	}
	for _, o := range owners {
		counts[o]++
	}
	return counts
}

// readShardingSection restores the shard count, re-derives the
// partitioned substrate, and verifies the recorded owner counts.
func readShardingSection(b *binio.Reader, ix *Index) error {
	k := b.Int()
	if b.Err() == nil && (k < 1 || k > 1<<16) {
		b.Fail("shard count %d out of range", k)
	}
	counts := make([]int, 0, min(k, 1<<16))
	for i := 0; i < k && b.Err() == nil; i++ {
		counts = append(counts, b.Int())
	}
	if err := b.Err(); err != nil {
		return fmt.Errorf("%w: sharding: %v", ErrSnapshotCorrupt, err)
	}
	ix.setShards(k)
	got := shardOwnerCounts(ix.cur.Load())
	for s, c := range counts {
		if got[s] != c {
			return fmt.Errorf("%w: sharding: shard %d owns %d entities, snapshot recorded %d",
				ErrSnapshotCorrupt, s, got[s], c)
		}
	}
	return nil
}

// writeNeighborLists encodes the frozen per-entity neighbor lists.
func writeNeighborLists(e *binio.Writer, top [][]kb.EntityID) {
	e.Int(len(top))
	for _, nbrs := range top {
		e.Int(len(nbrs))
		for _, id := range nbrs {
			e.Uvarint(uint64(id))
		}
	}
}

// readPreparedSection restores the prepared substrate of a snapshot,
// validating it against the already-loaded KB1 and config.
func readPreparedSection(b *binio.Reader, ix *Index) error {
	e := ix.cur.Load()
	prep, err := decodePreparedBody(b, e.kb1, e.cfg)
	if err != nil {
		return err
	}
	ix.setPreparedSide(prep)
	return nil
}

// decodePreparedBody decodes the prepared section's payload — shared
// by the eager load and the mapped index's first-demand decode.
func decodePreparedBody(b *binio.Reader, kb1 *KB, cfg Config) (*pipeline.Prepared, error) {
	n := b.Int()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: prepared: %v", ErrSnapshotCorrupt, err)
	}
	if n != cfg.internal().Params().N {
		return nil, fmt.Errorf("%w: prepared substrate frozen for N=%d, config has N=%d",
			ErrSnapshotCorrupt, n, cfg.N)
	}
	bp, err := blocking.ReadPrepared(b.Embedded())
	if err != nil {
		return nil, fmt.Errorf("%w: prepared: %v", ErrSnapshotCorrupt, err)
	}
	if bp.KBSize() != kb1.Len() {
		return nil, fmt.Errorf("%w: prepared substrate covers %d entities, KB1 has %d",
			ErrSnapshotCorrupt, bp.KBSize(), kb1.Len())
	}
	if bp.NameK() != cfg.NameAttributes {
		return nil, fmt.Errorf("%w: prepared substrate built with NameK=%d, config has %d",
			ErrSnapshotCorrupt, bp.NameK(), cfg.NameAttributes)
	}
	nEnt := b.Int()
	if b.Err() == nil && nEnt != kb1.Len() {
		b.Fail("neighbor lists cover %d entities, KB1 has %d", nEnt, kb1.Len())
	}
	top := make([][]kb.EntityID, 0, min(nEnt, 1<<20))
	for i := 0; i < nEnt && b.Err() == nil; i++ {
		cnt := b.Int()
		if cnt > kb1.Len() {
			b.Fail("neighbor list larger than the KB (%d > %d)", cnt, kb1.Len())
			break
		}
		nbrs := make([]kb.EntityID, 0, cnt)
		prev := int64(-1)
		for j := 0; j < cnt && b.Err() == nil; j++ {
			id := b.Uvarint()
			if id >= uint64(kb1.Len()) || int64(id) <= prev {
				b.Fail("neighbor %d out of order or range [0,%d)", id, kb1.Len())
				break
			}
			prev = int64(id)
			nbrs = append(nbrs, kb.EntityID(id))
		}
		top = append(top, nbrs)
	}
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: prepared: %v", ErrSnapshotCorrupt, err)
	}
	return &pipeline.Prepared{
		Blocks:    bp,
		Neighbors: kb.FrozenFromLists(kb1.kb, n, top),
	}, nil
}

// writeJournalSection encodes section 9: the epoch number and journal
// entries in the original layout, then — only when something in it
// would be non-empty — a trailing extension with the compaction count
// and the per-entry replay payloads. Pre-extension readers stop after
// the entry list and ignore the tail; omitting an all-empty tail keeps
// resaves of pre-extension snapshots bit-identical.
func writeJournalSection(enc *binio.Writer, seq uint64, journal []JournalEntry, compactions uint64) {
	enc.Uvarint(seq)
	enc.Int(len(journal))
	withTail := compactions > 0
	for _, je := range journal {
		enc.Uvarint(je.Seq)
		enc.Uvarint(uint64(je.Op))
		enc.Int(je.Side)
		enc.Int(len(je.Subjects))
		for _, s := range je.Subjects {
			enc.Str(s)
		}
		enc.Int(je.Triples)
		if len(je.Delta) > 0 {
			withTail = true
		}
	}
	if !withTail {
		return
	}
	enc.Uvarint(compactions)
	for _, je := range journal {
		enc.Int(len(je.Delta))
		for _, line := range je.Delta {
			enc.Str(line)
		}
	}
}

// readJournalSection restores the epoch number, the mutation journal,
// and — when the extension tail is present — the compaction count and
// replay payloads.
func readJournalSection(b *binio.Reader, ix *Index) error {
	e := ix.cur.Load()
	seq := b.Uvarint()
	n := b.Int()
	if b.Err() == nil && n > 1<<24 {
		b.Fail("absurd journal length %d", n)
	}
	if b.Err() == nil && uint64(n) > seq {
		b.Fail("journal of %d entries cannot cover epochs up to %d", n, seq)
	}
	entries := make([]JournalEntry, 0, min(n, 1<<16))
	base := seq - uint64(n)
	for i := 0; i < n && b.Err() == nil; i++ {
		var je JournalEntry
		je.Seq = b.Uvarint()
		je.Op = byte(b.Uvarint())
		je.Side = b.Int()
		nSub := b.Int()
		if b.Err() != nil {
			break
		}
		if je.Op != JournalUpsert && je.Op != JournalDelete {
			b.Fail("journal entry %d has invalid op %d", i, je.Op)
			break
		}
		if je.Side != 1 && je.Side != 2 {
			b.Fail("journal entry %d has invalid side %d", i, je.Side)
			break
		}
		// The journal is contiguous by construction: entry i produced
		// epoch base+i+1 and the last entry produced the current epoch.
		// JournalSince's cursor arithmetic depends on it.
		if je.Seq != base+uint64(i)+1 {
			b.Fail("journal entry %d out of sequence (epoch %d, want %d)", i, je.Seq, base+uint64(i)+1)
			break
		}
		if nSub > 1<<24 {
			b.Fail("absurd subject count %d", nSub)
			break
		}
		for s := 0; s < nSub && b.Err() == nil; s++ {
			je.Subjects = append(je.Subjects, b.Str())
		}
		je.Triples = b.Int()
		entries = append(entries, je)
	}
	if err := b.Err(); err != nil {
		return fmt.Errorf("%w: journal: %v", ErrSnapshotCorrupt, err)
	}
	if b.More() {
		ix.compactions.Store(b.Uvarint())
		for i := 0; i < len(entries) && b.Err() == nil; i++ {
			nd := b.Int()
			if b.Err() != nil {
				break
			}
			if nd < 0 || nd > 1<<24 {
				b.Fail("absurd delta length %d", nd)
				break
			}
			if nd > 0 && entries[i].Op != JournalUpsert {
				b.Fail("journal entry %d: delete carries a delta payload", i)
				break
			}
			for j := 0; j < nd && b.Err() == nil; j++ {
				entries[i].Delta = append(entries[i].Delta, b.Str())
			}
		}
		if err := b.Err(); err != nil {
			return fmt.Errorf("%w: journal extension: %v", ErrSnapshotCorrupt, err)
		}
	}
	e.seq = seq
	ix.journal = entries
	ix.journalLen.Store(int64(len(entries)))
	return nil
}

// LoadIndex reads an index snapshot written by SaveIndex, verifying
// every section checksum and the referential integrity of the match
// lists against the embedded KBs.
func LoadIndex(r io.Reader) (*Index, error) {
	dec := binio.NewReader(r)
	dec.Magic(snapshotMagic)
	dec.Version(snapshotVersion)
	bodies := dec.Sections()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	body := func(id uint64, name string) (*binio.Reader, error) {
		b, ok := bodies[id]
		if !ok {
			return nil, fmt.Errorf("%w: missing %s section", ErrSnapshotCorrupt, name)
		}
		return b, nil
	}

	e := &epoch{shards: 1}
	ix := &Index{}
	ix.cur.Store(e)

	b, err := body(snapConfig, "config")
	if err != nil {
		return nil, err
	}
	e.cfg = readConfig(b)
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrSnapshotCorrupt, err)
	}

	readKB := func(id uint64, name string) (*KB, error) {
		b, err := body(id, name)
		if err != nil {
			return nil, err
		}
		built, err := kb.ReadBinary(b.Embedded())
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		return &KB{kb: built}, nil
	}
	if e.kb1, err = readKB(snapKB1, "kb1"); err != nil {
		return nil, err
	}
	if e.kb2, err = readKB(snapKB2, "kb2"); err != nil {
		return nil, err
	}

	readBlocks := func(id uint64, name string) (*blocking.Collection, error) {
		b, err := body(id, name)
		if err != nil {
			return nil, err
		}
		c, err := blocking.ReadBinary(b.Embedded())
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		if n1, n2 := c.KBSizes(); n1 != e.kb1.Len() || n2 != e.kb2.Len() {
			return nil, fmt.Errorf("%w: %s built for KB sizes (%d,%d), snapshot KBs have (%d,%d)",
				ErrSnapshotCorrupt, name, n1, n2, e.kb1.Len(), e.kb2.Len())
		}
		return c, nil
	}
	if e.nameBlocks, err = readBlocks(snapNameBlocks, "name-blocks"); err != nil {
		return nil, err
	}
	if e.tokenBlocks, err = readBlocks(snapTokenBlocks, "token-blocks"); err != nil {
		return nil, err
	}

	if b, err = body(snapStats, "stats"); err != nil {
		return nil, err
	}
	e.purge.Cutoff1 = b.Int()
	e.purge.Cutoff2 = b.Int()
	e.purge.RemovedBlocks = b.Int()
	e.purge.RemovedComparisons = int64(b.Uvarint())
	e.nameBlockCount = b.Int()
	e.tokenBlockCount = b.Int()
	e.nameComparisons = int64(b.Uvarint())
	e.tokenComparisons = int64(b.Uvarint())
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: stats: %v", ErrSnapshotCorrupt, err)
	}

	if b, err = body(snapMatches, "matches"); err != nil {
		return nil, err
	}
	n1, n2 := e.kb1.Len(), e.kb2.Len()
	e.h1 = readPairs(b, n1, n2)
	e.h2 = readPairs(b, n1, n2)
	e.h3 = readPairs(b, n1, n2)
	e.matches = readPairs(b, n1, n2)
	e.discardedByH4 = b.Int()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: matches: %v", ErrSnapshotCorrupt, err)
	}

	// The prepared and journal sections are optional: pre-substrate /
	// pre-mutability snapshots load without them.
	if pb, ok := bodies[snapPrepared]; ok {
		if err := readPreparedSection(pb, ix); err != nil {
			return nil, err
		}
	}
	if jb, ok := bodies[snapJournal]; ok {
		if err := readJournalSection(jb, ix); err != nil {
			return nil, err
		}
	}
	if sb, ok := bodies[snapSharding]; ok {
		if err := readShardingSection(sb, ix); err != nil {
			return nil, err
		}
	}

	// Verify the config section's trailing inventory when present: a
	// bit flip on an optional section's ID would otherwise demote it to
	// "unknown, skipped".
	cb := bodies[snapConfig]
	if cb.More() {
		n := cb.Int()
		if cb.Err() == nil && n > 64 {
			cb.Fail("absurd inventory size %d", n)
		}
		for i := 0; i < n && cb.Err() == nil; i++ {
			id := cb.Uvarint()
			if _, ok := bodies[id]; !ok && cb.Err() == nil {
				cb.Fail("inventoried section %d missing", id)
			}
		}
		if err := cb.Err(); err != nil {
			return nil, fmt.Errorf("%w: config inventory: %v", ErrSnapshotCorrupt, err)
		}
	}

	e.buildLookup()
	return ix, nil
}

// writeEmbedded streams one nested format (KB or collection) into its
// own section; the section framing delimits and checksums it.
func writeEmbedded(bw *binio.Writer, id uint64, write func(io.Writer) error) error {
	bw.Section(id, func(e *binio.Writer) {
		e.Embed(write)
	})
	return bw.Err()
}

// writeConfig encodes the public Config (including the ablation
// switches: an index built without H4 must query without H4 too).
func writeConfig(e *binio.Writer, c Config) {
	e.Int(c.K)
	e.Int(c.N)
	e.Int(c.NameAttributes)
	e.Float(c.Theta)
	e.Float(c.PurgeEntityFraction)
	e.Int(c.PurgeMinEntities)
	e.Int(c.Workers)
	e.Bool(c.DisableH1)
	e.Bool(c.DisableH2)
	e.Bool(c.DisableH3)
	e.Bool(c.DisableH4)
}

func readConfig(b *binio.Reader) Config {
	var c Config
	c.K = b.Int()
	c.N = b.Int()
	c.NameAttributes = b.Int()
	c.Theta = b.Float()
	c.PurgeEntityFraction = b.Float()
	c.PurgeMinEntities = b.Int()
	c.Workers = b.Int()
	c.DisableH1 = b.Bool()
	c.DisableH2 = b.Bool()
	c.DisableH3 = b.Bool()
	c.DisableH4 = b.Bool()
	return c
}

func writePairs(e *binio.Writer, pairs []eval.Pair) {
	e.Int(len(pairs))
	for _, p := range pairs {
		e.Uvarint(uint64(p.E1))
		e.Uvarint(uint64(p.E2))
	}
}

func readPairs(b *binio.Reader, n1, n2 int) []eval.Pair {
	n := b.Int()
	if b.Err() != nil {
		return nil
	}
	if n > n1*n2 && n > 1<<20 {
		b.Fail("absurd pair count %d", n)
		return nil
	}
	out := make([]eval.Pair, 0, n)
	for i := 0; i < n && b.Err() == nil; i++ {
		e1 := b.Uvarint()
		e2 := b.Uvarint()
		if e1 >= uint64(n1) || e2 >= uint64(n2) {
			b.Fail("pair (%d,%d) out of range for KB sizes (%d,%d)", e1, e2, n1, n2)
			return nil
		}
		out = append(out, eval.Pair{E1: kb.EntityID(e1), E2: kb.EntityID(e2)})
	}
	return out
}
