package minoaner

import (
	"errors"
	"fmt"
	"io"

	"minoaner/internal/binio"
	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// Index snapshot format. A snapshot persists everything BuildIndex
// derives — the two built KBs, the block collections, and the complete
// match set — so a server process loads it and answers queries without
// re-parsing a single triple. Layout (see internal/binio for the
// section framing; every section is CRC32-checksummed):
//
//	magic "MSNP" | uvarint version | sections | end marker
//
//	section 1 (config):       the Config the index was built under
//	section 2 (kb1):          first KB, embedded KB binary (internal/kb)
//	section 3 (kb2):          second KB, embedded KB binary
//	section 4 (name-blocks):  B_N, embedded collection binary (internal/blocking)
//	section 5 (token-blocks): B_T after purging, embedded collection binary
//	section 6 (stats):        purge result and block accounting
//	section 7 (matches):      H1, H2, H3, final matches, H4 discard count
//	section 8 (prepared):     frozen left-side substrate of the delta
//	                          path (see Index.Prepare): the embedded
//	                          one-sided token/name index
//	                          (internal/blocking "MPS1") followed by the
//	                          frozen per-entity neighbor lists. Written
//	                          only when the substrate has been built.
//
// Compatibility promise: a reader accepts exactly the format versions
// it names (currently 1), skips unknown section IDs within them, and
// rejects everything else — including any payload whose checksum does
// not match — with an error wrapping ErrSnapshotCorrupt. Saving a
// loaded index reproduces the snapshot bit-for-bit. The prepared
// section is optional in both directions: snapshots from before it
// existed load fine (the substrate is rebuilt on demand by
// Index.Prepare / QueryKBFast), and older readers skip the section
// unharmed.

var snapshotMagic = [4]byte{'M', 'S', 'N', 'P'}

const snapshotVersion = 1

// Section IDs of the snapshot frame.
const (
	snapConfig      = 1
	snapKB1         = 2
	snapKB2         = 3
	snapNameBlocks  = 4
	snapTokenBlocks = 5
	snapStats       = 6
	snapMatches     = 7
	snapPrepared    = 8
)

// ErrSnapshotCorrupt is wrapped by every LoadIndex failure caused by
// damaged or incompatible data.
var ErrSnapshotCorrupt = errors.New("minoaner: corrupt index snapshot")

// SaveIndex writes the index snapshot. The encoding is deterministic:
// saving the same index (built or loaded) always produces the same
// bytes.
func SaveIndex(w io.Writer, ix *Index) error {
	bw := binio.NewWriter(w)
	bw.Raw(snapshotMagic[:])
	bw.Uvarint(snapshotVersion)
	bw.Section(snapConfig, func(e *binio.Writer) {
		writeConfig(e, ix.cfg)
	})
	if err := writeEmbedded(bw, snapKB1, ix.kb1.kb.WriteBinary); err != nil {
		return err
	}
	if err := writeEmbedded(bw, snapKB2, ix.kb2.kb.WriteBinary); err != nil {
		return err
	}
	if err := writeEmbedded(bw, snapNameBlocks, ix.nameBlocks.WriteBinary); err != nil {
		return err
	}
	if err := writeEmbedded(bw, snapTokenBlocks, ix.tokenBlocks.WriteBinary); err != nil {
		return err
	}
	bw.Section(snapStats, func(e *binio.Writer) {
		e.Int(ix.purge.Cutoff1)
		e.Int(ix.purge.Cutoff2)
		e.Int(ix.purge.RemovedBlocks)
		e.Uvarint(uint64(ix.purge.RemovedComparisons))
		e.Int(ix.nameBlockCount)
		e.Int(ix.tokenBlockCount)
		e.Uvarint(uint64(ix.nameComparisons))
		e.Uvarint(uint64(ix.tokenComparisons))
	})
	bw.Section(snapMatches, func(e *binio.Writer) {
		writePairs(e, ix.h1)
		writePairs(e, ix.h2)
		writePairs(e, ix.h3)
		writePairs(e, ix.matches)
		e.Int(ix.discardedByH4)
	})
	if prep := ix.preparedSide(); prep != nil {
		bw.Section(snapPrepared, func(e *binio.Writer) {
			e.Int(prep.Neighbors.N())
			e.Embed(prep.Blocks.WriteBinary)
			writeNeighborLists(e, prep.Neighbors.TopLists())
		})
	}
	bw.End()
	return bw.Flush()
}

// writeNeighborLists encodes the frozen per-entity neighbor lists.
func writeNeighborLists(e *binio.Writer, top [][]kb.EntityID) {
	e.Int(len(top))
	for _, nbrs := range top {
		e.Int(len(nbrs))
		for _, id := range nbrs {
			e.Uvarint(uint64(id))
		}
	}
}

// readPreparedSection restores the prepared substrate of a snapshot,
// validating it against the already-loaded KB1 and config.
func readPreparedSection(b *binio.Reader, ix *Index) error {
	n := b.Int()
	if err := b.Err(); err != nil {
		return fmt.Errorf("%w: prepared: %v", ErrSnapshotCorrupt, err)
	}
	if n != ix.cfg.internal().Params().N {
		return fmt.Errorf("%w: prepared substrate frozen for N=%d, config has N=%d",
			ErrSnapshotCorrupt, n, ix.cfg.N)
	}
	bp, err := blocking.ReadPrepared(b.Embedded())
	if err != nil {
		return fmt.Errorf("%w: prepared: %v", ErrSnapshotCorrupt, err)
	}
	if bp.KBSize() != ix.kb1.Len() {
		return fmt.Errorf("%w: prepared substrate covers %d entities, KB1 has %d",
			ErrSnapshotCorrupt, bp.KBSize(), ix.kb1.Len())
	}
	if bp.NameK() != ix.cfg.NameAttributes {
		return fmt.Errorf("%w: prepared substrate built with NameK=%d, config has %d",
			ErrSnapshotCorrupt, bp.NameK(), ix.cfg.NameAttributes)
	}
	nEnt := b.Int()
	if b.Err() == nil && nEnt != ix.kb1.Len() {
		b.Fail("neighbor lists cover %d entities, KB1 has %d", nEnt, ix.kb1.Len())
	}
	top := make([][]kb.EntityID, 0, min(nEnt, 1<<20))
	for e := 0; e < nEnt && b.Err() == nil; e++ {
		cnt := b.Int()
		if cnt > ix.kb1.Len() {
			b.Fail("neighbor list larger than the KB (%d > %d)", cnt, ix.kb1.Len())
			break
		}
		nbrs := make([]kb.EntityID, 0, cnt)
		prev := int64(-1)
		for j := 0; j < cnt && b.Err() == nil; j++ {
			id := b.Uvarint()
			if id >= uint64(ix.kb1.Len()) || int64(id) <= prev {
				b.Fail("neighbor %d out of order or range [0,%d)", id, ix.kb1.Len())
				break
			}
			prev = int64(id)
			nbrs = append(nbrs, kb.EntityID(id))
		}
		top = append(top, nbrs)
	}
	if err := b.Err(); err != nil {
		return fmt.Errorf("%w: prepared: %v", ErrSnapshotCorrupt, err)
	}
	ix.setPreparedSide(&pipeline.Prepared{
		Blocks:    bp,
		Neighbors: kb.FrozenFromLists(ix.kb1.kb, n, top),
	})
	return nil
}

// LoadIndex reads an index snapshot written by SaveIndex, verifying
// every section checksum and the referential integrity of the match
// lists against the embedded KBs.
func LoadIndex(r io.Reader) (*Index, error) {
	dec := binio.NewReader(r)
	dec.Magic(snapshotMagic)
	dec.Version(snapshotVersion)
	bodies := dec.Sections()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	body := func(id uint64, name string) (*binio.Reader, error) {
		b, ok := bodies[id]
		if !ok {
			return nil, fmt.Errorf("%w: missing %s section", ErrSnapshotCorrupt, name)
		}
		return b, nil
	}

	ix := &Index{}

	b, err := body(snapConfig, "config")
	if err != nil {
		return nil, err
	}
	ix.cfg = readConfig(b)
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrSnapshotCorrupt, err)
	}

	readKB := func(id uint64, name string) (*KB, error) {
		b, err := body(id, name)
		if err != nil {
			return nil, err
		}
		built, err := kb.ReadBinary(b.Embedded())
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		return &KB{kb: built}, nil
	}
	if ix.kb1, err = readKB(snapKB1, "kb1"); err != nil {
		return nil, err
	}
	if ix.kb2, err = readKB(snapKB2, "kb2"); err != nil {
		return nil, err
	}

	readBlocks := func(id uint64, name string) (*blocking.Collection, error) {
		b, err := body(id, name)
		if err != nil {
			return nil, err
		}
		c, err := blocking.ReadBinary(b.Embedded())
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		if n1, n2 := c.KBSizes(); n1 != ix.kb1.Len() || n2 != ix.kb2.Len() {
			return nil, fmt.Errorf("%w: %s built for KB sizes (%d,%d), snapshot KBs have (%d,%d)",
				ErrSnapshotCorrupt, name, n1, n2, ix.kb1.Len(), ix.kb2.Len())
		}
		return c, nil
	}
	if ix.nameBlocks, err = readBlocks(snapNameBlocks, "name-blocks"); err != nil {
		return nil, err
	}
	if ix.tokenBlocks, err = readBlocks(snapTokenBlocks, "token-blocks"); err != nil {
		return nil, err
	}

	if b, err = body(snapStats, "stats"); err != nil {
		return nil, err
	}
	ix.purge.Cutoff1 = b.Int()
	ix.purge.Cutoff2 = b.Int()
	ix.purge.RemovedBlocks = b.Int()
	ix.purge.RemovedComparisons = int64(b.Uvarint())
	ix.nameBlockCount = b.Int()
	ix.tokenBlockCount = b.Int()
	ix.nameComparisons = int64(b.Uvarint())
	ix.tokenComparisons = int64(b.Uvarint())
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: stats: %v", ErrSnapshotCorrupt, err)
	}

	if b, err = body(snapMatches, "matches"); err != nil {
		return nil, err
	}
	n1, n2 := ix.kb1.Len(), ix.kb2.Len()
	ix.h1 = readPairs(b, n1, n2)
	ix.h2 = readPairs(b, n1, n2)
	ix.h3 = readPairs(b, n1, n2)
	ix.matches = readPairs(b, n1, n2)
	ix.discardedByH4 = b.Int()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: matches: %v", ErrSnapshotCorrupt, err)
	}

	// The prepared section is optional: pre-substrate snapshots load
	// without it and prepare on demand.
	if pb, ok := bodies[snapPrepared]; ok {
		if err := readPreparedSection(pb, ix); err != nil {
			return nil, err
		}
	}

	ix.buildLookup()
	return ix, nil
}

// writeEmbedded streams one nested format (KB or collection) into its
// own section; the section framing delimits and checksums it.
func writeEmbedded(bw *binio.Writer, id uint64, write func(io.Writer) error) error {
	bw.Section(id, func(e *binio.Writer) {
		e.Embed(write)
	})
	return bw.Err()
}

// writeConfig encodes the public Config (including the ablation
// switches: an index built without H4 must query without H4 too).
func writeConfig(e *binio.Writer, c Config) {
	e.Int(c.K)
	e.Int(c.N)
	e.Int(c.NameAttributes)
	e.Float(c.Theta)
	e.Float(c.PurgeEntityFraction)
	e.Int(c.PurgeMinEntities)
	e.Int(c.Workers)
	e.Bool(c.DisableH1)
	e.Bool(c.DisableH2)
	e.Bool(c.DisableH3)
	e.Bool(c.DisableH4)
}

func readConfig(b *binio.Reader) Config {
	var c Config
	c.K = b.Int()
	c.N = b.Int()
	c.NameAttributes = b.Int()
	c.Theta = b.Float()
	c.PurgeEntityFraction = b.Float()
	c.PurgeMinEntities = b.Int()
	c.Workers = b.Int()
	c.DisableH1 = b.Bool()
	c.DisableH2 = b.Bool()
	c.DisableH3 = b.Bool()
	c.DisableH4 = b.Bool()
	return c
}

func writePairs(e *binio.Writer, pairs []eval.Pair) {
	e.Int(len(pairs))
	for _, p := range pairs {
		e.Uvarint(uint64(p.E1))
		e.Uvarint(uint64(p.E2))
	}
}

func readPairs(b *binio.Reader, n1, n2 int) []eval.Pair {
	n := b.Int()
	if b.Err() != nil {
		return nil
	}
	if n > n1*n2 && n > 1<<20 {
		b.Fail("absurd pair count %d", n)
		return nil
	}
	out := make([]eval.Pair, 0, n)
	for i := 0; i < n && b.Err() == nil; i++ {
		e1 := b.Uvarint()
		e2 := b.Uvarint()
		if e1 >= uint64(n1) || e2 >= uint64(n2) {
			b.Fail("pair (%d,%d) out of range for KB sizes (%d,%d)", e1, e2, n1, n2)
			return nil
		}
		out = append(out, eval.Pair{E1: kb.EntityID(e1), E2: kb.EntityID(e2)})
	}
	return out
}
