// Package minoaner is a schema-agnostic, non-iterative entity
// resolution library for Web data — a Go implementation of the
// MinoanER framework (Efthymiou, Papadakis, Stefanidis, Christophides:
// "Simplifying Entity Resolution on Web Data with Schema-Agnostic,
// Non-Iterative Matching", ICDE 2018).
//
// Given two RDF knowledge bases, minoaner identifies the entity pairs
// that describe the same real-world object using only dataset
// statistics — no schema alignment, no domain expertise, no iterative
// convergence. Matching evidence comes from three schema-agnostic
// sources:
//
//   - names: the literal values of each KB's most distinctive
//     attributes, matched exactly (heuristic H1)
//   - values: the bag of tokens of each description, weighted by how
//     rarely each token appears in the two KBs (heuristic H2)
//   - neighbors: the value similarity of the entities linked through
//     each KB's most important relations, combined with value evidence
//     by threshold-free rank aggregation (heuristic H3)
//
// and every candidate match must be reciprocated by both sides
// (heuristic H4).
//
// # Quick start
//
//	kb1, _ := minoaner.LoadKBFile("dbpedia", "kb1.nt")
//	kb2, _ := minoaner.LoadKBFile("imdb", "kb2.nt")
//	res, _ := minoaner.Resolve(kb1, kb2, minoaner.DefaultConfig())
//	for _, m := range res.Matches {
//	    fmt.Println(m.URI1, "<->", m.URI2)
//	}
//
// # Serving resolution queries
//
// Matching is non-iterative, so a resolved KB pair is a pure function
// of its inputs that can be persisted and queried forever: BuildIndex
// resolves the pair once into an Index, SaveIndex / LoadIndex
// round-trip it through a checksummed snapshot (see snapshot.go for
// the format), Index.Query answers per-entity lookups in constant time
// from any number of goroutines, and NewServer exposes the index over
// HTTP/JSON. The data may keep changing underneath: Index.Upsert and
// Index.Delete absorb entity-level mutations under an epoch scheme —
// readers stay lock-free on the old state until the new one swaps in,
// and the mutated index answers bit-identically to a from-scratch
// rebuild over the mutated KBs. The minoaner CLI wraps the same flow
// as the snapshot and serve subcommands (serve -mutable enables the
// mutation endpoints); examples/serve is a runnable walkthrough.
package minoaner

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/dedup"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
	"minoaner/internal/rdf"
)

// Config carries the four MinoanER parameters plus engineering knobs.
// The zero value is not usable; start from DefaultConfig.
type Config struct {
	// K is the number of candidate matches kept per entity and per
	// evidence type (paper default 15).
	K int
	// N is the number of most important relations per entity whose
	// neighbors contribute neighbor similarity (paper default 3).
	N int
	// NameAttributes is the paper's k: how many of each KB's most
	// distinctive attributes supply entity names (paper default 2).
	NameAttributes int
	// Theta trades value-based (θ) against neighbor-based (1-θ)
	// normalized ranks in H3 (paper default 0.6).
	Theta float64
	// PurgeEntityFraction controls Block Purging: token blocks covering
	// more than this fraction of either KB are discarded.
	PurgeEntityFraction float64
	// PurgeMinEntities is the floor for the purging cutoff.
	PurgeMinEntities int
	// Workers bounds the goroutines used for candidate scoring;
	// 0 selects GOMAXPROCS. Results are identical at any setting.
	Workers int

	// DisableH1..DisableH4 switch individual heuristics off for
	// ablation studies.
	DisableH1, DisableH2, DisableH3, DisableH4 bool
}

// DefaultConfig returns the parameter configuration the paper found
// robust across all four benchmark datasets (§IV).
func DefaultConfig() Config {
	c := core.DefaultConfig()
	return Config{
		K:                   c.K,
		N:                   c.N,
		NameAttributes:      c.NameK,
		Theta:               c.Theta,
		PurgeEntityFraction: c.Purge.EntityFraction,
		PurgeMinEntities:    c.Purge.MinEntities,
	}
}

func (c Config) internal() core.Config {
	return core.Config{
		K:         c.K,
		N:         c.N,
		NameK:     c.NameAttributes,
		Theta:     c.Theta,
		Purge:     blocking.PurgeConfig{EntityFraction: c.PurgeEntityFraction, MinEntities: c.PurgeMinEntities},
		Workers:   c.Workers,
		DisableH1: c.DisableH1,
		DisableH2: c.DisableH2,
		DisableH3: c.DisableH3,
		DisableH4: c.DisableH4,
	}
}

// KB is an immutable knowledge base loaded from RDF triples.
type KB struct {
	kb *kb.KB
}

// KBStats summarizes a KB (the columns of the paper's Table I).
type KBStats struct {
	Entities     int
	Triples      int
	AvgTokens    float64
	Attributes   int
	Relations    int
	Types        int
	Vocabularies int
}

// LoadKB parses an N-Triples document into a KB with the given display
// name. Parsing streams straight into the KB builder: triples are
// interned as they are read, never materialized as a slice.
func LoadKB(name string, r io.Reader) (*KB, error) {
	b := kb.NewBuilder(name)
	if err := b.AddFromReader(r); err != nil {
		return nil, err
	}
	built, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &KB{kb: built}, nil
}

// LoadKBFile parses an N-Triples file into a KB.
func LoadKBFile(name, path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadKB(name, f)
}

// LoadKBLenient parses an N-Triples document, skipping malformed lines
// (including oversize ones) instead of failing — real Web crawls
// routinely contain them. It returns the KB and the number of lines
// skipped.
func LoadKBLenient(name string, r io.Reader) (*KB, int, error) {
	reader := rdf.NewReader(r)
	reader.SetLenient(true)
	b := kb.NewBuilder(name)
	if err := b.AddFromRDFReader(reader); err != nil {
		return nil, reader.Skipped(), err
	}
	built, err := b.Build()
	if err != nil {
		return nil, reader.Skipped(), err
	}
	return &KB{kb: built}, reader.Skipped(), nil
}

// WriteBinary serializes the KB in a compact binary format that
// preserves the assembled structure and statistics, so reloading skips
// parsing and re-derivation. The format is versioned; ReadKBBinary
// rejects corrupt or incompatible data.
func (k *KB) WriteBinary(w io.Writer) error { return k.kb.WriteBinary(w) }

// ReadKBBinary loads a KB written by WriteBinary.
func ReadKBBinary(r io.Reader) (*KB, error) {
	built, err := kb.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &KB{kb: built}, nil
}

// Name returns the KB's display name.
func (k *KB) Name() string { return k.kb.Name() }

// HasSources reports whether the KB retains its source triples.
// Retention is the default for every KB this package builds and is
// what makes an Index over the KB mutable (Index.Upsert/Delete).
func (k *KB) HasSources() bool { return k.kb.HasSources() }

// WithoutSources returns a view of the KB with source retention
// stripped: roughly half the memory and snapshot size, but indexes
// over it reject mutations. The underlying data is shared; the
// receiver is unchanged.
func (k *KB) WithoutSources() *KB { return &KB{kb: k.kb.WithoutSources()} }

// Len returns the number of entities (distinct subjects).
func (k *KB) Len() int { return k.kb.Len() }

// URIs returns every entity URI of the KB, in internal ID order. It
// allocates a fresh slice per call; the KB itself stays immutable.
func (k *KB) URIs() []string {
	out := make([]string, k.kb.Len())
	for i := range out {
		out[i] = k.kb.URI(kb.EntityID(i))
	}
	return out
}

// Stats returns the KB's summary statistics.
func (k *KB) Stats() KBStats {
	return KBStats{
		Entities:     k.kb.Len(),
		Triples:      k.kb.NumTriples(),
		AvgTokens:    k.kb.AvgTokens(),
		Attributes:   k.kb.NumAttributes(),
		Relations:    k.kb.NumRelations(),
		Types:        k.kb.NumTypes(),
		Vocabularies: k.kb.NumVocabularies(),
	}
}

// Match is one resolved entity pair, reported by URI.
type Match struct {
	URI1 string // entity of the first KB
	URI2 string // entity of the second KB
}

// Result reports the matches and per-stage accounting of one run.
type Result struct {
	// Matches is the final output M = (H1 ∨ H2 ∨ H3) ∧ H4.
	Matches []Match
	// ByName, ByValue, ByRank count the contributions of H1, H2 and H3
	// before reciprocity filtering.
	ByName, ByValue, ByRank int
	// DiscardedByReciprocity counts pairs removed by H4.
	DiscardedByReciprocity int
	// NameBlocks and TokenBlocks are |B_N| and |B_T| (after purging).
	NameBlocks, TokenBlocks int
	// NameComparisons and TokenComparisons are ||B_N|| and ||B_T||.
	NameComparisons, TokenComparisons int64
	// PurgedBlocks counts token blocks removed by Block Purging.
	PurgedBlocks int
	// SkippedLines1 and SkippedLines2 count the malformed lines skipped
	// per source on lenient ResolveReaders runs; zero otherwise.
	SkippedLines1, SkippedLines2 int
	// StageTimings reports the pipeline stages executed for this run, in
	// order, with their wall-clock and allocation cost.
	StageTimings []StageTiming

	kb1, kb2 *kb.KB
	pairs    []eval.Pair
}

// StageTiming is the recorded execution of one pipeline stage.
type StageTiming struct {
	// Stage is the stage's name, e.g. "token-blocking" or "h2-values".
	Stage string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// AllocBytes is the heap allocated while the stage ran
	// (process-wide, so approximate when other goroutines allocate).
	AllocBytes uint64
}

// StageProgress notifies a progress callback that a pipeline stage
// started (Done=false) or finished (Done=true, Timing valid).
type StageProgress struct {
	// Stage is the stage's name.
	Stage string
	// Index and Total locate the stage in the plan (Index is 0-based).
	Index, Total int
	// Done distinguishes completion from start.
	Done bool
	// Timing is the stage's cost; valid only when Done.
	Timing StageTiming
}

// ResolveOption customizes one ResolveContext run.
type ResolveOption func(*resolveOptions)

type resolveOptions struct {
	progress func(StageProgress)
	shards   int
}

// WithProgress registers a callback invoked as each pipeline stage
// starts and finishes. The callback runs synchronously on the resolving
// goroutine; keep it cheap. Cancelling the run's context from inside
// the callback is safe and stops the run promptly.
func WithProgress(fn func(StageProgress)) ResolveOption {
	return func(o *resolveOptions) { o.progress = fn }
}

// WithShards hash-partitions the index substrate into k independent
// sub-indexes keyed by entity URI. Queries scatter the delta across
// all shards in parallel and gather the ranked candidates through a
// cross-shard merge; mutations patch only the shards owning mutated
// entities. Results are bit-identical to an unsharded index at every
// shard and worker count. k <= 1 (and omitting the option) keeps the
// single-substrate layout. The option applies to index building
// (BuildIndexContext); plain Resolve runs ignore it.
func WithShards(k int) ResolveOption {
	return func(o *resolveOptions) { o.shards = k }
}

// Resolve runs the MinoanER matching process on two KBs.
func Resolve(kb1, kb2 *KB, cfg Config) (*Result, error) {
	return ResolveContext(context.Background(), kb1, kb2, cfg)
}

// ResolveContext runs the MinoanER matching process under a context.
// Cancellation aborts between pipeline stages and inside the parallel
// candidate-scoring loops, returning ctx.Err() with no partial Result.
func ResolveContext(ctx context.Context, kb1, kb2 *KB, cfg Config, opts ...ResolveOption) (*Result, error) {
	var o resolveOptions
	for _, opt := range opts {
		opt(&o)
	}
	m, err := core.NewMatcher(kb1.kb, kb2.kb, cfg.internal())
	if err != nil {
		return nil, err
	}
	res, err := m.RunPlan(ctx, m.Plan(), o.pipelineProgress())
	if err != nil {
		return nil, err
	}
	return newResult(res, kb1.kb, kb2.kb), nil
}

// newResult translates a core result into the public Result.
func newResult(res *core.Result, kb1, kb2 *kb.KB) *Result {
	out := &Result{
		ByName:                 len(res.H1),
		ByValue:                len(res.H2),
		ByRank:                 len(res.H3),
		DiscardedByReciprocity: res.DiscardedByH4,
		NameBlocks:             res.NameBlockCount,
		TokenBlocks:            res.TokenBlockCount,
		NameComparisons:        res.NameComparisons,
		TokenComparisons:       res.TokenComparisons,
		PurgedBlocks:           res.Purge.RemovedBlocks,
		SkippedLines1:          res.Skipped1,
		SkippedLines2:          res.Skipped2,
		StageTimings:           make([]StageTiming, len(res.Stages)),
		kb1:                    kb1,
		kb2:                    kb2,
		pairs:                  res.Matches,
	}
	for i, s := range res.Stages {
		out.StageTimings[i] = stageTiming(s)
	}
	out.Matches = make([]Match, len(res.Matches))
	for i, p := range res.Matches {
		out.Matches[i] = Match{URI1: kb1.URI(p.E1), URI2: kb2.URI(p.E2)}
	}
	return out
}

func stageTiming(s pipeline.StageStat) StageTiming {
	return StageTiming{Stage: s.Stage, Duration: s.Duration, AllocBytes: s.AllocBytes}
}

// Source is one raw N-Triples input of a ResolveReaders run.
type Source struct {
	// Name is the display name of the KB built from this source.
	Name string
	// R supplies the N-Triples document.
	R io.Reader
	// Lenient skips malformed (and oversize) lines instead of failing,
	// counting them in Result.SkippedLines1/SkippedLines2.
	Lenient bool
}

// ResolveReaders runs the whole ingest-to-matches path on two raw
// N-Triples sources as one instrumented pipeline: parsing, KB assembly,
// blocking, and matching all appear in Result.StageTimings (stages
// "ingest" and "kb-build" precede the matching stages), and
// cancellation is honored inside ingest as well as matching. It is
// equivalent to LoadKB + ResolveContext but streams triples straight
// into interned builders and parses the two sources concurrently.
func ResolveReaders(ctx context.Context, src1, src2 Source, cfg Config, opts ...ResolveOption) (*Result, error) {
	var o resolveOptions
	for _, opt := range opts {
		opt(&o)
	}
	res, kb1, kb2, err := core.RunSources(ctx,
		pipeline.Source{Name: src1.Name, R: src1.R, Lenient: src1.Lenient},
		pipeline.Source{Name: src2.Name, R: src2.R, Lenient: src2.Lenient},
		cfg.internal(), o.pipelineProgress(), false)
	if err != nil {
		return nil, err
	}
	return newResult(res, kb1, kb2), nil
}

// DedupConfig tunes single-KB deduplication (dirty ER).
type DedupConfig struct {
	// Threshold is the minimum value similarity for two descriptions to
	// count as duplicates; 1.0 keeps the H2 semantics ("a token unique
	// to the pair, or several infrequent shared tokens").
	Threshold float64
	// MaxTokenFraction purges tokens carried by more than this fraction
	// of the KB, with MinTokenEntities as floor.
	MaxTokenFraction float64
	MinTokenEntities int
}

// DefaultDedupConfig mirrors the clean-clean defaults.
func DefaultDedupConfig() DedupConfig {
	c := dedup.DefaultConfig()
	return DedupConfig{Threshold: c.Threshold, MaxTokenFraction: c.MaxTokenFraction, MinTokenEntities: c.MinTokenEntities}
}

// Deduplicate finds duplicate descriptions inside one KB (dirty ER)
// and returns the duplicate clusters as URI groups.
func Deduplicate(k *KB, cfg DedupConfig) [][]string {
	res := dedup.Run(k.kb, dedup.Config(cfg))
	out := make([][]string, len(res.Clusters))
	for i, cluster := range res.Clusters {
		uris := make([]string, len(cluster))
		for j, id := range cluster {
			uris[j] = k.kb.URI(id)
		}
		out[i] = uris
	}
	return out
}

// GroundTruth is a known partial 1-1 mapping between the entities of
// two KBs, used for evaluation.
type GroundTruth struct {
	gt       *eval.GroundTruth
	kb1, kb2 *kb.KB
}

// LoadGroundTruth parses "uri1,uri2" CSV lines resolved against the two
// KBs.
func LoadGroundTruth(kb1, kb2 *KB, r io.Reader) (*GroundTruth, error) {
	gt, err := eval.ReadCSV(r, kb1.kb, kb2.kb)
	if err != nil {
		return nil, err
	}
	return &GroundTruth{gt: gt, kb1: kb1.kb, kb2: kb2.kb}, nil
}

// LoadGroundTruthFile parses a ground-truth CSV file.
func LoadGroundTruthFile(kb1, kb2 *KB, path string) (*GroundTruth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadGroundTruth(kb1, kb2, f)
}

// Len returns the number of known matches.
func (g *GroundTruth) Len() int { return g.gt.Len() }

// Metrics reports precision, recall, and F1 of a result against a
// ground truth (computed with respect to first-KB descriptions in the
// ground truth, as in the paper).
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// String renders metrics as percentages.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.2f%% R=%.2f%% F1=%.2f%%", 100*m.Precision, 100*m.Recall, 100*m.F1)
}

// Evaluate scores the result against a ground truth.
func (r *Result) Evaluate(g *GroundTruth) Metrics {
	m := eval.Evaluate(r.pairs, g.gt)
	return Metrics{TP: m.TP, FP: m.FP, FN: m.FN, Precision: m.Precision, Recall: m.Recall, F1: m.F1}
}

// Benchmark is a synthetic stand-in for one of the paper's evaluation
// datasets, with its ground truth.
type Benchmark struct {
	Name        string
	KB1, KB2    *KB
	GroundTruth *GroundTruth

	ds *datagen.Dataset
}

// BenchmarkNames lists the available synthetic benchmarks in the
// paper's column order: Restaurant, Rexa-DBLP, BBCmusic-DBpedia,
// YAGO-IMDb.
func BenchmarkNames() []string {
	gens := datagen.Generators()
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.Name
	}
	return out
}

// GenerateBenchmark builds the named synthetic benchmark
// deterministically from a seed. Scale 1.0 is the default size; tests
// typically use 0.05-0.2.
func GenerateBenchmark(name string, seed int64, scale float64) (*Benchmark, error) {
	g, ok := datagen.ByName(name)
	if !ok {
		return nil, fmt.Errorf("minoaner: unknown benchmark %q (have %v)", name, BenchmarkNames())
	}
	ds, err := g.Build(datagen.Options{Seed: seed, Scale: scale})
	if err != nil {
		return nil, err
	}
	kb1 := &KB{kb: ds.KB1}
	kb2 := &KB{kb: ds.KB2}
	return &Benchmark{
		Name:        ds.Name,
		KB1:         kb1,
		KB2:         kb2,
		GroundTruth: &GroundTruth{gt: ds.GT, kb1: ds.KB1, kb2: ds.KB2},
		ds:          ds,
	}, nil
}

// DeltaKB assembles a standalone KB from the subset of the benchmark's
// second-KB triples whose subject is one of the given entity URIs — a
// realistic delta for Index.QueryKB: the selected descriptions exactly
// as KB2 states them, re-derived in isolation (their own statistics,
// with links to unselected entities degrading to dangling values, as
// they would in a genuinely new description batch).
func (b *Benchmark) DeltaKB(name string, uris ...string) (*KB, error) {
	built, _, err := kb.FromTriplesSubset(name, b.ds.Triples2, uris)
	if err != nil {
		return nil, err
	}
	return &KB{kb: built}, nil
}

// WriteKB1 serializes the first KB as N-Triples.
func (b *Benchmark) WriteKB1(w io.Writer) error { return rdf.WriteAll(w, b.ds.Triples1) }

// WriteKB2 serializes the second KB as N-Triples.
func (b *Benchmark) WriteKB2(w io.Writer) error { return rdf.WriteAll(w, b.ds.Triples2) }

// WriteGroundTruth serializes the ground truth as "uri1,uri2" CSV.
func (b *Benchmark) WriteGroundTruth(w io.Writer) error {
	return b.ds.GT.WriteCSV(w, b.ds.KB1, b.ds.KB2)
}
