package minoaner_test

import (
	"reflect"
	"strings"
	"testing"

	"minoaner"
)

// TestAllBenchmarksEndToEnd drives the public API through every
// synthetic benchmark and checks the headline quality bars from
// EXPERIMENTS.md.
func TestAllBenchmarksEndToEnd(t *testing.T) {
	minF1 := map[string]float64{
		"Restaurant":       0.95,
		"Rexa-DBLP":        0.93,
		"BBCmusic-DBpedia": 0.80,
		"YAGO-IMDb":        0.90,
	}
	for _, name := range minoaner.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := minoaner.GenerateBenchmark(name, 42, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			res, err := minoaner.Resolve(b.KB1, b.KB2, minoaner.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			m := res.Evaluate(b.GroundTruth)
			if m.F1 < minF1[name] {
				t.Errorf("%s F1 = %.3f, want >= %.2f (%v)", name, m.F1, minF1[name], m)
			}
			if res.TokenBlocks == 0 {
				t.Error("no token blocks")
			}
		})
	}
}

// TestWorkerInvarianceEndToEnd: identical results at every parallelism
// level, through the public API.
func TestWorkerInvarianceEndToEnd(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("BBCmusic-DBpedia", 9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var base []minoaner.Match
	for _, workers := range []int{1, 3, 8} {
		cfg := minoaner.DefaultConfig()
		cfg.Workers = workers
		res, err := minoaner.Resolve(b.KB1, b.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.Matches
			continue
		}
		if !reflect.DeepEqual(base, res.Matches) {
			t.Fatalf("workers=%d changed the result", workers)
		}
	}
}

// TestSeedInvariance: generating the same benchmark twice yields
// byte-identical serializations.
func TestSeedInvariance(t *testing.T) {
	render := func() string {
		b, err := minoaner.GenerateBenchmark("Rexa-DBLP", 4, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := b.WriteKB1(&sb); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteGroundTruth(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Error("same seed produced different datasets")
	}
}

func TestLoadKBLenient(t *testing.T) {
	doc := `<http://a/x> <http://v/p> "good" .
this line is garbage
<http://a/y> <http://v/p> "also good" .
<http://a/z> <http://v/p> broken
`
	kb, skipped, err := minoaner.LoadKBLenient("dirty", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 2 {
		t.Errorf("entities = %d, want 2", kb.Len())
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
}

// TestHeuristicComplementarity: on the heterogeneous pair, the full
// configuration dominates every single-heuristic configuration —
// the paper's core claim that the evidence types are complementary.
func TestHeuristicComplementarity(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("BBCmusic-DBpedia", 42, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	full, err := minoaner.Resolve(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fullF1 := full.Evaluate(b.GroundTruth).F1

	only := func(h string) minoaner.Config {
		cfg := minoaner.DefaultConfig()
		cfg.DisableH1 = h != "H1"
		cfg.DisableH2 = h != "H2"
		cfg.DisableH3 = h != "H3"
		return cfg
	}
	for _, h := range []string{"H1", "H2"} {
		res, err := minoaner.Resolve(b.KB1, b.KB2, only(h))
		if err != nil {
			t.Fatal(err)
		}
		f1 := res.Evaluate(b.GroundTruth).F1
		if f1 >= fullF1 {
			t.Errorf("%s alone (%.3f) should trail the full pipeline (%.3f)", h, f1, fullF1)
		}
	}
}
