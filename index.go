package minoaner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"minoaner/internal/binio"
	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// Index is a fully resolved, queryable view of a KB pair: the built
// KBs, their block collections, and the complete match set
// M = (H1 ∨ H2 ∨ H3) ∧ H4, organized for query-time access. MinoanER's
// matching needs no iteration, so everything a resolution query needs
// is static within one epoch — an Index is built (or loaded) once and
// answers "who matches entity X?" in constant time, safely from any
// number of goroutines.
//
// An Index is mutable at entity granularity: Upsert and Delete absorb
// changed descriptions under an epoch scheme — readers keep serving
// the current epoch lock-free while the next one is assembled from the
// previous epoch's scoring substrate, then an atomic swap publishes
// it. After any sequence of mutations, Matches/Query/QueryKB are
// bit-identical to a from-scratch BuildIndex over the mutated KBs;
// only the cost differs (the touched neighborhoods, not the whole
// pair). Mutability requires the KBs to retain their source triples
// (the default for every KB this package builds; snapshots persist
// them).
//
// Build one with BuildIndex, persist it with SaveIndex, and reload it
// with LoadIndex; the snapshot round-trips bit-identically, so a
// served index is byte-for-byte the index that was built.
type Index struct {
	// cur is the published epoch; readers Load it once per operation
	// and never block on writers.
	cur atomic.Pointer[epoch]

	// mu serializes the write side: mutations, substrate priming,
	// lazy Prepare, Compact, and snapshot writes (which need an
	// epoch/journal pair that belongs together).
	mu         sync.Mutex
	mut        *mutator
	journal    []JournalEntry
	journalLen atomic.Int64

	// compactions counts Compact calls over the index's lifetime and
	// persists through snapshots. Compact rewrites write-side state the
	// journal alone cannot reproduce (the stores' term tables), so a
	// replica that observes the primary's count move past its own must
	// resync from a snapshot rather than keep replaying.
	compactions atomic.Uint64

	// mapped is the snapshot mapping behind an index opened with
	// OpenIndexFile/OpenIndex, nil otherwise; Close releases it.
	// Guarded by mu.
	mapped *binio.Map
}

// epoch is one immutable resolution state. Every field is final once
// the epoch is published; state that changes later (a lazily built
// prepared substrate, a compacted journal) is installed by cloning the
// epoch and swapping the clone in.
type epoch struct {
	seq      uint64
	kb1, kb2 *KB
	cfg      Config

	nameBlocks  *blocking.Collection
	tokenBlocks *blocking.Collection
	purge       blocking.PurgeResult

	nameBlockCount, tokenBlockCount   int
	nameComparisons, tokenComparisons int64

	h1, h2, h3    []eval.Pair
	matches       []eval.Pair
	discardedByH4 int

	by1, by2 map[kb.EntityID][]int32 // entity -> positions in matches

	// prep is the frozen left-side substrate of the prepared delta
	// path: nil until Prepare builds it (or LoadIndex restores it, or
	// a mutation derives it from the epoch cache).
	prep *pipeline.Prepared

	// shards is the index's configured shard count (>= 1; 1 means
	// unsharded). sharded is the scatter-gather substrate derived from
	// prep when shards > 1: K owner-restricted sub-substrates of KB1,
	// partitioned by URI hash. It is nil until prep exists.
	shards  int
	sharded *pipeline.ShardedPrepared

	// cache is the scoring substrate mutations start from; nil until
	// the first mutation primes it (built and loaded epochs alike pay
	// that one-time candidate recompute there, so read-only indexes
	// never pin the intermediate build artifacts). Mutated epochs
	// always carry one.
	cache *pipeline.Cache

	// lazy holds the undecoded remainder of a mapped snapshot (see
	// mapped.go); nil for built or eagerly loaded epochs, and cleared
	// by materializeLocked's concrete clone. Access the guarded fields
	// through blocks()/preparedSide(), never directly.
	lazy *lazyParts
}

// mutator owns the write-side triple stores of a mutable index.
type mutator struct {
	store1, store2 *kb.Store
}

// ErrNotMutable is returned by Upsert/Delete when the index's KBs do
// not retain their source triples — a snapshot from before source
// retention, or KBs built with retention disabled. Rebuild the index
// (or its snapshot) from sources to mutate it.
var ErrNotMutable = errors.New("minoaner: index is not mutable (its KBs lack retained source triples; rebuild from sources)")

// ErrJournalTruncated is returned by JournalSince and Replay when the
// journal no longer connects the caller's cursor to the current epoch
// — typically because Compact dropped the entries in between, or the
// entries predate the replayable (delta-carrying) journal format.
// Replicas recover by resyncing from a full snapshot.
var ErrJournalTruncated = errors.New("minoaner: journal truncated before the requested epoch (resync from a snapshot)")

// clone copies the epoch for a derived publish (same resolution state,
// new auxiliary fields).
func (e *epoch) clone() *epoch {
	c := *e
	return &c
}

// BuildIndex resolves the KB pair once and assembles the queryable
// index.
func BuildIndex(kb1, kb2 *KB, cfg Config) (*Index, error) {
	return BuildIndexContext(context.Background(), kb1, kb2, cfg)
}

// BuildIndexSharded is BuildIndex with the first KB hash-partitioned
// into k shards: once the prepared substrate exists (Prepare, or the
// first mutation), QueryKB and the serve layer's /delta scatter each
// delta across k owner-restricted sub-substrates in parallel and
// gather the ranked candidates through cross-shard merges. Results are
// bit-identical to an unsharded index at every shard count; mutations
// route their substrate edits to the owning shards only.
func BuildIndexSharded(kb1, kb2 *KB, cfg Config, k int) (*Index, error) {
	return BuildIndexContext(context.Background(), kb1, kb2, cfg, WithShards(k))
}

// BuildIndexContext is BuildIndex under a context, with optional
// progress reporting (WithProgress). It runs the same staged pipeline
// as ResolveContext and retains the artifacts queries need: the block
// collections, the per-heuristic contributions, and the final match
// set.
func BuildIndexContext(ctx context.Context, kb1, kb2 *KB, cfg Config, opts ...ResolveOption) (*Index, error) {
	var o resolveOptions
	for _, opt := range opts {
		opt(&o)
	}
	icfg := cfg.internal()
	if err := icfg.Validate(); err != nil {
		return nil, err
	}
	if o.shards < 0 {
		return nil, fmt.Errorf("minoaner: shard count %d out of range (need >= 1)", o.shards)
	}
	st := pipeline.NewState(kb1.kb, kb2.kb, icfg.Params())
	// Observed runs record per-stage allocation deltas, matching
	// ResolveContext's behavior so -v output is consistent across
	// subcommands.
	eng := pipeline.Engine{Plan: core.PlanFor(icfg), Progress: o.pipelineProgress(), AllocStats: o.progress != nil}
	if _, err := eng.Run(ctx, st); err != nil {
		return nil, err
	}
	ep := &epoch{
		kb1:              kb1,
		kb2:              kb2,
		cfg:              cfg,
		nameBlocks:       st.NameBlocks,
		tokenBlocks:      st.TokenBlocks,
		purge:            st.PurgeStats,
		nameBlockCount:   st.NameBlockCount,
		tokenBlockCount:  st.TokenBlockCount,
		nameComparisons:  st.NameComparisons,
		tokenComparisons: st.TokenComparisons,
		h1:               st.H1,
		h2:               st.H2,
		h3:               st.H3,
		matches:          st.Matches,
		discardedByH4:    st.DiscardedByH4,
		shards:           normalizeShards(o.shards),
	}
	ep.buildLookup()
	ix := &Index{}
	ix.cur.Store(ep)
	return ix, nil
}

// normalizeShards maps the option value to the effective shard count
// (0 = unset = 1).
func normalizeShards(k int) int {
	if k < 1 {
		return 1
	}
	return k
}

// buildLookup derives the per-entity match positions from the match
// list.
func (e *epoch) buildLookup() {
	e.by1 = make(map[kb.EntityID][]int32, len(e.matches))
	e.by2 = make(map[kb.EntityID][]int32, len(e.matches))
	for i, p := range e.matches {
		e.by1[p.E1] = append(e.by1[p.E1], int32(i))
		e.by2[p.E2] = append(e.by2[p.E2], int32(i))
	}
}

// KB1 returns the first indexed KB (of the current epoch).
func (ix *Index) KB1() *KB { return ix.cur.Load().kb1 }

// KB2 returns the second indexed KB (of the current epoch).
func (ix *Index) KB2() *KB { return ix.cur.Load().kb2 }

// Config returns the configuration the index was built under.
func (ix *Index) Config() Config { return ix.cur.Load().cfg }

// Epoch returns the index's epoch number: 0 for a fresh build, +1 per
// absorbed mutation, persisted through snapshots.
func (ix *Index) Epoch() uint64 { return ix.cur.Load().seq }

// Mutable reports whether the index accepts Upsert/Delete: both KBs
// must retain their source triples.
func (ix *Index) Mutable() bool {
	e := ix.cur.Load()
	return e.kb1.kb.HasSources() && e.kb2.kb.HasSources()
}

// Matches returns the full match set as URI pairs, in canonical order.
func (ix *Index) Matches() []Match {
	e := ix.cur.Load()
	out := make([]Match, len(e.matches))
	for i, p := range e.matches {
		out[i] = Match{URI1: e.kb1.kb.URI(p.E1), URI2: e.kb2.kb.URI(p.E2)}
	}
	return out
}

// NumMatches returns the size of the match set — unlike Stats, it
// never forces a mapped index's lazy tiers (the match lists decode at
// open).
func (ix *Index) NumMatches() int { return len(ix.cur.Load().matches) }

// IndexStats summarizes an index for monitoring (the /stats payload of
// the serve endpoint).
type IndexStats struct {
	KB1, KB2                          KBStats
	Epoch                             uint64
	JournalLength                     int
	Matches                           int
	ByName, ByValue, ByRank           int
	DiscardedByReciprocity            int
	NameBlocks, TokenBlocks           int
	NameComparisons, TokenComparisons int64
	PurgedBlocks                      int
	// Shards is the configured shard count (1 = unsharded).
	Shards int
}

// Stats reports the index's summary statistics.
func (ix *Index) Stats() IndexStats {
	return ix.statsOf(ix.cur.Load())
}

// statsOf derives the statistics of one epoch (serve handlers pass
// the epoch they answer from, so a response never mixes two).
func (ix *Index) statsOf(e *epoch) IndexStats {
	return IndexStats{
		KB1:                    e.kb1.Stats(),
		KB2:                    e.kb2.Stats(),
		Epoch:                  e.seq,
		JournalLength:          int(ix.journalLen.Load()),
		Matches:                len(e.matches),
		ByName:                 len(e.h1),
		ByValue:                len(e.h2),
		ByRank:                 len(e.h3),
		DiscardedByReciprocity: e.discardedByH4,
		NameBlocks:             e.nameBlockCount,
		TokenBlocks:            e.tokenBlockCount,
		NameComparisons:        e.nameComparisons,
		TokenComparisons:       e.tokenComparisons,
		PurgedBlocks:           e.purge.RemovedBlocks,
		Shards:                 e.shards,
	}
}

// QueryResult answers one queried URI: where the entity was found and
// the matches it participates in — the heuristic composition
// (H1 ∨ H2 ∨ H3) ∧ H4 restricted to that entity.
type QueryResult struct {
	// URI is the queried entity, echoed back.
	URI string
	// In1 and In2 report whether the URI names an entity of the first /
	// second KB. Both false means the URI is unknown to the index.
	In1, In2 bool
	// Matches lists the resolved pairs involving the entity, in
	// canonical order.
	Matches []Match
}

// Query resolves entity URIs against the index. Each URI is looked up
// in both KBs; unknown URIs yield a result with In1 == In2 == false and
// no matches. Query is read-only, lock-free, and safe for concurrent
// use — including concurrently with mutations, which it observes as an
// atomic epoch switch (one Query call always answers from a single
// epoch).
func (ix *Index) Query(entityURIs ...string) []QueryResult {
	e := ix.cur.Load()
	out := make([]QueryResult, len(entityURIs))
	for i, uri := range entityURIs {
		res := QueryResult{URI: uri}
		var positions []int32
		if e1, ok := e.kb1.kb.Lookup(uri); ok {
			res.In1 = true
			positions = append(positions, e.by1[e1]...)
		}
		if e2, ok := e.kb2.kb.Lookup(uri); ok {
			res.In2 = true
			positions = appendNewPositions(positions, e.by2[e2])
		}
		for _, pos := range positions {
			p := e.matches[pos]
			res.Matches = append(res.Matches, Match{URI1: e.kb1.kb.URI(p.E1), URI2: e.kb2.kb.URI(p.E2)})
		}
		out[i] = res
	}
	return out
}

// appendNewPositions appends the positions of b not already present in
// a (both lists are short: an entity participates in few matches).
func appendNewPositions(a, b []int32) []int32 {
	for _, pos := range b {
		dup := false
		for _, have := range a {
			if have == pos {
				dup = true
				break
			}
		}
		if !dup {
			a = append(a, pos)
		}
	}
	return a
}

// Prepare freezes the index's first KB into the prepared-side
// substrate of the delta path: the one-sided token/name inverted index
// and the sealed neighbor view. Building it costs one pass over KB1;
// afterwards QueryKB resolves a delta by probing the frozen structures
// with only the delta's keys — O(|delta|) work instead of re-blocking
// the whole pair — while producing bit-identical matches. Prepare is
// idempotent and safe to call concurrently with queries; the substrate
// is persisted by SaveIndex once built, and mutations keep it patched
// rather than rebuilding it.
func (ix *Index) Prepare() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := ix.cur.Load()
	if e.prep != nil {
		return
	}
	// A mapped index may carry the substrate undecoded; a decode (or
	// KB1 materialization) failure latches in the lazy parts and
	// surfaces through the fallible entry points — Prepare itself stays
	// infallible, like calling it on an index that is already prepared.
	prep, sharded, err := e.preparedSide()
	if err != nil {
		return
	}
	if prep != nil {
		ne := e.clone()
		ne.prep, ne.sharded = prep, sharded
		ix.cur.Store(ne)
		return
	}
	if e.materializeKB1() != nil {
		return
	}
	ne := e.clone()
	if e.cache != nil {
		ne.prep = prepFromCache(e.kb1.kb, e.cfg, e.cache)
	} else {
		ne.prep = pipeline.PrepareSide(e.kb1.kb, e.cfg.internal().Params())
	}
	ne.sharded = shardedFromPrep(ne.prep, ne.cache, ne.shards)
	ix.cur.Store(ne)
}

// shardedFromPrep derives an epoch's scatter-gather substrate: from
// the cache's maintained sub-substrates when they match the shard
// count (sharing the patched postings), from a fresh split otherwise.
// It is nil for unsharded indexes (k <= 1).
func shardedFromPrep(prep *pipeline.Prepared, cache *pipeline.Cache, k int) *pipeline.ShardedPrepared {
	if k <= 1 || prep == nil {
		return nil
	}
	if cache != nil && len(cache.ShardSubs) == k {
		if sp, err := pipeline.ShardedFromParts(prep, cache.ShardSubs, cache.ShardOwners); err == nil {
			return sp
		}
	}
	sp, err := pipeline.ShardSide(prep, k)
	if err != nil {
		return nil
	}
	return sp
}

// prepFromCache derives the delta-path substrate from an epoch's
// scoring cache (sharing the patched one-sided index).
func prepFromCache(kb1 *kb.KB, cfg Config, cache *pipeline.Cache) *pipeline.Prepared {
	return &pipeline.Prepared{
		Blocks:    cache.Prep1,
		Neighbors: kb.FrozenFromLists(kb1, cfg.internal().Params().N, cache.Top1),
	}
}

// Prepared reports whether the prepared-side substrate is available
// (built by Prepare, loaded from a snapshot that carried it — decoded
// or still mapped — or derived by a mutation).
func (ix *Index) Prepared() bool { return ix.cur.Load().hasPrepared() }

// setPreparedSide installs a substrate restored from a snapshot (load
// time, before the index is shared).
func (ix *Index) setPreparedSide(p *pipeline.Prepared) {
	e := ix.cur.Load()
	e.prep = p
	e.sharded = shardedFromPrep(e.prep, e.cache, e.shards)
}

// setShards installs the shard count restored from a snapshot (load
// time, before the index is shared), deriving the partitioned
// substrate when the prepared side is already present.
func (ix *Index) setShards(k int) {
	e := ix.cur.Load()
	e.shards = normalizeShards(k)
	e.sharded = shardedFromPrep(e.prep, e.cache, e.shards)
}

// QueryKB resolves a delta KB — one entity or a small batch of new
// descriptions — against the index's first KB. When the prepared
// substrate is available (see Prepare) and the delta is smaller than
// KB1, the run probes the frozen structures with only the delta's
// tokens and names, making the query O(|delta|); otherwise it
// transparently falls back to the full plan, which re-blocks the whole
// pair at O(|KB1|) per call. Both paths produce identical results. A
// QueryKB call answers from one epoch; concurrent mutations never
// tear it.
//
// Query, by contrast, is a constant-time lookup; route traffic about
// already-indexed entities there and reserve QueryKB/QueryReader (and
// the serve layer's /delta) for genuinely new descriptions.
func (ix *Index) QueryKB(ctx context.Context, delta *KB, opts ...ResolveOption) (*Result, error) {
	e := ix.cur.Load()
	// Every path scores against KB1's full tier; on a mapped index the
	// first call pays the one-time decode here (and a checksum failure
	// surfaces as an error, not a crash).
	if err := e.materializeKB1(); err != nil {
		return nil, err
	}
	if delta.Len() < e.kb1.Len() {
		prep, sharded, err := e.preparedSide()
		if err != nil {
			return nil, err
		}
		if sharded != nil {
			return e.querySharded(ctx, sharded, delta, opts...)
		}
		if prep != nil {
			return e.queryPrepared(ctx, prep, delta, opts...)
		}
	}
	return e.queryFull(ctx, delta, opts...)
}

// QueryKBFast is QueryKB with the substrate guaranteed: it prepares on
// first use (paying the one-time freeze there) and then always takes
// the prepared path when the delta qualifies.
func (ix *Index) QueryKBFast(ctx context.Context, delta *KB, opts ...ResolveOption) (*Result, error) {
	ix.Prepare()
	return ix.QueryKB(ctx, delta, opts...)
}

// QueryKBFull resolves the delta with the full plan, re-blocking the
// entire pair. It exists for benchmarking and for equivalence checks
// against the prepared path; QueryKB is the right entry point for
// serving.
func (ix *Index) QueryKBFull(ctx context.Context, delta *KB, opts ...ResolveOption) (*Result, error) {
	e := ix.cur.Load()
	if err := e.materializeKB1(); err != nil {
		return nil, err
	}
	return e.queryFull(ctx, delta, opts...)
}

func (e *epoch) queryFull(ctx context.Context, delta *KB, opts ...ResolveOption) (*Result, error) {
	return ResolveContext(ctx, e.kb1, delta, e.cfg, opts...)
}

// queryPrepared runs the delta plan against the epoch's frozen
// substrate (passed in, since a mapped epoch resolves it lazily).
func (e *epoch) queryPrepared(ctx context.Context, prep *pipeline.Prepared, delta *KB, opts ...ResolveOption) (*Result, error) {
	var o resolveOptions
	for _, opt := range opts {
		opt(&o)
	}
	res, err := core.RunDelta(ctx, prep, delta.kb, e.cfg.internal(), o.pipelineProgress(), o.progress != nil)
	if err != nil {
		return nil, err
	}
	return newResult(res, e.kb1.kb, delta.kb), nil
}

// querySharded scatters the delta across the epoch's K sub-substrates
// and gathers the ranked candidates through cross-shard merges —
// bit-identical to queryPrepared over the unsplit substrate.
func (e *epoch) querySharded(ctx context.Context, sharded *pipeline.ShardedPrepared, delta *KB, opts ...ResolveOption) (*Result, error) {
	var o resolveOptions
	for _, opt := range opts {
		opt(&o)
	}
	res, err := core.RunSharded(ctx, sharded, delta.kb, e.cfg.internal(), o.pipelineProgress(), o.progress != nil)
	if err != nil {
		return nil, err
	}
	return newResult(res, e.kb1.kb, delta.kb), nil
}

// QueryReader parses a small N-Triples delta and resolves it against
// the index's first KB (see QueryKB). The source's Lenient flag skips
// malformed lines; the skipped count is reported in
// Result.SkippedLines2.
func (ix *Index) QueryReader(ctx context.Context, src Source, opts ...ResolveOption) (*Result, error) {
	var delta *KB
	var skipped int
	var err error
	if src.Lenient {
		delta, skipped, err = LoadKBLenient(src.Name, src.R)
	} else {
		delta, err = LoadKB(src.Name, src.R)
	}
	if err != nil {
		return nil, fmt.Errorf("minoaner: parsing query delta: %w", err)
	}
	res, err := ix.QueryKB(ctx, delta, opts...)
	if err != nil {
		return nil, err
	}
	res.SkippedLines2 = skipped
	return res, nil
}

// Upsert absorbs a delta KB into the indexed pair: every entity of the
// delta replaces (or adds) its description on the given side (1 or 2),
// at triple granularity — links from other entities to replaced ones
// reclassify exactly as a from-scratch rebuild would. The call blocks
// until the new epoch is published; concurrent readers keep answering
// from the previous epoch until then. After it returns,
// Matches/Query/QueryKB are bit-identical to BuildIndex over the
// mutated KBs. Upserting descriptions identical to the indexed ones is
// a no-op (no epoch bump). The delta must retain sources (every KB
// this package parses does).
func (ix *Index) Upsert(ctx context.Context, side int, delta *KB) error {
	if delta == nil || delta.Len() == 0 {
		return errors.New("minoaner: Upsert requires a non-empty delta KB")
	}
	_, err := ix.applyMutation(ctx, side, delta, nil)
	return err
}

// Delete removes entities (by subject URI) from the given side: all
// their triples vanish, and links from surviving entities degrade to
// dangling values exactly as a from-scratch rebuild would. Deleting
// URIs the side does not contain is a no-op.
func (ix *Index) Delete(ctx context.Context, side int, uris ...string) error {
	if len(uris) == 0 {
		return errors.New("minoaner: Delete requires at least one URI")
	}
	_, err := ix.applyMutation(ctx, side, nil, uris)
	return err
}

// mutationOutcome reports what one applyMutation call published — the
// serve handlers answer from it rather than re-reading shared state,
// so a response never describes a concurrent caller's mutation.
type mutationOutcome struct {
	epoch   uint64
	matches int
	noop    bool
}

func (ix *Index) applyMutation(ctx context.Context, side int, delta *KB, uris []string) (mutationOutcome, error) {
	if side != 1 && side != 2 {
		return mutationOutcome{}, fmt.Errorf("minoaner: side must be 1 or 2, got %d", side)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	// Mutations derive the next epoch from the previous one's concrete
	// structures; a mapped epoch decodes fully first (copy-on-write
	// never touches the mapping).
	if err := ix.materializeLocked(); err != nil {
		return mutationOutcome{}, err
	}
	e := ix.cur.Load()
	if err := ix.ensureMutator(ctx, e); err != nil {
		return mutationOutcome{}, err
	}
	e = ix.cur.Load() // ensureMutator may have published a primed clone

	store, oldSide := ix.mut.store1, e.kb1
	if side == 2 {
		store, oldSide = ix.mut.store2, e.kb2
	}
	var deltaKB *kb.KB
	if delta != nil {
		deltaKB = delta.kb
	}
	changed, revert, err := store.Apply(deltaKB, uris)
	if err != nil {
		return mutationOutcome{}, fmt.Errorf("minoaner: applying mutation: %w", err)
	}
	if !changed {
		return mutationOutcome{epoch: e.seq, matches: len(e.matches), noop: true}, nil
	}
	newSide := &KB{kb: store.Assemble(oldSide.kb)}

	old1, old2 := e.kb1, e.kb2
	new1, new2 := old1, old2
	if side == 1 {
		new1 = newSide
	} else {
		new2 = newSide
	}
	res, nextCache, err := core.RunUpdate(ctx, e.cache, old1.kb, old2.kb, new1.kb, new2.kb, e.cfg.internal(), nil, false)
	if err != nil {
		revert()
		return mutationOutcome{}, fmt.Errorf("minoaner: absorbing mutation: %w", err)
	}

	ne := &epoch{
		seq:              e.seq + 1,
		kb1:              new1,
		kb2:              new2,
		cfg:              e.cfg,
		nameBlocks:       nextCache.NameBlocks,
		tokenBlocks:      nextCache.TokenBlocks,
		purge:            res.Purge,
		nameBlockCount:   res.NameBlockCount,
		tokenBlockCount:  res.TokenBlockCount,
		nameComparisons:  res.NameComparisons,
		tokenComparisons: res.TokenComparisons,
		h1:               res.H1,
		h2:               res.H2,
		h3:               res.H3,
		matches:          res.Matches,
		discardedByH4:    res.DiscardedByH4,
		shards:           e.shards,
		cache:            nextCache,
	}
	ne.prep = prepFromCache(new1.kb, ne.cfg, nextCache)
	ne.sharded = shardedFromPrep(ne.prep, nextCache, ne.shards)
	ne.buildLookup()

	entry := JournalEntry{Seq: ne.seq, Side: side, Op: JournalUpsert}
	if delta != nil {
		entry.Subjects = delta.URIs()
		entry.Triples = delta.kb.NumTriples()
		entry.Delta = deltaLines(delta)
	} else {
		entry.Op = JournalDelete
		entry.Subjects = append([]string(nil), uris...)
	}
	// Publish the epoch before the journal counter: a concurrent
	// Stats may transiently see the journal lag the epoch, never lead
	// it.
	ix.journal = append(ix.journal, entry)
	ix.cur.Store(ne)
	ix.journalLen.Store(int64(len(ix.journal)))
	return mutationOutcome{epoch: ne.seq, matches: len(ne.matches)}, nil
}

// ensureMutator lazily builds the write side: the triple stores and
// the epoch's scoring substrate (recomputing candidate evidence when
// the epoch was loaded rather than built). Called under mu.
func (ix *Index) ensureMutator(ctx context.Context, e *epoch) error {
	if ix.mut == nil {
		s1, err := kb.NewStore(e.kb1.kb)
		if err != nil {
			return fmt.Errorf("%w: first KB: %w", ErrNotMutable, err)
		}
		s2, err := kb.NewStore(e.kb2.kb)
		if err != nil {
			return fmt.Errorf("%w: second KB: %w", ErrNotMutable, err)
		}
		workers := e.cfg.internal().Params().Workers
		s1.SetWorkers(workers)
		s2.SetWorkers(workers)
		ix.mut = &mutator{store1: s1, store2: s2}
	}
	if e.cache == nil {
		st := pipeline.NewState(e.kb1.kb, e.kb2.kb, e.cfg.internal().Params())
		st.NameBlocks = e.nameBlocks
		st.TokenBlocks = e.tokenBlocks
		cache, err := pipeline.NewCache(ctx, st, e.nameBlocks, e.purge)
		if err != nil {
			return fmt.Errorf("minoaner: priming mutable substrate: %w", err)
		}
		cache.SetMatches(e.h1, e.h2, e.h3, e.matches, e.discardedByH4)
		cache.AttachShardSubs(e.kb1.kb, e.shards)
		ne := e.clone()
		ne.cache = cache
		ix.cur.Store(ne)
	} else if e.shards > 1 && len(e.cache.ShardSubs) != e.shards {
		// A cache primed before the index was (re)sharded: attach the
		// owner-restricted sub-substrates so mutations maintain them.
		cache := *e.cache
		cache.AttachShardSubs(e.kb1.kb, e.shards)
		ne := e.clone()
		ne.cache = &cache
		ix.cur.Store(ne)
	}
	return nil
}

// Compact trims the index's write-side bookkeeping: the mutation
// journal is truncated (the epoch number survives), the triple stores
// drop terms orphaned by deletions, and overlay chains in the blocking
// substrate flatten. Reads are unaffected; call it after large
// mutation bursts, before SaveIndex, or on a schedule.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.compactions.Add(1)
	ix.journal = nil
	ix.journalLen.Store(0)
	if ix.mut != nil {
		ix.mut.store1.Compact()
		ix.mut.store2.Compact()
	}
	e := ix.cur.Load()
	if e.cache != nil {
		ne := e.clone()
		cache := *e.cache
		cache.Prep1 = cache.Prep1.Flatten()
		cache.Prep2 = cache.Prep2.Flatten()
		if len(cache.ShardSubs) > 1 {
			subs := make([]*blocking.Prepared, len(cache.ShardSubs))
			for i, sub := range cache.ShardSubs {
				subs[i] = sub.Flatten()
			}
			cache.ShardSubs = subs
		}
		ne.cache = &cache
		if ne.prep != nil && ne.prep.Blocks != nil {
			prep := *ne.prep
			prep.Blocks = cache.Prep1
			ne.prep = &prep
		}
		ne.sharded = shardedFromPrep(ne.prep, ne.cache, ne.shards)
		ix.cur.Store(ne)
	}
}

// Shards returns the index's configured shard count (1 = unsharded).
func (ix *Index) Shards() int { return ix.cur.Load().shards }

// Sharded reports whether scatter-gather resolution is active: the
// shard count exceeds 1 and the partitioned substrate has been derived
// (which happens with Prepare, the first mutation, or a snapshot load
// that carried the prepared side — on a mapped index the substrate may
// still be undecoded, which counts as available).
func (ix *Index) Sharded() bool {
	e := ix.cur.Load()
	return e.sharded != nil || (e.shards > 1 && e.hasPrepared())
}

// Reshard re-partitions the index into k shards (1 = unsharded). The
// call re-splits the current substrate — O(|KB1|) once — and leaves
// every query and mutation result bit-identical; only the parallel
// layout changes. It blocks concurrent mutations but never readers,
// who observe the change as an atomic epoch switch.
func (ix *Index) Reshard(k int) error {
	if k < 1 {
		return fmt.Errorf("minoaner: shard count %d out of range (need >= 1)", k)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := ix.cur.Load()
	if e.shards == k {
		return nil
	}
	// A cloned mapped epoch would re-verify the old shard count against
	// the snapshot on decode; re-partitioning starts from concrete
	// structures instead.
	if err := ix.materializeLocked(); err != nil {
		return err
	}
	e = ix.cur.Load()
	ne := e.clone()
	ne.shards = k
	if e.cache != nil {
		cache := *e.cache
		cache.AttachShardSubs(e.kb1.kb, k)
		ne.cache = &cache
	}
	ne.sharded = shardedFromPrep(ne.prep, ne.cache, k)
	ix.cur.Store(ne)
	return nil
}

// JournalEntry records one absorbed mutation. The journal is the
// replayable provenance of a mutated index: it persists in snapshots
// (section 9), is truncated by Compact, and feeding a primary's
// entries to Index.Replay reproduces the primary's state exactly.
type JournalEntry struct {
	// Seq is the epoch the mutation produced.
	Seq uint64
	// Op is JournalUpsert or JournalDelete.
	Op byte
	// Side is the mutated side (1 or 2).
	Side int
	// Subjects lists the upserted entity URIs / deleted URIs.
	Subjects []string
	// Triples counts the delta's triples (0 for deletes).
	Triples int
	// Delta holds an upsert's source triples as canonical N-Triples
	// lines, one per retained triple in interned order — the payload
	// that makes the entry replayable on another index. Nil for
	// deletes, and for upsert entries loaded from snapshots written
	// before the payload existed (Replay rejects those with
	// ErrJournalTruncated).
	Delta []string
}

// Journal operation codes.
const (
	JournalUpsert byte = 1
	JournalDelete byte = 2
)

// Journal returns a copy of the mutation journal accumulated since the
// last Compact (or snapshot load).
func (ix *Index) Journal() []JournalEntry {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return append([]JournalEntry(nil), ix.journal...)
}

// Compactions returns how many times Compact has run over the index's
// lifetime (persisted through snapshots). Replication compares the
// primary's count against the replica's: a difference means the
// primary rewrote journal-invisible state and the replica must resync.
func (ix *Index) Compactions() uint64 { return ix.compactions.Load() }

// JournalTail is JournalSince's answer: the entries a caller must
// replay to catch up, plus the epoch and compaction count they lead
// to, captured atomically with the entries.
type JournalTail struct {
	Entries     []JournalEntry
	Epoch       uint64
	Compactions uint64
}

// JournalSince returns the journal entries with Seq > since — the tail
// an index at epoch `since` must Replay to reach this index's state.
// An up-to-date cursor (since >= current epoch) yields no entries. It
// fails with ErrJournalTruncated when Compact has dropped entries
// after `since`: the cursor predates the journal's coverage, and only
// a full snapshot resync can bridge the gap.
func (ix *Index) JournalSince(since uint64) (JournalTail, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e := ix.cur.Load()
	tail := JournalTail{Epoch: e.seq, Compactions: ix.compactions.Load()}
	base := e.seq - uint64(len(ix.journal))
	if since < base {
		return tail, fmt.Errorf("%w: journal covers epochs (%d, %d], cursor at %d", ErrJournalTruncated, base, e.seq, since)
	}
	if since >= e.seq {
		return tail, nil
	}
	tail.Entries = append([]JournalEntry(nil), ix.journal[since-base:]...)
	return tail, nil
}

// Replay applies journal entries taken from another index — typically
// a replication primary's Journal or JournalSince tail — in order.
// Entries at or below the current epoch are skipped, so overlapping
// tails are safe. The result is rebuild-equivalent and byte-exact:
// after replaying the primary's journal, this index's matches,
// statistics, and saved snapshot are bit-identical to the primary's at
// the same epoch. Replay is a write-side call: serialize it with other
// mutations (a replica has exactly one writer, its tailing loop).
//
// It returns the number of entries applied and fails with
// ErrJournalTruncated when the entries do not connect to the current
// epoch, or when an upsert entry lacks its delta payload (journals
// persisted before the replayable format); both mean the caller must
// resync from a snapshot.
func (ix *Index) Replay(ctx context.Context, entries []JournalEntry) (int, error) {
	applied := 0
	for i := range entries {
		ok, err := ix.replayOne(ctx, &entries[i])
		if err != nil {
			return applied, fmt.Errorf("minoaner: replaying journal entry for epoch %d: %w", entries[i].Seq, err)
		}
		if ok {
			applied++
		}
	}
	return applied, nil
}

// replayOne applies one journal entry, verifying it produces exactly
// the epoch it recorded.
func (ix *Index) replayOne(ctx context.Context, je *JournalEntry) (bool, error) {
	cur := ix.Epoch()
	if je.Seq <= cur {
		return false, nil // already absorbed: an overlapping tail
	}
	if je.Seq != cur+1 {
		return false, fmt.Errorf("%w: entry jumps from epoch %d to %d", ErrJournalTruncated, cur, je.Seq)
	}
	var out mutationOutcome
	var err error
	switch je.Op {
	case JournalUpsert:
		if len(je.Delta) == 0 {
			return false, fmt.Errorf("%w: upsert entry carries no delta payload (journal predates the replayable format)", ErrJournalTruncated)
		}
		delta, perr := LoadKB("replay", strings.NewReader(strings.Join(je.Delta, "\n")))
		if perr != nil {
			return false, fmt.Errorf("parsing delta payload: %w", perr)
		}
		out, err = ix.applyMutation(ctx, je.Side, delta, nil)
	case JournalDelete:
		out, err = ix.applyMutation(ctx, je.Side, nil, je.Subjects)
	default:
		return false, fmt.Errorf("invalid journal op %d", je.Op)
	}
	if err != nil {
		return false, err
	}
	if out.noop || out.epoch != je.Seq {
		return false, fmt.Errorf("replay diverged: entry for epoch %d produced epoch %d (noop=%v)", je.Seq, out.epoch, out.noop)
	}
	return true, nil
}

// deltaLines renders an upsert delta's retained source triples as
// canonical N-Triples lines. The rendering round-trips exactly (write,
// parse, write is the identity), so replaying the lines rebuilds a
// delta KB with bit-identical sources.
func deltaLines(delta *KB) []string {
	triples := delta.kb.SourceTriples()
	out := make([]string, len(triples))
	for i, t := range triples {
		out[i] = t.String()
	}
	return out
}

// replaceState adopts another index's entire state — epoch, journal,
// and compaction count — atomically for readers. It backs a replica's
// full resync: src is a freshly loaded snapshot that has never been
// shared, and ownership of its state transfers to ix. The stale write
// side is dropped; the next mutation rebuilds it from the adopted
// epoch.
func (ix *Index) replaceState(src *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.mut = nil
	ix.journal = src.Journal()
	ix.compactions.Store(src.compactions.Load())
	ix.cur.Store(src.cur.Load())
	ix.journalLen.Store(int64(len(ix.journal)))
	// Ownership of a mapped source's mapping transfers too, so the
	// adopting index's Close releases it. Any mapping ix held before is
	// only reachable through old epoch pointers now; its finalizer
	// reclaims it once those drain.
	ix.mapped = src.mapped
	src.mapped = nil
}

// SaveIndexFile writes the index snapshot to a file atomically: the
// bytes go to a temporary file in the same directory, are synced, and
// replace the target via rename — a failed save (or a crash mid-write)
// leaves any previous snapshot at the path intact.
func SaveIndexFile(path string, ix *Index) error {
	return writeFileAtomic(path, func(w io.Writer) error { return SaveIndex(w, ix) })
}

// writeFileAtomic writes a file via temp file + fsync + rename, so the
// path either keeps its old content or holds the complete new bytes —
// never a truncated mix.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Chmod(0o644); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadIndexFile reads an index snapshot from a file.
func LoadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadIndex(f)
}

// pipelineProgress adapts the public progress callback to the pipeline
// layer.
func (o *resolveOptions) pipelineProgress() pipeline.Progress {
	if o.progress == nil {
		return nil
	}
	return func(ev pipeline.ProgressEvent) {
		o.progress(StageProgress{
			Stage:  ev.Stage,
			Index:  ev.Index,
			Total:  ev.Total,
			Done:   ev.Done,
			Timing: stageTiming(ev.Stat),
		})
	}
}
