package minoaner

import (
	"context"
	"fmt"
	"os"
	"sync"

	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// Index is a fully resolved, immutable snapshot of a KB pair: the built
// KBs, their block collections, and the complete match set
// M = (H1 ∨ H2 ∨ H3) ∧ H4, organized for query-time access. MinoanER's
// matching needs no iteration, so everything a resolution query needs
// is static — an Index is built (or loaded) once and then answers
// "who matches entity X?" in constant time, safely from any number of
// goroutines.
//
// Build one with BuildIndex, persist it with SaveIndex, and reload it
// with LoadIndex; the snapshot round-trips bit-identically, so a served
// index is byte-for-byte the index that was built.
type Index struct {
	kb1, kb2 *KB
	cfg      Config

	nameBlocks  *blocking.Collection
	tokenBlocks *blocking.Collection
	purge       blocking.PurgeResult

	nameBlockCount, tokenBlockCount   int
	nameComparisons, tokenComparisons int64

	h1, h2, h3    []eval.Pair
	matches       []eval.Pair
	discardedByH4 int

	by1, by2 map[kb.EntityID][]int32 // entity -> positions in matches

	// prep is the frozen left-side substrate of the prepared delta
	// path: nil until Prepare builds it (or LoadIndex restores it from
	// a snapshot), immutable afterwards.
	prepMu sync.Mutex
	prep   *pipeline.Prepared
}

// BuildIndex resolves the KB pair once and assembles the queryable
// index.
func BuildIndex(kb1, kb2 *KB, cfg Config) (*Index, error) {
	return BuildIndexContext(context.Background(), kb1, kb2, cfg)
}

// BuildIndexContext is BuildIndex under a context, with optional
// progress reporting (WithProgress). It runs the same staged pipeline
// as ResolveContext and retains the artifacts queries need: the block
// collections, the per-heuristic contributions, and the final match
// set.
func BuildIndexContext(ctx context.Context, kb1, kb2 *KB, cfg Config, opts ...ResolveOption) (*Index, error) {
	var o resolveOptions
	for _, opt := range opts {
		opt(&o)
	}
	icfg := cfg.internal()
	if err := icfg.Validate(); err != nil {
		return nil, err
	}
	st := pipeline.NewState(kb1.kb, kb2.kb, icfg.Params())
	// Observed runs record per-stage allocation deltas, matching
	// ResolveContext's behavior so -v output is consistent across
	// subcommands.
	eng := pipeline.Engine{Plan: core.PlanFor(icfg), Progress: o.pipelineProgress(), AllocStats: o.progress != nil}
	if _, err := eng.Run(ctx, st); err != nil {
		return nil, err
	}
	ix := &Index{
		kb1:              kb1,
		kb2:              kb2,
		cfg:              cfg,
		nameBlocks:       st.NameBlocks,
		tokenBlocks:      st.TokenBlocks,
		purge:            st.PurgeStats,
		nameBlockCount:   st.NameBlockCount,
		tokenBlockCount:  st.TokenBlockCount,
		nameComparisons:  st.NameComparisons,
		tokenComparisons: st.TokenComparisons,
		h1:               st.H1,
		h2:               st.H2,
		h3:               st.H3,
		matches:          st.Matches,
		discardedByH4:    st.DiscardedByH4,
	}
	ix.buildLookup()
	return ix, nil
}

// buildLookup derives the per-entity match positions from the match
// list.
func (ix *Index) buildLookup() {
	ix.by1 = make(map[kb.EntityID][]int32, len(ix.matches))
	ix.by2 = make(map[kb.EntityID][]int32, len(ix.matches))
	for i, p := range ix.matches {
		ix.by1[p.E1] = append(ix.by1[p.E1], int32(i))
		ix.by2[p.E2] = append(ix.by2[p.E2], int32(i))
	}
}

// KB1 returns the first indexed KB.
func (ix *Index) KB1() *KB { return ix.kb1 }

// KB2 returns the second indexed KB.
func (ix *Index) KB2() *KB { return ix.kb2 }

// Config returns the configuration the index was built under.
func (ix *Index) Config() Config { return ix.cfg }

// Matches returns the full match set as URI pairs, in canonical order.
func (ix *Index) Matches() []Match {
	out := make([]Match, len(ix.matches))
	for i, p := range ix.matches {
		out[i] = Match{URI1: ix.kb1.kb.URI(p.E1), URI2: ix.kb2.kb.URI(p.E2)}
	}
	return out
}

// IndexStats summarizes an index for monitoring (the /stats payload of
// the serve endpoint).
type IndexStats struct {
	KB1, KB2                          KBStats
	Matches                           int
	ByName, ByValue, ByRank           int
	DiscardedByReciprocity            int
	NameBlocks, TokenBlocks           int
	NameComparisons, TokenComparisons int64
	PurgedBlocks                      int
}

// Stats reports the index's summary statistics.
func (ix *Index) Stats() IndexStats {
	return IndexStats{
		KB1:                    ix.kb1.Stats(),
		KB2:                    ix.kb2.Stats(),
		Matches:                len(ix.matches),
		ByName:                 len(ix.h1),
		ByValue:                len(ix.h2),
		ByRank:                 len(ix.h3),
		DiscardedByReciprocity: ix.discardedByH4,
		NameBlocks:             ix.nameBlockCount,
		TokenBlocks:            ix.tokenBlockCount,
		NameComparisons:        ix.nameComparisons,
		TokenComparisons:       ix.tokenComparisons,
		PurgedBlocks:           ix.purge.RemovedBlocks,
	}
}

// QueryResult answers one queried URI: where the entity was found and
// the matches it participates in — the heuristic composition
// (H1 ∨ H2 ∨ H3) ∧ H4 restricted to that entity.
type QueryResult struct {
	// URI is the queried entity, echoed back.
	URI string
	// In1 and In2 report whether the URI names an entity of the first /
	// second KB. Both false means the URI is unknown to the index.
	In1, In2 bool
	// Matches lists the resolved pairs involving the entity, in
	// canonical order.
	Matches []Match
}

// Query resolves entity URIs against the index. Each URI is looked up
// in both KBs; unknown URIs yield a result with In1 == In2 == false and
// no matches. Query is read-only and safe for concurrent use.
func (ix *Index) Query(entityURIs ...string) []QueryResult {
	out := make([]QueryResult, len(entityURIs))
	for i, uri := range entityURIs {
		res := QueryResult{URI: uri}
		var positions []int32
		if e1, ok := ix.kb1.kb.Lookup(uri); ok {
			res.In1 = true
			positions = append(positions, ix.by1[e1]...)
		}
		if e2, ok := ix.kb2.kb.Lookup(uri); ok {
			res.In2 = true
			positions = appendNewPositions(positions, ix.by2[e2])
		}
		for _, pos := range positions {
			p := ix.matches[pos]
			res.Matches = append(res.Matches, Match{URI1: ix.kb1.kb.URI(p.E1), URI2: ix.kb2.kb.URI(p.E2)})
		}
		out[i] = res
	}
	return out
}

// appendNewPositions appends the positions of b not already present in
// a (both lists are short: an entity participates in few matches).
func appendNewPositions(a, b []int32) []int32 {
	for _, pos := range b {
		dup := false
		for _, have := range a {
			if have == pos {
				dup = true
				break
			}
		}
		if !dup {
			a = append(a, pos)
		}
	}
	return a
}

// Prepare freezes the index's first KB into the prepared-side
// substrate of the delta path: the one-sided token/name inverted index
// and the sealed neighbor view. Building it costs one pass over KB1;
// afterwards QueryKB resolves a delta by probing the frozen structures
// with only the delta's keys — O(|delta|) work instead of re-blocking
// the whole pair — while producing bit-identical matches. Prepare is
// idempotent and safe to call concurrently with queries; the substrate
// is persisted by SaveIndex once built.
func (ix *Index) Prepare() {
	ix.prepMu.Lock()
	defer ix.prepMu.Unlock()
	if ix.prep == nil {
		ix.prep = pipeline.PrepareSide(ix.kb1.kb, ix.cfg.internal().Params())
	}
}

// Prepared reports whether the prepared-side substrate is available
// (built by Prepare or loaded from a snapshot that carried it).
func (ix *Index) Prepared() bool { return ix.preparedSide() != nil }

func (ix *Index) preparedSide() *pipeline.Prepared {
	ix.prepMu.Lock()
	defer ix.prepMu.Unlock()
	return ix.prep
}

// setPreparedSide installs a substrate restored from a snapshot.
func (ix *Index) setPreparedSide(p *pipeline.Prepared) {
	ix.prepMu.Lock()
	ix.prep = p
	ix.prepMu.Unlock()
}

// QueryKB resolves a delta KB — one entity or a small batch of new
// descriptions — against the index's first KB. When the prepared
// substrate is available (see Prepare) and the delta is smaller than
// KB1, the run probes the frozen structures with only the delta's
// tokens and names, making the query O(|delta|); otherwise it
// transparently falls back to the full plan, which re-blocks the whole
// pair at O(|KB1|) per call. Both paths produce identical results. The
// indexed KBs and the substrate are immutable, so concurrent QueryKB
// calls are safe.
//
// Query, by contrast, is a constant-time lookup; route traffic about
// already-indexed entities there and reserve QueryKB/QueryReader (and
// the serve layer's /delta) for genuinely new descriptions.
func (ix *Index) QueryKB(ctx context.Context, delta *KB, opts ...ResolveOption) (*Result, error) {
	if prep := ix.preparedSide(); prep != nil && delta.Len() < ix.kb1.Len() {
		return ix.queryPrepared(ctx, prep, delta, opts...)
	}
	return ix.QueryKBFull(ctx, delta, opts...)
}

// QueryKBFast is QueryKB with the substrate guaranteed: it prepares on
// first use (paying the one-time freeze there) and then always takes
// the prepared path when the delta qualifies.
func (ix *Index) QueryKBFast(ctx context.Context, delta *KB, opts ...ResolveOption) (*Result, error) {
	ix.Prepare()
	return ix.QueryKB(ctx, delta, opts...)
}

// QueryKBFull resolves the delta with the full plan, re-blocking the
// entire pair. It exists for benchmarking and for equivalence checks
// against the prepared path; QueryKB is the right entry point for
// serving.
func (ix *Index) QueryKBFull(ctx context.Context, delta *KB, opts ...ResolveOption) (*Result, error) {
	return ResolveContext(ctx, ix.kb1, delta, ix.cfg, opts...)
}

// queryPrepared runs the delta plan against the frozen substrate.
func (ix *Index) queryPrepared(ctx context.Context, prep *pipeline.Prepared, delta *KB, opts ...ResolveOption) (*Result, error) {
	var o resolveOptions
	for _, opt := range opts {
		opt(&o)
	}
	res, err := core.RunDelta(ctx, prep, delta.kb, ix.cfg.internal(), o.pipelineProgress(), o.progress != nil)
	if err != nil {
		return nil, err
	}
	return newResult(res, ix.kb1.kb, delta.kb), nil
}

// QueryReader parses a small N-Triples delta and resolves it against
// the index's first KB (see QueryKB). The source's Lenient flag skips
// malformed lines; the skipped count is reported in
// Result.SkippedLines2.
func (ix *Index) QueryReader(ctx context.Context, src Source, opts ...ResolveOption) (*Result, error) {
	var delta *KB
	var skipped int
	var err error
	if src.Lenient {
		delta, skipped, err = LoadKBLenient(src.Name, src.R)
	} else {
		delta, err = LoadKB(src.Name, src.R)
	}
	if err != nil {
		return nil, fmt.Errorf("minoaner: parsing query delta: %w", err)
	}
	res, err := ix.QueryKB(ctx, delta, opts...)
	if err != nil {
		return nil, err
	}
	res.SkippedLines2 = skipped
	return res, nil
}

// SaveIndexFile writes the index snapshot to a file.
func SaveIndexFile(path string, ix *Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveIndex(f, ix); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadIndexFile reads an index snapshot from a file.
func LoadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadIndex(f)
}

// pipelineProgress adapts the public progress callback to the pipeline
// layer.
func (o *resolveOptions) pipelineProgress() pipeline.Progress {
	if o.progress == nil {
		return nil
	}
	return func(ev pipeline.ProgressEvent) {
		o.progress(StageProgress{
			Stage:  ev.Stage,
			Index:  ev.Index,
			Total:  ev.Total,
			Done:   ev.Done,
			Timing: stageTiming(ev.Stat),
		})
	}
}
