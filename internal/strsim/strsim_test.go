package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
		{"café", "cafe", 1}, // rune-level, not byte-level
		{"ab", "ba", 2},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"ab", "ba", 1}, // transposition counts once
		{"ca", "abc", 3},
		{"kitten", "sitting", 3},
		{"abcdef", "abcdfe", 1},
	}
	for _, tc := range tests {
		if got := DamerauLevenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("DamerauLevenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("empty sim = %f", got)
	}
	if got := LevenshteinSim("abc", "abc"); got != 1 {
		t.Errorf("equal sim = %f", got)
	}
	if got := LevenshteinSim("abcd", "abce"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("sim = %f, want 0.75", got)
	}
	if got := LevenshteinSim("abc", "xyz"); got != 0 {
		t.Errorf("disjoint sim = %f", got)
	}
}

func TestJaro(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"martha", "marhta", 0.944444},
		{"dixon", "dicksonx", 0.766667},
		{"jellyfish", "smellyfish", 0.896296},
		{"abc", "abc", 1},
		{"abc", "xyz", 0},
	}
	for _, tc := range tests {
		if got := Jaro(tc.a, tc.b); math.Abs(got-tc.want) > 1e-5 {
			t.Errorf("Jaro(%q,%q) = %f, want %f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.961111},
		{"dwayne", "duane", 0.840000},
		{"dixon", "dicksonx", 0.813333},
		{"abc", "abc", 1},
	}
	for _, tc := range tests {
		if got := JaroWinkler(tc.a, tc.b); math.Abs(got-tc.want) > 1e-5 {
			t.Errorf("JaroWinkler(%q,%q) = %f, want %f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestQGramDice(t *testing.T) {
	if got := QGramDice("night", "nacht", 2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("dice(night,nacht) = %f, want 0.25", got)
	}
	if got := QGramDice("same", "same", 2); got != 1 {
		t.Errorf("equal dice = %f", got)
	}
	if got := QGramDice("a", "b", 2); got != 0 {
		t.Errorf("short-string dice = %f", got)
	}
	if got := QGramDice("a", "a", 2); got != 1 {
		t.Errorf("short equal dice = %f", got)
	}
	// q defaulting
	if got := QGramDice("night", "nacht", 0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("default-q dice = %f", got)
	}
}

func TestMongeElkan(t *testing.T) {
	// Identical token sets in different order score 1.
	if got := MongeElkan("john smith", "smith john", nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("reordered tokens = %f, want 1", got)
	}
	// Asymmetry: every token of "john" matches into the longer string
	// perfectly, but not vice versa.
	ab := MongeElkan("john", "john smith", nil)
	ba := MongeElkan("john smith", "john", nil)
	if ab <= ba {
		t.Errorf("expected asymmetry: %f vs %f", ab, ba)
	}
	if got := MongeElkanSym("john", "john smith", nil); math.Abs(got-(ab+ba)/2) > 1e-12 {
		t.Errorf("symmetric mean wrong: %f", got)
	}
	if got := MongeElkan("", "", nil); got != 1 {
		t.Errorf("empty = %f", got)
	}
	if got := MongeElkan("a", "", nil); got != 0 {
		t.Errorf("half-empty = %f", got)
	}
	// Custom inner function.
	exact := func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0
	}
	if got := MongeElkan("alpha beta", "alpha gamma", exact); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("exact-inner = %f, want 0.5", got)
	}
}

// Properties shared by all normalized similarities.
func TestSimilarityProperties(t *testing.T) {
	sims := map[string]func(a, b string) float64{
		"LevenshteinSim": LevenshteinSim,
		"Jaro":           Jaro,
		"JaroWinkler":    JaroWinkler,
		"QGramDice":      func(a, b string) float64 { return QGramDice(a, b, 2) },
		"MongeElkanSym":  func(a, b string) float64 { return MongeElkanSym(a, b, nil) },
	}
	for name, sim := range sims {
		f := func(a, b string) bool {
			ab := sim(a, b)
			ba := sim(b, a)
			if math.Abs(ab-ba) > 1e-9 {
				return false
			}
			if ab < 0 || ab > 1+1e-9 {
				return false
			}
			return sim(a, a) > 1-1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: Levenshtein is a metric (triangle inequality, symmetry,
// identity).
func TestLevenshteinMetric(t *testing.T) {
	f := func(a, b, c string) bool {
		// Cap the lengths to keep the O(n·m) DP fast.
		a, b, c = cap10(a), cap10(b), cap10(c)
		ab := Levenshtein(a, b)
		ba := Levenshtein(b, a)
		if ab != ba {
			return false
		}
		if (ab == 0) != (a == b) {
			return false
		}
		ac := Levenshtein(a, c)
		cb := Levenshtein(c, b)
		return ab <= ac+cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Damerau-Levenshtein never exceeds Levenshtein.
func TestDamerauUpperBound(t *testing.T) {
	f := func(a, b string) bool {
		a, b = cap10(a), cap10(b)
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func cap10(s string) string {
	r := []rune(s)
	if len(r) > 10 {
		r = r[:10]
	}
	return string(r)
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("vasilis efthymiou", "vassilis efthimiou")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("simplifying entity resolution", "simplified entity-resolution")
	}
}
