// Package strsim provides the character- and token-level string
// similarity functions that entity-matching systems conventionally rely
// on: Levenshtein and Damerau-Levenshtein edit distances, Jaro and
// Jaro-Winkler, q-gram Dice overlap, and the Monge-Elkan token
// aggregation. All similarity functions return values in [0,1] with 1
// for equal strings; they operate on runes, not bytes.
//
// The Go ecosystem offers few maintained implementations of these
// classics, so the reproduction ships its own (used by the LINDA
// baseline's relation-label matching, and available for custom
// pipelines).
package strsim

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b: the minimum
// number of insertions, deletions, and substitutions transforming one
// into the other.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes Levenshtein into a similarity:
// 1 - distance / max(len(a), len(b)).
func LevenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// DamerauLevenshtein additionally counts adjacent transpositions as a
// single edit (the "optimal string alignment" variant).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	d := make([][]int, len(ra)+1)
	for i := range d {
		d[i] = make([]int, len(rb)+1)
		d[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		d[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i][j-1]+1, d[i-1][j]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[len(ra)][len(rb)]
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i, c := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || rb[j] != c {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among the matched characters.
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro for strings sharing a common prefix (up to 4
// runes), with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGramDice returns the Dice coefficient over the multisets of
// character q-grams of a and b: 2·|shared| / (|A| + |B|). Strings
// shorter than q compare by equality.
func QGramDice(a, b string, q int) float64 {
	if q <= 0 {
		q = 2
	}
	if a == b {
		return 1
	}
	ga, gb := qgrams(a, q), qgrams(b, q)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ga))
	for _, g := range ga {
		counts[g]++
	}
	shared := 0
	for _, g := range gb {
		if counts[g] > 0 {
			counts[g]--
			shared++
		}
	}
	return 2 * float64(shared) / float64(len(ga)+len(gb))
}

func qgrams(s string, q int) []string {
	r := []rune(s)
	if len(r) < q {
		return nil
	}
	out := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		out = append(out, string(r[i:i+q]))
	}
	return out
}

// MongeElkan aggregates a token-level similarity: for every token of a,
// the best match among b's tokens, averaged. The inner similarity
// defaults to JaroWinkler when nil. Note Monge-Elkan is asymmetric;
// use MongeElkanSym for a symmetric score.
func MongeElkan(a, b string, inner func(string, string) float64) float64 {
	if inner == nil {
		inner = JaroWinkler
	}
	ta, tb := fields(a), fields(b)
	if len(ta) == 0 || len(tb) == 0 {
		if len(ta) == 0 && len(tb) == 0 {
			return 1
		}
		return 0
	}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := inner(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// MongeElkanSym is the mean of the two Monge-Elkan directions.
func MongeElkanSym(a, b string, inner func(string, string) float64) float64 {
	return (MongeElkan(a, b, inner) + MongeElkan(b, a, inner)) / 2
}

// fields lower-cases and splits on any non-alphanumeric rune.
func fields(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
