package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokens(t *testing.T) {
	tests := []struct {
		name string
		in   string
		opts Options
		want []string
	}{
		{"simple", "Joe's Diner", DefaultOptions, []string{"joe", "s", "diner"}},
		{"empty", "", DefaultOptions, nil},
		{"punctuation only", "!!! --- ...", DefaultOptions, nil},
		{"digits", "Route 66 West", DefaultOptions, []string{"route", "66", "west"}},
		{"unicode letters", "Café Zoë", DefaultOptions, []string{"café", "zoë"}},
		{"greek", "Αθήνα-Ελλάδα", DefaultOptions, []string{"αθήνα", "ελλάδα"}},
		{"mixed separators", "a,b;c\td\ne", DefaultOptions, []string{"a", "b", "c", "d", "e"}},
		{"min length", "a bb ccc dddd", Options{MinLength: 3}, []string{"ccc", "dddd"}},
		{"stopwords", "the quick the fox", Options{Stopwords: map[string]struct{}{"the": {}}}, []string{"quick", "fox"}},
		{"uppercase folded", "IBM Corp", DefaultOptions, []string{"ibm", "corp"}},
		{"trailing token", "end2end", DefaultOptions, []string{"end2end"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Tokens(tc.in, tc.opts)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Tokens(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestTokensOfAll(t *testing.T) {
	got := TokensOfAll([]string{"Alpha Beta", "", "Gamma"}, DefaultOptions)
	want := []string{"alpha", "beta", "gamma"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokensOfAll = %v, want %v", got, want)
	}
}

func TestSetAndUnique(t *testing.T) {
	toks := []string{"a", "b", "a", "c", "b"}
	set := Set(toks)
	if len(set) != 3 {
		t.Errorf("set size = %d, want 3", len(set))
	}
	uniq := Unique(toks)
	if !reflect.DeepEqual(uniq, []string{"a", "b", "c"}) {
		t.Errorf("Unique = %v", uniq)
	}
	if got := Unique(nil); len(got) != 0 {
		t.Errorf("Unique(nil) = %v", got)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"new", "york", "city"}
	tests := []struct {
		n    int
		want []string
	}{
		{0, nil},
		{1, []string{"new", "york", "city"}},
		{2, []string{"new york", "york city"}},
		{3, []string{"new york city"}},
		{4, nil},
	}
	for _, tc := range tests {
		got := NGrams(toks, tc.n)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("NGrams(n=%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestNGramsDoesNotAliasInput(t *testing.T) {
	toks := []string{"a", "b"}
	got := NGrams(toks, 1)
	got[0] = "mutated"
	if toks[0] != "a" {
		t.Error("NGrams(_,1) aliases its input")
	}
}

func TestNGramsUpTo(t *testing.T) {
	toks := []string{"a", "b", "c"}
	got := NGramsUpTo(toks, 3)
	want := []string{"a", "b", "c", "a b", "b c", "a b c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGramsUpTo = %v, want %v", got, want)
	}
}

func TestNormalizeKey(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Joe's  Diner!", "joe s diner"},
		{"", ""},
		{"---", ""},
		{"ONE two", "one two"},
	}
	for _, tc := range tests {
		if got := NormalizeKey(tc.in); got != tc.want {
			t.Errorf("NormalizeKey(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// Property: tokenization is idempotent — tokenizing the join of the
// tokens yields the same tokens.
func TestTokensIdempotent(t *testing.T) {
	f := func(s string) bool {
		first := Tokens(s, DefaultOptions)
		again := Tokens(strings.Join(first, " "), DefaultOptions)
		return reflect.DeepEqual(first, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: all emitted tokens are non-empty and lowercase.
func TestTokensWellFormed(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokens(s, DefaultOptions) {
			if tok == "" || tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: n-gram count is exactly max(0, len(tokens)-n+1) for n>1.
func TestNGramCountProperty(t *testing.T) {
	f := func(raw []string, n uint8) bool {
		k := int(n%4) + 1
		toks := Tokens(strings.Join(raw, " "), DefaultOptions)
		got := len(NGrams(toks, k))
		want := len(toks) - k + 1
		if want < 0 {
			want = 0
		}
		if k == 1 {
			want = len(toks)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokens(b *testing.B) {
	s := "The Quick Brown Fox Jumps Over the Lazy Dog, 42 Times — Every Day!"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokens(s, DefaultOptions)
	}
}
