// Package tokenize turns literal values into the schema-agnostic
// bag-of-words representation MinoanER operates on, and produces the
// token n-grams used by the BSL baseline.
//
// Tokenization is deliberately simple and deterministic: lowercase,
// split on any rune that is not a letter or digit. This mirrors the
// token-blocking convention of Papadakis et al. that the paper builds
// on: recall comes from cheap, schema-agnostic keys, precision from the
// matching phase.
package tokenize

import (
	"strings"
	"unicode"
)

// Options control tokenization.
type Options struct {
	// MinLength drops tokens shorter than this many runes (0 or 1 keeps all).
	MinLength int
	// Stopwords are dropped after lowercasing. Nil means no stopword removal;
	// token blocking instead relies on Block Purging to remove the
	// corresponding oversized blocks, as the paper does.
	Stopwords map[string]struct{}
}

// DefaultOptions are used throughout the pipeline: keep everything, let
// Block Purging handle frequent tokens.
var DefaultOptions = Options{}

// Tokens splits a literal into lowercase alphanumeric tokens using opts.
func Tokens(s string, opts Options) []string {
	if s == "" {
		return nil
	}
	out := make([]string, 0, 8)
	appendTokens(&out, s, opts)
	if len(out) == 0 {
		return nil
	}
	return out
}

func appendTokens(out *[]string, s string, opts Options) {
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			emit(out, lower[start:i], opts)
			start = -1
		}
	}
	if start >= 0 {
		emit(out, lower[start:], opts)
	}
}

func emit(out *[]string, tok string, opts Options) {
	if opts.MinLength > 1 && runeLen(tok) < opts.MinLength {
		return
	}
	if opts.Stopwords != nil {
		if _, ok := opts.Stopwords[tok]; ok {
			return
		}
	}
	*out = append(*out, tok)
}

func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// TokensOfAll tokenizes every value and concatenates the results,
// preserving per-value token order.
func TokensOfAll(values []string, opts Options) []string {
	var out []string
	for _, v := range values {
		appendTokens(&out, v, opts)
	}
	return out
}

// Set deduplicates tokens into a membership set.
func Set(tokens []string) map[string]struct{} {
	set := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		set[t] = struct{}{}
	}
	return set
}

// Unique returns the distinct tokens in first-occurrence order.
func Unique(tokens []string) []string {
	seen := make(map[string]struct{}, len(tokens))
	out := tokens[:0:0]
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// NGrams produces token n-grams: contiguous runs of n tokens joined by a
// single space. n=1 returns a copy of tokens. Runs shorter than n yield
// nothing. BSL represents every entity by the union of its token
// uni-, bi-, and tri-grams (paper §IV, baseline configuration (i)).
func NGrams(tokens []string, n int) []string {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		out := make([]string, len(tokens))
		copy(out, tokens)
		return out
	}
	if len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

// NGramsUpTo returns the union of 1..n grams in order.
func NGramsUpTo(tokens []string, n int) []string {
	var out []string
	for k := 1; k <= n; k++ {
		out = append(out, NGrams(tokens, k)...)
	}
	return out
}

// NormalizeKey canonicalizes a whole literal into a single blocking key:
// lowercase, tokens joined by single spaces. Used by Name Blocking (H1),
// where "the entire entity names are blocking keys".
func NormalizeKey(s string) string {
	toks := Tokens(s, DefaultOptions)
	if len(toks) == 0 {
		return ""
	}
	return strings.Join(toks, " ")
}
