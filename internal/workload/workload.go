// Package workload is a general, spec-driven synthetic KB-pair
// generator. Where internal/datagen ships the four fixed stand-ins of
// the paper's benchmarks, workload exposes the underlying knobs —
// population sizes, attribute noise, schema divergence, relation
// topology, distractor mass — so new stress tests (parameter sweeps,
// scaling studies, adversarial fixtures) can be declared rather than
// hand-written.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

// Spec declares one synthetic clean-clean ER workload.
type Spec struct {
	// Name labels the generated dataset.
	Name string
	// Seed drives all randomness.
	Seed int64
	// Classes declares the entity populations. At least one required.
	Classes []ClassSpec
}

// ClassSpec declares one entity class (e.g. "movie", "person").
type ClassSpec struct {
	// Name is the class label (also the rdf:type local name).
	Name string
	// Matched is the number of entities present in both KBs (and in the
	// ground truth).
	Matched int
	// Extra1 and Extra2 are unmatched distractors per KB.
	Extra1, Extra2 int
	// Attributes declares the literal attributes of the class.
	Attributes []AttributeSpec
	// Relations declares edges to other classes.
	Relations []RelationSpec
}

// AttributeSpec declares one literal attribute.
type AttributeSpec struct {
	// Name1 and Name2 are the per-KB predicate local names (schema
	// divergence is the norm on the Web). Empty Name2 copies Name1.
	Name1, Name2 string
	// Tokens is the number of tokens per value.
	Tokens int
	// Vocabulary is the size of the token pool: small pools make tokens
	// ambiguous, large pools make them distinctive.
	Vocabulary int
	// NoiseDrop, NoiseReplace are per-token probabilities applied to
	// the KB2 copy of a matched entity's value.
	NoiseDrop, NoiseReplace float64
	// Identifying marks the attribute as shared verbatim between the
	// two copies of a matched entity (before noise). Non-identifying
	// attributes are generated independently per KB (pure junk).
	Identifying bool
}

// RelationSpec declares edges from this class to a target class.
type RelationSpec struct {
	// Name1, Name2 are the per-KB predicate local names.
	Name1, Name2 string
	// Target is the target class name.
	Target string
	// OutDegree is the number of edges per entity.
	OutDegree int
	// MatchedOnly restricts edges to matched target entities, keeping
	// the cross-KB neighborhoods aligned.
	MatchedOnly bool
}

// Dataset is the generated pair.
type Dataset struct {
	KB1, KB2 *kb.KB
	GT       *eval.GroundTruth
}

// Generate builds the workload.
func Generate(spec Spec) (*Dataset, error) {
	if len(spec.Classes) == 0 {
		return nil, fmt.Errorf("workload: spec %q has no classes", spec.Name)
	}
	g := &generator{
		rng:   rand.New(rand.NewSource(spec.Seed)),
		ns1:   "http://kb1.example.org/",
		ns2:   "http://kb2.example.org/",
		pools: make(map[string][]string),
	}
	for _, c := range spec.Classes {
		if err := g.validate(c); err != nil {
			return nil, err
		}
	}
	// First pass: entity URIs per class (matched + extras), so
	// relations can point anywhere.
	for _, c := range spec.Classes {
		g.allocate(c)
	}
	for _, c := range spec.Classes {
		if err := g.emit(c); err != nil {
			return nil, err
		}
	}
	kb1, err := kb.FromTriples(spec.Name+"/KB1", g.t1)
	if err != nil {
		return nil, err
	}
	kb2, err := kb.FromTriples(spec.Name+"/KB2", g.t2)
	if err != nil {
		return nil, err
	}
	gt := eval.NewGroundTruth()
	for _, p := range g.gtURIs {
		e1, ok := kb1.Lookup(p[0])
		if !ok {
			return nil, fmt.Errorf("workload: ground-truth URI %q missing", p[0])
		}
		e2, ok := kb2.Lookup(p[1])
		if !ok {
			return nil, fmt.Errorf("workload: ground-truth URI %q missing", p[1])
		}
		if err := gt.Add(e1, e2); err != nil {
			return nil, err
		}
	}
	return &Dataset{KB1: kb1, KB2: kb2, GT: gt}, nil
}

type classPop struct {
	matched1, matched2 []string // parallel: matched1[i] ↔ matched2[i]
	extra1, extra2     []string
}

type generator struct {
	rng      *rand.Rand
	ns1, ns2 string
	pools    map[string][]string
	pops     map[string]*classPop
	t1, t2   []rdf.Triple
	gtURIs   [][2]string
}

func (g *generator) validate(c ClassSpec) error {
	if c.Name == "" {
		return fmt.Errorf("workload: class without a name")
	}
	if c.Matched < 0 || c.Extra1 < 0 || c.Extra2 < 0 {
		return fmt.Errorf("workload: class %q has negative populations", c.Name)
	}
	for _, a := range c.Attributes {
		if a.Name1 == "" {
			return fmt.Errorf("workload: class %q attribute without a name", c.Name)
		}
		if a.Tokens <= 0 || a.Vocabulary <= 0 {
			return fmt.Errorf("workload: class %q attribute %q needs positive Tokens and Vocabulary", c.Name, a.Name1)
		}
	}
	return nil
}

func (g *generator) allocate(c ClassSpec) {
	if g.pops == nil {
		g.pops = make(map[string]*classPop)
	}
	pop := &classPop{}
	for i := 0; i < c.Matched; i++ {
		pop.matched1 = append(pop.matched1, fmt.Sprintf("%sresource/%s/%06d", g.ns1, c.Name, i))
		pop.matched2 = append(pop.matched2, fmt.Sprintf("%sresource/%s/%06d", g.ns2, c.Name, i))
	}
	for i := 0; i < c.Extra1; i++ {
		pop.extra1 = append(pop.extra1, fmt.Sprintf("%sresource/%s/x%06d", g.ns1, c.Name, i))
	}
	for i := 0; i < c.Extra2; i++ {
		pop.extra2 = append(pop.extra2, fmt.Sprintf("%sresource/%s/x%06d", g.ns2, c.Name, i))
	}
	g.pops[c.Name] = pop
}

// pool returns the token pool for (class, attribute), built lazily.
func (g *generator) pool(class string, a AttributeSpec) []string {
	key := class + "/" + a.Name1 + "/" + fmt.Sprint(a.Vocabulary)
	if p, ok := g.pools[key]; ok {
		return p
	}
	p := make([]string, a.Vocabulary)
	for i := range p {
		p[i] = fmt.Sprintf("%s%04x", token3(g.rng), i)
	}
	g.pools[key] = p
	return p
}

func token3(rng *rand.Rand) string {
	const syll = "kamirotasunelofazebodagi"
	var b strings.Builder
	for i := 0; i < 3; i++ {
		o := 2 * rng.Intn(len(syll)/2)
		b.WriteString(syll[o : o+2])
	}
	return b.String()
}

func (g *generator) phrase(pool []string, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = pool[g.rng.Intn(len(pool))]
	}
	return strings.Join(parts, " ")
}

func (g *generator) noisy(value string, a AttributeSpec, pool []string) string {
	if a.NoiseDrop <= 0 && a.NoiseReplace <= 0 {
		return value
	}
	toks := strings.Fields(value)
	out := toks[:0:0]
	for _, tok := range toks {
		r := g.rng.Float64()
		switch {
		case r < a.NoiseDrop && len(toks) > 1:
		case r < a.NoiseDrop+a.NoiseReplace:
			out = append(out, pool[g.rng.Intn(len(pool))])
		default:
			out = append(out, tok)
		}
	}
	if len(out) == 0 {
		out = append(out, toks[0])
	}
	return strings.Join(out, " ")
}

func (g *generator) emit(c ClassSpec) error {
	pop := g.pops[c.Name]
	addAttr := func(side int, subj, pred, val string) {
		ns := g.ns1
		ts := &g.t1
		if side == 2 {
			ns = g.ns2
			ts = &g.t2
		}
		*ts = append(*ts, rdf.NewTriple(rdf.NewIRI(subj), rdf.NewIRI(ns+"ontology/"+pred), rdf.NewLiteral(val)))
	}
	addType := func(side int, subj string) {
		ns := g.ns1
		ts := &g.t1
		if side == 2 {
			ns = g.ns2
			ts = &g.t2
		}
		*ts = append(*ts, rdf.NewTriple(rdf.NewIRI(subj), rdf.NewIRI(kb.RDFType), rdf.NewIRI(ns+"class/"+c.Name)))
	}
	addRel := func(side int, subj, pred, obj string) {
		ns := g.ns1
		ts := &g.t1
		if side == 2 {
			ns = g.ns2
			ts = &g.t2
		}
		*ts = append(*ts, rdf.NewTriple(rdf.NewIRI(subj), rdf.NewIRI(ns+"ontology/"+pred), rdf.NewIRI(obj)))
	}

	name2 := func(a AttributeSpec) string {
		if a.Name2 != "" {
			return a.Name2
		}
		return a.Name1
	}
	relName2 := func(r RelationSpec) string {
		if r.Name2 != "" {
			return r.Name2
		}
		return r.Name1
	}

	emitAttrs := func(u1, u2 string, matched bool) {
		for _, a := range c.Attributes {
			pool := g.pool(c.Name, a)
			if u1 != "" {
				v1 := g.phrase(pool, a.Tokens)
				addAttr(1, u1, a.Name1, v1)
				if matched && u2 != "" {
					if a.Identifying {
						addAttr(2, u2, name2(a), g.noisy(v1, a, pool))
					} else {
						addAttr(2, u2, name2(a), g.phrase(pool, a.Tokens))
					}
				}
			}
			if u2 != "" && (!matched || u1 == "") {
				addAttr(2, u2, name2(a), g.phrase(pool, a.Tokens))
			}
		}
	}
	emitRels := func(u1, u2 string, matched bool) error {
		for _, r := range c.Relations {
			target, ok := g.pops[r.Target]
			if !ok {
				return fmt.Errorf("workload: class %q relation targets unknown class %q", c.Name, r.Target)
			}
			// Candidate target pools: matched entities keep aligned
			// neighborhoods; without MatchedOnly, distractor targets
			// join the pool (per KB).
			pool1 := target.matched1
			pool2 := target.matched2
			if !r.MatchedOnly {
				pool1 = append(append([]string{}, target.matched1...), target.extra1...)
				pool2 = append(append([]string{}, target.matched2...), target.extra2...)
			}
			for d := 0; d < r.OutDegree; d++ {
				if matched && u1 != "" && u2 != "" {
					// Aligned edge: same matched target on both sides.
					if len(target.matched1) == 0 {
						continue
					}
					idx := g.rng.Intn(len(target.matched1))
					addRel(1, u1, r.Name1, target.matched1[idx])
					addRel(2, u2, relName2(r), target.matched2[idx])
					continue
				}
				if u1 != "" && len(pool1) > 0 {
					addRel(1, u1, r.Name1, pool1[g.rng.Intn(len(pool1))])
				}
				if u2 != "" && len(pool2) > 0 {
					addRel(2, u2, relName2(r), pool2[g.rng.Intn(len(pool2))])
				}
			}
		}
		return nil
	}

	for i := range pop.matched1 {
		u1, u2 := pop.matched1[i], pop.matched2[i]
		addType(1, u1)
		addType(2, u2)
		emitAttrs(u1, u2, true)
		if err := emitRels(u1, u2, true); err != nil {
			return err
		}
		g.gtURIs = append(g.gtURIs, [2]string{u1, u2})
	}
	for _, u1 := range pop.extra1 {
		addType(1, u1)
		emitAttrs(u1, "", false)
		if err := emitRels(u1, "", false); err != nil {
			return err
		}
	}
	for _, u2 := range pop.extra2 {
		addType(2, u2)
		emitAttrs("", u2, false)
		if err := emitRels("", u2, false); err != nil {
			return err
		}
	}
	return nil
}
