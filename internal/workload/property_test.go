package workload

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/core"
	"minoaner/internal/eval"
)

// Property suite: spec-driven workloads through the full pipeline.
// Rather than hand-picking fixtures, specs are drawn from a seeded
// generator, so every run exercises a family of schema shapes — and a
// failure prints the spec that produced it.

// randomSpec draws a workload spec with 1-3 classes, varied attribute
// schemas (diverging names, noise, junk attributes), and optional
// relations between the classes.
func randomSpec(rng *rand.Rand, name string) Spec {
	nClasses := 1 + rng.Intn(3)
	spec := Spec{Name: name, Seed: rng.Int63()}
	classNames := make([]string, nClasses)
	for c := 0; c < nClasses; c++ {
		classNames[c] = fmt.Sprintf("class%d", c)
	}
	for c := 0; c < nClasses; c++ {
		cs := ClassSpec{
			Name:    classNames[c],
			Matched: 10 + rng.Intn(30),
			Extra1:  rng.Intn(10),
			Extra2:  rng.Intn(20),
		}
		nAttrs := 1 + rng.Intn(3)
		for a := 0; a < nAttrs; a++ {
			attr := AttributeSpec{
				Name1:       fmt.Sprintf("attr%d", a),
				Tokens:      2 + rng.Intn(3),
				Vocabulary:  200 + rng.Intn(800),
				Identifying: a == 0 || rng.Intn(2) == 0,
			}
			if rng.Intn(2) == 0 {
				attr.Name2 = attr.Name1 + "_alt" // schema divergence
			}
			if rng.Intn(3) == 0 {
				attr.NoiseDrop = 0.05 * rng.Float64()
				attr.NoiseReplace = 0.05 * rng.Float64()
			}
			cs.Attributes = append(cs.Attributes, attr)
		}
		if nClasses > 1 && rng.Intn(2) == 0 {
			cs.Relations = append(cs.Relations, RelationSpec{
				Name1:       "rel0",
				Target:      classNames[rng.Intn(nClasses)],
				OutDegree:   1 + rng.Intn(2),
				MatchedOnly: rng.Intn(2) == 0,
			})
		}
		spec.Classes = append(spec.Classes, cs)
	}
	return spec
}

func resolveWorkload(t *testing.T, ds *Dataset, workers int) []eval.Pair {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	m, err := core.NewMatcher(ds.KB1, ds.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run().Matches
}

// TestWorkloadPipelineDeterministic checks the two core determinism
// properties over random specs: the same seed regenerates the identical
// dataset and match set, and the match set is invariant across worker
// counts 1, 2, 4, and 8.
func TestWorkloadPipelineDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	const specs = 5
	for i := 0; i < specs; i++ {
		spec := randomSpec(rng, fmt.Sprintf("prop%d", i))
		t.Run(spec.Name, func(t *testing.T) {
			ds, err := Generate(spec)
			if err != nil {
				t.Fatalf("spec %+v: %v", spec, err)
			}

			// Same seed, same dataset: regenerate and compare through the
			// pipeline-visible state (entity count, GT, matches).
			ds2, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if ds.KB1.Len() != ds2.KB1.Len() || ds.KB2.Len() != ds2.KB2.Len() {
				t.Fatalf("regeneration changed sizes: (%d,%d) vs (%d,%d)",
					ds.KB1.Len(), ds.KB2.Len(), ds2.KB1.Len(), ds2.KB2.Len())
			}
			if !reflect.DeepEqual(ds.GT.Pairs(), ds2.GT.Pairs()) {
				t.Fatalf("regeneration changed ground truth")
			}

			base := resolveWorkload(t, ds, 1)
			if again := resolveWorkload(t, ds2, 1); !reflect.DeepEqual(base, again) {
				t.Fatalf("same seed, different matches: %d vs %d", len(base), len(again))
			}
			for _, workers := range []int{2, 4, 8} {
				got := resolveWorkload(t, ds, workers)
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("workers=%d diverges from workers=1: %d vs %d matches",
						workers, len(got), len(base))
				}
			}
		})
	}
}

// TestWorkloadPerfectRecallNoiseFree: on a noise-free spec whose
// identifying attributes are shared verbatim and distinctive, the
// pipeline must find every ground-truth pair (recall 1.0). Precision is
// deliberately left unpinned — distractors may collide — but recall has
// no excuse.
func TestWorkloadPerfectRecallNoiseFree(t *testing.T) {
	spec := Spec{
		Name: "noise-free",
		Seed: 99,
		Classes: []ClassSpec{
			{
				Name:    "item",
				Matched: 60,
				Extra1:  10,
				Extra2:  25,
				Attributes: []AttributeSpec{
					// Verbatim-shared, highly distinctive names.
					{Name1: "title", Name2: "label", Tokens: 4, Vocabulary: 5000, Identifying: true},
					{Name1: "desc", Tokens: 3, Vocabulary: 2000, Identifying: true},
				},
			},
			{
				Name:    "maker",
				Matched: 20,
				Attributes: []AttributeSpec{
					{Name1: "name", Tokens: 3, Vocabulary: 3000, Identifying: true},
				},
			},
		},
	}
	spec.Classes[0].Relations = []RelationSpec{
		{Name1: "madeBy", Name2: "producer", Target: "maker", OutDegree: 2, MatchedOnly: true},
	}
	ds, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	matches := resolveWorkload(t, ds, 0)
	m := eval.Evaluate(matches, ds.GT)
	if m.Recall < 1.0 {
		t.Fatalf("noise-free recall = %.4f (TP=%d FN=%d), want 1.0", m.Recall, m.TP, m.FN)
	}
	t.Logf("noise-free: %d matches, P=%.3f R=%.3f", len(matches), m.Precision, m.Recall)
}
