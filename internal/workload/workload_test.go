package workload

import (
	"testing"

	"minoaner/internal/core"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

func simpleSpec() Spec {
	return Spec{
		Name: "simple",
		Seed: 7,
		Classes: []ClassSpec{
			{
				Name:    "item",
				Matched: 40,
				Extra1:  10,
				Extra2:  60,
				Attributes: []AttributeSpec{
					{Name1: "name", Name2: "label", Tokens: 3, Vocabulary: 5000, Identifying: true},
					{Name1: "note", Name2: "remark", Tokens: 4, Vocabulary: 200},
				},
			},
		},
	}
}

func TestGenerateBasic(t *testing.T) {
	ds, err := Generate(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ds.KB1.Len() != 50 || ds.KB2.Len() != 100 {
		t.Errorf("populations = %d/%d, want 50/100", ds.KB1.Len(), ds.KB2.Len())
	}
	if ds.GT.Len() != 40 {
		t.Errorf("ground truth = %d, want 40", ds.GT.Len())
	}
	if ds.KB1.NumAttributes() != 2 || ds.KB2.NumAttributes() != 2 {
		t.Errorf("attributes = %d/%d", ds.KB1.NumAttributes(), ds.KB2.NumAttributes())
	}
	if ds.KB1.NumTypes() != 1 {
		t.Errorf("types = %d", ds.KB1.NumTypes())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.KB1.Len() != b.KB1.Len() || a.GT.Len() != b.GT.Len() {
		t.Fatal("nondeterministic generation")
	}
	for i := 0; i < a.KB1.Len(); i++ {
		if a.KB1.URI(kb.EntityID(i)) != b.KB1.URI(kb.EntityID(i)) {
			t.Fatalf("URI %d differs", i)
		}
	}
}

func TestGenerateResolvable(t *testing.T) {
	ds, err := Generate(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMatcher(ds.KB1, ds.KB2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	metrics := eval.Evaluate(res.Matches, ds.GT)
	if metrics.F1 < 0.9 {
		t.Errorf("clean workload F1 = %v", metrics)
	}
}

func TestNoiseKnobDegradesValueEvidence(t *testing.T) {
	clean := simpleSpec()
	noisy := simpleSpec()
	noisy.Classes[0].Attributes[0].NoiseDrop = 0.4
	noisy.Classes[0].Attributes[0].NoiseReplace = 0.3

	run := func(spec Spec) float64 {
		ds, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.DisableH3 = true // isolate name+value evidence
		m, err := core.NewMatcher(ds.KB1, ds.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eval.Evaluate(m.Run().Matches, ds.GT).F1
	}
	if fClean, fNoisy := run(clean), run(noisy); fNoisy >= fClean {
		t.Errorf("noise knob had no effect: clean %.3f vs noisy %.3f", fClean, fNoisy)
	}
}

func TestRelationsProduceNeighborEvidence(t *testing.T) {
	spec := Spec{
		Name: "relational",
		Seed: 3,
		Classes: []ClassSpec{
			{
				Name:    "person",
				Matched: 30,
				Attributes: []AttributeSpec{
					{Name1: "name", Tokens: 2, Vocabulary: 4000, Identifying: true},
				},
			},
			{
				Name:    "doc",
				Matched: 50,
				Attributes: []AttributeSpec{
					// Heavy noise: values alone cannot resolve docs.
					{Name1: "title", Name2: "heading", Tokens: 4, Vocabulary: 60, Identifying: true, NoiseDrop: 0.3},
				},
				Relations: []RelationSpec{
					{Name1: "author", Name2: "creator", Target: "person", OutDegree: 2, MatchedOnly: true},
				},
			},
		},
	}
	ds, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ds.KB1.NumRelations() != 1 || ds.KB2.NumRelations() != 1 {
		t.Fatalf("relations = %d/%d", ds.KB1.NumRelations(), ds.KB2.NumRelations())
	}
	withH3 := core.DefaultConfig()
	withoutH3 := core.DefaultConfig()
	withoutH3.DisableH3 = true
	run := func(cfg core.Config) float64 {
		m, err := core.NewMatcher(ds.KB1, ds.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eval.Evaluate(m.Run().Matches, ds.GT).F1
	}
	if a, b := run(withH3), run(withoutH3); a <= b {
		t.Errorf("neighbor evidence did not help: with H3 %.3f vs without %.3f", a, b)
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []Spec{
		{Name: "empty"},
		{Name: "noname", Classes: []ClassSpec{{}}},
		{Name: "negpop", Classes: []ClassSpec{{Name: "x", Matched: -1}}},
		{Name: "badattr", Classes: []ClassSpec{{Name: "x", Attributes: []AttributeSpec{{}}}}},
		{Name: "badvocab", Classes: []ClassSpec{{Name: "x", Attributes: []AttributeSpec{{Name1: "a", Tokens: 1}}}}},
		{Name: "badrel", Classes: []ClassSpec{{
			Name: "x", Matched: 1,
			Attributes: []AttributeSpec{{Name1: "a", Tokens: 1, Vocabulary: 10}},
			Relations:  []RelationSpec{{Name1: "r", Target: "nope", OutDegree: 1}},
		}}},
	}
	for _, spec := range cases {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %q accepted", spec.Name)
		}
	}
}
