package paris

import (
	"fmt"
	"math"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func mustKB(t testing.TB, name string, triples []rdf.Triple) *kb.KB {
	t.Helper()
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func tr(s, p string, o rdf.Term) rdf.Triple { return rdf.NewTriple(iri(s), iri(p), o) }

func TestInverseFunctionality(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://a/1", "http://v/name", lit("Alice")),
		tr("http://a/2", "http://v/name", lit("Bob")),
		tr("http://a/1", "http://v/country", lit("Greece")),
		tr("http://a/2", "http://v/country", lit("Greece")),
	}
	k := mustKB(t, "a", triples)
	ifun := inverseFunctionality(k)
	namePred, _ := k.PredID("http://v/name")
	countryPred, _ := k.PredID("http://v/country")
	if math.Abs(ifun[namePred]-1.0) > 1e-9 {
		t.Errorf("ifun(name) = %f, want 1", ifun[namePred])
	}
	if math.Abs(ifun[countryPred]-0.5) > 1e-9 {
		t.Errorf("ifun(country) = %f, want 0.5", ifun[countryPred])
	}
}

func TestRelationFunctionality(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://a/m1", "http://v/directedBy", iri("http://a/d1")),
		tr("http://a/m2", "http://v/directedBy", iri("http://a/d1")),
		tr("http://a/m1", "http://v/hasActor", iri("http://a/c1")),
		tr("http://a/m1", "http://v/hasActor", iri("http://a/c2")),
		tr("http://a/d1", "http://v/name", lit("d")),
		tr("http://a/c1", "http://v/name", lit("c1")),
		tr("http://a/c2", "http://v/name", lit("c2")),
	}
	k := mustKB(t, "a", triples)
	fun := relationFunctionality(k)
	directed, _ := k.PredID("http://v/directedBy")
	actor, _ := k.PredID("http://v/hasActor")
	// directedBy: 2 subjects / 2 edges = 1 (functional).
	if math.Abs(fun[directed]-1.0) > 1e-9 {
		t.Errorf("fun(directedBy) = %f, want 1", fun[directed])
	}
	// hasActor: 1 subject / 2 edges = 0.5.
	if math.Abs(fun[actor]-0.5) > 1e-9 {
		t.Errorf("fun(hasActor) = %f, want 0.5", fun[actor])
	}
}

func buildMoviePair(t testing.TB, literalNoise bool) (*kb.KB, *kb.KB, *eval.GroundTruth) {
	t.Helper()
	var t1, t2 []rdf.Triple
	n := 10
	for i := 0; i < n; i++ {
		m1 := fmt.Sprintf("http://a/m%02d", i)
		m2 := fmt.Sprintf("http://b/m%02d", i)
		d1 := fmt.Sprintf("http://a/d%02d", i%3)
		d2 := fmt.Sprintf("http://b/d%02d", i%3)
		title := fmt.Sprintf("movie title %02d", i)
		title2 := title
		if literalNoise {
			title2 = fmt.Sprintf("film %02d alternative naming", i)
		}
		t1 = append(t1,
			tr(m1, "http://va/title", lit(title)),
			tr(m1, "http://va/directedBy", iri(d1)),
		)
		t2 = append(t2,
			tr(m2, "http://vb/label", lit(title2)),
			tr(m2, "http://vb/director", iri(d2)),
		)
	}
	for i := 0; i < 3; i++ {
		dname := fmt.Sprintf("director person %02d", i)
		dname2 := dname
		if literalNoise {
			dname2 = fmt.Sprintf("helmer %02d", i)
		}
		t1 = append(t1, tr(fmt.Sprintf("http://a/d%02d", i), "http://va/name", lit(dname)))
		t2 = append(t2, tr(fmt.Sprintf("http://b/d%02d", i), "http://vb/name", lit(dname2)))
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	gt := eval.NewGroundTruth()
	for i := 0; i < n; i++ {
		e1, _ := kb1.Lookup(fmt.Sprintf("http://a/m%02d", i))
		e2, _ := kb2.Lookup(fmt.Sprintf("http://b/m%02d", i))
		if err := gt.Add(e1, e2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		e1, _ := kb1.Lookup(fmt.Sprintf("http://a/d%02d", i))
		e2, _ := kb2.Lookup(fmt.Sprintf("http://b/d%02d", i))
		if err := gt.Add(e1, e2); err != nil {
			t.Fatal(err)
		}
	}
	return kb1, kb2, gt
}

func TestRunMatchesExactLiterals(t *testing.T) {
	kb1, kb2, gt := buildMoviePair(t, false)
	matches := Run(kb1, kb2, DefaultConfig())
	m := eval.Evaluate(matches, gt)
	if m.F1 < 0.99 {
		t.Errorf("PARIS on clean KBs: %s (matches=%d)", m, len(matches))
	}
}

func TestRunCollapsesUnderLiteralNoise(t *testing.T) {
	// PARIS's exact-literal seeding finds nothing when every literal
	// diverges — the BBCmusic-DBpedia failure mode of Table III.
	kb1, kb2, gt := buildMoviePair(t, true)
	matches := Run(kb1, kb2, DefaultConfig())
	m := eval.Evaluate(matches, gt)
	if m.Recall > 0.2 {
		t.Errorf("PARIS should collapse under literal noise, got %s", m)
	}
}

func TestRunPropagatesViaRelations(t *testing.T) {
	// Movies share titles. Directors 0-2 share names (bootstrapping the
	// directedBy/director relation alignment); directors 3-5 share
	// nothing literal and can only be matched through the aligned
	// functional relation.
	var t1, t2 []rdf.Triple
	for i := 0; i < 6; i++ {
		m1 := fmt.Sprintf("http://a/m%02d", i)
		m2 := fmt.Sprintf("http://b/m%02d", i)
		title := fmt.Sprintf("unique movie number %02d", i)
		t1 = append(t1,
			tr(m1, "http://va/title", lit(title)),
			tr(m1, "http://va/directedBy", iri(fmt.Sprintf("http://a/d%02d", i))),
		)
		t2 = append(t2,
			tr(m2, "http://vb/label", lit(title)),
			tr(m2, "http://vb/director", iri(fmt.Sprintf("http://b/d%02d", i))),
		)
		if i < 3 {
			name := fmt.Sprintf("famous director %d", i)
			t1 = append(t1, tr(fmt.Sprintf("http://a/d%02d", i), "http://va/name", lit(name)))
			t2 = append(t2, tr(fmt.Sprintf("http://b/d%02d", i), "http://vb/name", lit(name)))
		} else {
			t1 = append(t1, tr(fmt.Sprintf("http://a/d%02d", i), "http://va/name", lit(fmt.Sprintf("nameone %d", i))))
			t2 = append(t2, tr(fmt.Sprintf("http://b/d%02d", i), "http://vb/name", lit(fmt.Sprintf("persontwo %d", i))))
		}
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	matches := Run(kb1, kb2, DefaultConfig())
	found := 0
	for _, p := range matches {
		u1, u2 := kb1.URI(p.E1), kb2.URI(p.E2)
		if u1[len(u1)-3:] == u2[len(u2)-3:] && u1[9] == 'd' {
			found++
		}
	}
	if found < 6 {
		t.Errorf("PARIS propagated %d/6 director matches: %v", found, matches)
	}
}

func TestRunEmptyKBs(t *testing.T) {
	kb1, kb2 := mustKB(t, "a", nil), mustKB(t, "b", nil)
	if got := Run(kb1, kb2, DefaultConfig()); len(got) != 0 {
		t.Errorf("matches on empty KBs: %v", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	kb1, kb2, _ := buildMoviePair(t, false)
	a := Run(kb1, kb2, DefaultConfig())
	b := Run(kb1, kb2, DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic match count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic matches at %d", i)
		}
	}
}
