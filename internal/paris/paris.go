// Package paris approximates PARIS (Suchanek et al., PVLDB 2011), the
// probabilistic baseline of the paper's evaluation: entity equivalences
// are seeded by *exact* shared literal values weighted by the inverse
// functionality of their attributes, then refined over a fixed number
// of rounds in which aligned relations propagate the probabilities of
// neighboring matches.
//
// The approximation keeps PARIS's two defining traits — dependence on
// exact literal overlap and on relation functionality — which is
// precisely what makes it strong on homogeneous KBs and fragile on
// structurally heterogeneous ones (paper §IV, BBCmusic-DBpedia).
package paris

import (
	"minoaner/internal/cluster"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/tokenize"
)

// Config tunes the PARIS approximation.
type Config struct {
	// Iterations is the number of propagation rounds (PARIS converges
	// within a handful).
	Iterations int
	// Threshold is the final acceptance probability.
	Threshold float64
	// PropagationThreshold gates which pairs act as evidence for their
	// neighbors.
	PropagationThreshold float64
	// MaxValueFanout skips literal values shared by more entities than
	// this (PARIS similarly ignores non-identifying values).
	MaxValueFanout int
}

// DefaultConfig mirrors the usual PARIS settings.
func DefaultConfig() Config {
	return Config{
		Iterations:           5,
		Threshold:            0.5,
		PropagationThreshold: 0.6,
		MaxValueFanout:       50,
	}
}

// Run executes the approximation and returns the accepted matches.
func Run(kb1, kb2 *kb.KB, cfg Config) []eval.Pair {
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	st := newState(kb1, kb2, cfg)
	st.seedFromLiterals()
	for it := 0; it < cfg.Iterations; it++ {
		st.alignRelations()
		st.propagate()
	}
	return st.finalMatches()
}

type state struct {
	kb1, kb2 *kb.KB
	cfg      Config

	ifun1, ifun2 map[int32]float64 // inverse functionality per attribute
	fun1, fun2   map[int32]float64 // functionality per relation
	rifun1       map[int32]float64 // inverse functionality per relation (KB1)

	seed map[eval.Pair]float64 // literal-evidence probability (fixed)
	prob map[eval.Pair]float64 // current probability

	align map[[2]int32]float64 // relation alignment (r1, r2) -> weight
}

func newState(kb1, kb2 *kb.KB, cfg Config) *state {
	return &state{
		kb1: kb1, kb2: kb2, cfg: cfg,
		ifun1:  inverseFunctionality(kb1),
		ifun2:  inverseFunctionality(kb2),
		fun1:   relationFunctionality(kb1),
		fun2:   relationFunctionality(kb2),
		rifun1: relationInverseFunctionality(kb1),
		seed:   make(map[eval.Pair]float64),
		prob:   make(map[eval.Pair]float64),
		align:  make(map[[2]int32]float64),
	}
}

// inverseFunctionality estimates, per attribute, how strongly one of
// its values identifies its subject: distinct values / value
// occurrences. A name-like attribute scores ~1; a category-like
// attribute scores ~0.
func inverseFunctionality(k *kb.KB) map[int32]float64 {
	occurrences := make(map[int32]int)
	for i := 0; i < k.Len(); i++ {
		for _, av := range k.Entity(kb.EntityID(i)).Attrs {
			occurrences[av.Pred]++
		}
	}
	out := make(map[int32]float64, len(occurrences))
	for pred, occ := range occurrences {
		st := k.AttrStat(pred)
		if st == nil || occ == 0 {
			continue
		}
		out[pred] = float64(st.Distinct) / float64(occ)
	}
	return out
}

// relationFunctionality estimates fun(r) = distinct subjects / edges.
func relationFunctionality(k *kb.KB) map[int32]float64 {
	edges := make(map[int32]int)
	subjects := make(map[int32]map[kb.EntityID]struct{})
	for i := 0; i < k.Len(); i++ {
		for _, e := range k.Entity(kb.EntityID(i)).Out {
			edges[e.Pred]++
			set := subjects[e.Pred]
			if set == nil {
				set = make(map[kb.EntityID]struct{})
				subjects[e.Pred] = set
			}
			set[kb.EntityID(i)] = struct{}{}
		}
	}
	out := make(map[int32]float64, len(edges))
	for pred, n := range edges {
		if n == 0 {
			continue
		}
		out[pred] = float64(len(subjects[pred])) / float64(n)
	}
	return out
}

// relationInverseFunctionality estimates fun⁻(r) = distinct objects /
// edges: how strongly an object determines its subject. A birthplace
// shared by many people has low fun⁻ — knowing two people share it is
// weak evidence they match.
func relationInverseFunctionality(k *kb.KB) map[int32]float64 {
	edges := make(map[int32]int)
	objects := make(map[int32]map[kb.EntityID]struct{})
	for i := 0; i < k.Len(); i++ {
		for _, e := range k.Entity(kb.EntityID(i)).Out {
			edges[e.Pred]++
			set := objects[e.Pred]
			if set == nil {
				set = make(map[kb.EntityID]struct{})
				objects[e.Pred] = set
			}
			set[e.Target] = struct{}{}
		}
	}
	out := make(map[int32]float64, len(edges))
	for pred, n := range edges {
		if n == 0 {
			continue
		}
		out[pred] = float64(len(objects[pred])) / float64(n)
	}
	return out
}

// literalIndex maps each normalized literal value to the entities (and
// holding attributes) carrying it.
type literalOcc struct {
	ent  kb.EntityID
	pred int32
}

func literalIndex(k *kb.KB) map[string][]literalOcc {
	idx := make(map[string][]literalOcc)
	for i := 0; i < k.Len(); i++ {
		id := kb.EntityID(i)
		for _, av := range k.Entity(id).Attrs {
			key := tokenize.NormalizeKey(av.Value)
			if key == "" {
				continue
			}
			idx[key] = append(idx[key], literalOcc{ent: id, pred: av.Pred})
		}
	}
	return idx
}

// seedFromLiterals computes the literal-evidence probabilities:
//
//	P0(x≡y) = 1 - Π_{shared value v} (1 - ifun(a_x) · ifun(a_y))
//
// over exactly shared (normalized) literal values.
func (s *state) seedFromLiterals() {
	idx1 := literalIndex(s.kb1)
	idx2 := literalIndex(s.kb2)
	notP := make(map[eval.Pair]float64)
	for v, occ1 := range idx1 {
		occ2, ok := idx2[v]
		if !ok {
			continue
		}
		if len(occ1)*len(occ2) > s.cfg.MaxValueFanout*s.cfg.MaxValueFanout {
			continue
		}
		for _, o1 := range occ1 {
			for _, o2 := range occ2 {
				p := s.ifun1[o1.pred] * s.ifun2[o2.pred]
				if p <= 0 {
					continue
				}
				if p > 0.999999 {
					p = 0.999999
				}
				key := eval.Pair{E1: o1.ent, E2: o2.ent}
				cur, seen := notP[key]
				if !seen {
					cur = 1
				}
				notP[key] = cur * (1 - p)
			}
		}
	}
	for pair, np := range notP {
		s.seed[pair] = 1 - np
		s.prob[pair] = 1 - np
	}
}

// currentAssignment extracts a greedy 1-1 mapping from the current
// probabilities, used both for relation alignment and for propagation.
func (s *state) currentAssignment(threshold float64) map[kb.EntityID]kb.EntityID {
	pairs := make([]cluster.ScoredPair, 0, len(s.prob))
	for p, pr := range s.prob {
		if pr >= threshold {
			pairs = append(pairs, cluster.ScoredPair{E1: p.E1, E2: p.E2, Score: pr})
		}
	}
	assign := make(map[kb.EntityID]kb.EntityID)
	for _, p := range cluster.UniqueMapping(pairs, threshold) {
		assign[p.E1] = p.E2
	}
	return assign
}

// alignRelations scores relation pairs by how often they connect
// matched pairs to matched pairs: align(r1,r2) = overlap / r1-edges
// whose endpoints are both matched.
func (s *state) alignRelations() {
	assign := s.currentAssignment(s.cfg.PropagationThreshold)
	if len(assign) == 0 {
		return
	}
	overlap := make(map[[2]int32]int)
	r1Total := make(map[int32]int)
	for x, y := range assign {
		yEnt := s.kb2.Entity(y)
		// Index y's out-edges by target for the overlap test.
		yOut := make(map[kb.EntityID][]int32)
		for _, e := range yEnt.Out {
			yOut[e.Target] = append(yOut[e.Target], e.Pred)
		}
		for _, e := range s.kb1.Entity(x).Out {
			xTgtMatch, ok := assign[e.Target]
			if !ok {
				continue
			}
			r1Total[e.Pred]++
			for _, r2 := range yOut[xTgtMatch] {
				overlap[[2]int32{e.Pred, r2}]++
			}
		}
	}
	s.align = make(map[[2]int32]float64, len(overlap))
	for rr, n := range overlap {
		if total := r1Total[rr[0]]; total > 0 {
			s.align[rr] = float64(n) / float64(total)
		}
	}
}

// propagate recomputes every candidate's probability from its fixed
// literal evidence plus the relation evidence of currently confident
// neighbor matches:
//
//	P(x≡y) = 1 - (1-P0(x≡y)) · Π (1 - align(r1,r2)·fun(r1)·P(x'≡y'))
func (s *state) propagate() {
	if len(s.align) == 0 {
		return
	}
	assign := s.currentAssignment(s.cfg.PropagationThreshold)
	next := make(map[eval.Pair]float64, len(s.prob))

	// Start every candidate from its literal evidence.
	notP := make(map[eval.Pair]float64, len(s.prob))
	bump := func(pair eval.Pair, w float64) {
		cur, seen := notP[pair]
		if !seen {
			cur = 1 - s.seed[pair] // 1 if no literal evidence
		}
		notP[pair] = cur * (1 - w)
	}

	// Parents of matched pairs receive evidence: r1(x,x'), r2(y,y'),
	// (x',y') matched. The object determines the subject only to the
	// degree the relation is inverse-functional.
	for xPrime, yPrime := range assign {
		p := s.prob[eval.Pair{E1: xPrime, E2: yPrime}]
		if p <= 0 {
			continue
		}
		for _, e1 := range s.kb1.Entity(xPrime).In {
			for _, e2 := range s.kb2.Entity(yPrime).In {
				a := s.align[[2]int32{e1.Pred, e2.Pred}]
				if a <= 0 {
					continue
				}
				w := a * s.rifun1[e1.Pred] * p
				if w <= 0 {
					continue
				}
				if w > 0.999999 {
					w = 0.999999
				}
				bump(eval.Pair{E1: e1.Target, E2: e2.Target}, w)
			}
		}
		// Children: r1(x',x''), r2(y',y''). The subject determines the
		// object to the degree the relation is functional.
		for _, e1 := range s.kb1.Entity(xPrime).Out {
			for _, e2 := range s.kb2.Entity(yPrime).Out {
				a := s.align[[2]int32{e1.Pred, e2.Pred}]
				if a <= 0 {
					continue
				}
				w := a * s.fun1[e1.Pred] * p
				if w <= 0 {
					continue
				}
				if w > 0.999999 {
					w = 0.999999
				}
				bump(eval.Pair{E1: e1.Target, E2: e2.Target}, w)
			}
		}
	}

	for pair, np := range notP {
		next[pair] = 1 - np
	}
	// Candidates with literal evidence but no neighbor evidence keep
	// their seed probability.
	for pair, p0 := range s.seed {
		if _, ok := next[pair]; !ok {
			next[pair] = p0
		}
	}
	s.prob = next
}

// finalMatches extracts the 1-1 mapping of pairs above the acceptance
// threshold.
func (s *state) finalMatches() []eval.Pair {
	pairs := make([]cluster.ScoredPair, 0, len(s.prob))
	for p, pr := range s.prob {
		pairs = append(pairs, cluster.ScoredPair{E1: p.E1, E2: p.E2, Score: pr})
	}
	out := cluster.UniqueMapping(pairs, s.cfg.Threshold)
	eval.SortPairs(out)
	return out
}
