package cluster

import (
	"math/rand"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

func TestUniqueMappingBasic(t *testing.T) {
	pairs := []ScoredPair{
		{E1: 0, E2: 0, Score: 0.9},
		{E1: 0, E2: 1, Score: 0.8}, // loses: e1=0 taken
		{E1: 1, E2: 1, Score: 0.7},
		{E1: 2, E2: 1, Score: 0.6}, // loses: e2=1 taken
		{E1: 2, E2: 2, Score: 0.3}, // below threshold
	}
	got := UniqueMapping(pairs, 0.5)
	want := []eval.Pair{{E1: 0, E2: 0}, {E1: 1, E2: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUniqueMappingGreedyOrder(t *testing.T) {
	// The greedy choice takes the globally best pair first, even if that
	// starves a later entity.
	pairs := []ScoredPair{
		{E1: 0, E2: 5, Score: 1.0},
		{E1: 1, E2: 5, Score: 0.9}, // starved
	}
	got := UniqueMapping(pairs, 0)
	if len(got) != 1 || got[0].E1 != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestUniqueMappingThresholdStops(t *testing.T) {
	pairs := []ScoredPair{
		{E1: 0, E2: 0, Score: 0.4},
		{E1: 1, E2: 1, Score: 0.6},
	}
	got := UniqueMapping(pairs, 0.5)
	if len(got) != 1 || got[0].E1 != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestUniqueMappingEmpty(t *testing.T) {
	if got := UniqueMapping(nil, 0.5); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestUniqueMappingDeterministicTies(t *testing.T) {
	pairs := []ScoredPair{
		{E1: 1, E2: 1, Score: 0.5},
		{E1: 0, E2: 0, Score: 0.5},
		{E1: 0, E2: 1, Score: 0.5},
	}
	first := UniqueMapping(pairs, 0)
	for trial := 0; trial < 10; trial++ {
		shuffled := make([]ScoredPair, len(pairs))
		copy(shuffled, pairs)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := UniqueMapping(shuffled, 0)
		if len(got) != len(first) {
			t.Fatalf("trial %d: nondeterministic length", trial)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: nondeterministic result %v vs %v", trial, got, first)
			}
		}
	}
	// Tie broken by lowest E1 first: (0,0) wins, then (1,1).
	if first[0] != (eval.Pair{E1: 0, E2: 0}) {
		t.Errorf("tie-break wrong: %v", first)
	}
}

func TestUniqueMappingInputNotModified(t *testing.T) {
	pairs := []ScoredPair{
		{E1: 1, E2: 1, Score: 0.1},
		{E1: 0, E2: 0, Score: 0.9},
	}
	UniqueMapping(pairs, 0)
	if pairs[0].E1 != 1 {
		t.Error("input slice reordered")
	}
}

// Property: the output is always a partial 1-1 mapping and all accepted
// scores are >= threshold.
func TestUniqueMappingIsOneToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		pairs := make([]ScoredPair, n)
		for i := range pairs {
			pairs[i] = ScoredPair{
				E1:    kb.EntityID(rng.Intn(30)),
				E2:    kb.EntityID(rng.Intn(30)),
				Score: rng.Float64(),
			}
		}
		th := rng.Float64() * 0.5
		got := UniqueMapping(pairs, th)
		seen1 := map[kb.EntityID]bool{}
		seen2 := map[kb.EntityID]bool{}
		for _, p := range got {
			if seen1[p.E1] || seen2[p.E2] {
				t.Fatalf("trial %d: duplicate entity in %v", trial, got)
			}
			seen1[p.E1] = true
			seen2[p.E2] = true
		}
	}
}

func BenchmarkUniqueMapping(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pairs := make([]ScoredPair, 10000)
	for i := range pairs {
		pairs[i] = ScoredPair{
			E1:    kb.EntityID(rng.Intn(2000)),
			E2:    kb.EntityID(rng.Intn(2000)),
			Score: rng.Float64(),
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		UniqueMapping(pairs, 0.3)
	}
}
