// Package cluster implements Unique Mapping Clustering, the greedy 1-1
// match-selection procedure used by the BSL baseline and the SiGMa-style
// matchers (paper §II): all scored pairs enter a priority queue in
// decreasing similarity; the top pair is accepted as a match if neither
// of its entities has been matched already and its score reaches the
// threshold; the process stops when the top score drops below the
// threshold.
package cluster

import (
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// ScoredPair is one candidate match with its similarity score.
type ScoredPair struct {
	E1    kb.EntityID
	E2    kb.EntityID
	Score float64
}

// UniqueMapping selects a partial 1-1 mapping greedily by descending
// score. Pairs scoring below threshold are never accepted. Ties are
// broken deterministically by (E1, E2). The input slice is not
// modified.
func UniqueMapping(pairs []ScoredPair, threshold float64) []eval.Pair {
	accepted := UniqueMappingScored(pairs, threshold)
	out := make([]eval.Pair, len(accepted))
	for i, p := range accepted {
		out[i] = eval.Pair{E1: p.E1, E2: p.E2}
	}
	return out
}

// UniqueMappingScored is UniqueMapping keeping the scores of the
// accepted pairs, in acceptance (descending score) order. Because the
// greedy acceptance of a pair depends only on higher-scoring accepted
// pairs, the result for any higher threshold t is exactly the prefix of
// this result with score >= t — which lets a threshold sweep run the
// clustering once.
func UniqueMappingScored(pairs []ScoredPair, threshold float64) []ScoredPair {
	sorted := make([]ScoredPair, len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return (eval.Pair{E1: a.E1, E2: a.E2}).Less(eval.Pair{E1: b.E1, E2: b.E2})
	})
	matched1 := make(map[kb.EntityID]struct{})
	matched2 := make(map[kb.EntityID]struct{})
	var out []ScoredPair
	for _, p := range sorted {
		if p.Score < threshold {
			break
		}
		if _, ok := matched1[p.E1]; ok {
			continue
		}
		if _, ok := matched2[p.E2]; ok {
			continue
		}
		matched1[p.E1] = struct{}{}
		matched2[p.E2] = struct{}{}
		out = append(out, p)
	}
	return out
}
