package cluster

import (
	"math/rand"
	"testing"

	"minoaner/internal/kb"
)

// TestScoredPrefixProperty verifies the property the BSL threshold
// sweep depends on: UniqueMappingScored at threshold t equals the
// prefix (score >= t) of the threshold-0 result.
func TestScoredPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		pairs := make([]ScoredPair, n)
		for i := range pairs {
			pairs[i] = ScoredPair{
				E1:    kb.EntityID(rng.Intn(40)),
				E2:    kb.EntityID(rng.Intn(40)),
				Score: float64(rng.Intn(20)) / 20, // coarse scores force ties
			}
		}
		base := UniqueMappingScored(pairs, 0)
		for _, th := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			direct := UniqueMappingScored(pairs, th)
			var prefix []ScoredPair
			for _, p := range base {
				if p.Score < th {
					break
				}
				prefix = append(prefix, p)
			}
			if len(direct) != len(prefix) {
				t.Fatalf("trial %d t=%.2f: direct %d pairs, prefix %d", trial, th, len(direct), len(prefix))
			}
			for i := range direct {
				if direct[i] != prefix[i] {
					t.Fatalf("trial %d t=%.2f: mismatch at %d", trial, th, i)
				}
			}
		}
	}
}

// TestScoredDescendingOrder: acceptance order is by descending score.
func TestScoredDescendingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs := make([]ScoredPair, 200)
	for i := range pairs {
		pairs[i] = ScoredPair{
			E1:    kb.EntityID(rng.Intn(50)),
			E2:    kb.EntityID(rng.Intn(50)),
			Score: rng.Float64(),
		}
	}
	out := UniqueMappingScored(pairs, 0)
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatalf("acceptance order not descending at %d", i)
		}
	}
}
