package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// SectionSwitch guards the binary codecs (MSNP snapshots, MKB1 KBs,
// MBC1 collections, MPS1 prepared substrates): every section-ID
// constant must be handled by both the writer and the reader of its
// format, so a new optional section cannot be added half-way — written
// but silently skipped on load, or expected on load but never
// produced.
//
// A const group of section IDs carries
//
//	//minoaner:sections writer=<fn,...> reader=<fn,...>
//
// in its doc comment, naming the functions (or methods, by name) that
// make up each codec half; every constant in the group must then be
// referenced inside at least one function of each list, or carry
// //minoaner:unchecked with a reason. A const group whose names look
// like section IDs (snapX / secX) without the directive is itself a
// finding, so new codecs cannot opt out by accident.
var SectionSwitch = &Rule{
	Name: "sectionswitch",
	Doc:  "binary-format section constants must be wired into both the writer and the reader",
	run:  runSectionSwitch,
}

var sectionNameRE = regexp.MustCompile(`^(snap|sec)[A-Z]`)

func runSectionSwitch(p *Pass) {
	fns := make(map[string][]*ast.FuncDecl)
	var consts []*ast.GenDecl
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fns[d.Name.Name] = append(fns[d.Name.Name], d)
			case *ast.GenDecl:
				if d.Tok == token.CONST {
					consts = append(consts, d)
				}
			}
		}
	}
	for _, gd := range consts {
		dir := p.Pkg.Dirs.inDoc(gd.Doc, "sections")
		if dir == nil {
			if looksLikeSectionGroup(p, gd) {
				p.Reportf(gd.Pos(), "const group %s looks like binary-format section IDs but has no //minoaner:sections writer=<fn,...> reader=<fn,...> directive; without it a new section can be wired into only one codec half",
					groupNames(gd))
			}
			continue
		}
		dir.used = true
		checkSectionGroup(p, gd, dir, fns)
	}
}

func checkSectionGroup(p *Pass, gd *ast.GenDecl, dir *Directive, fns map[string][]*ast.FuncDecl) {
	roles, ok := parseSectionsArgs(p, dir)
	if !ok {
		return
	}
	type constant struct {
		obj types.Object
		pos token.Pos
	}
	var group []constant
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			if d := p.Pkg.Dirs.forNode(p.Pkg.Fset, vs, "unchecked"); d != nil {
				d.used = true
				continue
			}
			if obj := p.Pkg.Info.Defs[name]; obj != nil {
				group = append(group, constant{obj, name.Pos()})
			}
		}
	}
	for _, role := range [...]string{"writer", "reader"} {
		used := make(map[types.Object]bool)
		for _, fname := range roles[role] {
			decls := fns[fname]
			if len(decls) == 0 {
				p.Reportf(dir.Pos, "//minoaner:sections names %s %q, but no function or method with that name exists in %s",
					role, fname, p.Pkg.Path)
				continue
			}
			for _, fd := range decls {
				if fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if obj := p.Pkg.Info.Uses[id]; obj != nil {
							used[obj] = true
						}
					}
					return true
				})
			}
		}
		for _, c := range group {
			if !used[c.obj] {
				p.Reportf(c.pos, "section constant %s is not referenced by %s %s: a section handled by one codec half but not the other is silently dropped; wire it through or mark it //minoaner:unchecked with a reason",
					c.obj.Name(), role, strings.Join(roles[role], "/"))
			}
		}
	}
}

// parseSectionsArgs parses "writer=a,b reader=c"; both roles required.
func parseSectionsArgs(p *Pass, dir *Directive) (map[string][]string, bool) {
	roles := map[string][]string{}
	for _, field := range strings.Fields(dir.Args) {
		key, val, found := strings.Cut(field, "=")
		if !found || (key != "writer" && key != "reader") || val == "" {
			p.Reportf(dir.Pos, "malformed //minoaner:sections argument %q: want writer=<fn,...> reader=<fn,...>", field)
			return nil, false
		}
		roles[key] = append(roles[key], strings.Split(val, ",")...)
	}
	if len(roles["writer"]) == 0 || len(roles["reader"]) == 0 {
		p.Reportf(dir.Pos, "//minoaner:sections must name both writer=<fn,...> and reader=<fn,...>")
		return nil, false
	}
	return roles, true
}

// looksLikeSectionGroup reports whether every constant in the group is
// an integer whose name matches the snapX/secX convention, with at
// least two constants.
func looksLikeSectionGroup(p *Pass, gd *ast.GenDecl) bool {
	n := 0
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			return false
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			if !sectionNameRE.MatchString(name.Name) {
				return false
			}
			c, ok := p.Pkg.Info.Defs[name].(*types.Const)
			if !ok {
				return false
			}
			if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
				return false
			}
			n++
		}
	}
	return n >= 2
}

func groupNames(gd *ast.GenDecl) string {
	var names []string
	for _, spec := range gd.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok {
			for _, name := range vs.Names {
				names = append(names, name.Name)
			}
		}
	}
	if len(names) > 3 {
		names = append(names[:3], "...")
	}
	return strings.Join(names, "/")
}
