package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("minoaner/internal/kb")
	Dir   string // absolute directory
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info
	Dirs  *Directives
}

// Loader resolves, parses, and type-checks packages of the enclosing
// module using only the standard library. Imports inside the module
// are mapped to directories and checked from source; everything else
// goes through the compiler's export data (with a from-source fallback
// for toolchains that do not ship it). The loader caches by import
// path, so shared dependencies are checked once.
type Loader struct {
	ModRoot string // directory holding go.mod
	ModPath string // module path from go.mod
	Base    string // directory patterns are resolved against
	Fset    *token.FileSet

	pkgs    map[string]*Package
	loading map[string]bool
	frozen  map[string]bool // "pkgpath.TypeName" marked //minoaner:frozen
	std     types.Importer
	stdSrc  types.Importer
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader locates the module enclosing dir.
func NewLoader(dir string) (*Loader, error) {
	base, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := base
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found in or above %s", base)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleLineRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("%s/go.mod: no module line", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: string(m[1]),
		Base:    base,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		frozen:  make(map[string]bool),
		std:     importer.Default(),
	}, nil
}

// Frozen reports whether the named type carries //minoaner:frozen.
func (l *Loader) Frozen(tn *types.TypeName) bool {
	if tn == nil || tn.Pkg() == nil {
		return false
	}
	return l.frozen[tn.Pkg().Path()+"."+tn.Name()]
}

// Load resolves each pattern — a directory, or a "dir/..." tree rooted
// at one — against the loader's base directory and returns the loaded
// packages in import-path order. Tree expansion skips testdata, dot,
// and underscore directories, exactly like the go tool, so testdata
// packages are only analyzed when named explicitly.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			root := l.resolve(strings.TrimSuffix(base, "/"))
			sub, err := goDirs(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, sub...)
		} else {
			dirs = append(dirs, l.resolve(pat))
		}
	}
	var pkgs []*Package
	seen := make(map[string]bool)
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if !seen[pkg.Path] {
			seen[pkg.Path] = true
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *Loader) resolve(pat string) string {
	if pat == "" || pat == "." {
		return l.Base
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.Base, pat)
}

// unixGOOS mirrors the go tool's set of targets matching the "unix"
// build tag.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// buildConstraintSatisfied reports whether a file's //go:build line (if
// any) matches the current platform, so platform-gated files are
// excluded the way the go tool excludes them — otherwise their
// alternative declarations collide during type checking. Only the
// tags this module's files gate on are evaluated (GOOS, GOARCH, unix,
// gc); unknown tags evaluate false.
func buildConstraintSatisfied(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if expr, err := constraint.Parse(trimmed); err == nil {
				return expr.Eval(func(tag string) bool {
					return tag == runtime.GOOS || tag == runtime.GOARCH ||
						tag == "gc" || (tag == "unix" && unixGOOS[runtime.GOOS])
				})
			}
			continue
		}
		// Constraints must precede the first non-comment line.
		break
	}
	return true
}

// goDirs walks root collecting every directory holding .go files.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// LoadDir loads the package in one directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, fmt.Errorf("%s is outside module %s", dir, l.ModPath)
	}
	path := l.ModPath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	for _, f := range files[1:] {
		if f.Name.Name != files[0].Name.Name {
			return nil, fmt.Errorf("%s: mixed package names %s and %s", dir, files[0].Name.Name, f.Name.Name)
		}
	}

	dirs := collectDirectives(l.Fset, files)
	l.scanFrozen(path, files, dirs)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, errors.Join(typeErrs...))
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Dirs:  dirs,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// scanFrozen records //minoaner:frozen type markers. The scan runs for
// every loaded package — dependencies included — so a rule analyzing
// package A sees the markers package B declares.
func (l *Loader) scanFrozen(path string, files []*ast.File, dirs *Directives) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declDir := dirs.inDoc(gd.Doc, "frozen")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				d := dirs.inDoc(ts.Doc, "frozen")
				if d == nil {
					d = declDir
				}
				if d != nil {
					d.used = true
					l.frozen[path+"."+ts.Name.Name] = true
				}
			}
		}
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.load(path, filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	// No export data for this toolchain: fall back to type-checking
	// the standard library from source.
	if l.stdSrc == nil {
		l.stdSrc = importer.ForCompiler(l.Fset, "source", nil)
	}
	return l.stdSrc.Import(path)
}
