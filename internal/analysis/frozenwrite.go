package analysis

import (
	"go/ast"
	"go/types"
)

// FrozenWrite is the static complement of the lock-free-reader
// contract: once an epoch is published, every reader walks its state
// without locks, so nothing reachable from a type marked
// //minoaner:frozen may be written in place. The rule flags
// assignments, inc/dec, and the writing builtins (append, copy, clear,
// delete) whose target is reached through a field of a frozen type.
//
// Two shapes are recognized as copy-on-write construction and allowed
// everywhere: direct field assignment on a function-local VALUE of the
// frozen type (`cp := *shared; cp.Field = x` — the canonical epoch
// clone), and direct field assignment on a local pointer freshly built
// in the same function (`p := &T{...}; p.Field = x`). Everything
// deeper — writing an element of a shared slice or map field — is a
// write into memory the previous epoch may share, and is only
// permitted inside the frozen type's declaring package, in functions
// annotated //minoaner:mutator.
var FrozenWrite = &Rule{
	Name: "frozenwrite",
	Doc:  "fields of //minoaner:frozen types are immutable once published",
	run:  runFrozenWrite,
}

func runFrozenWrite(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lh := range s.Lhs {
						checkFrozenTarget(p, fd, s, lh, "assignment")
					}
				case *ast.IncDecStmt:
					checkFrozenTarget(p, fd, s, s.X, "increment")
				case *ast.CallExpr:
					for _, b := range [...]string{"append", "copy", "clear", "delete"} {
						if isBuiltin(p, s, b) && len(s.Args) > 0 {
							checkFrozenTarget(p, fd, s, s.Args[0], b)
							break
						}
					}
				}
				return true
			})
		}
	}
}

// checkFrozenTarget reports a write whose target is reached through a
// field of a frozen type, unless a copy-on-write or mutator exemption
// applies.
func checkFrozenTarget(p *Pass, fd *ast.FuncDecl, stmt ast.Node, target ast.Expr, kind string) {
	sel, tn, direct := frozenSelector(p, target)
	if sel == nil {
		return
	}
	if direct && cowReceiver(p, fd, sel.X, tn) {
		return
	}
	samePkg := tn.Pkg() == p.Pkg.Types
	if d := p.Pkg.Dirs.inDoc(fd.Doc, "mutator"); d != nil {
		d.used = true // the directive matched a write; don't also report it stale
		if samePkg {
			return
		}
		p.Reportf(stmt.Pos(), "//minoaner:mutator cannot authorize %s through frozen %s.%s here: only %s, the declaring package, may patch it",
			kind, tn.Pkg().Name(), tn.Name(), tn.Pkg().Path())
		return
	}
	if p.suppressed("mutator", stmt) && samePkg {
		return
	}
	p.Reportf(stmt.Pos(), "%s through field %s of frozen type %s.%s: published epochs share this memory; build a patched copy in a //minoaner:mutator function of %s instead",
		kind, sel.Sel.Name, tn.Pkg().Name(), tn.Name(), tn.Pkg().Path())
}

// frozenSelector unwraps the expression looking for a field selection
// whose receiver is a frozen type. direct is true when the selector IS
// the whole expression — a plain field write, as opposed to a write
// through the field's element or sub-field.
func frozenSelector(p *Pass, e ast.Expr) (sel *ast.SelectorExpr, tn *types.TypeName, direct bool) {
	depth := 0
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			depth++
			e = x.X
		case *ast.SliceExpr:
			depth++
			e = x.X
		case *ast.StarExpr:
			depth++
			e = x.X
		case *ast.SelectorExpr:
			if s, ok := p.Pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
				if named := derefNamed(s.Recv()); named != nil && p.ldr.Frozen(named.Obj()) {
					return x, named.Obj(), depth == 0
				}
			}
			depth++
			e = x.X
		default:
			return nil, nil, false
		}
	}
}

// cowReceiver reports whether recv is a function-local copy-on-write
// holder of the frozen type: a local variable of the value type, or a
// local pointer defined from a fresh &T{...} / new(T) in the same
// function.
func cowReceiver(p *Pass, fd *ast.FuncDecl, recv ast.Expr, tn *types.TypeName) bool {
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() || !declaredWithin(obj, fd) {
		return false
	}
	if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
		return derefNamed(obj.Type()) != nil // local value: writes land on the copy
	}
	return freshlyConstructed(p, fd, obj)
}

// freshlyConstructed reports whether the local pointer variable is
// defined from &CompositeLit{...} or new(T) inside the function.
func freshlyConstructed(p *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	fresh := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lh := range s.Lhs {
				id, ok := ast.Unparen(lh).(*ast.Ident)
				if !ok || p.ObjectOf(id) != obj || len(s.Rhs) != len(s.Lhs) {
					continue
				}
				fresh = freshExpr(p, s.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if p.ObjectOf(name) == obj && i < len(s.Values) {
					fresh = freshExpr(p, s.Values[i])
				}
			}
		}
		return !fresh
	})
	return fresh
}

func freshExpr(p *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		return isBuiltin(p, x, "new")
	}
	return false
}

// derefNamed unwraps pointers and aliases down to a named type.
func derefNamed(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}
