// Package analysis is the engine behind minoanervet, the repo's own
// static-analysis suite. Every bit-identity guarantee this codebase
// makes — identical matches across worker counts, shard counts,
// prepared vs. full plans, and rebuild-equivalent epochs — rests on
// conventions that the compiler does not enforce: map iteration order
// must never reach ordered output, published epoch state must never be
// mutated in place, and wall-clock or randomness must never feed the
// match path. The rules in this package prove those conventions
// per-file over the parsed and type-checked source, so a violation is
// a CI failure instead of a flaky benchmark.
//
// The engine is stdlib-only (go/parser + go/types + go/importer): see
// Loader for how module-local packages are resolved without external
// dependencies. Findings are reported as position-sorted Diagnostics;
// intentional exceptions are annotated in the source with //minoaner:
// directives (see directive.go), each carrying a justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding, addressed by source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// A Rule checks one invariant over every analyzed package.
type Rule struct {
	Name string
	Doc  string
	run  func(*Pass)
}

// Rules returns the full suite in canonical order.
func Rules() []*Rule {
	return []*Rule{MapOrder, FrozenWrite, NoWallClock, SectionSwitch}
}

// RuleByName resolves a rule by its name, or nil.
func RuleByName(name string) *Rule {
	for _, r := range Rules() {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Config selects the rules to run and the packages they treat as
// determinism-critical.
type Config struct {
	// Critical lists the import paths of the packages whose code sits
	// on the deterministic match path. maporder and nowallclock only
	// fire inside these (plus any package under a testdata directory,
	// which is always treated as critical so golden packages exercise
	// the rules).
	Critical []string
	// Rules are the rules to run; nil means the full suite.
	Rules []*Rule
}

// DefaultConfig returns the repo's standing configuration: the five
// packages every match result flows through.
func DefaultConfig() Config {
	return Config{Critical: []string{
		"minoaner",
		"minoaner/internal/pipeline",
		"minoaner/internal/blocking",
		"minoaner/internal/kb",
		"minoaner/internal/core",
		"minoaner/internal/parallel",
	}}
}

// Pass is one rule's view of one package under analysis.
type Pass struct {
	Rule *Rule
	Pkg  *Package
	cfg  *Config
	ldr  *Loader
	out  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Rule.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Critical reports whether the package under analysis is on the
// determinism-critical list. Packages under a testdata directory are
// always critical.
func (p *Pass) Critical() bool {
	if strings.Contains(p.Pkg.Path, "/testdata/") {
		return true
	}
	for _, c := range p.cfg.Critical {
		if p.Pkg.Path == c {
			return true
		}
	}
	return false
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// suppressed reports whether a directive with the given verb sits on
// the node's first line or the line above it, marking the directive
// used when it does.
func (p *Pass) suppressed(verb string, n ast.Node) bool {
	if d := p.Pkg.Dirs.forNode(p.Pkg.Fset, n, verb); d != nil {
		d.used = true
		return true
	}
	return false
}

// Run executes the configured rules over the given packages and
// returns all findings sorted by position. Directive validation (and,
// when the full suite runs, stale-directive detection) is reported
// under the pseudo-rule "directive".
func Run(l *Loader, cfg Config, pkgs []*Package) []Diagnostic {
	rules := cfg.Rules
	if rules == nil {
		rules = Rules()
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		validateDirectives(pkg, &out)
		for _, r := range rules {
			r.run(&Pass{Rule: r, Pkg: pkg, cfg: &cfg, ldr: l, out: &out})
		}
		// A suppression that no longer matches a finding is rot: the
		// next reader assumes the hazard it names still exists. Only
		// meaningful when every rule had the chance to consume it.
		if len(rules) == len(Rules()) {
			for _, d := range pkg.Dirs.all {
				if !d.used {
					out = append(out, Diagnostic{
						Pos:     pkg.Fset.Position(d.Pos),
						Rule:    "directive",
						Message: fmt.Sprintf("//minoaner:%s matches no declaration or finding; remove the stale directive", d.Verb),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
