// Package frozenuse writes a frozen type from OUTSIDE its declaring
// package: no annotation can authorize that, so the rule must hold
// even against a mutator directive.
package frozenuse

import "minoaner/internal/analysis/testdata/src/frozenwrite"

// Rewire claims mutator rights it cannot have: only the declaring
// package may patch a frozen type.
//
//minoaner:mutator golden corpus: a cross-package mutator claim must be refused
func Rewire(b *frozenwrite.Box) {
	b.Items[0] = 9 // want `cannot authorize assignment through frozen frozenwrite\.Box`
}

// Stomp is the plain cross-package violation.
func Stomp(b *frozenwrite.Box) {
	b.Items = nil // want `assignment through field Items of frozen type frozenwrite\.Box`
}

// CloneOutside is legitimate: the copy-on-write idiom works from any
// package.
func CloneOutside(b *frozenwrite.Box) *frozenwrite.Box {
	cp := *b
	cp.Items = nil
	return &cp
}
