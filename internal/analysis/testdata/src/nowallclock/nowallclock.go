// Package nowallclock is the golden corpus of the nowallclock rule:
// wall-clock readings and rand imports in a determinism-critical
// package (testdata packages always count as critical).
package nowallclock

import (
	"math/rand" // want `imports math/rand`
	"time"
)

// Stamp reads the wall clock on the (stand-in) match path.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in determinism-critical package`
}

// Jitter keeps the banned import in use; the rule flags the import
// site itself.
func Jitter() int { return rand.Int() }

// Elapsed carries a justified suppression.
func Elapsed(t0 time.Time) time.Duration {
	//minoaner:wallclock golden corpus: instrumentation that never influences results
	return time.Since(t0)
}

// Add is plain arithmetic on time values: no clock is read.
func Add(t time.Time, d time.Duration) time.Time { return t.Add(d) }
