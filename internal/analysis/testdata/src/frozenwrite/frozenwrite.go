// Package frozenwrite is the golden corpus of the frozenwrite rule:
// Box stands in for a published epoch substrate, and each function is
// one write shape the rule must flag or must leave alone.
package frozenwrite

// Box is immutable once published.
//
//minoaner:frozen
type Box struct {
	Items []int
	index map[string]int
	count int
}

// NewBox writes fields of a pointer freshly constructed in the same
// function: construction, not mutation.
func NewBox(items []int) *Box {
	b := &Box{index: make(map[string]int)}
	b.Items = items
	return b
}

// Clone patches by copy-on-write: direct field writes on the local
// value land on the copy, never on the shared original.
func Clone(b *Box) *Box {
	cp := *b
	cp.Items = nil
	return &cp
}

// Stomp writes through a caller-supplied pointer: the value may
// already be published.
func Stomp(b *Box) {
	b.Items = nil        // want `assignment through field Items of frozen type frozenwrite\.Box`
	b.Items[0] = 1       // want `assignment through field Items`
	b.index["k"] = 2     // want `assignment through field index`
	delete(b.index, "k") // want `delete through field index`
	b.count++            // want `increment through field count`
}

// patch is the sanctioned in-package escape hatch.
//
//minoaner:mutator golden corpus: exercises the declaring-package mutator exemption
func patch(b *Box) {
	b.index["k"] = 3
}

// bumpInline exercises the statement-level mutator exemption.
func bumpInline(b *Box) {
	//minoaner:mutator golden corpus: statement-level exemption in the declaring package
	b.count++
}

// byValue receives a copy; writes land on it, not the original.
func byValue(b Box) int {
	b.count = 9
	return b.count
}

var _ = patch
var _ = bumpInline
var _ = byValue
