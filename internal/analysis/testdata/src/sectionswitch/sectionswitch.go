// Package sectionswitch is the golden corpus of the sectionswitch
// rule: section-ID const groups checked for writer AND reader
// coverage.
package sectionswitch

// Section IDs of a toy frame: secC is written but never read, and
// secD is explicitly reserved.
//
//minoaner:sections writer=writeAll reader=readAll
const (
	secA = 1
	secB = 2
	secC = 3 // want `section constant secC is not referenced by reader readAll`
	//minoaner:unchecked golden corpus: reserved for the next format revision
	secD = 4
)

func writeAll(sink map[uint64][]byte) {
	sink[secA] = nil
	sink[secB] = nil
	sink[secC] = nil
}

func readAll(src map[uint64][]byte) ([]byte, []byte) {
	return src[secA], src[secB]
}

// A group that looks like section IDs but opted out of the coverage
// check by omission.

const ( // want `looks like binary-format section IDs`
	secX = 1
	secY = 2
)

// The reader half names a function that does not exist, so the
// constant cannot be covered on that side.
//
// want+2 `names reader "readGone", but no function or method`
//
//minoaner:sections writer=writeM reader=readGone
const secM = 10 // want `section constant secM is not referenced by reader readGone`

func writeM(sink map[uint64][]byte) {
	sink[secM] = nil
}

var (
	_ = writeAll
	_ = readAll
	_ = writeM
	_ = secX
	_ = secY
)
