// Package directive is the golden corpus of the //minoaner: directive
// validation: unknown verbs, bare suppressions, and stale directives
// are themselves findings.
package directive

// An unknown verb is a typo waiting to silently suppress nothing.
//
// want+1 `unknown //minoaner: verb "spindle"`
//minoaner:spindle this verb does not exist

// bare suppresses a real loop but gives no justification; the
// suppression works, and its bareness is the finding.
func bare(m map[string]int) []string {
	var out []string
	// want+1 `//minoaner:unordered needs a justification`
	//minoaner:unordered
	for k := range m {
		out = append(out, k)
	}
	return out
}

// A justified suppression that matches nothing is rot: the next
// reader assumes the hazard it names still exists.
//
// want+1 `matches no declaration or finding`
//minoaner:wallclock golden corpus: nothing here reads the clock

var _ = bare
