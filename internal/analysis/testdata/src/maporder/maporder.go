// Package maporder is the golden corpus of the maporder rule: each
// function is one shape the rule must flag or must leave alone.
// Expected findings are recorded as // want comments and checked by
// the golden tests in internal/analysis.
package maporder

import "sort"

// appendEscapes lets iteration order reach the returned slice.
func appendEscapes(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `out is appended to in map-iteration order`
	}
	return out
}

// appendSorted discharges the hazard with a sort after the loop.
func appendSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// perKeySlot appends into a map slot owned by the range key: every
// execution order writes the same slots.
func perKeySlot(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// perIterationLocal builds a slice that dies inside the iteration.
func perIterationLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := make([]int, 0, len(vs))
		for _, v := range vs {
			local = append(local, v*2)
		}
		n += len(local)
	}
	return n
}

// suppressedLoop carries a justified suppression.
func suppressedLoop(m map[string]int) []string {
	var out []string
	//minoaner:unordered golden corpus: the caller is documented to sort
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sendOrder exposes iteration order to the channel's receiver.
func sendOrder(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `send on ch inside range over map m`
	}
}

// sliceSlot writes slots at a counter mutated in the loop, so which
// slot an iteration lands in depends on when it runs.
func sliceSlot(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k // want `slot written depends on iteration order`
		i++
	}
	return out
}

// floatSum accumulates floats in iteration order; float addition is
// not associative, so the bits differ per run.
func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `float accumulation into s`
	}
	return s
}

// intSum is commutative: integer addition gives the same total in
// every order.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// keyless cannot observe which key an iteration is for.
func keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// invariantAppend appends the same value every iteration, so the
// result is order-free (up to its length, which is order-free too).
func invariantAppend(m map[string]int) []int {
	marks := make([]int, 0, len(m))
	for k := range m {
		_ = k
		marks = append(marks, 1)
	}
	return marks
}
