package analysis

import (
	"go/ast"
	"strconv"
)

// NoWallClock keeps wall-clock readings and randomness out of the
// determinism-critical packages: the same KBs must produce the same
// matches on every run, so nothing on the match path may branch on
// time.Now/Since/Until or import a rand package. Instrumentation that
// measures but never influences results (stage timings) is annotated
// //minoaner:wallclock with a reason.
var NoWallClock = &Rule{
	Name: "nowallclock",
	Doc:  "wall-clock and randomness must not reach determinism-critical packages",
	run:  runNoWallClock,
}

var bannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runNoWallClock(p *Pass) {
	if !p.Critical() {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !bannedImports[path] {
				continue
			}
			if !p.suppressed("wallclock", imp) {
				p.Reportf(imp.Pos(), "determinism-critical package %s imports %s: randomness must not reach the match path; annotate //minoaner:wallclock only if it provably never influences results",
					p.Pkg.Path, path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !bannedTimeFuncs[obj.Name()] {
				return true
			}
			if !p.suppressed("wallclock", sel) {
				p.Reportf(sel.Pos(), "time.%s in determinism-critical package %s: wall-clock must not reach the match path; annotate //minoaner:wallclock if this is instrumentation that never influences results",
					obj.Name(), p.Pkg.Path)
			}
			return true
		})
	}
}
