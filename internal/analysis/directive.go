package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directives are //minoaner: comments, the one sanctioned way to talk
// to the analyzers from source:
//
//	//minoaner:unordered <why>   suppress maporder on the loop below
//	//minoaner:wallclock <why>   suppress nowallclock on the use below
//	//minoaner:mutator <why>     on a function: it may write fields of
//	                             frozen types declared in its package
//	//minoaner:unchecked <why>   on a section constant: exempt from the
//	                             writer/reader coverage check
//	//minoaner:frozen            on a type: its fields are immutable
//	                             once a value is published
//	//minoaner:sections writer=<fn,...> reader=<fn,...>
//	                             on a const group of section IDs: every
//	                             constant must be referenced by a
//	                             writer and a reader function
//
// Suppression verbs require a justification after the verb; a bare
// suppression is itself a finding, as is an unknown verb or a
// directive that matches nothing.
type Directive struct {
	Pos  token.Pos
	Verb string
	Args string
	used bool
}

const directiveMarker = "//minoaner:"

// directiveVerbs maps each known verb to whether it requires a
// justification.
var directiveVerbs = map[string]bool{
	"unordered": true,
	"wallclock": true,
	"mutator":   true,
	"unchecked": true,
	"frozen":    false,
	"sections":  false,
}

// Directives indexes one package's //minoaner: comments by file line.
type Directives struct {
	all    []*Directive
	byLine map[string][]*Directive // "filename:line"
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// collectDirectives scans every comment in the files.
func collectDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	ds := &Directives{byLine: make(map[string][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directiveMarker) {
					continue
				}
				rest := c.Text[len(directiveMarker):]
				verb, args, _ := strings.Cut(rest, " ")
				d := &Directive{Pos: c.Slash, Verb: verb, Args: strings.TrimSpace(args)}
				ds.all = append(ds.all, d)
				ds.byLine[lineKey(fset.Position(c.Slash))] = append(ds.byLine[lineKey(fset.Position(c.Slash))], d)
			}
		}
	}
	return ds
}

// onLine returns a directive with the verb on exactly the given line.
func (ds *Directives) onLine(pos token.Position, verb string) *Directive {
	for _, d := range ds.byLine[lineKey(pos)] {
		if d.Verb == verb {
			return d
		}
	}
	return nil
}

// forNode returns a directive with the verb on the node's first line
// or on the line immediately above it.
func (ds *Directives) forNode(fset *token.FileSet, n ast.Node, verb string) *Directive {
	pos := fset.Position(n.Pos())
	if d := ds.onLine(pos, verb); d != nil {
		return d
	}
	pos.Line--
	return ds.onLine(pos, verb)
}

// inDoc returns a directive with the verb anywhere inside the doc
// comment group.
func (ds *Directives) inDoc(doc *ast.CommentGroup, verb string) *Directive {
	if doc == nil {
		return nil
	}
	for _, d := range ds.all {
		if d.Verb == verb && d.Pos >= doc.Pos() && d.Pos < doc.End() {
			return d
		}
	}
	return nil
}

// validateDirectives reports unknown verbs and missing justifications
// under the pseudo-rule "directive".
func validateDirectives(pkg *Package, out *[]Diagnostic) {
	for _, d := range pkg.Dirs.all {
		needsWhy, known := directiveVerbs[d.Verb]
		switch {
		case !known:
			*out = append(*out, Diagnostic{
				Pos:     pkg.Fset.Position(d.Pos),
				Rule:    "directive",
				Message: fmt.Sprintf("unknown //minoaner: verb %q (known: frozen, mutator, sections, unchecked, unordered, wallclock)", d.Verb),
			})
			d.used = true // don't double-report as stale
		case needsWhy && d.Args == "":
			*out = append(*out, Diagnostic{
				Pos:     pkg.Fset.Position(d.Pos),
				Rule:    "directive",
				Message: fmt.Sprintf("//minoaner:%s needs a justification after the verb", d.Verb),
			})
		}
	}
}
