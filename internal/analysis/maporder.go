package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags loops in determinism-critical packages that let Go's
// randomized map-iteration order reach ordered output: appending to a
// slice, writing slice slots at loop-carried indexes, sending on a
// channel, or accumulating floating-point sums inside a range over a
// map. Loops whose hazard is discharged — the appended slice is sorted
// later in the same function, the append target is a per-key map slot,
// the written values are loop-invariant — are not reported. Genuinely
// order-free loops are annotated //minoaner:unordered with a reason.
var MapOrder = &Rule{
	Name: "maporder",
	Doc:  "map iteration order must not reach ordered output in determinism-critical packages",
	run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !p.Critical() {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				// A keyless `for range m` body cannot observe which
				// key an iteration is for, so every execution order
				// produces the same effects.
				if rs.Key == nil {
					return true
				}
				if p.suppressed("unordered", rs) {
					return true
				}
				checkMapRange(p, fd.Body, rs)
				return true
			})
		}
	}
}

// checkMapRange reports every order-dependent effect of one range
// statement over a map.
func checkMapRange(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	assigned := assignedIn(p, rs.Body)

	handledAppends := make(map[ast.Node]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			if exprVaries(p, s.Value, loopVars, assigned) {
				p.Reportf(s.Arrow, "send on %s inside range over map %s: the receiver observes map iteration order; annotate //minoaner:unordered if the order is provably irrelevant",
					render(s.Chan), render(rs.X))
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(p, fnBody, rs, s, loopVars, assigned, handledAppends)
		case *ast.CallExpr:
			// append whose result is not assigned in this statement
			// (passed as an argument, returned, ...): the built slice
			// still carries iteration order.
			if isBuiltin(p, s, "append") && !handledAppends[s] && appendVaries(p, s, loopVars, assigned) {
				p.Reportf(s.Pos(), "append in map-iteration order over %s escapes unsorted; sort the result or annotate //minoaner:unordered",
					render(rs.X))
			}
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, s *ast.AssignStmt,
	loopVars, assigned map[types.Object]bool, handledAppends map[ast.Node]bool) {
	for i, rh := range s.Rhs {
		call, ok := ast.Unparen(rh).(*ast.CallExpr)
		if !ok || !isBuiltin(p, call, "append") {
			continue
		}
		handledAppends[call] = true
		var target ast.Expr
		if len(s.Lhs) == len(s.Rhs) {
			target = s.Lhs[i]
		}
		checkRangeAppend(p, fnBody, rs, call, target, loopVars, assigned)
	}
	for _, lh := range s.Lhs {
		// Slice-slot writes: out[i] with i mutated inside the loop
		// means the slot an iteration lands in depends on when the
		// iteration runs.
		if ix, ok := ast.Unparen(lh).(*ast.IndexExpr); ok {
			if t := p.TypeOf(ix.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
					if identFrom(p, ix.Index, assigned) {
						p.Reportf(lh.Pos(), "slice index %s changes inside range over map %s, so the slot written depends on iteration order; index by the key or annotate //minoaner:unordered",
							render(ix.Index), render(rs.X))
					}
				}
			}
		}
	}
	// Floating-point accumulation is not associative: summing map
	// values in iteration order produces different bits per run.
	if len(s.Lhs) == 1 && isFloatAccum(s.Tok) {
		if t := p.TypeOf(s.Lhs[0]); t != nil && isFloat(t) {
			if obj := rootObject(p, s.Lhs[0]); obj != nil && !loopVars[obj] && !declaredWithin(obj, rs.Body) &&
				exprVaries(p, s.Rhs[0], loopVars, assigned) {
				p.Reportf(s.Pos(), "float accumulation into %s inside range over map %s is order-dependent (float addition is not associative); accumulate over sorted keys or annotate //minoaner:unordered",
					render(s.Lhs[0]), render(rs.X))
			}
		}
	}
}

// checkRangeAppend decides whether one `dst = append(dst, ...)` inside
// a map range is order-dependent.
func checkRangeAppend(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, call *ast.CallExpr,
	target ast.Expr, loopVars, assigned map[types.Object]bool) {
	if !appendVaries(p, call, loopVars, assigned) {
		return // appending the same values every iteration
	}
	if target != nil {
		// out[k] = append(out[k], ...) with k exactly the range key:
		// each key owns its slot, so iteration order cannot show.
		if ix, ok := ast.Unparen(target).(*ast.IndexExpr); ok {
			if t := p.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && loopVars[p.ObjectOf(id)] {
						return
					}
				}
			}
		}
		if obj := rootObject(p, target); obj != nil {
			if loopVars[obj] || declaredWithin(obj, rs.Body) {
				return // per-iteration destination
			}
			if sortedAfter(p, fnBody, rs.End(), obj) {
				return // a later sort re-establishes a total order
			}
			p.Reportf(call.Pos(), "%s is appended to in map-iteration order over %s and never sorted in this function; sort it before it escapes or annotate //minoaner:unordered",
				obj.Name(), render(rs.X))
			return
		}
	}
	p.Reportf(call.Pos(), "append in map-iteration order over %s escapes unsorted; sort the result or annotate //minoaner:unordered", render(rs.X))
}

// appendVaries reports whether any appended element differs across
// iterations.
func appendVaries(p *Pass, call *ast.CallExpr, loopVars, assigned map[types.Object]bool) bool {
	for _, a := range call.Args[1:] {
		if exprVaries(p, a, loopVars, assigned) {
			return true
		}
	}
	return false
}

// assignedIn collects every object assigned, defined, or inc/dec'd by
// simple-identifier statements inside the block.
func assignedIn(p *Pass, block ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := p.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(block, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lh := range s.Lhs {
				add(lh)
			}
		case *ast.IncDecStmt:
			add(s.X)
		}
		return true
	})
	return out
}

// exprVaries reports whether the expression can change across loop
// iterations: it mentions a loop variable or a variable assigned in
// the loop, or calls anything (conservatively impure).
func exprVaries(p *Pass, e ast.Expr, loopVars, assigned map[types.Object]bool) bool {
	varies := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj := p.ObjectOf(x); obj != nil && (loopVars[obj] || assigned[obj]) {
				varies = true
			}
		case *ast.CallExpr:
			varies = true
		}
		return !varies
	})
	return varies
}

// identFrom reports whether the expression mentions any identifier in
// the set.
func identFrom(p *Pass, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.ObjectOf(id); obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootObject unwraps selectors, indexes, stars, and parens down to the
// base identifier's object.
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return p.ObjectOf(x)
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object's declaration lies inside
// the node's span.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// sortedAfter reports whether, after pos, the function passes obj to
// something that sorts it.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || !sortish(p, call.Fun) {
			return true
		}
		if identFrom(p, call, map[types.Object]bool{obj: true}) {
			found = true
		}
		return !found
	})
	return found
}

// sortish recognizes callees that impose a total order: anything from
// package sort or slices, and any function whose name mentions Sort.
func sortish(p *Pass, fun ast.Expr) bool {
	switch f := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			if pn, ok := p.ObjectOf(id).(*types.PkgName); ok {
				if path := pn.Imported().Path(); path == "sort" || path == "slices" {
					return true
				}
			}
		}
		return strings.Contains(strings.ToLower(f.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(f.Name), "sort")
	}
	return false
}

// render prints an expression compactly for diagnostics.
func render(e ast.Expr) string { return types.ExprString(e) }

func isFloatAccum(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}
