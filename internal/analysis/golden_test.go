package analysis_test

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"minoaner/internal/analysis"
)

// The golden corpora under testdata/src record their expected findings
// as comments:
//
//	code // want `regex`
//	// want+1 `regex`   (finding on the next line)
//	// want-1 `regex`   (finding on the previous line)
//
// The regex is matched against "rule: message". Each want must match
// exactly one diagnostic on its line and every diagnostic must be
// claimed by a want, so the corpus pins both findings and non-findings.
var wantRE = regexp.MustCompile(`^//\s*want([+-]\d+)?\s+(.+?)\s*$`)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					offset := 0
					if m[1] != "" {
						offset, _ = strconv.Atoi(m[1])
					}
					expr := strings.Trim(m[2], "`\"")
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line + offset, re: re})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, wants []*want, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		text := d.Rule + ": " + d.Message
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

func loadGolden(t *testing.T, dirs ...string) (*analysis.Loader, []*analysis.Package) {
	t.Helper()
	ldr, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := ldr.Load(dirs...)
	if err != nil {
		t.Fatalf("Load(%v): %v", dirs, err)
	}
	return ldr, pkgs
}

// goldenDirs maps each corpus to the directories it spans; frozenwrite
// needs its cross-package consumer loaded alongside.
var goldenDirs = map[string][]string{
	"maporder":      {"testdata/src/maporder"},
	"frozenwrite":   {"testdata/src/frozenwrite", "testdata/src/frozenuse"},
	"nowallclock":   {"testdata/src/nowallclock"},
	"sectionswitch": {"testdata/src/sectionswitch"},
	"directive":     {"testdata/src/directive"},
}

func TestGolden(t *testing.T) {
	for name, dirs := range goldenDirs {
		t.Run(name, func(t *testing.T) {
			ldr, pkgs := loadGolden(t, dirs...)
			diags := analysis.Run(ldr, analysis.DefaultConfig(), pkgs)
			checkWants(t, collectWants(t, pkgs), diags)
		})
	}
}

// TestRuleContributes proves each golden corpus actually depends on
// its rule: disabling the rule must lose findings, so the golden test
// above would fail if the rule were broken or skipped.
func TestRuleContributes(t *testing.T) {
	for _, r := range analysis.Rules() {
		t.Run(r.Name, func(t *testing.T) {
			dirs := goldenDirs[r.Name]
			if dirs == nil {
				t.Fatalf("no golden corpus for rule %s", r.Name)
			}
			ldr, pkgs := loadGolden(t, dirs...)
			full := analysis.Run(ldr, analysis.DefaultConfig(), pkgs)

			cfg := analysis.DefaultConfig()
			for _, other := range analysis.Rules() {
				if other != r {
					cfg.Rules = append(cfg.Rules, other)
				}
			}
			without := analysis.Run(ldr, cfg, pkgs)
			if len(without) >= len(full) {
				t.Fatalf("disabling %s kept %d of %d findings; the corpus does not exercise the rule",
					r.Name, len(without), len(full))
			}
			for _, d := range without {
				if d.Rule == r.Name {
					t.Errorf("disabled rule still reported: %s", d)
				}
			}
		})
	}
}

// TestRepoClean is the self-test the CI gate relies on: the repository
// itself must carry zero findings under the default configuration.
func TestRepoClean(t *testing.T) {
	ldr, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := ldr.Load(ldr.ModRoot + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	diags := analysis.Run(ldr, analysis.DefaultConfig(), pkgs)
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestDiagnosticsSorted pins the position order of the output on a
// corpus with findings across several lines and files.
func TestDiagnosticsSorted(t *testing.T) {
	ldr, pkgs := loadGolden(t, "testdata/src/frozenwrite", "testdata/src/frozenuse")
	diags := analysis.Run(ldr, analysis.DefaultConfig(), pkgs)
	if len(diags) < 2 {
		t.Fatalf("want several findings, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) ||
			(a.Filename == b.Filename && a.Line == b.Line && a.Column > b.Column) {
			t.Errorf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}

// TestCriticalList pins the critical-package set: a package silently
// dropping off the list would disable maporder and nowallclock there.
func TestCriticalList(t *testing.T) {
	cfg := analysis.DefaultConfig()
	for _, p := range []string{
		"minoaner",
		"minoaner/internal/pipeline",
		"minoaner/internal/blocking",
		"minoaner/internal/kb",
		"minoaner/internal/core",
		"minoaner/internal/parallel",
	} {
		found := false
		for _, c := range cfg.Critical {
			if c == p {
				found = true
			}
		}
		if !found {
			t.Errorf("package %s missing from the default critical list", p)
		}
	}
}
