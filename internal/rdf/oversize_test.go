package rdf

// Regression tests for the oversize-line and I/O-failure paths of
// Reader: scanner-level failures used to surface as bare errors with no
// line number, and lenient mode could not skip past them (the old
// bufio.Scanner stops permanently on ErrTooLong).

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func oversizeDoc() string {
	long := "<http://e/long> <http://v/p> \"" + strings.Repeat("x", 300) + "\" .\n"
	return "<http://e/a> <http://v/p> \"ok\" .\n" +
		long +
		"<http://e/b> <http://v/p> \"also ok\" .\n"
}

func TestOversizeLineStrict(t *testing.T) {
	r := NewReader(strings.NewReader(oversizeDoc()))
	r.SetMaxLineBytes(128)
	if _, err := r.Next(); err != nil {
		t.Fatalf("first triple: %v", err)
	}
	_, err := r.Next()
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("oversize line error = %v (%T), want *ParseError", err, err)
	}
	if perr.Line != 2 {
		t.Errorf("line = %d, want 2", perr.Line)
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error does not unwrap to bufio.ErrTooLong: %v", err)
	}
}

func TestOversizeLineLenientSkipsAndContinues(t *testing.T) {
	r := NewReader(strings.NewReader(oversizeDoc()))
	r.SetMaxLineBytes(128)
	r.SetLenient(true)
	var got []string
	for {
		tr, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tr.Subject.Value)
	}
	want := []string{"http://e/a", "http://e/b"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("subjects = %v, want %v", got, want)
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped() = %d, want 1 (the oversize line)", r.Skipped())
	}
}

// TestOversizeLineLongerThanBuffer exercises a line that spans many
// bufio fills (ErrBufferFull) before the limit trips.
func TestOversizeLineLongerThanBuffer(t *testing.T) {
	long := "<http://e/x> <http://v/p> \"" + strings.Repeat("y", 200*1024) + "\" .\n"
	doc := long + "<http://e/a> <http://v/p> \"ok\" .\n"
	r := NewReader(strings.NewReader(doc))
	r.SetMaxLineBytes(100 * 1024)
	r.SetLenient(true)
	tr, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Subject.Value != "http://e/a" {
		t.Errorf("subject = %q, want the triple behind the oversize line", tr.Subject.Value)
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped() = %d, want 1", r.Skipped())
	}
}

func TestDefaultLimitAcceptsLongLines(t *testing.T) {
	// A 128KB line is far beyond the 64KB bufio buffer but well inside
	// DefaultMaxLineBytes: it must parse.
	doc := "<http://e/x> <http://v/p> \"" + strings.Repeat("z", 128*1024) + "\" .\n"
	r := NewReader(strings.NewReader(doc))
	tr, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Object.Value) != 128*1024 {
		t.Errorf("literal length = %d", len(tr.Object.Value))
	}
}

// failingReader yields some valid content, then an I/O error.
type failingReader struct {
	data string
	err  error
	done bool
}

func (f *failingReader) Read(p []byte) (int, error) {
	if !f.done {
		f.done = true
		return copy(p, f.data), nil
	}
	return 0, f.err
}

func TestIOErrorWrappedWithLine(t *testing.T) {
	boom := fmt.Errorf("disk gone")
	r := NewReader(&failingReader{data: "<http://e/a> <http://v/p> \"ok\" .\n", err: boom})
	r.SetLenient(true) // even lenient mode must surface I/O failures
	if _, err := r.Next(); err != nil {
		t.Fatalf("first triple: %v", err)
	}
	_, err := r.Next()
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("I/O error = %v (%T), want *ParseError", err, err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error does not unwrap to the I/O cause: %v", err)
	}
	if perr.Line != 2 {
		t.Errorf("line = %d, want 2", perr.Line)
	}
}

func TestMaxLineBoundaryExcludesNewline(t *testing.T) {
	// A line of exactly maxLine content bytes must parse whether it is
	// newline-terminated or the final unterminated line.
	line := "<http://e/x> <http://v/p> \"pad\" ."
	for _, doc := range []string{line + "\n", line} {
		r := NewReader(strings.NewReader(doc))
		r.SetMaxLineBytes(len(line))
		if _, err := r.Next(); err != nil {
			t.Errorf("line at exactly the limit rejected (terminated=%v): %v",
				strings.HasSuffix(doc, "\n"), err)
		}
	}
	// One byte over the limit must be rejected.
	r := NewReader(strings.NewReader(line + "\n"))
	r.SetMaxLineBytes(len(line) - 1)
	if _, err := r.Next(); !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("line over the limit: err = %v, want ErrTooLong", err)
	}
}

func TestSetMaxLineBytesResetsDefault(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	r.SetMaxLineBytes(10)
	r.SetMaxLineBytes(0)
	if r.maxLine != DefaultMaxLineBytes {
		t.Errorf("maxLine = %d, want default", r.maxLine)
	}
}
