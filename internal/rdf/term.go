// Package rdf provides the minimal RDF data model MinoanER operates on:
// IRIs, literals, blank nodes, and triples, together with an N-Triples
// reader and writer.
//
// An entity description in the sense of the MinoanER paper is a
// URI-identifiable set of attribute-value pairs; the rdf package supplies
// the raw triples from which package kb assembles such descriptions.
package rdf

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// TermKind discriminates the three kinds of RDF terms that can appear in
// an N-Triples document.
type TermKind uint8

const (
	// IRI is an absolute IRI reference, e.g. <http://example.org/a>.
	IRI TermKind = iota
	// Literal is a (possibly language-tagged or datatyped) literal.
	Literal
	// BlankNode is a document-scoped anonymous node, e.g. _:b0.
	BlankNode
)

// String returns the kind name for diagnostics.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case BlankNode:
		return "BlankNode"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is one RDF term. Value holds the IRI string (without angle
// brackets), the literal lexical form (unescaped), or the blank node label
// (without the "_:" prefix). Lang and Datatype are only meaningful for
// literals; at most one of them is non-empty.
type Term struct {
	Kind     TermKind
	Value    string
	Lang     string // BCP-47 tag for language-tagged literals
	Datatype string // datatype IRI for typed literals
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: BlankNode, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == BlankNode }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t Term) write(b *strings.Builder) {
	switch t.Kind {
	case IRI:
		b.WriteByte('<')
		b.WriteString(escapeIRI(t.Value))
		b.WriteByte('>')
	case Literal:
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		switch {
		case t.Lang != "":
			b.WriteByte('@')
			b.WriteString(t.Lang)
		case t.Datatype != "":
			b.WriteString("^^<")
			b.WriteString(escapeIRI(t.Datatype))
			b.WriteByte('>')
		}
	case BlankNode:
		b.WriteString("_:")
		b.WriteString(t.Value)
	}
}

// Triple is a single RDF statement. Subject is an IRI or blank node,
// Predicate an IRI, Object any term.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// NewTriple builds a triple from its three terms.
func NewTriple(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple as a single N-Triples line (without newline).
func (t Triple) String() string {
	var b strings.Builder
	t.Subject.write(&b)
	b.WriteByte(' ')
	t.Predicate.write(&b)
	b.WriteByte(' ')
	t.Object.write(&b)
	b.WriteString(" .")
	return b.String()
}

// Validate reports the first problem with the triple: structure
// (subjects must be IRIs or blank nodes, predicates IRIs, IRIs
// non-empty) and UTF-8 validity of every term.
func (t Triple) Validate() error {
	if err := t.validateStructure(); err != nil {
		return err
	}
	// The writer's rune-based escaping would silently replace invalid
	// UTF-8 with U+FFFD; reject it here so serialized triples always
	// re-parse to themselves. The parser skips this re-scan — it
	// validates each whole line up front (see parseLine).
	for _, pair := range [...]struct{ what, s string }{
		{"subject", t.Subject.Value},
		{"predicate", t.Predicate.Value},
		{"object", t.Object.Value},
		{"language tag", t.Object.Lang},
		{"datatype", t.Object.Datatype},
	} {
		if !utf8.ValidString(pair.s) {
			return fmt.Errorf("rdf: %s is not valid UTF-8", pair.what)
		}
	}
	return nil
}

// validateStructure checks the triple's shape without the UTF-8 scans;
// the parser uses it on lines already validated as UTF-8.
func (t Triple) validateStructure() error {
	switch t.Subject.Kind {
	case IRI, BlankNode:
		if t.Subject.Value == "" {
			return fmt.Errorf("rdf: empty subject %s", t.Subject.Kind)
		}
	default:
		return fmt.Errorf("rdf: subject must be IRI or blank node, got %s", t.Subject.Kind)
	}
	if t.Predicate.Kind != IRI || t.Predicate.Value == "" {
		return fmt.Errorf("rdf: predicate must be a non-empty IRI, got %s %q", t.Predicate.Kind, t.Predicate.Value)
	}
	if (t.Object.Kind == IRI || t.Object.Kind == BlankNode) && t.Object.Value == "" {
		return fmt.Errorf("rdf: empty object %s", t.Object.Kind)
	}
	return nil
}

func escapeIRI(s string) string {
	if !strings.ContainsAny(s, "<>\"{}|^`\\\n\r\t ") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		// IRIREF allows only \u / \U escapes, so whitespace must use
		// them too: a "\t" inside angle brackets would not re-parse.
		case '<', '>', '"', '{', '}', '|', '^', '`', '\\', '\n', '\r', '\t', ' ':
			fmt.Fprintf(&b, "\\u%04X", r)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString("\\\"")
		case '\\':
			b.WriteString("\\\\")
		case '\n':
			b.WriteString("\\n")
		case '\r':
			b.WriteString("\\r")
		case '\t':
			b.WriteString("\\t")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
