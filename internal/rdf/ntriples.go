package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error at a specific line of an N-Triples
// document. Err, when non-nil, is the underlying cause (for example
// bufio.ErrTooLong for an oversize line, or an I/O error from the
// source) and is reachable through errors.Is / errors.As.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // human-readable description
	Err  error  // underlying cause, if any
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: line %d: %s", e.Line, e.Msg)
}

// Unwrap exposes the underlying cause for errors.Is / errors.As.
func (e *ParseError) Unwrap() error { return e.Err }

// DefaultMaxLineBytes is the longest physical line Reader accepts by
// default. Longer lines are reported as *ParseError wrapping
// bufio.ErrTooLong (and skipped, in lenient mode).
const DefaultMaxLineBytes = 16 * 1024 * 1024

// errOversize marks a physical line that exceeded the reader's limit.
// The line is fully consumed, so reading can continue past it.
var errOversize = errors.New("rdf: line too long")

// Reader parses N-Triples documents (https://www.w3.org/TR/n-triples/)
// line by line. It tolerates blank lines and '#' comments. Malformed
// lines — including lines longer than the configured limit — produce
// *ParseError carrying the line number; in lenient mode they are
// skipped and counted instead. I/O failures of the underlying source
// are also wrapped in *ParseError (with the failing line) but are
// returned even in lenient mode, since no further progress is possible.
type Reader struct {
	br      *bufio.Reader
	line    int
	lenient bool
	skipped int
	maxLine int
}

// NewReader returns a Reader over r in strict mode.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64*1024), maxLine: DefaultMaxLineBytes}
}

// SetLenient toggles lenient mode: malformed lines are skipped rather
// than returned as errors.
func (r *Reader) SetLenient(lenient bool) { r.lenient = lenient }

// SetMaxLineBytes overrides the physical line-length limit
// (DefaultMaxLineBytes). Values <= 0 restore the default.
func (r *Reader) SetMaxLineBytes(n int) {
	if n <= 0 {
		n = DefaultMaxLineBytes
	}
	r.maxLine = n
}

// Skipped returns the number of malformed lines (including oversize
// ones) skipped in lenient mode.
func (r *Reader) Skipped() int { return r.skipped }

// Next returns the next triple, or io.EOF when the document is exhausted.
func (r *Reader) Next() (Triple, error) {
	for {
		raw, err := r.readLine()
		if err == io.EOF {
			return Triple{}, io.EOF
		}
		r.line++
		if err == errOversize {
			if r.lenient {
				r.skipped++
				continue
			}
			return Triple{}, &ParseError{
				Line: r.line,
				Msg:  fmt.Sprintf("line exceeds %d bytes", r.maxLine),
				Err:  bufio.ErrTooLong,
			}
		}
		if err != nil {
			// An I/O failure is not skippable: the source cannot make
			// progress, so lenient mode surfaces it too.
			return Triple{}, &ParseError{Line: r.line, Msg: "read error: " + err.Error(), Err: err}
		}
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line, r.line)
		if err != nil {
			if r.lenient {
				r.skipped++
				continue
			}
			return Triple{}, err
		}
		return t, nil
	}
}

// readLine returns the next physical line without its newline. It
// reports errOversize for a line whose content (excluding the trailing
// newline) exceeds maxLine, after consuming the whole line, so the
// reader can continue behind it. io.EOF is returned only when no bytes
// remain; a final line without a newline is returned normally.
func (r *Reader) readLine() (string, error) {
	var buf []byte
	oversize := false
	for {
		frag, err := r.br.ReadSlice('\n')
		if len(frag) > 0 && !oversize {
			content := len(frag)
			if frag[content-1] == '\n' {
				content-- // the terminator does not count against the limit
			}
			if len(buf)+content > r.maxLine {
				oversize = true
				buf = nil
			} else {
				buf = append(buf, frag...)
			}
		}
		switch err {
		case nil:
			if oversize {
				return "", errOversize
			}
			return string(trimEOL(buf)), nil
		case bufio.ErrBufferFull:
			continue // line continues past the buffered fragment
		case io.EOF:
			if oversize {
				return "", errOversize
			}
			if len(buf) == 0 {
				return "", io.EOF
			}
			return string(trimEOL(buf)), nil
		default:
			return "", err
		}
	}
}

// trimEOL strips a trailing "\n" or "\r\n".
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// ReadAll consumes the rest of the document and returns all triples.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseString parses an entire N-Triples document held in a string.
func ParseString(doc string) ([]Triple, error) {
	return NewReader(strings.NewReader(doc)).ReadAll()
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func parseLine(s string, line int) (Triple, error) {
	// N-Triples documents are UTF-8; a line with raw invalid bytes
	// cannot round-trip through the rune-based escaping of the writer,
	// so it is malformed (and skippable in lenient mode).
	if !utf8.ValidString(s) {
		return Triple{}, &ParseError{Line: line, Msg: "invalid UTF-8"}
	}
	p := &lineParser{s: s, line: line}
	subj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.ws()
	pred, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.ws()
	obj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.ws()
	if p.pos >= len(p.s) || p.s[p.pos] != '.' {
		return Triple{}, p.errf("expected terminating '.'")
	}
	p.pos++
	p.ws()
	if p.pos != len(p.s) {
		return Triple{}, p.errf("trailing content after '.'")
	}
	t := Triple{Subject: subj, Predicate: pred, Object: obj}
	// The full Validate's per-term UTF-8 scans are redundant here: the
	// whole line was validated up front and escape decoding only emits
	// valid runes, so only the structural checks remain.
	if err := t.validateStructure(); err != nil {
		return Triple{}, &ParseError{Line: line, Msg: err.Error()}
	}
	return t, nil
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...) + fmt.Sprintf(" at column %d", p.pos+1)}
}

func (p *lineParser) ws() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) term() (Term, error) {
	if p.pos >= len(p.s) {
		return Term{}, p.errf("unexpected end of line")
	}
	switch p.s[p.pos] {
	case '<':
		return p.iri()
	case '"':
		return p.literal()
	case '_':
		return p.blank()
	default:
		return Term{}, p.errf("unexpected character %q", p.s[p.pos])
	}
}

func (p *lineParser) iri() (Term, error) {
	p.pos++ // consume '<'
	start := p.pos
	var b *strings.Builder
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch c {
		case '>':
			var v string
			if b == nil {
				v = p.s[start:p.pos]
			} else {
				v = b.String()
			}
			p.pos++
			if v == "" {
				return Term{}, p.errf("empty IRI")
			}
			return NewIRI(v), nil
		case '\\':
			if b == nil {
				b = &strings.Builder{}
				b.WriteString(p.s[start:p.pos])
			}
			r, err := p.escape(false)
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
		case ' ', '<', '"':
			return Term{}, p.errf("invalid character %q in IRI", c)
		default:
			if b != nil {
				b.WriteByte(c)
			}
			p.pos++
		}
	}
	return Term{}, p.errf("unterminated IRI")
}

func (p *lineParser) literal() (Term, error) {
	p.pos++ // consume '"'
	start := p.pos
	var b *strings.Builder
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch c {
		case '"':
			var lex string
			if b == nil {
				lex = p.s[start:p.pos]
			} else {
				lex = b.String()
			}
			p.pos++
			return p.literalSuffix(lex)
		case '\\':
			if b == nil {
				b = &strings.Builder{}
				b.WriteString(p.s[start:p.pos])
			}
			r, err := p.escape(true)
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
		default:
			if b != nil {
				b.WriteByte(c)
			}
			p.pos++
		}
	}
	return Term{}, p.errf("unterminated literal")
}

func (p *lineParser) literalSuffix(lex string) (Term, error) {
	if p.pos < len(p.s) && p.s[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && (isAlnum(p.s[p.pos]) || p.s[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.s[start:p.pos]), nil
	}
	if strings.HasPrefix(p.s[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.s) || p.s[p.pos] != '<' {
			return Term{}, p.errf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *lineParser) blank() (Term, error) {
	if !strings.HasPrefix(p.s[p.pos:], "_:") {
		return Term{}, p.errf("expected blank node label")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.s) && !isWS(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.s[start:p.pos]), nil
}

// escape decodes one backslash escape starting at p.pos (which points at
// the backslash). stringEsc enables the string-only escapes (\t \n etc.).
func (p *lineParser) escape(stringEsc bool) (rune, error) {
	p.pos++ // consume '\'
	if p.pos >= len(p.s) {
		return 0, p.errf("dangling escape")
	}
	c := p.s[p.pos]
	p.pos++
	switch c {
	case 'u':
		return p.hexEscape(4)
	case 'U':
		return p.hexEscape(8)
	}
	if stringEsc {
		switch c {
		case 't':
			return '\t', nil
		case 'b':
			return '\b', nil
		case 'n':
			return '\n', nil
		case 'r':
			return '\r', nil
		case 'f':
			return '\f', nil
		case '"':
			return '"', nil
		case '\'':
			return '\'', nil
		case '\\':
			return '\\', nil
		}
	}
	return 0, p.errf("invalid escape \\%c", c)
}

func (p *lineParser) hexEscape(n int) (rune, error) {
	if p.pos+n > len(p.s) {
		return 0, p.errf("truncated unicode escape")
	}
	v, err := strconv.ParseUint(p.s[p.pos:p.pos+n], 16, 32)
	if err != nil {
		return 0, p.errf("invalid unicode escape: %v", err)
	}
	p.pos += n
	if !utf8.ValidRune(rune(v)) {
		return 0, p.errf("invalid rune U+%04X", v)
	}
	return rune(v), nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isWS(c byte) bool { return c == ' ' || c == '\t' }

// Writer serializes triples in N-Triples syntax.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple. Invalid triples are rejected before writing.
func (w *Writer) Write(t Triple) error {
	if w.err != nil {
		return w.err
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if _, err := w.w.WriteString(t.String()); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of triples written so far.
func (w *Writer) Count() int { return w.n }

// Flush drains the internal buffer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// WriteAll writes every triple followed by a flush.
func WriteAll(w io.Writer, triples []Triple) error {
	tw := NewWriter(w)
	for _, t := range triples {
		if err := tw.Write(t); err != nil {
			return err
		}
	}
	return tw.Flush()
}
