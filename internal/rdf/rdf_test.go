package rdf

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("http://ex.org/a"), IRI, "<http://ex.org/a>"},
		{"literal", NewLiteral("hello"), Literal, `"hello"`},
		{"lang literal", NewLangLiteral("bonjour", "fr"), Literal, `"bonjour"@fr`},
		{"typed literal", NewTypedLiteral("5", "http://www.w3.org/2001/XMLSchema#int"), Literal, `"5"^^<http://www.w3.org/2001/XMLSchema#int>`},
		{"blank", NewBlank("b0"), BlankNode, "_:b0"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsLiteral() || NewIRI("x").IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !NewLiteral("x").IsLiteral() || NewLiteral("x").IsIRI() {
		t.Error("literal predicates wrong")
	}
	if !NewBlank("x").IsBlank() {
		t.Error("blank predicates wrong")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || BlankNode.String() != "BlankNode" {
		t.Error("kind names wrong")
	}
	if got := TermKind(9).String(); got != "TermKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("v"))
	want := `<http://a> <http://p> "v" .`
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTripleValidate(t *testing.T) {
	ok := NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid triple rejected: %v", err)
	}
	bad := []Triple{
		NewTriple(NewLiteral("s"), NewIRI("p"), NewLiteral("o")),
		NewTriple(NewIRI(""), NewIRI("p"), NewLiteral("o")),
		NewTriple(NewIRI("s"), NewLiteral("p"), NewLiteral("o")),
		NewTriple(NewIRI("s"), NewIRI(""), NewLiteral("o")),
		NewTriple(NewIRI("s"), NewBlank("p"), NewLiteral("o")),
		NewTriple(NewIRI("s"), NewIRI("p"), NewIRI("")),
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid triple accepted: %v", i, tr)
		}
	}
	blankSubj := NewTriple(NewBlank("b"), NewIRI("p"), NewBlank("o"))
	if err := blankSubj.Validate(); err != nil {
		t.Errorf("blank subject/object rejected: %v", err)
	}
}

func TestParseBasic(t *testing.T) {
	doc := `
# a comment
<http://ex.org/e1> <http://ex.org/name> "Joe's Diner" .
<http://ex.org/e1> <http://ex.org/locatedIn> <http://ex.org/athens> .

_:b0 <http://ex.org/label> "blank"@en .
<http://ex.org/e2> <http://ex.org/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 4 {
		t.Fatalf("got %d triples, want 4", len(triples))
	}
	if triples[0].Object.Value != "Joe's Diner" {
		t.Errorf("literal = %q", triples[0].Object.Value)
	}
	if !triples[1].Object.IsIRI() {
		t.Error("object of second triple should be IRI")
	}
	if triples[2].Object.Lang != "en" {
		t.Errorf("lang = %q, want en", triples[2].Object.Lang)
	}
	if !triples[2].Subject.IsBlank() || triples[2].Subject.Value != "b0" {
		t.Errorf("blank subject = %v", triples[2].Subject)
	}
	if triples[3].Object.Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("datatype = %q", triples[3].Object.Datatype)
	}
}

func TestParseEscapes(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "line1\nline2\ttab \"quoted\" back\\slash é \U0001F600" .`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "line1\nline2\ttab \"quoted\" back\\slash é \U0001F600"
	if got := triples[0].Object.Value; got != want {
		t.Errorf("unescaped = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no dot", `<http://a> <http://p> "x"`},
		{"unterminated iri", `<http://a <http://p> "x" .`},
		{"unterminated literal", `<http://a> <http://p> "x .`},
		{"literal subject", `"s" <http://p> "x" .`},
		{"bare word", `hello <http://p> "x" .`},
		{"trailing garbage", `<http://a> <http://p> "x" . extra`},
		{"missing object", `<http://a> <http://p> .`},
		{"empty lang", `<http://a> <http://p> "x"@ .`},
		{"bad escape", `<http://a> <http://p> "x\q" .`},
		{"truncated unicode", `<http://a> <http://p> "x\u00" .`},
		{"bad unicode", `<http://a> <http://p> "x\uZZZZ" .`},
		{"surrogate rune", `<http://a> <http://p> "x\uD800" .`},
		{"datatype not iri", `<http://a> <http://p> "x"^^y .`},
		{"empty iri", `<> <http://p> "x" .`},
		{"space in iri", `<http://a b> <http://p> "x" .`},
		{"empty blank label", `_: <http://p> "x" .`},
		{"dangling escape", `<http://a> <http://p> "x\`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.doc)
			if err == nil {
				t.Fatalf("expected error for %q", tc.doc)
			}
			var pe *ParseError
			if !asParseError(err, &pe) {
				t.Fatalf("error type = %T, want *ParseError", err)
			}
			if pe.Line != 1 {
				t.Errorf("line = %d, want 1", pe.Line)
			}
		})
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseErrorMessage(t *testing.T) {
	_, err := ParseString(`bogus`)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error message %q lacks line info", err.Error())
	}
}

func TestLenientMode(t *testing.T) {
	doc := `<http://a> <http://p> "ok" .
garbage line here
<http://b> <http://p> "ok2" .
`
	r := NewReader(strings.NewReader(doc))
	r.SetLenient(true)
	triples, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 2 {
		t.Fatalf("got %d triples, want 2", len(triples))
	}
	if r.Skipped() != 1 {
		t.Errorf("skipped = %d, want 1", r.Skipped())
	}
}

func TestReaderNextEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only a comment\n"))
	_, err := r.Next()
	if err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral("plain value")),
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLangLiteral("väl\"ue\n", "en-GB")),
		NewTriple(NewBlank("n1"), NewIRI("http://ex.org/p"), NewTypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#double")),
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewIRI("http://ex.org/o")),
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewBlank("n2")),
		NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral("tab\tand\\backslash")),
	}
	var sb strings.Builder
	if err := WriteAll(&sb, triples); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(triples) {
		t.Fatalf("got %d triples back, want %d", len(back), len(triples))
	}
	for i := range triples {
		if back[i] != triples[i] {
			t.Errorf("triple %d: got %+v, want %+v", i, back[i], triples[i])
		}
	}
}

// TestRoundTripProperty checks Parse(Write(t)) == t for arbitrary literal
// content and IRIs built from arbitrary path fragments.
func TestRoundTripProperty(t *testing.T) {
	f := func(lex string, lang bool) bool {
		if !validUTF8(lex) {
			return true // skip invalid UTF-8 inputs; scanner normalizes them
		}
		obj := NewLiteral(lex)
		if lang {
			obj = NewLangLiteral(lex, "en")
		}
		tr := NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), obj)
		var sb strings.Builder
		if err := WriteAll(&sb, []Triple{tr}); err != nil {
			return false
		}
		back, err := ParseString(sb.String())
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0] == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func validUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}

func TestWriterRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	err := w.Write(NewTriple(NewLiteral("bad"), NewIRI("p"), NewLiteral("o")))
	if err == nil {
		t.Fatal("invalid triple accepted")
	}
	if w.Count() != 0 {
		t.Errorf("count = %d, want 0", w.Count())
	}
}

func TestWriterCount(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	for i := 0; i < 3; i++ {
		if err := w.Write(NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("count = %d, want 3", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 3 {
		t.Errorf("wrote %d lines, want 3", lines)
	}
}

func TestEscapeIRIRoundTrip(t *testing.T) {
	// IRIs containing characters that must be \u-escaped.
	tr := NewTriple(NewIRI("http://ex.org/a<b>c"), NewIRI("http://p"), NewLiteral("o"))
	var sb strings.Builder
	if err := WriteAll(&sb, []Triple{tr}); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Subject.Value != "http://ex.org/a<b>c" {
		t.Errorf("round-tripped IRI = %q", back[0].Subject.Value)
	}
}

func TestLongLines(t *testing.T) {
	long := strings.Repeat("x", 200_000)
	doc := `<http://a> <http://p> "` + long + `" .`
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples[0].Object.Value) != 200_000 {
		t.Error("long literal truncated")
	}
}

func BenchmarkParseLine(b *testing.B) {
	line := `<http://ex.org/entity/12345> <http://ex.org/ontology/name> "Some Fairly Long Entity Name With Tokens" .`
	doc := strings.Repeat(line+"\n", 1000)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(strings.NewReader(doc))
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
