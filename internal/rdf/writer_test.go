package rdf

import (
	"errors"
	"strings"
	"testing"
)

// failingWriter errors after n bytes.
type failingWriter struct {
	n int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	w := NewWriter(&failingWriter{n: 4})
	var firstErr error
	for i := 0; i < 20000 && firstErr == nil; i++ {
		firstErr = w.Write(NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral(strings.Repeat("x", 100))))
	}
	if firstErr == nil {
		firstErr = w.Flush()
	}
	if firstErr == nil {
		t.Fatal("io error never surfaced")
	}
	// Once failed, the writer stays failed.
	if err := w.Write(NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))); err == nil {
		t.Error("write after failure succeeded")
	}
	if err := w.Flush(); err == nil {
		t.Error("flush after failure succeeded")
	}
}

func TestParseErrorFields(t *testing.T) {
	_, err := ParseString("<http://a> <http://p> \"x\"\nbroken line here .")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 1 { // the first line lacks the dot
		t.Errorf("line = %d", pe.Line)
	}
	if pe.Msg == "" {
		t.Error("empty message")
	}
}

func TestReadAllStopsAtError(t *testing.T) {
	r := NewReader(strings.NewReader("<http://a> <http://p> \"ok\" .\nbroken\n<http://b> <http://p> \"ok\" .\n"))
	triples, err := r.ReadAll()
	if err == nil {
		t.Fatal("expected error")
	}
	if len(triples) != 1 {
		t.Errorf("read %d triples before error, want 1", len(triples))
	}
}

func TestCRLFLineEndings(t *testing.T) {
	doc := "<http://a> <http://p> \"v1\" .\r\n<http://b> <http://p> \"v2\" .\r\n"
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 2 {
		t.Fatalf("got %d triples", len(triples))
	}
	if triples[0].Object.Value != "v1" {
		t.Errorf("value = %q", triples[0].Object.Value)
	}
}

func TestWhitespaceTolerance(t *testing.T) {
	doc := "   <http://a>\t\t<http://p>   \"spaced\"   .   "
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 1 || triples[0].Object.Value != "spaced" {
		t.Errorf("triples = %v", triples)
	}
}
