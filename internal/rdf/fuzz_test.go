package rdf

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// fuzzMaxLine keeps the oversize-line path reachable with small fuzz
// inputs.
const fuzzMaxLine = 256

// FuzzReadTriples drives Reader over arbitrary documents in both strict
// and lenient mode and checks the parser's contract:
//
//   - no panics, ever
//   - strict mode fails only with *ParseError carrying a positive line
//     number; oversize lines wrap bufio.ErrTooLong
//   - lenient mode never fails on in-memory input (I/O errors are the
//     only non-skippable failures) and counts every skipped line
//   - every parsed triple is valid and survives a write/re-parse round
//     trip unchanged
//   - lenient parsing agrees with strict parsing on documents strict
//     mode accepts, and skips exactly the lines that fail line-by-line
func FuzzReadTriples(f *testing.F) {
	// Well-formed constructs.
	f.Add("<http://a> <http://p> <http://b> .\n")
	f.Add("<http://a> <http://p> \"literal value\" .\n")
	f.Add("<http://a> <http://p> \"v\"@en-GB .\n")
	f.Add("<http://a> <http://p> \"3\"^^<http://www.w3.org/2001/XMLSchema#int> .\n")
	f.Add("_:b1 <http://p> _:b2 .\n")
	f.Add("<http://a> <http://p> \"esc \\\"q\\\" \\n \\u00e9 \\U0001F600\" .\n")
	f.Add("# comment\n\n   \n<http://a> <http://p> <http://b> . \n")
	// Bad-IRI and other malformed lines (the lenient-skip paths).
	f.Add("<http://a b> <http://p> <http://c> .\n")                         // space in IRI
	f.Add("<> <http://p> <http://c> .\n")                                   // empty IRI
	f.Add("<http://a <http://p> <http://c> .\n")                            // '<' inside IRI
	f.Add("<http://a> <http://p> \"unterminated .\n")                       // unterminated literal
	f.Add("<http://a> <http://p> <http://c>\n")                             // missing dot
	f.Add("<http://a> <http://p> <http://c> . extra\n")                     // trailing content
	f.Add("<http://a> <http://p> \"v\"@ .\n")                               // empty language tag
	f.Add("<http://a> <http://p> \"v\"^^x .\n")                             // bad datatype
	f.Add("\"s\" <http://p> <http://c> .\n")                                // literal subject
	f.Add("<http://a> \"p\" <http://c> .\n")                                // literal predicate
	f.Add("<http://a> <http://p> \"bad \\q esc\" .\n")                      // invalid escape
	f.Add("<http://a> <http://p> \"\\ud800\" .\n")                          // surrogate rune
	f.Add("not a triple at all\n")                                          // garbage
	f.Add("<http://a> <http://p> \"" + strings.Repeat("x", 400) + "\" .\n") // oversize
	f.Add(strings.Repeat("y", 300))                                         // oversize, no newline
	f.Add("<http://a> <http://p> <http://b> .\r\n")                         // CRLF
	f.Add("mixed\n<http://a> <http://p> <http://b> .\n# c\nbroken <\n")

	f.Fuzz(func(t *testing.T, doc string) {
		// Strict pass: only *ParseError failures, valid triples.
		strict := NewReader(strings.NewReader(doc))
		strict.SetMaxLineBytes(fuzzMaxLine)
		var strictTriples []Triple
		var strictErr error
		for {
			tr, err := strict.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				strictErr = err
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("strict error is not *ParseError: %T %v", err, err)
				}
				if pe.Line <= 0 {
					t.Fatalf("ParseError without line number: %v", pe)
				}
				break
			}
			strictTriples = append(strictTriples, tr)
		}
		if strictErr != nil && errors.Is(strictErr, bufio.ErrTooLong) {
			// The oversize path must report the configured limit.
			if !strings.Contains(strictErr.Error(), "exceeds") {
				t.Fatalf("oversize error lacks limit message: %v", strictErr)
			}
		}

		// Lenient pass: never fails on in-memory input.
		lenient := NewReader(strings.NewReader(doc))
		lenient.SetLenient(true)
		lenient.SetMaxLineBytes(fuzzMaxLine)
		lenientTriples, err := lenient.ReadAll()
		if err != nil {
			t.Fatalf("lenient mode failed: %v", err)
		}
		if lenient.Skipped() < 0 {
			t.Fatalf("negative skip count %d", lenient.Skipped())
		}
		if strictErr == nil {
			if lenient.Skipped() != 0 {
				t.Fatalf("strict succeeded but lenient skipped %d lines", lenient.Skipped())
			}
			if len(lenientTriples) != len(strictTriples) {
				t.Fatalf("strict parsed %d triples, lenient %d", len(strictTriples), len(lenientTriples))
			}
		}

		// Round trip: every lenient triple is valid, serializes, and
		// re-parses to itself.
		for _, tr := range lenientTriples {
			if err := tr.Validate(); err != nil {
				t.Fatalf("parsed invalid triple %v: %v", tr, err)
			}
		}
		if len(lenientTriples) > 0 {
			var buf bytes.Buffer
			if err := WriteAll(&buf, lenientTriples); err != nil {
				t.Fatalf("serializing parsed triples: %v", err)
			}
			back, err := ParseString(buf.String())
			if err != nil {
				t.Fatalf("re-parsing serialized triples: %v\n%s", err, buf.String())
			}
			if len(back) != len(lenientTriples) {
				t.Fatalf("round trip changed count: %d -> %d", len(lenientTriples), len(back))
			}
			for i := range back {
				if back[i] != lenientTriples[i] {
					t.Fatalf("round trip changed triple %d:\n%v\n%v", i, lenientTriples[i], back[i])
				}
			}
		}
	})
}
