package rimom

import (
	"fmt"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func tr(s, p string, o rdf.Term) rdf.Triple { return rdf.NewTriple(iri(s), iri(p), o) }

func mustKB(t testing.TB, name string, triples []rdf.Triple) *kb.KB {
	t.Helper()
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRunSeedsByNameAndValue(t *testing.T) {
	var t1, t2 []rdf.Triple
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("Distinct Item %02d", i)
		t1 = append(t1, tr(fmt.Sprintf("http://a/e%02d", i), "http://va/name", lit(name)))
		t2 = append(t2, tr(fmt.Sprintf("http://b/e%02d", i), "http://vb/label", lit(name)))
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	matches := Run(kb1, kb2, DefaultConfig())
	if len(matches) != 5 {
		t.Fatalf("matches = %v, want 5", matches)
	}
}

func TestOneLeftObject(t *testing.T) {
	// Two movie pairs seed by identical titles. Each movie has two
	// actors: one matchable by value, one with totally disjoint values.
	// After the value-matchable actor is matched, the remaining actor is
	// the "one left object" on both sides and must be matched by the
	// heuristic despite zero value overlap.
	var t1, t2 []rdf.Triple
	for i := 0; i < 2; i++ {
		m1 := fmt.Sprintf("http://a/m%d", i)
		m2 := fmt.Sprintf("http://b/m%d", i)
		title := fmt.Sprintf("Same Movie Title %d", i)
		t1 = append(t1, tr(m1, "http://va/title", lit(title)))
		t2 = append(t2, tr(m2, "http://vb/title", lit(title)))
		for j := 0; j < 2; j++ {
			c1 := fmt.Sprintf("http://a/c%d_%d", i, j)
			c2 := fmt.Sprintf("http://b/c%d_%d", i, j)
			t1 = append(t1, tr(m1, "http://va/cast", iri(c1)))
			t2 = append(t2, tr(m2, "http://vb/cast", iri(c2)))
			if j == 0 {
				aname := fmt.Sprintf("Known Actor %d", i)
				t1 = append(t1, tr(c1, "http://va/name", lit(aname)))
				t2 = append(t2, tr(c2, "http://vb/name", lit(aname)))
			} else {
				t1 = append(t1, tr(c1, "http://va/name", lit(fmt.Sprintf("alpha beta %d", i))))
				t2 = append(t2, tr(c2, "http://vb/name", lit(fmt.Sprintf("gamma delta %d", i))))
			}
		}
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	matches := Run(kb1, kb2, DefaultConfig())
	gotPairs := map[string]string{}
	for _, p := range matches {
		gotPairs[kb1.URI(p.E1)] = kb2.URI(p.E2)
	}
	for i := 0; i < 2; i++ {
		left1 := fmt.Sprintf("http://a/c%d_1", i)
		left2 := fmt.Sprintf("http://b/c%d_1", i)
		if gotPairs[left1] != left2 {
			t.Errorf("one-left-object missed %s -> %s (got %q); matches=%v",
				left1, left2, gotPairs[left1], matches)
		}
	}
}

func TestRunNoFalseOneLeftWhenAmbiguous(t *testing.T) {
	// A movie pair with TWO unmatched actors on each side: the heuristic
	// must not fire (it requires exactly one left object).
	var t1, t2 []rdf.Triple
	t1 = append(t1, tr("http://a/m", "http://va/title", lit("Shared Unique Title")))
	t2 = append(t2, tr("http://b/m", "http://vb/title", lit("Shared Unique Title")))
	for j := 0; j < 2; j++ {
		c1 := fmt.Sprintf("http://a/c%d", j)
		c2 := fmt.Sprintf("http://b/c%d", j)
		t1 = append(t1, tr("http://a/m", "http://va/cast", iri(c1)))
		t2 = append(t2, tr("http://b/m", "http://vb/cast", iri(c2)))
		t1 = append(t1, tr(c1, "http://va/name", lit(fmt.Sprintf("aaa bbb %d", j))))
		t2 = append(t2, tr(c2, "http://vb/name", lit(fmt.Sprintf("ccc ddd %d", j))))
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	matches := Run(kb1, kb2, DefaultConfig())
	for _, p := range matches {
		u := kb1.URI(p.E1)
		if u != "http://a/m" {
			t.Errorf("ambiguous actors matched: %s -> %s", u, kb2.URI(p.E2))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	var t1, t2 []rdf.Triple
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("Entity %02d", i)
		t1 = append(t1, tr(fmt.Sprintf("http://a/e%02d", i), "http://va/name", lit(name)))
		t2 = append(t2, tr(fmt.Sprintf("http://b/e%02d", i), "http://vb/name", lit(name)))
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	a := Run(kb1, kb2, DefaultConfig())
	b := Run(kb1, kb2, DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	kb1, kb2 := mustKB(t, "a", nil), mustKB(t, "b", nil)
	if got := Run(kb1, kb2, DefaultConfig()); len(got) != 0 {
		t.Errorf("matches on empty KBs: %v", got)
	}
}
