// Package rimom approximates RiMOM-IM (Shao et al., JCST 2016), the
// iterative instance-matching baseline. Its signature device is the
// "one-left-object" heuristic (paper §II): if two matched descriptions
// e1, e1' are connected via aligned relations r, r' and all their
// neighbors via r, r' have been matched except e2, e2', then e2, e2'
// are also considered matches. The approximation seeds matches from
// identical names plus a value-similarity clustering, then applies
// one-left-object rounds until fixpoint.
package rimom

import (
	"minoaner/internal/blocking"
	"minoaner/internal/cluster"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/sigma"
)

// Config tunes the approximation.
type Config struct {
	// NameK is the number of top name attributes for seed matching.
	NameK int
	// Threshold is the value-similarity threshold of the initial
	// clustering.
	Threshold float64
	// MaxRounds bounds the one-left-object iterations.
	MaxRounds int
	// Purge configures Block Purging of the candidate blocks.
	Purge blocking.PurgeConfig
}

// DefaultConfig returns the standard settings.
func DefaultConfig() Config {
	return Config{
		NameK:     2,
		Threshold: 0.6,
		MaxRounds: 10,
		Purge:     blocking.DefaultPurgeConfig(),
	}
}

// Run executes the RiMOM-IM approximation.
func Run(kb1, kb2 *kb.KB, cfg Config) []eval.Pair {
	st := &state{
		kb1: kb1, kb2: kb2, cfg: cfg,
		matched1: make(map[kb.EntityID]kb.EntityID),
		matched2: make(map[kb.EntityID]kb.EntityID),
	}
	st.seed()
	for round := 0; round < cfg.MaxRounds; round++ {
		st.alignRelations()
		if st.oneLeftObjectRound() == 0 {
			break
		}
	}
	return st.result()
}

type state struct {
	kb1, kb2 *kb.KB
	cfg      Config

	matched1 map[kb.EntityID]kb.EntityID
	matched2 map[kb.EntityID]kb.EntityID
	align    map[[2]int32]struct{}
}

func (s *state) add(p eval.Pair) bool {
	if _, t := s.matched1[p.E1]; t {
		return false
	}
	if _, t := s.matched2[p.E2]; t {
		return false
	}
	s.matched1[p.E1] = p.E2
	s.matched2[p.E2] = p.E1
	return true
}

// seed combines identical-name matches with a unique-mapping clustering
// of value similarities over the token-block candidates.
func (s *state) seed() {
	for _, p := range sigma.NameSeeds(s.kb1, s.kb2, s.cfg.NameK) {
		s.add(p)
	}
	vs := sigma.ValueSimilarity(s.kb1, s.kb2)
	bt := blocking.TokenBlocks(s.kb1, s.kb2)
	bt, _ = blocking.Purge(bt, s.cfg.Purge)
	idx := bt.BuildIndex()
	seen := make(map[eval.Pair]struct{})
	var scored []cluster.ScoredPair
	for e1 := 0; e1 < s.kb1.Len(); e1++ {
		id1 := kb.EntityID(e1)
		if _, t := s.matched1[id1]; t {
			continue
		}
		for _, e2 := range bt.Candidates1(idx, id1) {
			if _, t := s.matched2[e2]; t {
				continue
			}
			p := eval.Pair{E1: id1, E2: e2}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			if sim := vs(id1, e2); sim >= s.cfg.Threshold {
				scored = append(scored, cluster.ScoredPair{E1: id1, E2: e2, Score: sim})
			}
		}
	}
	for _, p := range cluster.UniqueMapping(scored, s.cfg.Threshold) {
		s.add(p)
	}
}

// alignRelations marks relation pairs that connect matched pairs to
// matched pairs as aligned.
func (s *state) alignRelations() {
	s.align = make(map[[2]int32]struct{})
	for x, y := range s.matched1 {
		yOut := make(map[kb.EntityID][]int32)
		for _, e := range s.kb2.Entity(y).Out {
			yOut[e.Target] = append(yOut[e.Target], e.Pred)
		}
		for _, e1 := range s.kb1.Entity(x).Out {
			tgt2, ok := s.matched1[e1.Target]
			if !ok {
				continue
			}
			for _, r2 := range yOut[tgt2] {
				s.align[[2]int32{e1.Pred, r2}] = struct{}{}
			}
		}
	}
}

// oneLeftObjectRound applies the heuristic once over all current
// matches and returns the number of new matches.
func (s *state) oneLeftObjectRound() int {
	// Snapshot: decisions within a round are based on the state at the
	// round's start, keeping the process deterministic.
	type pending struct{ p eval.Pair }
	var proposals []pending

	matchedPairs := make([]eval.Pair, 0, len(s.matched1))
	for x, y := range s.matched1 {
		matchedPairs = append(matchedPairs, eval.Pair{E1: x, E2: y})
	}
	eval.SortPairs(matchedPairs)

	for _, mp := range matchedPairs {
		x, y := mp.E1, mp.E2
		for rr := range s.align {
			left1 := s.unmatchedNeighbors1(x, rr[0])
			if len(left1) != 1 {
				continue
			}
			left2 := s.unmatchedNeighbors2(y, rr[1])
			if len(left2) != 1 {
				continue
			}
			proposals = append(proposals, pending{p: eval.Pair{E1: left1[0], E2: left2[0]}})
		}
	}
	eval.SortPairsBy(proposals, func(pr pending) eval.Pair { return pr.p })
	added := 0
	for _, pr := range proposals {
		if s.add(pr.p) {
			added++
		}
	}
	return added
}

func (s *state) unmatchedNeighbors1(x kb.EntityID, pred int32) []kb.EntityID {
	var out []kb.EntityID
	seen := make(map[kb.EntityID]struct{})
	for _, e := range s.kb1.Entity(x).Out {
		if e.Pred != pred {
			continue
		}
		if _, t := s.matched1[e.Target]; t {
			continue
		}
		if _, dup := seen[e.Target]; dup {
			continue
		}
		seen[e.Target] = struct{}{}
		out = append(out, e.Target)
	}
	return out
}

func (s *state) unmatchedNeighbors2(y kb.EntityID, pred int32) []kb.EntityID {
	var out []kb.EntityID
	seen := make(map[kb.EntityID]struct{})
	for _, e := range s.kb2.Entity(y).Out {
		if e.Pred != pred {
			continue
		}
		if _, t := s.matched2[e.Target]; t {
			continue
		}
		if _, dup := seen[e.Target]; dup {
			continue
		}
		seen[e.Target] = struct{}{}
		out = append(out, e.Target)
	}
	return out
}

func (s *state) result() []eval.Pair {
	out := make([]eval.Pair, 0, len(s.matched1))
	for x, y := range s.matched1 {
		out = append(out, eval.Pair{E1: x, E2: y})
	}
	eval.SortPairs(out)
	return out
}
