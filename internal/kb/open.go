package kb

import (
	"bytes"
	"fmt"
	"sync"

	"minoaner/internal/binio"
)

// Lazy (mapped) decoding of the binary KB format. OpenBinary splits the
// version-2 image into two tiers:
//
//   - URI tier, decoded at open: entity count, URIs, and the URI index —
//     everything the infallible, lock-free read path (Len, Lookup, URI,
//     Name, NumTriples) touches. The scan validates the entities
//     section's structure; its checksum is deferred (hashing it would
//     cost as much as the eager load the open replaces).
//   - Full tier, decoded on first demand: predicates, statistics,
//     per-entity attributes/edges/types/tokens, and derived structures.
//     Section checksums — including the entities section's — verify on
//     that first access, so every fallible operation sees verified data.
//
// Retained sources decode separately (they are only needed to mutate),
// also once, on first demand. All decoded values copy out of the
// backing slice (strings are built, not aliased), so once Materialize
// succeeds the KB no longer references the mapping.
//
// Filling the full tier writes only fields and maps the URI tier never
// reads (Entity.Attrs/Out/Types/Tokens are distinct memory locations
// from Entity.URI), so concurrent URI-tier readers race with nothing;
// full-tier readers synchronize through the sync.Once.

// kbLazy is the undecoded remainder of a mapped KB image.
type kbLazy struct {
	m      *binio.Map // nested section directory over the MKB1 image
	hasSrc bool

	once sync.Once // full tier
	err  error

	srcOnce sync.Once // sources tier
	srcErr  error
}

// LazyCapable reports whether a binary KB image is in the sectioned
// (version 2) format that supports lazy decoding. Version-1 images are
// unsectioned streams without per-section checksums and must be decoded
// eagerly.
func LazyCapable(data []byte) bool {
	dec := binio.NewBytesReader(data)
	dec.Magic(binaryMagic)
	v := dec.Uvarint()
	return dec.Err() == nil && v == binaryVersion
}

// OpenBinary decodes a binary KB image lazily: the URI tier (entity
// URIs and index) is built now, everything else on first demand via the
// full-tier accessors or Materialize. The image must stay valid until
// Materialize has succeeded (or the KB is dropped); version-1 images
// fall back to an eager ReadBinary.
func OpenBinary(data []byte) (*KB, error) {
	if !LazyCapable(data) {
		return ReadBinary(bytes.NewReader(data))
	}
	m, err := binio.BytesMap(data, binaryMagic, binaryVersion)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kb := newEmptyKB()
	hdr, err := m.Reader(secHeader)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kb.readHeader(hdr)
	if err := verifyInventory(hdr, m); err != nil {
		return nil, err
	}
	for _, id := range []uint64{secPreds, secStats} {
		if !m.Has(id) {
			return nil, fmt.Errorf("%w: missing section %d", errCorrupt, id)
		}
	}
	// The URI scan reads the raw payload: verifying the entities
	// section's checksum would hash the bulk of the image — the one cost
	// a mapped open exists to avoid. The scan validates the section's
	// structure; the checksum verifies on the first full-tier access
	// (decodeRest goes through m.Reader), so damage in the skipped
	// bytes — or in a URI — is caught before any fallible operation
	// (QueryKB, SaveIndex, mutation, Close) trusts the decoded KB.
	raw, ok := m.Raw(secEntities)
	if !ok {
		return nil, fmt.Errorf("%w: missing section %d", errCorrupt, secEntities)
	}
	ents := binio.NewBytesReader(raw)
	kb.scanURIs(ents)
	if err := ents.Err(); err != nil {
		return nil, fmt.Errorf("%w: entities: %v", errCorrupt, err)
	}
	kb.lazy = &kbLazy{m: m, hasSrc: m.Has(secSources)}
	return kb, nil
}

// verifyInventory checks the header's trailing section inventory (when
// present) against the mapped directory, mirroring readSections.
func verifyInventory(hdr *binio.Reader, m *binio.Map) error {
	if !hdr.More() {
		return hdr.Err()
	}
	n := hdr.Int()
	if hdr.Err() == nil && n > 64 {
		hdr.Fail("absurd inventory size %d", n)
	}
	for i := 0; i < n && hdr.Err() == nil; i++ {
		id := hdr.Uvarint()
		if hdr.Err() == nil && !m.Has(id) {
			hdr.Fail("inventoried section %d missing", id)
		}
	}
	if err := hdr.Err(); err != nil {
		return fmt.Errorf("%w: header inventory: %v", errCorrupt, err)
	}
	return nil
}

// scanURIs builds the URI tier from the entities section: URIs and the
// URI index, skipping (not materializing) attributes, edges, types, and
// tokens. Predicate/target validation belongs to the full-tier fill —
// nothing in the URI tier depends on it.
func (kb *KB) scanURIs(dec *binio.Reader) {
	nEnt := dec.Uvarint()
	if dec.Err() == nil && nEnt > 1<<31 {
		dec.Fail("absurd entity count %d", nEnt)
		return
	}
	kb.entities = make([]Entity, 0, min64(nEnt, 1<<20))
	for i := uint64(0); i < nEnt && dec.Err() == nil; i++ {
		var e Entity
		e.URI = dec.Str()
		nAttrs := dec.Uvarint()
		for a := uint64(0); a < nAttrs && dec.Err() == nil; a++ {
			dec.Uvarint() // pred
			dec.SkipStr() // value
		}
		nOut := dec.Uvarint()
		for o := uint64(0); o < nOut && dec.Err() == nil; o++ {
			dec.Uvarint() // pred
			dec.Uvarint() // target
		}
		nTypes := dec.Uvarint()
		for x := uint64(0); x < nTypes && dec.Err() == nil; x++ {
			dec.SkipStr()
		}
		nTokens := dec.Uvarint()
		for x := uint64(0); x < nTokens && dec.Err() == nil; x++ {
			dec.SkipStr()
		}
		kb.uriIndex[e.URI] = EntityID(len(kb.entities))
		kb.entities = append(kb.entities, e)
	}
}

// materialize decodes the full tier once (idempotent, concurrency-safe)
// and returns its verdict. It is the guard the full-tier accessors call;
// on a fully decoded or eagerly loaded KB it is a nil check.
func (kb *KB) materialize() error {
	l := kb.lazy
	if l == nil {
		return nil
	}
	l.once.Do(func() { l.err = kb.decodeRest() })
	return l.err
}

// materializeSrc decodes the retained sources once, if present.
func (kb *KB) materializeSrc() error {
	l := kb.lazy
	if l == nil || !l.hasSrc {
		return nil
	}
	l.srcOnce.Do(func() { l.srcErr = kb.decodeSources() })
	return l.srcErr
}

// Materialize forces the full tier — everything except retained
// sources, which only mutation needs (see MaterializeSources).
func (kb *KB) Materialize() error { return kb.materialize() }

// MaterializeSources forces the retained-sources tier (a no-op when
// the KB has none). After both Materialize and MaterializeSources
// return nil the KB references nothing in the backing image, so the
// mapping may be released.
func (kb *KB) MaterializeSources() error { return kb.materializeSrc() }

// BinaryInfo is InspectBinary's summary of a binary KB image.
type BinaryInfo struct {
	Name       string
	Entities   int
	Triples    int
	HasSources bool
}

// InspectBinary summarizes a binary KB image without decoding its
// bulk: for sectioned (version 2) images it reads the checksummed
// header plus the entity count, O(header) work however large the KB.
// Version-1 images decode eagerly — they have no section directory to
// consult.
func InspectBinary(data []byte) (BinaryInfo, error) {
	if !LazyCapable(data) {
		k, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return BinaryInfo{}, err
		}
		return BinaryInfo{Name: k.name, Entities: len(k.entities), Triples: k.numTriples, HasSources: k.src != nil}, nil
	}
	m, err := binio.BytesMap(data, binaryMagic, binaryVersion)
	if err != nil {
		return BinaryInfo{}, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	hdr, err := m.Reader(secHeader)
	if err != nil {
		return BinaryInfo{}, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	info := BinaryInfo{Name: hdr.Str(), Triples: hdr.Int(), HasSources: m.Has(secSources)}
	if err := hdr.Err(); err != nil {
		return BinaryInfo{}, fmt.Errorf("%w: header: %v", errCorrupt, err)
	}
	// The entity count is the entities section's leading varint; read
	// it from the raw payload — verifying the section's checksum would
	// mean hashing the whole KB, exactly what inspect avoids.
	raw, ok := m.Raw(secEntities)
	if !ok {
		return BinaryInfo{}, fmt.Errorf("%w: missing section %d", errCorrupt, secEntities)
	}
	ents := binio.NewBytesReader(raw)
	info.Entities = int(ents.Uvarint())
	if err := ents.Err(); err != nil {
		return BinaryInfo{}, fmt.Errorf("%w: entities: %v", errCorrupt, err)
	}
	return info, nil
}

func (kb *KB) decodeRest() error {
	m := kb.lazy.m
	for _, id := range []uint64{secPreds, secStats} {
		body, err := m.Reader(id)
		if err != nil {
			return fmt.Errorf("%w: %v", errCorrupt, err)
		}
		switch id {
		case secPreds:
			kb.readPreds(body)
		case secStats:
			kb.readStats(body)
		}
		if err := body.Err(); err != nil {
			return fmt.Errorf("%w: section %d: %v", errCorrupt, id, err)
		}
	}
	ents, err := m.Reader(secEntities)
	if err != nil {
		return fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kb.fillEntities(ents)
	if err := ents.Err(); err != nil {
		return fmt.Errorf("%w: entities: %v", errCorrupt, err)
	}
	kb.rebuildDerived()
	return nil
}

func (kb *KB) decodeSources() error {
	body, err := kb.lazy.m.Reader(secSources)
	if err != nil {
		return fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kb.readSources(body)
	if err := body.Err(); err != nil {
		return fmt.Errorf("%w: sources: %v", errCorrupt, err)
	}
	return nil
}

// fillEntities is the full-tier counterpart of scanURIs: it re-walks
// the (already checksum-verified) entities section, skipping the URIs
// decoded at open and filling attributes, edges, types, and tokens in
// place, with the same validation as the eager readEntities.
func (kb *KB) fillEntities(dec *binio.Reader) {
	nEnt := dec.Uvarint()
	if dec.Err() == nil && int(nEnt) != len(kb.entities) {
		dec.Fail("entity count %d does not match open-time scan (%d)", nEnt, len(kb.entities))
		return
	}
	for i := 0; i < int(nEnt) && dec.Err() == nil; i++ {
		e := &kb.entities[i]
		dec.SkipStr() // URI, decoded at open
		nAttrs := dec.Uvarint()
		for a := uint64(0); a < nAttrs && dec.Err() == nil; a++ {
			pred := int32(dec.Uvarint())
			val := dec.Str()
			if pred < 0 || int(pred) >= len(kb.preds) {
				dec.Fail("attribute predicate out of range")
				break
			}
			e.Attrs = append(e.Attrs, AttrValue{Pred: pred, Value: val})
		}
		nOut := dec.Uvarint()
		for o := uint64(0); o < nOut && dec.Err() == nil; o++ {
			pred := int32(dec.Uvarint())
			tgt := EntityID(dec.Uvarint())
			if pred < 0 || int(pred) >= len(kb.preds) || uint64(tgt) >= nEnt {
				dec.Fail("edge out of range")
				break
			}
			e.Out = append(e.Out, Edge{Pred: pred, Target: tgt})
		}
		nTypes := dec.Uvarint()
		for x := uint64(0); x < nTypes && dec.Err() == nil; x++ {
			typ := dec.Str()
			e.Types = append(e.Types, typ)
			kb.typeSet[typ] = struct{}{}
		}
		nTokens := dec.Uvarint()
		for x := uint64(0); x < nTokens && dec.Err() == nil; x++ {
			e.Tokens = append(e.Tokens, dec.Str())
		}
	}
}
