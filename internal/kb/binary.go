package kb

import (
	"errors"
	"fmt"
	"io"

	"minoaner/internal/binio"
	"minoaner/internal/rdf"
)

// Binary serialization of a built KB. Loading a large N-Triples dump
// re-tokenizes every literal and re-derives all statistics; the binary
// format stores the assembled structure instead, making reload
// I/O-bound. The format is versioned and self-describing. Version 2
// frames the payload into CRC32-checksummed sections (see
// internal/binio), so corruption — a flipped bit anywhere in a cached
// file — is detected before any damaged data is decoded:
//
//	magic "MKB1" | uvarint version | sections | end marker
//
//	section 1 (header):     name, triple count
//	section 2 (predicates): predicate dictionary
//	section 3 (stats):      attribute and relation statistics
//	section 4 (entities):   per entity: URI, attrs, out-edges, types, tokens
//	section 5 (sources):    tokenizer options, interned term table, and
//	                        sorted triple refs — the retained source
//	                        triples that make the KB mutable (see
//	                        Store). Written only when the KB retains
//	                        them; optional on read.
//
// Derived structures (in-edges, EF, URI index, type/vocab sets) are
// rebuilt on load — they are redundant with the stored data. Version 1
// (the same streams without section framing or checksums) is still
// readable. Unknown section IDs are skipped, so a same-version reader
// tolerates future appended sections; in particular, readers predating
// the sources section load newer KBs fine (they just are not mutable).

var binaryMagic = [4]byte{'M', 'K', 'B', '1'}

const (
	binaryVersion   = 2
	binaryVersionV1 = 1
)

// Section IDs of the version-2 frame.
//
//minoaner:sections writer=WriteBinary reader=readSections
const (
	secHeader   = 1
	secPreds    = 2
	secStats    = 3
	secEntities = 4
	secSources  = 5
)

// errCorrupt wraps structural failures of the binary decoder.
var errCorrupt = errors.New("kb: corrupt binary KB")

// WriteBinary serializes the KB in the binary format (version 2,
// checksummed sections). The encoding is deterministic: the same KB
// always produces the same bytes.
func (kb *KB) WriteBinary(w io.Writer) error {
	if err := kb.Materialize(); err != nil {
		return err
	}
	if err := kb.MaterializeSources(); err != nil {
		return err
	}
	bw := binio.NewWriter(w)
	bw.Raw(binaryMagic[:])
	bw.Uvarint(binaryVersion)
	sections := []uint64{secHeader, secPreds, secStats, secEntities}
	if kb.src != nil {
		sections = append(sections, secSources)
	}
	bw.Section(secHeader, func(e *binio.Writer) {
		e.Str(kb.name)
		e.Int(kb.numTriples)
		// Trailing section inventory: the CRC-protected header names
		// every section written, so a corrupted section ID — which
		// would otherwise just be "skipped as unknown" — is detected
		// as a missing inventoried section. Pre-inventory readers
		// ignore the trailing bytes.
		e.Int(len(sections))
		for _, id := range sections {
			e.Uvarint(id)
		}
	})
	bw.Section(secPreds, kb.writePreds)
	bw.Section(secStats, kb.writeStats)
	bw.Section(secEntities, kb.writeEntities)
	if kb.src != nil {
		bw.Section(secSources, kb.writeSources)
	}
	bw.End()
	return bw.Flush()
}

func (kb *KB) writeSources(e *binio.Writer) {
	src := kb.src
	e.Int(src.opts.MinLength)
	stop := sortedStopwords(src.opts.Stopwords)
	e.Int(len(stop))
	for _, w := range stop {
		e.Str(w)
	}
	e.Int(len(src.terms))
	for _, t := range src.terms {
		e.Uvarint(uint64(t.Kind))
		e.Str(t.Value)
		e.Str(t.Lang)
		e.Str(t.Datatype)
	}
	e.Int(len(src.refs))
	for _, r := range src.refs {
		e.Uvarint(uint64(r.s))
		e.Uvarint(uint64(r.p))
		e.Uvarint(uint64(r.o))
	}
}

func (kb *KB) writePreds(e *binio.Writer) {
	e.Int(len(kb.preds))
	for _, p := range kb.preds {
		e.Str(p)
	}
}

func (kb *KB) writeStats(e *binio.Writer) {
	writeSide := func(m map[int32]*PredStat) {
		e.Int(len(m))
		for pid := int32(0); pid < int32(len(kb.preds)); pid++ {
			st, ok := m[pid]
			if !ok {
				continue
			}
			e.Uvarint(uint64(pid))
			e.Int(st.Entities)
			e.Int(st.Distinct)
			e.Float(st.Importance)
		}
	}
	writeSide(kb.attrStats)
	writeSide(kb.relStats)
}

func (kb *KB) writeEntities(e *binio.Writer) {
	e.Int(len(kb.entities))
	for i := range kb.entities {
		ent := &kb.entities[i]
		e.Str(ent.URI)
		e.Int(len(ent.Attrs))
		for _, av := range ent.Attrs {
			e.Uvarint(uint64(av.Pred))
			e.Str(av.Value)
		}
		e.Int(len(ent.Out))
		for _, edge := range ent.Out {
			e.Uvarint(uint64(edge.Pred))
			e.Uvarint(uint64(edge.Target))
		}
		e.Int(len(ent.Types))
		for _, t := range ent.Types {
			e.Str(t)
		}
		e.Int(len(ent.Tokens))
		for _, t := range ent.Tokens {
			e.Str(t)
		}
	}
}

// ReadBinary deserializes a KB written by WriteBinary. It accepts
// format versions 1 and 2; version 2 additionally verifies the
// per-section checksums before decoding.
func ReadBinary(r io.Reader) (*KB, error) {
	dec := binio.NewReader(r)
	dec.Magic(binaryMagic)
	v := dec.Version(binaryVersionV1, binaryVersion)
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kb := newEmptyKB()
	if v == binaryVersionV1 {
		kb.readHeader(dec)
		kb.readPreds(dec)
		kb.readStats(dec)
		kb.readEntities(dec)
	} else if err := kb.readSections(dec); err != nil {
		return nil, err
	}
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kb.rebuildDerived()
	return kb, nil
}

func newEmptyKB() *KB {
	return &KB{
		uriIndex:  make(map[string]EntityID),
		predIndex: make(map[string]int32),
		ef:        make(map[string]int32),
		attrStats: make(map[int32]*PredStat),
		relStats:  make(map[int32]*PredStat),
		typeSet:   make(map[string]struct{}),
		vocabSet:  make(map[string]struct{}),
	}
}

// readSections decodes the version-2 section stream. Sections are
// checksummed and held in memory by binio, so they can be decoded in
// dependency order (entities validate against the predicate dictionary)
// regardless of their order on the wire; unknown IDs are skipped.
func (kb *KB) readSections(dec *binio.Reader) error {
	bodies := dec.Sections()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("%w: %v", errCorrupt, err)
	}
	for _, id := range []uint64{secHeader, secPreds, secStats, secEntities} {
		body, ok := bodies[id]
		if !ok {
			return fmt.Errorf("%w: missing section %d", errCorrupt, id)
		}
		switch id {
		case secHeader:
			kb.readHeader(body)
		case secPreds:
			kb.readPreds(body)
		case secStats:
			kb.readStats(body)
		case secEntities:
			kb.readEntities(body)
		}
		if err := body.Err(); err != nil {
			return fmt.Errorf("%w: section %d: %v", errCorrupt, id, err)
		}
	}
	if body, ok := bodies[secSources]; ok {
		kb.readSources(body)
		if err := body.Err(); err != nil {
			return fmt.Errorf("%w: sources: %v", errCorrupt, err)
		}
	}
	// Verify the header's section inventory when present (files from
	// before the inventory end after the triple count).
	header := bodies[secHeader]
	if header.More() {
		n := header.Int()
		if header.Err() == nil && n > 64 {
			header.Fail("absurd inventory size %d", n)
		}
		for i := 0; i < n && header.Err() == nil; i++ {
			id := header.Uvarint()
			if _, ok := bodies[id]; !ok && header.Err() == nil {
				header.Fail("inventoried section %d missing", id)
			}
		}
		if err := header.Err(); err != nil {
			return fmt.Errorf("%w: header inventory: %v", errCorrupt, err)
		}
	}
	return nil
}

func (kb *KB) readSources(dec *binio.Reader) {
	src := &Sources{}
	src.opts.MinLength = dec.Int()
	nStop := dec.Uvarint()
	if dec.Err() == nil && nStop > 1<<24 {
		dec.Fail("absurd stopword count %d", nStop)
		return
	}
	if nStop > 0 {
		src.opts.Stopwords = make(map[string]struct{}, nStop)
	}
	for i := uint64(0); i < nStop && dec.Err() == nil; i++ {
		src.opts.Stopwords[dec.Str()] = struct{}{}
	}
	nTerms := dec.Uvarint()
	if dec.Err() == nil && nTerms > 1<<31 {
		dec.Fail("absurd term count %d", nTerms)
		return
	}
	src.terms = make([]rdf.Term, 0, min64(nTerms, 1<<20))
	for i := uint64(0); i < nTerms && dec.Err() == nil; i++ {
		var t rdf.Term
		t.Kind = rdf.TermKind(dec.Uvarint())
		t.Value = dec.Str()
		t.Lang = dec.Str()
		t.Datatype = dec.Str()
		src.terms = append(src.terms, t)
	}
	nRefs := dec.Uvarint()
	if dec.Err() == nil && nRefs > 1<<33 {
		dec.Fail("absurd ref count %d", nRefs)
		return
	}
	src.refs = make([]tripleRef, 0, min64(nRefs, 1<<20))
	for i := uint64(0); i < nRefs && dec.Err() == nil; i++ {
		var r tripleRef
		r.s = int32(dec.Uvarint())
		r.p = int32(dec.Uvarint())
		r.o = int32(dec.Uvarint())
		src.refs = append(src.refs, r)
	}
	if dec.Err() != nil {
		return
	}
	if err := validateSources(src); err != nil {
		dec.Fail("%v", err)
		return
	}
	kb.src = src
}

func (kb *KB) readHeader(dec *binio.Reader) {
	kb.name = dec.Str()
	kb.numTriples = dec.Int()
}

func (kb *KB) readPreds(dec *binio.Reader) {
	n := dec.Uvarint()
	if dec.Err() == nil && n > 1<<24 {
		dec.Fail("absurd predicate count %d", n)
		return
	}
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		p := dec.Str()
		kb.predIndex[p] = int32(len(kb.preds))
		kb.preds = append(kb.preds, p)
		kb.vocabSet[namespaceOf(p)] = struct{}{}
	}
}

func (kb *KB) readStats(dec *binio.Reader) {
	readSide := func(m map[int32]*PredStat) {
		n := dec.Uvarint()
		for i := uint64(0); i < n && dec.Err() == nil; i++ {
			pid := int32(dec.Uvarint())
			st := &PredStat{Pred: pid}
			st.Entities = dec.Int()
			st.Distinct = dec.Int()
			st.Importance = dec.Float()
			if pid < 0 || int(pid) >= len(kb.preds) {
				dec.Fail("predicate id %d out of range", pid)
				return
			}
			m[pid] = st
		}
	}
	readSide(kb.attrStats)
	readSide(kb.relStats)
}

func (kb *KB) readEntities(dec *binio.Reader) {
	nEnt := dec.Uvarint()
	if dec.Err() == nil && nEnt > 1<<31 {
		dec.Fail("absurd entity count %d", nEnt)
		return
	}
	kb.entities = make([]Entity, 0, min64(nEnt, 1<<20))
	for i := uint64(0); i < nEnt && dec.Err() == nil; i++ {
		var e Entity
		e.URI = dec.Str()
		nAttrs := dec.Uvarint()
		for a := uint64(0); a < nAttrs && dec.Err() == nil; a++ {
			pred := int32(dec.Uvarint())
			val := dec.Str()
			if pred < 0 || int(pred) >= len(kb.preds) {
				dec.Fail("attribute predicate out of range")
				break
			}
			e.Attrs = append(e.Attrs, AttrValue{Pred: pred, Value: val})
		}
		nOut := dec.Uvarint()
		for o := uint64(0); o < nOut && dec.Err() == nil; o++ {
			pred := int32(dec.Uvarint())
			tgt := EntityID(dec.Uvarint())
			if pred < 0 || int(pred) >= len(kb.preds) || uint64(tgt) >= nEnt {
				dec.Fail("edge out of range")
				break
			}
			e.Out = append(e.Out, Edge{Pred: pred, Target: tgt})
		}
		nTypes := dec.Uvarint()
		for x := uint64(0); x < nTypes && dec.Err() == nil; x++ {
			typ := dec.Str()
			e.Types = append(e.Types, typ)
			kb.typeSet[typ] = struct{}{}
		}
		nTokens := dec.Uvarint()
		for x := uint64(0); x < nTokens && dec.Err() == nil; x++ {
			e.Tokens = append(e.Tokens, dec.Str())
		}
		kb.uriIndex[e.URI] = EntityID(len(kb.entities))
		kb.entities = append(kb.entities, e)
	}
}

// rebuildDerived reconstructs in-edges, token EF counts, and the vocab
// contribution of rdf:type from the decoded sections.
func (kb *KB) rebuildDerived() {
	if len(kb.typeSet) > 0 {
		kb.vocabSet[namespaceOf(RDFType)] = struct{}{}
	}
	for i := range kb.entities {
		e := &kb.entities[i]
		for _, edge := range e.Out {
			kb.entities[edge.Target].In = append(kb.entities[edge.Target].In, Edge{Pred: edge.Pred, Target: EntityID(i)})
		}
		kb.totalTokens += len(e.Tokens)
		for _, tok := range e.Tokens {
			kb.ef[tok]++
		}
	}
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
