package kb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary serialization of a built KB. Loading a large N-Triples dump
// re-tokenizes every literal and re-derives all statistics; the binary
// format stores the assembled structure instead, making reload
// I/O-bound. The format is versioned and self-describing:
//
//	magic "MKB1" | version | name | predicates | per-predicate stats |
//	entities (URI, attrs, out-edges, types, tokens) | triple count
//
// Derived structures (in-edges, EF, URI index, type/vocab sets) are
// rebuilt on load — they are redundant with the stored data.

var binaryMagic = [4]byte{'M', 'K', 'B', '1'}

const binaryVersion = 1

// errCorrupt wraps structural failures of the binary decoder.
var errCorrupt = errors.New("kb: corrupt binary KB")

// WriteBinary serializes the KB in the binary format.
func (kb *KB) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	enc := &binWriter{w: bw}
	enc.uvarint(binaryVersion)
	enc.str(kb.name)
	enc.uvarint(uint64(kb.numTriples))

	enc.uvarint(uint64(len(kb.preds)))
	for _, p := range kb.preds {
		enc.str(p)
	}
	writeStats := func(m map[int32]*PredStat) {
		enc.uvarint(uint64(len(m)))
		for pid := int32(0); pid < int32(len(kb.preds)); pid++ {
			st, ok := m[pid]
			if !ok {
				continue
			}
			enc.uvarint(uint64(pid))
			enc.uvarint(uint64(st.Entities))
			enc.uvarint(uint64(st.Distinct))
			enc.float(st.Importance)
		}
	}
	writeStats(kb.attrStats)
	writeStats(kb.relStats)

	enc.uvarint(uint64(len(kb.entities)))
	for i := range kb.entities {
		e := &kb.entities[i]
		enc.str(e.URI)
		enc.uvarint(uint64(len(e.Attrs)))
		for _, av := range e.Attrs {
			enc.uvarint(uint64(av.Pred))
			enc.str(av.Value)
		}
		enc.uvarint(uint64(len(e.Out)))
		for _, edge := range e.Out {
			enc.uvarint(uint64(edge.Pred))
			enc.uvarint(uint64(edge.Target))
		}
		enc.uvarint(uint64(len(e.Types)))
		for _, t := range e.Types {
			enc.str(t)
		}
		enc.uvarint(uint64(len(e.Tokens)))
		for _, t := range e.Tokens {
			enc.str(t)
		}
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// ReadBinary deserializes a KB written by WriteBinary.
func ReadBinary(r io.Reader) (*KB, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", errCorrupt, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errCorrupt, magic[:])
	}
	dec := &binReader{r: br}
	if v := dec.uvarint(); v != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errCorrupt, v)
	}
	kb := &KB{
		uriIndex:  make(map[string]EntityID),
		predIndex: make(map[string]int32),
		ef:        make(map[string]int32),
		attrStats: make(map[int32]*PredStat),
		relStats:  make(map[int32]*PredStat),
		typeSet:   make(map[string]struct{}),
		vocabSet:  make(map[string]struct{}),
	}
	kb.name = dec.str()
	kb.numTriples = int(dec.uvarint())

	nPreds := dec.uvarint()
	if dec.err == nil && nPreds > 1<<24 {
		return nil, fmt.Errorf("%w: absurd predicate count %d", errCorrupt, nPreds)
	}
	for i := uint64(0); i < nPreds && dec.err == nil; i++ {
		p := dec.str()
		kb.predIndex[p] = int32(len(kb.preds))
		kb.preds = append(kb.preds, p)
		kb.vocabSet[namespaceOf(p)] = struct{}{}
	}
	readStats := func(m map[int32]*PredStat) {
		n := dec.uvarint()
		for i := uint64(0); i < n && dec.err == nil; i++ {
			pid := int32(dec.uvarint())
			st := &PredStat{Pred: pid}
			st.Entities = int(dec.uvarint())
			st.Distinct = int(dec.uvarint())
			st.Importance = dec.float()
			if pid < 0 || int(pid) >= len(kb.preds) {
				dec.fail("predicate id out of range")
				return
			}
			m[pid] = st
		}
	}
	readStats(kb.attrStats)
	readStats(kb.relStats)

	nEnt := dec.uvarint()
	if dec.err == nil && nEnt > 1<<31 {
		return nil, fmt.Errorf("%w: absurd entity count %d", errCorrupt, nEnt)
	}
	kb.entities = make([]Entity, 0, min64(nEnt, 1<<20))
	for i := uint64(0); i < nEnt && dec.err == nil; i++ {
		var e Entity
		e.URI = dec.str()
		nAttrs := dec.uvarint()
		for a := uint64(0); a < nAttrs && dec.err == nil; a++ {
			pred := int32(dec.uvarint())
			val := dec.str()
			if int(pred) >= len(kb.preds) {
				dec.fail("attribute predicate out of range")
				break
			}
			e.Attrs = append(e.Attrs, AttrValue{Pred: pred, Value: val})
		}
		nOut := dec.uvarint()
		for o := uint64(0); o < nOut && dec.err == nil; o++ {
			pred := int32(dec.uvarint())
			tgt := EntityID(dec.uvarint())
			if int(pred) >= len(kb.preds) || uint64(tgt) >= nEnt {
				dec.fail("edge out of range")
				break
			}
			e.Out = append(e.Out, Edge{Pred: pred, Target: tgt})
		}
		nTypes := dec.uvarint()
		for x := uint64(0); x < nTypes && dec.err == nil; x++ {
			typ := dec.str()
			e.Types = append(e.Types, typ)
			kb.typeSet[typ] = struct{}{}
		}
		nTokens := dec.uvarint()
		for x := uint64(0); x < nTokens && dec.err == nil; x++ {
			e.Tokens = append(e.Tokens, dec.str())
		}
		kb.uriIndex[e.URI] = EntityID(len(kb.entities))
		kb.entities = append(kb.entities, e)
	}
	if dec.err != nil {
		return nil, dec.err
	}

	// Rebuild derived structures.
	if len(kb.typeSet) > 0 {
		kb.vocabSet[namespaceOf(RDFType)] = struct{}{}
	}
	for i := range kb.entities {
		e := &kb.entities[i]
		for _, edge := range e.Out {
			kb.entities[edge.Target].In = append(kb.entities[edge.Target].In, Edge{Pred: edge.Pred, Target: EntityID(i)})
		}
		kb.totalTokens += len(e.Tokens)
		for _, tok := range e.Tokens {
			kb.ef[tok]++
		}
	}
	return kb, nil
}

type binWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (b *binWriter) uvarint(v uint64) {
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) str(s string) {
	b.uvarint(uint64(len(s)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.WriteString(s)
}

func (b *binWriter) float(f float64) {
	b.uvarint(math.Float64bits(f))
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) fail(msg string) {
	if b.err == nil {
		b.err = fmt.Errorf("%w: %s", errCorrupt, msg)
	}
}

func (b *binReader) uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(b.r)
	if err != nil {
		b.err = fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return v
}

func (b *binReader) str() string {
	n := b.uvarint()
	if b.err != nil {
		return ""
	}
	if n > 1<<28 {
		b.fail("absurd string length")
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = fmt.Errorf("%w: %v", errCorrupt, err)
		return ""
	}
	return string(buf)
}

func (b *binReader) float() float64 {
	return math.Float64frombits(b.uvarint())
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
