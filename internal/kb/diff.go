package kb

// Diff describes how one KB epoch differs from its predecessor, in
// terms the incremental matching layers consume: an ID remap (entity
// order is sorted subject order, so inserts and deletes shift IDs),
// and conservative per-entity change sets. "Changed" flags compare the
// semantic content — predicate names and value strings, target URIs —
// so they are stable under dictionary renumbering; they may
// over-approximate (flagging an entity whose derived evidence happens
// to be unchanged costs a recompute, never correctness).
type Diff struct {
	// Remap maps old entity IDs to new ones (-1: deleted). It is
	// monotone on survivors: sorted-order mutations preserve relative
	// order.
	Remap []EntityID
	// Back maps new entity IDs to old ones (-1: inserted).
	Back []EntityID
	// AttrsChanged lists new-space entities whose attribute lists
	// (predicate name, value) differ — their token bags and name keys
	// may have changed.
	AttrsChanged []EntityID
	// EdgesChanged lists new-space entities whose relation edges (in
	// or out, as predicate name + target URI) differ — their best
	// neighbors may have changed.
	EdgesChanged []EntityID
	// Inserted lists new-space entities absent from the old KB;
	// Deleted lists old-space entities absent from the new one.
	Inserted []EntityID
	Deleted  []EntityID
	// Identity is true when old and new are the same object — nothing
	// to remap or recompute on this side.
	Identity bool

	shifted bool // any entity ID moved (precomputed)
}

// ComputeDiff diffs two KB epochs. O(entities + triples).
func ComputeDiff(old, new *KB) *Diff {
	if old == new {
		return &Diff{Identity: true}
	}
	d := &Diff{
		Remap: make([]EntityID, old.Len()),
		Back:  make([]EntityID, new.Len()),
	}
	for i := range d.Remap {
		d.Remap[i] = -1
	}
	for i := range new.entities {
		ne := &new.entities[i]
		oid, ok := old.uriIndex[ne.URI]
		if !ok {
			d.Back[i] = -1
			d.Inserted = append(d.Inserted, EntityID(i))
			continue
		}
		d.Back[i] = oid
		d.Remap[oid] = EntityID(i)
		oe := &old.entities[oid]
		if !sameAttrs(old, oe, new, ne) {
			d.AttrsChanged = append(d.AttrsChanged, EntityID(i))
		}
		if !sameEdges(old, oe.Out, new, ne.Out) || !sameEdges(old, oe.In, new, ne.In) {
			d.EdgesChanged = append(d.EdgesChanged, EntityID(i))
		}
	}
	for oid := range old.entities {
		if d.Remap[oid] < 0 {
			d.Deleted = append(d.Deleted, EntityID(oid))
		}
	}
	if len(d.Inserted) > 0 || len(d.Deleted) > 0 {
		d.shifted = true
	} else {
		for i, id := range d.Back {
			if id != EntityID(i) {
				d.shifted = true
				break
			}
		}
	}
	return d
}

// Unchanged reports a diff with no content changes at all (pure
// identity, or remap-free survivor set with nothing flagged).
func (d *Diff) Unchanged() bool {
	return d.Identity ||
		(len(d.AttrsChanged) == 0 && len(d.EdgesChanged) == 0 &&
			len(d.Inserted) == 0 && len(d.Deleted) == 0)
}

// RemapID translates an old-space ID (identity when the diff is one).
func (d *Diff) RemapID(id EntityID) EntityID {
	if d.Identity {
		return id
	}
	return d.Remap[id]
}

// BackID translates a new-space ID to old space (identity diffs pass
// through).
func (d *Diff) BackID(id EntityID) EntityID {
	if d.Identity {
		return id
	}
	return d.Back[id]
}

// Shifted reports whether any entity IDs moved (so downstream ID-bearing
// structures need rewriting rather than sharing).
func (d *Diff) Shifted() bool { return d.shifted }

// sameAttrs compares attribute lists by (predicate name, value),
// elementwise. Attribute order is deterministic given the underlying
// triples, so an order difference implies a content difference.
func sameAttrs(okb *KB, oe *Entity, nkb *KB, ne *Entity) bool {
	if len(oe.Attrs) != len(ne.Attrs) {
		return false
	}
	for i := range oe.Attrs {
		if oe.Attrs[i].Value != ne.Attrs[i].Value ||
			okb.preds[oe.Attrs[i].Pred] != nkb.preds[ne.Attrs[i].Pred] {
			return false
		}
	}
	return true
}

// sameEdges compares edge lists by (predicate name, target URI),
// elementwise.
func sameEdges(okb *KB, oe []Edge, nkb *KB, ne []Edge) bool {
	if len(oe) != len(ne) {
		return false
	}
	for i := range oe {
		if okb.preds[oe[i].Pred] != nkb.preds[ne[i].Pred] ||
			okb.entities[oe[i].Target].URI != nkb.entities[ne[i].Target].URI {
			return false
		}
	}
	return true
}
