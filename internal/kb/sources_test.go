package kb

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/rdf"
)

// randomTriples generates a messy but valid triple set over a closed
// subject universe: literals (plain, lang-tagged, typed), entity links,
// dangling IRIs, rdf:type triples, blank nodes, duplicates.
func randomTriples(rng *rand.Rand, nSubjects, nTriples int) []rdf.Triple {
	words := []string{"alpha", "beta", "gamma", "delta", "omega", "kappa", "sigma", "zeta", "Nine", "ten"}
	preds := []string{"http://v/name", "http://v/desc", "http://v/knows", "http://v/near", "http://v/alt"}
	subject := func(i int) rdf.Term {
		if i%7 == 3 {
			return rdf.NewBlank(fmt.Sprintf("b%d", i))
		}
		return rdf.NewIRI(fmt.Sprintf("http://e/s%d", i))
	}
	var out []rdf.Triple
	for len(out) < nTriples {
		s := subject(rng.Intn(nSubjects))
		p := rdf.NewIRI(preds[rng.Intn(len(preds))])
		var o rdf.Term
		switch rng.Intn(10) {
		case 0:
			o = subject(rng.Intn(nSubjects)) // link (maybe dangling after deletes)
		case 1:
			o = rdf.NewIRI("http://other/" + words[rng.Intn(len(words))])
		case 2:
			o = rdf.NewLangLiteral(words[rng.Intn(len(words))], "en")
		case 3:
			o = rdf.NewTypedLiteral(words[rng.Intn(len(words))], "http://www.w3.org/2001/XMLSchema#string")
		case 4:
			p = rdf.NewIRI(RDFType)
			o = rdf.NewIRI("http://t/T" + words[rng.Intn(3)])
		default:
			o = rdf.NewLiteral(words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))])
		}
		out = append(out, rdf.NewTriple(s, p, o))
		if rng.Intn(11) == 0 && len(out) > 1 {
			out = append(out, out[rng.Intn(len(out))]) // duplicate
		}
	}
	return out
}

// subjectKeyOfTriple mirrors the entity key a triple's subject yields.
func subjectKeyOfTriple(t rdf.Triple) string { return SubjectKey(t.Subject) }

// applyReference mutates a reference triple list the way Store.Apply
// specifies: drop all triples of the replaced/deleted subjects, append
// the delta's.
func applyReference(ts []rdf.Triple, delta []rdf.Triple, deletes []string) []rdf.Triple {
	drop := make(map[string]bool)
	for _, t := range delta {
		drop[subjectKeyOfTriple(t)] = true
	}
	for _, u := range deletes {
		drop[u] = true
	}
	var out []rdf.Triple
	for _, t := range ts {
		if !drop[subjectKeyOfTriple(t)] {
			out = append(out, t)
		}
	}
	return append(out, delta...)
}

// mustEqualKB compares two KBs structurally (everything except the
// retained sources, whose term tables legitimately differ) and
// byte-wise through the codec.
func mustEqualKB(t *testing.T, got, want *KB, label string) {
	t.Helper()
	g, w := got.WithoutSources(), want.WithoutSources()
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: assembled KB diverges from reference build", label)
	}
	var gb, wb bytes.Buffer
	if err := g.WriteBinary(&gb); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBinary(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Fatalf("%s: binary encodings differ", label)
	}
}

// TestStoreMutationEquivalence is the kb-layer half of the rebuild
// equivalence invariant: after any randomized sequence of upserts and
// deletes, Store.Assemble is bit-identical to a from-scratch build of
// the mutated triple set.
func TestStoreMutationEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ref := randomTriples(rng, 25, 160)
			base, err := FromTriples("base", ref)
			if err != nil {
				t.Fatal(err)
			}
			if !base.HasSources() {
				t.Fatal("builder default lost source retention")
			}
			store, err := NewStore(base)
			if err != nil {
				t.Fatal(err)
			}
			store.SetWorkers(1 + int(seed)%4)

			cur := base
			for round := 0; round < 12; round++ {
				var delta []rdf.Triple
				var deletes []string
				switch rng.Intn(4) {
				case 0: // delete 1-2 existing entities
					for i := 0; i < 1+rng.Intn(2); i++ {
						id := EntityID(rng.Intn(cur.Len()))
						deletes = append(deletes, cur.URI(id))
					}
				case 1: // upsert brand-new subjects
					delta = randomTriples(rng, 4, 10)
					for i := range delta {
						delta[i].Subject = rdf.NewIRI(fmt.Sprintf("http://e/new%d_%d", round, rng.Intn(3)))
					}
				default: // replace existing subjects with fresh descriptions
					delta = randomTriples(rng, 25, 8+rng.Intn(10))
				}

				var deltaKB *KB
				if len(delta) > 0 {
					deltaKB, err = FromTriples("delta", delta)
					if err != nil {
						t.Fatal(err)
					}
				}
				changed, revert, err := store.Apply(deltaKB, deletes)
				if err != nil {
					t.Fatal(err)
				}
				if !changed {
					continue
				}

				// Exercise revert: undo, check the previous state
				// reassembles, then redo.
				revert()
				mustEqualKB(t, store.Assemble(cur), cur, "revert")
				if _, _, err := store.Apply(deltaKB, deletes); err != nil {
					t.Fatal(err)
				}

				ref = applyReference(ref, delta, deletes)
				want, err := FromTriples("base", ref)
				if err != nil {
					t.Fatal(err)
				}
				got := store.Assemble(cur)
				mustEqualKB(t, got, want, fmt.Sprintf("round %d", round))
				if got.NumTriples() != want.NumTriples() {
					t.Fatalf("round %d: triple counts differ", round)
				}
				cur = got
			}

			// Compact reclaims orphaned terms without changing the
			// assembled KB.
			before := store.NumTerms()
			store.Compact()
			if store.NumTerms() > before {
				t.Fatalf("compact grew the term table (%d -> %d)", before, store.NumTerms())
			}
			mustEqualKB(t, store.Assemble(cur), cur, "post-compact")
		})
	}
}

// TestStoreDeleteAbsentIsNoop: deleting unknown subjects changes
// nothing and reports changed=false.
func TestStoreDeleteAbsentIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base, err := FromTriples("base", randomTriples(rng, 10, 50))
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(base)
	if err != nil {
		t.Fatal(err)
	}
	changed, _, err := store.Apply(nil, []string{"http://nowhere/x"})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("deleting an absent subject reported a change")
	}
}

// TestSourcesBinaryRoundTrip: the sources section survives the codec
// bit-for-bit, a loaded KB is mutable, and stripping sources omits the
// section.
func TestSourcesBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base, err := FromTriples("base", randomTriples(rng, 12, 80))
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := base.WriteBinary(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasSources() {
		t.Fatal("sources lost through the codec")
	}
	if !reflect.DeepEqual(back, base) {
		t.Fatal("KB diverges after reload")
	}
	var second bytes.Buffer
	if err := back.WriteBinary(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("not bit-identical after reload")
	}

	// A loaded KB backs a Store exactly like the original.
	store, err := NewStore(back)
	if err != nil {
		t.Fatal(err)
	}
	if store.NumTriples() != base.src.NumTriples() {
		t.Fatal("loaded store lost triples")
	}

	// Stripped KBs omit the section and refuse mutation.
	var lean bytes.Buffer
	if err := base.WithoutSources().WriteBinary(&lean); err != nil {
		t.Fatal(err)
	}
	if lean.Len() >= first.Len() {
		t.Fatal("stripping sources did not shrink the encoding")
	}
	leanBack, err := ReadBinary(bytes.NewReader(lean.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if leanBack.HasSources() {
		t.Fatal("stripped KB grew sources through the codec")
	}
	if _, err := NewStore(leanBack); err == nil {
		t.Fatal("store over a source-less KB accepted")
	}
}

// TestComputeDiff sanity-checks remaps and change flags on a targeted
// mutation.
func TestComputeDiff(t *testing.T) {
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(rdf.NewIRI(s), rdf.NewIRI(p), o))
	}
	add("http://e/a", "http://v/name", rdf.NewLiteral("alpha"))
	add("http://e/b", "http://v/name", rdf.NewLiteral("beta"))
	add("http://e/b", "http://v/knows", rdf.NewIRI("http://e/c"))
	add("http://e/c", "http://v/name", rdf.NewLiteral("gamma"))
	old, err := FromTriples("kb", ts)
	if err != nil {
		t.Fatal(err)
	}

	store, err := NewStore(old)
	if err != nil {
		t.Fatal(err)
	}
	// Delete c: b's link degrades to a dangling value (edges and attrs
	// change), a is untouched but its ID may shift.
	if _, _, err := store.Apply(nil, []string{"http://e/c"}); err != nil {
		t.Fatal(err)
	}
	cur := store.Assemble(old)
	d := ComputeDiff(old, cur)
	if len(d.Deleted) != 1 || old.URI(d.Deleted[0]) != "http://e/c" {
		t.Fatalf("deleted = %v", d.Deleted)
	}
	bNew, ok := cur.Lookup("http://e/b")
	if !ok {
		t.Fatal("b vanished")
	}
	wantChanged := []EntityID{bNew}
	if !reflect.DeepEqual(d.AttrsChanged, wantChanged) || !reflect.DeepEqual(d.EdgesChanged, wantChanged) {
		t.Fatalf("changed sets = attrs %v edges %v, want %v", d.AttrsChanged, d.EdgesChanged, wantChanged)
	}
	aOld, _ := old.Lookup("http://e/a")
	aNew, _ := cur.Lookup("http://e/a")
	if d.Remap[aOld] != aNew || d.BackID(aNew) != aOld {
		t.Fatal("remap broken for untouched entity")
	}
	if !d.Shifted() {
		t.Fatal("deletion did not report an ID shift")
	}
	if !ComputeDiff(cur, cur).Identity {
		t.Fatal("self-diff not identity")
	}
}

// TestStoreMutationDegenerateCases pins two adversarial corners of the
// incremental assembly against the generic build: rdf:type whose
// dictionary position is set by its first NON-declaration triple (not
// its first appearance), and dangling objects whose keys collide with
// each other and with literal values (blank node x vs IRI "_:x").
func TestStoreMutationDegenerateCases(t *testing.T) {
	iri := rdf.NewIRI
	t.Run("rdftype-dictionary-position", func(t *testing.T) {
		ts := []rdf.Triple{
			rdf.NewTriple(iri("http://e/s1"), iri(RDFType), rdf.NewLiteral("lit1")),
			rdf.NewTriple(iri("http://e/s2"), iri("http://v/pA"), rdf.NewLiteral("v")),
			rdf.NewTriple(iri("http://e/s3"), iri(RDFType), rdf.NewLiteral("lit")),
			rdf.NewTriple(iri("http://e/s4"), iri(RDFType), iri("http://t/X")),
		}
		base, err := FromTriples("kb", ts)
		if err != nil {
			t.Fatal(err)
		}
		store, err := NewStore(base)
		if err != nil {
			t.Fatal(err)
		}
		// Replace s1 with a pure declaration: rdf:type's first
		// interning triple moves after pA's, so the dictionary order
		// of a from-scratch build flips.
		delta, err := FromTriples("d", []rdf.Triple{
			rdf.NewTriple(iri("http://e/s1"), iri(RDFType), iri("http://t/C")),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := store.Apply(delta, nil); err != nil {
			t.Fatal(err)
		}
		want, err := FromTriples("kb", applyReference(ts, []rdf.Triple{
			rdf.NewTriple(iri("http://e/s1"), iri(RDFType), iri("http://t/C")),
		}, nil))
		if err != nil {
			t.Fatal(err)
		}
		mustEqualKB(t, store.Assemble(base), want, "rdftype dictionary position")
	})
	t.Run("dangling-key-collisions", func(t *testing.T) {
		p := iri("http://v/p")
		ts := []rdf.Triple{
			rdf.NewTriple(iri("http://e/s1"), p, rdf.NewBlank("x")),
			rdf.NewTriple(iri("http://e/s1"), iri("http://v/name"), rdf.NewLiteral("one")),
			rdf.NewTriple(iri("http://e/s2"), p, iri("_:x")),
			rdf.NewTriple(iri("http://e/s3"), p, rdf.NewLiteral("_:x")),
			rdf.NewTriple(iri("http://e/s3"), p, iri("http://d/dangling")),
			rdf.NewTriple(iri("http://e/s3"), p, rdf.NewLiteral("dangling")),
		}
		base, err := FromTriples("kb", ts)
		if err != nil {
			t.Fatal(err)
		}
		store, err := NewStore(base)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := FromTriples("d", []rdf.Triple{
			rdf.NewTriple(iri("http://e/s2"), p, iri("_:x")),
			rdf.NewTriple(iri("http://e/s2"), p, rdf.NewLiteral("extra value")),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := store.Apply(delta, nil); err != nil {
			t.Fatal(err)
		}
		want, err := FromTriples("kb", applyReference(ts, []rdf.Triple{
			rdf.NewTriple(iri("http://e/s2"), p, iri("_:x")),
			rdf.NewTriple(iri("http://e/s2"), p, rdf.NewLiteral("extra value")),
		}, nil))
		if err != nil {
			t.Fatal(err)
		}
		mustEqualKB(t, store.Assemble(base), want, "dangling key collisions")
	})
}
