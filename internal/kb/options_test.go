package kb

import (
	"reflect"
	"testing"

	"minoaner/internal/rdf"
	"minoaner/internal/tokenize"
)

func TestSetTokenizeOptions(t *testing.T) {
	b := NewBuilder("opts")
	b.SetTokenizeOptions(tokenize.Options{MinLength: 3})
	if err := b.Add(tr("http://e/x", "http://v/p", lit("ab cde fghi"))); err != nil {
		t.Fatal(err)
	}
	kb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, _ := kb.Lookup("http://e/x")
	got := kb.Tokens(x)
	want := []string{"cde", "fghi"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens = %v, want %v (MinLength=3)", got, want)
	}
}

func TestStopwordOptions(t *testing.T) {
	b := NewBuilder("stop")
	b.SetTokenizeOptions(tokenize.Options{Stopwords: map[string]struct{}{"the": {}}})
	if err := b.Add(tr("http://e/x", "http://v/p", lit("the matrix"))); err != nil {
		t.Fatal(err)
	}
	kb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, _ := kb.Lookup("http://e/x")
	if got := kb.Tokens(x); !reflect.DeepEqual(got, []string{"matrix"}) {
		t.Errorf("tokens = %v", got)
	}
	if kb.EF("the") != 0 {
		t.Error("stopword entered EF")
	}
}

// TestPredicateInBothRoles: a predicate used with literal and entity
// objects keeps independent attribute and relation statistics.
func TestPredicateInBothRoles(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://e/x", "http://v/ref", lit("plain text")),
		tr("http://e/x", "http://v/ref", iri("http://e/y")),
		tr("http://e/y", "http://v/name", lit("target")),
	}
	kb, err := FromTriples("both", triples)
	if err != nil {
		t.Fatal(err)
	}
	pid, ok := kb.PredID("http://v/ref")
	if !ok {
		t.Fatal("ref predicate missing")
	}
	if kb.AttrStat(pid) == nil {
		t.Error("attribute role missing")
	}
	if kb.RelStat(pid) == nil {
		t.Error("relation role missing")
	}
	if kb.NumAttributes() != 2 || kb.NumRelations() != 1 {
		t.Errorf("attrs=%d rels=%d", kb.NumAttributes(), kb.NumRelations())
	}
}

// TestSelfLoop: an entity relating to itself is handled without
// panicking and shows up in both edge directions.
func TestSelfLoop(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://e/x", "http://v/knows", iri("http://e/x")),
		tr("http://e/x", "http://v/name", lit("loop")),
	}
	kb, err := FromTriples("loop", triples)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := kb.Lookup("http://e/x")
	e := kb.Entity(x)
	if len(e.Out) != 1 || len(e.In) != 1 || e.Out[0].Target != x {
		t.Errorf("self loop edges: out=%v in=%v", e.Out, e.In)
	}
	if nbrs := kb.TopNeighbors(x, 3); len(nbrs) != 1 || nbrs[0] != x {
		t.Errorf("self neighbors = %v", nbrs)
	}
}

// TestUnicodeURIsAndValues: non-ASCII content survives the pipeline.
func TestUnicodeContent(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://e/αθήνα", "http://v/όνομα", lit("Ακρόπολη Αθηνών")),
	}
	kb, err := FromTriples("gr", triples)
	if err != nil {
		t.Fatal(err)
	}
	x, ok := kb.Lookup("http://e/αθήνα")
	if !ok {
		t.Fatal("unicode URI lost")
	}
	got := kb.Tokens(x)
	if !reflect.DeepEqual(got, []string{"αθηνών", "ακρόπολη"}) {
		t.Errorf("tokens = %v", got)
	}
}
