package kb

import (
	"math"
	"reflect"
	"testing"

	"minoaner/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }
func tr(s, p string, o rdf.Term) rdf.Triple {
	return rdf.NewTriple(iri(s), iri(p), o)
}

// buildTestKB creates a small restaurant-flavoured KB:
//
//	r1 --locatedIn--> a1, r2 --locatedIn--> a1
//	r1: name "Joe's Diner", phone "555-1234"
//	r2: name "Central Cafe"
//	a1: street "Main Street 5"
func buildTestKB(t *testing.T) *KB {
	t.Helper()
	triples := []rdf.Triple{
		tr("http://e/r1", "http://v/name", lit("Joe's Diner")),
		tr("http://e/r1", "http://v/phone", lit("555-1234")),
		tr("http://e/r1", "http://v/locatedIn", iri("http://e/a1")),
		tr("http://e/r2", "http://v/name", lit("Central Cafe")),
		tr("http://e/r2", "http://v/locatedIn", iri("http://e/a1")),
		tr("http://e/a1", "http://v/street", lit("Main Street 5")),
		tr("http://e/r1", RDFType, iri("http://v/Restaurant")),
		tr("http://e/r2", RDFType, iri("http://v/Restaurant")),
		tr("http://e/a1", RDFType, iri("http://v/Address")),
	}
	kb, err := FromTriples("test", triples)
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestBuildBasics(t *testing.T) {
	kb := buildTestKB(t)
	if kb.Len() != 3 {
		t.Fatalf("entities = %d, want 3", kb.Len())
	}
	if kb.NumTriples() != 9 {
		t.Errorf("triples = %d, want 9", kb.NumTriples())
	}
	if kb.NumAttributes() != 3 { // name, phone, street
		t.Errorf("attributes = %d, want 3", kb.NumAttributes())
	}
	if kb.NumRelations() != 1 { // locatedIn
		t.Errorf("relations = %d, want 1", kb.NumRelations())
	}
	if kb.NumTypes() != 2 {
		t.Errorf("types = %d, want 2", kb.NumTypes())
	}
	if kb.NumVocabularies() != 2 { // http://v/ and the rdf namespace
		t.Errorf("vocabularies = %d, want 2", kb.NumVocabularies())
	}
}

func TestLookupAndURI(t *testing.T) {
	kb := buildTestKB(t)
	id, ok := kb.Lookup("http://e/r1")
	if !ok {
		t.Fatal("r1 not found")
	}
	if kb.URI(id) != "http://e/r1" {
		t.Errorf("URI mismatch: %s", kb.URI(id))
	}
	if _, ok := kb.Lookup("http://e/nope"); ok {
		t.Error("nonexistent URI found")
	}
}

func TestTokensAndEF(t *testing.T) {
	kb := buildTestKB(t)
	r1, _ := kb.Lookup("http://e/r1")
	toks := kb.Tokens(r1)
	want := []string{"1234", "555", "diner", "joe", "s"}
	if !reflect.DeepEqual(toks, want) {
		t.Errorf("tokens = %v, want %v", toks, want)
	}
	if kb.EF("diner") != 1 {
		t.Errorf("EF(diner) = %d, want 1", kb.EF("diner"))
	}
	if kb.EF("nonexistent") != 0 {
		t.Errorf("EF(nonexistent) = %d, want 0", kb.EF("nonexistent"))
	}
	// avg tokens: r1 has 5, r2 has 2 (central, cafe), a1 has 3 (main, street, 5)
	wantAvg := float64(5+2+3) / 3
	if got := kb.AvgTokens(); math.Abs(got-wantAvg) > 1e-9 {
		t.Errorf("AvgTokens = %f, want %f", got, wantAvg)
	}
}

func TestEdges(t *testing.T) {
	kb := buildTestKB(t)
	r1, _ := kb.Lookup("http://e/r1")
	a1, _ := kb.Lookup("http://e/a1")
	e := kb.Entity(r1)
	if len(e.Out) != 1 || e.Out[0].Target != a1 {
		t.Fatalf("r1 out edges = %+v", e.Out)
	}
	if kb.Pred(e.Out[0].Pred) != "http://v/locatedIn" {
		t.Errorf("relation pred = %s", kb.Pred(e.Out[0].Pred))
	}
	addr := kb.Entity(a1)
	if len(addr.In) != 2 {
		t.Fatalf("a1 in edges = %d, want 2", len(addr.In))
	}
	if len(addr.Out) != 0 {
		t.Errorf("a1 out edges = %d, want 0", len(addr.Out))
	}
}

func TestTypesTracked(t *testing.T) {
	kb := buildTestKB(t)
	r1, _ := kb.Lookup("http://e/r1")
	if got := kb.Entity(r1).Types; len(got) != 1 || got[0] != "http://v/Restaurant" {
		t.Errorf("types = %v", got)
	}
	// rdf:type must not appear as attribute or relation.
	if _, ok := kb.PredID(RDFType); ok {
		t.Error("rdf:type interned as a predicate")
	}
	// Type IRIs must not contribute tokens.
	for _, tok := range kb.Tokens(r1) {
		if tok == "restaurant" {
			t.Error("type IRI leaked into tokens")
		}
	}
}

func TestImportance(t *testing.T) {
	kb := buildTestKB(t)
	// name: support 2/3, discriminability 2/2=1 → hm(2/3,1)=0.8
	pid, ok := kb.PredID("http://v/name")
	if !ok {
		t.Fatal("name predicate missing")
	}
	st := kb.AttrStat(pid)
	if st == nil {
		t.Fatal("no stat for name")
	}
	if st.Entities != 2 || st.Distinct != 2 {
		t.Fatalf("name stat = %+v", st)
	}
	if math.Abs(st.Importance-0.8) > 1e-9 {
		t.Errorf("name importance = %f, want 0.8", st.Importance)
	}
	// locatedIn relation: support 2/3, discriminability 1/2 → hm = 2*(2/3)*(1/2)/(2/3+1/2) = (2/3)/(7/6)=4/7
	lid, _ := kb.PredID("http://v/locatedIn")
	rst := kb.RelStat(lid)
	if rst == nil {
		t.Fatal("no stat for locatedIn")
	}
	if want := 4.0 / 7.0; math.Abs(rst.Importance-want) > 1e-9 {
		t.Errorf("locatedIn importance = %f, want %f", rst.Importance, want)
	}
}

func TestAttrStatsSorted(t *testing.T) {
	kb := buildTestKB(t)
	stats := kb.AttrStats()
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Importance < stats[i].Importance {
			t.Errorf("stats not sorted: %f < %f at %d", stats[i-1].Importance, stats[i].Importance, i)
		}
	}
}

func TestTopNameAttributes(t *testing.T) {
	kb := buildTestKB(t)
	top := kb.TopNameAttributes(2)
	if len(top) != 2 {
		t.Fatalf("got %d name attrs, want 2", len(top))
	}
	// k larger than available attributes
	all := kb.TopNameAttributes(100)
	if len(all) != 3 {
		t.Errorf("got %d, want all 3", len(all))
	}
	if got := kb.TopNameAttributes(0); len(got) != 0 {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestNames(t *testing.T) {
	kb := buildTestKB(t)
	pid, _ := kb.PredID("http://v/name")
	r1, _ := kb.Lookup("http://e/r1")
	names := kb.Names(r1, []int32{pid})
	if !reflect.DeepEqual(names, []string{"joe s diner"}) {
		t.Errorf("names = %v", names)
	}
	a1, _ := kb.Lookup("http://e/a1")
	if got := kb.Names(a1, []int32{pid}); got != nil {
		t.Errorf("a1 names = %v, want nil", got)
	}
	if got := kb.Names(r1, nil); got != nil {
		t.Errorf("nil attrs → %v, want nil", got)
	}
}

func TestNamesDeduplicate(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://e/x", "http://v/name", lit("Same Name")),
		tr("http://e/x", "http://v/name", lit("same  name!")),
	}
	kb, err := FromTriples("dup", triples)
	if err != nil {
		t.Fatal(err)
	}
	pid, _ := kb.PredID("http://v/name")
	x, _ := kb.Lookup("http://e/x")
	names := kb.Names(x, []int32{pid})
	if len(names) != 1 {
		t.Errorf("names = %v, want 1 deduplicated", names)
	}
}

func TestTopNeighbors(t *testing.T) {
	kb := buildTestKB(t)
	r1, _ := kb.Lookup("http://e/r1")
	a1, _ := kb.Lookup("http://e/a1")
	nbrs := kb.TopNeighbors(r1, 3)
	if !reflect.DeepEqual(nbrs, []EntityID{a1}) {
		t.Errorf("neighbors of r1 = %v, want [%d]", nbrs, a1)
	}
	// a1 has two in-neighbors via locatedIn.
	nbrs = kb.TopNeighbors(a1, 1)
	if len(nbrs) != 2 {
		t.Errorf("neighbors of a1 = %v, want 2 entries", nbrs)
	}
	if got := kb.TopNeighbors(r1, 0); got != nil {
		t.Errorf("n=0 → %v", got)
	}
}

func TestTopNeighborsRelationCutoff(t *testing.T) {
	// x has edges via two relations; rel "a" is more important
	// (higher discriminability). With n=1 only rel-a neighbors remain.
	triples := []rdf.Triple{
		tr("http://e/x", "http://v/a", iri("http://e/y1")),
		tr("http://e/x2", "http://v/a", iri("http://e/y2")),
		tr("http://e/x", "http://v/b", iri("http://e/y3")),
		tr("http://e/x2", "http://v/b", iri("http://e/y3")),
		tr("http://e/y1", "http://v/t", lit("v1")),
		tr("http://e/y2", "http://v/t", lit("v2")),
		tr("http://e/y3", "http://v/t", lit("v3")),
	}
	kb, err := FromTriples("rels", triples)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := kb.Lookup("http://e/x")
	y1, _ := kb.Lookup("http://e/y1")
	nbrs := kb.TopNeighbors(x, 1)
	if !reflect.DeepEqual(nbrs, []EntityID{y1}) {
		t.Errorf("top-1-relation neighbors = %v, want [%d] (via rel a)", nbrs, y1)
	}
	nbrs = kb.TopNeighbors(x, 2)
	if len(nbrs) != 2 {
		t.Errorf("top-2-relation neighbors = %v, want 2", nbrs)
	}
}

func TestTopRelations(t *testing.T) {
	kb := buildTestKB(t)
	rels := kb.TopRelations(5)
	if len(rels) != 1 {
		t.Fatalf("relations = %v", rels)
	}
	if kb.Pred(rels[0]) != "http://v/locatedIn" {
		t.Errorf("top relation = %s", kb.Pred(rels[0]))
	}
}

func TestDanglingURIBecomesAttribute(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://e/x", "http://v/homepage", iri("http://www.example.com/JoesDiner")),
	}
	kb, err := FromTriples("dangling", triples)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 1 {
		t.Fatalf("entities = %d, want 1 (object URI is not a subject)", kb.Len())
	}
	if kb.NumRelations() != 0 {
		t.Errorf("relations = %d, want 0", kb.NumRelations())
	}
	if kb.NumAttributes() != 1 {
		t.Errorf("attributes = %d, want 1", kb.NumAttributes())
	}
	x, _ := kb.Lookup("http://e/x")
	if toks := kb.Tokens(x); !reflect.DeepEqual(toks, []string{"joesdiner"}) {
		t.Errorf("tokens = %v, want [joesdiner]", toks)
	}
}

func TestDuplicateTriplesIgnored(t *testing.T) {
	b := NewBuilder("dup")
	for i := 0; i < 3; i++ {
		if err := b.Add(tr("http://e/x", "http://v/p", lit("v"))); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("builder len = %d, want 1", b.Len())
	}
	kb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if kb.NumTriples() != 1 {
		t.Errorf("triples = %d, want 1", kb.NumTriples())
	}
}

func TestBuilderRejectsInvalid(t *testing.T) {
	b := NewBuilder("bad")
	err := b.Add(rdf.NewTriple(lit("s"), iri("p"), lit("o")))
	if err == nil {
		t.Fatal("invalid triple accepted")
	}
}

func TestEmptyKB(t *testing.T) {
	kb, err := FromTriples("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 0 || kb.AvgTokens() != 0 || kb.NumAttributes() != 0 {
		t.Errorf("empty KB stats wrong: %v", kb)
	}
}

func TestBlankNodeSubject(t *testing.T) {
	triples := []rdf.Triple{
		rdf.NewTriple(rdf.NewBlank("b0"), iri("http://v/name"), lit("Anon")),
		tr("http://e/x", "http://v/knows", rdf.NewBlank("b0")),
	}
	kb, err := FromTriples("blank", triples)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 2 {
		t.Fatalf("entities = %d, want 2", kb.Len())
	}
	if kb.NumRelations() != 1 {
		t.Errorf("relations = %d, want 1 (edge to blank entity)", kb.NumRelations())
	}
}

func TestDeterministicBuild(t *testing.T) {
	// Build twice from differently ordered inputs; the KBs must agree on
	// entity order and statistics.
	triples := []rdf.Triple{
		tr("http://e/b", "http://v/name", lit("Bravo")),
		tr("http://e/a", "http://v/name", lit("Alpha")),
		tr("http://e/c", "http://v/ref", iri("http://e/a")),
	}
	kb1, err := FromTriples("d", triples)
	if err != nil {
		t.Fatal(err)
	}
	rev := []rdf.Triple{triples[2], triples[1], triples[0]}
	kb2, err := FromTriples("d", rev)
	if err != nil {
		t.Fatal(err)
	}
	if kb1.Len() != kb2.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < kb1.Len(); i++ {
		if kb1.URI(EntityID(i)) != kb2.URI(EntityID(i)) {
			t.Errorf("entity %d: %s vs %s", i, kb1.URI(EntityID(i)), kb2.URI(EntityID(i)))
		}
	}
}

func TestStringSummary(t *testing.T) {
	kb := buildTestKB(t)
	s := kb.String()
	if s == "" {
		t.Error("empty summary")
	}
}
