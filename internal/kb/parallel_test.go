package kb_test

// Equivalence guard for the parallel, interned KB builder: at every
// worker count, and through the streaming AddFromReader entry point,
// Build must produce a KB bit-identical to the sequential path on all
// four synthetic benchmarks. Identity is asserted over the binary
// serialization, which covers entities, attribute values, edges,
// types, token bags, predicate dictionaries, and statistics.

import (
	"bytes"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

const equivScale = 0.05

func benchmarkTripleSets(t *testing.T) map[string][]rdf.Triple {
	t.Helper()
	sets := make(map[string][]rdf.Triple)
	for _, g := range datagen.Generators() {
		ds, err := g.Build(datagen.Options{Seed: 42, Scale: equivScale})
		if err != nil {
			t.Fatal(err)
		}
		sets[ds.Name+"/KB1"] = ds.Triples1
		sets[ds.Name+"/KB2"] = ds.Triples2
	}
	return sets
}

func buildBinary(t *testing.T, name string, triples []rdf.Triple, workers int) []byte {
	t.Helper()
	b := kb.NewBuilder(name)
	b.SetWorkers(workers)
	if err := b.AddAll(triples); err != nil {
		t.Fatal(err)
	}
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelBuildBitIdentical(t *testing.T) {
	for name, triples := range benchmarkTripleSets(t) {
		want := buildBinary(t, name, triples, 1)
		for _, workers := range []int{2, 4, 8} {
			got := buildBinary(t, name, triples, workers)
			if !bytes.Equal(got, want) {
				t.Errorf("%s: workers=%d KB differs from sequential build", name, workers)
			}
		}
	}
}

func TestAddFromReaderMatchesAddAll(t *testing.T) {
	for name, triples := range benchmarkTripleSets(t) {
		want := buildBinary(t, name, triples, 4)

		var nt bytes.Buffer
		if err := rdf.WriteAll(&nt, triples); err != nil {
			t.Fatal(err)
		}
		b := kb.NewBuilder(name)
		b.SetWorkers(4)
		if err := b.AddFromReader(&nt); err != nil {
			t.Fatal(err)
		}
		built, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := built.WriteBinary(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s: streamed KB differs from AddAll KB", name)
		}
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	triples := []rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://e/a"), rdf.NewIRI("http://v/p"), rdf.NewLiteral("one")),
		rdf.NewTriple(rdf.NewIRI("http://e/b"), rdf.NewIRI("http://v/p"), rdf.NewLiteral("two")),
	}
	b := kb.NewBuilder("reuse")
	if err := b.AddAll(triples); err != nil {
		t.Fatal(err)
	}
	k1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := k1.WriteBinary(&b1); err != nil {
		t.Fatal(err)
	}
	if err := k2.WriteBinary(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("second Build differs from first")
	}
}
