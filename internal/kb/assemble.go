package kb

import (
	"minoaner/internal/parallel"
	"minoaner/internal/rdf"
)

// Store-backed assembly: the hot path of epoch mutation. Two
// implementations produce exactly what assembleKB produces — entity
// for entity, stat for stat:
//
//   - assembleFast reruns the generic passes but replaces the
//     per-triple string-keyed maps (the dominant cost) with
//     generation-stamped term-ID arrays, and derives the predicate
//     statistics from the (predicate, object, subject)-sorted ref list
//     in one map-free merge walk: predicate groups are contiguous,
//     equal objects are adjacent (distinct-object counts become
//     run-length counts), and distinct-subject counts use generation
//     stamps instead of per-predicate sets.
//
//   - assembleIncremental goes further when the mutation replaced
//     descriptions without touching the entity roster or the
//     predicate dictionary: every unchanged Entity is carried over by
//     struct copy (slices shared), only the mutated descriptions are
//     rebuilt, and the in-edge lists of their link targets are
//     spliced. It verifies its own preconditions (subject sequence,
//     dictionary order, rdf:type presence) with one O(T) array scan
//     and falls back to assembleFast when any fails.
//
// One subtlety in the statistics walk: literal values and dangling-URI
// keys share the distinct-key space of attribute values (a literal can
// spell out exactly the URI of a dangling object), and lang/datatype
// variants of one literal are distinct terms with one key. Variants
// are adjacent (terms sort by value before lang/datatype); the
// literal/dangling collision is handled by collecting the group's
// literal keys into a scratch set only when the predicate actually has
// dangling objects.

// assembleScratch is the store's reusable generation-stamped working
// set: arrays indexed by term ID whose entries are valid only when
// their generation matches the current pass (so nothing is ever
// cleared).
type assembleScratch struct {
	subjGen, predGen []int32
	subjVal, predVal []int32
	attrGen, relGen  []int32

	pass  int32 // per-assembly generation (subj/pred arrays)
	stamp int32 // per-predicate-group generation (attr/rel stamps)
}

func (sc *assembleScratch) grow(n int) {
	if len(sc.subjGen) >= n {
		return
	}
	grown := make([]int32, n*6)
	copy(grown[0:], sc.subjGen)
	copy(grown[n:], sc.subjVal)
	copy(grown[2*n:], sc.predGen)
	copy(grown[3*n:], sc.predVal)
	copy(grown[4*n:], sc.attrGen)
	copy(grown[5*n:], sc.relGen)
	sc.subjGen, sc.subjVal = grown[0:n:n], grown[n:2*n:2*n]
	sc.predGen, sc.predVal = grown[2*n:3*n:3*n], grown[3*n:4*n:4*n]
	sc.attrGen, sc.relGen = grown[4*n:5*n:5*n], grown[5*n:6*n:6*n]
}

func (sc *assembleScratch) begin(nTerms int) {
	sc.grow(nTerms)
	sc.pass++
}

func (sc *assembleScratch) setSubj(t int32, id EntityID) {
	sc.subjGen[t] = sc.pass
	sc.subjVal[t] = int32(id)
}

func (sc *assembleScratch) subj(t int32) EntityID {
	if sc.subjGen[t] != sc.pass {
		return -1
	}
	return EntityID(sc.subjVal[t])
}

func (sc *assembleScratch) setPred(t, pid int32) {
	sc.predGen[t] = sc.pass
	sc.predVal[t] = pid
}

func (sc *assembleScratch) pred(t int32) (int32, bool) {
	if sc.predGen[t] != sc.pass {
		return -1, false
	}
	return sc.predVal[t], true
}

// assembleFast builds the KB of the store's current triple set with
// the generic passes over term-ID arrays.
func (s *Store) assembleFast(prev *KB) *KB {
	terms, refs := s.terms, s.refs
	sc := &s.scratch
	sc.begin(len(terms))
	kb := &KB{
		name:       s.name,
		uriIndex:   make(map[string]EntityID, prevLenHint(prev)),
		predIndex:  make(map[string]int32),
		ef:         make(map[string]int32),
		attrStats:  make(map[int32]*PredStat),
		relStats:   make(map[int32]*PredStat),
		typeSet:    make(map[string]struct{}),
		vocabSet:   make(map[string]struct{}),
		numTriples: len(refs),
	}

	// Pass 1: entities in sorted-subject order, plus the term->entity
	// mapping that replaces every later uriIndex lookup. Each
	// subject's refs are contiguous, so keys derive once per subject,
	// and the per-subject triple count pre-sizes the description.
	//
	// The common mutation leaves the subject sequence untouched; the
	// optimistic walk then shares prev's uriIndex map outright and
	// falls back to building a fresh one on the first divergence.
	tripleCount := make([]int32, 0, prevLenHint(prev))
	sharePrevIndex := prev != nil
	for i := 0; i < len(refs); {
		t := refs[i].s
		j := i + 1
		for j < len(refs) && refs[j].s == t {
			j++
		}
		key := SubjectKey(terms[t])
		id := EntityID(len(kb.entities))
		dup := false
		if sharePrevIndex {
			if pid, ok := prev.uriIndex[key]; !ok || pid != id {
				// Divergence (or a duplicate-key subject term): build
				// the index the generic way from here on.
				sharePrevIndex = false
				kb.uriIndex = make(map[string]EntityID, prevLenHint(prev))
				for e := range kb.entities {
					kb.uriIndex[kb.entities[e].URI] = EntityID(e)
				}
			}
		}
		if !sharePrevIndex {
			if pid, ok := kb.uriIndex[key]; ok {
				// Distinct subject terms with one key (an IRI spelled
				// "_:x" next to the blank node x): both map to the
				// entity.
				sc.setSubj(t, pid)
				tripleCount[pid] += int32(j - i)
				dup = true
			} else {
				kb.uriIndex[key] = id
			}
		}
		if !dup {
			kb.entities = append(kb.entities, Entity{URI: key})
			tripleCount = append(tripleCount, int32(j-i))
			sc.setSubj(t, id)
		}
		i = j
	}
	if sharePrevIndex {
		if len(kb.entities) != prev.Len() {
			kb.uriIndex = make(map[string]EntityID, len(kb.entities))
			for e := range kb.entities {
				kb.uriIndex[kb.entities[e].URI] = EntityID(e)
			}
			sharePrevIndex = false
		} else {
			kb.uriIndex = prev.uriIndex
		}
	}

	// addAttrFast appends with a first-use allocation sized by the
	// entity's triple count (an upper bound): no repeated growth, and
	// attr-less entities keep nil slices exactly like the generic
	// passes.
	addAttrFast := func(subj EntityID, av AttrValue) {
		e := &kb.entities[subj]
		if e.Attrs == nil {
			e.Attrs = make([]AttrValue, 0, tripleCount[subj])
		}
		e.Attrs = append(e.Attrs, av)
	}

	// Pass 2: fill descriptions. Predicate IDs intern once per term;
	// object classification is one array read.
	rdfTypeTerm := int32(-1)
	if id, ok := s.termIndex[rdf.NewIRI(RDFType)]; ok {
		rdfTypeTerm = id
	}
	var seenPreds []int32
	for _, ref := range refs {
		if _, ok := sc.pred(ref.p); !ok {
			sc.setPred(ref.p, -1)
			seenPreds = append(seenPreds, ref.p)
		}
		subj := sc.subj(ref.s)
		obj := &terms[ref.o]
		if ref.p == rdfTypeTerm && obj.Kind == rdf.IRI {
			kb.entities[subj].Types = append(kb.entities[subj].Types, obj.Value)
			kb.typeSet[obj.Value] = struct{}{}
			continue
		}
		pid, _ := sc.pred(ref.p)
		if pid < 0 {
			pid = kb.internPred(terms[ref.p].Value)
			sc.setPred(ref.p, pid)
		}
		switch {
		case obj.Kind == rdf.Literal:
			if obj.Value != "" {
				addAttrFast(subj, AttrValue{Pred: pid, Value: obj.Value})
			}
		case sc.subj(ref.o) >= 0:
			tgt := sc.subj(ref.o)
			kb.entities[subj].Out = append(kb.entities[subj].Out, Edge{Pred: pid, Target: tgt})
			kb.entities[tgt].In = append(kb.entities[tgt].In, Edge{Pred: pid, Target: subj})
		default:
			if v := localName(obj.Value); v != "" {
				addAttrFast(subj, AttrValue{Pred: pid, Value: v})
			}
		}
	}
	for _, t := range seenPreds {
		kb.vocabSet[namespaceOf(terms[t].Value)] = struct{}{}
	}

	s.walkStats(kb, func(t int32) int32 {
		if pid, ok := sc.pred(t); ok {
			return pid
		}
		return -1
	}, rdfTypeTerm)

	n := float64(len(kb.entities))
	for _, st := range kb.attrStats {
		st.Importance = importance(st, n)
	}
	for _, st := range kb.relStats {
		st.Importance = importance(st, n)
	}

	finishTokens(kb, s.opts, parallel.Workers(s.workers), prev)
	return kb
}

func prevLenHint(prev *KB) int {
	if prev == nil {
		return 64
	}
	return prev.Len()
}

// walkStats derives every predicate's Distinct and Entities counts
// from the (p,o,s)-sorted refs in one pass. pidOf resolves a predicate
// term to its dictionary ID (-1: never interned — an rdf:type group
// with only IRI objects). The subject→entity scratch of the current
// pass must be populated.
func (s *Store) walkStats(kb *KB, pidOf func(int32) int32, rdfTypeTerm int32) {
	terms, refs := s.terms, s.refsPOS
	sc := &s.scratch

	for lo := 0; lo < len(refs); {
		p := refs[lo].p
		hi := lo + 1
		for hi < len(refs) && refs[hi].p == p {
			hi++
		}
		group := refs[lo:hi]
		lo = hi
		pid := pidOf(p)
		if pid < 0 {
			continue
		}
		sc.stamp++
		gen := sc.stamp

		var attrSt, relSt *PredStat
		attrDistinct := func() {
			if attrSt == nil {
				attrSt = kb.statFor(kb.attrStats, pid)
			}
			attrSt.Distinct++
		}
		attrSubject := func(t int32) {
			if sc.attrGen[t] != gen {
				sc.attrGen[t] = gen
				if attrSt == nil {
					attrSt = kb.statFor(kb.attrStats, pid)
				}
				attrSt.Entities++
			}
		}

		// Literal keys first (they sort after IRIs, but dangling-key
		// dedup needs them): distinct lexical values, variants of one
		// value adjacent.
		litLo, litHi := len(group), len(group)
		hasDangling := false
		for i, r := range group {
			switch terms[r.o].Kind {
			case rdf.Literal:
				if litLo == len(group) {
					litLo = i
				}
				litHi = i + 1
			default:
				if sc.subj(r.o) < 0 && !(r.p == rdfTypeTerm && terms[r.o].Kind == rdf.IRI) {
					hasDangling = true
				}
			}
		}
		// seenKeys holds every attribute key counted so far in this
		// group — literal values and dangling keys share one key space
		// (a blank node _:x and an IRI spelled "_:x" collide too), so
		// dangling runs must dedup against both.
		var seenKeys map[string]struct{}
		if hasDangling {
			seenKeys = make(map[string]struct{})
		}
		prevVal := ""
		haveVal := false
		for _, r := range group[litLo:litHi] {
			v := terms[r.o].Value
			if v == "" {
				continue // empty literals carry no evidence
			}
			if !haveVal || v != prevVal {
				haveVal = true
				prevVal = v
				attrDistinct()
				if seenKeys != nil {
					seenKeys[v] = struct{}{}
				}
			}
			attrSubject(r.s)
		}

		// Entity and dangling objects: one run per object term.
		runStats := func(run []tripleRef) {
			o := run[0].o
			t := &terms[o]
			if t.Kind == rdf.Literal {
				return
			}
			if p == rdfTypeTerm && t.Kind == rdf.IRI {
				return // type declarations carry no predicate statistics
			}
			if sc.subj(o) >= 0 {
				if relSt == nil {
					relSt = kb.statFor(kb.relStats, pid)
				}
				relSt.Distinct++
				for _, r := range run {
					if sc.relGen[r.s] != gen {
						sc.relGen[r.s] = gen
						relSt.Entities++
					}
				}
				return
			}
			// Dangling: the distinct key is the subject key the object
			// would have; it may collide with a literal value.
			if localName(t.Value) == "" {
				return // no local name, no evidence
			}
			key := SubjectKey(*t)
			if _, dup := seenKeys[key]; !dup {
				attrDistinct()
				seenKeys[key] = struct{}{}
			}
			for _, r := range run {
				attrSubject(r.s)
			}
		}
		for i := 0; i < len(group); {
			j := i + 1
			for j < len(group) && group[j].o == group[i].o {
				j++
			}
			runStats(group[i:j])
			i = j
		}
	}
}

// assembleIncremental splices the previous KB when the mutation only
// replaced existing descriptions: the entity roster, the predicate
// dictionary (content and order), and the rdf:type/vocabulary presence
// must all be unchanged, which one O(T) verification scan confirms.
// Returns nil when any precondition fails (callers fall back to
// assembleFast).
func (s *Store) assembleIncremental(prev *KB) *KB {
	if prev == nil || prev != s.lastAssembled || s.predsChanged {
		return nil
	}
	terms, refs := s.terms, s.refs
	sc := &s.scratch
	sc.begin(len(terms))

	// Changed descriptions: every touched key must still name an
	// existing entity (an insert or delete changes the roster and ID
	// assignment — generic path).
	changed := make([]EntityID, 0, len(s.touched))
	for key := range s.touched {
		id, ok := prev.uriIndex[key]
		if !ok {
			return nil
		}
		changed = append(changed, id)
	}
	sortIDs(changed)

	rdfTypeTerm := int32(-1)
	if id, ok := s.termIndex[rdf.NewIRI(RDFType)]; ok {
		rdfTypeTerm = id
	}

	// Verification scan: subject runs must match prev's entity count
	// one-for-one (the roster check above makes a same-count
	// permutation impossible), the predicate first-appearance sequence
	// must equal prev's dictionary, and rdf:type-as-declaration
	// presence must be stable (it feeds the shared vocabulary set).
	// The scan also populates the subject scratch and records the
	// changed entities' ref ranges.
	nextEnt := 0
	var seenPreds []int32
	sawTypeDecl := false
	type span struct{ lo, hi int }
	spans := make(map[EntityID]span, len(changed))
	for i := 0; i < len(refs); {
		t := refs[i].s
		j := i + 1
		for j < len(refs) && refs[j].s == t {
			j++
		}
		if nextEnt >= prev.Len() {
			return nil
		}
		id := EntityID(nextEnt)
		sc.setSubj(t, id)
		nextEnt++
		if s.touched[prev.entities[id].URI] {
			spans[id] = span{lo: i, hi: j}
		}
		for k := i; k < j; k++ {
			p := refs[k].p
			if p == rdfTypeTerm && terms[refs[k].o].Kind == rdf.IRI {
				// A declaration never reaches internPred: it must not
				// establish rdf:type's dictionary position.
				sawTypeDecl = true
				continue
			}
			if _, ok := sc.pred(p); !ok {
				sc.setPred(p, -2)
				seenPreds = append(seenPreds, p)
			}
		}
		i = j
	}
	if nextEnt != prev.Len() {
		return nil
	}
	if sawTypeDecl != (len(prev.typeSet) > 0) {
		return nil
	}
	// Dictionary check: the interned predicates, in the order their
	// first interning triple appears (declarations were excluded
	// above, so rdf:type — when present — sits at its true position).
	// Any mismatch in content, order, or length means the dictionary
	// of a from-scratch build would differ: generic path.
	if len(seenPreds) != len(prev.preds) {
		return nil
	}
	for dict, p := range seenPreds {
		if prev.preds[dict] != terms[p].Value {
			return nil
		}
		sc.setPred(p, int32(dict))
	}

	kb := &KB{
		name:       s.name,
		uriIndex:   prev.uriIndex,
		preds:      prev.preds,
		predIndex:  prev.predIndex,
		ef:         make(map[string]int32, len(prev.ef)),
		attrStats:  make(map[int32]*PredStat),
		relStats:   make(map[int32]*PredStat),
		typeSet:    make(map[string]struct{}, len(prev.typeSet)),
		vocabSet:   prev.vocabSet,
		numTriples: len(refs),
	}
	kb.entities = make([]Entity, prev.Len())
	copy(kb.entities, prev.entities)

	// Rebuild the changed descriptions from their ref ranges.
	changedSet := make(map[EntityID]bool, len(changed))
	for _, e := range changed {
		changedSet[e] = true
	}
	for _, e := range changed {
		sp := spans[e]
		ent := Entity{URI: prev.entities[e].URI, In: prev.entities[e].In}
		for k := sp.lo; k < sp.hi; k++ {
			ref := refs[k]
			obj := &terms[ref.o]
			if ref.p == rdfTypeTerm && obj.Kind == rdf.IRI {
				ent.Types = append(ent.Types, obj.Value)
				continue
			}
			pid, _ := sc.pred(ref.p)
			switch {
			case obj.Kind == rdf.Literal:
				if obj.Value != "" {
					ent.Attrs = append(ent.Attrs, AttrValue{Pred: pid, Value: obj.Value})
				}
			case sc.subj(ref.o) >= 0:
				ent.Out = append(ent.Out, Edge{Pred: pid, Target: sc.subj(ref.o)})
			default:
				if v := localName(obj.Value); v != "" {
					ent.Attrs = append(ent.Attrs, AttrValue{Pred: pid, Value: v})
				}
			}
		}
		kb.entities[e] = ent
	}

	// Splice the in-edge lists of every link target the changed
	// entities touch (old or new edges).
	targets := make(map[EntityID]bool)
	for _, e := range changed {
		for _, edge := range prev.entities[e].Out {
			targets[edge.Target] = true
		}
		for _, edge := range kb.entities[e].Out {
			targets[edge.Target] = true
		}
	}
	for t := range targets {
		kb.entities[t].In = spliceIn(prev.entities[t].In, t, changed, changedSet, kb.entities)
	}

	// rdf:type and statistics.
	for i := range kb.entities {
		for _, typ := range kb.entities[i].Types {
			kb.typeSet[typ] = struct{}{}
		}
	}
	s.walkStats(kb, func(t int32) int32 {
		if pid, ok := sc.pred(t); ok && pid >= 0 {
			return pid
		}
		return -1
	}, rdfTypeTerm)
	n := float64(len(kb.entities))
	for _, st := range kb.attrStats {
		st.Importance = importance(st, n)
	}
	for _, st := range kb.relStats {
		st.Importance = importance(st, n)
	}

	// Tokens and EF: only the changed descriptions re-tokenize.
	for tok, c := range prev.ef {
		kb.ef[tok] = c
	}
	kb.totalTokens = prev.totalTokens
	for _, e := range changed {
		old := prev.entities[e].Tokens
		kb.totalTokens -= len(old)
		for _, tok := range old {
			if kb.ef[tok]--; kb.ef[tok] == 0 {
				delete(kb.ef, tok)
			}
		}
		ent := &kb.entities[e]
		ent.Tokens = nil
		tokenizeEntity(ent, s.opts)
		kb.totalTokens += len(ent.Tokens)
		for _, tok := range ent.Tokens {
			kb.ef[tok]++
		}
	}
	return kb
}

// spliceIn rebuilds one entity's in-edge list: entries from changed
// sources are replaced by the sources' rebuilt out-edges, in the
// global order the generic pass produces (ascending source, each
// source's edges in its ref order).
func spliceIn(in []Edge, target EntityID, changed []EntityID, changedSet map[EntityID]bool, entities []Entity) []Edge {
	out := make([]Edge, 0, len(in)+2)
	emit := func(src EntityID) {
		for _, edge := range entities[src].Out {
			if edge.Target == target {
				out = append(out, Edge{Pred: edge.Pred, Target: src})
			}
		}
	}
	ci := 0
	for _, edge := range in {
		src := edge.Target // an in-edge's Target field holds the source
		for ci < len(changed) && changed[ci] < src {
			emit(changed[ci])
			ci++
		}
		if ci < len(changed) && changed[ci] == src {
			continue // dropped here, re-emitted at this position by the loop above or below
		}
		if changedSet[src] {
			continue // later changed source: its old entries drop, new ones emit in order
		}
		out = append(out, edge)
	}
	for ; ci < len(changed); ci++ {
		emit(changed[ci])
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func sortIDs(ids []EntityID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
