package kb

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/binio"
)

// buildSourceKB builds a KB with retained sources so the sources tier
// participates in the lazy-open tests.
func buildSourceKB(t *testing.T) *KB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder("srckb")
	b.SetKeepSources(true)
	if err := b.AddAll(randomTriples(rng, 40, 160)); err != nil {
		t.Fatal(err)
	}
	kb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func encode(t *testing.T, kb *KB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := kb.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustEqualDecoded compares every tier of two fully decoded KBs.
func mustEqualDecoded(t *testing.T, got, want *KB) {
	t.Helper()
	if got.Name() != want.Name() || got.Len() != want.Len() || got.NumTriples() != want.NumTriples() {
		t.Fatalf("shape differs: %s/%d/%d vs %s/%d/%d",
			got.Name(), got.Len(), got.NumTriples(), want.Name(), want.Len(), want.NumTriples())
	}
	for i := 0; i < want.Len(); i++ {
		id := EntityID(i)
		a, b := want.Entity(id), got.Entity(id)
		if a.URI != b.URI || !reflect.DeepEqual(a.Attrs, b.Attrs) ||
			!reflect.DeepEqual(a.Out, b.Out) || !reflect.DeepEqual(a.In, b.In) ||
			!reflect.DeepEqual(a.Types, b.Types) || !reflect.DeepEqual(a.Tokens, b.Tokens) {
			t.Fatalf("entity %d differs", i)
		}
	}
	if got.NumAttributes() != want.NumAttributes() || got.NumRelations() != want.NumRelations() ||
		got.AvgTokens() != want.AvgTokens() {
		t.Error("statistics differ")
	}
}

func TestOpenBinaryLazyEquivalence(t *testing.T) {
	src := buildSourceKB(t)
	data := encode(t, src)
	want := roundTrip(t, src)

	opened, err := OpenBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	// URI tier works before any materialization.
	if opened.lazy == nil {
		t.Fatal("OpenBinary decoded eagerly on a lazy-capable image")
	}
	if opened.Name() != want.Name() || opened.Len() != want.Len() || opened.NumTriples() != want.NumTriples() {
		t.Fatalf("URI-tier shape wrong: %s/%d/%d", opened.Name(), opened.Len(), opened.NumTriples())
	}
	for i := 0; i < want.Len(); i++ {
		id := EntityID(i)
		if opened.URI(id) != want.URI(id) {
			t.Fatalf("entity %d URI differs pre-materialize", i)
		}
		back, ok := opened.Lookup(want.URI(id))
		if !ok || back != id {
			t.Fatalf("Lookup(%q) = %v,%v pre-materialize", want.URI(id), back, ok)
		}
	}

	if err := opened.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := opened.MaterializeSources(); err != nil {
		t.Fatal(err)
	}
	mustEqualDecoded(t, opened, want)
	if !opened.HasSources() {
		t.Error("sources lost through lazy open")
	}
	// Re-encoding the lazily opened KB reproduces the image bit for bit.
	if !bytes.Equal(encode(t, opened), data) {
		t.Error("WriteBinary(OpenBinary(x)) != x")
	}
}

// TestOpenBinaryVersion1Fallback feeds OpenBinary an unsectioned
// version-1 stream: it must fall back to eager decoding (there is no
// directory to defer against).
func TestOpenBinaryVersion1Fallback(t *testing.T) {
	kb := buildTestKB(t)
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Raw([]byte("MKB1"))
	w.Uvarint(1)
	w.Str(kb.name)
	w.Int(kb.numTriples)
	kb.writePreds(w)
	kb.writeStats(w)
	kb.writeEntities(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if opened.lazy != nil {
		t.Error("v1 image opened lazily")
	}
	if err := opened.Materialize(); err != nil {
		t.Errorf("Materialize on eager KB: %v", err)
	}
	if opened.Len() != kb.Len() || !reflect.DeepEqual(opened.Tokens(0), kb.Tokens(0)) {
		t.Error("v1 fallback decoded wrong")
	}
}

// TestOpenBinaryCorruptionSweep flips one bit at a stride of offsets
// across the image. Each mutation must either be rejected at open, be
// rejected by the first materialization that reaches the damaged
// section, or (vacuously) decode to content that re-encodes
// bit-identically to the clean image. Nothing may crash, and damage
// must never survive into a silently different KB.
func TestOpenBinaryCorruptionSweep(t *testing.T) {
	data := encode(t, buildSourceKB(t))
	step := len(data) / 53
	if step < 1 {
		step = 1
	}
	for off := 0; off < len(data); off += step {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x10
		kb, err := OpenBinary(mut)
		if err != nil {
			continue
		}
		if err := kb.Materialize(); err != nil {
			continue
		}
		if err := kb.MaterializeSources(); err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := kb.WriteBinary(&buf); err != nil {
			continue
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Errorf("bit flip at offset %d survived to a different KB", off)
		}
	}
	// Truncations must fail cleanly too.
	for _, cut := range []int{0, 3, 7, len(data) / 3, len(data) - 2} {
		kb, err := OpenBinary(data[:cut])
		if err != nil {
			continue
		}
		if kb.Materialize() == nil && kb.MaterializeSources() == nil {
			t.Errorf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestInspectBinary(t *testing.T) {
	src := buildSourceKB(t)
	data := encode(t, src)
	info, err := InspectBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != src.Name() || info.Entities != src.Len() || info.Triples != src.NumTriples() || !info.HasSources {
		t.Errorf("InspectBinary = %+v, want %s/%d/%d/sources", info, src.Name(), src.Len(), src.NumTriples())
	}

	plain := buildTestKB(t).WithoutSources()
	info2, err := InspectBinary(encode(t, plain))
	if err != nil {
		t.Fatal(err)
	}
	if info2.Name != plain.Name() || info2.Entities != plain.Len() || info2.HasSources {
		t.Errorf("InspectBinary (no sources) = %+v", info2)
	}
}
