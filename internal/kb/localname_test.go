package kb

// Regression tests for the localName / empty-value boundary fixes: an
// IRI ending in '/' or '#' has no local name and must contribute
// nothing (previously the whole IRI leaked into the token bag as
// "http", "ex", "org", ...), and empty attribute values must be
// dropped rather than recorded.
//
// Golden-test impact: none — the four synthetic benchmarks contain no
// trailing-separator dangling IRIs and no empty literals, so every
// golden, metric, and experiment expectation is unchanged (verified by
// the full suite passing with these fixes in place).

import (
	"testing"

	"minoaner/internal/rdf"
)

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://ex.org/path/Thing": "Thing",
		"http://ex.org/onto#Thing": "Thing",
		"http://ex.org/":           "",
		"http://ex.org/onto#":      "",
		"urn-like-no-separator":    "urn-like-no-separator",
	}
	for iri, want := range cases {
		if got := localName(iri); got != want {
			t.Errorf("localName(%q) = %q, want %q", iri, got, want)
		}
	}
}

func TestTrailingSeparatorDanglingURIDropped(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://e/x", "http://v/homepage", iri("http://ex.org/")),
		tr("http://e/x", "http://v/name", lit("Joe")),
	}
	kb, err := FromTriples("trailing", triples)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := kb.Lookup("http://e/x")
	for _, tok := range kb.Tokens(x) {
		if tok == "http" || tok == "ex" || tok == "org" {
			t.Errorf("URL fragment %q leaked into the token bag", tok)
		}
	}
	if got := kb.Tokens(x); len(got) != 1 || got[0] != "joe" {
		t.Errorf("tokens = %v, want [joe]", got)
	}
	// The homepage predicate recorded no usable value, so it must not
	// surface as an attribute with support.
	if pid, ok := kb.PredID("http://v/homepage"); ok {
		if st := kb.AttrStat(pid); st != nil {
			t.Errorf("trailing-separator value still counted: %+v", st)
		}
	}
}

func TestEmptyLiteralDropped(t *testing.T) {
	triples := []rdf.Triple{
		tr("http://e/x", "http://v/note", lit("")),
		tr("http://e/x", "http://v/name", lit("Joe")),
	}
	kb, err := FromTriples("empty-lit", triples)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := kb.Lookup("http://e/x")
	if got := len(kb.Entity(x).Attrs); got != 1 {
		t.Errorf("attrs = %d, want 1 (empty literal dropped)", got)
	}
	if pid, ok := kb.PredID("http://v/note"); ok {
		if st := kb.AttrStat(pid); st != nil {
			t.Errorf("empty literal still counted: %+v", st)
		}
	}
}
