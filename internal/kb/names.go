package kb

import (
	"sort"

	"minoaner/internal/tokenize"
)

// TopNameAttributes returns the IDs of the k most important attribute
// predicates of the KB — the attributes whose literal values serve as
// entity names in H1 (paper §III: "the literal values of the k
// attributes in every description with the highest importance").
// Fewer than k attributes may exist; all are returned in importance
// order then.
func (kb *KB) TopNameAttributes(k int) []int32 {
	kb.materialize()
	stats := kb.AttrStats()
	if k > len(stats) {
		k = len(stats)
	}
	out := make([]int32, 0, k)
	for _, st := range stats[:k] {
		out = append(out, st.Pred)
	}
	return out
}

// Names returns the normalized name keys of an entity: the distinct
// normalized literal values it holds for any of the given name
// attributes. Empty keys (values with no tokens) are dropped.
func (kb *KB) Names(id EntityID, nameAttrs []int32) []string {
	kb.materialize()
	if len(nameAttrs) == 0 {
		return nil
	}
	isName := make(map[int32]bool, len(nameAttrs))
	for _, p := range nameAttrs {
		isName[p] = true
	}
	var names []string
	seen := make(map[string]struct{})
	for _, av := range kb.entities[id].Attrs {
		if !isName[av.Pred] {
			continue
		}
		key := tokenize.NormalizeKey(av.Value)
		if key == "" {
			continue
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		names = append(names, key)
	}
	sort.Strings(names)
	return names
}
