package kb

import "sort"

// TopNeighbors returns the "best neighbors" of an entity as defined for
// H3: the entities associated with it — via incoming or outgoing edges —
// through one of the N relations with the maximum (global) importance
// score among the relations present on this entity. The result is
// sorted and deduplicated.
func (kb *KB) TopNeighbors(id EntityID, n int) []EntityID {
	kb.materialize()
	if n <= 0 {
		return nil
	}
	e := &kb.entities[id]
	if len(e.Out) == 0 && len(e.In) == 0 {
		return nil
	}
	// Collect the distinct relations on this entity.
	relSet := make(map[int32]struct{}, 4)
	for _, edge := range e.Out {
		relSet[edge.Pred] = struct{}{}
	}
	for _, edge := range e.In {
		relSet[edge.Pred] = struct{}{}
	}
	rels := make([]int32, 0, len(relSet))
	for r := range relSet {
		rels = append(rels, r)
	}
	sort.Slice(rels, func(i, j int) bool {
		a, b := kb.relImportance(rels[i]), kb.relImportance(rels[j])
		if a != b {
			return a > b
		}
		return kb.preds[rels[i]] < kb.preds[rels[j]]
	})
	if n < len(rels) {
		rels = rels[:n]
	}
	keep := make(map[int32]bool, len(rels))
	for _, r := range rels {
		keep[r] = true
	}

	seen := make(map[EntityID]struct{}, len(e.Out)+len(e.In))
	var out []EntityID
	add := func(edges []Edge) {
		for _, edge := range edges {
			if !keep[edge.Pred] {
				continue
			}
			if _, dup := seen[edge.Target]; dup {
				continue
			}
			seen[edge.Target] = struct{}{}
			out = append(out, edge.Target)
		}
	}
	add(e.Out)
	add(e.In)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (kb *KB) relImportance(pred int32) float64 {
	if st := kb.relStats[pred]; st != nil {
		return st.Importance
	}
	return 0
}

// TopRelations returns the IDs of the n globally most important
// relations of the KB, in importance order.
func (kb *KB) TopRelations(n int) []int32 {
	kb.materialize()
	stats := kb.RelStats()
	if n > len(stats) {
		n = len(stats)
	}
	out := make([]int32, 0, n)
	for _, st := range stats[:n] {
		out = append(out, st.Pred)
	}
	return out
}
