package kb

import (
	"context"

	"minoaner/internal/parallel"
)

// Frozen is a sealed neighbor view of one KB: the per-entity best
// neighbors under a fixed N (see TopNeighbors) together with the
// reverse index, both materialized once. Prepared-side matching derives
// these for the indexed KB a single time instead of once per query; the
// view is immutable after Freeze and safe for concurrent readers.
//
//minoaner:frozen
type Frozen struct {
	kb  *KB
	n   int
	top [][]EntityID // TopNeighbors(e, n) per entity
	rev [][]EntityID // entities listing e among their best neighbors
}

// Freeze materializes the neighbor view for the given N, computing the
// per-entity top-neighbor lists across the given worker count (<= 0
// selects GOMAXPROCS). The result is identical at every count.
func (kb *KB) Freeze(n, workers int) *Frozen {
	top := make([][]EntityID, kb.Len())
	_ = parallel.For(context.Background(), kb.Len(), parallel.Workers(workers), func(_, start, end int) error {
		for e := start; e < end; e++ {
			top[e] = kb.TopNeighbors(EntityID(e), n)
		}
		return nil
	})
	return FrozenFromLists(kb, n, top)
}

// FrozenFromLists assembles a Frozen view from already-materialized
// top-neighbor lists (e.g. loaded from a snapshot), deriving the
// reverse index. The lists must be what Freeze would compute for the
// same KB and N; callers loading persisted lists validate ID ranges
// before calling.
func FrozenFromLists(kb *KB, n int, top [][]EntityID) *Frozen {
	return &Frozen{kb: kb, n: n, top: top, rev: ReverseNeighbors(top, kb.Len())}
}

// ReverseNeighbors inverts top-neighbor lists over a KB of size n: for
// each entity x, the entities that count x among their best neighbors,
// in ascending order.
func ReverseNeighbors(top [][]EntityID, n int) [][]EntityID {
	rev := make([][]EntityID, n)
	for e, nbrs := range top {
		for _, x := range nbrs {
			rev[x] = append(rev[x], EntityID(e))
		}
	}
	return rev
}

// KB returns the underlying knowledge base.
func (f *Frozen) KB() *KB { return f.kb }

// N returns the relation count the view was frozen for.
func (f *Frozen) N() int { return f.n }

// Top returns the frozen best-neighbor list of an entity. Callers must
// not mutate it.
func (f *Frozen) Top(e EntityID) []EntityID { return f.top[e] }

// TopLists returns the per-entity best-neighbor lists, indexed by
// entity ID. Callers must not mutate them.
func (f *Frozen) TopLists() [][]EntityID { return f.top }

// RevLists returns the reverse neighbor index, indexed by entity ID.
// Callers must not mutate it.
func (f *Frozen) RevLists() [][]EntityID { return f.rev }
