// Source-triple retention and live mutation. A KB built with source
// retention (the Builder default) keeps its interned triples as a
// Sources value; a Store wraps those sources into a mutable triple set
// that supports entity-level upserts and deletes and re-assembles a KB
// after each change.
//
// The mutation contract is triple-level and matches a from-scratch
// rebuild exactly: upserting a delta KB replaces every triple whose
// subject is one of the delta's entities with the delta's triples for
// it; deleting a URI removes every triple with that subject. The
// assembled KB is bit-identical to Build over the mutated triple set —
// same entity order (sorted subject terms), same predicate dictionary,
// same object classification (links to removed entities degrade to
// dangling values, links to inserted ones upgrade to relation edges),
// same statistics — because Assemble literally runs the same passes
// over the same sorted refs. Only tokenization is shortcut, through
// the value-equality reuse in assembleKB, which cannot change the
// result.
package kb

import (
	"errors"
	"fmt"
	"sort"

	"minoaner/internal/rdf"
	"minoaner/internal/tokenize"
)

// Sources is the interned source-triple set a KB was assembled from:
// a term table plus sorted, deduplicated triple refs into it. It is
// immutable once attached to a KB.
type Sources struct {
	opts  tokenize.Options
	terms []rdf.Term
	refs  []tripleRef
}

// NumTriples returns the number of retained (distinct) triples.
func (s *Sources) NumTriples() int { return len(s.refs) }

// SourceTriples returns the KB's retained source triples in interned
// order — sorted by (subject, predicate, object) term values and
// deduplicated. This is the canonical rendering order of a replayable
// mutation journal: serializing these triples and rebuilding a KB from
// them reproduces the same sources bit-for-bit. Nil when the KB
// retains no sources.
func (kb *KB) SourceTriples() []rdf.Triple {
	kb.materializeSrc()
	if kb.src == nil {
		return nil
	}
	out := make([]rdf.Triple, len(kb.src.refs))
	for i, r := range kb.src.refs {
		out[i] = rdf.Triple{
			Subject:   kb.src.terms[r.s],
			Predicate: kb.src.terms[r.p],
			Object:    kb.src.terms[r.o],
		}
	}
	return out
}

// HasSources reports whether the KB retains its source triples and can
// therefore back a Store. For a mapped KB it answers from the section
// directory without decoding the sources.
func (kb *KB) HasSources() bool {
	return kb.src != nil || (kb.lazy != nil && kb.lazy.hasSrc)
}

// WithoutSources returns a view of the KB with source retention
// stripped (the underlying data is shared). WriteBinary on the view
// omits the sources section — the pre-mutability encoding.
func (kb *KB) WithoutSources() *KB {
	kb.materialize()
	c := *kb
	c.src = nil
	// The view must not rediscover the sources (or anything else)
	// through the mapping; the full tier was just forced, so dropping
	// the lazy state leaves a complete KB.
	c.lazy = nil
	return &c
}

// Store is the mutable triple set behind a sequence of KB epochs. It
// owns a growing term table and the current sorted ref slice; Apply
// mutates the set at entity granularity and Assemble produces the KB
// of the current state. A Store is single-writer: callers serialize
// Apply/Assemble/Compact externally. KBs produced by Assemble share
// the term table read-only and remain valid forever.
type Store struct {
	name    string
	workers int
	opts    tokenize.Options

	terms     []rdf.Term
	termIndex map[rdf.Term]int32
	refs      []tripleRef
	// refsPOS is the same triple set sorted by (predicate, object,
	// subject): the access path of the map-free statistics walk in
	// Assemble (predicate groups are contiguous, and within one, equal
	// objects are adjacent).
	refsPOS []tripleRef

	// Incremental-assembly bookkeeping. touched accumulates the
	// subject keys mutated since the last Assemble; lastAssembled is
	// that Assemble's result; predUse refcounts triples per predicate
	// term and predsChanged records a predicate appearing or vanishing
	// since the last Assemble. Together they decide whether Assemble
	// may splice the previous KB (see assembleIncremental) or must
	// rerun the generic passes.
	touched       map[string]bool
	lastAssembled *KB
	predUse       map[int32]int
	predsChanged  bool

	// Reusable generation-stamped scratch (single-writer, so safe to
	// keep across assemblies).
	scratch assembleScratch
}

// posLess orders refs by (predicate, object, subject) under termLess.
func posLess(terms []rdf.Term, x, y tripleRef) bool {
	if x.p != y.p {
		return termLess(terms[x.p], terms[y.p])
	}
	if x.o != y.o {
		return termLess(terms[x.o], terms[y.o])
	}
	if x.s != y.s {
		return termLess(terms[x.s], terms[y.s])
	}
	return false
}

// ErrNoSources is returned when a KB without retained source triples
// is asked to back a mutation.
var ErrNoSources = errors.New("kb: KB was built without source retention and cannot be mutated")

// NewStore wraps a KB's retained sources into a mutable triple set.
func NewStore(k *KB) (*Store, error) {
	if err := k.Materialize(); err != nil {
		return nil, err
	}
	if err := k.MaterializeSources(); err != nil {
		return nil, err
	}
	if k.src == nil {
		return nil, ErrNoSources
	}
	terms := k.src.terms[:len(k.src.terms):len(k.src.terms)]
	idx := make(map[rdf.Term]int32, len(terms))
	for i, t := range terms {
		idx[t] = int32(i)
	}
	s := &Store{
		name:      k.name,
		opts:      k.src.opts,
		terms:     terms,
		termIndex: idx,
		refs:      k.src.refs[:len(k.src.refs):len(k.src.refs)],
	}
	s.refsPOS = make([]tripleRef, len(s.refs))
	copy(s.refsPOS, s.refs)
	sort.Slice(s.refsPOS, func(i, j int) bool { return posLess(s.terms, s.refsPOS[i], s.refsPOS[j]) })
	s.touched = make(map[string]bool)
	s.lastAssembled = k
	s.predUse = make(map[int32]int)
	for _, r := range s.refs {
		s.predUse[r.p]++
	}
	return s, nil
}

// SetWorkers bounds the goroutines Assemble uses for its parallel
// passes. Values <= 0 select GOMAXPROCS; the result is identical at
// any setting.
func (s *Store) SetWorkers(n int) { s.workers = n }

// NumTriples returns the current number of (distinct) triples.
func (s *Store) NumTriples() int { return len(s.refs) }

// NumTerms returns the size of the term table, including terms no
// longer referenced by any triple (reclaim them with Compact).
func (s *Store) NumTerms() int { return len(s.terms) }

func (s *Store) intern(t rdf.Term) int32 {
	if id, ok := s.termIndex[t]; ok {
		return id
	}
	id := int32(len(s.terms))
	s.terms = append(s.terms, t)
	s.termIndex[t] = id
	return id
}

// Revert undoes one successful Apply, restoring the pre-Apply triple
// set and term table: terms the reverted Apply interned are removed
// again, so an aborted mutation leaves no trace in later assemblies
// (or the snapshots derived from them).
type Revert func()

// Apply mutates the triple set: every triple whose subject key is an
// entity of the delta KB or one of the delete URIs is removed, then
// the delta's triples are merged in. It reports whether anything
// changed (deleting absent subjects is a no-op) and returns a Revert
// restoring the previous state. The delta must retain its sources and
// have been tokenized under the same options as the store.
func (s *Store) Apply(delta *KB, deletes []string) (changed bool, revert Revert, err error) {
	drop := make(map[string]bool, len(deletes)+8)
	prevTerms := len(s.terms)
	var putRefs []tripleRef
	if delta != nil {
		if delta.src == nil {
			return false, nil, ErrNoSources
		}
		if !optionsEqual(delta.src.opts, s.opts) {
			return false, nil, errors.New("kb: delta tokenized under different options than the store")
		}
		for i := range delta.entities {
			drop[delta.entities[i].URI] = true
		}
		// Intern new terms in sorted-ref traversal order, not the
		// delta's term-table (parse encounter) order: the resulting
		// store table then depends only on the triple *set*, so a
		// journal delta re-parsed from its canonical rendering interns
		// bit-identically to the original upsert. Terms no triple
		// references are skipped — they would only be orphans.
		trans := make([]int32, len(delta.src.terms))
		for i := range trans {
			trans[i] = -1
		}
		for _, r := range delta.src.refs {
			for _, ti := range [3]int32{r.s, r.p, r.o} {
				if trans[ti] < 0 {
					trans[ti] = s.intern(delta.src.terms[ti])
				}
			}
		}
		putRefs = make([]tripleRef, len(delta.src.refs))
		for i, r := range delta.src.refs {
			putRefs[i] = tripleRef{s: trans[r.s], p: trans[r.p], o: trans[r.o]}
		}
	}
	for _, u := range deletes {
		drop[u] = true
	}
	if len(drop) == 0 {
		return false, func() {}, nil
	}

	// Resolve the dropped subject keys to term IDs: a key denotes the
	// IRI with that value, or (for "_:"-prefixed keys) the blank node —
	// and, degenerately, an IRI whose value carries the "_:" prefix.
	dropTerm := make(map[int32]bool, len(drop))
	for key := range drop {
		if id, ok := s.termIndex[rdf.NewIRI(key)]; ok {
			dropTerm[id] = true
		}
		if len(key) > 2 && key[:2] == "_:" {
			if id, ok := s.termIndex[rdf.NewBlank(key[2:])]; ok {
				dropTerm[id] = true
			}
		}
	}

	// One merge pass per sort order: skip dropped subjects, interleave
	// the delta's refs (already sorted — term order is value order, so
	// the translation preserves it).
	merge := func(cur []tripleRef, put []tripleRef, less func(x, y tripleRef) bool) (out []tripleRef, dropped int) {
		out = make([]tripleRef, 0, len(cur)+len(put))
		pi := 0
		for _, r := range cur {
			if dropTerm[r.s] {
				dropped++
				continue
			}
			for pi < len(put) && less(put[pi], r) {
				out = append(out, put[pi])
				pi++
			}
			out = append(out, r)
		}
		out = append(out, put[pi:]...)
		return out[:len(out):len(out)], dropped
	}
	// Track predicate usage so Assemble knows whether a predicate
	// appeared or vanished (either changes the dictionary or the
	// vocabulary set, forcing the generic passes).
	predDelta := make(map[int32]int)
	merged, dropped := merge(s.refs, putRefs, func(x, y tripleRef) bool { return refLessIn(s.terms, x, y) })
	if dropped > 0 {
		// Count the dropped refs' predicates (putRefs were not merged
		// into s.refs yet, so the difference is exactly the drops).
		for _, r := range s.refs {
			if dropTerm[r.s] {
				predDelta[r.p]--
			}
		}
	}
	if dropped == 0 && len(putRefs) == 0 {
		return false, func() {}, nil
	}
	if sameRefs(merged, s.refs) {
		// Re-upserting descriptions identical to the stored ones: the
		// triple set is unchanged, so the mutation is a no-op (the
		// interned delta terms were already present or stay as
		// harmless table entries).
		return false, func() {}, nil
	}
	for _, r := range putRefs {
		predDelta[r.p]++
	}
	putPOS := make([]tripleRef, len(putRefs))
	copy(putPOS, putRefs)
	sort.Slice(putPOS, func(i, j int) bool { return posLess(s.terms, putPOS[i], putPOS[j]) })
	mergedPOS, _ := merge(s.refsPOS, putPOS, func(x, y tripleRef) bool { return posLess(s.terms, x, y) })

	prevRefs, prevPOS := s.refs, s.refsPOS
	prevTouched := make(map[string]bool, len(s.touched))
	for k, v := range s.touched {
		prevTouched[k] = v
	}
	prevPredsChanged := s.predsChanged
	prevAssembled := s.lastAssembled
	for key := range drop {
		s.touched[key] = true
	}
	for p, d := range predDelta {
		before := s.predUse[p]
		s.predUse[p] = before + d
		if (before == 0) != (before+d == 0) {
			s.predsChanged = true
		}
	}
	s.refs, s.refsPOS = merged, mergedPOS
	return true, func() {
		s.refs, s.refsPOS = prevRefs, prevPOS
		s.touched, s.predsChanged = prevTouched, prevPredsChanged
		s.lastAssembled = prevAssembled
		for p, d := range predDelta {
			s.predUse[p] -= d
		}
		// Un-intern the terms this Apply appended. No assembled KB can
		// reference them (assemblies share length-capped prefixes of the
		// table), so truncating restores the exact pre-Apply table.
		for _, t := range s.terms[prevTerms:] {
			delete(s.termIndex, t)
		}
		s.terms = s.terms[:prevTerms]
	}, nil
}

// Assemble builds the KB of the current triple set. prev, when
// non-nil, must be an Assemble (or Build) result of an earlier state
// of the same store: unchanged descriptions reuse its token bags. The
// result is bit-identical to a from-scratch Build of the current
// triples either way.
func (s *Store) Assemble(prev *KB) *KB {
	k := s.assembleIncremental(prev)
	if k == nil {
		k = s.assembleFast(prev)
	}
	k.src = &Sources{opts: s.opts, terms: s.terms[:len(s.terms):len(s.terms)], refs: s.refs}
	s.lastAssembled = k
	s.touched = make(map[string]bool)
	s.predsChanged = false
	return k
}

// Compact rebuilds the term table from the live triples, dropping
// terms that deletions have orphaned. Previously assembled KBs are
// unaffected (they hold their own source snapshots).
func (s *Store) Compact() {
	terms := make([]rdf.Term, 0, len(s.terms))
	idx := make(map[rdf.Term]int32, len(s.terms))
	remap := make([]int32, len(s.terms))
	for i := range remap {
		remap[i] = -1
	}
	move := func(id int32) int32 {
		if remap[id] < 0 {
			idx[s.terms[id]] = int32(len(terms))
			terms = append(terms, s.terms[id])
			remap[id] = int32(len(terms) - 1)
		}
		return remap[id]
	}
	refs := make([]tripleRef, len(s.refs))
	for i, r := range s.refs {
		refs[i] = tripleRef{s: move(r.s), p: move(r.p), o: move(r.o)}
	}
	// Term values are unchanged, so the (p,o,s) order survives the
	// renumbering; only the IDs rewrite.
	refsPOS := make([]tripleRef, len(s.refsPOS))
	for i, r := range s.refsPOS {
		refsPOS[i] = tripleRef{s: move(r.s), p: move(r.p), o: move(r.o)}
	}
	// predUse is keyed by term ID: carry the live counts into the new
	// numbering (orphaned predicates have no refs and drop to zero
	// anyway).
	predUse := make(map[int32]int, len(s.predUse))
	for p, c := range s.predUse {
		if c != 0 && remap[p] >= 0 {
			predUse[remap[p]] = c
		}
	}
	s.terms, s.termIndex, s.refs, s.refsPOS, s.predUse = terms, idx, refs, refsPOS, predUse
}

// sameRefs reports whether two sorted ref slices hold the same
// triples.
func sameRefs(a, b []tripleRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// optionsEqual compares tokenizer configurations, including stopword
// sets.
func optionsEqual(a, b tokenize.Options) bool {
	if a.MinLength != b.MinLength || len(a.Stopwords) != len(b.Stopwords) {
		return false
	}
	for w := range a.Stopwords {
		if _, ok := b.Stopwords[w]; !ok {
			return false
		}
	}
	return true
}

// sortedStopwords returns a deterministic listing of a stopword set
// (for serialization).
func sortedStopwords(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for w := range m {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// validateSources checks structural invariants of a decoded source
// set: term kinds in range, ref ids in range, refs strictly sorted.
func validateSources(src *Sources) error {
	n := int32(len(src.terms))
	for i, t := range src.terms {
		if t.Kind > rdf.BlankNode {
			return fmt.Errorf("term %d has invalid kind %d", i, t.Kind)
		}
	}
	for i, r := range src.refs {
		if r.s < 0 || r.s >= n || r.p < 0 || r.p >= n || r.o < 0 || r.o >= n {
			return fmt.Errorf("ref %d out of term range", i)
		}
		if i > 0 && !refLessIn(src.terms, src.refs[i-1], r) {
			return fmt.Errorf("refs not strictly sorted at %d", i)
		}
	}
	return nil
}
