package kb

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"minoaner/internal/binio"
	"minoaner/internal/rdf"
)

func roundTrip(t *testing.T, kb *KB) *KB {
	t.Helper()
	var buf bytes.Buffer
	if err := kb.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestBinaryRoundTrip(t *testing.T) {
	kb := buildTestKB(t)
	back := roundTrip(t, kb)

	if back.Name() != kb.Name() {
		t.Errorf("name = %q", back.Name())
	}
	if back.Len() != kb.Len() || back.NumTriples() != kb.NumTriples() {
		t.Errorf("sizes differ: %d/%d vs %d/%d", back.Len(), back.NumTriples(), kb.Len(), kb.NumTriples())
	}
	if back.NumAttributes() != kb.NumAttributes() || back.NumRelations() != kb.NumRelations() {
		t.Errorf("schema stats differ")
	}
	if back.NumTypes() != kb.NumTypes() || back.NumVocabularies() != kb.NumVocabularies() {
		t.Errorf("type/vocab stats differ: %d/%d vs %d/%d",
			back.NumTypes(), back.NumVocabularies(), kb.NumTypes(), kb.NumVocabularies())
	}
	if back.AvgTokens() != kb.AvgTokens() {
		t.Errorf("avg tokens differ")
	}
	for i := 0; i < kb.Len(); i++ {
		id := EntityID(i)
		if back.URI(id) != kb.URI(id) {
			t.Fatalf("entity %d URI differs", i)
		}
		if !reflect.DeepEqual(back.Tokens(id), kb.Tokens(id)) {
			t.Fatalf("entity %d tokens differ", i)
		}
		a, b := kb.Entity(id), back.Entity(id)
		if !reflect.DeepEqual(a.Attrs, b.Attrs) || !reflect.DeepEqual(a.Out, b.Out) || !reflect.DeepEqual(a.In, b.In) {
			t.Fatalf("entity %d structure differs", i)
		}
	}
	// Statistics preserved.
	for _, st := range kb.AttrStats() {
		got := back.AttrStat(st.Pred)
		if got == nil || got.Importance != st.Importance || got.Entities != st.Entities || got.Distinct != st.Distinct {
			t.Errorf("attr stat %d differs", st.Pred)
		}
	}
	// EF rebuilt.
	if back.EF("diner") != kb.EF("diner") {
		t.Error("EF differs")
	}
	// Lookups work.
	if _, ok := back.Lookup("http://e/r1"); !ok {
		t.Error("lookup failed after round trip")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	kb, err := FromTriples("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, kb)
	if back.Len() != 0 || back.Name() != "empty" {
		t.Errorf("empty round trip wrong: %v", back)
	}
}

func TestBinaryNamesAndNeighborsUsable(t *testing.T) {
	kb := buildTestKB(t)
	back := roundTrip(t, kb)
	pid, ok := back.PredID("http://v/name")
	if !ok {
		t.Fatal("predicate missing after round trip")
	}
	r1, _ := back.Lookup("http://e/r1")
	if names := back.Names(r1, []int32{pid}); len(names) != 1 {
		t.Errorf("names after round trip = %v", names)
	}
	if nbrs := back.TopNeighbors(r1, 3); len(nbrs) != 1 {
		t.Errorf("neighbors after round trip = %v", nbrs)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	kb := buildTestKB(t)
	var buf bytes.Buffer
	if err := kb.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := []struct {
		name string
		doc  []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("XKB1rest")},
		{"truncated header", data[:3]},
		{"truncated middle", data[:len(data)/2]},
		{"truncated tail", data[:len(data)-3]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(tc.doc)); err == nil {
				t.Error("corrupt input accepted")
			}
		})
	}
}

func TestBinaryRejectsWrongVersion(t *testing.T) {
	kb := buildTestKB(t)
	var buf bytes.Buffer
	if err := kb.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte (uvarint, single byte for small values)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
}

// TestBinaryChecksumDetectsBitFlips flips one bit at every offset past
// the header: the section CRCs must reject every mutation (a flip that
// survived would silently corrupt cached KBs).
func TestBinaryChecksumDetectsBitFlips(t *testing.T) {
	kb := buildTestKB(t)
	var buf bytes.Buffer
	if err := kb.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x08
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
}

// TestBinaryReadsVersion1 replays the pre-checksum v1 wire format (the
// same primitive streams without section framing) and checks the reader
// still accepts it — cached .mkb files from older builds keep working.
func TestBinaryReadsVersion1(t *testing.T) {
	kb := buildTestKB(t)
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Raw([]byte("MKB1"))
	w.Uvarint(1) // version 1
	w.Str(kb.name)
	w.Int(kb.numTriples)
	kb.writePreds(w)
	kb.writeStats(w)
	kb.writeEntities(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if back.Name() != kb.Name() || back.Len() != kb.Len() {
		t.Errorf("v1 decode wrong: %s/%d vs %s/%d", back.Name(), back.Len(), kb.Name(), kb.Len())
	}
	for i := 0; i < kb.Len(); i++ {
		id := EntityID(i)
		if back.URI(id) != kb.URI(id) || !reflect.DeepEqual(back.Tokens(id), kb.Tokens(id)) {
			t.Fatalf("v1 entity %d differs", i)
		}
	}
}

func TestBinaryDeterministic(t *testing.T) {
	kb := buildTestKB(t)
	var a, b bytes.Buffer
	if err := kb.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := kb.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("binary encoding is nondeterministic")
	}
}

func TestBinarySmallerOrComparableToNT(t *testing.T) {
	// Not a strict guarantee, but the binary format should not balloon
	// relative to the source triples for a typical KB.
	var triples []rdf.Triple
	for i := 0; i < 200; i++ {
		triples = append(triples,
			rdf.NewTriple(rdf.NewIRI(strings.Repeat("http://example.org/entity/", 1)+string(rune('a'+i%26))+"x"),
				rdf.NewIRI("http://example.org/ontology/name"),
				rdf.NewLiteral("some value with several tokens")))
	}
	kb, err := FromTriples("sz", triples)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := kb.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	var nt strings.Builder
	if err := rdf.WriteAll(&nt, triples); err != nil {
		t.Fatal(err)
	}
	if bin.Len() > 3*nt.Len() {
		t.Errorf("binary %dB vs N-Triples %dB — unexpectedly large", bin.Len(), nt.Len())
	}
}
