// Package kb assembles raw RDF triples into the Knowledge Base substrate
// MinoanER matches against: per-entity descriptions (bags of tokens,
// attribute-value pairs, neighbor links) plus the dataset statistics the
// paper derives all matching evidence from — attribute/relation
// importance and token entity-frequencies.
//
// Terminology follows the paper:
//
//   - An entity is any URI (or blank node) that appears as the subject of
//     at least one triple.
//   - A predicate whose objects are literals (or URIs that do not denote
//     an entity of this KB) is an attribute.
//   - A predicate whose objects are entities of the same KB is a
//     relation; relations induce the entity graph used for neighbor
//     evidence.
//   - rdf:type triples are tracked separately (they define the "types"
//     column of Table I) and contribute neither attribute tokens nor
//     relations.
package kb

import (
	"fmt"
	"sort"
	"strings"

	"minoaner/internal/rdf"
	"minoaner/internal/tokenize"
)

// RDFType is the predicate IRI that declares an entity's type.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// EntityID indexes an entity within one KB.
type EntityID int32

// AttrValue is one attribute-value pair of a description.
type AttrValue struct {
	Pred  int32  // predicate ID within the KB's dictionary
	Value string // literal lexical form (or dangling-URI local name)
}

// Edge is one relation edge of the entity graph.
type Edge struct {
	Pred   int32    // relation ID within the KB's dictionary
	Target EntityID // the neighboring entity
}

// Entity is one fully assembled description.
type Entity struct {
	URI    string
	Attrs  []AttrValue
	Out    []Edge   // edges where this entity is the subject
	In     []Edge   // edges where this entity is the object
	Types  []string // rdf:type object IRIs
	Tokens []string // distinct lowercase tokens of all attribute values
}

// KB is an immutable knowledge base. Build one with a Builder.
type KB struct {
	name     string
	entities []Entity
	uriIndex map[string]EntityID

	preds     []string         // predicate dictionary
	predIndex map[string]int32 // reverse dictionary

	ef map[string]int32 // token -> number of entities containing it

	attrStats map[int32]*PredStat // literal-valued predicates
	relStats  map[int32]*PredStat // entity-valued predicates

	numTriples  int
	totalTokens int // sum over entities of len(Tokens)
	typeSet     map[string]struct{}
	vocabSet    map[string]struct{}
}

// PredStat aggregates the statistics the paper's importance metric needs
// for one predicate (attribute or relation).
type PredStat struct {
	Pred       int32
	Entities   int     // number of entities whose description contains the predicate (support count)
	Distinct   int     // number of distinct objects associated with the predicate
	Importance float64 // harmonic mean of support and discriminability
}

// Name returns the KB's display name.
func (kb *KB) Name() string { return kb.name }

// Len returns the number of entities.
func (kb *KB) Len() int { return len(kb.entities) }

// NumTriples returns the number of triples consumed by the builder
// (after deduplication).
func (kb *KB) NumTriples() int { return kb.numTriples }

// Entity returns the description with the given ID.
func (kb *KB) Entity(id EntityID) *Entity { return &kb.entities[id] }

// Lookup resolves a URI to its entity ID.
func (kb *KB) Lookup(uri string) (EntityID, bool) {
	id, ok := kb.uriIndex[uri]
	return id, ok
}

// URI returns the URI of an entity.
func (kb *KB) URI(id EntityID) string { return kb.entities[id].URI }

// Pred returns the predicate name for a dictionary ID.
func (kb *KB) Pred(id int32) string { return kb.preds[id] }

// PredID resolves a predicate name to its dictionary ID.
func (kb *KB) PredID(name string) (int32, bool) {
	id, ok := kb.predIndex[name]
	return id, ok
}

// EF returns the entity frequency of a token: the number of entities of
// this KB whose values contain it. Unknown tokens have frequency 0.
func (kb *KB) EF(token string) int { return int(kb.ef[token]) }

// Tokens returns the distinct tokens of an entity's values.
func (kb *KB) Tokens(id EntityID) []string { return kb.entities[id].Tokens }

// AvgTokens returns the mean number of distinct tokens per entity
// (the "av. tokens" row of Table I).
func (kb *KB) AvgTokens() float64 {
	if len(kb.entities) == 0 {
		return 0
	}
	return float64(kb.totalTokens) / float64(len(kb.entities))
}

// NumAttributes returns the number of distinct attribute predicates.
func (kb *KB) NumAttributes() int { return len(kb.attrStats) }

// NumRelations returns the number of distinct relation predicates.
func (kb *KB) NumRelations() int { return len(kb.relStats) }

// NumTypes returns the number of distinct rdf:type objects.
func (kb *KB) NumTypes() int { return len(kb.typeSet) }

// NumVocabularies returns the number of distinct predicate namespaces
// (the prefix up to the last '#' or '/').
func (kb *KB) NumVocabularies() int { return len(kb.vocabSet) }

// AttrStat returns the statistics of an attribute predicate, or nil.
func (kb *KB) AttrStat(pred int32) *PredStat { return kb.attrStats[pred] }

// RelStat returns the statistics of a relation predicate, or nil.
func (kb *KB) RelStat(pred int32) *PredStat { return kb.relStats[pred] }

// AttrStats returns all attribute statistics sorted by descending
// importance, ties broken by predicate name for determinism.
func (kb *KB) AttrStats() []*PredStat { return kb.sortedStats(kb.attrStats) }

// RelStats returns all relation statistics sorted by descending
// importance, ties broken by predicate name.
func (kb *KB) RelStats() []*PredStat { return kb.sortedStats(kb.relStats) }

func (kb *KB) sortedStats(m map[int32]*PredStat) []*PredStat {
	out := make([]*PredStat, 0, len(m))
	for _, st := range m {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Importance != out[j].Importance {
			return out[i].Importance > out[j].Importance
		}
		return kb.preds[out[i].Pred] < kb.preds[out[j].Pred]
	})
	return out
}

// Builder accumulates triples and produces an immutable KB.
type Builder struct {
	name    string
	triples map[rdf.Triple]struct{}
	opts    tokenize.Options
}

// NewBuilder returns a Builder for a KB with the given display name,
// tokenizing with tokenize.DefaultOptions.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, triples: make(map[rdf.Triple]struct{})}
}

// SetTokenizeOptions overrides the tokenizer configuration.
func (b *Builder) SetTokenizeOptions(opts tokenize.Options) { b.opts = opts }

// Add records one triple. Duplicates are ignored. Invalid triples are
// rejected.
func (b *Builder) Add(t rdf.Triple) error {
	if err := t.Validate(); err != nil {
		return err
	}
	b.triples[t] = struct{}{}
	return nil
}

// AddAll records a batch of triples, stopping at the first invalid one.
func (b *Builder) AddAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := b.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of distinct triples recorded so far.
func (b *Builder) Len() int { return len(b.triples) }

// Build assembles the KB. The builder may be reused afterwards.
func (b *Builder) Build() (*KB, error) {
	triples := make([]rdf.Triple, 0, len(b.triples))
	for t := range b.triples {
		triples = append(triples, t)
	}
	// Deterministic assembly independent of map iteration order.
	sort.Slice(triples, func(i, j int) bool {
		a, c := triples[i], triples[j]
		if a.Subject != c.Subject {
			return termLess(a.Subject, c.Subject)
		}
		if a.Predicate != c.Predicate {
			return termLess(a.Predicate, c.Predicate)
		}
		return termLess(a.Object, c.Object)
	})

	kb := &KB{
		name:       b.name,
		uriIndex:   make(map[string]EntityID),
		predIndex:  make(map[string]int32),
		ef:         make(map[string]int32),
		attrStats:  make(map[int32]*PredStat),
		relStats:   make(map[int32]*PredStat),
		typeSet:    make(map[string]struct{}),
		vocabSet:   make(map[string]struct{}),
		numTriples: len(triples),
	}

	// Pass 1: every subject becomes an entity, in sorted order.
	for _, t := range triples {
		key := subjectKey(t.Subject)
		if _, ok := kb.uriIndex[key]; !ok {
			kb.uriIndex[key] = EntityID(len(kb.entities))
			kb.entities = append(kb.entities, Entity{URI: key})
		}
	}

	// Pass 2: classify objects, fill descriptions.
	attrSeen := make(map[distinctKey]struct{})
	relSeen := make(map[distinctKey]struct{})
	attrEnt := make(map[int32]map[EntityID]struct{})
	relEnt := make(map[int32]map[EntityID]struct{})

	for _, t := range triples {
		subj := kb.uriIndex[subjectKey(t.Subject)]
		pname := t.Predicate.Value
		kb.vocabSet[namespaceOf(pname)] = struct{}{}

		if pname == RDFType && t.Object.IsIRI() {
			kb.entities[subj].Types = append(kb.entities[subj].Types, t.Object.Value)
			kb.typeSet[t.Object.Value] = struct{}{}
			continue
		}

		pid := kb.internPred(pname)
		switch {
		case t.Object.IsLiteral():
			kb.addAttr(subj, pid, t.Object.Value, attrSeen, attrEnt, distinctKey{pid, t.Object.Value})
		default: // IRI or blank object
			okey := subjectKey(t.Object)
			if tgt, ok := kb.uriIndex[okey]; ok {
				// Relation edge within the entity graph.
				kb.entities[subj].Out = append(kb.entities[subj].Out, Edge{Pred: pid, Target: tgt})
				kb.entities[tgt].In = append(kb.entities[tgt].In, Edge{Pred: pid, Target: subj})
				st := kb.statFor(kb.relStats, pid)
				dk := distinctKey{pid, okey}
				if _, ok := relSeen[dk]; !ok {
					relSeen[dk] = struct{}{}
					st.Distinct++
				}
				ents := relEnt[pid]
				if ents == nil {
					ents = make(map[EntityID]struct{})
					relEnt[pid] = ents
				}
				ents[subj] = struct{}{}
			} else {
				// Dangling URI: treated as an attribute value carrying the
				// local name as its lexical form (the paper's bag-of-strings
				// view keeps such evidence).
				kb.addAttr(subj, pid, localName(t.Object.Value), attrSeen, attrEnt, distinctKey{pid, okey})
			}
		}
	}

	for pid, ents := range attrEnt {
		kb.attrStats[pid].Entities = len(ents)
	}
	for pid, ents := range relEnt {
		kb.relStats[pid].Entities = len(ents)
	}
	// A predicate used with both literal and entity objects keeps both
	// roles; importance is computed independently per role.
	n := float64(len(kb.entities))
	for _, st := range kb.attrStats {
		st.Importance = importance(st, n)
	}
	for _, st := range kb.relStats {
		st.Importance = importance(st, n)
	}

	// Pass 3: token bags and entity frequencies.
	for i := range kb.entities {
		e := &kb.entities[i]
		values := make([]string, len(e.Attrs))
		for j, av := range e.Attrs {
			values[j] = av.Value
		}
		toks := tokenize.Unique(tokenize.TokensOfAll(values, b.opts))
		sort.Strings(toks)
		e.Tokens = toks
		kb.totalTokens += len(toks)
		for _, tok := range toks {
			kb.ef[tok]++
		}
	}
	return kb, nil
}

// distinctKey identifies one (predicate, object) pair for counting the
// distinct objects of a predicate.
type distinctKey struct {
	pred int32
	obj  string
}

func (kb *KB) addAttr(subj EntityID, pid int32, value string, seen map[distinctKey]struct{}, perEnt map[int32]map[EntityID]struct{}, dk distinctKey) {
	kb.entities[subj].Attrs = append(kb.entities[subj].Attrs, AttrValue{Pred: pid, Value: value})
	st := kb.statFor(kb.attrStats, pid)
	if _, ok := seen[dk]; !ok {
		seen[dk] = struct{}{}
		st.Distinct++
	}
	ents := perEnt[pid]
	if ents == nil {
		ents = make(map[EntityID]struct{})
		perEnt[pid] = ents
	}
	ents[subj] = struct{}{}
}

func (kb *KB) statFor(m map[int32]*PredStat, pid int32) *PredStat {
	st := m[pid]
	if st == nil {
		st = &PredStat{Pred: pid}
		m[pid] = st
	}
	return st
}

func (kb *KB) internPred(name string) int32 {
	if id, ok := kb.predIndex[name]; ok {
		return id
	}
	id := int32(len(kb.preds))
	kb.preds = append(kb.preds, name)
	kb.predIndex[name] = id
	return id
}

// importance is the harmonic mean of support and discriminability
// (paper §III, H1): support = |entities with p| / |E|,
// discriminability = |distinct objects of p| / |entities with p|.
func importance(st *PredStat, numEntities float64) float64 {
	if st.Entities == 0 || numEntities == 0 {
		return 0
	}
	support := float64(st.Entities) / numEntities
	discr := float64(st.Distinct) / float64(st.Entities)
	if support+discr == 0 {
		return 0
	}
	return 2 * support * discr / (support + discr)
}

func subjectKey(t rdf.Term) string {
	if t.IsBlank() {
		return "_:" + t.Value
	}
	return t.Value
}

func termLess(a, b rdf.Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.Lang != b.Lang {
		return a.Lang < b.Lang
	}
	return a.Datatype < b.Datatype
}

// namespaceOf returns the predicate's vocabulary namespace: everything up
// to and including the last '#' or '/'.
func namespaceOf(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 {
		return iri[:i+1]
	}
	return iri
}

// localName returns the fragment of an IRI after the last '#' or '/',
// used to salvage tokens from dangling URI objects.
func localName(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

// FromTriples is a convenience constructor: builds a KB directly from a
// triple slice.
func FromTriples(name string, ts []rdf.Triple) (*KB, error) {
	b := NewBuilder(name)
	if err := b.AddAll(ts); err != nil {
		return nil, err
	}
	return b.Build()
}

// String summarizes the KB for diagnostics.
func (kb *KB) String() string {
	return fmt.Sprintf("KB(%s: %d entities, %d triples, %d attrs, %d rels, %d types)",
		kb.name, kb.Len(), kb.numTriples, kb.NumAttributes(), kb.NumRelations(), kb.NumTypes())
}
