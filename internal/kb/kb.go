// Package kb assembles raw RDF triples into the Knowledge Base substrate
// MinoanER matches against: per-entity descriptions (bags of tokens,
// attribute-value pairs, neighbor links) plus the dataset statistics the
// paper derives all matching evidence from — attribute/relation
// importance and token entity-frequencies.
//
// Terminology follows the paper:
//
//   - An entity is any URI (or blank node) that appears as the subject of
//     at least one triple.
//   - A predicate whose objects are literals (or URIs that do not denote
//     an entity of this KB) is an attribute.
//   - A predicate whose objects are entities of the same KB is a
//     relation; relations induce the entity graph used for neighbor
//     evidence.
//   - rdf:type triples are tracked separately (they define the "types"
//     column of Table I) and contribute neither attribute tokens nor
//     relations.
package kb

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"minoaner/internal/parallel"
	"minoaner/internal/rdf"
	"minoaner/internal/tokenize"
)

// RDFType is the predicate IRI that declares an entity's type.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// EntityID indexes an entity within one KB.
type EntityID int32

// AttrValue is one attribute-value pair of a description.
type AttrValue struct {
	Pred  int32  // predicate ID within the KB's dictionary
	Value string // literal lexical form (or dangling-URI local name)
}

// Edge is one relation edge of the entity graph.
type Edge struct {
	Pred   int32    // relation ID within the KB's dictionary
	Target EntityID // the neighboring entity
}

// Entity is one fully assembled description.
type Entity struct {
	URI    string
	Attrs  []AttrValue
	Out    []Edge   // edges where this entity is the subject
	In     []Edge   // edges where this entity is the object
	Types  []string // rdf:type object IRIs
	Tokens []string // distinct lowercase tokens of all attribute values
}

// KB is an immutable knowledge base. Build one with a Builder.
type KB struct {
	name     string
	entities []Entity
	uriIndex map[string]EntityID

	preds     []string         // predicate dictionary
	predIndex map[string]int32 // reverse dictionary

	ef map[string]int32 // token -> number of entities containing it

	attrStats map[int32]*PredStat // literal-valued predicates
	relStats  map[int32]*PredStat // entity-valued predicates

	numTriples  int
	totalTokens int // sum over entities of len(Tokens)
	typeSet     map[string]struct{}
	vocabSet    map[string]struct{}

	// src retains the interned source triples the KB was assembled
	// from (see Sources). Non-nil only for KBs built with source
	// retention; it is what makes a KB mutable through a Store.
	src *Sources

	// lazy is the undecoded remainder of a mapped image (see
	// OpenBinary). Nil for built or eagerly loaded KBs. It stays set
	// after materialization — the sync.Once inside is what records
	// that the decode already happened.
	lazy *kbLazy
}

// PredStat aggregates the statistics the paper's importance metric needs
// for one predicate (attribute or relation).
type PredStat struct {
	Pred       int32
	Entities   int     // number of entities whose description contains the predicate (support count)
	Distinct   int     // number of distinct objects associated with the predicate
	Importance float64 // harmonic mean of support and discriminability
}

// Name returns the KB's display name.
func (kb *KB) Name() string { return kb.name }

// Len returns the number of entities.
func (kb *KB) Len() int { return len(kb.entities) }

// NumTriples returns the number of triples consumed by the builder
// (after deduplication).
func (kb *KB) NumTriples() int { return kb.numTriples }

// Entity returns the description with the given ID.
//
// Like every accessor below that reaches past the URI tier, it forces
// the full tier of a mapped KB on first use (a nil check otherwise);
// decode failures surface through the fallible entry points
// (Materialize, and the index's query/save/mutate paths), while the
// infallible accessors degrade to zero values.
func (kb *KB) Entity(id EntityID) *Entity {
	kb.materialize()
	return &kb.entities[id]
}

// Lookup resolves a URI to its entity ID.
func (kb *KB) Lookup(uri string) (EntityID, bool) {
	id, ok := kb.uriIndex[uri]
	return id, ok
}

// URI returns the URI of an entity.
func (kb *KB) URI(id EntityID) string { return kb.entities[id].URI }

// Pred returns the predicate name for a dictionary ID.
func (kb *KB) Pred(id int32) string {
	kb.materialize()
	return kb.preds[id]
}

// PredID resolves a predicate name to its dictionary ID.
func (kb *KB) PredID(name string) (int32, bool) {
	kb.materialize()
	id, ok := kb.predIndex[name]
	return id, ok
}

// EF returns the entity frequency of a token: the number of entities of
// this KB whose values contain it. Unknown tokens have frequency 0.
func (kb *KB) EF(token string) int {
	kb.materialize()
	return int(kb.ef[token])
}

// Tokens returns the distinct tokens of an entity's values.
func (kb *KB) Tokens(id EntityID) []string {
	kb.materialize()
	return kb.entities[id].Tokens
}

// AvgTokens returns the mean number of distinct tokens per entity
// (the "av. tokens" row of Table I).
func (kb *KB) AvgTokens() float64 {
	kb.materialize()
	if len(kb.entities) == 0 {
		return 0
	}
	return float64(kb.totalTokens) / float64(len(kb.entities))
}

// NumAttributes returns the number of distinct attribute predicates.
func (kb *KB) NumAttributes() int {
	kb.materialize()
	return len(kb.attrStats)
}

// NumRelations returns the number of distinct relation predicates.
func (kb *KB) NumRelations() int {
	kb.materialize()
	return len(kb.relStats)
}

// NumTypes returns the number of distinct rdf:type objects.
func (kb *KB) NumTypes() int {
	kb.materialize()
	return len(kb.typeSet)
}

// NumVocabularies returns the number of distinct predicate namespaces
// (the prefix up to the last '#' or '/').
func (kb *KB) NumVocabularies() int {
	kb.materialize()
	return len(kb.vocabSet)
}

// AttrStat returns the statistics of an attribute predicate, or nil.
func (kb *KB) AttrStat(pred int32) *PredStat {
	kb.materialize()
	return kb.attrStats[pred]
}

// RelStat returns the statistics of a relation predicate, or nil.
func (kb *KB) RelStat(pred int32) *PredStat {
	kb.materialize()
	return kb.relStats[pred]
}

// AttrStats returns all attribute statistics sorted by descending
// importance, ties broken by predicate name for determinism.
func (kb *KB) AttrStats() []*PredStat { return kb.sortedStats(kb.attrStats) }

// RelStats returns all relation statistics sorted by descending
// importance, ties broken by predicate name.
func (kb *KB) RelStats() []*PredStat { return kb.sortedStats(kb.relStats) }

func (kb *KB) sortedStats(m map[int32]*PredStat) []*PredStat {
	kb.materialize()
	out := make([]*PredStat, 0, len(m))
	for _, st := range m {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Importance != out[j].Importance {
			return out[i].Importance > out[j].Importance
		}
		return kb.preds[out[i].Pred] < kb.preds[out[j].Pred]
	})
	return out
}

// Builder accumulates triples and produces an immutable KB.
//
// Storage is term-interned: every distinct rdf.Term is stored once and
// each recorded triple is three int32 references, which keeps large Web
// crawls (whose URIs and literals repeat heavily) far below the cost of
// holding full triples. Duplicates are removed by a sort+compact pass
// at Build time (consecutive duplicates are dropped eagerly on Add).
type Builder struct {
	name        string
	opts        tokenize.Options
	workers     int
	keepSources bool

	termIndex map[rdf.Term]int32
	terms     []rdf.Term
	triples   []tripleRef
}

// tripleRef is one recorded triple as indices into the term table.
type tripleRef struct{ s, p, o int32 }

// NewBuilder returns a Builder for a KB with the given display name,
// tokenizing with tokenize.DefaultOptions. Built KBs retain their
// interned source triples (the substrate of live mutation, see Store);
// disable with SetKeepSources(false) for memory-lean ingest.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, termIndex: make(map[rdf.Term]int32), keepSources: true}
}

// SetKeepSources controls whether Build retains the interned source
// triples on the KB. Retention roughly doubles the KB's memory
// footprint but is required for mutating the KB through a Store (and
// for persisting a mutable KB: WriteBinary includes the sources
// section only when they are retained).
func (b *Builder) SetKeepSources(keep bool) { b.keepSources = keep }

// SetTokenizeOptions overrides the tokenizer configuration.
func (b *Builder) SetTokenizeOptions(opts tokenize.Options) { b.opts = opts }

// SetWorkers bounds the goroutines Build uses for its parallel passes.
// Values <= 0 select GOMAXPROCS. The built KB is bit-identical at any
// setting.
func (b *Builder) SetWorkers(n int) { b.workers = n }

// Add records one triple. Duplicates are ignored. Invalid triples are
// rejected.
func (b *Builder) Add(t rdf.Triple) error {
	if err := t.Validate(); err != nil {
		return err
	}
	ref := tripleRef{s: b.intern(t.Subject), p: b.intern(t.Predicate), o: b.intern(t.Object)}
	if n := len(b.triples); n > 0 && b.triples[n-1] == ref {
		return nil // cheap eager dedup of consecutive duplicates
	}
	b.triples = append(b.triples, ref)
	return nil
}

func (b *Builder) intern(t rdf.Term) int32 {
	if id, ok := b.termIndex[t]; ok {
		return id
	}
	id := int32(len(b.terms))
	b.terms = append(b.terms, t)
	b.termIndex[t] = id
	return id
}

// AddAll records a batch of triples, stopping at the first invalid one.
func (b *Builder) AddAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := b.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// AddFromReader streams an N-Triples document into the builder without
// materializing a triple slice: each parsed triple is interned
// immediately. Parsing is strict; use AddFromRDFReader with a lenient
// rdf.Reader to skip malformed lines.
func (b *Builder) AddFromReader(r io.Reader) error {
	return b.AddFromRDFReaderContext(context.Background(), rdf.NewReader(r))
}

// AddFromRDFReader drains a caller-configured rdf.Reader (e.g. one in
// lenient mode) into the builder.
func (b *Builder) AddFromRDFReader(rr *rdf.Reader) error {
	return b.AddFromRDFReaderContext(context.Background(), rr)
}

// ingestCancelStride is how many triples are ingested between context
// checks in AddFromRDFReaderContext.
const ingestCancelStride = 4096

// AddFromRDFReaderContext drains an rdf.Reader under a context,
// checking for cancellation every few thousand triples.
func (b *Builder) AddFromRDFReaderContext(ctx context.Context, rr *rdf.Reader) error {
	for n := 0; ; n++ {
		if n%ingestCancelStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		t, err := rr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := b.Add(t); err != nil {
			return err
		}
	}
}

// Len returns the number of triples recorded so far. Non-consecutive
// duplicates are only removed at Build time, so this is an upper bound
// on the distinct count.
func (b *Builder) Len() int { return len(b.triples) }

// refLess orders triple references by (subject, predicate, object)
// under termLess. Distinct term IDs always denote distinct terms, so
// this is a strict order with equal triples exactly at equal refs.
func (b *Builder) refLess(x, y tripleRef) bool {
	return refLessIn(b.terms, x, y)
}

// refLessIn is refLess over an explicit term table (shared with Store).
func refLessIn(terms []rdf.Term, x, y tripleRef) bool {
	if x.s != y.s {
		return termLess(terms[x.s], terms[y.s])
	}
	if x.p != y.p {
		return termLess(terms[x.p], terms[y.p])
	}
	if x.o != y.o {
		return termLess(terms[x.o], terms[y.o])
	}
	return false
}

// Build assembles the KB. The builder may be reused afterwards.
func (b *Builder) Build() (*KB, error) {
	workers := parallel.Workers(b.workers)

	// Deterministic assembly independent of insertion order: sort all
	// recorded refs (parallel chunk sort + merge), then compact exact
	// duplicates, which replaces the full-triple dedup map.
	refs := make([]tripleRef, len(b.triples))
	copy(refs, b.triples)
	b.sortRefs(refs, workers)
	j := 0
	for i := range refs {
		if i > 0 && refs[i] == refs[i-1] {
			continue
		}
		refs[j] = refs[i]
		j++
	}
	refs = refs[:j:j]

	kb := assembleKB(b.name, b.opts, workers, b.terms, refs, nil)
	if b.keepSources {
		// Clip the term table so later builder appends cannot write
		// into the retained slice's spare capacity.
		kb.src = &Sources{opts: b.opts, terms: b.terms[:len(b.terms):len(b.terms)], refs: refs}
	}
	return kb, nil
}

// assembleKB runs the deterministic assembly passes over a sorted,
// deduplicated ref slice: pass 1 creates entities in sorted-subject
// order, pass 2 classifies objects and fills descriptions and
// statistics, pass 3 tokenizes values and counts entity frequencies.
// The result depends only on (terms-resolved) refs and opts — never on
// how the refs were accumulated — which is what makes incremental
// rebuilds (Store.Assemble) bit-identical to from-scratch builds.
//
// prev, when non-nil, is the previous assembly of an overlapping ref
// set: entities whose attribute values are unchanged reuse its token
// bags, and the EF table is derived from prev's by delta instead of a
// full recount. Both shortcuts reproduce the from-scratch result
// exactly (token bags depend only on the value list; EF is a pure
// multiset count).
func assembleKB(name string, opts tokenize.Options, workers int, terms []rdf.Term, refs []tripleRef, prev *KB) *KB {
	kb := &KB{
		name:       name,
		uriIndex:   make(map[string]EntityID),
		predIndex:  make(map[string]int32),
		ef:         make(map[string]int32),
		attrStats:  make(map[int32]*PredStat),
		relStats:   make(map[int32]*PredStat),
		typeSet:    make(map[string]struct{}),
		vocabSet:   make(map[string]struct{}),
		numTriples: len(refs),
	}

	// Subject keys are needed once per distinct term; cache them so the
	// two sequential passes do not re-derive (or re-allocate, for blank
	// nodes) them per triple.
	skey := make([]string, len(terms))
	subjectKeyOf := func(id int32) string {
		if skey[id] == "" {
			skey[id] = SubjectKey(terms[id])
		}
		return skey[id]
	}

	// Pass 1: every subject becomes an entity, in sorted order.
	for _, ref := range refs {
		key := subjectKeyOf(ref.s)
		if _, ok := kb.uriIndex[key]; !ok {
			kb.uriIndex[key] = EntityID(len(kb.entities))
			kb.entities = append(kb.entities, Entity{URI: key})
		}
	}

	// Pass 2: classify objects, fill descriptions.
	attrSeen := make(map[distinctKey]struct{})
	relSeen := make(map[distinctKey]struct{})
	attrEnt := make(map[int32]map[EntityID]struct{})
	relEnt := make(map[int32]map[EntityID]struct{})

	for _, ref := range refs {
		subj := kb.uriIndex[subjectKeyOf(ref.s)]
		obj := terms[ref.o]
		pname := terms[ref.p].Value
		kb.vocabSet[namespaceOf(pname)] = struct{}{}

		if pname == RDFType && obj.IsIRI() {
			kb.entities[subj].Types = append(kb.entities[subj].Types, obj.Value)
			kb.typeSet[obj.Value] = struct{}{}
			continue
		}

		pid := kb.internPred(pname)
		switch {
		case obj.IsLiteral():
			kb.addAttr(subj, pid, obj.Value, attrSeen, attrEnt, distinctKey{pid, obj.Value})
		default: // IRI or blank object
			okey := subjectKeyOf(ref.o)
			if tgt, ok := kb.uriIndex[okey]; ok {
				// Relation edge within the entity graph.
				kb.entities[subj].Out = append(kb.entities[subj].Out, Edge{Pred: pid, Target: tgt})
				kb.entities[tgt].In = append(kb.entities[tgt].In, Edge{Pred: pid, Target: subj})
				st := kb.statFor(kb.relStats, pid)
				dk := distinctKey{pid, okey}
				if _, ok := relSeen[dk]; !ok {
					relSeen[dk] = struct{}{}
					st.Distinct++
				}
				ents := relEnt[pid]
				if ents == nil {
					ents = make(map[EntityID]struct{})
					relEnt[pid] = ents
				}
				ents[subj] = struct{}{}
			} else {
				// Dangling URI: treated as an attribute value carrying the
				// local name as its lexical form (the paper's bag-of-strings
				// view keeps such evidence). Values without a local name
				// (IRIs ending in '/' or '#') carry no evidence and are
				// dropped by addAttr.
				kb.addAttr(subj, pid, localName(obj.Value), attrSeen, attrEnt, distinctKey{pid, okey})
			}
		}
	}

	for pid, ents := range attrEnt {
		kb.attrStats[pid].Entities = len(ents)
	}
	for pid, ents := range relEnt {
		kb.relStats[pid].Entities = len(ents)
	}
	// A predicate used with both literal and entity objects keeps both
	// roles; importance is computed independently per role.
	n := float64(len(kb.entities))
	for _, st := range kb.attrStats {
		st.Importance = importance(st, n)
	}
	for _, st := range kb.relStats {
		st.Importance = importance(st, n)
	}

	finishTokens(kb, opts, workers, prev)
	return kb
}

// finishTokens is assembly pass 3: token bags and entity frequencies,
// in parallel. Each worker tokenizes a contiguous entity range into a
// private EF map; the merged sums are independent of merge order, so
// the result is bit-identical at any worker count.
func finishTokens(kb *KB, opts tokenize.Options, workers int, prev *KB) {
	if prev == nil {
		type efShard struct {
			ef    map[string]int32
			total int
		}
		shards := make([]efShard, workers)
		_ = parallel.For(context.Background(), len(kb.entities), workers, func(worker, start, end int) error {
			ef := make(map[string]int32)
			total := 0
			for i := start; i < end; i++ {
				tokenizeEntity(&kb.entities[i], opts)
				toks := kb.entities[i].Tokens
				total += len(toks)
				for _, tok := range toks {
					ef[tok]++
				}
			}
			shards[worker] = efShard{ef: ef, total: total}
			return nil
		})
		for _, sh := range shards {
			kb.totalTokens += sh.total
			for tok, c := range sh.ef {
				kb.ef[tok] += c
			}
		}
		return
	}

	// Incremental pass 3: entities whose attribute values survive
	// unchanged share the previous token bags; only genuinely changed
	// descriptions are re-tokenized, and EF is prev's table plus the
	// delta of the changed/removed bags.
	reused := make([]bool, prev.Len())
	var fresh []int32
	for i := range kb.entities {
		e := &kb.entities[i]
		if pid, ok := prev.uriIndex[e.URI]; ok && sameAttrValues(prev.entities[pid].Attrs, e.Attrs) {
			e.Tokens = prev.entities[pid].Tokens
			reused[pid] = true
			continue
		}
		fresh = append(fresh, int32(i))
	}
	_ = parallel.For(context.Background(), len(fresh), workers, func(_, start, end int) error {
		for _, i := range fresh[start:end] {
			tokenizeEntity(&kb.entities[i], opts)
		}
		return nil
	})
	kb.ef = make(map[string]int32, len(prev.ef))
	for tok, c := range prev.ef {
		kb.ef[tok] = c
	}
	kb.totalTokens = prev.totalTokens
	for pid := range prev.entities {
		if reused[pid] {
			continue
		}
		toks := prev.entities[pid].Tokens
		kb.totalTokens -= len(toks)
		for _, tok := range toks {
			if kb.ef[tok]--; kb.ef[tok] == 0 {
				delete(kb.ef, tok)
			}
		}
	}
	for _, i := range fresh {
		toks := kb.entities[i].Tokens
		kb.totalTokens += len(toks)
		for _, tok := range toks {
			kb.ef[tok]++
		}
	}
}

// tokenizeEntity derives an entity's sorted distinct token bag from its
// attribute values.
func tokenizeEntity(e *Entity, opts tokenize.Options) {
	values := make([]string, len(e.Attrs))
	for j, av := range e.Attrs {
		values[j] = av.Value
	}
	toks := tokenize.Unique(tokenize.TokensOfAll(values, opts))
	sort.Strings(toks)
	e.Tokens = toks
}

// sameAttrValues reports whether two attribute lists carry the same
// values in the same order — the exact condition under which the
// derived token bag is unchanged (tokens depend only on values).
func sameAttrValues(a, b []AttrValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Value != b[i].Value {
			return false
		}
	}
	return true
}

// sortRefs sorts triple refs with a parallel chunk sort followed by
// bottom-up pairwise merges. Equal elements are identical tripleRef
// values, so merge order cannot affect the result.
func (b *Builder) sortRefs(refs []tripleRef, workers int) {
	n := len(refs)
	const minParallelSort = 1 << 14
	if workers <= 1 || n < minParallelSort {
		sort.Slice(refs, func(i, j int) bool { return b.refLess(refs[i], refs[j]) })
		return
	}
	width := (n + workers - 1) / workers
	_ = parallel.For(context.Background(), workers, workers, func(w, _, _ int) error {
		lo := w * width
		if lo >= n {
			return nil
		}
		hi := lo + width
		if hi > n {
			hi = n
		}
		chunk := refs[lo:hi]
		sort.Slice(chunk, func(i, j int) bool { return b.refLess(chunk[i], chunk[j]) })
		return nil
	})
	src, dst := refs, make([]tripleRef, n)
	for ; width < n; width *= 2 {
		pairs := (n + 2*width - 1) / (2 * width)
		_ = parallel.For(context.Background(), pairs, workers, func(_, start, end int) error {
			for p := start; p < end; p++ {
				lo := p * 2 * width
				mid, hi := lo+width, lo+2*width
				if mid > n {
					mid = n
				}
				if hi > n {
					hi = n
				}
				b.mergeRefs(dst[lo:hi], src[lo:mid], src[mid:hi])
			}
			return nil
		})
		src, dst = dst, src
	}
	if &src[0] != &refs[0] {
		copy(refs, src)
	}
}

// mergeRefs merges two sorted runs into out (len(out) == len(a)+len(c)).
func (b *Builder) mergeRefs(out, a, c []tripleRef) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(c) {
		if b.refLess(c[j], a[i]) {
			out[k] = c[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], c[j:])
}

// distinctKey identifies one (predicate, object) pair for counting the
// distinct objects of a predicate.
type distinctKey struct {
	pred int32
	obj  string
}

func (kb *KB) addAttr(subj EntityID, pid int32, value string, seen map[distinctKey]struct{}, perEnt map[int32]map[EntityID]struct{}, dk distinctKey) {
	if value == "" {
		// Empty lexical forms (empty literals, or dangling IRIs with no
		// local name) carry no matching evidence; recording them would
		// only distort attribute statistics and token bags.
		return
	}
	kb.entities[subj].Attrs = append(kb.entities[subj].Attrs, AttrValue{Pred: pid, Value: value})
	st := kb.statFor(kb.attrStats, pid)
	if _, ok := seen[dk]; !ok {
		seen[dk] = struct{}{}
		st.Distinct++
	}
	ents := perEnt[pid]
	if ents == nil {
		ents = make(map[EntityID]struct{})
		perEnt[pid] = ents
	}
	ents[subj] = struct{}{}
}

func (kb *KB) statFor(m map[int32]*PredStat, pid int32) *PredStat {
	st := m[pid]
	if st == nil {
		st = &PredStat{Pred: pid}
		m[pid] = st
	}
	return st
}

func (kb *KB) internPred(name string) int32 {
	if id, ok := kb.predIndex[name]; ok {
		return id
	}
	id := int32(len(kb.preds))
	kb.preds = append(kb.preds, name)
	kb.predIndex[name] = id
	return id
}

// importance is the harmonic mean of support and discriminability
// (paper §III, H1): support = |entities with p| / |E|,
// discriminability = |distinct objects of p| / |entities with p|.
func importance(st *PredStat, numEntities float64) float64 {
	if st.Entities == 0 || numEntities == 0 {
		return 0
	}
	support := float64(st.Entities) / numEntities
	discr := float64(st.Distinct) / float64(st.Entities)
	if support+discr == 0 {
		return 0
	}
	return 2 * support * discr / (support + discr)
}

// SubjectKey returns the entity key a term produces when it appears in
// subject position: the IRI itself, or "_:"-prefixed for blank nodes.
// It is the key Lookup resolves, letting callers slice triple sets by
// entity without rebuilding a KB.
func SubjectKey(t rdf.Term) string {
	if t.IsBlank() {
		return "_:" + t.Value
	}
	return t.Value
}

func termLess(a, b rdf.Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.Lang != b.Lang {
		return a.Lang < b.Lang
	}
	return a.Datatype < b.Datatype
}

// namespaceOf returns the predicate's vocabulary namespace: everything up
// to and including the last '#' or '/'.
func namespaceOf(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 {
		return iri[:i+1]
	}
	return iri
}

// localName returns the fragment of an IRI after the last '#' or '/',
// used to salvage tokens from dangling URI objects. An IRI ending in
// its separator (e.g. "http://ex.org/") has no local name and yields
// "": returning the whole IRI there would flood token bags with URL
// fragments ("http", "ex", "org").
func localName(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 {
		return iri[i+1:]
	}
	return iri
}

// FromTriples is a convenience constructor: builds a KB directly from a
// triple slice.
func FromTriples(name string, ts []rdf.Triple) (*KB, error) {
	b := NewBuilder(name)
	if err := b.AddAll(ts); err != nil {
		return nil, err
	}
	return b.Build()
}

// FromTriplesSubset builds a KB from the triples whose subject key
// (SubjectKey) is one of the given URIs — the standard way to slice a
// delta out of a larger triple set. It returns the KB and the number
// of triples selected.
func FromTriplesSubset(name string, ts []rdf.Triple, subjects []string) (*KB, int, error) {
	want := make(map[string]bool, len(subjects))
	for _, u := range subjects {
		want[u] = true
	}
	b := NewBuilder(name)
	selected := 0
	for _, t := range ts {
		if !want[SubjectKey(t.Subject)] {
			continue
		}
		if err := b.Add(t); err != nil {
			return nil, selected, err
		}
		selected++
	}
	built, err := b.Build()
	return built, selected, err
}

// String summarizes the KB for diagnostics.
func (kb *KB) String() string {
	return fmt.Sprintf("KB(%s: %d entities, %d triples, %d attrs, %d rels, %d types)",
		kb.name, kb.Len(), kb.numTriples, kb.NumAttributes(), kb.NumRelations(), kb.NumTypes())
}
