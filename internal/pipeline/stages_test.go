package pipeline

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func testParams() Params {
	return Params{K: 15, N: 3, NameK: 2, Theta: 0.6, Purge: blocking.DefaultPurgeConfig()}
}

// testKBs builds two linked KBs large enough that every stage has real
// work: paired entities share a distinctive name and a chain relation.
func testKBs(t testing.TB, n int) (*kb.KB, *kb.KB) {
	t.Helper()
	var t1, t2 []rdf.Triple
	add := func(ts *[]rdf.Triple, s, p string, o rdf.Term) {
		*ts = append(*ts, rdf.NewTriple(rdf.NewIRI(s), rdf.NewIRI(p), o))
	}
	for i := 0; i < n; i++ {
		s1 := fmt.Sprintf("http://a/e%04d", i)
		s2 := fmt.Sprintf("http://b/e%04d", i)
		name := fmt.Sprintf("entity number %04d omega", i)
		add(&t1, s1, "http://v/name", rdf.NewLiteral(name))
		add(&t2, s2, "http://v/title", rdf.NewLiteral(name))
		if i > 0 {
			add(&t1, s1, "http://v/link", rdf.NewIRI(fmt.Sprintf("http://a/e%04d", i-1)))
			add(&t2, s2, "http://v/rel", rdf.NewIRI(fmt.Sprintf("http://b/e%04d", i-1)))
		}
	}
	kb1, err := kb.FromTriples("a", t1)
	if err != nil {
		t.Fatal(err)
	}
	kb2, err := kb.FromTriples("b", t2)
	if err != nil {
		t.Fatal(err)
	}
	return kb1, kb2
}

func runPlan(t testing.TB, plan []Stage, st *State) *State {
	t.Helper()
	if _, err := (&Engine{Plan: plan}).Run(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDefaultPlanDeterministicAcrossWorkers(t *testing.T) {
	kb1, kb2 := testKBs(t, 120)
	var base *State
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		p := testParams()
		p.Workers = workers
		st := runPlan(t, DefaultPlan(), NewState(kb1, kb2, p))
		if len(st.Matches) == 0 {
			t.Fatalf("workers=%d: no matches", workers)
		}
		if base == nil {
			base = st
			continue
		}
		if !reflect.DeepEqual(st.Matches, base.Matches) {
			t.Errorf("workers=%d changed Matches", workers)
		}
		if !reflect.DeepEqual(st.H1, base.H1) || !reflect.DeepEqual(st.H2, base.H2) || !reflect.DeepEqual(st.H3, base.H3) {
			t.Errorf("workers=%d changed per-heuristic pairs", workers)
		}
	}
}

// TestCancellationMidStage cancels the context while the value
// candidate stage is running and verifies the engine surfaces ctx.Err()
// without completing the plan.
func TestCancellationMidStage(t *testing.T) {
	kb1, kb2 := testKBs(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	st := NewState(kb1, kb2, testParams())
	eng := Engine{
		Plan: DefaultPlan(),
		Progress: func(ev ProgressEvent) {
			if ev.Stage == StageValueCandidates && !ev.Done {
				cancel()
			}
		},
	}
	stats, err := eng.Run(ctx, st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats != nil {
		t.Error("stats returned despite cancellation")
	}
	if st.Matches != nil || st.unionDone {
		t.Error("cancelled run produced matches")
	}
}

func TestParallelStagesReturnContextError(t *testing.T) {
	kb1, kb2 := testKBs(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the parallel loops must notice
	st := NewState(kb1, kb2, testParams())
	prefix := Until(DefaultPlan(), StageTokenWeighting)
	if _, err := (&Engine{Plan: prefix}).Run(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []Stage{ValueCandidates()} {
		if err := stage.Run(ctx, st); !errors.Is(err, context.Canceled) {
			t.Errorf("stage %q: err = %v, want context.Canceled", stage.Name(), err)
		}
	}
}

// TestKeepAllBlocksMatchesNoPurgeConfig: the stage replacement and the
// NoPurge parameterization are two spellings of the same ablation.
func TestKeepAllBlocksMatchesNoPurgeConfig(t *testing.T) {
	kb1, kb2 := testKBs(t, 80)

	replaced := runPlan(t, Replace(DefaultPlan(), StageBlockPurging, KeepAllBlocks()),
		NewState(kb1, kb2, testParams()))

	p := testParams()
	p.Purge = blocking.NoPurge()
	configured := runPlan(t, DefaultPlan(), NewState(kb1, kb2, p))

	if !reflect.DeepEqual(replaced.Matches, configured.Matches) {
		t.Errorf("KeepAllBlocks diverged from NoPurge config: %d vs %d matches",
			len(replaced.Matches), len(configured.Matches))
	}
	if replaced.TokenBlockCount != configured.TokenBlockCount {
		t.Errorf("block counts differ: %d vs %d", replaced.TokenBlockCount, configured.TokenBlockCount)
	}
	if replaced.PurgeStats.RemovedBlocks != 0 {
		t.Errorf("KeepAllBlocks reported %d removed blocks", replaced.PurgeStats.RemovedBlocks)
	}
}

// TestUnionWithoutReciprocity: dropping H4 leaves the deduplicated
// heuristic union as the final output.
func TestUnionWithoutReciprocity(t *testing.T) {
	kb1, kb2 := testKBs(t, 60)
	st := runPlan(t, Drop(DefaultPlan(), StageReciprocity), NewState(kb1, kb2, testParams()))
	if st.DiscardedByH4 != 0 {
		t.Errorf("H4 ran despite being dropped: %d discards", st.DiscardedByH4)
	}
	union := map[any]struct{}{}
	for _, p := range st.H1 {
		union[p] = struct{}{}
	}
	for _, p := range st.H2 {
		union[p] = struct{}{}
	}
	for _, p := range st.H3 {
		union[p] = struct{}{}
	}
	if len(st.Matches) != len(union) {
		t.Errorf("Matches = %d pairs, union = %d", len(st.Matches), len(union))
	}
}

func TestBlockingPrefixForNewWorkloads(t *testing.T) {
	// A truncated plan exposes the purged token collection without
	// matching — the reuse progressive scheduling builds on.
	kb1, kb2 := testKBs(t, 60)
	st := runPlan(t, Until(DefaultPlan(), StageBlockPurging), NewState(kb1, kb2, testParams()))
	if st.TokenBlocks == nil {
		t.Fatal("blocking prefix left no token collection")
	}
	if st.TokenIndex != nil {
		t.Error("blocking prefix paid for the entity index it does not use")
	}
	if st.ValueCands1 != nil || st.Matches != nil {
		t.Error("blocking prefix ran matching stages")
	}
}
