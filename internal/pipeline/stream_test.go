package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"minoaner/internal/eval"
)

// drainStream runs an unbudgeted stream and returns the emitted pairs
// in emission order.
func drainStream(t testing.TB, st *State, cfg StreamConfig) []ScoredPair {
	t.Helper()
	var out []ScoredPair
	err := RunStream(context.Background(), st, cfg, func(sp ScoredPair) bool {
		out = append(out, sp)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// batchMatches runs the default batch plan with the given stages
// dropped and returns the match set.
func batchMatches(t testing.TB, st *State, drop ...string) []eval.Pair {
	t.Helper()
	plan := DefaultPlan()
	for _, name := range drop {
		plan = Drop(plan, name)
	}
	runPlan(t, plan, st)
	return st.Matches
}

func sortedStreamPairs(stream []ScoredPair) []eval.Pair {
	out := make([]eval.Pair, len(stream))
	for i, sp := range stream {
		out[i] = sp.Pair
	}
	eval.SortPairs(out)
	return out
}

func TestStreamDrainMatchesBatchBothStrategies(t *testing.T) {
	kb1, kb2 := testKBs(t, 150)
	want := batchMatches(t, NewState(kb1, kb2, testParams()))
	if len(want) == 0 {
		t.Fatal("batch run produced no matches; the fixture is too small")
	}
	for _, strategy := range []StreamStrategy{ScheduleWeightOrdered, ScheduleBlockRoundRobin} {
		p := testParams()
		p.Strategy = strategy
		got := drainStream(t, NewState(kb1, kb2, p), StreamConfig{})
		if !reflect.DeepEqual(sortedStreamPairs(got), want) {
			t.Errorf("strategy %d: drained stream (%d pairs) differs from batch matches (%d)",
				strategy, len(got), len(want))
		}
	}
}

func TestStreamDrainMatchesBatchUnderAblations(t *testing.T) {
	kb1, kb2 := testKBs(t, 150)
	cases := []struct {
		name string
		cfg  StreamConfig
		drop []string
	}{
		{"no-h1", StreamConfig{DisableH1: true}, []string{StageNameMatching}},
		{"no-h2", StreamConfig{DisableH2: true}, []string{StageValueMatching}},
		{"no-h3", StreamConfig{DisableH3: true}, []string{StageRankAggregation}},
		{"no-h4", StreamConfig{DisableH4: true}, []string{StageReciprocity}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := batchMatches(t, NewState(kb1, kb2, testParams()), tc.drop...)
			got := drainStream(t, NewState(kb1, kb2, testParams()), tc.cfg)
			if !reflect.DeepEqual(sortedStreamPairs(got), want) {
				t.Errorf("drained stream (%d pairs) differs from batch matches (%d)", len(got), len(want))
			}
		})
	}
}

func TestStreamOrderDeterministicAndNonIncreasing(t *testing.T) {
	kb1, kb2 := testKBs(t, 150)
	for _, strategy := range []StreamStrategy{ScheduleWeightOrdered, ScheduleBlockRoundRobin} {
		p := testParams()
		p.Strategy = strategy
		base := drainStream(t, NewState(kb1, kb2, p), StreamConfig{})
		for i := 1; i < len(base); i++ {
			if base[i].Score > base[i-1].Score {
				t.Fatalf("strategy %d: score increased at %d: %v after %v", strategy, i, base[i], base[i-1])
			}
		}
		for rep := 0; rep < 3; rep++ {
			again := drainStream(t, NewState(kb1, kb2, p), StreamConfig{})
			if !reflect.DeepEqual(again, base) {
				t.Fatalf("strategy %d: emission order changed across runs", strategy)
			}
		}
	}
}

func TestStreamSchedulesArePermutations(t *testing.T) {
	kb1, kb2 := testKBs(t, 120)
	st := NewState(kb1, kb2, testParams())
	plan := Until(DefaultPlan(), StageTokenWeighting)
	runPlan(t, plan, st)
	ev := newStreamEvidence(st)
	for _, strategy := range []StreamStrategy{ScheduleWeightOrdered, ScheduleBlockRoundRobin} {
		sched := ev.schedule(strategy)
		if len(sched) != ev.em.sizeA {
			t.Fatalf("strategy %d: schedule covers %d of %d entities", strategy, len(sched), ev.em.sizeA)
		}
		seen := make([]bool, ev.em.sizeA)
		for _, e := range sched {
			if seen[e] {
				t.Fatalf("strategy %d: entity %d scheduled twice", strategy, e)
			}
			seen[e] = true
		}
	}
}

func TestStreamMaxPairsIsQualityOrderedPrefix(t *testing.T) {
	kb1, kb2 := testKBs(t, 150)
	full := drainStream(t, NewState(kb1, kb2, testParams()), StreamConfig{})
	if len(full) < 4 {
		t.Fatalf("need at least 4 matches, got %d", len(full))
	}
	k := len(full) / 2
	got := drainStream(t, NewState(kb1, kb2, testParams()),
		StreamConfig{Budget: StreamBudget{MaxPairs: k}})
	if !reflect.DeepEqual(got, full[:k]) {
		t.Errorf("MaxPairs=%d did not yield the stream's first %d pairs", k, k)
	}
}

func TestStreamMaxComparisonsDeterministicPrefix(t *testing.T) {
	kb1, kb2 := testKBs(t, 150)
	full := drainStream(t, NewState(kb1, kb2, testParams()), StreamConfig{})
	cfg := StreamConfig{Budget: StreamBudget{MaxComparisons: 40}}
	got := drainStream(t, NewState(kb1, kb2, testParams()), cfg)
	if len(got) >= len(full) {
		t.Fatalf("comparison budget did not truncate the stream (%d pairs of %d)", len(got), len(full))
	}
	if !reflect.DeepEqual(got, full[:len(got)]) {
		t.Error("budgeted stream is not a prefix of the unbudgeted stream")
	}
	again := drainStream(t, NewState(kb1, kb2, testParams()), cfg)
	if !reflect.DeepEqual(again, got) {
		t.Error("comparison budget truncated at a different point across runs")
	}
}

func TestStreamEmitFalseStopsCleanly(t *testing.T) {
	kb1, kb2 := testKBs(t, 120)
	count := 0
	err := RunStream(context.Background(), NewState(kb1, kb2, testParams()), StreamConfig{},
		func(ScoredPair) bool {
			count++
			return count < 2
		})
	if err != nil {
		t.Fatalf("emit returning false should stop with nil error, got %v", err)
	}
	if count != 2 {
		t.Fatalf("expected exactly 2 emit calls, got %d", count)
	}
}

func TestStreamContextCancellation(t *testing.T) {
	kb1, kb2 := testKBs(t, 120)
	ctx, cancel := context.WithCancel(context.Background())
	count := 0
	err := RunStream(ctx, NewState(kb1, kb2, testParams()), StreamConfig{},
		func(ScoredPair) bool {
			count++
			cancel()
			return true
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if count != 1 {
		t.Fatalf("expected the run to stop after the cancelling emit, got %d emits", count)
	}
}
