package pipeline

import (
	"context"
	"errors"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/rdf"
)

// Stage names, usable with Drop, Replace, and Until to edit plans.
const (
	StageIngest             = "ingest"
	StageKBBuild            = "kb-build"
	StageNameBlocking       = "name-blocking"
	StageTokenBlocking      = "token-blocking"
	StageBlockPurging       = "block-purging"
	StageBlockIndexing      = "block-indexing"
	StageTokenWeighting     = "token-weighting"
	StageValueCandidates    = "value-candidates"
	StageNeighborCandidates = "neighbor-candidates"
	StageNameMatching       = "h1-names"
	StageValueMatching      = "h2-values"
	StageRankAggregation    = "h3-rank-aggregation"
	StageUnion              = "union"
	StageReciprocity        = "h4-reciprocity"
)

// DefaultPlan returns the full MinoanER composition,
// M = (H1 ∨ H2 ∨ H3) ∧ H4, as a stage plan. Running it unchanged
// reproduces the monolithic matcher exactly; editing it expresses
// ablations and partial workloads.
func DefaultPlan() []Stage {
	return []Stage{
		NameBlocking(),
		TokenBlocking(),
		BlockPurging(),
		BlockIndexing(),
		TokenWeighting(),
		ValueCandidates(),
		NeighborCandidates(),
		NameMatching(),
		ValueMatching(),
		RankAggregation(),
		Union(),
		Reciprocity(),
	}
}

// IngestPlan returns the ingest prefix — N-Triples parsing and KB
// assembly as instrumented, cancellable stages — to prepend to a
// matching plan when the run starts from raw sources instead of built
// KBs (see NewIngestState).
func IngestPlan() []Stage {
	return []Stage{Ingest(), KBBuild()}
}

// Ingest parses both sources into streaming KB builders, one goroutine
// per source. Lenient sources record their skipped line counts on the
// State.
func Ingest() Stage {
	return newStage(StageIngest, func(ctx context.Context, st *State) error {
		if st.Source1 == nil || st.Source2 == nil {
			return errors.New("requires two sources (build the state with NewIngestState)")
		}
		srcs := [2]*Source{st.Source1, st.Source2}
		var builders [2]*kb.Builder
		var skipped [2]int
		err := parallel.For(ctx, 2, 2, func(_, start, end int) error {
			for i := start; i < end; i++ {
				b := kb.NewBuilder(srcs[i].Name)
				// Batch resolution never mutates its KBs; skip source
				// retention and its ~2x KB memory.
				b.SetKeepSources(false)
				b.SetWorkers(st.Params.workers())
				rr := rdf.NewReader(srcs[i].R)
				rr.SetLenient(srcs[i].Lenient)
				if err := b.AddFromRDFReaderContext(ctx, rr); err != nil {
					return err
				}
				builders[i] = b
				skipped[i] = rr.Skipped()
			}
			return nil
		})
		if err != nil {
			return err
		}
		st.Builder1, st.Builder2 = builders[0], builders[1]
		st.Skipped1, st.Skipped2 = skipped[0], skipped[1]
		return nil
	})
}

// KBBuild assembles the two KBs from the ingested builders (each build
// runs its own internal parallel passes).
func KBBuild() Stage {
	return newStage(StageKBBuild, func(ctx context.Context, st *State) error {
		if st.Builder1 == nil || st.Builder2 == nil {
			return errors.New("requires ingested builders (run " + StageIngest + " first)")
		}
		kb1, err := st.Builder1.Build()
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		kb2, err := st.Builder2.Build()
		if err != nil {
			return err
		}
		st.KB1, st.KB2 = kb1, kb2
		return nil
	})
}

// NameBlocking builds B_N: one block per normalized name key of the
// KBs' most distinctive attributes.
func NameBlocking() Stage {
	return newStage(StageNameBlocking, func(ctx context.Context, st *State) error {
		st.NameBlocks = blocking.NameBlocksN(st.KB1, st.KB2, st.Params.NameK, st.Params.workers())
		st.NameBlockCount = st.NameBlocks.Size()
		st.NameComparisons = st.NameBlocks.Comparisons()
		return nil
	})
}

// TokenBlocking builds the raw B_T: one block per token appearing in
// both KBs.
func TokenBlocking() Stage {
	return newStage(StageTokenBlocking, func(ctx context.Context, st *State) error {
		st.TokenBlocks = blocking.TokenBlocksN(st.KB1, st.KB2, st.Params.workers())
		return nil
	})
}

// BlockPurging removes the stop-word blocks from B_T per
// Params.Purge, then freezes the collection's statistics and index.
func BlockPurging() Stage {
	return newStage(StageBlockPurging, func(ctx context.Context, st *State) error {
		if st.TokenBlocks == nil {
			return errors.New("requires token blocks (run " + StageTokenBlocking + " first)")
		}
		st.TokenBlocks, st.PurgeStats = blocking.Purge(st.TokenBlocks, st.Params.Purge)
		finishTokenBlocks(st)
		return nil
	})
}

// KeepAllBlocks is a drop-in replacement for BlockPurging that keeps
// every token block — the "no purging" ablation as a plan edit:
//
//	plan = Replace(DefaultPlan(), StageBlockPurging, KeepAllBlocks())
func KeepAllBlocks() Stage {
	return newStage(StageBlockPurging, func(ctx context.Context, st *State) error {
		if st.TokenBlocks == nil {
			return errors.New("requires token blocks (run " + StageTokenBlocking + " first)")
		}
		st.PurgeStats = blocking.PurgeResult{}
		finishTokenBlocks(st)
		return nil
	})
}

// finishTokenBlocks records the post-purging statistics of B_T.
func finishTokenBlocks(st *State) {
	st.TokenBlockCount = st.TokenBlocks.Size()
	st.TokenComparisons = st.TokenBlocks.Comparisons()
}

// BlockIndexing builds the entity-to-blocks index of the purged B_T,
// the access path of candidate scoring. It is a separate stage so
// blocking-only prefixes (e.g. progressive scheduling) skip its cost.
func BlockIndexing() Stage {
	return newStage(StageBlockIndexing, func(ctx context.Context, st *State) error {
		if st.TokenBlocks == nil {
			return errors.New("requires token blocks (run " + StageTokenBlocking + " first)")
		}
		st.TokenIndex = st.TokenBlocks.BuildIndexN(st.Params.workers())
		return nil
	})
}

// TokenWeighting assigns every surviving token block its ARCS weight.
func TokenWeighting() Stage {
	return newStage(StageTokenWeighting, func(ctx context.Context, st *State) error {
		if st.TokenBlocks == nil {
			return errors.New("requires token blocks (run " + StageTokenBlocking + " first)")
		}
		st.Weights = tokenWeights(st.TokenBlocks)
		return nil
	})
}

// ValueCandidates computes the top-K value-similarity candidates of
// every entity on both sides, in parallel.
func ValueCandidates() Stage {
	return newStage(StageValueCandidates, func(ctx context.Context, st *State) error {
		if st.TokenIndex == nil {
			return errors.New("requires the token-block index (run " + StageBlockIndexing + " first)")
		}
		if st.Weights == nil {
			return errors.New("requires token weights (run " + StageTokenWeighting + " first)")
		}
		var err error
		st.ValueCands1, st.ValueCands2, err = valueCandidates(
			ctx, st.TokenBlocks, st.TokenIndex, st.Weights, st.Params.K, st.Params.workers())
		return err
	})
}

// NeighborCandidates computes the top-K neighbor-similarity candidates
// of every entity on both sides, in parallel, from the value evidence
// of each entity's best neighbors.
func NeighborCandidates() Stage {
	return newStage(StageNeighborCandidates, func(ctx context.Context, st *State) error {
		if st.ValueCands1 == nil || st.ValueCands2 == nil {
			return errors.New("requires value candidates (run " + StageValueCandidates + " first)")
		}
		var err error
		st.NeighborCands1, st.NeighborCands2, err = neighborCandidates(
			ctx, st.KB1, st.KB2, st.ValueCands1, st.ValueCands2,
			st.Params.N, st.Params.K, st.Params.workers())
		return err
	})
}

// NameMatching emits H1: a name block holding exactly one entity from
// each KB declares a match — the two entities, and only they, share
// that name.
func NameMatching() Stage {
	return newStage(StageNameMatching, func(ctx context.Context, st *State) error {
		if st.NameBlocks == nil {
			return errors.New("requires name blocks (run " + StageNameBlocking + " first)")
		}
		for i := range st.NameBlocks.Blocks {
			b := &st.NameBlocks.Blocks[i]
			if len(b.E1) != 1 || len(b.E2) != 1 {
				continue
			}
			e1, e2 := b.E1[0], b.E2[0]
			if _, taken := st.H1Map1[e1]; taken {
				continue
			}
			if _, taken := st.H1Map2[e2]; taken {
				continue
			}
			st.H1Map1[e1] = e2
			st.H1Map2[e2] = e1
			st.H1 = append(st.H1, eval.Pair{E1: e1, E2: e2})
		}
		return nil
	})
}

// ValueMatching emits H2: a yet-unmatched entity's strongest
// co-occurring candidate wins if the value similarity reaches 1 —
// many common, infrequent tokens.
func ValueMatching() Stage {
	return newStage(StageValueMatching, func(ctx context.Context, st *State) error {
		if !st.haveValueCands() {
			return errors.New("requires value candidates (run " + StageValueCandidates + " first)")
		}
		st.H2TakenA = make(map[kb.EntityID]struct{})
		st.H2TakenB = make(map[kb.EntityID]struct{})
		em := st.emission()
		for e := 0; e < em.sizeA; e++ {
			if e%cancelCheckStride == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			ea := kb.EntityID(e)
			if _, done := em.h1A[ea]; done {
				continue
			}
			best, ok := firstEligible(em.valueA[ea], em.h1B)
			if !ok || best.Sim < 1 {
				continue
			}
			st.H2 = append(st.H2, em.pair(ea, best.ID))
			st.H2TakenA[ea] = struct{}{}
			st.H2TakenB[best.ID] = struct{}{}
		}
		return nil
	})
}

// RankAggregation emits H3: each remaining entity matches its top-1
// candidate under the θ-weighted sum of normalized value and neighbor
// ranks.
func RankAggregation() Stage {
	return newStage(StageRankAggregation, func(ctx context.Context, st *State) error {
		if !st.haveValueCands() {
			return errors.New("requires value candidates (run " + StageValueCandidates + " first)")
		}
		if !st.haveNeighborCands() {
			return errors.New("requires neighbor candidates (run " + StageNeighborCandidates + " first)")
		}
		em := st.emission()
		for e := 0; e < em.sizeA; e++ {
			if e%cancelCheckStride == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			ea := kb.EntityID(e)
			if _, done := em.h1A[ea]; done {
				continue
			}
			if _, done := em.h2A[ea]; done {
				continue
			}
			skip := func(id kb.EntityID) bool {
				if _, t := em.h1B[id]; t {
					return true
				}
				_, t := em.h2B[id]
				return t
			}
			best, ok := aggregateRanks(em.valueA[ea], em.neighborA[ea], st.Params.Theta, skip)
			if !ok {
				continue
			}
			st.H3 = append(st.H3, em.pair(ea, best))
		}
		return nil
	})
}

// Union collects H1 ∨ H2 ∨ H3 into Matches, deduplicated and in
// canonical pair order. With Reciprocity dropped from the plan this is
// the final output, matching the "no H4" ablation.
func Union() Stage {
	return newStage(StageUnion, func(ctx context.Context, st *State) error {
		union := make([]eval.Pair, 0, len(st.H1)+len(st.H2)+len(st.H3))
		union = append(append(append(union, st.H1...), st.H2...), st.H3...)
		st.Matches = eval.DedupPairs(union)
		st.unionDone = true
		return nil
	})
}

// Reciprocity applies H4: a pair survives only if each entity lists
// the other among its top-K value or neighbor candidates. Matches is
// filtered in place, preserving canonical order.
func Reciprocity() Stage {
	return newStage(StageReciprocity, func(ctx context.Context, st *State) error {
		if !st.unionDone {
			return errors.New("requires the heuristic union (run " + StageUnion + " first)")
		}
		if !st.haveValueCands() {
			return errors.New("requires value candidates (run " + StageValueCandidates + " first)")
		}
		if !st.haveNeighborCands() {
			return errors.New("requires neighbor candidates (run " + StageNeighborCandidates + " first)")
		}
		kept := st.Matches[:0]
		for _, p := range st.Matches {
			if st.reciprocal(p) {
				kept = append(kept, p)
			} else {
				st.DiscardedByH4++
			}
		}
		st.Matches = kept
		return nil
	})
}
