// Epoch updates: the stages that absorb a KB mutation into an already
// resolved pair without re-deriving the whole pair. The previous
// epoch's scoring substrate (Cache) is patched for the touched keys,
// candidate lists are recomputed only for the entities whose evidence
// could have changed (the "affected" sets), and the cheap matching
// passes H1-H4 rerun in full over the patched evidence.
//
// The update plan is bit-identical to the full plan over the mutated
// KBs: patched collections reproduce the full construction's blocks in
// the same order, reused candidate lists are exactly what the eager
// stages would recompute (their inputs are untouched — weights,
// members, and iteration order all unchanged, so every float
// accumulates identically), and affected entities are recomputed with
// the eager stages' accumulation order. Affected sets over-approximate
// deliberately: recomputing an unchanged entity reproduces its list;
// missing a changed one would be a correctness bug, and the
// rebuild-equivalence suites exist to catch exactly that.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Cache is the scoring substrate one epoch carries to make the next
// mutation incremental: the one-sided blocking substrates of both
// sides, the frozen neighbor lists, the joined (pre-purge) token
// collection and the name collection, the purge result, and the
// candidate lists. All fields are immutable once published.
//
//minoaner:frozen
type Cache struct {
	Prep1, Prep2 *blocking.Prepared
	Top1, Top2   [][]kb.EntityID
	Rev1, Rev2   [][]kb.EntityID

	NameBlocks  *blocking.Collection // the epoch's B_N
	RawTokens   *blocking.Collection // B_T before purging
	TokenBlocks *blocking.Collection // B_T after purging (what queries serve)
	Purge       blocking.PurgeResult // the epoch's purge cutoffs
	Weights     []float64            // ARCS weight per purged block

	VC1, VC2 [][]Cand
	NC1, NC2 [][]Cand

	// The epoch's matching outputs, carried so an update whose evidence
	// comes out pointer-identical (a mutation that touched nothing the
	// other side shares) adopts them instead of rerunning H1-H4.
	// MatchesValid marks them present (Matches may legitimately be
	// empty).
	H1, H2, H3, Matches []eval.Pair
	Discarded           int
	MatchesValid        bool

	// ShardSubs, when non-nil, are the owner-restricted sub-substrates
	// of Prep1 carried by a sharded index, with ShardOwners the
	// entity-to-shard assignment of the epoch. A side-1 mutation
	// patches only the shards that own touched entities, in parallel
	// (see updateShardSubs); a side-2 mutation carries them over
	// untouched.
	ShardSubs   []*blocking.Prepared
	ShardOwners []int32
}

// SetMatches records the epoch's matching outputs on the cache (the
// adoption source of evidence-unchanged updates).
//
//minoaner:mutator runs while the cache is being primed or built, before it is published to readers
func (c *Cache) SetMatches(h1, h2, h3, matches []eval.Pair, discarded int) {
	c.H1, c.H2, c.H3, c.Matches, c.Discarded, c.MatchesValid = h1, h2, h3, matches, discarded, true
}

// NewCache primes the scoring substrate from a resolved state: st must
// carry the KBs, the parameters, and the purged token collection (as a
// loaded or built index does); the candidate stages rerun to
// materialize the lists, and the one-sided substrates are built fresh.
// This is the one-time cost of making an index mutable.
func NewCache(ctx context.Context, st *State, nameBlocks *blocking.Collection, purge blocking.PurgeResult) (*Cache, error) {
	if st.ValueCands1 == nil || st.NeighborCands1 == nil {
		eng := Engine{Plan: []Stage{BlockIndexing(), TokenWeighting(), ValueCandidates(), NeighborCandidates()}}
		if _, err := eng.Run(ctx, st); err != nil {
			return nil, err
		}
	}
	w := st.Params.workers()
	c := &Cache{
		Prep1:       blocking.Prepare(st.KB1, st.Params.NameK, w),
		Prep2:       blocking.Prepare(st.KB2, st.Params.NameK, w),
		Top1:        topNeighborLists(st.KB1, st.Params.N),
		Top2:        topNeighborLists(st.KB2, st.Params.N),
		NameBlocks:  nameBlocks,
		TokenBlocks: st.TokenBlocks,
		Purge:       purge,
		VC1:         st.ValueCands1,
		VC2:         st.ValueCands2,
		NC1:         st.NeighborCands1,
		NC2:         st.NeighborCands2,
	}
	c.Rev1 = kb.ReverseNeighbors(c.Top1, st.KB1.Len())
	c.Rev2 = kb.ReverseNeighbors(c.Top2, st.KB2.Len())
	c.RawTokens = blocking.JoinTokenBlocks(c.Prep1, c.Prep2)
	c.Weights = st.Weights
	if c.Weights == nil {
		c.Weights = tokenWeights(st.TokenBlocks)
	}
	return c, nil
}

// updateSide is the per-run working set of an update State.
type updateSide struct {
	prev       *Cache
	old1, old2 *kb.KB
	d1, d2     *kb.Diff
	next       *Cache

	// Stage-to-stage scratch.
	pt1, pt2               blocking.PreparedPatch
	nameStable             bool
	tokenKeys              []string // sorted union of both sides' token edits
	affV1, affV2           []bool   // value-affected entities (new ID space)
	vcChanged1, vcChanged2 []bool   // entities whose recomputed value list actually differs
	topChanged1            []bool   // side-1 entities whose best-neighbor list changed
	topChanged2            []bool
	topAll1, topAll2       bool // relation reranking forced a full top rebuild
	affectedV1Count        int
	affectedV2Count        int
	affectedN1, affectedN2 int
}

// NewUpdateState prepares the blackboard for one epoch update: prev is
// the previous epoch's substrate over (old1, old2), and the run
// resolves the mutated pair (new1, new2). Diffs are computed here; an
// unmutated side passes the same *kb.KB on both arguments and costs
// nothing.
func NewUpdateState(prev *Cache, old1, old2, new1, new2 *kb.KB, p Params) (*State, error) {
	if prev == nil || prev.Prep1 == nil || prev.Prep2 == nil || prev.RawTokens == nil || prev.NameBlocks == nil {
		return nil, errors.New("pipeline: update state requires a primed substrate (NewCache)")
	}
	if len(prev.VC1) != old1.Len() || len(prev.VC2) != old2.Len() {
		return nil, fmt.Errorf("pipeline: substrate covers (%d,%d) entities, previous KBs have (%d,%d)",
			len(prev.VC1), len(prev.VC2), old1.Len(), old2.Len())
	}
	st := NewState(new1, new2, p)
	st.update = &updateSide{
		prev: prev,
		old1: old1,
		old2: old2,
		d1:   kb.ComputeDiff(old1, new1),
		d2:   kb.ComputeDiff(old2, new2),
		next: &Cache{},
	}
	return st, nil
}

// UpdatedCache returns the substrate the update stages assembled for
// the new epoch (valid after the plan ran to completion).
func (s *State) UpdatedCache() *Cache { return s.update.next }

// UpdatePlan returns the epoch-update counterpart of DefaultPlan. The
// patch and affected-set stages keep the standard stage names — plan
// edits (ablation drops) and progress reporting work identically — and
// purging, token weighting, and the four matching heuristics are the
// very same stages the full plan runs.
func UpdatePlan() []Stage {
	return append(UpdatePatchPlan(), UpdateMatchPlan()...)
}

// UpdatePatchPlan is the evidence half of UpdatePlan: substrate
// patching, purging, weighting, and the affected-set candidate
// recomputation. After it runs, EvidenceUnchanged reports whether the
// matching half can be skipped by adopting the previous epoch's
// outputs.
func UpdatePatchPlan() []Stage {
	return []Stage{
		UpdateNameBlocking(),
		UpdateTokenBlocking(),
		UpdateBlockPurging(),
		UpdateBlockIndexing(),
		UpdateTokenWeighting(),
		UpdateValueCandidates(),
		UpdateNeighborCandidates(),
	}
}

// UpdateBlockPurging is BlockPurging with the sharing fast path: a raw
// collection carried over untouched purges to the previous epoch's
// purged collection (same sizes, same cutoffs, same members).
func UpdateBlockPurging() Stage {
	return newStage(StageBlockPurging, func(ctx context.Context, st *State) error {
		u := st.update
		if u == nil {
			return errNotUpdate
		}
		if st.TokenBlocks == nil {
			return errors.New("requires token blocks (run " + StageTokenBlocking + " first)")
		}
		if st.TokenBlocks == u.prev.RawTokens {
			st.TokenBlocks = u.prev.TokenBlocks
			st.PurgeStats = u.prev.Purge
		} else {
			st.TokenBlocks, st.PurgeStats = blocking.Purge(st.TokenBlocks, st.Params.Purge)
		}
		finishTokenBlocks(st)
		return nil
	})
}

// UpdateTokenWeighting is TokenWeighting with the sharing fast path:
// an unchanged purged collection keeps its weights.
//
//minoaner:mutator stage writes u.next, the epoch cache under construction; it is published only after the plan completes
func UpdateTokenWeighting() Stage {
	return newStage(StageTokenWeighting, func(ctx context.Context, st *State) error {
		u := st.update
		if u == nil {
			return errNotUpdate
		}
		if st.TokenBlocks == u.prev.TokenBlocks && u.prev.Weights != nil {
			st.Weights = u.prev.Weights
		} else {
			st.Weights = tokenWeights(st.TokenBlocks)
		}
		u.next.Weights = st.Weights
		return nil
	})
}

// UpdateMatchPlan is the matching half of UpdatePlan: the very same
// H1-H4 stages the full plan runs, over the patched evidence.
func UpdateMatchPlan() []Stage {
	return []Stage{
		NameMatching(),
		ValueMatching(),
		RankAggregation(),
		Union(),
		Reciprocity(),
	}
}

// EvidenceUnchanged reports — after the patch plan ran — whether every
// matching input came out pointer-identical to the previous epoch's:
// same B_N, same candidate arrays (the sharing fast paths propagate
// pointers only when content is unchanged). The heuristics are pure
// functions of those inputs, so their outputs can be adopted verbatim.
func (s *State) EvidenceUnchanged() bool {
	u := s.update
	if u == nil || !u.prev.MatchesValid {
		return false
	}
	return s.NameBlocks == u.prev.NameBlocks &&
		sameCandArray(s.ValueCands1, u.prev.VC1) &&
		sameCandArray(s.ValueCands2, u.prev.VC2) &&
		sameCandArray(s.NeighborCands1, u.prev.NC1) &&
		sameCandArray(s.NeighborCands2, u.prev.NC2)
}

// AdoptPrevMatches installs the previous epoch's matching outputs on
// the state (the EvidenceUnchanged shortcut).
func (s *State) AdoptPrevMatches() {
	p := s.update.prev
	s.H1, s.H2, s.H3 = p.H1, p.H2, p.H3
	s.Matches, s.DiscardedByH4 = p.Matches, p.Discarded
	s.unionDone = true
}

// errNotUpdate guards the update-only stages against plain states.
var errNotUpdate = errors.New("requires an update state (build it with NewUpdateState)")

// UpdateNameBlocking patches both one-sided substrates with the
// mutation's key edits (token and name postings at once — the token
// stage consumes the same patched substrates) and derives B_N. When a
// mutation reorders a KB's most distinctive attributes, that side's
// name postings — and B_N — are rebuilt wholesale instead of patched.
//
//minoaner:mutator stage writes u.next, the epoch cache under construction; it is published only after the plan completes
func UpdateNameBlocking() Stage {
	return newStage(StageNameBlocking, func(ctx context.Context, st *State) error {
		u := st.update
		if u == nil {
			return errNotUpdate
		}
		w := st.Params.workers()
		nameK := st.Params.NameK
		u.nameStable = true

		patchSide := func(prep *blocking.Prepared, old, new *kb.KB, d *kb.Diff) (*blocking.Prepared, blocking.PreparedPatch, bool) {
			if d.Identity {
				return prep, blocking.PreparedPatch{}, true
			}
			stable := sameTopNameAttrs(old, new, nameK)
			var oldAttrs, newAttrs []int32
			if stable {
				oldAttrs = old.TopNameAttributes(nameK)
				newAttrs = new.TopNameAttributes(nameK)
			} else {
				u.nameStable = false
			}
			pt := blocking.BuildPreparedPatch(old, new, d, oldAttrs, newAttrs)
			p := prep.ApplyPatch(pt)
			if !stable {
				p = p.RebuildNames(new, nameK, w)
			}
			return p, pt, stable
		}
		var stable1 bool
		u.next.Prep1, u.pt1, stable1 = patchSide(u.prev.Prep1, u.old1, st.KB1, u.d1)
		u.next.Prep2, u.pt2, _ = patchSide(u.prev.Prep2, u.old2, st.KB2, u.d2)
		updateShardSubs(st, u, stable1)

		if u.nameStable {
			keys := make([]string, 0, len(u.pt1.Names)+len(u.pt2.Names))
			for _, e := range u.pt1.Names {
				keys = append(keys, e.Key)
			}
			for _, e := range u.pt2.Names {
				keys = append(keys, e.Key)
			}
			if len(keys) == 0 && u.pt1.Remap == nil && u.pt2.Remap == nil {
				// No name key moved and no ID shifted: B_N is the
				// previous epoch's, shared.
				st.NameBlocks = u.prev.NameBlocks
				u.next.NameBlocks = st.NameBlocks
				st.NameBlockCount = st.NameBlocks.Size()
				st.NameComparisons = st.NameBlocks.Comparisons()
				return nil
			}
			st.NameBlocks = u.prev.NameBlocks.Patch(blocking.CollectionPatch{
				Keys:    blocking.SortedKeySet(keys),
				Lookup1: u.next.Prep1.NamePosting,
				Lookup2: u.next.Prep2.NamePosting,
				Remap1:  u.pt1.Remap,
				Remap2:  u.pt2.Remap,
				N1:      st.KB1.Len(),
				N2:      st.KB2.Len(),
			})
		} else {
			st.NameBlocks = blocking.JoinNameBlocks(u.next.Prep1, u.next.Prep2)
		}
		u.next.NameBlocks = st.NameBlocks
		st.NameBlockCount = st.NameBlocks.Size()
		st.NameComparisons = st.NameBlocks.Comparisons()
		return nil
	})
}

// UpdateTokenBlocking derives the raw B_T of the new epoch by splicing
// the touched token keys into the previous epoch's joined collection.
//
//minoaner:mutator stage writes u.next, the epoch cache under construction; it is published only after the plan completes
func UpdateTokenBlocking() Stage {
	return newStage(StageTokenBlocking, func(ctx context.Context, st *State) error {
		u := st.update
		if u == nil {
			return errNotUpdate
		}
		keys := make([]string, 0, len(u.pt1.Tokens)+len(u.pt2.Tokens))
		for _, e := range u.pt1.Tokens {
			keys = append(keys, e.Key)
		}
		for _, e := range u.pt2.Tokens {
			keys = append(keys, e.Key)
		}
		u.tokenKeys = blocking.SortedKeySet(keys)
		if len(u.tokenKeys) == 0 && u.pt1.Remap == nil && u.pt2.Remap == nil {
			st.TokenBlocks = u.prev.RawTokens
			u.next.RawTokens = st.TokenBlocks
			return nil
		}
		st.TokenBlocks = u.prev.RawTokens.Patch(blocking.CollectionPatch{
			Keys:    u.tokenKeys,
			Lookup1: u.next.Prep1.TokenPosting,
			Lookup2: u.next.Prep2.TokenPosting,
			Remap1:  u.pt1.Remap,
			Remap2:  u.pt2.Remap,
			N1:      st.KB1.Len(),
			N2:      st.KB2.Len(),
		})
		u.next.RawTokens = st.TokenBlocks
		return nil
	})
}

// UpdateBlockIndexing computes the access path of incremental scoring:
// the set of purged-collection keys whose contribution changed (the
// patched keys, plus every block whose purge status flipped when the
// cutoffs moved) and from it the value-affected entity sets of both
// sides.
//
//minoaner:mutator stage writes u.next, the epoch cache under construction; it is published only after the plan completes
func UpdateBlockIndexing() Stage {
	return newStage(StageBlockIndexing, func(ctx context.Context, st *State) error {
		u := st.update
		if u == nil {
			return errNotUpdate
		}
		if st.TokenBlocks == nil || st.TokenBlocks == u.next.RawTokens {
			return errors.New("requires purged token blocks (run " + StageBlockPurging + " first)")
		}
		u.next.Purge = st.PurgeStats
		u.next.TokenBlocks = st.TokenBlocks

		changed := make(map[string]bool, len(u.tokenKeys))
		for _, k := range u.tokenKeys {
			changed[k] = true
		}
		oldRaw, newRaw := u.prev.RawTokens, u.next.RawTokens
		oldCut1, oldCut2 := u.prev.Purge.Cutoff1, u.prev.Purge.Cutoff2
		newCut1, newCut2 := st.PurgeStats.Cutoff1, st.PurgeStats.Cutoff2
		if oldCut1 != newCut1 || oldCut2 != newCut2 {
			// The cutoffs moved: an untouched block may have crossed
			// them. Walk both raw collections in lockstep and flag every
			// status flip.
			oi, ni := 0, 0
			for oi < len(oldRaw.Blocks) || ni < len(newRaw.Blocks) {
				switch {
				case ni == len(newRaw.Blocks) || (oi < len(oldRaw.Blocks) && oldRaw.Blocks[oi].Key < newRaw.Blocks[ni].Key):
					oi++ // vanished key: already a patched key
				case oi == len(oldRaw.Blocks) || newRaw.Blocks[ni].Key < oldRaw.Blocks[oi].Key:
					ni++ // new key: already a patched key
				default:
					ob, nb := &oldRaw.Blocks[oi], &newRaw.Blocks[ni]
					if survives(ob, oldCut1, oldCut2) != survives(nb, newCut1, newCut2) {
						changed[ob.Key] = true
					}
					oi++
					ni++
				}
			}
		}

		aff1 := make([]bool, st.KB1.Len())
		aff2 := make([]bool, st.KB2.Len())
		mark := func(aff []bool, members []kb.EntityID, d *kb.Diff, remapped bool) {
			for _, id := range members {
				if remapped {
					if id = d.RemapID(id); id < 0 {
						continue
					}
				}
				aff[id] = true
			}
		}
		for key := range changed {
			var ob, nb *blocking.Block
			oldLive, newLive := false, false
			if oi := oldRaw.FindBlock(key); oi >= 0 {
				ob = &oldRaw.Blocks[oi]
				oldLive = survives(ob, oldCut1, oldCut2)
			}
			if ni := newRaw.FindBlock(key); ni >= 0 {
				nb = &newRaw.Blocks[ni]
				newLive = survives(nb, newCut1, newCut2)
			}
			// A patched key whose purged contribution is identical —
			// same members (modulo remap), hence same sizes and weight —
			// moves nobody's similarity sums. This is the common case
			// for in-place modifications: only the keys the entity
			// gained or lost actually change their blocks.
			if oldLive && newLive &&
				sameMembersRemapped(ob.E1, nb.E1, u.d1) && sameMembersRemapped(ob.E2, nb.E2, u.d2) {
				continue
			}
			if oldLive {
				mark(aff1, ob.E1, u.d1, true)
				mark(aff2, ob.E2, u.d2, true)
			}
			if newLive {
				mark(aff1, nb.E1, nil, false)
				mark(aff2, nb.E2, nil, false)
			}
		}
		// Entities that appeared this epoch need lists even when none
		// of their keys formed a surviving block.
		for _, e := range u.d1.Inserted {
			aff1[e] = true
		}
		for _, e := range u.d2.Inserted {
			aff2[e] = true
		}
		u.affV1, u.affV2 = aff1, aff2
		u.affectedV1Count, u.affectedV2Count = countTrue(aff1), countTrue(aff2)
		return nil
	})
}

func survives(b *blocking.Block, cut1, cut2 int) bool {
	return len(b.E1) <= cut1 && len(b.E2) <= cut2
}

// sameMembersRemapped reports whether an old member list, remapped
// into the new ID space, equals the new list.
func sameMembersRemapped(old, new []kb.EntityID, d *kb.Diff) bool {
	if d.Identity {
		return sameMembers(old, new)
	}
	j := 0
	for _, id := range old {
		nid := d.Remap[id]
		if nid < 0 {
			return false // a member was deleted
		}
		if j >= len(new) || new[j] != nid {
			return false
		}
		j++
	}
	return j == len(new)
}

func sameMembers(a, b []kb.EntityID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// sameListArray reports whether two per-entity list arrays are the
// same slice (the sharing fast paths propagate pointers, so identity
// means identity of content).
func sameListArray(a, b [][]kb.EntityID) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// sameCandArray is sameListArray for candidate arrays.
func sameCandArray(a, b [][]Cand) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// UpdateValueCandidates rebuilds the top-K value candidates of the
// affected entities (accumulating over their purged blocks in the
// eager stage's order) and carries everyone else's list over from the
// previous epoch, remapped into the new ID spaces.
//
//minoaner:mutator stage writes u.next, the epoch cache under construction; it is published only after the plan completes
func UpdateValueCandidates() Stage {
	return newStage(StageValueCandidates, func(ctx context.Context, st *State) error {
		u := st.update
		if u == nil {
			return errNotUpdate
		}
		if u.affV1 == nil {
			return errors.New("requires affected sets (run " + StageBlockIndexing + " first)")
		}
		if st.Weights == nil {
			return errors.New("requires token weights (run " + StageTokenWeighting + " first)")
		}
		workers := st.Params.workers()
		bt := st.TokenBlocks

		// Affected entities resolve their tokens to block positions
		// per lookup; past a few hundred of them, one O(|B|) key map
		// beats repeated binary searches.
		findBlock := bt.FindBlock
		if u.affectedV1Count+u.affectedV2Count >= 256 {
			pos := make(map[string]int32, len(bt.Blocks))
			for i := range bt.Blocks {
				pos[bt.Blocks[i].Key] = int32(i)
			}
			findBlock = func(key string) int32 {
				if bi, ok := pos[key]; ok {
					return bi
				}
				return -1
			}
		}

		run := func(n, otherN int, aff []bool, prevVC [][]Cand, dSelf, dOther *kb.Diff,
			tokens func(kb.EntityID) []string, members func(int32) []kb.EntityID) ([][]Cand, []bool, error) {
			if countTrue(aff) == 0 && !dSelf.Shifted() && !dOther.Shifted() {
				// Nothing on this side was touched and no IDs moved:
				// the whole array carries over, shared.
				return prevVC, nil, nil
			}
			out := make([][]Cand, n)
			// vcChanged records, exactly, which recomputed lists differ
			// from the previous epoch's — the set the neighbor stage
			// must propagate. Most affected entities turn out unchanged
			// (a re-accumulated sum over identical blocks is identical).
			vcChanged := make([]bool, n)
			err := parallelFor(ctx, n, workers, func(worker, start, end int) error {
				acc := newAccumulator(otherN)
				for e := start; e < end; e++ {
					if (e-start)%cancelCheckStride == 0 && ctx.Err() != nil {
						return ctx.Err()
					}
					id := kb.EntityID(e)
					if !aff[e] {
						prev := prevVC[dSelf.BackID(id)]
						remapped, err := remapCands(prev, dOther)
						if err != nil {
							return fmt.Errorf("value candidates of entity %d: %w", e, err)
						}
						out[e] = remapped
						continue
					}
					for _, tok := range tokens(id) {
						bi := findBlock(tok)
						if bi < 0 {
							continue
						}
						w := st.Weights[bi]
						for _, o := range members(bi) {
							acc.add(int32(o), w)
						}
					}
					out[e] = acc.topK(st.Params.K)
					acc.reset()
					vcChanged[e] = true
					if back := dSelf.BackID(id); back >= 0 {
						if prev, err := remapCands(prevVC[back], dOther); err == nil && sameCands(out[e], prev) {
							vcChanged[e] = false
						}
					}
				}
				return nil
			})
			return out, vcChanged, err
		}

		var err error
		st.ValueCands1, u.vcChanged1, err = run(st.KB1.Len(), st.KB2.Len(), u.affV1, u.prev.VC1, u.d1, u.d2,
			func(e kb.EntityID) []string { return st.KB1.Tokens(e) },
			func(bi int32) []kb.EntityID { return bt.Blocks[bi].E2 })
		if err != nil {
			return err
		}
		st.ValueCands2, u.vcChanged2, err = run(st.KB2.Len(), st.KB1.Len(), u.affV2, u.prev.VC2, u.d2, u.d1,
			func(e kb.EntityID) []string { return st.KB2.Tokens(e) },
			func(bi int32) []kb.EntityID { return bt.Blocks[bi].E1 })
		if err != nil {
			return err
		}
		u.next.VC1, u.next.VC2 = st.ValueCands1, st.ValueCands2
		return nil
	})
}

// sameCands compares candidate lists exactly (IDs and float bits).
func sameCands(a, b []Cand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// remapCands translates a candidate list into the opposite side's new
// ID space (shared unchanged when that side did not shift). A deleted
// candidate would violate the affected-set invariant — the entity
// sharing a block with it must have been recomputed — so it is an
// internal error, not silently dropped.
func remapCands(cands []Cand, dOther *kb.Diff) ([]Cand, error) {
	if !dOther.Shifted() {
		return cands, nil
	}
	if cands == nil {
		return nil, nil
	}
	out := make([]Cand, len(cands))
	for i, c := range cands {
		nid := dOther.RemapID(c.ID)
		if nid < 0 {
			return nil, fmt.Errorf("reused candidate %d was deleted (affected-set invariant violated)", c.ID)
		}
		out[i] = Cand{ID: nid, Sim: c.Sim}
	}
	return out, nil
}

// UpdateNeighborCandidates rebuilds the best-neighbor view where edges
// (or the relation ranking) changed, derives which entities' neighbor
// evidence that touches, recomputes those, and carries the rest over.
//
//minoaner:mutator stage writes u.next, the epoch cache under construction; it is published only after the plan completes
func UpdateNeighborCandidates() Stage {
	return newStage(StageNeighborCandidates, func(ctx context.Context, st *State) error {
		u := st.update
		if u == nil {
			return errNotUpdate
		}
		if u.next.VC1 == nil || u.next.VC2 == nil {
			return errors.New("requires value candidates (run " + StageValueCandidates + " first)")
		}
		workers := st.Params.workers()
		n := st.Params.N

		var err error
		u.next.Top1, u.topChanged1, u.topAll1, err = updateTops(ctx, u.prev.Top1, u.old1, st.KB1, u.d1, n, workers)
		if err != nil {
			return err
		}
		u.next.Top2, u.topChanged2, u.topAll2, err = updateTops(ctx, u.prev.Top2, u.old2, st.KB2, u.d2, n, workers)
		if err != nil {
			return err
		}
		if sameListArray(u.next.Top1, u.prev.Top1) {
			u.next.Rev1 = u.prev.Rev1 // rev is a pure function of top
		} else {
			u.next.Rev1 = kb.ReverseNeighbors(u.next.Top1, st.KB1.Len())
		}
		if sameListArray(u.next.Top2, u.prev.Top2) {
			u.next.Rev2 = u.prev.Rev2
		} else {
			u.next.Rev2 = kb.ReverseNeighbors(u.next.Top2, st.KB2.Len())
		}

		// Reverse-membership deltas: the entities whose rev lists could
		// differ from last epoch (as URI sets).
		drev1 := revDelta(u.prev.Top1, u.next.Top1, u.topChanged1, u.d1)
		drev2 := revDelta(u.prev.Top2, u.next.Top2, u.topChanged2, u.d2)

		aff1 := neighborAffected(st.KB1.Len(), u.topChanged1, u.topAll1 || u.topAll2,
			u.vcChanged1, u.next.Top1, u.next.Rev1, u.next.VC1, drev2)
		aff2 := neighborAffected(st.KB2.Len(), u.topChanged2, u.topAll1 || u.topAll2,
			u.vcChanged2, u.next.Top2, u.next.Rev2, u.next.VC2, drev1)
		u.affectedN1, u.affectedN2 = countTrue(aff1), countTrue(aff2)

		run := func(nSelf int, aff []bool, top, revOther [][]kb.EntityID, vcSelf [][]Cand,
			prevNC [][]Cand, dSelf, dOther *kb.Diff, otherN int) ([][]Cand, error) {
			if countTrue(aff) == 0 && !dSelf.Shifted() && !dOther.Shifted() {
				return prevNC, nil
			}
			out := make([][]Cand, nSelf)
			err := parallelFor(ctx, nSelf, workers, func(worker, start, end int) error {
				acc := newAccumulator(otherN)
				for e := start; e < end; e++ {
					if (e-start)%cancelCheckStride == 0 && ctx.Err() != nil {
						return ctx.Err()
					}
					id := kb.EntityID(e)
					if !aff[e] {
						prev := prevNC[dSelf.BackID(id)]
						remapped, err := remapCands(prev, dOther)
						if err != nil {
							return fmt.Errorf("neighbor candidates of entity %d: %w", e, err)
						}
						out[e] = remapped
						continue
					}
					for _, nei := range top[e] {
						for _, cand := range vcSelf[nei] {
							if cand.Sim <= 0 {
								continue
							}
							for _, o := range revOther[cand.ID] {
								acc.add(int32(o), cand.Sim)
							}
						}
					}
					out[e] = acc.topK(st.Params.K)
					acc.reset()
				}
				return nil
			})
			return out, err
		}

		st.NeighborCands1, err = run(st.KB1.Len(), aff1, u.next.Top1, u.next.Rev2, u.next.VC1,
			u.prev.NC1, u.d1, u.d2, st.KB2.Len())
		if err != nil {
			return err
		}
		st.NeighborCands2, err = run(st.KB2.Len(), aff2, u.next.Top2, u.next.Rev1, u.next.VC2,
			u.prev.NC2, u.d2, u.d1, st.KB1.Len())
		if err != nil {
			return err
		}
		u.next.NC1, u.next.NC2 = st.NeighborCands1, st.NeighborCands2
		return nil
	})
}

// updateTops carries the per-entity best-neighbor lists into the new
// epoch: recomputed for entities whose edges changed (or for everyone
// when the global relation ranking moved), remapped or shared
// otherwise.
func updateTops(ctx context.Context, prevTop [][]kb.EntityID, old, new *kb.KB, d *kb.Diff, n, workers int) (top [][]kb.EntityID, changed []bool, all bool, err error) {
	if d.Identity {
		return prevTop, nil, false, nil
	}
	nEnt := new.Len()
	changed = make([]bool, nEnt)
	if !sameRelRanking(old, new) {
		all = true
		for i := range changed {
			changed[i] = true
		}
	} else {
		for _, e := range d.EdgesChanged {
			changed[e] = true
		}
		for _, e := range d.Inserted {
			changed[e] = true
		}
	}
	if !all && len(d.EdgesChanged) == 0 && len(d.Inserted) == 0 && !d.Shifted() {
		// No edges moved and no IDs shifted: the whole view carries
		// over, shared.
		return prevTop, nil, false, nil
	}
	top = make([][]kb.EntityID, nEnt)
	shifted := d.Shifted()
	err = parallelFor(ctx, nEnt, workers, func(_, start, end int) error {
		for e := start; e < end; e++ {
			id := kb.EntityID(e)
			if changed[e] {
				top[e] = new.TopNeighbors(id, n)
				continue
			}
			prev := prevTop[d.BackID(id)]
			if !shifted || prev == nil {
				top[e] = prev
				continue
			}
			mapped := make([]kb.EntityID, len(prev))
			for i, t := range prev {
				nt := d.RemapID(t)
				if nt < 0 {
					return fmt.Errorf("neighbor %d of entity %d deleted but edges unflagged", t, e)
				}
				mapped[i] = nt
			}
			top[e] = mapped
		}
		return nil
	})
	if err != nil {
		return nil, nil, false, err
	}
	return top, changed, all, nil
}

// revDelta collects the entities (new ID space) whose reverse-neighbor
// membership could differ from the previous epoch: the old and new
// targets of every entity whose top list changed.
func revDelta(prevTop, newTop [][]kb.EntityID, changed []bool, d *kb.Diff) map[kb.EntityID]struct{} {
	if changed == nil {
		return nil
	}
	out := make(map[kb.EntityID]struct{})
	for e, ch := range changed {
		if !ch {
			continue
		}
		for _, t := range newTop[e] {
			out[t] = struct{}{}
		}
		if old := d.BackID(kb.EntityID(e)); old >= 0 {
			for _, t := range prevTop[old] {
				if nt := d.RemapID(t); nt >= 0 {
					out[nt] = struct{}{}
				}
			}
		}
	}
	// Deleted entities leave every reverse list they were in.
	for _, oldID := range d.Deleted {
		for _, t := range prevTop[oldID] {
			if nt := d.RemapID(t); nt >= 0 {
				out[nt] = struct{}{}
			}
		}
	}
	return out
}

// neighborAffected derives which entities' neighbor-candidate lists
// must be recomputed: those whose own top list changed, those with an
// affected or rev-delta-exposed entity among their best neighbors'
// evidence, or everyone when a side rebuilt its ranking wholesale.
func neighborAffected(n int, topChanged []bool, all bool, affV []bool,
	top, rev [][]kb.EntityID, vc [][]Cand, drevOther map[kb.EntityID]struct{}) []bool {
	aff := make([]bool, n)
	if all {
		for i := range aff {
			aff[i] = true
		}
		return aff
	}
	if topChanged != nil {
		copy(aff, topChanged)
	}
	markReferrers := func(nei int) {
		for _, x := range rev[nei] {
			aff[x] = true
		}
	}
	for nei := 0; nei < n; nei++ {
		if affV != nil && affV[nei] {
			markReferrers(nei) // the neighbor's value evidence changed
			continue
		}
		if len(drevOther) > 0 {
			for _, cand := range vc[nei] {
				if _, hit := drevOther[cand.ID]; hit {
					markReferrers(nei) // a proposed target's reverse list changed
					break
				}
			}
		}
	}
	return aff
}

// sameTopNameAttrs reports whether two KB epochs elect the same top
// name attributes, compared as a predicate-name SET (Names membership
// is all that matters downstream; IDs renumber freely and the ranking
// order within the top k is irrelevant).
func sameTopNameAttrs(old, new *kb.KB, k int) bool {
	a, b := old.TopNameAttributes(k), new.TopNameAttributes(k)
	if len(a) != len(b) {
		return false
	}
	names := make(map[string]bool, len(a))
	for _, p := range a {
		names[old.Pred(p)] = true
	}
	for _, p := range b {
		if !names[new.Pred(p)] {
			return false
		}
	}
	return true
}

// sameRelRanking reports whether the relative importance order of the
// relations present in both epochs is unchanged (projected onto the
// common predicate set — relations that appear or vanish exist only on
// edge-changed entities, which are recomputed anyway).
func sameRelRanking(old, new *kb.KB) bool {
	names := func(k *kb.KB) []string {
		stats := k.RelStats()
		out := make([]string, len(stats))
		for i, st := range stats {
			out[i] = k.Pred(st.Pred)
		}
		return out
	}
	a, b := names(old), names(new)
	inBoth := make(map[string]int, len(a))
	for _, s := range a {
		inBoth[s]++
	}
	for _, s := range b {
		inBoth[s] |= 2
	}
	proj := func(xs []string) []string {
		out := xs[:0:0]
		for _, s := range xs {
			if inBoth[s] == 3 {
				out = append(out, s)
			}
		}
		return out
	}
	pa, pb := proj(a), proj(b)
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// UpdateCounters reports how many entities the update run recomputed:
// value-affected and neighbor-affected, per side. Valid after the
// candidate stages ran; plain runs report zeros.
func (s *State) UpdateCounters() (affValue1, affValue2, affNeighbor1, affNeighbor2 int) {
	if s.update == nil {
		return 0, 0, 0, 0
	}
	return s.update.affectedV1Count, s.update.affectedV2Count, s.update.affectedN1, s.update.affectedN2
}
