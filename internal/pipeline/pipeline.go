// Package pipeline decomposes the MinoanER matching process into
// composable, instrumented, cancellable stages. The monolithic run
// loop of internal/core is re-expressed as a plan — an ordered list of
// Stage values over a shared State — executed by an Engine that
// records per-stage wall-clock and allocation statistics, honors
// context cancellation between and inside stages, and reports progress
// through a callback.
//
// The default plan (DefaultPlan) is bit-for-bit equivalent to the
// original composition at any worker count. Ablations and new
// workloads edit the plan instead of threading flags through the run
// loop: Drop removes a heuristic, Replace swaps an implementation
// (e.g. KeepAllBlocks for BlockPurging), Until truncates the plan
// after a prefix (e.g. blocking only, for progressive scheduling).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"
)

// Stage is one step of a matching plan. A stage reads its inputs from
// the State, validates they are present, and publishes its outputs
// back onto it. Run returns ctx.Err() promptly when the context is
// cancelled; long loops inside a stage check cancellation themselves.
type Stage interface {
	Name() string
	Run(ctx context.Context, st *State) error
}

// stageFunc adapts a named function to the Stage interface.
type stageFunc struct {
	name string
	run  func(ctx context.Context, st *State) error
}

func (s stageFunc) Name() string                             { return s.name }
func (s stageFunc) Run(ctx context.Context, st *State) error { return s.run(ctx, st) }
func newStage(name string, run func(context.Context, *State) error) Stage {
	return stageFunc{name: name, run: run}
}

// StageStat records the execution of one stage.
type StageStat struct {
	// Stage is the stage's name.
	Stage string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// AllocBytes is the heap allocated during the stage (process-wide
	// TotalAlloc delta: approximate under concurrent allocators, exact
	// in a single-run process). Zero unless Engine.AllocStats is set.
	AllocBytes uint64
}

// ProgressEvent notifies a Progress callback that a stage started
// (Done=false) or finished (Done=true, Stat valid).
type ProgressEvent struct {
	// Stage is the stage's name.
	Stage string
	// Index and Total locate the stage in the plan (Index is 0-based).
	Index, Total int
	// Done distinguishes the completion event from the start event.
	Done bool
	// Stat is the stage's statistics; valid only when Done.
	Stat StageStat
}

// Progress observes stage boundaries. Callbacks run synchronously on
// the engine's goroutine; keep them cheap.
type Progress func(ProgressEvent)

// Engine executes a stage plan over a State.
type Engine struct {
	// Plan is the ordered stage list to run.
	Plan []Stage
	// Progress, when non-nil, is invoked at every stage boundary.
	Progress Progress
	// AllocStats enables per-stage allocation accounting, at the price
	// of two runtime.ReadMemStats calls per stage (their latency grows
	// with live heap size). When false, StageStat.AllocBytes is zero.
	AllocStats bool
}

// Run executes the plan. It checks cancellation before every stage and
// returns the first error — ctx.Err() on cancellation — leaving the
// State as the failed stage left it; callers must not derive a Result
// from a failed run. On success it returns one StageStat per stage in
// plan order.
func (e *Engine) Run(ctx context.Context, st *State) ([]StageStat, error) {
	stats := make([]StageStat, 0, len(e.Plan))
	var ms runtime.MemStats
	for i, stage := range e.Plan {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e.Progress != nil {
			e.Progress(ProgressEvent{Stage: stage.Name(), Index: i, Total: len(e.Plan)})
		}
		var alloc0 uint64
		if e.AllocStats {
			runtime.ReadMemStats(&ms)
			alloc0 = ms.TotalAlloc
		}
		//minoaner:wallclock stage timing instrumentation; durations go to StageStat and never feed match output
		start := time.Now()
		if err := stage.Run(ctx, st); err != nil {
			// Cancellation surfaces as the bare context error so callers
			// can compare against ctx.Err() directly, as documented.
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("pipeline: stage %s: %w", stage.Name(), err)
		}
		stat := StageStat{
			Stage: stage.Name(),
			//minoaner:wallclock stage timing instrumentation; durations go to StageStat and never feed match output
			Duration: time.Since(start),
		}
		if e.AllocStats {
			runtime.ReadMemStats(&ms)
			stat.AllocBytes = ms.TotalAlloc - alloc0
		}
		stats = append(stats, stat)
		if e.Progress != nil {
			e.Progress(ProgressEvent{Stage: stage.Name(), Index: i, Total: len(e.Plan), Done: true, Stat: stat})
		}
	}
	return stats, nil
}

// Names returns the stage names of a plan in order.
func Names(plan []Stage) []string {
	out := make([]string, len(plan))
	for i, s := range plan {
		out[i] = s.Name()
	}
	return out
}

// Drop returns a copy of the plan without the named stages. Unknown
// names are ignored, so ablations compose freely.
func Drop(plan []Stage, names ...string) []Stage {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	out := make([]Stage, 0, len(plan))
	for _, s := range plan {
		if drop[s.Name()] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Replace returns a copy of the plan with every stage of the given
// name substituted by the replacement (which keeps the replacement's
// own name). The plan is returned unchanged if the name is absent.
func Replace(plan []Stage, name string, with Stage) []Stage {
	out := make([]Stage, len(plan))
	for i, s := range plan {
		if s.Name() == name {
			out[i] = with
		} else {
			out[i] = s
		}
	}
	return out
}

// Until returns the prefix of the plan up to and including the named
// stage, or the whole plan if the name is absent.
func Until(plan []Stage, name string) []Stage {
	for i, s := range plan {
		if s.Name() == name {
			return append([]Stage(nil), plan[:i+1]...)
		}
	}
	return append([]Stage(nil), plan...)
}
