package pipeline

import (
	"context"
	"strings"
	"testing"
)

const ingestDoc1 = `<http://e/r1> <http://v/name> "Joe's Diner" .
<http://e/r1> <http://v/phone> "555-1234" .
<http://e/r2> <http://v/name> "Central Cafe" .
`

const ingestDoc2 = `<http://e2/a> <http://v/name> "Joe's Diner" .
this line is garbage
<http://e2/b> <http://v/name> "Central Cafe" .
`

func ingestParams() Params {
	return Params{K: 15, N: 3, NameK: 2, Theta: 0.6, Workers: 2}
}

func TestIngestStagesBuildKBs(t *testing.T) {
	st := NewIngestState(
		Source{Name: "KB1", R: strings.NewReader(ingestDoc1)},
		Source{Name: "KB2", R: strings.NewReader(ingestDoc2), Lenient: true},
		ingestParams(),
	)
	eng := Engine{Plan: IngestPlan()}
	if _, err := eng.Run(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	if st.KB1 == nil || st.KB2 == nil {
		t.Fatal("KBs not published")
	}
	if st.KB1.Len() != 2 || st.KB2.Len() != 2 {
		t.Errorf("KB sizes = (%d,%d), want (2,2)", st.KB1.Len(), st.KB2.Len())
	}
	if st.KB1.Name() != "KB1" || st.KB2.Name() != "KB2" {
		t.Errorf("KB names = (%q,%q)", st.KB1.Name(), st.KB2.Name())
	}
	if st.Skipped1 != 0 || st.Skipped2 != 1 {
		t.Errorf("skipped = (%d,%d), want (0,1)", st.Skipped1, st.Skipped2)
	}
}

func TestIngestStrictSourceFails(t *testing.T) {
	st := NewIngestState(
		Source{Name: "KB1", R: strings.NewReader(ingestDoc1)},
		Source{Name: "KB2", R: strings.NewReader(ingestDoc2)}, // garbage line, strict
		ingestParams(),
	)
	eng := Engine{Plan: IngestPlan()}
	if _, err := eng.Run(context.Background(), st); err == nil {
		t.Fatal("strict ingest of a malformed source succeeded")
	}
}

func TestIngestRequiresSources(t *testing.T) {
	st := NewState(nil, nil, ingestParams())
	eng := Engine{Plan: []Stage{Ingest()}}
	if _, err := eng.Run(context.Background(), st); err == nil {
		t.Fatal("ingest without sources succeeded")
	}
}

func TestKBBuildRequiresIngest(t *testing.T) {
	st := NewIngestState(Source{Name: "a", R: strings.NewReader("")}, Source{Name: "b", R: strings.NewReader("")}, ingestParams())
	eng := Engine{Plan: []Stage{KBBuild()}}
	if _, err := eng.Run(context.Background(), st); err == nil {
		t.Fatal("kb-build without ingest succeeded")
	}
}

func TestIngestHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := NewIngestState(
		Source{Name: "KB1", R: strings.NewReader(ingestDoc1)},
		Source{Name: "KB2", R: strings.NewReader(ingestDoc2), Lenient: true},
		ingestParams(),
	)
	eng := Engine{Plan: IngestPlan()}
	if _, err := eng.Run(ctx, st); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
