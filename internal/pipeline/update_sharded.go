// Epoch maintenance of a sharded index's sub-substrates. The owner
// partition is by URI hash, so surviving entities never migrate across
// shards: a mutation's substrate patch splits cleanly into per-shard
// parts that touch only the shards owning mutated entities, and those
// parts apply concurrently — writers against different shards no
// longer contend on one inverted index.
package pipeline

import (
	"context"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
)

// AttachShardSubs splits the cache's side-1 substrate into the k
// owner-restricted sub-substrates mutations maintain; k <= 1 detaches
// them (an unsharded index carries none). Callers invoke it on an
// unpublished cache — freshly primed, or a value clone of the current
// epoch's — never on one readers already see.
//
//minoaner:mutator callers hold the only reference: the cache is freshly primed or a private value clone
func (c *Cache) AttachShardSubs(kb1 *kb.KB, k int) {
	if k <= 1 {
		c.ShardSubs, c.ShardOwners = nil, nil
		return
	}
	c.ShardOwners = ShardOwners(kb1, k)
	c.ShardSubs = c.Prep1.SplitByOwner(c.ShardOwners, k)
}

// updateShardSubs carries the owner-restricted sub-substrates of the
// previous epoch into the next one, as part of UpdateNameBlocking
// (which already derived the side-1 patch). A side-2 mutation shares
// them untouched; a side-1 mutation applies the owner-split patch per
// shard, in parallel, leaving shards without owned edits
// pointer-shared. The name-rebuild fallback (stable1 == false)
// re-splits the rebuilt substrate wholesale, mirroring what it does to
// the unsplit name postings.
//
//minoaner:mutator writes u.next, the epoch cache under construction; it is published only after the plan completes
func updateShardSubs(st *State, u *updateSide, stable1 bool) {
	prevSubs := u.prev.ShardSubs
	if prevSubs == nil {
		return
	}
	k := len(prevSubs)
	if u.d1.Identity {
		u.next.ShardSubs = prevSubs
		u.next.ShardOwners = u.prev.ShardOwners
		return
	}
	owners := ShardOwners(st.KB1, k)
	u.next.ShardOwners = owners
	if k == 1 {
		// The single shard is the substrate itself.
		u.next.ShardSubs = []*blocking.Prepared{u.next.Prep1}
		return
	}
	if !stable1 {
		u.next.ShardSubs = u.next.Prep1.SplitByOwner(owners, k)
		return
	}
	parts := blocking.SplitPatchByOwner(u.pt1, owners, k)
	subs := make([]*blocking.Prepared, k)
	_ = parallelFor(context.Background(), k, st.Params.workers(), func(_, start, end int) error {
		for s := start; s < end; s++ {
			if parts[s].IsEmpty() {
				subs[s] = prevSubs[s]
			} else {
				subs[s] = prevSubs[s].ApplyPatch(parts[s])
			}
		}
		return nil
	})
	u.next.ShardSubs = subs
}
