package pipeline

import (
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// firstEligible returns the best candidate not already claimed by H1.
func firstEligible(cands []Cand, h1Taken map[kb.EntityID]kb.EntityID) (Cand, bool) {
	for _, c := range cands {
		if _, taken := h1Taken[c.ID]; taken {
			continue
		}
		return c, true
	}
	return Cand{}, false
}

// aggregateRanks implements H3's threshold-free rank aggregation. Both
// lists are already sorted by descending similarity; the candidate at
// position i of a list of size L receives normalized rank (L-i)/L, and
// candidates absent from a list receive 0 for it. The aggregate score
// is θ·valueRank + (1-θ)·neighborRank; the top-1 candidate wins (ties
// by ascending ID).
func aggregateRanks(value, neighbor []Cand, theta float64, skip func(kb.EntityID) bool) (kb.EntityID, bool) {
	// The candidate lists are top-K cuts (a couple dozen entries), so
	// a small slice with linear lookup beats a map — same sums in the
	// same order (each ID accumulates its value contribution before
	// its neighbor contribution), just without the hashing.
	type idScore struct {
		id    kb.EntityID
		score float64
	}
	scores := make([]idScore, 0, len(value)+len(neighbor))
	add := func(id kb.EntityID, s float64) {
		for i := range scores {
			if scores[i].id == id {
				scores[i].score += s
				return
			}
		}
		scores = append(scores, idScore{id: id, score: s})
	}
	addList := func(list []Cand, w float64) {
		eligible := make([]Cand, 0, len(list))
		for _, c := range list {
			if c.Sim <= 0 || skip(c.ID) {
				continue
			}
			eligible = append(eligible, c)
		}
		l := float64(len(eligible))
		for i, c := range eligible {
			add(c.ID, w*(l-float64(i))/l)
		}
	}
	addList(value, theta)
	addList(neighbor, 1-theta)
	if len(scores) == 0 {
		return 0, false
	}
	// Top-1 by score, ties to the smallest ID — what the sorted-ID
	// scan with a strict > comparison selected.
	best := scores[0]
	for _, c := range scores[1:] {
		if c.score > best.score || (c.score == best.score && c.id < best.id) {
			best = c
		}
	}
	return best.id, true
}

// reciprocal implements H4: e2 must appear in e1's top-K value or
// neighbor candidates, and vice versa. Side-1 lists go through the
// lazy accessors so prepared-side runs only materialize them for the
// entities that reach this check.
func (s *State) reciprocal(p eval.Pair) bool {
	return containsCand(s.valueCands1At(p.E1), s.neighborCands1At(p.E1), p.E2) &&
		containsCand(s.ValueCands2[p.E2], s.NeighborCands2[p.E2], p.E1)
}

func containsCand(value, neighbor []Cand, id kb.EntityID) bool {
	for _, c := range value {
		if c.ID == id {
			return true
		}
	}
	for _, c := range neighbor {
		if c.ID == id {
			return true
		}
	}
	return false
}
