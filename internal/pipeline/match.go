package pipeline

import (
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// firstEligible returns the best candidate not already claimed by H1.
func firstEligible(cands []Cand, h1Taken map[kb.EntityID]kb.EntityID) (Cand, bool) {
	for _, c := range cands {
		if _, taken := h1Taken[c.ID]; taken {
			continue
		}
		return c, true
	}
	return Cand{}, false
}

// aggregateRanks implements H3's threshold-free rank aggregation. Both
// lists are already sorted by descending similarity; the candidate at
// position i of a list of size L receives normalized rank (L-i)/L, and
// candidates absent from a list receive 0 for it. The aggregate score
// is θ·valueRank + (1-θ)·neighborRank; the top-1 candidate wins (ties
// by ascending ID).
func aggregateRanks(value, neighbor []Cand, theta float64, skip func(kb.EntityID) bool) (kb.EntityID, bool) {
	scores := make(map[kb.EntityID]float64, len(value)+len(neighbor))
	addList := func(list []Cand, w float64) {
		eligible := make([]Cand, 0, len(list))
		for _, c := range list {
			if c.Sim <= 0 || skip(c.ID) {
				continue
			}
			eligible = append(eligible, c)
		}
		l := float64(len(eligible))
		for i, c := range eligible {
			scores[c.ID] += w * (l - float64(i)) / l
		}
	}
	addList(value, theta)
	addList(neighbor, 1-theta)
	if len(scores) == 0 {
		return 0, false
	}
	var best kb.EntityID
	bestScore := -1.0
	ids := make([]kb.EntityID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if s := scores[id]; s > bestScore {
			bestScore = s
			best = id
		}
	}
	return best, true
}

// reciprocal implements H4: e2 must appear in e1's top-K value or
// neighbor candidates, and vice versa. Side-1 lists go through the
// lazy accessors so prepared-side runs only materialize them for the
// entities that reach this check.
func (s *State) reciprocal(p eval.Pair) bool {
	return containsCand(s.valueCands1At(p.E1), s.neighborCands1At(p.E1), p.E2) &&
		containsCand(s.ValueCands2[p.E2], s.NeighborCands2[p.E2], p.E1)
}

func containsCand(value, neighbor []Cand, id kb.EntityID) bool {
	for _, c := range value {
		if c.ID == id {
			return true
		}
	}
	for _, c := range neighbor {
		if c.ID == id {
			return true
		}
	}
	return false
}
