package pipeline

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
)

func TestAggregateRanks(t *testing.T) {
	value := []Cand{{ID: 10, Sim: 0.9}, {ID: 20, Sim: 0.5}}
	neighbor := []Cand{{ID: 20, Sim: 3.0}, {ID: 30, Sim: 1.0}}
	noskip := func(kb.EntityID) bool { return false }
	// θ=0.6: 10 → 0.6*1.0 = 0.6; 20 → 0.6*0.5 + 0.4*1.0 = 0.7; 30 → 0.4*0.5=0.2.
	best, ok := aggregateRanks(value, neighbor, 0.6, noskip)
	if !ok || best != 20 {
		t.Errorf("best = %d, want 20", best)
	}
	// θ high → value list dominates.
	best, _ = aggregateRanks(value, neighbor, 0.9, noskip)
	if best != 10 {
		t.Errorf("best = %d, want 10 at θ=0.9", best)
	}
	// Empty evidence.
	if _, ok := aggregateRanks(nil, nil, 0.6, noskip); ok {
		t.Error("aggregateRanks on empty lists returned ok")
	}
	// Skip filter removes the winner.
	best, ok = aggregateRanks(value, neighbor, 0.6, func(id kb.EntityID) bool { return id == 20 })
	if !ok || best != 10 {
		t.Errorf("best = %d, want 10 after skipping 20", best)
	}
}

func TestAggregateRanksZeroSims(t *testing.T) {
	value := []Cand{{ID: 1, Sim: 0}}
	if _, ok := aggregateRanks(value, nil, 0.6, func(kb.EntityID) bool { return false }); ok {
		t.Error("zero-similarity candidates must be ignored")
	}
}

func TestThetaExtremesChangeH3(t *testing.T) {
	value := []Cand{{ID: 1, Sim: 5}, {ID: 2, Sim: 4}}
	neighbor := []Cand{{ID: 2, Sim: 9}, {ID: 1, Sim: 1}}
	noskip := func(kb.EntityID) bool { return false }
	lowTheta, _ := aggregateRanks(value, neighbor, 0.01, noskip)
	highTheta, _ := aggregateRanks(value, neighbor, 0.99, noskip)
	if lowTheta != 2 {
		t.Errorf("θ→0 should follow neighbors: got %d", lowTheta)
	}
	if highTheta != 1 {
		t.Errorf("θ→1 should follow values: got %d", highTheta)
	}
}

func TestAccumulatorTopK(t *testing.T) {
	acc := newAccumulator(10)
	acc.add(3, 1.0)
	acc.add(5, 2.0)
	acc.add(3, 0.5)
	acc.add(7, 2.0)
	top := acc.topK(2)
	// 5 and 7 tie at 2.0; ascending ID breaks the tie.
	want := []Cand{{ID: 5, Sim: 2.0}, {ID: 7, Sim: 2.0}}
	if !reflect.DeepEqual(top, want) {
		t.Errorf("topK = %v, want %v", top, want)
	}
	acc.reset()
	if got := acc.topK(2); got != nil {
		t.Errorf("after reset topK = %v", got)
	}
	// Reuse after reset.
	acc.add(1, 1.5)
	if got := acc.topK(5); len(got) != 1 || got[0].ID != 1 || math.Abs(got[0].Sim-1.5) > 1e-12 {
		t.Errorf("reused accumulator wrong: %v", got)
	}
}

func TestTokenWeights(t *testing.T) {
	c := blocking.NewCollection(4, 4)
	c.Blocks = append(c.Blocks,
		blocking.Block{Key: "rare", E1: []kb.EntityID{0}, E2: []kb.EntityID{0}},
		blocking.Block{Key: "mid", E1: []kb.EntityID{0, 1}, E2: []kb.EntityID{0, 1}},
	)
	w := tokenWeights(c)
	if math.Abs(w[0]-1) > 1e-12 {
		t.Errorf("rare weight = %f, want 1", w[0])
	}
	if want := 1 / math.Log2(5); math.Abs(w[1]-want) > 1e-12 {
		t.Errorf("mid weight = %f, want %f", w[1], want)
	}
	if w[0] <= w[1] {
		t.Error("rarer token must weigh more")
	}
}

func TestParallelForCoversAll(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 3, 7, 100} {
		n := 57
		covered := make([]int32, n)
		err := parallelFor(ctx, n, workers, func(worker, start, end int) error {
			for i := start; i < end; i++ {
				covered[i]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
	err := parallelFor(ctx, 0, 4, func(worker, start, end int) error {
		t.Error("work called for n=0")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelForPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	err := parallelFor(context.Background(), 40, 4, func(worker, start, end int) error {
		if start == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = parallelFor(ctx, 40, 4, func(worker, start, end int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v", err)
	}
}
