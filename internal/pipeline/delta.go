// Prepared-side matching: the stages and state variant that resolve a
// small delta KB against a frozen left side in O(|delta|) instead of
// re-deriving the full pair. The left KB's blocking substrate
// (blocking.Prepared) and neighbor view (kb.Frozen) are built once;
// a delta run probes them with only the delta's keys, and the side-1
// candidate arrays — which the full plan materializes for every left
// entity — are computed lazily for just the entities the matching
// heuristics actually touch.
//
// The delta plan is bit-identical to the full plan on the same pair:
// probed collections reproduce the full construction's blocks in the
// same key order with the same member order, purging and ARCS
// weighting run unchanged on them, and the lazy side-1 computations
// accumulate in exactly the order the eager stages use, so every
// floating-point sum — and therefore every match — is the same.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
)

// Prepared bundles the frozen left side of a delta run: the one-sided
// blocking substrate and the sealed neighbor view. Build it once with
// PrepareSide (or load it from a snapshot) and share it across any
// number of concurrent delta runs.
//
//minoaner:frozen
type Prepared struct {
	// Blocks is the frozen token/name inverted index of the left KB.
	Blocks *blocking.Prepared
	// Neighbors is the sealed best-neighbor view of the left KB.
	Neighbors *kb.Frozen
}

// PrepareSide freezes kb1 under the given parameters. The substrate is
// valid only for delta runs with the same NameK and N.
func PrepareSide(kb1 *kb.KB, p Params) *Prepared {
	return &Prepared{
		Blocks:    blocking.Prepare(kb1, p.NameK, p.workers()),
		Neighbors: kb1.Freeze(p.N, p.workers()),
	}
}

// deltaSide is the per-run working set of a prepared-side State: the
// probed collection's sparse side-1 index plus the lazily materialized
// side-1 candidate lists.
type deltaSide struct {
	prep *Prepared

	// shards, when non-nil, marks a scatter-gather run over a sharded
	// substrate (NewShardedDeltaState): the per-shard collections live
	// there and the lazy side-1 fills route to the owning shard.
	shards *shardRun

	byE1 map[kb.EntityID][]int32 // set by DeltaBlockIndexing
	rev2 [][]kb.EntityID         // delta-side reverse neighbors, set by DeltaNeighborCandidates

	vcDone, ncDone bool // stage-completion markers for preconditions

	// Lazy side-1 candidates, keyed by left entity. Map presence marks
	// "computed" (a nil list is a valid result). Filled only during the
	// single-goroutine matching stages, so no locking is needed.
	vc1 map[kb.EntityID][]Cand
	nc1 map[kb.EntityID][]Cand
	acc *accumulator // sized |delta|, reused across lazy fills
}

// NewDeltaState prepares the blackboard for one prepared-side run of a
// delta KB against the frozen left side. The delta must be strictly
// smaller than the left KB (so the matching heuristics emit from the
// delta side; larger deltas should run the full plan), and the
// substrate must have been prepared under the same NameK and N.
func NewDeltaState(prep *Prepared, delta *kb.KB, p Params) (*State, error) {
	if prep == nil || prep.Blocks == nil || prep.Neighbors == nil {
		return nil, errors.New("pipeline: delta state requires a prepared side (PrepareSide)")
	}
	if prep.Blocks.KBSize() != prep.Neighbors.KB().Len() {
		return nil, fmt.Errorf("pipeline: prepared blocks cover %d entities, neighbor view %d",
			prep.Blocks.KBSize(), prep.Neighbors.KB().Len())
	}
	if prep.Blocks.NameK() != p.NameK {
		return nil, fmt.Errorf("pipeline: substrate prepared with NameK=%d, run wants %d", prep.Blocks.NameK(), p.NameK)
	}
	if prep.Neighbors.N() != p.N {
		return nil, fmt.Errorf("pipeline: substrate prepared with N=%d, run wants %d", prep.Neighbors.N(), p.N)
	}
	if delta.Len() >= prep.Neighbors.KB().Len() {
		return nil, fmt.Errorf("pipeline: delta (%d entities) is not smaller than the prepared KB (%d); run the full plan",
			delta.Len(), prep.Neighbors.KB().Len())
	}
	st := NewState(prep.Neighbors.KB(), delta, p)
	st.delta = &deltaSide{
		prep: prep,
		vc1:  make(map[kb.EntityID][]Cand),
		nc1:  make(map[kb.EntityID][]Cand),
		acc:  newAccumulator(delta.Len()),
	}
	return st, nil
}

// DeltaPlan returns the prepared-side counterpart of DefaultPlan. The
// probe and delta stages keep the standard stage names, so plan edits
// (ablation Drops) and progress reporting work identically; purging,
// token weighting, and all four matching heuristics are the very same
// stages the full plan runs.
func DeltaPlan() []Stage {
	return []Stage{
		ProbeNameBlocking(),
		ProbeTokenBlocking(),
		BlockPurging(),
		DeltaBlockIndexing(),
		TokenWeighting(),
		DeltaValueCandidates(),
		DeltaNeighborCandidates(),
		NameMatching(),
		ValueMatching(),
		RankAggregation(),
		Union(),
		Reciprocity(),
	}
}

// errNotDelta guards the delta-only stages against full states.
var errNotDelta = errors.New("requires a prepared-side state (build it with NewDeltaState)")

// ProbeNameBlocking builds B_N by probing the frozen name index with
// the delta's name keys.
func ProbeNameBlocking() Stage {
	return newStage(StageNameBlocking, func(ctx context.Context, st *State) error {
		if st.delta == nil {
			return errNotDelta
		}
		var err error
		st.NameBlocks, err = st.delta.prep.Blocks.ProbeNameBlocks(ctx, st.KB2)
		if err != nil {
			return err
		}
		st.NameBlockCount = st.NameBlocks.Size()
		st.NameComparisons = st.NameBlocks.Comparisons()
		return nil
	})
}

// ProbeTokenBlocking builds the raw B_T by probing the frozen token
// index with the delta's tokens.
func ProbeTokenBlocking() Stage {
	return newStage(StageTokenBlocking, func(ctx context.Context, st *State) error {
		if st.delta == nil {
			return errNotDelta
		}
		var err error
		st.TokenBlocks, err = st.delta.prep.Blocks.ProbeTokenBlocks(ctx, st.KB2)
		return err
	})
}

// DeltaBlockIndexing indexes the purged B_T for a delta run: the delta
// side fully (it drives candidate scoring), the left side as a sparse
// map covering only the entities the probed blocks actually contain —
// the access path of the lazy side-1 candidate fills.
func DeltaBlockIndexing() Stage {
	return newStage(StageBlockIndexing, func(ctx context.Context, st *State) error {
		if st.delta == nil {
			return errNotDelta
		}
		if st.TokenBlocks == nil {
			return errors.New("requires token blocks (run " + StageTokenBlocking + " first)")
		}
		st.TokenIndex = &blocking.Index{ByE2: st.TokenBlocks.BuildIndexSide2()}
		st.delta.byE1 = st.TokenBlocks.BuildIndexSide1Sparse()
		return nil
	})
}

// DeltaValueCandidates computes the top-K value candidates of every
// delta entity — the same accumulation the eager stage performs for
// side 2 — and arms the lazy side-1 path for the entities H4 touches.
func DeltaValueCandidates() Stage {
	return newStage(StageValueCandidates, func(ctx context.Context, st *State) error {
		if st.delta == nil {
			return errNotDelta
		}
		if st.TokenIndex == nil {
			return errors.New("requires the token-block index (run " + StageBlockIndexing + " first)")
		}
		if st.Weights == nil {
			return errors.New("requires token weights (run " + StageTokenWeighting + " first)")
		}
		bt, idx, weights := st.TokenBlocks, st.TokenIndex, st.Weights
		n1 := st.KB1.Len()
		out := make([][]Cand, st.KB2.Len())
		err := parallelFor(ctx, st.KB2.Len(), st.Params.workers(), func(worker, start, end int) error {
			acc := newAccumulator(n1)
			for e := start; e < end; e++ {
				if (e-start)%cancelCheckStride == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				for _, bi := range idx.ByE2[e] {
					w := weights[bi]
					for _, o := range bt.Blocks[bi].E1 {
						acc.add(int32(o), w)
					}
				}
				out[e] = acc.topK(st.Params.K)
				acc.reset()
			}
			return nil
		})
		if err != nil {
			return err
		}
		st.ValueCands2 = out
		st.delta.vcDone = true
		return nil
	})
}

// DeltaNeighborCandidates computes the top-K neighbor candidates of
// every delta entity from the delta's own best neighbors and the
// frozen reverse-neighbor view of the left side, and retains the
// delta-side reverse index the lazy side-1 fills need.
func DeltaNeighborCandidates() Stage {
	return newStage(StageNeighborCandidates, func(ctx context.Context, st *State) error {
		if st.delta == nil {
			return errNotDelta
		}
		if !st.delta.vcDone {
			return errors.New("requires value candidates (run " + StageValueCandidates + " first)")
		}
		top2 := topNeighborLists(st.KB2, st.Params.N)
		rev2 := reverseNeighborIndex(top2, st.KB2.Len())
		rev1 := st.delta.prep.Neighbors.RevLists()
		vc2 := st.ValueCands2
		out := make([][]Cand, st.KB2.Len())
		err := parallelFor(ctx, st.KB2.Len(), st.Params.workers(), func(worker, start, end int) error {
			acc := newAccumulator(st.KB1.Len())
			for e := start; e < end; e++ {
				if (e-start)%cancelCheckStride == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				for _, nej := range top2[e] {
					for _, cand := range vc2[nej] {
						if cand.Sim <= 0 {
							continue
						}
						for _, e1 := range rev1[cand.ID] {
							acc.add(int32(e1), cand.Sim)
						}
					}
				}
				out[e] = acc.topK(st.Params.K)
				acc.reset()
			}
			return nil
		})
		if err != nil {
			return err
		}
		st.NeighborCands2 = out
		st.delta.rev2 = rev2
		st.delta.ncDone = true
		return nil
	})
}

// haveValueCands reports whether value-candidate evidence is available
// on both sides — materialized arrays, or the lazy side-1 path of a
// delta run.
func (s *State) haveValueCands() bool {
	if s.delta != nil {
		return s.delta.vcDone && s.ValueCands2 != nil
	}
	return s.ValueCands1 != nil && s.ValueCands2 != nil
}

// haveNeighborCands is haveValueCands for neighbor evidence.
func (s *State) haveNeighborCands() bool {
	if s.delta != nil {
		return s.delta.ncDone && s.NeighborCands2 != nil
	}
	return s.NeighborCands1 != nil && s.NeighborCands2 != nil
}

// valueCands1At returns the value candidates of a left entity,
// materializing them lazily on a delta run. The lazy fill accumulates
// over the entity's blocks in ascending position with members in block
// order — exactly the eager stage's order — so the similarities (and
// their top-K cut) are bit-identical.
func (s *State) valueCands1At(e kb.EntityID) []Cand {
	if s.delta == nil {
		return s.ValueCands1[e]
	}
	d := s.delta
	if cands, done := d.vc1[e]; done {
		return cands
	}
	if sr := d.shards; sr != nil {
		// Sharded run: the entity's blocks all live on its owning
		// shard, in the same ascending key order and with the same
		// global weights the unsplit collection carries, so the routed
		// accumulation is bit-identical.
		sh := sr.sp.owners[e]
		for _, bi := range sr.byE1[sh][e] {
			w := sr.weights[sh][bi]
			for _, o := range sr.tb[sh].Blocks[bi].E2 {
				d.acc.add(int32(o), w)
			}
		}
	} else {
		for _, bi := range d.byE1[e] {
			w := s.Weights[bi]
			for _, o := range s.TokenBlocks.Blocks[bi].E2 {
				d.acc.add(int32(o), w)
			}
		}
	}
	cands := d.acc.topK(s.Params.K)
	d.acc.reset()
	d.vc1[e] = cands
	return cands
}

// neighborCands1At returns the neighbor candidates of a left entity,
// materializing them lazily on a delta run from the frozen neighbor
// lists and the (lazy) value candidates of the entity's neighbors.
func (s *State) neighborCands1At(e kb.EntityID) []Cand {
	if s.delta == nil {
		return s.NeighborCands1[e]
	}
	d := s.delta
	if cands, done := d.nc1[e]; done {
		return cands
	}
	// The lazy value fills below share d.acc; gather the neighbor
	// contributions first so the aggregation uses it exclusively.
	type contrib struct {
		id  kb.EntityID
		sim float64
	}
	var contribs []contrib
	for _, nei := range d.prep.Neighbors.Top(e) {
		for _, cand := range s.valueCands1At(nei) {
			if cand.Sim <= 0 {
				continue
			}
			for _, e2 := range d.rev2[cand.ID] {
				contribs = append(contribs, contrib{id: e2, sim: cand.Sim})
			}
		}
	}
	for _, c := range contribs {
		d.acc.add(int32(c.id), c.sim)
	}
	cands := d.acc.topK(s.Params.K)
	d.acc.reset()
	d.nc1[e] = cands
	return cands
}
