package pipeline

import (
	"context"
	"math"
	"sort"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// Cand is one candidate match of an entity, with its similarity under
// one evidence type.
type Cand struct {
	ID  kb.EntityID
	Sim float64
}

// tokenWeights assigns each token block of the (purged) collection its
// ARCS weight 1/log2(EF1·EF2+1). Because Token Blocking keys blocks by
// token, EF_E(t) is exactly the number of the block's members from E.
func tokenWeights(bt *blocking.Collection) []float64 {
	w := make([]float64, len(bt.Blocks))
	for i := range bt.Blocks {
		b := &bt.Blocks[i]
		w[i] = 1 / math.Log2(float64(len(b.E1))*float64(len(b.E2))+1)
	}
	return w
}

// valueCandidates computes, for every entity of both KBs, its top-K
// co-occurring entities by valueSim. The similarity is accumulated
// block-by-block: each shared token block contributes its weight to
// every cross pair it suggests, which realizes
// valueSim = Σ_{shared tokens} w(t) over the blocks' tokens.
func valueCandidates(ctx context.Context, bt *blocking.Collection, idx *blocking.Index, weights []float64, k, workers int) ([][]Cand, [][]Cand, error) {
	n1, n2 := bt.KBSizes()
	side1 := make([][]Cand, n1)
	side2 := make([][]Cand, n2)

	run := func(n, other int, byEnt [][]int32, members func(bi int32) []kb.EntityID, out [][]Cand) error {
		return parallelFor(ctx, n, workers, func(worker, start, end int) error {
			acc := newAccumulator(other)
			for e := start; e < end; e++ {
				if (e-start)%cancelCheckStride == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				for _, bi := range byEnt[e] {
					w := weights[bi]
					for _, o := range members(bi) {
						acc.add(int32(o), w)
					}
				}
				out[e] = acc.topK(k)
				acc.reset()
			}
			return nil
		})
	}
	if err := run(n1, n2, idx.ByE1, func(bi int32) []kb.EntityID { return bt.Blocks[bi].E2 }, side1); err != nil {
		return nil, nil, err
	}
	if err := run(n2, n1, idx.ByE2, func(bi int32) []kb.EntityID { return bt.Blocks[bi].E1 }, side2); err != nil {
		return nil, nil, err
	}
	return side1, side2, nil
}

// neighborCandidates computes, for every entity, its top-K candidates
// by neighbor similarity:
//
//	neighborNSim(e_i, e_j) = Σ valueSim(n_i, n_j)
//
// over pairs (n_i, n_j) of best neighbors (via the N most important
// relations of each entity). The sum is realized through the top-K
// value-candidate lists of the neighbors — exactly the evidence the
// blocks provide — so only pairs co-occurring in token blocks
// contribute, as in the paper's blocks-centric computation.
func neighborCandidates(ctx context.Context, kb1, kb2 *kb.KB, vc1, vc2 [][]Cand, n, k, workers int) ([][]Cand, [][]Cand, error) {
	top1 := topNeighborListsN(kb1, n, workers)
	top2 := topNeighborListsN(kb2, n, workers)
	rev1 := reverseNeighborIndex(top1, kb1.Len())
	rev2 := reverseNeighborIndex(top2, kb2.Len())

	out1 := make([][]Cand, kb1.Len())
	out2 := make([][]Cand, kb2.Len())

	// Side 1: neighbors n_i of e_1 propose, through their value
	// candidates n_j, every e_2 that has n_j among its best neighbors.
	err := parallelFor(ctx, kb1.Len(), workers, func(worker, start, end int) error {
		acc := newAccumulator(kb2.Len())
		for e := start; e < end; e++ {
			if (e-start)%cancelCheckStride == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			for _, nei := range top1[e] {
				for _, cand := range vc1[nei] {
					if cand.Sim <= 0 {
						continue
					}
					for _, e2 := range rev2[cand.ID] {
						acc.add(int32(e2), cand.Sim)
					}
				}
			}
			out1[e] = acc.topK(k)
			acc.reset()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	err = parallelFor(ctx, kb2.Len(), workers, func(worker, start, end int) error {
		acc := newAccumulator(kb1.Len())
		for e := start; e < end; e++ {
			if (e-start)%cancelCheckStride == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			for _, nej := range top2[e] {
				for _, cand := range vc2[nej] {
					if cand.Sim <= 0 {
						continue
					}
					for _, e1 := range rev1[cand.ID] {
						acc.add(int32(e1), cand.Sim)
					}
				}
			}
			out2[e] = acc.topK(k)
			acc.reset()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out1, out2, nil
}

func topNeighborLists(k *kb.KB, n int) [][]kb.EntityID {
	out := make([][]kb.EntityID, k.Len())
	for i := 0; i < k.Len(); i++ {
		out[i] = k.TopNeighbors(kb.EntityID(i), n)
	}
	return out
}

// topNeighborListsN is topNeighborLists across workers; every slot is
// written exactly once, so the result is identical to the serial one.
func topNeighborListsN(k *kb.KB, n, workers int) [][]kb.EntityID {
	out := make([][]kb.EntityID, k.Len())
	// The work function never fails and the context is never cancelled,
	// so the error is structurally nil.
	_ = parallelFor(context.Background(), k.Len(), workers, func(_, start, end int) error {
		for i := start; i < end; i++ {
			out[i] = k.TopNeighbors(kb.EntityID(i), n)
		}
		return nil
	})
	return out
}

// reverseNeighborIndex inverts top-neighbor lists: for each entity x,
// the entities that count x among their best neighbors.
func reverseNeighborIndex(top [][]kb.EntityID, n int) [][]kb.EntityID {
	rev := make([][]kb.EntityID, n)
	for e, nbrs := range top {
		for _, x := range nbrs {
			rev[x] = append(rev[x], kb.EntityID(e))
		}
	}
	return rev
}

// accumulator aggregates per-candidate similarity with O(1) reset via
// a touched list.
type accumulator struct {
	sums    []float64
	touched []int32
}

func newAccumulator(n int) *accumulator {
	return &accumulator{sums: make([]float64, n)}
}

func (a *accumulator) add(id int32, w float64) {
	if a.sums[id] == 0 {
		a.touched = append(a.touched, id)
	}
	a.sums[id] += w
}

func (a *accumulator) reset() {
	for _, id := range a.touched {
		a.sums[id] = 0
	}
	a.touched = a.touched[:0]
}

// topK selects the k best candidates by similarity (ties by ascending
// ID) from the touched set.
func (a *accumulator) topK(k int) []Cand {
	if len(a.touched) == 0 {
		return nil
	}
	cands := make([]Cand, 0, len(a.touched))
	for _, id := range a.touched {
		cands = append(cands, Cand{ID: kb.EntityID(id), Sim: a.sums[id]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Sim != cands[j].Sim {
			return cands[i].Sim > cands[j].Sim
		}
		return cands[i].ID < cands[j].ID
	})
	if k < len(cands) {
		cands = cands[:k:k]
	}
	return cands
}

// cancelCheckStride is how many per-entity iterations a parallel loop
// runs between context checks; see parallel.CancelCheckStride.
const cancelCheckStride = parallel.CancelCheckStride

// parallelFor is the shared chunked parallel loop, promoted to
// internal/parallel so the ingest and blocking layers use the same
// primitive.
func parallelFor(ctx context.Context, n, workers int, work func(worker, start, end int) error) error {
	return parallel.For(ctx, n, workers, work)
}
