// Sharded prepared-side matching: scatter a delta across K
// hash-partitioned sub-substrates of the left KB, probe and score each
// shard independently, and gather the ranked candidates through
// cross-shard merges that reconstruct — slot for slot and float for
// float — the accumulation the single-substrate stages perform.
//
// The partition is by entity: owner(e) = parallel.ShardOf(URI(e), K),
// so an entity's shard never changes across mutations (URIs are the
// stable identity; IDs may be remapped). Each shard's postings keep
// global entity IDs and report the global KB size, which makes the
// merge arguments exact:
//
//   - Per-key evidence: a probed key's left members are the disjoint
//     union of the per-shard postings, each ascending, so an
//     ascending-ID merge reproduces the unsplit posting exactly. Purge
//     cutoffs and ARCS weights are computed from the merged (global)
//     member counts, never the per-shard ones.
//   - Per-slot sums: a left entity's similarity accumulates only from
//     blocks that contain it — all owned by its shard — iterated in
//     the same ascending key order with the same global weights, so
//     every float sum is bit-identical to the unsplit run's. Weights
//     are strictly positive, so a shard's touched set is exactly the
//     global touched set restricted to the shard.
//   - Top-K gather: the ranking comparator (Sim desc, ID asc) is a
//     total order and every global top-K candidate ranks within the
//     top K of its own shard, so concatenating the per-shard top-K
//     lists, re-sorting under the same comparator, and cutting to K
//     yields the global list exactly. H3's rank aggregation and H4's
//     reciprocity then run unchanged on merged evidence.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// ShardedPrepared is the scatter-gather substrate of a sharded index:
// the unsplit prepared side plus K owner-restricted sub-substrates and
// the owner-partitioned reverse-neighbor views the sharded neighbor
// stage scatters over.
type ShardedPrepared struct {
	base   *Prepared
	subs   []*blocking.Prepared
	owners []int32
	// revBy[s][x] is Neighbors.RevLists()[x] restricted to entities
	// owned by shard s, in the same (ascending) order.
	revBy [][][]kb.EntityID
}

// ShardOwners assigns every entity of the KB to one of k shards by the
// stable FNV-1a hash of its URI. The assignment is independent of
// entity IDs, so it survives ID remaps: a mutated epoch recomputes it
// and every surviving entity lands on the same shard.
func ShardOwners(kb1 *kb.KB, k int) []int32 {
	owners := make([]int32, kb1.Len())
	if k <= 1 {
		return owners
	}
	_ = parallel.For(context.Background(), kb1.Len(), parallel.Workers(0), func(_, start, end int) error {
		for e := start; e < end; e++ {
			owners[e] = int32(parallel.ShardOf(kb1.URI(kb.EntityID(e)), k))
		}
		return nil
	})
	return owners
}

// ShardSide splits a prepared side into k owner-restricted
// sub-substrates. k = 1 shares the substrate outright.
func ShardSide(base *Prepared, k int) (*ShardedPrepared, error) {
	if base == nil || base.Blocks == nil || base.Neighbors == nil {
		return nil, errors.New("pipeline: sharding requires a prepared side (PrepareSide)")
	}
	if k < 1 {
		return nil, fmt.Errorf("pipeline: shard count %d out of range (need >= 1)", k)
	}
	owners := ShardOwners(base.Neighbors.KB(), k)
	var subs []*blocking.Prepared
	if k == 1 {
		subs = []*blocking.Prepared{base.Blocks}
	} else {
		subs = base.Blocks.SplitByOwner(owners, k)
	}
	return ShardedFromParts(base, subs, owners)
}

// ShardedFromParts assembles a sharded substrate from already-split
// parts — the epoch-maintenance path, where the sub-substrates are
// patched incrementally and only the reverse-neighbor partition needs
// re-deriving. The parts must be an owner split of base.
func ShardedFromParts(base *Prepared, subs []*blocking.Prepared, owners []int32) (*ShardedPrepared, error) {
	if base == nil || base.Blocks == nil || base.Neighbors == nil {
		return nil, errors.New("pipeline: sharding requires a prepared side (PrepareSide)")
	}
	if len(subs) == 0 {
		return nil, errors.New("pipeline: sharded substrate needs at least one shard")
	}
	if len(owners) != base.Neighbors.KB().Len() {
		return nil, fmt.Errorf("pipeline: owner map covers %d entities, KB has %d", len(owners), base.Neighbors.KB().Len())
	}
	if err := blocking.ValidateSplit(base.Blocks, subs); err != nil {
		return nil, err
	}
	sp := &ShardedPrepared{base: base, subs: subs, owners: owners}
	rev := base.Neighbors.RevLists()
	if len(subs) == 1 {
		sp.revBy = [][][]kb.EntityID{rev}
		return sp, nil
	}
	sp.revBy = make([][][]kb.EntityID, len(subs))
	for s := range sp.revBy {
		sp.revBy[s] = make([][]kb.EntityID, len(rev))
	}
	for x, lst := range rev {
		for _, e1 := range lst {
			s := owners[e1]
			sp.revBy[s][x] = append(sp.revBy[s][x], e1)
		}
	}
	return sp, nil
}

// Shards returns the shard count K.
func (sp *ShardedPrepared) Shards() int { return len(sp.subs) }

// Base returns the unsplit prepared side the shards were derived from.
func (sp *ShardedPrepared) Base() *Prepared { return sp.base }

// Subs returns the K owner-restricted sub-substrates.
func (sp *ShardedPrepared) Subs() []*blocking.Prepared { return sp.subs }

// Owners returns the entity-to-shard assignment.
func (sp *ShardedPrepared) Owners() []int32 { return sp.owners }

// shardRun is the per-run scatter state of a sharded delta run: the
// per-shard probed, purged, weighted, and indexed collections. Stages
// fill it in plan order; the lazy side-1 candidate fills route through
// it by owner.
type shardRun struct {
	sp *ShardedPrepared

	raw      []*blocking.Collection    // per-shard raw probed token blocks
	tb       []*blocking.Collection    // per-shard purged token blocks
	globalE1 [][]int32                 // per purged block: global left member count
	weights  [][]float64               // per purged block: global ARCS weight
	byE1     []map[kb.EntityID][]int32 // per-shard sparse left index
	byE2     [][][]int32               // per-shard delta-side index
}

// NewShardedDeltaState prepares the blackboard for one scatter-gather
// run of a delta KB against a sharded substrate, under the same
// preconditions as NewDeltaState.
func NewShardedDeltaState(sp *ShardedPrepared, delta *kb.KB, p Params) (*State, error) {
	if sp == nil {
		return nil, errors.New("pipeline: sharded delta state requires a sharded substrate (ShardSide)")
	}
	st, err := NewDeltaState(sp.base, delta, p)
	if err != nil {
		return nil, err
	}
	st.delta.shards = &shardRun{sp: sp}
	return st, nil
}

// ShardedDeltaPlan returns the scatter-gather counterpart of
// DeltaPlan. Every stage keeps its standard name, so ablation drops
// and progress reporting work identically; the matching heuristics are
// the very same stages the full and delta plans run, operating on the
// merged cross-shard evidence.
func ShardedDeltaPlan() []Stage {
	return []Stage{
		ShardProbeNameBlocking(),
		ShardProbeTokenBlocking(),
		ShardBlockPurging(),
		ShardBlockIndexing(),
		ShardTokenWeighting(),
		ShardValueCandidates(),
		ShardNeighborCandidates(),
		NameMatching(),
		ValueMatching(),
		RankAggregation(),
		Union(),
		Reciprocity(),
	}
}

// errNotSharded guards the sharded stages against unsharded states.
var errNotSharded = errors.New("requires a sharded state (build it with NewShardedDeltaState)")

func (s *State) shardRun() (*shardRun, error) {
	if s.delta == nil || s.delta.shards == nil {
		return nil, errNotSharded
	}
	return s.delta.shards, nil
}

// probeShards probes every sub-substrate with the delta in parallel.
func probeShards(ctx context.Context, sr *shardRun, workers int, probe func(sub *blocking.Prepared) (*blocking.Collection, error)) ([]*blocking.Collection, error) {
	cols := make([]*blocking.Collection, len(sr.sp.subs))
	err := parallelFor(ctx, len(sr.sp.subs), workers, func(_, start, end int) error {
		for s := start; s < end; s++ {
			c, err := probe(sr.sp.subs[s])
			if err != nil {
				return err
			}
			cols[s] = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// shardKeyWalk iterates the union of the keys of k key-sorted
// collections in ascending key order, calling fn once per key with the
// per-shard blocks (nil entries for shards missing the key).
func shardKeyWalk(cols []*blocking.Collection, fn func(key string, parts []*blocking.Block)) {
	k := len(cols)
	idx := make([]int, k)
	parts := make([]*blocking.Block, k)
	for {
		min := ""
		found := false
		for s := 0; s < k; s++ {
			if idx[s] >= len(cols[s].Blocks) {
				continue
			}
			key := cols[s].Blocks[idx[s]].Key
			if !found || key < min {
				min, found = key, true
			}
		}
		if !found {
			return
		}
		for s := 0; s < k; s++ {
			parts[s] = nil
			if idx[s] < len(cols[s].Blocks) && cols[s].Blocks[idx[s]].Key == min {
				parts[s] = &cols[s].Blocks[idx[s]]
				idx[s]++
			}
		}
		fn(min, parts)
	}
}

// mergeMembers merges disjoint ascending member lists into one
// ascending list, sharing the slice when only one shard contributes.
func mergeMembers(parts []*blocking.Block, side func(*blocking.Block) []kb.EntityID) []kb.EntityID {
	var single []kb.EntityID
	contributors, total := 0, 0
	for _, p := range parts {
		if p == nil || len(side(p)) == 0 {
			continue
		}
		contributors++
		single = side(p)
		total += len(side(p))
	}
	if contributors <= 1 {
		return single
	}
	out := make([]kb.EntityID, 0, total)
	for _, p := range parts {
		if p != nil {
			out = append(out, side(p)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ShardProbeNameBlocking builds B_N by probing every shard's name
// postings with the delta's name keys and merging the per-shard blocks
// into the global collection H1 consumes — bit-identical to the
// unsplit probe, because a key's left members are the disjoint union
// of the per-shard postings.
func ShardProbeNameBlocking() Stage {
	return newStage(StageNameBlocking, func(ctx context.Context, st *State) error {
		sr, err := st.shardRun()
		if err != nil {
			return err
		}
		cols, err := probeShards(ctx, sr, st.Params.workers(), func(sub *blocking.Prepared) (*blocking.Collection, error) {
			return sub.ProbeNameBlocks(ctx, st.KB2)
		})
		if err != nil {
			return err
		}
		merged := blocking.NewCollection(st.KB1.Len(), st.KB2.Len())
		shardKeyWalk(cols, func(key string, parts []*blocking.Block) {
			e1 := mergeMembers(parts, func(b *blocking.Block) []kb.EntityID { return b.E1 })
			var e2 []kb.EntityID
			for _, p := range parts {
				if p != nil {
					e2 = p.E2
					break
				}
			}
			merged.Blocks = append(merged.Blocks, blocking.Block{Key: key, E1: e1, E2: e2})
		})
		st.NameBlocks = merged
		st.NameBlockCount = merged.Size()
		st.NameComparisons = merged.Comparisons()
		return nil
	})
}

// ShardProbeTokenBlocking probes every shard's token postings with the
// delta's tokens, keeping the collections per shard — the scatter half
// of token blocking. Purging merges their statistics.
func ShardProbeTokenBlocking() Stage {
	return newStage(StageTokenBlocking, func(ctx context.Context, st *State) error {
		sr, err := st.shardRun()
		if err != nil {
			return err
		}
		sr.raw, err = probeShards(ctx, sr, st.Params.workers(), func(sub *blocking.Prepared) (*blocking.Collection, error) {
			return sub.ProbeTokenBlocks(ctx, st.KB2)
		})
		return err
	})
}

// ShardBlockPurging purges the per-shard token collections against the
// global member counts: a key survives iff the sum of its per-shard
// left members and its delta members both stay within the cutoffs the
// unsplit collection would see. Surviving blocks stay per shard (in
// key order) with their global left count recorded for weighting;
// the purge statistics count distinct keys, exactly as the unsplit
// stage reports them.
func ShardBlockPurging() Stage {
	return newStage(StageBlockPurging, func(ctx context.Context, st *State) error {
		sr, err := st.shardRun()
		if err != nil {
			return err
		}
		if sr.raw == nil {
			return errors.New("requires token blocks (run " + StageTokenBlocking + " first)")
		}
		cut1 := st.Params.Purge.Cutoff(st.KB1.Len())
		cut2 := st.Params.Purge.Cutoff(st.KB2.Len())
		k := len(sr.raw)
		sr.tb = make([]*blocking.Collection, k)
		sr.globalE1 = make([][]int32, k)
		for s := 0; s < k; s++ {
			sr.tb[s] = blocking.NewCollection(st.KB1.Len(), st.KB2.Len())
		}
		res := blocking.PurgeResult{Cutoff1: cut1, Cutoff2: cut2}
		var blockCount int
		var comparisons int64
		shardKeyWalk(sr.raw, func(key string, parts []*blocking.Block) {
			g1, e2len := 0, 0
			for _, p := range parts {
				if p == nil {
					continue
				}
				g1 += len(p.E1)
				e2len = len(p.E2)
			}
			if g1 > cut1 || e2len > cut2 {
				res.RemovedBlocks++
				res.RemovedComparisons += int64(g1) * int64(e2len)
				return
			}
			blockCount++
			comparisons += int64(g1) * int64(e2len)
			for s, p := range parts {
				if p == nil {
					continue
				}
				sr.tb[s].Blocks = append(sr.tb[s].Blocks, *p)
				sr.globalE1[s] = append(sr.globalE1[s], int32(g1))
			}
		})
		sr.raw = nil
		st.PurgeStats = res
		st.TokenBlockCount = blockCount
		st.TokenComparisons = comparisons
		return nil
	})
}

// ShardBlockIndexing indexes each shard's purged collection: the delta
// side fully (it drives the scatter), the left side as a sparse map
// for the lazy side-1 fills, which route to the owning shard.
func ShardBlockIndexing() Stage {
	return newStage(StageBlockIndexing, func(ctx context.Context, st *State) error {
		sr, err := st.shardRun()
		if err != nil {
			return err
		}
		if sr.tb == nil {
			return errors.New("requires purged token blocks (run " + StageBlockPurging + " first)")
		}
		k := len(sr.tb)
		sr.byE2 = make([][][]int32, k)
		sr.byE1 = make([]map[kb.EntityID][]int32, k)
		return parallelFor(ctx, k, st.Params.workers(), func(_, start, end int) error {
			for s := start; s < end; s++ {
				sr.byE2[s] = sr.tb[s].BuildIndexSide2()
				sr.byE1[s] = sr.tb[s].BuildIndexSide1Sparse()
			}
			return nil
		})
	})
}

// ShardTokenWeighting assigns every surviving per-shard block the ARCS
// weight of its key, computed from the global member counts — the same
// float expression the unsplit stage evaluates.
func ShardTokenWeighting() Stage {
	return newStage(StageTokenWeighting, func(ctx context.Context, st *State) error {
		sr, err := st.shardRun()
		if err != nil {
			return err
		}
		if sr.tb == nil {
			return errors.New("requires purged token blocks (run " + StageBlockPurging + " first)")
		}
		sr.weights = make([][]float64, len(sr.tb))
		for s, c := range sr.tb {
			w := make([]float64, len(c.Blocks))
			for bi := range c.Blocks {
				w[bi] = 1 / math.Log2(float64(sr.globalE1[s][bi])*float64(len(c.Blocks[bi].E2))+1)
			}
			sr.weights[s] = w
		}
		return nil
	})
}

// mergeTopK merges per-shard top-K candidate lists into the global
// top-K: the per-slot sums are identical and every global top-K member
// survives its own shard's cut, so sorting the union under the same
// comparator and cutting to k reproduces the unsplit list exactly
// (nil when no shard contributes).
func mergeTopK(parts [][]Cand, k int) []Cand {
	total := 0
	var single []Cand
	contributors := 0
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		contributors++
		single = p
		total += len(p)
	}
	if contributors == 0 {
		return nil
	}
	if contributors == 1 {
		return single
	}
	all := make([]Cand, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Sim != all[j].Sim {
			return all[i].Sim > all[j].Sim
		}
		return all[i].ID < all[j].ID
	})
	if k < len(all) {
		all = all[:k:k]
	}
	return all
}

// ShardValueCandidates is the scatter-gather value stage: every shard
// accumulates the delta's value similarity over its own blocks (the
// same per-slot sums the unsplit stage computes, because an entity's
// blocks all live on its shard), then the per-shard rankings merge
// into the global top-K per delta entity.
func ShardValueCandidates() Stage {
	return newStage(StageValueCandidates, func(ctx context.Context, st *State) error {
		sr, err := st.shardRun()
		if err != nil {
			return err
		}
		if sr.byE2 == nil {
			return errors.New("requires the token-block index (run " + StageBlockIndexing + " first)")
		}
		if sr.weights == nil {
			return errors.New("requires token weights (run " + StageTokenWeighting + " first)")
		}
		k := len(sr.tb)
		n1, n2 := st.KB1.Len(), st.KB2.Len()
		perShard := make([][][]Cand, k)
		err = parallelFor(ctx, k, st.Params.workers(), func(_, start, end int) error {
			for s := start; s < end; s++ {
				out := make([][]Cand, n2)
				acc := newAccumulator(n1)
				for e := 0; e < n2; e++ {
					if e%cancelCheckStride == 0 && ctx.Err() != nil {
						return ctx.Err()
					}
					for _, bi := range sr.byE2[s][e] {
						w := sr.weights[s][bi]
						for _, o := range sr.tb[s].Blocks[bi].E1 {
							acc.add(int32(o), w)
						}
					}
					out[e] = acc.topK(st.Params.K)
					acc.reset()
				}
				perShard[s] = out
			}
			return nil
		})
		if err != nil {
			return err
		}
		merged := make([][]Cand, n2)
		parts := make([][]Cand, k)
		for e := 0; e < n2; e++ {
			for s := 0; s < k; s++ {
				parts[s] = perShard[s][e]
			}
			merged[e] = mergeTopK(parts, st.Params.K)
		}
		st.ValueCands2 = merged
		st.delta.vcDone = true
		return nil
	})
}

// ShardNeighborCandidates is the scatter-gather neighbor stage: every
// shard aggregates the delta's neighbor similarity through its own
// partition of the frozen reverse-neighbor view (the merged value
// candidates are shared, so the evidence per slot is global), then the
// per-shard rankings merge into the global top-K per delta entity.
func ShardNeighborCandidates() Stage {
	return newStage(StageNeighborCandidates, func(ctx context.Context, st *State) error {
		sr, err := st.shardRun()
		if err != nil {
			return err
		}
		if !st.delta.vcDone {
			return errors.New("requires value candidates (run " + StageValueCandidates + " first)")
		}
		top2 := topNeighborLists(st.KB2, st.Params.N)
		rev2 := reverseNeighborIndex(top2, st.KB2.Len())
		vc2 := st.ValueCands2
		k := len(sr.sp.subs)
		n1, n2 := st.KB1.Len(), st.KB2.Len()
		perShard := make([][][]Cand, k)
		err = parallelFor(ctx, k, st.Params.workers(), func(_, start, end int) error {
			for s := start; s < end; s++ {
				revS := sr.sp.revBy[s]
				out := make([][]Cand, n2)
				acc := newAccumulator(n1)
				for e := 0; e < n2; e++ {
					if e%cancelCheckStride == 0 && ctx.Err() != nil {
						return ctx.Err()
					}
					for _, nej := range top2[e] {
						for _, cand := range vc2[nej] {
							if cand.Sim <= 0 {
								continue
							}
							for _, e1 := range revS[cand.ID] {
								acc.add(int32(e1), cand.Sim)
							}
						}
					}
					out[e] = acc.topK(st.Params.K)
					acc.reset()
				}
				perShard[s] = out
			}
			return nil
		})
		if err != nil {
			return err
		}
		merged := make([][]Cand, n2)
		parts := make([][]Cand, k)
		for e := 0; e < n2; e++ {
			for s := 0; s < k; s++ {
				parts[s] = perShard[s][e]
			}
			merged[e] = mergeTopK(parts, st.Params.K)
		}
		st.NeighborCands2 = merged
		st.delta.rev2 = rev2
		st.delta.ncDone = true
		return nil
	})
}
