// Anytime (streaming) matching: the heuristics emit each confirmed
// pair the moment H1–H4 agree on it, in decreasing pair quality,
// instead of accumulating everything into State and reporting at the
// end. Time-to-first-match is bounded by the cheap blocking prefix
// plus a handful of lazy candidate fills — not by KB size — and a
// budget (max pairs, max comparisons, or a context deadline) truncates
// the run to a deterministic prefix of the quality-ordered stream.
//
// Draining an unbudgeted stream yields exactly the batch plan's match
// set: the lazy per-entity candidate fills accumulate in the eager
// stages' iteration order (bit-identical similarities, same discipline
// as the delta path), H1 decisions are taken verbatim from the
// NameMatching stage, H2 and H3 decisions are mutually independent
// given the completed claim maps of the earlier heuristics, and no two
// heuristics ever emit the same pair — so the batch union's dedup is a
// no-op and any visit order reproduces the same set.
package pipeline

import (
	"context"
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// ScoredPair is one confirmed match of a streaming run, tagged with the
// heuristic that proposed it and a quality score that decreases
// monotonically over the stream.
type ScoredPair struct {
	// Pair is the match in canonical (E1, E2) orientation.
	Pair eval.Pair
	// Score orders the stream: emitted scores never increase. The
	// integer part is the heuristic tier (H1 name matches score highest,
	// then H2, then H3); the fraction ranks pairs within a tier by their
	// schedule position.
	Score float64
	// Heuristic identifies the proposing heuristic: 1 (names), 2
	// (values), or 3 (rank aggregation). H4 is a filter, never a
	// proposer, so it does not appear.
	Heuristic uint8
}

// StreamStrategy selects the pair-quality scheduler of a streaming run
// (Params.Strategy). Both strategies order the emitting side's entities
// so that entities with the rarest shared evidence stream first; they
// differ in how block weights translate into a visit order.
type StreamStrategy uint8

const (
	// ScheduleWeightOrdered visits entities by the ARCS weight of their
	// rarest token block, descending — the comparison-scheduling idea of
	// progressive meta-blocking applied per emitting entity.
	ScheduleWeightOrdered StreamStrategy = iota
	// ScheduleBlockRoundRobin walks the token blocks in decreasing ARCS
	// weight and takes one yet-unseen entity from each per round — the
	// block-centric scheduling variant.
	ScheduleBlockRoundRobin
)

// StreamBudget bounds a streaming run. Zero values mean unlimited; the
// wall-clock budget is expressed through the run's context deadline.
type StreamBudget struct {
	// MaxPairs stops the stream after this many emitted pairs.
	MaxPairs int
	// MaxComparisons stops the stream once the lazy candidate fills
	// have accumulated this many entity-entity contributions. It is
	// checked at entity boundaries, so a given budget always truncates
	// the stream at the same deterministic point.
	MaxComparisons int64
}

// StreamConfig carries a streaming run's budget and ablation switches.
// The Disable flags mirror core.Config's: a disabled heuristic's phase
// is skipped entirely, reproducing the batch plan with the matching
// stage dropped.
type StreamConfig struct {
	Budget StreamBudget

	DisableH1, DisableH2, DisableH3, DisableH4 bool
}

// RunStream executes the anytime matching process over a fresh State,
// calling emit for every confirmed pair in decreasing quality. emit
// returning false stops the run cleanly (nil error). The run ends when
// the schedule is exhausted, a budget is reached, or the context is
// cancelled; only the last returns an error (ctx.Err()).
func RunStream(ctx context.Context, st *State, cfg StreamConfig, emit func(ScoredPair) bool) error {
	// The prefix runs eagerly: blocking, purging, indexing, weighting,
	// and H1's 1-1 name matching are all cheap compared to candidate
	// scoring, which the streaming phases perform lazily per entity.
	// The name stack and the token stack write disjoint State fields
	// (name blocks and H1 maps versus token blocks, index, and
	// weights), so they run concurrently: time-to-first-match is
	// bounded by the slower of the two stacks, not their sum.
	namePlan := []Stage{NameBlocking(), NameMatching()}
	if cfg.DisableH1 {
		namePlan = Drop(namePlan, StageNameMatching)
	}
	tokenPlan := []Stage{
		TokenBlocking(),
		BlockPurging(),
		BlockIndexing(),
		TokenWeighting(),
	}
	var nameErr error
	nameDone := make(chan struct{})
	go func() {
		defer close(nameDone)
		_, nameErr = (&Engine{Plan: namePlan}).Run(ctx, st)
	}()
	_, tokenErr := (&Engine{Plan: tokenPlan}).Run(ctx, st)
	<-nameDone
	if tokenErr != nil {
		return tokenErr
	}
	if nameErr != nil {
		return nameErr
	}
	ev := newStreamEvidence(st)
	return ev.run(ctx, cfg, ev.schedule(st.Params.Strategy), emit)
}

// streamSide lazily materializes one side's candidate lists with the
// eager stages' exact accumulation order — blocks in ascending index
// position, members in block order, neighbor contributions gathered
// before touching the shared accumulator — so every similarity, and
// every decision derived from one, is bit-identical to the batch run.
type streamSide struct {
	by          [][]int32                    // own entity -> token blocks
	mem         func(bi int32) []kb.EntityID // opposite-side members of a block
	ensure      func()                       // builds top and rev on first neighbor use
	top         [][]kb.EntityID              // own best neighbors
	rev         [][]kb.EntityID              // opposite side's reverse best-neighbor index
	weights     []float64
	k           int
	comparisons *int64 // shared accumulation counter (StreamBudget.MaxComparisons)
	acc         *accumulator
	vc, nc      map[kb.EntityID][]Cand // memoized fills; presence marks "computed"
}

func (s *streamSide) valueCands(e kb.EntityID) []Cand {
	if cands, done := s.vc[e]; done {
		return cands
	}
	for _, bi := range s.by[e] {
		w := s.weights[bi]
		members := s.mem(bi)
		*s.comparisons += int64(len(members))
		for _, o := range members {
			s.acc.add(int32(o), w)
		}
	}
	cands := s.acc.topK(s.k)
	s.acc.reset()
	s.vc[e] = cands
	return cands
}

func (s *streamSide) neighborCands(e kb.EntityID) []Cand {
	if cands, done := s.nc[e]; done {
		return cands
	}
	s.ensure()
	// The nested value fills share s.acc; gather the neighbor
	// contributions first so the aggregation below uses it exclusively
	// (the delta path's neighborCands1At discipline).
	type contrib struct {
		id  kb.EntityID
		sim float64
	}
	var contribs []contrib
	for _, nei := range s.top[e] {
		for _, cand := range s.valueCands(nei) {
			if cand.Sim <= 0 {
				continue
			}
			for _, o := range s.rev[cand.ID] {
				contribs = append(contribs, contrib{id: o, sim: cand.Sim})
			}
		}
	}
	*s.comparisons += int64(len(contribs))
	for _, c := range contribs {
		s.acc.add(int32(c.id), c.sim)
	}
	cands := s.acc.topK(s.k)
	s.acc.reset()
	s.nc[e] = cands
	return cands
}

// streamEvidence orients the two lazy sides around the emitting
// (smaller) KB, exactly as the batch heuristics do via State.emission.
type streamEvidence struct {
	st           *State
	em           emission
	sideA, sideB *streamSide // A emits; B supplies the reciprocity view
	comparisons  int64
}

func newStreamEvidence(st *State) *streamEvidence {
	ev := &streamEvidence{st: st, em: st.emission()}
	bt, idx := st.TokenBlocks, st.TokenIndex
	n1, n2 := st.KB1.Len(), st.KB2.Len()
	side1 := &streamSide{
		by:          idx.ByE1,
		mem:         func(bi int32) []kb.EntityID { return bt.Blocks[bi].E2 },
		weights:     st.Weights,
		k:           st.Params.K,
		comparisons: &ev.comparisons,
		acc:         newAccumulator(n2),
		vc:          make(map[kb.EntityID][]Cand),
		nc:          make(map[kb.EntityID][]Cand),
	}
	side2 := &streamSide{
		by:          idx.ByE2,
		mem:         func(bi int32) []kb.EntityID { return bt.Blocks[bi].E1 },
		weights:     st.Weights,
		k:           st.Params.K,
		comparisons: &ev.comparisons,
		acc:         newAccumulator(n1),
		vc:          make(map[kb.EntityID][]Cand),
		nc:          make(map[kb.EntityID][]Cand),
	}
	// The top-neighbor lists and reverse indexes are a KB-sized cost the
	// first matches usually never touch (a pair confirmed through the
	// value lists short-circuits past neighborCands), so they build on
	// first use instead of up front — deterministically: construction
	// depends only on the KBs and N, never on when it runs.
	built := false
	ensure := func() {
		if built {
			return
		}
		built = true
		top1 := topNeighborListsN(st.KB1, st.Params.N, st.Params.workers())
		top2 := topNeighborListsN(st.KB2, st.Params.N, st.Params.workers())
		side1.top, side1.rev = top1, reverseNeighborIndex(top2, n2)
		side2.top, side2.rev = top2, reverseNeighborIndex(top1, n1)
	}
	side1.ensure, side2.ensure = ensure, ensure
	ev.sideA, ev.sideB = side1, side2
	if ev.em.swap {
		ev.sideA, ev.sideB = side2, side1
	}
	return ev
}

// reciprocal applies H4 to a canonical pair through the lazy fills —
// the same check as State.reciprocal, with one extra short-circuit: a
// pair already present in a side's value candidates never computes that
// side's neighbor candidates (the boolean is identical either way,
// since containsCand consults the value list first).
func (ev *streamEvidence) reciprocal(p eval.Pair) bool {
	s1, s2 := ev.sideA, ev.sideB
	if ev.em.swap {
		s1, s2 = ev.sideB, ev.sideA
	}
	return s1.holds(p.E1, p.E2) && s2.holds(p.E2, p.E1)
}

// holds reports whether target appears among e's value or neighbor
// candidates, computing the neighbor fill only when the value list
// misses.
func (s *streamSide) holds(e, target kb.EntityID) bool {
	if containsCand(s.valueCands(e), nil, target) {
		return true
	}
	return containsCand(nil, s.neighborCands(e), target)
}

// memA returns a block's members on the emitting side.
func (ev *streamEvidence) memA(bi int32) []kb.EntityID {
	if ev.em.swap {
		return ev.st.TokenBlocks.Blocks[bi].E2
	}
	return ev.st.TokenBlocks.Blocks[bi].E1
}

// schedule returns a permutation of the emitting side's entities in the
// order the streaming phases visit them. Every entity appears exactly
// once, so a drained stream covers the same decisions as the batch run.
func (ev *streamEvidence) schedule(strategy StreamStrategy) []kb.EntityID {
	if strategy == ScheduleBlockRoundRobin {
		return ev.blockRoundRobinSchedule()
	}
	return ev.weightOrderedSchedule()
}

// weightOrderedSchedule ranks each emitting entity by the ARCS weight
// of its rarest token block, descending (ties by ascending ID; entities
// in no token block close the schedule).
func (ev *streamEvidence) weightOrderedSchedule() []kb.EntityID {
	n := ev.em.sizeA
	by := ev.sideA.by
	weights := ev.st.Weights
	prio := make([]float64, n)
	for e := 0; e < n; e++ {
		for _, bi := range by[e] {
			if w := weights[bi]; w > prio[e] {
				prio[e] = w
			}
		}
	}
	out := make([]kb.EntityID, n)
	for i := range out {
		out[i] = kb.EntityID(i)
	}
	sort.Slice(out, func(i, j int) bool {
		if prio[out[i]] != prio[out[j]] {
			return prio[out[i]] > prio[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// blockRoundRobinSchedule walks the token blocks in decreasing ARCS
// weight (ties by block position) and takes each block's r-th
// yet-unseen emitting member per round. Entities in no token block —
// they may still hold an H1 name match — close the schedule in ID
// order.
func (ev *streamEvidence) blockRoundRobinSchedule() []kb.EntityID {
	n := ev.em.sizeA
	weights := ev.st.Weights
	order := make([]int32, len(weights))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if weights[order[i]] != weights[order[j]] {
			return weights[order[i]] > weights[order[j]]
		}
		return order[i] < order[j]
	})
	maxLen := 0
	for _, bi := range order {
		if l := len(ev.memA(bi)); l > maxLen {
			maxLen = l
		}
	}
	out := make([]kb.EntityID, 0, n)
	seen := make([]bool, n)
	take := func(e kb.EntityID) {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for r := 0; r < maxLen && len(out) < n; r++ {
		for _, bi := range order {
			if members := ev.memA(bi); r < len(members) {
				take(members[r])
			}
		}
	}
	for e := 0; e < n; e++ {
		take(kb.EntityID(e))
	}
	return out
}

// run executes the three emission phases over the schedule. Phases
// descend by heuristic precision (H1, then H2, then H3) and each phase
// follows the schedule, so emitted scores never increase. H3 needs the
// complete H1/H2 claim maps — hence separate passes — but every
// per-entity decision within a phase is independent of the others, so
// the drained set equals the batch plan's regardless of schedule.
func (ev *streamEvidence) run(ctx context.Context, cfg StreamConfig, sched []kb.EntityID, emit func(ScoredPair) bool) error {
	st, em := ev.st, ev.em
	emitted := 0
	denom := float64(em.sizeA + 1)
	// send emits one confirmed pair; false stops the stream (consumer
	// gone, or the pair budget is spent).
	send := func(p eval.Pair, h uint8, pos int) bool {
		sp := ScoredPair{
			Pair:      p,
			Heuristic: h,
			Score:     float64(4-h) + float64(em.sizeA-pos)/denom,
		}
		if !emit(sp) {
			return false
		}
		emitted++
		return cfg.Budget.MaxPairs <= 0 || emitted < cfg.Budget.MaxPairs
	}
	overBudget := func() bool {
		return cfg.Budget.MaxComparisons > 0 && ev.comparisons >= cfg.Budget.MaxComparisons
	}

	// Phase 1 — H1 name matches: the cheapest and most precise evidence.
	// The decisions were already taken by the NameMatching stage; the
	// phase replays them in schedule order through the H4 filter.
	if !cfg.DisableH1 {
		for i, ea := range sched {
			if err := ctx.Err(); err != nil {
				return err
			}
			if overBudget() {
				return nil
			}
			eb, ok := em.h1A[ea]
			if !ok {
				continue
			}
			p := em.pair(ea, eb)
			if !cfg.DisableH4 && !ev.reciprocal(p) {
				continue
			}
			if !send(p, 1, i) {
				return nil
			}
		}
	}

	// Phase 2 — H2 value matches. Claims are recorded before the H4
	// check, exactly as the batch ValueMatching stage does, so the H3
	// skip sets are identical whether or not H4 discards the pair.
	h2A := make(map[kb.EntityID]struct{})
	h2B := make(map[kb.EntityID]struct{})
	if !cfg.DisableH2 {
		for i, ea := range sched {
			if err := ctx.Err(); err != nil {
				return err
			}
			if overBudget() {
				return nil
			}
			if _, done := em.h1A[ea]; done {
				continue
			}
			best, ok := firstEligible(ev.sideA.valueCands(ea), em.h1B)
			if !ok || best.Sim < 1 {
				continue
			}
			h2A[ea] = struct{}{}
			h2B[best.ID] = struct{}{}
			p := em.pair(ea, best.ID)
			if !cfg.DisableH4 && !ev.reciprocal(p) {
				continue
			}
			if !send(p, 2, i) {
				return nil
			}
		}
	}

	// Phase 3 — H3 rank aggregation over the entities no earlier
	// heuristic claimed.
	if !cfg.DisableH3 {
		for i, ea := range sched {
			if err := ctx.Err(); err != nil {
				return err
			}
			if overBudget() {
				return nil
			}
			if _, done := em.h1A[ea]; done {
				continue
			}
			if _, done := h2A[ea]; done {
				continue
			}
			skip := func(id kb.EntityID) bool {
				if _, t := em.h1B[id]; t {
					return true
				}
				_, t := h2B[id]
				return t
			}
			best, ok := aggregateRanks(ev.sideA.valueCands(ea), ev.sideA.neighborCands(ea), st.Params.Theta, skip)
			if !ok {
				continue
			}
			p := em.pair(ea, best)
			if !cfg.DisableH4 && !ev.reciprocal(p) {
				continue
			}
			if !send(p, 3, i) {
				return nil
			}
		}
	}
	return nil
}
