package pipeline

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func fakeStage(name string, log *[]string) Stage {
	return newStage(name, func(ctx context.Context, st *State) error {
		*log = append(*log, name)
		return nil
	})
}

func TestEngineRunsPlanInOrderWithStats(t *testing.T) {
	var log []string
	plan := []Stage{fakeStage("a", &log), fakeStage("b", &log), fakeStage("c", &log)}
	var events []ProgressEvent
	eng := Engine{Plan: plan, Progress: func(ev ProgressEvent) { events = append(events, ev) }}
	stats, err := eng.Run(context.Background(), &State{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log, []string{"a", "b", "c"}) {
		t.Errorf("execution order = %v", log)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %v", stats)
	}
	for i, s := range stats {
		if s.Stage != plan[i].Name() {
			t.Errorf("stat %d is for %q, want %q", i, s.Stage, plan[i].Name())
		}
		if s.Duration < 0 {
			t.Errorf("stage %q has negative duration", s.Stage)
		}
	}
	// Each stage emits a start and a done event, in order.
	if len(events) != 6 {
		t.Fatalf("progress events = %d, want 6", len(events))
	}
	for i, ev := range events {
		wantStage := plan[i/2].Name()
		if ev.Stage != wantStage || ev.Done != (i%2 == 1) || ev.Total != 3 || ev.Index != i/2 {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

func TestEngineCancellationBetweenStages(t *testing.T) {
	var log []string
	ctx, cancel := context.WithCancel(context.Background())
	plan := []Stage{
		fakeStage("first", &log),
		newStage("cancelling", func(ctx context.Context, st *State) error {
			log = append(log, "cancelling")
			cancel() // takes effect before the next stage
			return nil
		}),
		fakeStage("never", &log),
	}
	eng := Engine{Plan: plan}
	stats, err := eng.Run(ctx, &State{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats != nil {
		t.Errorf("stats = %v, want nil on failure", stats)
	}
	if !reflect.DeepEqual(log, []string{"first", "cancelling"}) {
		t.Errorf("stages run: %v", log)
	}
}

func TestEngineWrapsStageErrors(t *testing.T) {
	boom := errors.New("boom")
	plan := []Stage{newStage("exploding", func(context.Context, *State) error { return boom })}
	_, err := (&Engine{Plan: plan}).Run(context.Background(), &State{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "exploding") {
		t.Errorf("error does not name the stage: %v", err)
	}
}

func TestPlanHelpers(t *testing.T) {
	plan := DefaultPlan()
	wantNames := []string{
		StageNameBlocking, StageTokenBlocking, StageBlockPurging, StageBlockIndexing,
		StageTokenWeighting, StageValueCandidates, StageNeighborCandidates,
		StageNameMatching, StageValueMatching, StageRankAggregation,
		StageUnion, StageReciprocity,
	}
	if got := Names(plan); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("DefaultPlan names = %v", got)
	}

	dropped := Drop(plan, StageValueMatching, StageReciprocity, "no-such-stage")
	if len(dropped) != len(plan)-2 {
		t.Errorf("Drop kept %d stages, want %d", len(dropped), len(plan)-2)
	}
	for _, n := range Names(dropped) {
		if n == StageValueMatching || n == StageReciprocity {
			t.Errorf("Drop left %q in the plan", n)
		}
	}
	if len(plan) != len(wantNames) {
		t.Error("Drop mutated the original plan")
	}

	ran := false
	marker := newStage(StageBlockPurging, func(context.Context, *State) error { ran = true; return nil })
	replaced := Replace(plan, StageBlockPurging, marker)
	if got := Names(replaced); !reflect.DeepEqual(got, wantNames) {
		t.Errorf("Replace changed names: %v", got)
	}
	if err := replaced[2].Run(context.Background(), &State{}); err != nil || !ran {
		t.Errorf("Replace did not substitute the stage (err=%v ran=%v)", err, ran)
	}

	prefix := Until(plan, StageBlockPurging)
	if got := Names(prefix); !reflect.DeepEqual(got, wantNames[:3]) {
		t.Errorf("Until prefix = %v", got)
	}
	if got := Until(plan, "no-such-stage"); len(got) != len(plan) {
		t.Errorf("Until with unknown name truncated to %d stages", len(got))
	}
}

func TestStagePreconditionsReported(t *testing.T) {
	// Each dependent stage must fail with a descriptive error instead of
	// computing on missing artifacts.
	cases := []struct {
		stage Stage
		want  string
	}{
		{BlockPurging(), StageTokenBlocking},
		{KeepAllBlocks(), StageTokenBlocking},
		{BlockIndexing(), StageTokenBlocking},
		{TokenWeighting(), StageTokenBlocking},
		{ValueCandidates(), StageBlockIndexing},
		{NeighborCandidates(), StageValueCandidates},
		{NameMatching(), StageNameBlocking},
		{ValueMatching(), StageValueCandidates},
		{RankAggregation(), StageValueCandidates},
		{Reciprocity(), StageUnion},
	}
	for _, tc := range cases {
		err := tc.stage.Run(context.Background(), &State{})
		if err == nil {
			t.Errorf("stage %q ran without its inputs", tc.stage.Name())
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("stage %q error %q does not point at %q", tc.stage.Name(), err, tc.want)
		}
	}
}
