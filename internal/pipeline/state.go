package pipeline

import (
	"io"
	"runtime"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Params carries the MinoanER parameters a stage plan runs under. It is
// the pipeline-level mirror of core.Config without the ablation
// switches: ablations are expressed as plan edits (dropping or
// replacing stages), not as flags threaded through the stages.
type Params struct {
	// K is the number of candidate matches kept per entity and per
	// evidence type (value, neighbor).
	K int
	// N is the number of most important relations per entity whose
	// neighbors contribute to neighbor similarity.
	N int
	// NameK is the number of most distinctive attributes per KB whose
	// literal values serve as entity names for H1.
	NameK int
	// Theta trades value-based (θ) against neighbor-based (1-θ)
	// normalized ranks in H3.
	Theta float64
	// Purge configures the BlockPurging stage.
	Purge blocking.PurgeConfig
	// Workers bounds the goroutines used inside parallel stages.
	// 0 selects GOMAXPROCS. Results are identical at any setting.
	Workers int
	// Strategy selects the pair-quality scheduler of streaming runs
	// (RunStream). Batch plans ignore it.
	Strategy StreamStrategy
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// State is the blackboard a stage plan reads from and writes to. Each
// stage consumes the artifacts of earlier stages and publishes its own;
// a stage whose inputs are missing fails with a descriptive error
// instead of computing on nil evidence.
type State struct {
	// Inputs, set by NewState — or published by StageKBBuild when the
	// plan starts from raw sources (NewIngestState).
	KB1, KB2 *kb.KB
	Params   Params

	// Ingest inputs and artifacts, used only by plans with an
	// IngestPlan prefix.
	Source1, Source2   *Source     // raw N-Triples sources, set by NewIngestState
	Builder1, Builder2 *kb.Builder // streaming builders, set by StageIngest
	Skipped1, Skipped2 int         // malformed lines skipped per lenient source

	// Blocking artifacts.
	NameBlocks  *blocking.Collection // B_N, set by StageNameBlocking
	TokenBlocks *blocking.Collection // B_T, set by StageTokenBlocking, purged in place by StageBlockPurging
	TokenIndex  *blocking.Index      // entity -> token blocks, set by StageBlockIndexing
	PurgeStats  blocking.PurgeResult // what purging removed

	// Block accounting (the Table II numbers of one run).
	NameBlockCount, TokenBlockCount   int
	NameComparisons, TokenComparisons int64

	// Evidence artifacts.
	Weights                        []float64 // ARCS weight per token block, set by StageTokenWeighting
	ValueCands1, ValueCands2       [][]Cand  // top-K value candidates per entity, set by StageValueCandidates
	NeighborCands1, NeighborCands2 [][]Cand  // top-K neighbor candidates per entity, set by StageNeighborCandidates

	// Matching artifacts. The maps record which entities each heuristic
	// claimed so later heuristics skip them; pair slices keep the
	// per-heuristic contributions for reporting.
	H1Map1, H1Map2     map[kb.EntityID]kb.EntityID // 1-1 name matches, set by StageNameMatching
	H2TakenA, H2TakenB map[kb.EntityID]struct{}    // H2 claims, keyed by emission side
	H1, H2, H3         []eval.Pair

	// Output.
	Matches       []eval.Pair // set by StageUnion, filtered in place by StageReciprocity
	DiscardedByH4 int

	// unionDone marks that StageUnion ran, distinguishing "no matches"
	// from "union never computed" for Reciprocity's precondition.
	unionDone bool

	// delta, when non-nil, marks a prepared-side run (NewDeltaState):
	// side-1 candidate arrays stay unmaterialized and are derived lazily
	// per touched entity instead.
	delta *deltaSide

	// update, when non-nil, marks an epoch-update run (NewUpdateState):
	// the blocking artifacts are patched rather than rebuilt and the
	// candidate stages recompute only the affected entities.
	update *updateSide
}

// NewState prepares the blackboard for one run over a KB pair.
func NewState(kb1, kb2 *kb.KB, p Params) *State {
	return &State{
		KB1:    kb1,
		KB2:    kb2,
		Params: p,
		H1Map1: make(map[kb.EntityID]kb.EntityID),
		H1Map2: make(map[kb.EntityID]kb.EntityID),
	}
}

// Source is one raw N-Triples input of an ingest plan.
type Source struct {
	// Name is the display name of the KB built from this source.
	Name string
	// R supplies the N-Triples document.
	R io.Reader
	// Lenient makes parsing skip malformed (and oversize) lines,
	// counting them in State.Skipped1/Skipped2, instead of failing.
	Lenient bool
}

// NewIngestState prepares the blackboard for a run that starts from raw
// N-Triples sources: prepend IngestPlan() to the matching plan and the
// ingest stages will populate KB1/KB2 before blocking runs.
func NewIngestState(src1, src2 Source, p Params) *State {
	return &State{
		Source1: &src1,
		Source2: &src2,
		Params:  p,
		H1Map1:  make(map[kb.EntityID]kb.EntityID),
		H1Map2:  make(map[kb.EntityID]kb.EntityID),
	}
}

// emission describes which KB the matching heuristics emit decisions
// for: the smaller one, as in the paper ("every entity e_i of the
// smaller in size KB"). The other side's evidence still feeds H4.
type emission struct {
	swap      bool // true when KB2 is the smaller side
	sizeA     int
	valueA    [][]Cand
	neighborA [][]Cand
	h1A, h1B  map[kb.EntityID]kb.EntityID
	h2A, h2B  map[kb.EntityID]struct{}
}

func (s *State) emission() emission {
	e := emission{
		swap:      s.KB2.Len() < s.KB1.Len(),
		sizeA:     s.KB1.Len(),
		valueA:    s.ValueCands1,
		neighborA: s.NeighborCands1,
		h1A:       s.H1Map1,
		h1B:       s.H1Map2,
		h2A:       s.H2TakenA,
		h2B:       s.H2TakenB,
	}
	if e.swap {
		e.sizeA = s.KB2.Len()
		e.valueA = s.ValueCands2
		e.neighborA = s.NeighborCands2
		e.h1A, e.h1B = s.H1Map2, s.H1Map1
	}
	return e
}

// pair orients an (emitter, other) decision into canonical (E1, E2)
// order.
func (e emission) pair(a, b kb.EntityID) eval.Pair {
	if e.swap {
		return eval.Pair{E1: b, E2: a}
	}
	return eval.Pair{E1: a, E2: b}
}
