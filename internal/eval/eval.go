// Package eval holds the ground truth representation and the
// precision / recall / F1 accounting used across all experiments.
//
// Following the paper (§IV), all metrics are computed "with respect to
// the descriptions in the first KB appearing in the ground truth": the
// recall denominator is the number of ground-truth pairs, and a
// predicted pair only counts at all if its first-KB entity appears in
// the ground truth.
package eval

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"minoaner/internal/kb"
)

// Pair is a candidate or declared match between an entity of KB1 (E1)
// and an entity of KB2 (E2).
type Pair struct {
	E1 kb.EntityID
	E2 kb.EntityID
}

// Less reports whether p precedes q in the canonical (E1, E2) order.
func (p Pair) Less(q Pair) bool {
	if p.E1 != q.E1 {
		return p.E1 < q.E1
	}
	return p.E2 < q.E2
}

// SortPairs orders pairs in the canonical (E1, E2) order every layer
// reports matches in.
func SortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Less(pairs[j]) })
}

// DedupPairs removes duplicate pairs in place and returns the slice
// sorted in canonical order.
func DedupPairs(pairs []Pair) []Pair {
	seen := make(map[Pair]struct{}, len(pairs))
	out := pairs[:0]
	for _, p := range pairs {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	SortPairs(out)
	return out
}

// SortPairsBy orders any slice by the canonical (E1, E2) order of the
// pair each element maps to.
func SortPairsBy[T any](s []T, pair func(T) Pair) {
	sort.Slice(s, func(i, j int) bool { return pair(s[i]).Less(pair(s[j])) })
}

// GroundTruth is a clean-clean ER ground truth: a partial 1-1 mapping
// between the entities of two KBs.
type GroundTruth struct {
	m1 map[kb.EntityID]kb.EntityID // E1 -> E2
	m2 map[kb.EntityID]kb.EntityID // E2 -> E1
}

// NewGroundTruth returns an empty ground truth.
func NewGroundTruth() *GroundTruth {
	return &GroundTruth{
		m1: make(map[kb.EntityID]kb.EntityID),
		m2: make(map[kb.EntityID]kb.EntityID),
	}
}

// Add records that e1 matches e2. Adding a conflicting mapping for an
// already-mapped entity is an error (the benchmarks are 1-1).
func (g *GroundTruth) Add(e1, e2 kb.EntityID) error {
	if old, ok := g.m1[e1]; ok && old != e2 {
		return fmt.Errorf("eval: entity %d of KB1 already mapped to %d", e1, old)
	}
	if old, ok := g.m2[e2]; ok && old != e1 {
		return fmt.Errorf("eval: entity %d of KB2 already mapped to %d", e2, old)
	}
	g.m1[e1] = e2
	g.m2[e2] = e1
	return nil
}

// Len returns the number of ground-truth matches.
func (g *GroundTruth) Len() int { return len(g.m1) }

// Match1 returns the KB2 match of a KB1 entity.
func (g *GroundTruth) Match1(e1 kb.EntityID) (kb.EntityID, bool) {
	e2, ok := g.m1[e1]
	return e2, ok
}

// Match2 returns the KB1 match of a KB2 entity.
func (g *GroundTruth) Match2(e2 kb.EntityID) (kb.EntityID, bool) {
	e1, ok := g.m2[e2]
	return e1, ok
}

// Contains reports whether (e1, e2) is a ground-truth match.
func (g *GroundTruth) Contains(e1, e2 kb.EntityID) bool {
	got, ok := g.m1[e1]
	return ok && got == e2
}

// Pairs returns all matches sorted by E1 then E2.
func (g *GroundTruth) Pairs() []Pair {
	out := make([]Pair, 0, len(g.m1))
	for e1, e2 := range g.m1 {
		out = append(out, Pair{e1, e2})
	}
	SortPairs(out)
	return out
}

// Metrics reports the quality of a set of predicted matches.
type Metrics struct {
	TP, FP, FN int
	Precision  float64 // TP / (TP+FP), in [0,1]
	Recall     float64 // TP / |ground truth|, in [0,1]
	F1         float64
}

// String renders the metrics as percentages, the way the paper reports
// them.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.2f%% R=%.2f%% F1=%.2f%%", 100*m.Precision, 100*m.Recall, 100*m.F1)
}

// Evaluate scores predicted pairs against the ground truth. Duplicate
// predictions are counted once. Predictions whose E1 entity does not
// appear in the ground truth are ignored, matching the paper's protocol
// of evaluating w.r.t. first-KB descriptions in the ground truth.
func Evaluate(pred []Pair, gt *GroundTruth) Metrics {
	seen := make(map[Pair]struct{}, len(pred))
	var tp, fp int
	for _, p := range pred {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		want, ok := gt.Match1(p.E1)
		if !ok {
			continue // E1 not in ground truth: out of scope
		}
		if want == p.E2 {
			tp++
		} else {
			fp++
		}
	}
	return newMetrics(tp, fp, gt.Len()-tp)
}

func newMetrics(tp, fp, fn int) Metrics {
	m := Metrics{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// WriteCSV serializes the ground truth as "uri1,uri2" lines resolved
// through the two KBs.
func (g *GroundTruth) WriteCSV(w io.Writer, kb1, kb2 *kb.KB) error {
	bw := bufio.NewWriter(w)
	for _, p := range g.Pairs() {
		if _, err := fmt.Fprintf(bw, "%s,%s\n", kb1.URI(p.E1), kb2.URI(p.E2)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses "uri1,uri2" lines and resolves them against the two
// KBs. Unresolvable URIs are an error: a ground truth that references
// unknown entities is corrupt.
func ReadCSV(r io.Reader, kb1, kb2 *kb.KB) (*GroundTruth, error) {
	gt := NewGroundTruth()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		u1, u2, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("eval: line %d: expected 'uri1,uri2', got %q", line, text)
		}
		e1, ok := kb1.Lookup(strings.TrimSpace(u1))
		if !ok {
			return nil, fmt.Errorf("eval: line %d: unknown KB1 entity %q", line, u1)
		}
		e2, ok := kb2.Lookup(strings.TrimSpace(u2))
		if !ok {
			return nil, fmt.Errorf("eval: line %d: unknown KB2 entity %q", line, u2)
		}
		if err := gt.Add(e1, e2); err != nil {
			return nil, fmt.Errorf("eval: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return gt, nil
}
