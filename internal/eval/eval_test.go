package eval

import (
	"math"
	"strings"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func gtWith(t *testing.T, pairs ...[2]int) *GroundTruth {
	t.Helper()
	gt := NewGroundTruth()
	for _, p := range pairs {
		if err := gt.Add(kb.EntityID(p[0]), kb.EntityID(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	return gt
}

func TestGroundTruthBasics(t *testing.T) {
	gt := gtWith(t, [2]int{0, 10}, [2]int{1, 11})
	if gt.Len() != 2 {
		t.Fatalf("len = %d", gt.Len())
	}
	if e2, ok := gt.Match1(0); !ok || e2 != 10 {
		t.Errorf("Match1(0) = %d,%v", e2, ok)
	}
	if e1, ok := gt.Match2(11); !ok || e1 != 1 {
		t.Errorf("Match2(11) = %d,%v", e1, ok)
	}
	if !gt.Contains(0, 10) || gt.Contains(0, 11) || gt.Contains(5, 5) {
		t.Error("Contains wrong")
	}
	pairs := gt.Pairs()
	if len(pairs) != 2 || pairs[0].E1 != 0 || pairs[1].E1 != 1 {
		t.Errorf("Pairs = %v", pairs)
	}
}

func TestGroundTruthConflicts(t *testing.T) {
	gt := gtWith(t, [2]int{0, 10})
	if err := gt.Add(0, 10); err != nil {
		t.Errorf("idempotent add rejected: %v", err)
	}
	if err := gt.Add(0, 11); err == nil {
		t.Error("conflicting E1 mapping accepted")
	}
	if err := gt.Add(2, 10); err == nil {
		t.Error("conflicting E2 mapping accepted")
	}
}

func TestEvaluatePerfect(t *testing.T) {
	gt := gtWith(t, [2]int{0, 10}, [2]int{1, 11})
	m := Evaluate([]Pair{{0, 10}, {1, 11}}, gt)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.TP != 2 || m.FP != 0 || m.FN != 0 {
		t.Errorf("counts = %+v", m)
	}
}

func TestEvaluateMixed(t *testing.T) {
	gt := gtWith(t, [2]int{0, 10}, [2]int{1, 11}, [2]int{2, 12}, [2]int{3, 13})
	pred := []Pair{
		{0, 10}, // TP
		{1, 99}, // FP (wrong match for in-GT entity)
		{2, 12}, // TP
		// 3 missing -> FN
		{7, 70}, // ignored: E1 not in GT
	}
	m := Evaluate(pred, gt)
	if m.TP != 2 || m.FP != 1 {
		t.Fatalf("counts = %+v", m)
	}
	if math.Abs(m.Precision-2.0/3.0) > 1e-9 {
		t.Errorf("precision = %f", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-9 {
		t.Errorf("recall = %f", m.Recall)
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / (2.0/3.0 + 0.5)
	if math.Abs(m.F1-wantF1) > 1e-9 {
		t.Errorf("f1 = %f, want %f", m.F1, wantF1)
	}
}

func TestEvaluateDuplicatesCountOnce(t *testing.T) {
	gt := gtWith(t, [2]int{0, 10})
	m := Evaluate([]Pair{{0, 10}, {0, 10}, {0, 10}}, gt)
	if m.TP != 1 || m.FP != 0 {
		t.Errorf("duplicate predictions double-counted: %+v", m)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	gt := gtWith(t, [2]int{0, 10})
	m := Evaluate(nil, gt)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.FN != 1 {
		t.Errorf("FN = %d", m.FN)
	}
}

func TestMetricsString(t *testing.T) {
	gt := gtWith(t, [2]int{0, 10})
	m := Evaluate([]Pair{{0, 10}}, gt)
	if got := m.String(); !strings.Contains(got, "100.00%") {
		t.Errorf("String = %q", got)
	}
}

func buildPairKBs(t *testing.T) (*kb.KB, *kb.KB) {
	t.Helper()
	mk := func(name string, uris ...string) *kb.KB {
		var triples []rdf.Triple
		for _, u := range uris {
			triples = append(triples, rdf.NewTriple(rdf.NewIRI(u), rdf.NewIRI("http://v/p"), rdf.NewLiteral("x")))
		}
		k, err := kb.FromTriples(name, triples)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	return mk("kb1", "http://a/1", "http://a/2"), mk("kb2", "http://b/1", "http://b/2")
}

func TestCSVRoundTrip(t *testing.T) {
	kb1, kb2 := buildPairKBs(t)
	e1a, _ := kb1.Lookup("http://a/1")
	e2b, _ := kb2.Lookup("http://b/2")
	gt := NewGroundTruth()
	if err := gt.Add(e1a, e2b); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := gt.WriteCSV(&sb, kb1, kb2); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), kb1, kb2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || !back.Contains(e1a, e2b) {
		t.Errorf("round trip failed: %v", back.Pairs())
	}
}

func TestReadCSVErrors(t *testing.T) {
	kb1, kb2 := buildPairKBs(t)
	cases := []struct{ name, doc string }{
		{"no comma", "http://a/1 http://b/1"},
		{"unknown e1", "http://a/zzz,http://b/1"},
		{"unknown e2", "http://a/1,http://b/zzz"},
		{"conflict", "http://a/1,http://b/1\nhttp://a/1,http://b/2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.doc), kb1, kb2); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadCSVSkipsCommentsAndBlanks(t *testing.T) {
	kb1, kb2 := buildPairKBs(t)
	doc := "# header\n\nhttp://a/1,http://b/1\n"
	gt, err := ReadCSV(strings.NewReader(doc), kb1, kb2)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Len() != 1 {
		t.Errorf("len = %d", gt.Len())
	}
}
