package metablocking

import (
	"fmt"
	"math"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func kbFromValues(t testing.TB, name string, values []string) *kb.KB {
	t.Helper()
	var triples []rdf.Triple
	for i, v := range values {
		triples = append(triples, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://%s/e%03d", name, i)),
			rdf.NewIRI("http://v/name"),
			rdf.NewLiteral(v),
		))
	}
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// fixtureGraph: e0 shares two tokens with f0 (strong pair), one token
// with f1 (weak pair). e1 shares one token with f1.
func fixtureGraph(t *testing.T, scheme Scheme) (*Graph, *kb.KB, *kb.KB) {
	t.Helper()
	kb1 := kbFromValues(t, "a", []string{"alpha beta", "gamma"})
	kb2 := kbFromValues(t, "b", []string{"alpha beta", "beta gamma"})
	c := blocking.TokenBlocks(kb1, kb2)
	return BuildGraph(c, scheme), kb1, kb2
}

func TestBuildGraphCBS(t *testing.T) {
	g, _, _ := fixtureGraph(t, CBS)
	// Edges: (e0,f0) sharing alpha+beta → 2; (e0,f1) sharing beta → 1;
	// (e1,f1) sharing gamma → 1.
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %d, want 3: %+v", len(g.Edges), g.Edges)
	}
	weights := map[eval.Pair]float64{}
	for _, e := range g.Edges {
		weights[e.Pair] = e.Weight
	}
	if weights[eval.Pair{E1: 0, E2: 0}] != 2 {
		t.Errorf("CBS(e0,f0) = %f, want 2", weights[eval.Pair{E1: 0, E2: 0}])
	}
	if weights[eval.Pair{E1: 0, E2: 1}] != 1 {
		t.Errorf("CBS(e0,f1) = %f, want 1", weights[eval.Pair{E1: 0, E2: 1}])
	}
}

func TestBuildGraphJS(t *testing.T) {
	g, _, _ := fixtureGraph(t, JS)
	weights := map[eval.Pair]float64{}
	for _, e := range g.Edges {
		weights[e.Pair] = e.Weight
	}
	// e0 in blocks {alpha,beta}; f0 in {alpha,beta} → JS = 2/2 = 1.
	if w := weights[eval.Pair{E1: 0, E2: 0}]; math.Abs(w-1) > 1e-12 {
		t.Errorf("JS(e0,f0) = %f, want 1", w)
	}
	// e0 {alpha,beta}, f1 {beta,gamma}: shared 1 of union 3.
	if w := weights[eval.Pair{E1: 0, E2: 1}]; math.Abs(w-1.0/3.0) > 1e-12 {
		t.Errorf("JS(e0,f1) = %f, want 1/3", w)
	}
}

func TestBuildGraphARCS(t *testing.T) {
	g, _, _ := fixtureGraph(t, ARCS)
	weights := map[eval.Pair]float64{}
	for _, e := range g.Edges {
		weights[e.Pair] = e.Weight
	}
	// Blocks: alpha (1x1), beta (1x2), gamma (1x1).
	// ARCS(e0,f0) = 1/1 + 1/2 = 1.5
	if w := weights[eval.Pair{E1: 0, E2: 0}]; math.Abs(w-1.5) > 1e-12 {
		t.Errorf("ARCS(e0,f0) = %f, want 1.5", w)
	}
	// ARCS(e1,f1) = 1/1 (gamma block) = 1
	if w := weights[eval.Pair{E1: 1, E2: 1}]; math.Abs(w-1) > 1e-12 {
		t.Errorf("ARCS(e1,f1) = %f, want 1", w)
	}
}

func TestBuildGraphECBSFavorsFocusedEntities(t *testing.T) {
	g, _, _ := fixtureGraph(t, ECBS)
	weights := map[eval.Pair]float64{}
	for _, e := range g.Edges {
		weights[e.Pair] = e.Weight
	}
	// The strong pair must outweigh the weak ones.
	strong := weights[eval.Pair{E1: 0, E2: 0}]
	for p, w := range weights {
		if p == (eval.Pair{E1: 0, E2: 0}) {
			continue
		}
		if w >= strong {
			t.Errorf("ECBS %v (%f) >= strong pair (%f)", p, w, strong)
		}
	}
}

func TestSchemeAndAlgorithmNames(t *testing.T) {
	for _, s := range AllSchemes {
		if s.String() == "Scheme(?)" {
			t.Errorf("unnamed scheme %d", s)
		}
	}
	for _, a := range AllAlgorithms {
		if a.String() == "Algorithm(?)" {
			t.Errorf("unnamed algorithm %d", a)
		}
	}
	if Scheme(99).String() != "Scheme(?)" || Algorithm(99).String() != "Algorithm(?)" {
		t.Error("unknown names wrong")
	}
}

func TestPruneWEP(t *testing.T) {
	g, _, _ := fixtureGraph(t, CBS)
	// Mean weight = (2+1+1)/3 = 4/3; only the weight-2 edge survives.
	kept := g.Prune(WEP)
	if len(kept) != 1 || kept[0] != (eval.Pair{E1: 0, E2: 0}) {
		t.Errorf("WEP kept %v", kept)
	}
}

func TestPruneCEPKeepsStrongest(t *testing.T) {
	g, _, _ := fixtureGraph(t, CBS)
	kept := g.Prune(CEP)
	if len(kept) == 0 {
		t.Fatal("CEP kept nothing")
	}
	found := false
	for _, p := range kept {
		if p == (eval.Pair{E1: 0, E2: 0}) {
			found = true
		}
	}
	if !found {
		t.Errorf("CEP dropped the strongest edge: %v", kept)
	}
}

func TestPruneWNPKeepsPerNodeBest(t *testing.T) {
	g, _, _ := fixtureGraph(t, CBS)
	kept := g.Prune(WNP)
	// Every entity keeps at least its best edge, so (e1,f1) must
	// survive via e1's perspective even though it is globally weak.
	found := false
	for _, p := range kept {
		if p == (eval.Pair{E1: 1, E2: 1}) {
			found = true
		}
	}
	if !found {
		t.Errorf("WNP dropped e1's only edge: %v", kept)
	}
}

func TestPruneCNP(t *testing.T) {
	g, _, _ := fixtureGraph(t, CBS)
	kept := g.Prune(CNP)
	if len(kept) == 0 {
		t.Fatal("CNP kept nothing")
	}
	// Retained pairs must be a subset of the graph's edges.
	all := map[eval.Pair]bool{}
	for _, e := range g.Edges {
		all[e.Pair] = true
	}
	for _, p := range kept {
		if !all[p] {
			t.Errorf("CNP invented pair %v", p)
		}
	}
}

// TestPruningSubsetAndDeterminism: every algorithm returns a sorted
// subset of the graph edges, deterministically.
func TestPruningSubsetAndDeterminism(t *testing.T) {
	ds, err := datagen.Restaurant(datagen.Options{Seed: 5, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	c := blocking.TokenBlocks(ds.KB1, ds.KB2)
	for _, scheme := range AllSchemes {
		g := BuildGraph(c, scheme)
		all := map[eval.Pair]bool{}
		for _, e := range g.Edges {
			all[e.Pair] = true
		}
		for _, algo := range AllAlgorithms {
			kept1 := g.Prune(algo)
			kept2 := g.Prune(algo)
			if len(kept1) != len(kept2) {
				t.Fatalf("%v/%v nondeterministic", scheme, algo)
			}
			for i, p := range kept1 {
				if p != kept2[i] {
					t.Fatalf("%v/%v nondeterministic at %d", scheme, algo, i)
				}
				if !all[p] {
					t.Fatalf("%v/%v retained non-edge %v", scheme, algo, p)
				}
				if i > 0 && !lessPair(kept1[i-1], p) {
					t.Fatalf("%v/%v output not sorted", scheme, algo)
				}
			}
		}
	}
}

func lessPair(a, b eval.Pair) bool {
	if a.E1 != b.E1 {
		return a.E1 < b.E1
	}
	return a.E2 < b.E2
}

// TestMetaBlockingReducesComparisons: on a realistic dataset,
// meta-blocking with ARCS/WNP keeps high recall with far fewer
// comparisons than the raw blocks — the headline claim of [6].
func TestMetaBlockingReducesComparisons(t *testing.T) {
	ds, err := datagen.Bibliography(datagen.Options{Seed: 5, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	c := blocking.TokenBlocks(ds.KB1, ds.KB2)
	g := BuildGraph(c, ARCS)
	raw := len(g.Edges)
	kept := g.Prune(WNP)
	st := ComputeStats(kept, ds.GT)
	if len(kept) >= raw {
		t.Errorf("WNP kept %d of %d edges — no reduction", len(kept), raw)
	}
	if st.Recall < 0.9 {
		t.Errorf("WNP recall = %.3f, want >= 0.9", st.Recall)
	}
	rawStats := ComputeStats(pairsOf(g), ds.GT)
	if st.Precision <= rawStats.Precision {
		t.Errorf("pruning did not improve precision: %.5f vs %.5f", st.Precision, rawStats.Precision)
	}
}

func pairsOf(g *Graph) []eval.Pair {
	out := make([]eval.Pair, len(g.Edges))
	for i, e := range g.Edges {
		out[i] = e.Pair
	}
	return out
}

func TestComputeStatsEmpty(t *testing.T) {
	gt := eval.NewGroundTruth()
	st := ComputeStats(nil, gt)
	if st.Comparisons != 0 || st.Recall != 0 || st.Precision != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestEmptyGraph(t *testing.T) {
	c := blocking.NewCollection(0, 0)
	g := BuildGraph(c, ARCS)
	if len(g.Edges) != 0 {
		t.Error("edges on empty collection")
	}
	for _, algo := range AllAlgorithms {
		if got := g.Prune(algo); len(got) != 0 {
			t.Errorf("%v returned %v on empty graph", algo, got)
		}
	}
}

func BenchmarkBuildGraphARCS(b *testing.B) {
	ds, err := datagen.Restaurant(datagen.Options{Seed: 5, Scale: 1})
	if err != nil {
		b.Fatal(err)
	}
	c := blocking.TokenBlocks(ds.KB1, ds.KB2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(c, ARCS)
	}
}
