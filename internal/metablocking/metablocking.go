// Package metablocking implements Meta-blocking (Papadakis, Koutrika,
// Palpanas, Nejdl — TKDE 2014, the paper's reference [6]): restructuring
// a block collection into a weighted blocking graph whose edges connect
// co-occurring entities, then pruning low-weight edges to discard
// comparisons that are unlikely to be matches.
//
// MinoanER itself uses Block Purging only, but its valueSim is "a
// variation of ARCS" — one of the meta-blocking edge weighting schemes
// implemented here. The package makes the lineage concrete and enables
// the purging-vs-meta-blocking ablation in EXPERIMENTS.md.
//
// Weighting schemes:
//
//   - CBS  (Common Blocks Scheme): number of blocks the pair shares
//   - ECBS (Enhanced CBS): CBS · log(|B|/|B_i|) · log(|B|/|B_j|)
//   - JS   (Jaccard Scheme): shared blocks / (|B_i| + |B_j| - shared)
//   - ARCS (Aggregate Reciprocal Comparisons): Σ 1/||b|| over shared blocks
//
// Pruning algorithms:
//
//   - WEP (Weighted Edge Pruning): keep edges above the global mean weight
//   - CEP (Cardinality Edge Pruning): keep the globally top-k edges
//   - WNP (Weighted Node Pruning): per node, keep edges above the node's mean
//   - CNP (Cardinality Node Pruning): per node, keep the top-k edges
package metablocking

import (
	"math"
	"sort"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Scheme selects the edge weighting function.
type Scheme uint8

const (
	// CBS counts the blocks shared by the pair.
	CBS Scheme = iota
	// ECBS discounts entities that appear in many blocks.
	ECBS
	// JS is the Jaccard coefficient of the two entities' block lists.
	JS
	// ARCS rewards pairs sharing small (discriminative) blocks.
	ARCS
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case JS:
		return "JS"
	case ARCS:
		return "ARCS"
	default:
		return "Scheme(?)"
	}
}

// AllSchemes lists every weighting scheme.
var AllSchemes = []Scheme{CBS, ECBS, JS, ARCS}

// Algorithm selects the pruning strategy.
type Algorithm uint8

const (
	// WEP keeps edges whose weight exceeds the global mean.
	WEP Algorithm = iota
	// CEP keeps the top-k edges globally, k = half the total block
	// assignments (the paper's BC/2 heuristic).
	CEP
	// WNP keeps, per entity, the edges above that entity's mean weight.
	WNP
	// CNP keeps, per entity, the top-k edges, k derived from the
	// average number of block assignments per entity.
	CNP
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case WEP:
		return "WEP"
	case CEP:
		return "CEP"
	case WNP:
		return "WNP"
	case CNP:
		return "CNP"
	default:
		return "Algorithm(?)"
	}
}

// AllAlgorithms lists every pruning algorithm.
var AllAlgorithms = []Algorithm{WEP, CEP, WNP, CNP}

// Edge is one weighted comparison of the blocking graph.
type Edge struct {
	Pair   eval.Pair
	Weight float64
}

// Graph is the weighted blocking graph of a block collection: one edge
// per distinct co-occurring cross-KB pair.
type Graph struct {
	Edges []Edge
	n1    int
	n2    int
	// blocks per entity, needed by ECBS/JS.
	blockCount1, blockCount2 []int32
	totalBlocks              int
	assignments              int64
}

// SortedEdges returns a copy of the graph's edges ordered by
// decreasing weight (ties broken by pair, for determinism). The
// graph's own edge slice is never reordered, so pruning algorithms
// that depend on the construction order keep working on a graph that
// has also been scheduled.
func (g *Graph) SortedEdges() []Edge {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		return edges[i].Pair.Less(edges[j].Pair)
	})
	return edges
}

// BuildGraph materializes the blocking graph under the given weighting
// scheme. Memory is O(distinct pairs); pairs are enumerated per
// first-KB entity with a stamp array.
func BuildGraph(c *blocking.Collection, scheme Scheme) *Graph {
	n1, n2 := c.KBSizes()
	g := &Graph{
		n1: n1, n2: n2,
		blockCount1: make([]int32, n1),
		blockCount2: make([]int32, n2),
		totalBlocks: c.Size(),
	}
	idx := c.BuildIndex()
	for e := 0; e < n1; e++ {
		g.blockCount1[e] = int32(len(idx.ByE1[e]))
		g.assignments += int64(len(idx.ByE1[e]))
	}
	for e := 0; e < n2; e++ {
		g.blockCount2[e] = int32(len(idx.ByE2[e]))
		g.assignments += int64(len(idx.ByE2[e]))
	}

	// Accumulate per-pair statistics: shared-block count and ARCS sum.
	type acc struct {
		shared int32
		arcs   float64
	}
	stamps := make([]int32, n2)
	accs := make([]acc, n2)
	for i := range stamps {
		stamps[i] = -1
	}
	for e1 := 0; e1 < n1; e1++ {
		blockIDs := idx.ByE1[e1]
		if len(blockIDs) == 0 {
			continue
		}
		var touched []int32
		for _, bi := range blockIDs {
			b := &c.Blocks[bi]
			inv := 1 / float64(b.Comparisons())
			for _, e2 := range b.E2 {
				if stamps[e2] != int32(e1) {
					stamps[e2] = int32(e1)
					accs[e2] = acc{}
					touched = append(touched, int32(e2))
				}
				accs[e2].shared++
				accs[e2].arcs += inv
			}
		}
		sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
		for _, e2 := range touched {
			a := accs[e2]
			w := g.weight(scheme, kb.EntityID(e1), kb.EntityID(e2), a.shared, a.arcs)
			g.Edges = append(g.Edges, Edge{
				Pair:   eval.Pair{E1: kb.EntityID(e1), E2: kb.EntityID(e2)},
				Weight: w,
			})
		}
	}
	return g
}

func (g *Graph) weight(scheme Scheme, e1, e2 kb.EntityID, shared int32, arcs float64) float64 {
	switch scheme {
	case CBS:
		return float64(shared)
	case ECBS:
		b1 := float64(g.blockCount1[e1])
		b2 := float64(g.blockCount2[e2])
		if b1 == 0 || b2 == 0 {
			return 0
		}
		total := float64(g.totalBlocks)
		return float64(shared) * math.Log(total/b1+1) * math.Log(total/b2+1)
	case JS:
		union := float64(g.blockCount1[e1]) + float64(g.blockCount2[e2]) - float64(shared)
		if union == 0 {
			return 0
		}
		return float64(shared) / union
	case ARCS:
		return arcs
	default:
		return 0
	}
}

// Prune applies the algorithm and returns the retained comparisons.
func (g *Graph) Prune(algo Algorithm) []eval.Pair {
	switch algo {
	case WEP:
		return g.pruneWEP()
	case CEP:
		return g.pruneCEP()
	case WNP:
		return g.pruneWNP()
	case CNP:
		return g.pruneCNP()
	default:
		return nil
	}
}

func (g *Graph) pruneWEP() []eval.Pair {
	if len(g.Edges) == 0 {
		return nil
	}
	var sum float64
	for _, e := range g.Edges {
		sum += e.Weight
	}
	mean := sum / float64(len(g.Edges))
	var out []eval.Pair
	for _, e := range g.Edges {
		if e.Weight > mean {
			out = append(out, e.Pair)
		}
	}
	return out
}

func (g *Graph) pruneCEP() []eval.Pair {
	if len(g.Edges) == 0 {
		return nil
	}
	k := int(g.assignments / 2)
	if k < 1 {
		k = 1
	}
	if k > len(g.Edges) {
		k = len(g.Edges)
	}
	sorted := make([]Edge, len(g.Edges))
	copy(sorted, g.Edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		return sorted[i].Pair.Less(sorted[j].Pair)
	})
	out := make([]eval.Pair, 0, k)
	for _, e := range sorted[:k] {
		out = append(out, e.Pair)
	}
	eval.SortPairs(out)
	return out
}

// nodeEdges groups edge indices by entity for the node-centric
// algorithms; both sides of every edge act as nodes.
func (g *Graph) nodeEdges() (by1 [][]int32, by2 [][]int32) {
	by1 = make([][]int32, g.n1)
	by2 = make([][]int32, g.n2)
	for i, e := range g.Edges {
		by1[e.Pair.E1] = append(by1[e.Pair.E1], int32(i))
		by2[e.Pair.E2] = append(by2[e.Pair.E2], int32(i))
	}
	return by1, by2
}

func (g *Graph) pruneWNP() []eval.Pair {
	by1, by2 := g.nodeEdges()
	keep := make(map[int32]struct{})
	retain := func(edgeIDs []int32) {
		if len(edgeIDs) == 0 {
			return
		}
		var sum float64
		for _, i := range edgeIDs {
			sum += g.Edges[i].Weight
		}
		mean := sum / float64(len(edgeIDs))
		for _, i := range edgeIDs {
			if g.Edges[i].Weight >= mean {
				keep[i] = struct{}{}
			}
		}
	}
	for _, ids := range by1 {
		retain(ids)
	}
	for _, ids := range by2 {
		retain(ids)
	}
	return g.collect(keep)
}

func (g *Graph) pruneCNP() []eval.Pair {
	by1, by2 := g.nodeEdges()
	// k = avg block assignments per entity (the paper's BC-derived k),
	// at least 1.
	k := 1
	if n := g.n1 + g.n2; n > 0 {
		if avg := int(g.assignments) / n; avg > 1 {
			k = avg
		}
	}
	keep := make(map[int32]struct{})
	retain := func(edgeIDs []int32) {
		if len(edgeIDs) == 0 {
			return
		}
		sorted := make([]int32, len(edgeIDs))
		copy(sorted, edgeIDs)
		sort.Slice(sorted, func(a, b int) bool {
			ea, eb := g.Edges[sorted[a]], g.Edges[sorted[b]]
			if ea.Weight != eb.Weight {
				return ea.Weight > eb.Weight
			}
			return ea.Pair.Less(eb.Pair)
		})
		top := k
		if top > len(sorted) {
			top = len(sorted)
		}
		for _, i := range sorted[:top] {
			keep[i] = struct{}{}
		}
	}
	for _, ids := range by1 {
		retain(ids)
	}
	for _, ids := range by2 {
		retain(ids)
	}
	return g.collect(keep)
}

func (g *Graph) collect(keep map[int32]struct{}) []eval.Pair {
	out := make([]eval.Pair, 0, len(keep))
	for i := range keep {
		out = append(out, g.Edges[i].Pair)
	}
	eval.SortPairs(out)
	return out
}

// Stats summarizes a pruned comparison set against a ground truth.
type Stats struct {
	Comparisons int
	PairsFound  int
	Recall      float64 // PC
	Precision   float64 // PQ
}

// ComputeStats scores retained comparisons.
func ComputeStats(pairs []eval.Pair, gt *eval.GroundTruth) Stats {
	st := Stats{Comparisons: len(pairs)}
	for _, p := range pairs {
		if gt.Contains(p.E1, p.E2) {
			st.PairsFound++
		}
	}
	if gt.Len() > 0 {
		st.Recall = float64(st.PairsFound) / float64(gt.Len())
	}
	if st.Comparisons > 0 {
		st.Precision = float64(st.PairsFound) / float64(st.Comparisons)
	}
	return st
}
