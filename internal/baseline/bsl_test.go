package baseline

import (
	"fmt"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func buildEasyPair(t testing.TB, n int) (*kb.KB, *kb.KB, *eval.GroundTruth) {
	t.Helper()
	var t1, t2 []rdf.Triple
	add := func(ts *[]rdf.Triple, s, p, v string) {
		*ts = append(*ts, rdf.NewTriple(rdf.NewIRI(s), rdf.NewIRI(p), rdf.NewLiteral(v)))
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("item alpha%03d beta%03d", i, (i*7)%n)
		add(&t1, fmt.Sprintf("http://a/e%03d", i), "http://v/name", name)
		add(&t2, fmt.Sprintf("http://b/e%03d", i), "http://v/title", name)
	}
	kb1, err := kb.FromTriples("a", t1)
	if err != nil {
		t.Fatal(err)
	}
	kb2, err := kb.FromTriples("b", t2)
	if err != nil {
		t.Fatal(err)
	}
	gt := eval.NewGroundTruth()
	for i := 0; i < n; i++ {
		e1, _ := kb1.Lookup(fmt.Sprintf("http://a/e%03d", i))
		e2, _ := kb2.Lookup(fmt.Sprintf("http://b/e%03d", i))
		if err := gt.Add(e1, e2); err != nil {
			t.Fatal(err)
		}
	}
	return kb1, kb2, gt
}

func TestDefaultConfigGrid(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.NGrams) != 3 || len(cfg.Schemes) != 2 || len(cfg.Measures) != 4 {
		t.Fatalf("grid dimensions wrong: %+v", cfg)
	}
	if len(cfg.Thresholds) != 20 {
		t.Fatalf("thresholds = %d, want 20 ([0,1) step 0.05)", len(cfg.Thresholds))
	}
	if cfg.Thresholds[0] != 0 || cfg.Thresholds[19] >= 1 {
		t.Errorf("threshold range wrong: %v", cfg.Thresholds)
	}
}

func TestRunFindsPerfectConfig(t *testing.T) {
	kb1, kb2, gt := buildEasyPair(t, 30)
	res := Run(kb1, kb2, gt, DefaultConfig())
	if res.Best.Metrics.F1 != 1 {
		t.Fatalf("best F1 = %f, want 1.0 on trivially matched KBs (%s)", res.Best.Metrics.F1, res.Best)
	}
	if len(res.BestMatches) != 30 {
		t.Errorf("best matches = %d, want 30", len(res.BestMatches))
	}
	if want := 3 * 2 * 4 * 20; len(res.Configs) != want {
		t.Errorf("configs evaluated = %d, want %d", len(res.Configs), want)
	}
	if res.CandidatePairs == 0 {
		t.Error("no candidate pairs")
	}
}

func TestRunValueOnlyBlindness(t *testing.T) {
	// Matches share no tokens at all: BSL must score 0 regardless of
	// configuration — the structural weakness MinoanER fixes.
	var t1, t2 []rdf.Triple
	add := func(ts *[]rdf.Triple, s, p, v string) {
		*ts = append(*ts, rdf.NewTriple(rdf.NewIRI(s), rdf.NewIRI(p), rdf.NewLiteral(v)))
	}
	add(&t1, "http://a/x", "http://v/name", "alpha beta")
	add(&t2, "http://b/x", "http://v/name", "gamma delta")
	kb1, _ := kb.FromTriples("a", t1)
	kb2, _ := kb.FromTriples("b", t2)
	gt := eval.NewGroundTruth()
	e1, _ := kb1.Lookup("http://a/x")
	e2, _ := kb2.Lookup("http://b/x")
	if err := gt.Add(e1, e2); err != nil {
		t.Fatal(err)
	}
	res := Run(kb1, kb2, gt, DefaultConfig())
	if res.Best.Metrics.F1 != 0 {
		t.Errorf("BSL matched token-disjoint entities: %s", res.Best)
	}
}

func TestRunSweepOrderStable(t *testing.T) {
	kb1, kb2, gt := buildEasyPair(t, 10)
	r1 := Run(kb1, kb2, gt, DefaultConfig())
	r2 := Run(kb1, kb2, gt, DefaultConfig())
	if r1.Best.String() != r2.Best.String() {
		t.Errorf("nondeterministic best: %s vs %s", r1.Best, r2.Best)
	}
	for i := range r1.Configs {
		if r1.Configs[i].Metrics != r2.Configs[i].Metrics {
			t.Fatalf("config %d metrics differ", i)
		}
	}
}

func TestCandidatePairsDistinct(t *testing.T) {
	kb1, kb2, _ := buildEasyPair(t, 10)
	pairs := candidatePairs(kb1, kb2, DefaultConfig())
	seen := make(map[eval.Pair]bool)
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestConfigResultString(t *testing.T) {
	kb1, kb2, gt := buildEasyPair(t, 5)
	res := Run(kb1, kb2, gt, DefaultConfig())
	if s := res.Best.String(); s == "" {
		t.Error("empty config string")
	}
}

func BenchmarkBSLSweep(b *testing.B) {
	kb1, kb2, gt := buildEasyPair(b, 100)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(kb1, kb2, gt, cfg)
	}
}
