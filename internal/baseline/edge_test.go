package baseline

import (
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/similarity"
)

func TestRunEmptyKBs(t *testing.T) {
	kb1, err := kb.FromTriples("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	kb2, err := kb.FromTriples("b", nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(kb1, kb2, eval.NewGroundTruth(), DefaultConfig())
	if res.CandidatePairs != 0 || len(res.BestMatches) != 0 {
		t.Errorf("result on empty KBs: %+v", res)
	}
	if res.Best.Metrics.F1 != 0 {
		t.Errorf("best F1 = %f", res.Best.Metrics.F1)
	}
}

func TestRunRestrictedGrid(t *testing.T) {
	kb1, kb2, gt := buildEasyPair(t, 15)
	cfg := Config{
		NGrams:     []int{1},
		Schemes:    []similarity.Scheme{similarity.TF},
		Measures:   []similarity.Measure{similarity.Jaccard},
		Thresholds: []float64{0, 0.5},
		NameK:      2,
		Purge:      DefaultConfig().Purge,
	}
	res := Run(kb1, kb2, gt, cfg)
	if len(res.Configs) != 2 {
		t.Fatalf("configs = %d, want 2", len(res.Configs))
	}
	for _, c := range res.Configs {
		if c.NGram != 1 || c.Measure != similarity.Jaccard {
			t.Errorf("unexpected grid point %s", c)
		}
	}
}

func TestBestIsArgmaxOverConfigs(t *testing.T) {
	kb1, kb2, gt := buildEasyPair(t, 20)
	res := Run(kb1, kb2, gt, DefaultConfig())
	for _, c := range res.Configs {
		if c.Metrics.F1 > res.Best.Metrics.F1+1e-12 {
			t.Fatalf("config %s beats reported best %s", c, res.Best)
		}
	}
}
