// Package baseline implements BSL, the value-only baseline of the
// paper's evaluation (§IV): it receives the same blocks as MinoanER
// (B_N ∪ B_T), compares every co-occurring pair of descriptions under a
// grid of schema-agnostic configurations — token n-grams × weighting
// scheme × similarity measure × similarity threshold — clusters each
// configuration's scores with Unique Mapping Clustering, and reports
// the configuration with the highest F1. Unlike MinoanER, BSL uses no
// name or neighbor evidence, which is exactly why it collapses on KBs
// whose matches have low value similarity.
package baseline

import (
	"fmt"

	"minoaner/internal/blocking"
	"minoaner/internal/cluster"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/similarity"
)

// Config is the sweep grid. The defaults follow the paper: n ∈ {1,2,3},
// TF and TF-IDF weights, the four measures, and thresholds in [0,1)
// with a step of 0.05.
type Config struct {
	NGrams     []int
	Schemes    []similarity.Scheme
	Measures   []similarity.Measure
	Thresholds []float64
	// NameK is the k used to build B_N (2, as in MinoanER's input).
	NameK int
	// Purge configures the Block Purging applied to B_T.
	Purge blocking.PurgeConfig
}

// DefaultConfig returns the paper's sweep grid.
func DefaultConfig() Config {
	thresholds := make([]float64, 0, 20)
	for t := 0.0; t < 1.0; t += 0.05 {
		thresholds = append(thresholds, t)
	}
	return Config{
		NGrams:     []int{1, 2, 3},
		Schemes:    []similarity.Scheme{similarity.TF, similarity.TFIDF},
		Measures:   similarity.AllMeasures,
		Thresholds: thresholds,
		NameK:      2,
		Purge:      blocking.DefaultPurgeConfig(),
	}
}

// ConfigResult is the outcome of one grid point.
type ConfigResult struct {
	NGram     int
	Scheme    similarity.Scheme
	Measure   similarity.Measure
	Threshold float64
	Metrics   eval.Metrics
}

// String identifies the configuration compactly.
func (c ConfigResult) String() string {
	return fmt.Sprintf("%d-gram/%s/%s/t=%.2f: %s", c.NGram, c.Scheme, c.Measure, c.Threshold, c.Metrics)
}

// Result is the sweep outcome.
type Result struct {
	// Best is the grid point with the highest F1 (ties: first in sweep
	// order), as the paper reports BSL.
	Best ConfigResult
	// BestMatches are the matches of the best configuration.
	BestMatches []eval.Pair
	// Configs holds every grid point's metrics in sweep order.
	Configs []ConfigResult
	// CandidatePairs is the number of distinct co-occurring pairs
	// compared.
	CandidatePairs int
}

// Run executes the sweep. The ground truth is used only for selecting
// the best configuration, mirroring the paper's oracle-style tuning of
// BSL.
func Run(kb1, kb2 *kb.KB, gt *eval.GroundTruth, cfg Config) *Result {
	pairs := candidatePairs(kb1, kb2, cfg)
	res := &Result{CandidatePairs: len(pairs)}
	bestF1 := -1.0

	for _, n := range cfg.NGrams {
		for _, scheme := range cfg.Schemes {
			profiles := similarity.BuildProfiles(kb1, kb2, n, scheme)
			for _, measure := range cfg.Measures {
				scored := scorePairs(pairs, profiles, measure)
				accepted := cluster.UniqueMappingScored(scored, 0)
				for _, th := range cfg.Thresholds {
					matches := prefixAtThreshold(accepted, th)
					m := eval.Evaluate(matches, gt)
					cr := ConfigResult{NGram: n, Scheme: scheme, Measure: measure, Threshold: th, Metrics: m}
					res.Configs = append(res.Configs, cr)
					if m.F1 > bestF1 {
						bestF1 = m.F1
						res.Best = cr
						res.BestMatches = matches
					}
				}
			}
		}
	}
	return res
}

// candidatePairs enumerates the distinct co-occurring pairs of
// B_N ∪ B_T — the same input MinoanER receives.
func candidatePairs(kb1, kb2 *kb.KB, cfg Config) []eval.Pair {
	bn := blocking.NameBlocks(kb1, kb2, cfg.NameK)
	bt := blocking.TokenBlocks(kb1, kb2)
	bt, _ = blocking.Purge(bt, cfg.Purge)
	union := blocking.Union("N:", bn, "T:", bt)

	seen := make(map[eval.Pair]struct{})
	var out []eval.Pair
	for i := range union.Blocks {
		b := &union.Blocks[i]
		for _, e1 := range b.E1 {
			for _, e2 := range b.E2 {
				p := eval.Pair{E1: e1, E2: e2}
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	eval.SortPairs(out)
	return out
}

func scorePairs(pairs []eval.Pair, ps *similarity.ProfileSet, m similarity.Measure) []cluster.ScoredPair {
	scored := make([]cluster.ScoredPair, 0, len(pairs))
	for _, p := range pairs {
		s := similarity.Compare(m, ps.P1[p.E1], ps.P2[p.E2])
		if s <= 0 {
			continue
		}
		scored = append(scored, cluster.ScoredPair{E1: p.E1, E2: p.E2, Score: s})
	}
	return scored
}

// prefixAtThreshold exploits the prefix property of
// UniqueMappingScored: the clustering at threshold th is the prefix of
// the threshold-0 acceptance list with score >= th.
func prefixAtThreshold(accepted []cluster.ScoredPair, th float64) []eval.Pair {
	out := make([]eval.Pair, 0, len(accepted))
	for _, p := range accepted {
		if p.Score < th {
			break
		}
		out = append(out, eval.Pair{E1: p.E1, E2: p.E2})
	}
	return out
}
