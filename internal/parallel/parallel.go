// Package parallel provides the deterministic data-parallel primitives
// shared by the ingest, blocking, and matching layers: a chunked
// parallel for-loop with error and cancellation propagation, a worker
// count resolver, and a stable string shard hash.
//
// Everything here is designed so that results are bit-identical at any
// worker count: For hands each worker a contiguous, non-overlapping
// index range, and ShardOf assigns every key to exactly one worker
// independent of scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// CancelCheckStride is how many per-item iterations a parallel loop
// body should run between context checks: frequent enough that
// cancellation lands within milliseconds, rare enough to stay off the
// profile.
const CancelCheckStride = 256

// Workers resolves a requested worker count: values <= 0 select
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For splits [0,n) into contiguous chunks across min(workers,n)
// goroutines. The work function receives its worker index and chunk
// bounds; chunks do not overlap, so no synchronization is needed on
// per-index outputs. The first non-nil error wins; a cancelled context
// surfaces as ctx.Err() even if no worker observed it.
func For(ctx context.Context, n, workers int, work func(worker, start, end int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return work(0, 0, n)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(worker, s, e int) {
			defer wg.Done()
			if err := work(worker, s, e); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(w, start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ShardOf maps a key to one of `shards` workers with FNV-1a, so that
// key-sharded loops partition work identically on every run and at
// every worker count that divides the key space the same way.
func ShardOf(key string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return int(h % uint32(shards))
}
