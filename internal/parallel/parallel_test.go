package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

func TestForCoversAll(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 3, 7, 100} {
		n := 57
		covered := make([]int32, n)
		err := For(ctx, n, workers, func(worker, start, end int) error {
			for i := start; i < end; i++ {
				covered[i]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
	err := For(ctx, 0, 4, func(worker, start, end int) error {
		t.Error("work called for n=0")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	err := For(context.Background(), 40, 4, func(worker, start, end int) error {
		if start == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = For(ctx, 40, 4, func(worker, start, end int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	keys := []string{"", "a", "token", "entity name key", "日本語"}
	for _, k := range keys {
		for _, shards := range []int{1, 2, 4, 8} {
			s := ShardOf(k, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", k, shards, s)
			}
			if again := ShardOf(k, shards); again != s {
				t.Fatalf("ShardOf(%q, %d) unstable: %d vs %d", k, shards, s, again)
			}
		}
	}
	// The hash should actually spread keys: with many keys and 8 shards,
	// more than one shard must be hit.
	hit := make(map[int]bool)
	for i := 0; i < 256; i++ {
		hit[ShardOf(string(rune('a'+i%26))+string(rune('0'+i%10)), 8)] = true
	}
	if len(hit) < 2 {
		t.Errorf("ShardOf degenerate: all keys in one shard")
	}
}

// TestShardOfDistribution is the property backing the sharded index's
// load balance: over a large URI-shaped key set, every shard receives
// close to its fair share, at every shard count the index supports.
func TestShardOfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	keys := make([]string, n)
	for i := range keys {
		// Realistic entity keys: a shared prefix plus a varying tail, the
		// worst case for weak hashes.
		keys[i] = fmt.Sprintf("http://example.org/resource/%c%d-%x", 'a'+rune(i%26), i, rng.Int63())
	}
	for _, shards := range []int{2, 3, 4, 8, 16} {
		counts := make([]int, shards)
		for _, k := range keys {
			counts[ShardOf(k, shards)]++
		}
		expected := float64(n) / float64(shards)
		for s, c := range counts {
			if ratio := float64(c) / expected; ratio < 0.8 || ratio > 1.2 {
				t.Errorf("shards=%d: shard %d holds %d keys (%.2fx fair share)", shards, s, c, ratio)
			}
		}
	}

	// Stability across slices of the same bytes: hashing must depend on
	// content only, never on how the string was assembled.
	whole := "http://example.org/resource/stable-key"
	parts := strings.Join([]string{"http://example.org/", "resource/", "stable-key"}, "")
	for _, shards := range []int{2, 8, 16} {
		if ShardOf(whole, shards) != ShardOf(parts, shards) {
			t.Errorf("shards=%d: equal strings hash to different shards", shards)
		}
	}
}
