// Package core implements the MinoanER matching process: four
// threshold-free heuristics — H1 (names), H2 (values), H3 (rank
// aggregation of value and neighbor evidence), H4 (reciprocity) —
// applied non-iteratively over schema-agnostic blocks (paper §III):
//
//	M(e_i, e_j) = (H1 ∨ H2 ∨ H3)(e_i, e_j) ∧ H4(e_i, e_j)
package core

import (
	"fmt"

	"minoaner/internal/blocking"
	"minoaner/internal/pipeline"
)

// Config carries the four MinoanER parameters plus engineering knobs.
// The defaults are the configuration the paper found robust across all
// datasets (§IV): K=15, N=3, k=2, θ=0.6.
type Config struct {
	// K is the number of candidate matches kept per entity and per
	// evidence type (value, neighbor). Used by H3's ranked lists and by
	// H4's reciprocity check.
	K int
	// N is the number of most important relations per entity whose
	// neighbors contribute to neighbor similarity.
	N int
	// NameK is the paper's k: the number of most distinctive attributes
	// per KB whose literal values serve as entity names for H1.
	NameK int
	// Theta is the trade-off between value-based (θ) and neighbor-based
	// (1-θ) normalized ranks in H3.
	Theta float64
	// Purge configures Block Purging of the token blocks; see
	// blocking.Purge.
	Purge blocking.PurgeConfig
	// Workers bounds the goroutines used for candidate scoring.
	// 0 selects GOMAXPROCS. Results are identical at any setting.
	Workers int
	// Strategy selects the pair-quality scheduler of streaming runs
	// (RunStream); batch runs ignore it.
	Strategy pipeline.StreamStrategy

	// Ablation switches (all false in the paper's configuration).
	DisableH1 bool
	DisableH2 bool
	DisableH3 bool
	DisableH4 bool
}

// DefaultConfig returns the paper's parameter configuration.
func DefaultConfig() Config {
	return Config{
		K:     15,
		N:     3,
		NameK: 2,
		Theta: 0.6,
		Purge: blocking.DefaultPurgeConfig(),
	}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	}
	if c.N < 0 {
		return fmt.Errorf("core: N must be >= 0, got %d", c.N)
	}
	if c.NameK < 0 {
		return fmt.Errorf("core: NameK must be >= 0, got %d", c.NameK)
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		return fmt.Errorf("core: Theta must be in (0,1), got %g", c.Theta)
	}
	if c.Purge.EntityFraction <= 0 || c.Purge.EntityFraction > 1 {
		return fmt.Errorf("core: Purge.EntityFraction must be in (0,1], got %g", c.Purge.EntityFraction)
	}
	if c.Purge.MinEntities < 0 {
		return fmt.Errorf("core: Purge.MinEntities must be >= 0, got %d", c.Purge.MinEntities)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.Strategy > pipeline.ScheduleBlockRoundRobin {
		return fmt.Errorf("core: unknown stream strategy %d", c.Strategy)
	}
	return nil
}

// Params projects the configuration onto the pipeline's parameter set.
// The Disable flags are deliberately absent: they are realized as plan
// edits by Matcher.Plan (and by PlanFor), not as stage-level switches.
// It is exported for callers that assemble pipeline states directly,
// such as the public index builder.
func (c Config) Params() pipeline.Params {
	return pipeline.Params{
		K:        c.K,
		N:        c.N,
		NameK:    c.NameK,
		Theta:    c.Theta,
		Purge:    c.Purge,
		Workers:  c.Workers,
		Strategy: c.Strategy,
	}
}
