package core

// Golden-equivalence guard for the staged pipeline: referenceRun below
// preserves the pre-refactor monolithic Matcher.Run (and the candidate
// scoring it inlined) verbatim, as a test-only oracle. The staged
// DefaultPlan must reproduce its Result — matches, per-heuristic
// contributions, H4 discards, and block accounting — bit for bit on
// every synthetic benchmark, at any worker count, under every ablation
// flag.

import (
	"math"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

const goldenScale = 0.1

func goldenDatasets(t testing.TB) []*datagen.Dataset {
	t.Helper()
	var out []*datagen.Dataset
	for _, g := range datagen.Generators() {
		ds, err := g.Build(datagen.Options{Seed: 42, Scale: goldenScale})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ds)
	}
	if len(out) != 4 {
		t.Fatalf("expected the 4 paper benchmarks, got %d", len(out))
	}
	return out
}

func assertResultsEqual(t *testing.T, label string, got *Result, want *refResult) {
	t.Helper()
	check := func(field string, g, w []eval.Pair) {
		if !samePairs(g, w) {
			t.Errorf("%s: %s diverged: staged %d pairs, reference %d", label, field, len(g), len(w))
		}
	}
	check("Matches", got.Matches, want.Matches)
	check("H1", got.H1, want.H1)
	check("H2", got.H2, want.H2)
	check("H3", got.H3, want.H3)
	if got.DiscardedByH4 != want.DiscardedByH4 {
		t.Errorf("%s: DiscardedByH4 = %d, want %d", label, got.DiscardedByH4, want.DiscardedByH4)
	}
	if got.NameBlockCount != want.NameBlockCount || got.TokenBlockCount != want.TokenBlockCount {
		t.Errorf("%s: block counts = (%d, %d), want (%d, %d)", label,
			got.NameBlockCount, got.TokenBlockCount, want.NameBlockCount, want.TokenBlockCount)
	}
	if got.NameComparisons != want.NameComparisons || got.TokenComparisons != want.TokenComparisons {
		t.Errorf("%s: comparisons = (%d, %d), want (%d, %d)", label,
			got.NameComparisons, got.TokenComparisons, want.NameComparisons, want.TokenComparisons)
	}
	if !reflect.DeepEqual(got.Purge, want.Purge) {
		t.Errorf("%s: purge stats = %+v, want %+v", label, got.Purge, want.Purge)
	}
}

// samePairs compares pair slices treating nil and empty as equal.
func samePairs(a, b []eval.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGoldenEquivalenceOnBenchmarks(t *testing.T) {
	for _, ds := range goldenDatasets(t) {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			cfg := DefaultConfig()
			cfg.Workers = workers
			m, err := NewMatcher(ds.KB1, ds.KB2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := m.Run()
			want := referenceRun(ds.KB1, ds.KB2, cfg)
			label := ds.Name + "/workers=" + itoa(workers)
			assertResultsEqual(t, label, got, want)
			if len(got.Stages) == 0 {
				t.Errorf("%s: no stage stats recorded", label)
			}
		}
	}
}

func TestGoldenEquivalenceUnderAblations(t *testing.T) {
	ds := goldenDatasets(t)[2] // BBCmusic-DBpedia: all four heuristics contribute
	mutate := []func(*Config){
		func(c *Config) { c.DisableH1 = true },
		func(c *Config) { c.DisableH2 = true },
		func(c *Config) { c.DisableH3 = true },
		func(c *Config) { c.DisableH4 = true },
		func(c *Config) { c.DisableH1, c.DisableH3 = true, true },
		func(c *Config) { c.Purge = blocking.NoPurge() },
		func(c *Config) { c.Theta = 0.2 },
		func(c *Config) { c.K = 5 },
	}
	for i, mut := range mutate {
		cfg := DefaultConfig()
		mut(&cfg)
		m, err := NewMatcher(ds.KB1, ds.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, "ablation "+itoa(i), m.Run(), referenceRun(ds.KB1, ds.KB2, cfg))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// ---------------------------------------------------------------------
// The pre-refactor implementation, kept verbatim below as the oracle.
// ---------------------------------------------------------------------

type refResult struct {
	Matches                           []eval.Pair
	H1, H2, H3                        []eval.Pair
	DiscardedByH4                     int
	NameBlockCount, TokenBlockCount   int
	NameComparisons, TokenComparisons int64
	Purge                             blocking.PurgeResult
}

type refCand struct {
	ID  kb.EntityID
	Sim float64
}

type refEvidence struct {
	value    [][]refCand
	neighbor [][]refCand
}

func referenceRun(kb1, kb2 *kb.KB, cfg Config) *refResult {
	res := &refResult{}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	bn := blocking.NameBlocks(kb1, kb2, cfg.NameK)
	res.NameBlockCount = bn.Size()
	res.NameComparisons = bn.Comparisons()

	bt := blocking.TokenBlocks(kb1, kb2)
	bt, res.Purge = blocking.Purge(bt, cfg.Purge)
	res.TokenBlockCount = bt.Size()
	res.TokenComparisons = bt.Comparisons()
	idx := bt.BuildIndex()

	h1map1 := make(map[kb.EntityID]kb.EntityID)
	h1map2 := make(map[kb.EntityID]kb.EntityID)
	if !cfg.DisableH1 {
		for i := range bn.Blocks {
			b := &bn.Blocks[i]
			if len(b.E1) != 1 || len(b.E2) != 1 {
				continue
			}
			e1, e2 := b.E1[0], b.E2[0]
			if _, taken := h1map1[e1]; taken {
				continue
			}
			if _, taken := h1map2[e2]; taken {
				continue
			}
			h1map1[e1] = e2
			h1map2[e2] = e1
			res.H1 = append(res.H1, eval.Pair{E1: e1, E2: e2})
		}
	}

	weights := refTokenWeights(bt)
	vc1, vc2 := refValueCandidates(bt, idx, weights, cfg.K, workers)
	nc1, nc2 := refNeighborCandidates(kb1, kb2, vc1, vc2, cfg.N, cfg.K, workers)
	ev1 := &refEvidence{value: vc1, neighbor: nc1}
	ev2 := &refEvidence{value: vc2, neighbor: nc2}

	swap := kb2.Len() < kb1.Len()
	evA := ev1
	h1A := h1map1
	h1B := h1map2
	sizeA := kb1.Len()
	if swap {
		evA = ev2
		h1A, h1B = h1map2, h1map1
		sizeA = kb2.Len()
	}
	emit := func(a, b kb.EntityID) eval.Pair {
		if swap {
			return eval.Pair{E1: b, E2: a}
		}
		return eval.Pair{E1: a, E2: b}
	}

	h2A := make(map[kb.EntityID]struct{})
	h2B := make(map[kb.EntityID]struct{})
	if !cfg.DisableH2 {
		for e := 0; e < sizeA; e++ {
			ea := kb.EntityID(e)
			if _, done := h1A[ea]; done {
				continue
			}
			best, ok := refFirstEligible(evA.value[ea], h1B)
			if !ok || best.Sim < 1 {
				continue
			}
			res.H2 = append(res.H2, emit(ea, best.ID))
			h2A[ea] = struct{}{}
			h2B[best.ID] = struct{}{}
		}
	}

	if !cfg.DisableH3 {
		for e := 0; e < sizeA; e++ {
			ea := kb.EntityID(e)
			if _, done := h1A[ea]; done {
				continue
			}
			if _, done := h2A[ea]; done {
				continue
			}
			skip := func(id kb.EntityID) bool {
				if _, t := h1B[id]; t {
					return true
				}
				_, t := h2B[id]
				return t
			}
			best, ok := refAggregateRanks(evA.value[ea], evA.neighbor[ea], cfg.Theta, skip)
			if !ok {
				continue
			}
			res.H3 = append(res.H3, emit(ea, best))
		}
	}

	union := refDedupPairs(append(append(append([]eval.Pair{}, res.H1...), res.H2...), res.H3...))
	if cfg.DisableH4 {
		res.Matches = union
	} else {
		for _, p := range union {
			if refReciprocal(ev1, ev2, p) {
				res.Matches = append(res.Matches, p)
			} else {
				res.DiscardedByH4++
			}
		}
	}
	refSortPairs(res.Matches)
	return res
}

func refFirstEligible(cands []refCand, h1Taken map[kb.EntityID]kb.EntityID) (refCand, bool) {
	for _, c := range cands {
		if _, taken := h1Taken[c.ID]; taken {
			continue
		}
		return c, true
	}
	return refCand{}, false
}

func refAggregateRanks(value, neighbor []refCand, theta float64, skip func(kb.EntityID) bool) (kb.EntityID, bool) {
	scores := make(map[kb.EntityID]float64, len(value)+len(neighbor))
	addList := func(list []refCand, w float64) {
		eligible := make([]refCand, 0, len(list))
		for _, c := range list {
			if c.Sim <= 0 || skip(c.ID) {
				continue
			}
			eligible = append(eligible, c)
		}
		l := float64(len(eligible))
		for i, c := range eligible {
			scores[c.ID] += w * (l - float64(i)) / l
		}
	}
	addList(value, theta)
	addList(neighbor, 1-theta)
	if len(scores) == 0 {
		return 0, false
	}
	var best kb.EntityID
	bestScore := -1.0
	ids := make([]kb.EntityID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if s := scores[id]; s > bestScore {
			bestScore = s
			best = id
		}
	}
	return best, true
}

func refReciprocal(ev1, ev2 *refEvidence, p eval.Pair) bool {
	return refContains(ev1.value[p.E1], ev1.neighbor[p.E1], p.E2) &&
		refContains(ev2.value[p.E2], ev2.neighbor[p.E2], p.E1)
}

func refContains(value, neighbor []refCand, id kb.EntityID) bool {
	for _, c := range value {
		if c.ID == id {
			return true
		}
	}
	for _, c := range neighbor {
		if c.ID == id {
			return true
		}
	}
	return false
}

func refDedupPairs(pairs []eval.Pair) []eval.Pair {
	seen := make(map[eval.Pair]struct{}, len(pairs))
	out := pairs[:0]
	for _, p := range pairs {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	refSortPairs(out)
	return out
}

func refSortPairs(pairs []eval.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].E1 != pairs[j].E1 {
			return pairs[i].E1 < pairs[j].E1
		}
		return pairs[i].E2 < pairs[j].E2
	})
}

func refTokenWeights(bt *blocking.Collection) []float64 {
	w := make([]float64, len(bt.Blocks))
	for i := range bt.Blocks {
		b := &bt.Blocks[i]
		w[i] = 1 / math.Log2(float64(len(b.E1))*float64(len(b.E2))+1)
	}
	return w
}

func refValueCandidates(bt *blocking.Collection, idx *blocking.Index, weights []float64, k, workers int) ([][]refCand, [][]refCand) {
	n1, n2 := bt.KBSizes()
	side1 := make([][]refCand, n1)
	side2 := make([][]refCand, n2)

	run := func(n, other int, byEnt [][]int32, members func(bi int32) []kb.EntityID, out [][]refCand) {
		refParallelFor(n, workers, func(worker, start, end int) {
			acc := newRefAccumulator(other)
			for e := start; e < end; e++ {
				for _, bi := range byEnt[e] {
					w := weights[bi]
					for _, o := range members(bi) {
						acc.add(int32(o), w)
					}
				}
				out[e] = acc.topK(k)
				acc.reset()
			}
		})
	}
	run(n1, n2, idx.ByE1, func(bi int32) []kb.EntityID { return bt.Blocks[bi].E2 }, side1)
	run(n2, n1, idx.ByE2, func(bi int32) []kb.EntityID { return bt.Blocks[bi].E1 }, side2)
	return side1, side2
}

func refNeighborCandidates(kb1, kb2 *kb.KB, vc1, vc2 [][]refCand, n, k, workers int) ([][]refCand, [][]refCand) {
	top1 := refTopNeighborLists(kb1, n)
	top2 := refTopNeighborLists(kb2, n)
	rev1 := refReverseNeighborIndex(top1, kb1.Len())
	rev2 := refReverseNeighborIndex(top2, kb2.Len())

	out1 := make([][]refCand, kb1.Len())
	out2 := make([][]refCand, kb2.Len())

	refParallelFor(kb1.Len(), workers, func(worker, start, end int) {
		acc := newRefAccumulator(kb2.Len())
		for e := start; e < end; e++ {
			for _, nei := range top1[e] {
				for _, cand := range vc1[nei] {
					if cand.Sim <= 0 {
						continue
					}
					for _, e2 := range rev2[cand.ID] {
						acc.add(int32(e2), cand.Sim)
					}
				}
			}
			out1[e] = acc.topK(k)
			acc.reset()
		}
	})
	refParallelFor(kb2.Len(), workers, func(worker, start, end int) {
		acc := newRefAccumulator(kb1.Len())
		for e := start; e < end; e++ {
			for _, nej := range top2[e] {
				for _, cand := range vc2[nej] {
					if cand.Sim <= 0 {
						continue
					}
					for _, e1 := range rev1[cand.ID] {
						acc.add(int32(e1), cand.Sim)
					}
				}
			}
			out2[e] = acc.topK(k)
			acc.reset()
		}
	})
	return out1, out2
}

func refTopNeighborLists(k *kb.KB, n int) [][]kb.EntityID {
	out := make([][]kb.EntityID, k.Len())
	for i := 0; i < k.Len(); i++ {
		out[i] = k.TopNeighbors(kb.EntityID(i), n)
	}
	return out
}

func refReverseNeighborIndex(top [][]kb.EntityID, n int) [][]kb.EntityID {
	rev := make([][]kb.EntityID, n)
	for e, nbrs := range top {
		for _, x := range nbrs {
			rev[x] = append(rev[x], kb.EntityID(e))
		}
	}
	return rev
}

type refAccumulator struct {
	sums    []float64
	touched []int32
}

func newRefAccumulator(n int) *refAccumulator {
	return &refAccumulator{sums: make([]float64, n)}
}

func (a *refAccumulator) add(id int32, w float64) {
	if a.sums[id] == 0 {
		a.touched = append(a.touched, id)
	}
	a.sums[id] += w
}

func (a *refAccumulator) reset() {
	for _, id := range a.touched {
		a.sums[id] = 0
	}
	a.touched = a.touched[:0]
}

func (a *refAccumulator) topK(k int) []refCand {
	if len(a.touched) == 0 {
		return nil
	}
	cands := make([]refCand, 0, len(a.touched))
	for _, id := range a.touched {
		cands = append(cands, refCand{ID: kb.EntityID(id), Sim: a.sums[id]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Sim != cands[j].Sim {
			return cands[i].Sim > cands[j].Sim
		}
		return cands[i].ID < cands[j].ID
	})
	if k < len(cands) {
		cands = cands[:k:k]
	}
	return cands
}

func refParallelFor(n, workers int, work func(worker, start, end int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		work(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(worker, s, e int) {
			defer wg.Done()
			work(worker, s, e)
		}(w, start, end)
	}
	wg.Wait()
}
