package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
	"minoaner/internal/rdf"
)

// epochHarness drives one side's mutations: the triple-level reference
// list, the store, and the current KB epoch.
type epochHarness struct {
	ref   []rdf.Triple
	store *kb.Store
	cur   *kb.KB
}

func newEpochHarness(t *testing.T, base *kb.KB, triples []rdf.Triple) *epochHarness {
	t.Helper()
	store, err := kb.NewStore(base)
	if err != nil {
		t.Fatal(err)
	}
	ref := append([]rdf.Triple(nil), triples...)
	return &epochHarness{ref: ref, store: store, cur: base}
}

// mutate applies one random mutation (replace / insert / delete) and
// returns (old, new) KB epochs; ok=false when the roll was a no-op.
func (h *epochHarness) mutate(t *testing.T, rng *rand.Rand, round int) (old, new *kb.KB, ok bool) {
	t.Helper()
	var deltaTriples []rdf.Triple
	var deletes []string
	pickSubject := func() string { return h.cur.URI(kb.EntityID(rng.Intn(h.cur.Len()))) }

	switch rng.Intn(5) {
	case 0: // delete 1-2 entities
		for i := 0; i < 1+rng.Intn(2); i++ {
			deletes = append(deletes, pickSubject())
		}
	case 1: // insert a brand-new entity referencing an existing one
		subj := rdf.NewIRI(fmt.Sprintf("http://mut/new-%d-%d", round, rng.Intn(1000)))
		deltaTriples = append(deltaTriples,
			rdf.NewTriple(subj, rdf.NewIRI("http://mut/name"), rdf.NewLiteral(fmt.Sprintf("fresh entity %d alpha", round))),
			rdf.NewTriple(subj, rdf.NewIRI("http://mut/link"), rdf.NewIRI(pickSubject())),
		)
	default: // replace 1-2 existing entities with perturbed descriptions
		subjects := map[string]bool{}
		for i := 0; i < 1+rng.Intn(2); i++ {
			subjects[pickSubject()] = true
		}
		for _, tr := range h.ref {
			if !subjects[kb.SubjectKey(tr.Subject)] {
				continue
			}
			switch {
			case tr.Object.IsLiteral() && rng.Intn(3) == 0:
				tr.Object = rdf.NewLiteral(tr.Object.Value + fmt.Sprintf(" mut%d", round))
			case rng.Intn(6) == 0:
				continue // drop the triple
			}
			deltaTriples = append(deltaTriples, tr)
		}
		for s := range subjects {
			if rng.Intn(2) == 0 {
				deltaTriples = append(deltaTriples, rdf.NewTriple(
					rdf.NewIRI(s), rdf.NewIRI("http://mut/extra"), rdf.NewLiteral(fmt.Sprintf("extra%d", rng.Intn(4)))))
			}
		}
		if len(deltaTriples) == 0 {
			// Every triple of the chosen subjects was dropped: that is a
			// delete, not an upsert.
			for s := range subjects {
				deletes = append(deletes, s)
			}
		}
	}

	var deltaKB *kb.KB
	var err error
	if len(deltaTriples) > 0 {
		deltaKB, err = kb.FromTriples("delta", deltaTriples)
		if err != nil {
			t.Fatal(err)
		}
	}
	changed, _, err := h.store.Apply(deltaKB, deletes)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		return nil, nil, false
	}
	h.ref = applyTripleMutation(h.ref, deltaTriples, deletes)
	old = h.cur
	h.cur = h.store.Assemble(old)
	return old, h.cur, true
}

func applyTripleMutation(ts, delta []rdf.Triple, deletes []string) []rdf.Triple {
	drop := map[string]bool{}
	for _, tr := range delta {
		drop[kb.SubjectKey(tr.Subject)] = true
	}
	for _, u := range deletes {
		drop[u] = true
	}
	var out []rdf.Triple
	for _, tr := range ts {
		if !drop[kb.SubjectKey(tr.Subject)] {
			out = append(out, tr)
		}
	}
	return append(out, delta...)
}

// runUpdateStorm drives a randomized mutation sequence over one
// benchmark, asserting after every epoch that RunUpdate's result is
// bit-identical to the full plan over the mutated KBs.
func runUpdateStorm(t *testing.T, ds *datagen.Dataset, cfg Config, seed int64, rounds int) {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))

	// Prime the substrate from a full run.
	st := pipeline.NewState(ds.KB1, ds.KB2, cfg.Params())
	eng := pipeline.Engine{Plan: PlanFor(cfg)}
	if _, err := eng.Run(ctx, st); err != nil {
		t.Fatal(err)
	}
	cache, err := pipeline.NewCache(ctx, st, st.NameBlocks, st.PurgeStats)
	if err != nil {
		t.Fatal(err)
	}

	h1 := newEpochHarness(t, ds.KB1, ds.Triples1)
	h2 := newEpochHarness(t, ds.KB2, ds.Triples2)

	applied := 0
	for round := 0; applied < rounds && round < rounds*3; round++ {
		side := h2
		if rng.Intn(3) == 0 {
			side = h1 // mutate the indexed side too
		}
		old, mutated, ok := side.mutate(t, rng, round)
		if !ok {
			continue
		}
		applied++
		old1, old2 := h1.cur, h2.cur
		if side == h1 {
			old1 = old
		} else {
			old2 = old
		}
		_ = mutated

		got, nextCache, err := RunUpdate(ctx, cache, old1, old2, h1.cur, h2.cur, cfg, nil, false)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		m, err := NewMatcher(h1.cur, h2.cur, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.RunContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("round %d (side1=%v)", round, side == h1), want, got)
		cache = nextCache
	}
	if applied == 0 {
		t.Fatal("storm applied no mutations")
	}
}

// TestUpdatePlanEquivalence is the equivalence guard of mutable
// epochs: on every benchmark, absorbing randomized upserts and deletes
// through the update plan is bit-identical to the full plan over the
// mutated KBs — matches, heuristic contributions, and block accounting
// — at every worker count.
func TestUpdatePlanEquivalence(t *testing.T) {
	for _, g := range datagen.Generators() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 8} {
				workers := workers
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					ds, err := g.Build(datagen.Options{Seed: 42, Scale: 0.08})
					if err != nil {
						t.Fatal(err)
					}
					cfg := DefaultConfig()
					cfg.Workers = workers
					runUpdateStorm(t, ds, cfg, 1000+int64(workers), 5)
				})
			}
		})
	}
}

// TestUpdatePlanEquivalenceUnderAblations: a mutable index built with
// heuristics disabled keeps resolving without them across mutations.
func TestUpdatePlanEquivalenceUnderAblations(t *testing.T) {
	ds, err := datagen.Restaurant(datagen.Options{Seed: 42, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	mods := map[string]func(*Config){
		"noH1": func(c *Config) { c.DisableH1 = true },
		"noH2": func(c *Config) { c.DisableH2 = true },
		"noH3": func(c *Config) { c.DisableH3 = true },
		"noH4": func(c *Config) { c.DisableH4 = true },
	}
	for name, mod := range mods {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Workers = 2
			mod(&cfg)
			runUpdateStorm(t, ds, cfg, 7, 3)
		})
	}
}
