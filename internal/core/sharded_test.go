package core

import (
	"context"
	"fmt"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// TestRunShardedMatchesRunDelta is the headline sharding invariant at
// the pipeline level: scatter-gather resolution over K hash-partitioned
// sub-substrates returns bit-identical results to the unsplit prepared
// path — same matches, same per-heuristic contributions, same block
// statistics — at every shard count and worker count.
func TestRunShardedMatchesRunDelta(t *testing.T) {
	for _, g := range datagen.Generators() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			t.Parallel()
			ds, err := g.Build(datagen.Options{Seed: 7, Scale: 0.12})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			prep := pipeline.PrepareSide(ds.KB1, cfg.Params())

			n2 := ds.KB2.Len()
			var uris []string
			for _, i := range []int{0, n2 / 3, n2 / 2, n2 - 1} {
				uris = append(uris, ds.KB2.URI(kb.EntityID(i)))
			}
			deltas := map[string]*kb.KB{}
			single, _, err := kb.FromTriplesSubset("single", ds.Triples2, uris[:1])
			if err != nil {
				t.Fatal(err)
			}
			deltas["single"] = single
			batch, _, err := kb.FromTriplesSubset("batch", ds.Triples2, uris)
			if err != nil {
				t.Fatal(err)
			}
			deltas["batch"] = batch

			for name, delta := range deltas {
				ref, err := RunDelta(context.Background(), prep, delta, cfg, nil, false)
				if err != nil {
					t.Fatalf("%s: RunDelta: %v", name, err)
				}
				for _, shards := range []int{1, 2, 4, 8} {
					sp, err := pipeline.ShardSide(prep, shards)
					if err != nil {
						t.Fatalf("%s: ShardSide(%d): %v", name, shards, err)
					}
					for _, workers := range []int{1, 4} {
						c := cfg
						c.Workers = workers
						got, err := RunSharded(context.Background(), sp, delta, c, nil, false)
						if err != nil {
							t.Fatalf("%s shards=%d workers=%d: RunSharded: %v", name, shards, workers, err)
						}
						label := fmt.Sprintf("%s shards=%d workers=%d", name, shards, workers)
						assertSameResult(t, label, ref, got)
					}
				}
			}
		})
	}
}
