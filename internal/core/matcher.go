package core

import (
	"context"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// Result reports the matches and the per-stage accounting of one
// MinoanER run.
type Result struct {
	// Matches is the final output M = (H1 ∨ H2 ∨ H3) ∧ H4, sorted by
	// (E1, E2).
	Matches []eval.Pair
	// H1, H2, H3 are the per-heuristic contributions before H4.
	H1, H2, H3 []eval.Pair
	// DiscardedByH4 counts pairs removed by the reciprocity filter.
	DiscardedByH4 int
	// NameBlockCount and TokenBlockCount are |B_N| and |B_T| (the latter
	// after purging).
	NameBlockCount, TokenBlockCount int
	// NameComparisons and TokenComparisons are ||B_N|| and ||B_T||.
	NameComparisons, TokenComparisons int64
	// Purge describes what Block Purging removed from B_T.
	Purge blocking.PurgeResult
	// Skipped1 and Skipped2 count malformed lines skipped per source,
	// for runs that ingest lenient raw sources (RunSources).
	Skipped1, Skipped2 int
	// Stages holds the per-stage wall-clock and allocation statistics of
	// the executed plan, in plan order.
	Stages []pipeline.StageStat
}

// Matcher plans and runs the MinoanER process for one pair of KBs. It
// is a thin builder over internal/pipeline: the matching flow itself
// lives in the stages; Matcher only assembles the plan its
// configuration calls for and translates the final State into a
// Result.
type Matcher struct {
	kb1, kb2   *kb.KB
	cfg        Config
	allocStats bool
}

// NewMatcher validates the configuration and prepares a matcher.
func NewMatcher(kb1, kb2 *kb.KB, cfg Config) (*Matcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Matcher{kb1: kb1, kb2: kb2, cfg: cfg}, nil
}

// Plan returns the stage plan Run executes: the full MinoanER
// composition with the stages switched off by the Disable flags
// dropped. Callers may edit the returned plan (pipeline.Drop,
// pipeline.Replace, pipeline.Until) before passing it to RunPlan.
func (m *Matcher) Plan() []pipeline.Stage {
	return PlanFor(m.cfg)
}

// PlanFor builds the matching plan a configuration calls for, without
// needing built KBs: the full composition with the stages switched off
// by the Disable flags dropped.
func PlanFor(cfg Config) []pipeline.Stage {
	return dropDisabled(pipeline.DefaultPlan(), cfg)
}

// DeltaPlanFor is PlanFor for prepared-side runs: the delta plan with
// the same ablation drops, so an index built without a heuristic
// queries without it too.
func DeltaPlanFor(cfg Config) []pipeline.Stage {
	return dropDisabled(pipeline.DeltaPlan(), cfg)
}

// dropDisabled applies the Disable flags to a plan as stage drops.
func dropDisabled(plan []pipeline.Stage, cfg Config) []pipeline.Stage {
	if cfg.DisableH1 {
		plan = pipeline.Drop(plan, pipeline.StageNameMatching)
	}
	if cfg.DisableH2 {
		plan = pipeline.Drop(plan, pipeline.StageValueMatching)
	}
	if cfg.DisableH3 {
		plan = pipeline.Drop(plan, pipeline.StageRankAggregation)
	}
	if cfg.DisableH4 {
		plan = pipeline.Drop(plan, pipeline.StageReciprocity)
	}
	return plan
}

// Run executes the non-iterative matching process. It is deterministic:
// identical inputs produce identical results at any worker count.
func (m *Matcher) Run() *Result {
	res, err := m.RunContext(context.Background())
	if err != nil {
		// The default plan cannot fail on its own and the background
		// context is never cancelled.
		panic(err)
	}
	return res
}

// RunContext executes the configured plan under a context. A cancelled
// context aborts between stages and inside the parallel candidate
// loops, returning ctx.Err() and no Result.
func (m *Matcher) RunContext(ctx context.Context) (*Result, error) {
	return m.RunPlan(ctx, m.Plan(), nil)
}

// CollectAllocStats makes subsequent runs record per-stage allocation
// deltas in Result.Stages (two runtime.ReadMemStats calls per stage —
// measurable on large live heaps, so off by default). Runs observed
// through a progress callback always record them.
func (m *Matcher) CollectAllocStats(on bool) { m.allocStats = on }

// RunPlan executes an arbitrary stage plan, reporting stage boundaries
// to the optional progress callback. Plans are typically Plan() output
// edited with the pipeline helpers; preconditions between stages are
// validated by the stages themselves.
func (m *Matcher) RunPlan(ctx context.Context, plan []pipeline.Stage, progress pipeline.Progress) (*Result, error) {
	st := pipeline.NewState(m.kb1, m.kb2, m.cfg.Params())
	eng := pipeline.Engine{Plan: plan, Progress: progress, AllocStats: m.allocStats || progress != nil}
	stats, err := eng.Run(ctx, st)
	if err != nil {
		return nil, err
	}
	return resultFromState(st, stats), nil
}

// RunSources runs the whole ingest-to-matches path — N-Triples parsing,
// KB assembly, blocking, matching — as one instrumented plan over two
// raw sources. It returns the Result together with the built KBs (for
// URI translation and reuse). allocStats enables per-stage allocation
// accounting; runs observed through a progress callback always record
// it.
func RunSources(ctx context.Context, src1, src2 pipeline.Source, cfg Config, progress pipeline.Progress, allocStats bool) (*Result, *kb.KB, *kb.KB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	st := pipeline.NewIngestState(src1, src2, cfg.Params())
	plan := append(pipeline.IngestPlan(), PlanFor(cfg)...)
	eng := pipeline.Engine{Plan: plan, Progress: progress, AllocStats: allocStats || progress != nil}
	stats, err := eng.Run(ctx, st)
	if err != nil {
		return nil, nil, nil, err
	}
	return resultFromState(st, stats), st.KB1, st.KB2, nil
}

// RunDelta resolves a delta KB against a prepared left side: the
// delta-plan counterpart of RunSources. The substrate must have been
// built (pipeline.PrepareSide) under the same NameK and N as cfg, and
// the delta must be strictly smaller than the prepared KB; violations
// surface as errors rather than wrong answers. The result is
// bit-identical to the full plan over (prepared KB, delta).
func RunDelta(ctx context.Context, prep *pipeline.Prepared, delta *kb.KB, cfg Config, progress pipeline.Progress, allocStats bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := pipeline.NewDeltaState(prep, delta, cfg.Params())
	if err != nil {
		return nil, err
	}
	eng := pipeline.Engine{Plan: DeltaPlanFor(cfg), Progress: progress, AllocStats: allocStats || progress != nil}
	stats, err := eng.Run(ctx, st)
	if err != nil {
		return nil, err
	}
	return resultFromState(st, stats), nil
}

// ShardedPlanFor is PlanFor for scatter-gather runs over a sharded
// substrate: the sharded delta plan with the same ablation drops, so a
// sharded index built without a heuristic queries without it too.
func ShardedPlanFor(cfg Config) []pipeline.Stage {
	return dropDisabled(pipeline.ShardedDeltaPlan(), cfg)
}

// RunSharded resolves a delta KB against a sharded substrate: the
// delta scatters across the K sub-substrates in parallel and the
// ranked candidates gather through cross-shard merges. The result is
// bit-identical to RunDelta over the unsplit substrate — and therefore
// to the full plan over (prepared KB, delta) — at any shard count and
// any worker count.
func RunSharded(ctx context.Context, sp *pipeline.ShardedPrepared, delta *kb.KB, cfg Config, progress pipeline.Progress, allocStats bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := pipeline.NewShardedDeltaState(sp, delta, cfg.Params())
	if err != nil {
		return nil, err
	}
	eng := pipeline.Engine{Plan: ShardedPlanFor(cfg), Progress: progress, AllocStats: allocStats || progress != nil}
	stats, err := eng.Run(ctx, st)
	if err != nil {
		return nil, err
	}
	return resultFromState(st, stats), nil
}

// UpdatePlanFor is PlanFor for epoch-update runs: the update plan with
// the same ablation drops, so a mutable index built without a
// heuristic stays without it across mutations.
func UpdatePlanFor(cfg Config) []pipeline.Stage {
	return dropDisabled(pipeline.UpdatePlan(), cfg)
}

// RunUpdate absorbs one KB mutation into a resolved pair: prev is the
// previous epoch's scoring substrate over (old1, old2), and the run
// produces the result — and the next substrate — for the mutated pair
// (new1, new2). An unmutated side passes the same KB for old and new.
// The result is bit-identical to the full plan over (new1, new2).
func RunUpdate(ctx context.Context, prev *pipeline.Cache, old1, old2, new1, new2 *kb.KB, cfg Config, progress pipeline.Progress, allocStats bool) (*Result, *pipeline.Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	st, err := pipeline.NewUpdateState(prev, old1, old2, new1, new2, cfg.Params())
	if err != nil {
		return nil, nil, err
	}
	collect := allocStats || progress != nil
	eng := pipeline.Engine{Plan: pipeline.UpdatePatchPlan(), Progress: progress, AllocStats: collect}
	stats, err := eng.Run(ctx, st)
	if err != nil {
		return nil, nil, err
	}
	if st.EvidenceUnchanged() {
		// Every matching input is the previous epoch's, verbatim; the
		// heuristics would reproduce the previous outputs bit for bit.
		st.AdoptPrevMatches()
	} else {
		eng = pipeline.Engine{Plan: dropDisabled(pipeline.UpdateMatchPlan(), cfg), Progress: progress, AllocStats: collect}
		matchStats, err := eng.Run(ctx, st)
		if err != nil {
			return nil, nil, err
		}
		stats = append(stats, matchStats...)
	}
	next := st.UpdatedCache()
	next.SetMatches(st.H1, st.H2, st.H3, st.Matches, st.DiscardedByH4)
	return resultFromState(st, stats), next, nil
}

// PrimeCache builds the scoring substrate a mutable index needs from
// its resolved artifacts (the KBs and the purged token collection plus
// B_N) — the one-time cost paid before the first mutation.
func PrimeCache(ctx context.Context, kb1, kb2 *kb.KB, nameBlocks, tokenBlocks *blocking.Collection, purge blocking.PurgeResult, cfg Config) (*pipeline.Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := pipeline.NewState(kb1, kb2, cfg.Params())
	st.NameBlocks = nameBlocks
	st.TokenBlocks = tokenBlocks
	return pipeline.NewCache(ctx, st, nameBlocks, purge)
}

func resultFromState(st *pipeline.State, stats []pipeline.StageStat) *Result {
	return &Result{
		Matches:          st.Matches,
		H1:               st.H1,
		H2:               st.H2,
		H3:               st.H3,
		DiscardedByH4:    st.DiscardedByH4,
		NameBlockCount:   st.NameBlockCount,
		TokenBlockCount:  st.TokenBlockCount,
		NameComparisons:  st.NameComparisons,
		TokenComparisons: st.TokenComparisons,
		Purge:            st.PurgeStats,
		Skipped1:         st.Skipped1,
		Skipped2:         st.Skipped2,
		Stages:           stats,
	}
}
