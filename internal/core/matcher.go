package core

import (
	"sort"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Result reports the matches and the per-stage accounting of one
// MinoanER run.
type Result struct {
	// Matches is the final output M = (H1 ∨ H2 ∨ H3) ∧ H4, sorted by
	// (E1, E2).
	Matches []eval.Pair
	// H1, H2, H3 are the per-heuristic contributions before H4.
	H1, H2, H3 []eval.Pair
	// DiscardedByH4 counts pairs removed by the reciprocity filter.
	DiscardedByH4 int
	// NameBlockCount and TokenBlockCount are |B_N| and |B_T| (the latter
	// after purging).
	NameBlockCount, TokenBlockCount int
	// NameComparisons and TokenComparisons are ||B_N|| and ||B_T||.
	NameComparisons, TokenComparisons int64
	// Purge describes what Block Purging removed from B_T.
	Purge blocking.PurgeResult
}

// Matcher runs the MinoanER process for one pair of KBs.
type Matcher struct {
	kb1, kb2 *kb.KB
	cfg      Config
}

// NewMatcher validates the configuration and prepares a matcher.
func NewMatcher(kb1, kb2 *kb.KB, cfg Config) (*Matcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Matcher{kb1: kb1, kb2: kb2, cfg: cfg}, nil
}

// Run executes the non-iterative matching process. It is deterministic:
// identical inputs produce identical results at any worker count.
func (m *Matcher) Run() *Result {
	res := &Result{}
	cfg := m.cfg
	workers := cfg.workers()

	// --- Blocking ---------------------------------------------------
	bn := blocking.NameBlocks(m.kb1, m.kb2, cfg.NameK)
	res.NameBlockCount = bn.Size()
	res.NameComparisons = bn.Comparisons()

	bt := blocking.TokenBlocks(m.kb1, m.kb2)
	bt, res.Purge = blocking.Purge(bt, cfg.Purge)
	res.TokenBlockCount = bt.Size()
	res.TokenComparisons = bt.Comparisons()
	idx := bt.BuildIndex()

	// --- H1: name heuristic ------------------------------------------
	// A name block holding exactly one entity from each KB declares a
	// match: the two entities — and only they — share that name.
	h1map1 := make(map[kb.EntityID]kb.EntityID)
	h1map2 := make(map[kb.EntityID]kb.EntityID)
	if !cfg.DisableH1 {
		for i := range bn.Blocks {
			b := &bn.Blocks[i]
			if len(b.E1) != 1 || len(b.E2) != 1 {
				continue
			}
			e1, e2 := b.E1[0], b.E2[0]
			if _, taken := h1map1[e1]; taken {
				continue
			}
			if _, taken := h1map2[e2]; taken {
				continue
			}
			h1map1[e1] = e2
			h1map2[e2] = e1
			res.H1 = append(res.H1, eval.Pair{E1: e1, E2: e2})
		}
	}

	// --- Evidence: value and neighbor candidates ---------------------
	weights := tokenWeights(bt)
	vc1, vc2 := valueCandidates(bt, idx, weights, cfg.K, workers)
	nc1, nc2 := neighborCandidates(m.kb1, m.kb2, vc1, vc2, cfg.N, cfg.K, workers)
	ev1 := &candidateEvidence{value: vc1, neighbor: nc1}
	ev2 := &candidateEvidence{value: vc2, neighbor: nc2}

	// Matching decisions are emitted for the smaller KB's entities, as
	// in the paper ("every entity e_i of the smaller in size KB"). The
	// evidence of the other side still feeds H4's reciprocity check.
	swap := m.kb2.Len() < m.kb1.Len()
	evA := ev1
	h1A := h1map1
	h1B := h1map2
	sizeA := m.kb1.Len()
	if swap {
		evA = ev2
		h1A, h1B = h1map2, h1map1
		sizeA = m.kb2.Len()
	}
	emit := func(a, b kb.EntityID) eval.Pair {
		if swap {
			return eval.Pair{E1: b, E2: a}
		}
		return eval.Pair{E1: a, E2: b}
	}

	// --- H2: value heuristic ------------------------------------------
	// For each yet-unmatched entity, its strongest co-occurring
	// candidate wins if the value similarity reaches 1 — many common,
	// infrequent tokens.
	h2A := make(map[kb.EntityID]struct{})
	h2B := make(map[kb.EntityID]struct{})
	if !cfg.DisableH2 {
		for e := 0; e < sizeA; e++ {
			ea := kb.EntityID(e)
			if _, done := h1A[ea]; done {
				continue
			}
			best, ok := firstEligible(evA.value[ea], h1B)
			if !ok || best.Sim < 1 {
				continue
			}
			res.H2 = append(res.H2, emit(ea, best.ID))
			h2A[ea] = struct{}{}
			h2B[best.ID] = struct{}{}
		}
	}

	// --- H3: rank aggregation -----------------------------------------
	// Remaining entities match their top-1 candidate under the
	// θ-weighted sum of normalized value and neighbor ranks.
	if !cfg.DisableH3 {
		for e := 0; e < sizeA; e++ {
			ea := kb.EntityID(e)
			if _, done := h1A[ea]; done {
				continue
			}
			if _, done := h2A[ea]; done {
				continue
			}
			skip := func(id kb.EntityID) bool {
				if _, t := h1B[id]; t {
					return true
				}
				_, t := h2B[id]
				return t
			}
			best, ok := aggregateRanks(evA.value[ea], evA.neighbor[ea], cfg.Theta, skip)
			if !ok {
				continue
			}
			res.H3 = append(res.H3, emit(ea, best))
		}
	}

	// --- H4: reciprocity ------------------------------------------------
	// A pair survives only if each entity lists the other among its
	// top-K value or neighbor candidates.
	union := dedupPairs(append(append(append([]eval.Pair{}, res.H1...), res.H2...), res.H3...))
	if cfg.DisableH4 {
		res.Matches = union
	} else {
		for _, p := range union {
			if reciprocal(ev1, ev2, p) {
				res.Matches = append(res.Matches, p)
			} else {
				res.DiscardedByH4++
			}
		}
	}
	sortPairs(res.Matches)
	return res
}

// firstEligible returns the best candidate not already claimed by H1.
func firstEligible(cands []Cand, h1Taken map[kb.EntityID]kb.EntityID) (Cand, bool) {
	for _, c := range cands {
		if _, taken := h1Taken[c.ID]; taken {
			continue
		}
		return c, true
	}
	return Cand{}, false
}

// aggregateRanks implements H3's threshold-free rank aggregation. Both
// lists are already sorted by descending similarity; the candidate at
// position i of a list of size L receives normalized rank (L-i)/L, and
// candidates absent from a list receive 0 for it. The aggregate score
// is θ·valueRank + (1-θ)·neighborRank; the top-1 candidate wins (ties
// by ascending ID).
func aggregateRanks(value, neighbor []Cand, theta float64, skip func(kb.EntityID) bool) (kb.EntityID, bool) {
	scores := make(map[kb.EntityID]float64, len(value)+len(neighbor))
	addList := func(list []Cand, w float64) {
		eligible := make([]Cand, 0, len(list))
		for _, c := range list {
			if c.Sim <= 0 || skip(c.ID) {
				continue
			}
			eligible = append(eligible, c)
		}
		l := float64(len(eligible))
		for i, c := range eligible {
			scores[c.ID] += w * (l - float64(i)) / l
		}
	}
	addList(value, theta)
	addList(neighbor, 1-theta)
	if len(scores) == 0 {
		return 0, false
	}
	var best kb.EntityID
	bestScore := -1.0
	ids := make([]kb.EntityID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if s := scores[id]; s > bestScore {
			bestScore = s
			best = id
		}
	}
	return best, true
}

// reciprocal implements H4: e2 must appear in e1's top-K value or
// neighbor candidates, and vice versa.
func reciprocal(ev1, ev2 *candidateEvidence, p eval.Pair) bool {
	return contains(ev1.value[p.E1], ev1.neighbor[p.E1], p.E2) &&
		contains(ev2.value[p.E2], ev2.neighbor[p.E2], p.E1)
}

func contains(value, neighbor []Cand, id kb.EntityID) bool {
	for _, c := range value {
		if c.ID == id {
			return true
		}
	}
	for _, c := range neighbor {
		if c.ID == id {
			return true
		}
	}
	return false
}

func dedupPairs(pairs []eval.Pair) []eval.Pair {
	seen := make(map[eval.Pair]struct{}, len(pairs))
	out := pairs[:0]
	for _, p := range pairs {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

func sortPairs(pairs []eval.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].E1 != pairs[j].E1 {
			return pairs[i].E1 < pairs[j].E1
		}
		return pairs[i].E2 < pairs[j].E2
	})
}
