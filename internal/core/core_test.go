package core

import (
	"fmt"
	"reflect"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

type tripleList []rdf.Triple

func (t *tripleList) add(s, p string, o rdf.Term) {
	*t = append(*t, rdf.NewTriple(iri(s), iri(p), o))
}

func mustKB(t testing.TB, name string, triples tripleList) *kb.KB {
	t.Helper()
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func mustID(t testing.TB, k *kb.KB, uri string) kb.EntityID {
	t.Helper()
	id, ok := k.Lookup(uri)
	if !ok {
		t.Fatalf("entity %s missing from %s", uri, k.Name())
	}
	return id
}

func runMatcher(t testing.TB, kb1, kb2 *kb.KB, cfg Config) *Result {
	t.Helper()
	m, err := NewMatcher(kb1, kb2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	purge := blocking.DefaultPurgeConfig()
	bad := []Config{
		{K: 0, N: 3, NameK: 2, Theta: 0.6, Purge: purge},
		{K: 15, N: -1, NameK: 2, Theta: 0.6, Purge: purge},
		{K: 15, N: 3, NameK: -1, Theta: 0.6, Purge: purge},
		{K: 15, N: 3, NameK: 2, Theta: 0, Purge: purge},
		{K: 15, N: 3, NameK: 2, Theta: 1, Purge: purge},
		{K: 15, N: 3, NameK: 2, Theta: 0.6, Purge: blocking.PurgeConfig{EntityFraction: 0}},
		{K: 15, N: 3, NameK: 2, Theta: 0.6, Purge: blocking.PurgeConfig{EntityFraction: 2}},
		{K: 15, N: 3, NameK: 2, Theta: 0.6, Purge: blocking.PurgeConfig{EntityFraction: 0.5, MinEntities: -1}},
		{K: 15, N: 3, NameK: 2, Theta: 0.6, Purge: purge, Workers: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if _, err := NewMatcher(nil, nil, Config{}); err == nil {
		t.Error("NewMatcher accepted zero config")
	}
}

// nameKBs: two KBs where h-entities share a unique name.
func nameKBs(t testing.TB) (*kb.KB, *kb.KB) {
	var t1, t2 tripleList
	t1.add("http://a/x", "http://v/name", lit("Unique Alpha Name"))
	t1.add("http://a/x", "http://v/desc", lit("completely different words here"))
	t1.add("http://a/y", "http://v/name", lit("Another Beta Name"))
	t1.add("http://a/y", "http://v/desc", lit("some other description text"))
	t2.add("http://b/x", "http://v/title", lit("unique alpha name!"))
	t2.add("http://b/x", "http://v/about", lit("nothing in common at all"))
	t2.add("http://b/y", "http://v/title", lit("another beta name"))
	t2.add("http://b/y", "http://v/about", lit("irrelevant filler value"))
	return mustKB(t, "a", t1), mustKB(t, "b", t2)
}

func TestH1MatchesByName(t *testing.T) {
	kb1, kb2 := nameKBs(t)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	if len(res.H1) != 2 {
		t.Fatalf("H1 found %d pairs, want 2: %v", len(res.H1), res.H1)
	}
	want := map[eval.Pair]bool{
		{E1: mustID(t, kb1, "http://a/x"), E2: mustID(t, kb2, "http://b/x")}: true,
		{E1: mustID(t, kb1, "http://a/y"), E2: mustID(t, kb2, "http://b/y")}: true,
	}
	for _, p := range res.H1 {
		if !want[p] {
			t.Errorf("unexpected H1 pair %v", p)
		}
	}
	// H1 matches survive H4: name tokens co-occur in token blocks.
	if len(res.Matches) != 2 {
		t.Errorf("final matches = %v", res.Matches)
	}
}

func TestH1RequiresUniqueness(t *testing.T) {
	// Two KB1 entities share the same name: the block has 2 E1 members,
	// so H1 must not fire.
	var t1, t2 tripleList
	t1.add("http://a/x1", "http://v/name", lit("Ambiguous Name"))
	t1.add("http://a/x2", "http://v/name", lit("Ambiguous Name"))
	t2.add("http://b/x", "http://v/name", lit("ambiguous name"))
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	if len(res.H1) != 0 {
		t.Errorf("H1 fired on ambiguous name: %v", res.H1)
	}
}

func TestH1Disabled(t *testing.T) {
	kb1, kb2 := nameKBs(t)
	cfg := DefaultConfig()
	cfg.DisableH1 = true
	res := runMatcher(t, kb1, kb2, cfg)
	if len(res.H1) != 0 {
		t.Errorf("H1 ran while disabled: %v", res.H1)
	}
	// The pairs are still strongly value-similar (unique name tokens
	// give sim 3 >= 1), so H2 recovers them.
	if len(res.H2) != 2 {
		t.Errorf("H2 = %v, want the 2 pairs", res.H2)
	}
}

// valueKBs: entities share unique tokens but no normalized name key is
// identical across the KBs (the token order differs), so H1 cannot fire
// and only value evidence (H2/H3) can match them.
func valueKBs(t testing.TB) (*kb.KB, *kb.KB) {
	var t1, t2 tripleList
	t1.add("http://a/p", "http://v/name", lit("First Thing"))
	t1.add("http://a/p", "http://v/code", lit("zqx73 kwv91"))
	t1.add("http://a/q", "http://v/name", lit("Second Thing"))
	t1.add("http://a/q", "http://v/code", lit("mml42 ppo55"))
	t2.add("http://b/p", "http://v/label", lit("Erste Sache"))
	t2.add("http://b/p", "http://v/id", lit("kwv91 zqx73"))
	t2.add("http://b/q", "http://v/label", lit("Zweite Sache"))
	t2.add("http://b/q", "http://v/id", lit("ppo55 mml42"))
	return mustKB(t, "a", t1), mustKB(t, "b", t2)
}

func TestH2MatchesByValues(t *testing.T) {
	kb1, kb2 := valueKBs(t)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	if len(res.H1) != 0 {
		t.Fatalf("unexpected H1 pairs: %v", res.H1)
	}
	if len(res.H2) != 2 {
		t.Fatalf("H2 = %v, want 2 pairs", res.H2)
	}
	wantP := eval.Pair{E1: mustID(t, kb1, "http://a/p"), E2: mustID(t, kb2, "http://b/p")}
	found := false
	for _, p := range res.H2 {
		if p == wantP {
			found = true
		}
	}
	if !found {
		t.Errorf("H2 missed %v: %v", wantP, res.H2)
	}
	if len(res.Matches) != 2 {
		t.Errorf("final matches = %v", res.Matches)
	}
}

func TestH2ThresholdNotReached(t *testing.T) {
	// The only shared token appears in 2 entities per KB → weight
	// 1/log2(5) < 1, so H2 must not fire.
	var t1, t2 tripleList
	t1.add("http://a/p", "http://v/x", lit("shared alpha"))
	t1.add("http://a/q", "http://v/x", lit("shared beta"))
	t2.add("http://b/p", "http://v/x", lit("shared gamma"))
	t2.add("http://b/q", "http://v/x", lit("shared delta"))
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	cfg := DefaultConfig()
	cfg.DisableH3 = true
	res := runMatcher(t, kb1, kb2, cfg)
	if len(res.H2) != 0 {
		t.Errorf("H2 fired below threshold: %v", res.H2)
	}
}

func TestH2Disabled(t *testing.T) {
	kb1, kb2 := valueKBs(t)
	cfg := DefaultConfig()
	cfg.DisableH2 = true
	res := runMatcher(t, kb1, kb2, cfg)
	if len(res.H2) != 0 {
		t.Errorf("H2 ran while disabled")
	}
	// H3 takes over: the pairs are still each other's best candidates.
	if len(res.H3) != 2 {
		t.Errorf("H3 = %v, want 2", res.H3)
	}
}

// neighborKBs: the target pair (p1, q1) has weak value overlap but its
// neighbors match strongly by value.
func neighborKBs(t testing.TB) (*kb.KB, *kb.KB) {
	var t1, t2 tripleList
	// Publications with weak value overlap: every title token appears
	// in two entities per KB.
	t1.add("http://a/p1", "http://v/title", lit("study results alpha"))
	t1.add("http://a/p2", "http://v/title", lit("study results beta"))
	t1.add("http://a/p1", "http://v/author", iri("http://a/w1"))
	t1.add("http://a/p2", "http://v/author", iri("http://a/w2"))
	// Authors with strongly identifying tokens.
	t1.add("http://a/w1", "http://v/person", lit("qqfirst qqlast"))
	t1.add("http://a/w2", "http://v/person", lit("zzfirst zzlast"))

	t2.add("http://b/q1", "http://v/heading", lit("study results gamma"))
	t2.add("http://b/q2", "http://v/heading", lit("study results delta"))
	t2.add("http://b/q1", "http://v/creator", iri("http://b/v1"))
	t2.add("http://b/q2", "http://v/creator", iri("http://b/v2"))
	t2.add("http://b/v1", "http://v/who", lit("qqfirst qqlast"))
	t2.add("http://b/v2", "http://v/who", lit("zzfirst zzlast"))
	return mustKB(t, "a", t1), mustKB(t, "b", t2)
}

func TestH3MatchesViaNeighbors(t *testing.T) {
	kb1, kb2 := neighborKBs(t)
	cfg := DefaultConfig()
	res := runMatcher(t, kb1, kb2, cfg)
	// Authors match by H2 (unique tokens); publications must be matched
	// (by H2-or-H3 depending on weights) to the right counterpart.
	p1 := eval.Pair{E1: mustID(t, kb1, "http://a/p1"), E2: mustID(t, kb2, "http://b/q1")}
	p2 := eval.Pair{E1: mustID(t, kb1, "http://a/p2"), E2: mustID(t, kb2, "http://b/q2")}
	got := map[eval.Pair]bool{}
	for _, p := range res.Matches {
		got[p] = true
	}
	if !got[p1] || !got[p2] {
		t.Errorf("publication pairs missing: matches=%v H2=%v H3=%v", res.Matches, res.H2, res.H3)
	}
}

func TestH3NeighborEvidenceBreaksTie(t *testing.T) {
	// p1's value candidates q1 and q2 tie exactly (same shared tokens);
	// only the neighbor evidence separates them. With H3 disabled the
	// pair is not emitted; with H3 enabled it picks q1 via neighbors.
	kb1, kb2 := neighborKBs(t)
	cfg := DefaultConfig()
	cfg.DisableH2 = true // force publications through H3
	res := runMatcher(t, kb1, kb2, cfg)
	p1 := eval.Pair{E1: mustID(t, kb1, "http://a/p1"), E2: mustID(t, kb2, "http://b/q1")}
	found := false
	for _, p := range res.H3 {
		if p == p1 {
			found = true
		}
	}
	if !found {
		t.Errorf("H3 did not use neighbor evidence: H3=%v", res.H3)
	}
}

func TestH4DiscardsNonReciprocal(t *testing.T) {
	// e1's best candidate is hub, but hub's top-K is saturated by a
	// closer candidate, so reciprocity fails with K=1:
	// valueSim(e1,hub) = 2·1 = 2 < valueSim(other,hub) = 4/log2(3) ≈ 2.52.
	var t1, t2 tripleList
	t1.add("http://a/e1", "http://v/x", lit("common1 common2"))
	t1.add("http://a/other", "http://v/x", lit("zz1 zz2 zz3 zz4"))
	t2.add("http://b/hub", "http://v/x", lit("common1 common2 zz1 zz2 zz3 zz4"))
	t2.add("http://b/full", "http://v/x", lit("zz1 zz2 zz3 zz4"))
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)

	cfg := DefaultConfig()
	cfg.K = 1
	cfg.Purge = blocking.NoPurge() // tiny fixture: keep every block
	res := runMatcher(t, kb1, kb2, cfg)
	// With K=1, hub's single slot goes to "other", so (e1, hub) must be
	// discarded by H4.
	for _, p := range res.Matches {
		if p.E1 == mustID(t, kb1, "http://a/e1") {
			t.Errorf("non-reciprocal pair survived H4: %v", p)
		}
	}
	if res.DiscardedByH4 == 0 {
		t.Error("H4 discarded nothing")
	}

	cfg.DisableH4 = true
	res = runMatcher(t, kb1, kb2, cfg)
	found := false
	for _, p := range res.Matches {
		if p.E1 == mustID(t, kb1, "http://a/e1") {
			found = true
		}
	}
	if !found {
		t.Error("with H4 disabled the pair should survive")
	}
}

func TestMatchesSubsetOfHeuristics(t *testing.T) {
	kb1, kb2 := neighborKBs(t)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	union := map[eval.Pair]bool{}
	for _, p := range res.H1 {
		union[p] = true
	}
	for _, p := range res.H2 {
		union[p] = true
	}
	for _, p := range res.H3 {
		union[p] = true
	}
	for _, p := range res.Matches {
		if !union[p] {
			t.Errorf("match %v not produced by any heuristic", p)
		}
	}
	if len(res.Matches)+res.DiscardedByH4 != len(union) {
		t.Errorf("H4 accounting: %d + %d != %d", len(res.Matches), res.DiscardedByH4, len(union))
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	kb1, kb2 := neighborKBs(t)
	var base *Result
	for _, workers := range []int{1, 2, 3, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		res := runMatcher(t, kb1, kb2, cfg)
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Matches, base.Matches) {
			t.Errorf("workers=%d changed results: %v vs %v", workers, res.Matches, base.Matches)
		}
	}
}

func TestEmptyKBs(t *testing.T) {
	kb1 := mustKB(t, "a", nil)
	kb2 := mustKB(t, "b", nil)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	if len(res.Matches) != 0 {
		t.Errorf("matches on empty KBs: %v", res.Matches)
	}
}

func TestOneSidedKB(t *testing.T) {
	var t1 tripleList
	t1.add("http://a/x", "http://v/name", lit("Lonely Entity"))
	kb1 := mustKB(t, "a", t1)
	kb2 := mustKB(t, "b", nil)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	if len(res.Matches) != 0 {
		t.Errorf("matches with empty KB2: %v", res.Matches)
	}
}

func TestNoRelationsStillMatches(t *testing.T) {
	// Without any relations H3's neighbor list is empty; value evidence
	// alone must still work.
	kb1, kb2 := valueKBs(t)
	cfg := DefaultConfig()
	cfg.N = 0
	res := runMatcher(t, kb1, kb2, cfg)
	if len(res.Matches) != 2 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestBlockStatsExposed(t *testing.T) {
	kb1, kb2 := nameKBs(t)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	if res.NameBlockCount == 0 || res.TokenBlockCount == 0 {
		t.Errorf("block counts missing: %+v", res)
	}
	if res.TokenComparisons < res.NameComparisons {
		t.Logf("token comparisons %d < name comparisons %d (tiny fixture)", res.TokenComparisons, res.NameComparisons)
	}
}

func buildScaleKBs(t testing.TB, n int) (*kb.KB, *kb.KB) {
	var t1, t2 tripleList
	for i := 0; i < n; i++ {
		s1 := fmt.Sprintf("http://a/e%04d", i)
		s2 := fmt.Sprintf("http://b/e%04d", i)
		name := fmt.Sprintf("entity number %04d omega", i)
		t1.add(s1, "http://v/name", lit(name))
		t2.add(s2, "http://v/title", lit(name))
		if i > 0 {
			t1.add(s1, "http://v/link", iri(fmt.Sprintf("http://a/e%04d", i-1)))
			t2.add(s2, "http://v/rel", iri(fmt.Sprintf("http://b/e%04d", i-1)))
		}
	}
	return mustKB(t, "a", t1), mustKB(t, "b", t2)
}

func TestScaleAllMatched(t *testing.T) {
	kb1, kb2 := buildScaleKBs(t, 200)
	res := runMatcher(t, kb1, kb2, DefaultConfig())
	if len(res.Matches) != 200 {
		t.Fatalf("matched %d of 200", len(res.Matches))
	}
	for _, p := range res.Matches {
		u1 := kb1.URI(p.E1)
		u2 := kb2.URI(p.E2)
		if u1[len(u1)-4:] != u2[len(u2)-4:] {
			t.Errorf("mismatched pair %s / %s", u1, u2)
		}
	}
}

func BenchmarkMatcherRun(b *testing.B) {
	kb1, kb2 := buildScaleKBs(b, 500)
	cfg := DefaultConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := NewMatcher(kb1, kb2, cfg)
		if err != nil {
			b.Fatal(err)
		}
		m.Run()
	}
}
