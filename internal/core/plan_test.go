package core

import (
	"context"
	"reflect"
	"testing"

	"minoaner/internal/pipeline"
)

// TestPlanEditsMatchDisableFlags: dropping a heuristic stage from the
// default plan is exactly the corresponding Disable flag.
func TestPlanEditsMatchDisableFlags(t *testing.T) {
	ds := goldenDatasets(t)[2] // BBCmusic-DBpedia: all heuristics contribute
	cases := []struct {
		name  string
		flag  func(*Config)
		stage string
	}{
		{"H1", func(c *Config) { c.DisableH1 = true }, pipeline.StageNameMatching},
		{"H2", func(c *Config) { c.DisableH2 = true }, pipeline.StageValueMatching},
		{"H3", func(c *Config) { c.DisableH3 = true }, pipeline.StageRankAggregation},
		{"H4", func(c *Config) { c.DisableH4 = true }, pipeline.StageReciprocity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flagged := DefaultConfig()
			tc.flag(&flagged)
			mf, err := NewMatcher(ds.KB1, ds.KB2, flagged)
			if err != nil {
				t.Fatal(err)
			}
			byFlag := mf.Run()

			mp, err := NewMatcher(ds.KB1, ds.KB2, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			byEdit, err := mp.RunPlan(context.Background(), pipeline.Drop(mp.Plan(), tc.stage), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !samePairs(byFlag.Matches, byEdit.Matches) {
				t.Errorf("Disable%s (%d matches) != Drop(%s) (%d matches)",
					tc.name, len(byFlag.Matches), tc.stage, len(byEdit.Matches))
			}
			if byFlag.DiscardedByH4 != byEdit.DiscardedByH4 {
				t.Errorf("DiscardedByH4: flag %d, edit %d", byFlag.DiscardedByH4, byEdit.DiscardedByH4)
			}
		})
	}
}

// TestPlanReflectsFlags: the plan builder drops exactly the stages the
// flags disable.
func TestPlanReflectsFlags(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableH2 = true
	cfg.DisableH4 = true
	kb1, kb2 := nameKBs(t)
	m, err := NewMatcher(kb1, kb2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := pipeline.Names(m.Plan())
	want := pipeline.Names(pipeline.Drop(pipeline.DefaultPlan(),
		pipeline.StageValueMatching, pipeline.StageReciprocity))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plan = %v, want %v", got, want)
	}
}

// TestRunContextCancelled: a pre-cancelled context returns promptly
// with no Result.
func TestRunContextCancelled(t *testing.T) {
	kb1, kb2 := nameKBs(t)
	m, err := NewMatcher(kb1, kb2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := m.RunContext(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a Result")
	}
}

// TestStageStatsOnResult: every executed run reports one stat per
// planned stage.
func TestStageStatsOnResult(t *testing.T) {
	kb1, kb2 := nameKBs(t)
	m, err := NewMatcher(kb1, kb2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.Stages) != len(m.Plan()) {
		t.Fatalf("stats for %d stages, plan has %d", len(res.Stages), len(m.Plan()))
	}
	for i, s := range res.Stages {
		if s.Stage != m.Plan()[i].Name() {
			t.Errorf("stat %d = %q, want %q", i, s.Stage, m.Plan()[i].Name())
		}
	}
}
