package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
	"minoaner/internal/rdf"
)

// deltaFromTriples builds a standalone delta KB from the triples whose
// subject is one of the given URIs.
func deltaFromTriples(t *testing.T, name string, triples []rdf.Triple, uris []string) *kb.KB {
	t.Helper()
	built, _, err := kb.FromTriplesSubset(name, triples, uris)
	if err != nil {
		t.Fatal(err)
	}
	return built
}

// assertSameResult compares the full evidence of two runs: the match
// set, every per-heuristic contribution, and all block accounting.
func assertSameResult(t *testing.T, label string, full, fast *Result) {
	t.Helper()
	if !reflect.DeepEqual(fast.Matches, full.Matches) {
		t.Fatalf("%s: prepared path found %d matches, full plan %d", label, len(fast.Matches), len(full.Matches))
	}
	if !reflect.DeepEqual(fast.H1, full.H1) || !reflect.DeepEqual(fast.H2, full.H2) || !reflect.DeepEqual(fast.H3, full.H3) {
		t.Fatalf("%s: per-heuristic contributions diverge (H1 %d/%d, H2 %d/%d, H3 %d/%d)",
			label, len(fast.H1), len(full.H1), len(fast.H2), len(full.H2), len(fast.H3), len(full.H3))
	}
	if fast.DiscardedByH4 != full.DiscardedByH4 {
		t.Fatalf("%s: H4 discarded %d vs %d", label, fast.DiscardedByH4, full.DiscardedByH4)
	}
	if fast.NameBlockCount != full.NameBlockCount || fast.TokenBlockCount != full.TokenBlockCount ||
		fast.NameComparisons != full.NameComparisons || fast.TokenComparisons != full.TokenComparisons ||
		fast.Purge != full.Purge {
		t.Fatalf("%s: block accounting diverges:\nfull: BN=%d BT=%d ||BN||=%d ||BT||=%d purge=%+v\nfast: BN=%d BT=%d ||BN||=%d ||BT||=%d purge=%+v",
			label,
			full.NameBlockCount, full.TokenBlockCount, full.NameComparisons, full.TokenComparisons, full.Purge,
			fast.NameBlockCount, fast.TokenBlockCount, fast.NameComparisons, fast.TokenComparisons, fast.Purge)
	}
}

// TestDeltaPlanEquivalence is the equivalence guard of the prepared
// path: on every benchmark, resolving single-entity, small-batch, and
// whole-KB2 deltas through the prepared plan is bit-identical to the
// full plan — matches, heuristic contributions, and block accounting —
// at every worker count.
func TestDeltaPlanEquivalence(t *testing.T) {
	for _, g := range datagen.Generators() {
		t.Run(g.Name, func(t *testing.T) {
			ds, err := g.Build(datagen.Options{Seed: 42, Scale: 0.12})
			if err != nil {
				t.Fatal(err)
			}
			n2 := ds.KB2.Len()
			uri := func(e int) string { return ds.KB2.URI(kb.EntityID(e)) }
			var batch []string
			for e := 0; e < n2 && len(batch) < 10; e += 1 + n2/10 {
				batch = append(batch, uri(e))
			}
			var all []string
			for e := 0; e < n2; e++ {
				all = append(all, uri(e))
			}
			deltas := map[string]*kb.KB{
				"single-first": deltaFromTriples(t, "d1", ds.Triples2, []string{uri(0)}),
				"single-mid":   deltaFromTriples(t, "d2", ds.Triples2, []string{uri(n2 / 2)}),
				"batch-10":     deltaFromTriples(t, "d3", ds.Triples2, batch),
				"full-kb2":     deltaFromTriples(t, "d4", ds.Triples2, all),
			}
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := DefaultConfig()
				cfg.Workers = workers
				prep := pipeline.PrepareSide(ds.KB1, cfg.Params())
				for label, delta := range deltas {
					if delta.Len() >= ds.KB1.Len() {
						// RunDelta refuses deltas at least as large as the
						// prepared KB; the public QueryKB falls back to the
						// full plan there.
						if _, err := RunDelta(context.Background(), prep, delta, cfg, nil, false); err == nil {
							t.Fatalf("workers=%d %s: oversized delta accepted", workers, label)
						}
						continue
					}
					m, err := NewMatcher(ds.KB1, delta, cfg)
					if err != nil {
						t.Fatal(err)
					}
					full, err := m.RunContext(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					fast, err := RunDelta(context.Background(), prep, delta, cfg, nil, false)
					if err != nil {
						t.Fatalf("workers=%d %s: %v", workers, label, err)
					}
					assertSameResult(t, fmt.Sprintf("%s/%s/workers=%d", g.Name, label, workers), full, fast)
				}
			}
		})
	}
}

// TestDeltaPlanAblations checks the prepared path under every single
// heuristic ablation: the delta plan must drop the same stages the
// full plan drops and stay bit-identical.
func TestDeltaPlanAblations(t *testing.T) {
	ds, err := datagen.Generators()[0].Build(datagen.Options{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	uris := []string{ds.KB2.URI(0), ds.KB2.URI(kb.EntityID(ds.KB2.Len() / 3))}
	delta := deltaFromTriples(t, "delta", ds.Triples2, uris)
	mutate := []func(*Config){
		func(c *Config) { c.DisableH1 = true },
		func(c *Config) { c.DisableH2 = true },
		func(c *Config) { c.DisableH3 = true },
		func(c *Config) { c.DisableH4 = true },
	}
	for i, mut := range mutate {
		cfg := DefaultConfig()
		mut(&cfg)
		prep := pipeline.PrepareSide(ds.KB1, cfg.Params())
		m, err := NewMatcher(ds.KB1, delta, cfg)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		fast, err := RunDelta(context.Background(), prep, delta, cfg, nil, false)
		if err != nil {
			t.Fatalf("ablation %d: %v", i, err)
		}
		assertSameResult(t, "ablation", full, fast)
	}
}

// TestRunDeltaValidation covers the substrate/parameter guards.
func TestRunDeltaValidation(t *testing.T) {
	ds, err := datagen.Generators()[0].Build(datagen.Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	delta := deltaFromTriples(t, "delta", ds.Triples2, []string{ds.KB2.URI(0)})
	cfg := DefaultConfig()
	prep := pipeline.PrepareSide(ds.KB1, cfg.Params())

	if _, err := RunDelta(context.Background(), nil, delta, cfg, nil, false); err == nil {
		t.Error("nil substrate accepted")
	}
	mismatched := cfg
	mismatched.NameK = cfg.NameK + 1
	if _, err := RunDelta(context.Background(), prep, delta, mismatched, nil, false); err == nil {
		t.Error("NameK mismatch accepted")
	}
	mismatched = cfg
	mismatched.N = cfg.N + 1
	if _, err := RunDelta(context.Background(), prep, delta, mismatched, nil, false); err == nil {
		t.Error("N mismatch accepted")
	}
}
