package core

import (
	"fmt"
	"math/rand"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// TestEmissionSideIsSmallerKB: matching decisions are emitted for the
// smaller KB's entities, so each of its entities appears at most once.
func TestEmissionSideIsSmallerKB(t *testing.T) {
	// KB2 smaller: two KB1 entities compete for one KB2 entity.
	var t1, t2 tripleList
	t1.add("http://a/x1", "http://v/p", lit("shared token1 token2"))
	t1.add("http://a/x2", "http://v/p", lit("shared token1 token3"))
	t2.add("http://b/y", "http://v/p", lit("shared token1 token2"))
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	if kb2.Len() >= kb1.Len() {
		t.Fatal("fixture: kb2 must be smaller")
	}
	cfg := DefaultConfig()
	cfg.Purge = blocking.NoPurge()
	res := runMatcher(t, kb1, kb2, cfg)
	// Emission from KB2's side: at most one pair for http://b/y.
	count := 0
	for _, p := range res.Matches {
		if kb2.URI(p.E2) == "http://b/y" {
			count++
		}
	}
	if count > 1 {
		t.Errorf("KB2 entity matched %d times: %v", count, res.Matches)
	}
	// The better candidate (x1: shares token2 as well) must win.
	if count == 1 {
		for _, p := range res.Matches {
			if kb2.URI(p.E2) == "http://b/y" && kb1.URI(p.E1) != "http://a/x1" {
				t.Errorf("weaker candidate won: %v", p)
			}
		}
	}
}

func TestNameK0DisablesH1(t *testing.T) {
	kb1, kb2 := nameKBs(t)
	cfg := DefaultConfig()
	cfg.NameK = 0
	res := runMatcher(t, kb1, kb2, cfg)
	if len(res.H1) != 0 {
		t.Errorf("H1 pairs with NameK=0: %v", res.H1)
	}
	if res.NameBlockCount != 0 {
		t.Errorf("name blocks with NameK=0: %d", res.NameBlockCount)
	}
}

func TestH3SkipsH2MatchedCandidates(t *testing.T) {
	// e1 and e2 of KB1 both co-occur with f1 of KB2; e1 takes f1 via H2
	// (strong sim); e2 must not be matched to f1 by H3 ("matches
	// identified by H2 will not be considered in the sequel").
	var t1, t2 tripleList
	t1.add("http://a/e1", "http://v/p", lit("rare1 rare2 rare3"))
	t1.add("http://a/e2", "http://v/p", lit("rare1 weak"))
	t2.add("http://b/f1", "http://v/p", lit("rare1 rare2 rare3"))
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	// KB2 smaller → emission from KB2 side... flip: add one more KB2
	// entity so KB1 is the smaller side? KB1 has 2, KB2 has 1: KB2 is
	// smaller, emission from KB2: f1 matched once anyway. Make KB2
	// bigger instead.
	t2.add("http://b/f2", "http://v/p", lit("unrelated content here"))
	kb2 = mustKB(t, "b", t2)
	cfg := DefaultConfig()
	cfg.Purge = blocking.NoPurge()
	res := runMatcher(t, kb1, kb2, cfg)
	f1ID, _ := kb2.Lookup("http://b/f1")
	e2ID, _ := kb1.Lookup("http://a/e2")
	for _, p := range res.H3 {
		if p.E1 == e2ID && p.E2 == f1ID {
			t.Errorf("H3 re-used an H2-matched candidate: %v (H2=%v)", p, res.H2)
		}
	}
}

func TestH4AppliesToH1Pairs(t *testing.T) {
	// An H1 pair whose name tokens were all purged from B_T has no
	// token-block evidence; with H4 on, reciprocity cannot hold and the
	// pair is dropped — Definition 1 applies H4 to every heuristic.
	var t1, t2 tripleList
	// The name tokens appear in *many* entities (stop-word-like), so
	// purging removes their blocks; only the name-key equality links
	// the pair.
	for i := 0; i < 40; i++ {
		t1.add(fmt.Sprintf("http://a/pad%02d", i), "http://v/name", lit(fmt.Sprintf("common filler %02d", i)))
		t2.add(fmt.Sprintf("http://b/pad%02d", i), "http://v/name", lit(fmt.Sprintf("common filler %02d", i)))
	}
	t1.add("http://a/x", "http://v/name", lit("common filler"))
	t2.add("http://b/x", "http://v/name", lit("common filler"))
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	cfg := DefaultConfig()
	cfg.Purge = blocking.PurgeConfig{EntityFraction: 0.1, MinEntities: 2}
	res := runMatcher(t, kb1, kb2, cfg)
	xID, _ := kb1.Lookup("http://a/x")
	inH1, inFinal := false, false
	for _, p := range res.H1 {
		if p.E1 == xID {
			inH1 = true
		}
	}
	for _, p := range res.Matches {
		if p.E1 == xID {
			inFinal = true
		}
	}
	if inH1 && inFinal {
		t.Log("pair survived H4 via residual token evidence — acceptable if blocks kept the tokens")
	}
	if !inH1 {
		t.Skip("fixture did not produce the H1 pair; purge kept the name ambiguous")
	}
}

// TestRandomizedInvariants runs the matcher over random KBs and checks
// structural invariants under several configurations.
func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vocab := make([]string, 60)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	buildRandom := func(name string, n int) *kb.KB {
		var ts tripleList
		for i := 0; i < n; i++ {
			s := fmt.Sprintf("http://%s/e%03d", name, i)
			val := ""
			for j := 0; j < 1+rng.Intn(5); j++ {
				if j > 0 {
					val += " "
				}
				val += vocab[rng.Intn(len(vocab))]
			}
			ts.add(s, "http://v/val", lit(val))
			if i > 0 && rng.Float64() < 0.4 {
				ts.add(s, "http://v/link", iri(fmt.Sprintf("http://%s/e%03d", name, rng.Intn(i))))
			}
		}
		return mustKB(t, name, ts)
	}
	for trial := 0; trial < 10; trial++ {
		kb1 := buildRandom("a", 10+rng.Intn(40))
		kb2 := buildRandom("b", 10+rng.Intn(40))
		cfg := DefaultConfig()
		cfg.K = 1 + rng.Intn(20)
		cfg.N = rng.Intn(4)
		cfg.Theta = 0.1 + 0.8*rng.Float64()
		if rng.Float64() < 0.3 {
			cfg.Purge = blocking.NoPurge()
		}
		res := runMatcher(t, kb1, kb2, cfg)

		seenSmaller := map[kb.EntityID]int{}
		for _, p := range res.Matches {
			if p.E1 < 0 || int(p.E1) >= kb1.Len() || p.E2 < 0 || int(p.E2) >= kb2.Len() {
				t.Fatalf("trial %d: out-of-range pair %v", trial, p)
			}
			if kb1.Len() <= kb2.Len() {
				seenSmaller[p.E1]++
			} else {
				seenSmaller[p.E2]++
			}
		}
		// H1 contributes at most one pair per entity; H2/H3 emit at most
		// one per smaller-KB entity. So a smaller-KB entity appears at
		// most twice (one H1 + one H2/H3 pair is impossible — H1-matched
		// entities are excluded — so really once).
		for id, n := range seenSmaller {
			if n > 1 {
				t.Fatalf("trial %d: smaller-KB entity %d matched %d times", trial, id, n)
			}
		}
		union := map[eval.Pair]bool{}
		for _, p := range res.H1 {
			union[p] = true
		}
		for _, p := range res.H2 {
			union[p] = true
		}
		for _, p := range res.H3 {
			union[p] = true
		}
		if len(res.Matches)+res.DiscardedByH4 != len(union) {
			t.Fatalf("trial %d: H4 accounting broken", trial)
		}
	}
}
