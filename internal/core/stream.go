package core

import (
	"context"

	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// RunStream resolves (kb1, kb2) as an anytime computation: emit is
// called for every confirmed match, in decreasing pair quality, the
// moment H1–H4 agree on it. The Disable flags skip whole heuristic
// phases — the streaming counterpart of Matcher.Plan's stage drops —
// and cfg.Strategy selects the pair scheduler. Draining an unbudgeted
// stream yields exactly the batch Matcher's match set; a budget (or a
// context deadline, or emit returning false) truncates the stream to a
// deterministic quality-ordered prefix.
func RunStream(ctx context.Context, kb1, kb2 *kb.KB, cfg Config, budget pipeline.StreamBudget, emit func(pipeline.ScoredPair) bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	st := pipeline.NewState(kb1, kb2, cfg.Params())
	return pipeline.RunStream(ctx, st, pipeline.StreamConfig{
		Budget:    budget,
		DisableH1: cfg.DisableH1,
		DisableH2: cfg.DisableH2,
		DisableH3: cfg.DisableH3,
		DisableH4: cfg.DisableH4,
	}, emit)
}
