package sigma

import (
	"fmt"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func tr(s, p string, o rdf.Term) rdf.Triple { return rdf.NewTriple(iri(s), iri(p), o) }

func mustKB(t testing.TB, name string, triples []rdf.Triple) *kb.KB {
	t.Helper()
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestLearnedCompat(t *testing.T) {
	c := newLearnedCompat()
	if w := c.Weight(1, 2); w != c.prior {
		t.Errorf("unobserved pair weight = %f, want optimistic prior %f", w, c.prior)
	}
	c.Learn(1, 2)
	c.Learn(1, 2)
	c.Learn(1, 3)
	// (1,2) seen twice, max for r1=1 is 2 → weight 1. (1,3) once → 0.5.
	if w := c.Weight(1, 2); w != 1 {
		t.Errorf("Weight(1,2) = %f, want 1", w)
	}
	if w := c.Weight(1, 3); w != 0.5 {
		t.Errorf("Weight(1,3) = %f, want 0.5", w)
	}
	// Once r1 is observed, a never-seen partner drops to its measured
	// ratio (0), not the prior.
	if w := c.Weight(1, 9); w != 0 {
		t.Errorf("Weight(1,9) = %f, want 0 after r1 observed", w)
	}
	if w := c.Weight(8, 9); w != c.prior {
		t.Errorf("Weight(8,9) = %f, want prior (both unobserved)", w)
	}
}

func TestNameSeeds(t *testing.T) {
	t1 := []rdf.Triple{
		tr("http://a/x", "http://v/name", lit("Unique Name")),
		tr("http://a/y", "http://v/name", lit("Shared Name")),
		tr("http://a/z", "http://v/name", lit("Shared Name")),
	}
	t2 := []rdf.Triple{
		tr("http://b/x", "http://v/label", lit("unique name")),
		tr("http://b/y", "http://v/label", lit("shared name")),
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	seeds := NameSeeds(kb1, kb2, 2)
	if len(seeds) != 1 {
		t.Fatalf("seeds = %v, want only the unambiguous pair", seeds)
	}
	e1, _ := kb1.Lookup("http://a/x")
	e2, _ := kb2.Lookup("http://b/x")
	if seeds[0] != (eval.Pair{E1: e1, E2: e2}) {
		t.Errorf("seed = %v", seeds[0])
	}
}

// buildGraphPair constructs movie KBs where movies seed by name and
// actors can only be reached through graph propagation: their literal
// values differ across KBs except for a moderately similar overlap.
func buildGraphPair(t testing.TB) (*kb.KB, *kb.KB, *eval.GroundTruth) {
	t.Helper()
	var t1, t2 []rdf.Triple
	n := 8
	for i := 0; i < n; i++ {
		m1 := fmt.Sprintf("http://a/m%02d", i)
		m2 := fmt.Sprintf("http://b/m%02d", i)
		title := fmt.Sprintf("The Great Film %02d", i)
		t1 = append(t1,
			tr(m1, "http://va/title", lit(title)),
			tr(m1, "http://va/starring", iri(fmt.Sprintf("http://a/c%02d", i))),
		)
		t2 = append(t2,
			tr(m2, "http://vb/name", lit(title)),
			tr(m2, "http://vb/actor", iri(fmt.Sprintf("http://b/c%02d", i))),
		)
		// Actors: same surname token, different given names.
		t1 = append(t1, tr(fmt.Sprintf("http://a/c%02d", i), "http://va/actorName",
			lit(fmt.Sprintf("john surname%02d", i))))
		t2 = append(t2, tr(fmt.Sprintf("http://b/c%02d", i), "http://vb/performer",
			lit(fmt.Sprintf("j surname%02d", i))))
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	gt := eval.NewGroundTruth()
	for i := 0; i < n; i++ {
		for _, prefix := range []string{"m", "c"} {
			e1, _ := kb1.Lookup(fmt.Sprintf("http://a/%s%02d", prefix, i))
			e2, _ := kb2.Lookup(fmt.Sprintf("http://b/%s%02d", prefix, i))
			if err := gt.Add(e1, e2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return kb1, kb2, gt
}

func TestRunPropagatesFromSeeds(t *testing.T) {
	kb1, kb2, gt := buildGraphPair(t)
	matches := Run(kb1, kb2, DefaultConfig())
	m := eval.Evaluate(matches, gt)
	if m.Recall < 0.9 {
		t.Errorf("SiGMa recall = %s, want >= 0.9 (matches=%v)", m, matches)
	}
	if m.Precision < 0.9 {
		t.Errorf("SiGMa precision = %s", m)
	}
}

func TestRunRespectsUniqueMapping(t *testing.T) {
	kb1, kb2, _ := buildGraphPair(t)
	matches := Run(kb1, kb2, DefaultConfig())
	seen1 := map[kb.EntityID]bool{}
	seen2 := map[kb.EntityID]bool{}
	for _, p := range matches {
		if seen1[p.E1] || seen2[p.E2] {
			t.Fatalf("duplicate entity in %v", matches)
		}
		seen1[p.E1] = true
		seen2[p.E2] = true
	}
}

func TestRunNoSeedsNoMatches(t *testing.T) {
	// Without any identical names and with value sims below threshold,
	// nothing ever enters the queue.
	t1 := []rdf.Triple{tr("http://a/x", "http://v/name", lit("totally distinct"))}
	t2 := []rdf.Triple{tr("http://b/x", "http://v/name", lit("competely other"))}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	if got := Run(kb1, kb2, DefaultConfig()); len(got) != 0 {
		t.Errorf("matches without seeds: %v", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	kb1, kb2, _ := buildGraphPair(t)
	a := Run(kb1, kb2, DefaultConfig())
	b := Run(kb1, kb2, DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
