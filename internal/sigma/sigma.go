// Package sigma approximates SiGMa (Lacoste-Julien et al., KDD 2013),
// the greedy knowledge-base alignment baseline: seed matches with
// identical entity names, learn which relation pairs are compatible
// from the seeds' edges, then greedily expand along the graph, scoring
// candidates by a combination of value similarity and relational
// agreement, under unique-mapping semantics.
package sigma

import (
	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/propagate"
	"minoaner/internal/similarity"
)

// Config tunes the approximation.
type Config struct {
	// NameK is the number of top attributes whose values seed matches.
	NameK int
	// Engine configures the propagation (alpha, threshold, caps).
	Engine propagate.Config
}

// DefaultConfig returns the standard settings.
func DefaultConfig() Config {
	return Config{NameK: 2, Engine: propagate.DefaultConfig()}
}

// learnedCompat counts how often relation pairs connect matches to
// matches; the weight is the count normalized by the pair's strongest
// competitor on either side, so an r1 consistently co-occurring with
// one r2 converges to weight 1. Completely unobserved relation pairs
// receive an optimistic prior — SiGMa's alignment is learned from the
// data, so the engine must be able to take a first step before any
// evidence exists; once either relation has been observed, the measured
// ratio replaces the prior.
type learnedCompat struct {
	counts map[[2]int32]float64
	max1   map[int32]float64
	max2   map[int32]float64
	prior  float64
}

func newLearnedCompat() *learnedCompat {
	return &learnedCompat{
		counts: make(map[[2]int32]float64),
		max1:   make(map[int32]float64),
		max2:   make(map[int32]float64),
		prior:  0.25,
	}
}

// Learn implements propagate.Compat.
func (c *learnedCompat) Learn(r1, r2 int32) {
	k := [2]int32{r1, r2}
	c.counts[k]++
	if v := c.counts[k]; v > c.max1[r1] {
		c.max1[r1] = v
	}
	if v := c.counts[k]; v > c.max2[r2] {
		c.max2[r2] = v
	}
}

// Weight implements propagate.Compat.
func (c *learnedCompat) Weight(r1, r2 int32) float64 {
	n := c.counts[[2]int32{r1, r2}]
	denom := c.max1[r1]
	if c.max2[r2] > denom {
		denom = c.max2[r2]
	}
	if denom == 0 {
		return c.prior
	}
	return n / denom
}

// Run executes the SiGMa approximation.
func Run(kb1, kb2 *kb.KB, cfg Config) []eval.Pair {
	seeds := NameSeeds(kb1, kb2, cfg.NameK)
	vs := ValueSimilarity(kb1, kb2)
	return propagate.Run(kb1, kb2, seeds, vs, newLearnedCompat(), cfg.Engine)
}

// NameSeeds returns the unambiguous identical-name pairs: name blocks
// holding exactly one entity from each KB.
func NameSeeds(kb1, kb2 *kb.KB, nameK int) []eval.Pair {
	bn := blocking.NameBlocks(kb1, kb2, nameK)
	var seeds []eval.Pair
	for i := range bn.Blocks {
		b := &bn.Blocks[i]
		if len(b.E1) == 1 && len(b.E2) == 1 {
			seeds = append(seeds, eval.Pair{E1: b.E1[0], E2: b.E2[0]})
		}
	}
	return seeds
}

// ValueSimilarity builds the [0,1] value similarity SiGMa scores pairs
// with: the weighted-overlap (SiGMa) measure over TF-IDF unigram
// profiles.
func ValueSimilarity(kb1, kb2 *kb.KB) propagate.ValueSim {
	ps := similarity.BuildProfiles(kb1, kb2, 1, similarity.TFIDF)
	return func(e1, e2 kb.EntityID) float64 {
		return similarity.Compare(similarity.SiGMa, ps.P1[e1], ps.P2[e2])
	}
}
