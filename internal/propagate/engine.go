// Package propagate implements the greedy seed-and-propagate matching
// engine shared by the SiGMa and LINDA baselines: starting from seed
// matches, candidate pairs adjacent to accepted matches enter a
// priority queue scored by a weighted combination of value similarity
// and relational agreement; the best pair is accepted if both entities
// are free and the score reaches a threshold, and its neighborhood is
// expanded in turn. The two baselines differ only in how relation
// compatibility is judged (learned from matches for SiGMa, from
// relation-label similarity for LINDA).
package propagate

import (
	"container/heap"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Compat judges whether an edge labelled r1 in KB1 and an edge labelled
// r2 in KB2 count as the same relation.
type Compat interface {
	// Weight returns the compatibility of the relation pair in [0,1].
	Weight(r1, r2 int32) float64
	// Learn observes that a matched pair is connected to another
	// matched pair via (r1, r2).
	Learn(r1, r2 int32)
}

// Config tunes the engine.
type Config struct {
	// Alpha is the weight of the relational score; 1-Alpha weighs the
	// value similarity.
	Alpha float64
	// Threshold is the minimum combined score for acceptance.
	Threshold float64
	// MaxNeighborPairs caps the candidate pairs generated per accepted
	// match, guarding against hub explosions.
	MaxNeighborPairs int
}

// DefaultConfig mirrors the SiGMa paper's ballpark settings: relational
// agreement weighs as much as value similarity, and acceptance requires
// either strong values or corroborating graph structure.
func DefaultConfig() Config {
	return Config{Alpha: 0.5, Threshold: 0.3, MaxNeighborPairs: 400}
}

// ValueSim scores the value similarity of a cross-KB pair in [0,1].
type ValueSim func(e1, e2 kb.EntityID) float64

// Run executes the propagation from the given seeds. Seeds are trusted
// (accepted unconditionally, first-come first-served on conflicts).
func Run(kb1, kb2 *kb.KB, seeds []eval.Pair, vs ValueSim, compat Compat, cfg Config) []eval.Pair {
	e := &engine{
		kb1: kb1, kb2: kb2, vs: vs, compat: compat, cfg: cfg,
		matched1: make(map[kb.EntityID]kb.EntityID),
		matched2: make(map[kb.EntityID]kb.EntityID),
	}
	for _, s := range seeds {
		e.accept(s, true)
	}
	e.drain()
	return e.result()
}

type candidate struct {
	pair  eval.Pair
	score float64
	index int
}

type candHeap []*candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].pair.Less(h[j].pair)
}
func (h candHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *candHeap) Push(x any) {
	c := x.(*candidate)
	c.index = len(*h)
	*h = append(*h, c)
}
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

type engine struct {
	kb1, kb2 *kb.KB
	vs       ValueSim
	compat   Compat
	cfg      Config

	matched1 map[kb.EntityID]kb.EntityID
	matched2 map[kb.EntityID]kb.EntityID
	order    []eval.Pair

	queue  candHeap
	queued map[eval.Pair]*candidate
}

// accept records a match, lets the compatibility model learn from its
// edges, and enqueues the neighborhood.
func (e *engine) accept(p eval.Pair, seed bool) {
	if _, taken := e.matched1[p.E1]; taken {
		return
	}
	if _, taken := e.matched2[p.E2]; taken {
		return
	}
	e.matched1[p.E1] = p.E2
	e.matched2[p.E2] = p.E1
	e.order = append(e.order, p)
	e.learnFrom(p)
	e.expand(p)
	_ = seed
}

// learnFrom teaches the compatibility model every relation pair that
// connects this match to an existing match.
func (e *engine) learnFrom(p eval.Pair) {
	x := e.kb1.Entity(p.E1)
	y := e.kb2.Entity(p.E2)
	for _, e1 := range x.Out {
		tgt2, ok := e.matched1[e1.Target]
		if !ok {
			continue
		}
		for _, e2 := range y.Out {
			if e2.Target == tgt2 {
				e.compat.Learn(e1.Pred, e2.Pred)
			}
		}
	}
	for _, e1 := range x.In {
		src2, ok := e.matched1[e1.Target]
		if !ok {
			continue
		}
		for _, e2 := range y.In {
			if e2.Target == src2 {
				e.compat.Learn(e1.Pred, e2.Pred)
			}
		}
	}
}

// expand pushes the cross product of the match's unmatched neighbors
// into the queue (capped).
func (e *engine) expand(p eval.Pair) {
	x := e.kb1.Entity(p.E1)
	y := e.kb2.Entity(p.E2)
	budget := e.cfg.MaxNeighborPairs
	push := func(n1, n2 kb.EntityID) {
		if budget <= 0 {
			return
		}
		if _, t := e.matched1[n1]; t {
			return
		}
		if _, t := e.matched2[n2]; t {
			return
		}
		budget--
		e.enqueue(eval.Pair{E1: n1, E2: n2})
	}
	for _, e1 := range x.Out {
		for _, e2 := range y.Out {
			push(e1.Target, e2.Target)
		}
	}
	for _, e1 := range x.In {
		for _, e2 := range y.In {
			push(e1.Target, e2.Target)
		}
	}
}

func (e *engine) enqueue(p eval.Pair) {
	score := e.score(p)
	if score < e.cfg.Threshold {
		return
	}
	if e.queued == nil {
		e.queued = make(map[eval.Pair]*candidate)
	}
	if c, ok := e.queued[p]; ok {
		if score > c.score {
			c.score = score
			heap.Fix(&e.queue, c.index)
		}
		return
	}
	c := &candidate{pair: p, score: score}
	e.queued[p] = c
	heap.Push(&e.queue, c)
}

// score combines value similarity with relational agreement: the
// fraction of the pair's edges that lead to compatible matched
// neighbors.
func (e *engine) score(p eval.Pair) float64 {
	v := e.vs(p.E1, p.E2)
	g := e.graphScore(p)
	return (1-e.cfg.Alpha)*v + e.cfg.Alpha*g
}

func (e *engine) graphScore(p eval.Pair) float64 {
	x := e.kb1.Entity(p.E1)
	y := e.kb2.Entity(p.E2)
	deg := len(x.Out) + len(x.In)
	if d2 := len(y.Out) + len(y.In); d2 > deg {
		deg = d2
	}
	if deg == 0 {
		return 0
	}
	var agree float64
	for _, e1 := range x.Out {
		tgt2, ok := e.matched1[e1.Target]
		if !ok {
			continue
		}
		best := 0.0
		for _, e2 := range y.Out {
			if e2.Target != tgt2 {
				continue
			}
			if w := e.compat.Weight(e1.Pred, e2.Pred); w > best {
				best = w
			}
		}
		agree += best
	}
	for _, e1 := range x.In {
		src2, ok := e.matched1[e1.Target]
		if !ok {
			continue
		}
		best := 0.0
		for _, e2 := range y.In {
			if e2.Target != src2 {
				continue
			}
			if w := e.compat.Weight(e1.Pred, e2.Pred); w > best {
				best = w
			}
		}
		agree += best
	}
	return agree / float64(deg)
}

// drain pops candidates until the queue empties, rescoring lazily: a
// stale top is refreshed and pushed back rather than trusted.
func (e *engine) drain() {
	for e.queue.Len() > 0 {
		c := heap.Pop(&e.queue).(*candidate)
		delete(e.queued, c.pair)
		if _, t := e.matched1[c.pair.E1]; t {
			continue
		}
		if _, t := e.matched2[c.pair.E2]; t {
			continue
		}
		current := e.score(c.pair)
		if current < e.cfg.Threshold {
			continue
		}
		// If the refreshed score fell behind the next candidate,
		// re-queue and reconsider.
		if e.queue.Len() > 0 && current < e.queue[0].score {
			c.score = current
			e.queued[c.pair] = c
			heap.Push(&e.queue, c)
			continue
		}
		e.accept(c.pair, false)
	}
}

func (e *engine) result() []eval.Pair {
	out := make([]eval.Pair, len(e.order))
	copy(out, e.order)
	eval.SortPairs(out)
	return out
}
