package propagate

import (
	"fmt"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

// starKBs: one hub with many children per KB; the seed matches the
// hubs.
func starKBs(t testing.TB, fanout int) (*kb.KB, *kb.KB) {
	t.Helper()
	var t1, t2 []rdf.Triple
	t1 = append(t1, tr("http://a/hub", "http://va/name", lit("the hub")))
	t2 = append(t2, tr("http://b/hub", "http://vb/name", lit("the hub")))
	for i := 0; i < fanout; i++ {
		c1 := fmt.Sprintf("http://a/c%03d", i)
		c2 := fmt.Sprintf("http://b/c%03d", i)
		t1 = append(t1, tr("http://a/hub", "http://va/has", iri(c1)))
		t2 = append(t2, tr("http://b/hub", "http://vb/has", iri(c2)))
		name := fmt.Sprintf("child %03d", i)
		t1 = append(t1, tr(c1, "http://va/name", lit(name)))
		t2 = append(t2, tr(c2, "http://vb/name", lit(name)))
	}
	return mustKB(t, "a", t1), mustKB(t, "b", t2)
}

// TestMaxNeighborPairsBudget: with a tiny expansion budget, a hub's
// huge cross product cannot flood the queue.
func TestMaxNeighborPairsBudget(t *testing.T) {
	kb1, kb2 := starKBs(t, 20)
	h1, _ := kb1.Lookup("http://a/hub")
	h2, _ := kb2.Lookup("http://b/hub")
	seeds := []eval.Pair{{E1: h1, E2: h2}}
	vs := func(e1, e2 kb.EntityID) float64 { return 0 }
	cfg := Config{Alpha: 1, Threshold: 0.3, MaxNeighborPairs: 5}
	got := Run(kb1, kb2, seeds, vs, &allCompat{}, cfg)
	// Budget 5: at most 5 candidate pairs pushed beyond the seed, so at
	// most 6 matches total.
	if len(got) > 6 {
		t.Errorf("budget exceeded: %d matches", len(got))
	}
	// With a generous budget everything matches (children pair via
	// graph score 1).
	cfg.MaxNeighborPairs = 1000
	got = Run(kb1, kb2, seeds, vs, &allCompat{}, cfg)
	if len(got) < 10 {
		t.Errorf("generous budget matched only %d", len(got))
	}
}
