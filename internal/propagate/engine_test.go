package propagate

import (
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func iri(s string) rdf.Term                 { return rdf.NewIRI(s) }
func lit(s string) rdf.Term                 { return rdf.NewLiteral(s) }
func tr(s, p string, o rdf.Term) rdf.Triple { return rdf.NewTriple(iri(s), iri(p), o) }

func mustKB(t testing.TB, name string, triples []rdf.Triple) *kb.KB {
	t.Helper()
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// allCompat treats every relation pair as fully compatible.
type allCompat struct{ learned int }

func (c *allCompat) Weight(r1, r2 int32) float64 { return 1 }
func (c *allCompat) Learn(r1, r2 int32)          { c.learned++ }

// chainKBs builds parallel chains x0 -> x1 -> x2 in both KBs. Node 0
// carries identical values; later nodes have none.
func chainKBs(t testing.TB) (*kb.KB, *kb.KB) {
	var t1, t2 []rdf.Triple
	for i := 0; i < 2; i++ {
		t1 = append(t1, tr(nodeURI("a", i), "http://va/next", iri(nodeURI("a", i+1))))
		t2 = append(t2, tr(nodeURI("b", i), "http://vb/next", iri(nodeURI("b", i+1))))
	}
	t1 = append(t1, tr(nodeURI("a", 0), "http://va/name", lit("shared root name")))
	t2 = append(t2, tr(nodeURI("b", 0), "http://vb/name", lit("shared root name")))
	for i := 1; i <= 2; i++ {
		t1 = append(t1, tr(nodeURI("a", i), "http://va/name", lit("alpha")))
		t2 = append(t2, tr(nodeURI("b", i), "http://vb/name", lit("beta")))
	}
	return mustKB(t, "a", t1), mustKB(t, "b", t2)
}

func nodeURI(kbName string, i int) string {
	return "http://" + kbName + "/n" + string(rune('0'+i))
}

func TestRunPropagatesAlongChain(t *testing.T) {
	kb1, kb2 := chainKBs(t)
	r1, _ := kb1.Lookup(nodeURI("a", 0))
	r2, _ := kb2.Lookup(nodeURI("b", 0))
	seeds := []eval.Pair{{E1: r1, E2: r2}}
	vs := func(e1, e2 kb.EntityID) float64 { return 0 } // graph evidence only
	cfg := Config{Alpha: 1.0, Threshold: 0.3, MaxNeighborPairs: 100}
	got := Run(kb1, kb2, seeds, vs, &allCompat{}, cfg)
	if len(got) != 3 {
		t.Fatalf("matched %d nodes, want full chain of 3: %v", len(got), got)
	}
	for i := 0; i <= 2; i++ {
		e1, _ := kb1.Lookup(nodeURI("a", i))
		e2, _ := kb2.Lookup(nodeURI("b", i))
		found := false
		for _, p := range got {
			if p == (eval.Pair{E1: e1, E2: e2}) {
				found = true
			}
		}
		if !found {
			t.Errorf("chain node %d unmatched", i)
		}
	}
}

func TestRunThresholdBlocks(t *testing.T) {
	kb1, kb2 := chainKBs(t)
	r1, _ := kb1.Lookup(nodeURI("a", 0))
	r2, _ := kb2.Lookup(nodeURI("b", 0))
	seeds := []eval.Pair{{E1: r1, E2: r2}}
	vs := func(e1, e2 kb.EntityID) float64 { return 0 }
	// Threshold above the achievable graph score: nothing propagates.
	cfg := Config{Alpha: 0.3, Threshold: 0.9, MaxNeighborPairs: 100}
	got := Run(kb1, kb2, seeds, vs, &allCompat{}, cfg)
	if len(got) != 1 {
		t.Fatalf("got %v, want seeds only", got)
	}
}

func TestRunConflictingSeeds(t *testing.T) {
	kb1, kb2 := chainKBs(t)
	r1, _ := kb1.Lookup(nodeURI("a", 0))
	r2, _ := kb2.Lookup(nodeURI("b", 0))
	o1, _ := kb1.Lookup(nodeURI("a", 1))
	seeds := []eval.Pair{{E1: r1, E2: r2}, {E1: o1, E2: r2}} // second conflicts on E2
	vs := func(e1, e2 kb.EntityID) float64 { return 0 }
	cfg := Config{Alpha: 1.0, Threshold: 0.99, MaxNeighborPairs: 0}
	got := Run(kb1, kb2, seeds, vs, &allCompat{}, cfg)
	if len(got) != 1 || got[0] != (eval.Pair{E1: r1, E2: r2}) {
		t.Fatalf("conflicting seed accepted: %v", got)
	}
}

func TestRunLearnsCompat(t *testing.T) {
	kb1, kb2 := chainKBs(t)
	r1, _ := kb1.Lookup(nodeURI("a", 0))
	r2, _ := kb2.Lookup(nodeURI("b", 0))
	c := &allCompat{}
	vs := func(e1, e2 kb.EntityID) float64 { return 0 }
	Run(kb1, kb2, []eval.Pair{{E1: r1, E2: r2}}, vs, c, Config{Alpha: 1, Threshold: 0.3, MaxNeighborPairs: 10})
	if c.learned == 0 {
		t.Error("compat never learned from accepted matches")
	}
}

func TestRunEmptySeeds(t *testing.T) {
	kb1, kb2 := chainKBs(t)
	vs := func(e1, e2 kb.EntityID) float64 { return 1 }
	got := Run(kb1, kb2, nil, vs, &allCompat{}, DefaultConfig())
	if len(got) != 0 {
		t.Errorf("matches without seeds: %v", got)
	}
}
