package progressive

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/metablocking"
	"minoaner/internal/pipeline"
)

func bibliographySetup(t testing.TB) (*blocking.Collection, *eval.GroundTruth) {
	t.Helper()
	ds, err := datagen.Bibliography(datagen.Options{Seed: 3, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	c := blocking.TokenBlocks(ds.KB1, ds.KB2)
	c, _ = blocking.Purge(c, blocking.DefaultPurgeConfig())
	return c, ds.GT
}

func TestScheduleOrderedAndComplete(t *testing.T) {
	c, _ := bibliographySetup(t)
	sched := Schedule(c, metablocking.ARCS)
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	seen := make(map[eval.Pair]bool, len(sched))
	for _, p := range sched {
		if seen[p] {
			t.Fatalf("duplicate pair %v in schedule", p)
		}
		seen[p] = true
	}
	// Same distinct pairs as the blocks themselves suggest.
	st := blocking.ComputeStats(c, eval.NewGroundTruth())
	if int64(len(sched)) != st.DistinctComparisons {
		t.Errorf("schedule has %d pairs, blocks suggest %d", len(sched), st.DistinctComparisons)
	}
}

func TestProgressiveBeatsRandom(t *testing.T) {
	c, gt := bibliographySetup(t)
	sched := Schedule(c, metablocking.ARCS)
	aucARCS := AUC(sched, gt)

	random := make([]eval.Pair, len(sched))
	copy(random, sched)
	rand.New(rand.NewSource(1)).Shuffle(len(random), func(i, j int) {
		random[i], random[j] = random[j], random[i]
	})
	aucRandom := AUC(random, gt)

	if aucARCS <= aucRandom {
		t.Errorf("ARCS scheduling (AUC %.3f) does not beat random (%.3f)", aucARCS, aucRandom)
	}
	// The headline property: most matches within the first 10% of
	// comparisons.
	early := RecallAt(sched, gt, len(sched)/10)
	if early < 0.5 {
		t.Errorf("recall@10%% = %.3f, want >= 0.5", early)
	}
}

func TestRecallAtMonotone(t *testing.T) {
	c, gt := bibliographySetup(t)
	sched := Schedule(c, metablocking.ARCS)
	prev := 0.0
	for _, frac := range []int{10, 4, 2, 1} {
		r := RecallAt(sched, gt, len(sched)/frac)
		if r < prev {
			t.Fatalf("recall not monotone: %.3f after %.3f", r, prev)
		}
		prev = r
	}
	if full := RecallAt(sched, gt, len(sched)); full < 0.99 {
		t.Errorf("full-schedule recall = %.3f (blocking recall should carry over)", full)
	}
	// k beyond schedule length is clamped.
	if RecallAt(sched, gt, len(sched)*2) != prev {
		t.Error("over-budget recall differs from full recall")
	}
}

func TestCurveMatchesRecallAt(t *testing.T) {
	c, gt := bibliographySetup(t)
	sched := Schedule(c, metablocking.ARCS)
	budgets := []int{1, len(sched) / 10, len(sched) / 2, len(sched)}
	curve := Curve(sched, gt, budgets)
	for i, b := range budgets {
		if want := RecallAt(sched, gt, b); curve[i] != want {
			t.Errorf("curve[%d] = %f, RecallAt(%d) = %f", i, curve[i], b, want)
		}
	}
}

// TestScheduleKBsMatchesManualBlocking: the pipeline-prefix path must
// schedule exactly the pairs of manually built-and-purged blocks, and
// honor cancellation.
func TestScheduleKBsMatchesManualBlocking(t *testing.T) {
	ds, err := datagen.Bibliography(datagen.Options{Seed: 3, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	c := blocking.TokenBlocks(ds.KB1, ds.KB2)
	c, _ = blocking.Purge(c, blocking.DefaultPurgeConfig())
	manual := Schedule(c, metablocking.ARCS)

	params := pipeline.Params{K: 15, N: 3, NameK: 2, Theta: 0.6, Purge: blocking.DefaultPurgeConfig()}
	viaPlan, err := ScheduleKBs(context.Background(), ds.KB1, ds.KB2, params, metablocking.ARCS)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(manual, viaPlan) {
		t.Errorf("pipeline schedule has %d pairs, manual %d", len(viaPlan), len(manual))
		for i := 0; i < len(manual) && i < len(viaPlan); i++ {
			if manual[i] != viaPlan[i] {
				t.Fatalf("first divergence at index %d: pipeline %v, manual %v", i, viaPlan[i], manual[i])
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ScheduleKBs(ctx, ds.KB1, ds.KB2, params, metablocking.ARCS); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ScheduleKBs: err = %v", err)
	}
}

func TestEmptyInputs(t *testing.T) {
	gt := eval.NewGroundTruth()
	if AUC(nil, gt) != 0 {
		t.Error("AUC on empty inputs")
	}
	if RecallAt(nil, gt, 5) != 0 {
		t.Error("RecallAt on empty inputs")
	}
	if got := Curve(nil, gt, []int{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Error("Curve on empty inputs")
	}
}

// TestScheduleGraphDoesNotReorderEdges: scheduling must sort a copy —
// the caller's graph (and the pruning semantics that depend on its
// construction order) stays untouched.
func TestScheduleGraphDoesNotReorderEdges(t *testing.T) {
	c, _ := bibliographySetup(t)
	g := metablocking.BuildGraph(c, metablocking.ARCS)
	before := make([]metablocking.Edge, len(g.Edges))
	copy(before, g.Edges)

	sched := ScheduleGraph(g)
	if len(sched) != len(before) {
		t.Fatalf("schedule has %d pairs, graph %d edges", len(sched), len(before))
	}
	if !reflect.DeepEqual(g.Edges, before) {
		t.Fatal("ScheduleGraph reordered the caller's g.Edges in place")
	}
	// The schedule itself is sorted even though the graph is not.
	pruned := g.Prune(metablocking.WEP)
	g2 := metablocking.BuildGraph(c, metablocking.ARCS)
	if !reflect.DeepEqual(pruned, g2.Prune(metablocking.WEP)) {
		t.Fatal("pruning after scheduling differs from pruning a fresh graph")
	}
}
