// Package progressive implements progressive entity resolution
// (Stefanidis, Christophides, Efthymiou — ICDE 2017 tutorial, the
// paper's reference [1]): instead of resolving everything before
// reporting anything, the candidate comparisons are scheduled in
// decreasing match likelihood so that most true matches surface within
// the first fraction of the comparison budget.
//
// The scheduler orders the distinct comparisons of a block collection
// by a meta-blocking edge weight (ARCS by default — rare shared blocks
// first). Quality is summarized by the progressive recall curve
// (recall after k comparisons) and its normalized area under the curve.
package progressive

import (
	"context"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/metablocking"
	"minoaner/internal/pipeline"
)

// Schedule returns every distinct comparison of the collection ordered
// by decreasing weight under the scheme (ties broken by pair for
// determinism). Scheduling sorts a copy of the graph's edges — a
// caller-supplied Graph (ScheduleGraph) is never reordered.
func Schedule(c *blocking.Collection, scheme metablocking.Scheme) []eval.Pair {
	return ScheduleGraph(metablocking.BuildGraph(c, scheme))
}

// ScheduleGraph orders an already-built blocking graph's comparisons
// by decreasing weight without mutating the graph.
func ScheduleGraph(g *metablocking.Graph) []eval.Pair {
	edges := g.SortedEdges()
	out := make([]eval.Pair, len(edges))
	for i, e := range edges {
		out[i] = e.Pair
	}
	return out
}

// ScheduleKBs builds the comparison schedule directly from two KBs by
// running the matching pipeline's blocking prefix (token blocking and
// Block Purging) and scheduling the purged collection. This is the
// plan-reuse path: the scheduler consumes exactly the blocks the
// matcher would score, and a cancelled context aborts the blocking
// work the same way it aborts a full resolution.
func ScheduleKBs(ctx context.Context, kb1, kb2 *kb.KB, params pipeline.Params, scheme metablocking.Scheme) ([]eval.Pair, error) {
	// A zero Purge config would clamp the cutoff to 1 and silently purge
	// nearly every block; default it to the standard smoothing instead.
	if params.Purge == (blocking.PurgeConfig{}) {
		params.Purge = blocking.DefaultPurgeConfig()
	}
	st := pipeline.NewState(kb1, kb2, params)
	// Name blocking's output is not scheduled; drop it so the prefix
	// pays only for the token blocks it consumes.
	plan := pipeline.Until(
		pipeline.Drop(pipeline.DefaultPlan(), pipeline.StageNameBlocking),
		pipeline.StageBlockPurging)
	if _, err := (&pipeline.Engine{Plan: plan}).Run(ctx, st); err != nil {
		return nil, err
	}
	return Schedule(st.TokenBlocks, scheme), nil
}

// RecallAt returns the fraction of ground-truth matches encountered
// within the first k comparisons of the schedule.
func RecallAt(schedule []eval.Pair, gt *eval.GroundTruth, k int) float64 {
	if gt.Len() == 0 {
		return 0
	}
	if k > len(schedule) {
		k = len(schedule)
	}
	found := 0
	for _, p := range schedule[:k] {
		if gt.Contains(p.E1, p.E2) {
			found++
		}
	}
	return float64(found) / float64(gt.Len())
}

// Curve samples the progressive recall at the given comparison budgets
// in one pass over the schedule. Budgets must be ascending.
func Curve(schedule []eval.Pair, gt *eval.GroundTruth, budgets []int) []float64 {
	out := make([]float64, len(budgets))
	if gt.Len() == 0 {
		return out
	}
	found := 0
	bi := 0
	for i, p := range schedule {
		for bi < len(budgets) && budgets[bi] <= i {
			out[bi] = float64(found) / float64(gt.Len())
			bi++
		}
		if bi == len(budgets) {
			return out
		}
		if gt.Contains(p.E1, p.E2) {
			found++
		}
	}
	for ; bi < len(budgets); bi++ {
		out[bi] = float64(found) / float64(gt.Len())
	}
	return out
}

// AUC returns the normalized area under the progressive recall curve:
// 1 means every match surfaced immediately, 0.5 is the expectation for
// a random order when matches are sparse. Computed exactly over the
// full schedule.
func AUC(schedule []eval.Pair, gt *eval.GroundTruth) float64 {
	if gt.Len() == 0 || len(schedule) == 0 {
		return 0
	}
	found := 0
	var area float64
	for _, p := range schedule {
		if gt.Contains(p.E1, p.E2) {
			found++
		}
		area += float64(found) / float64(gt.Len())
	}
	return area / float64(len(schedule))
}
