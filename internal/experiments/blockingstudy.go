package experiments

import (
	"fmt"

	"minoaner/internal/blocking"
	"minoaner/internal/datagen"
	"minoaner/internal/metablocking"
)

// BlockingStrategyTable compares candidate-generation strategies on
// every dataset: raw Token Blocking, the paper's Block Purging, the
// ratio-knee purging variant, and meta-blocking [6] under
// ARCS-weighting with node-centric pruning. Each cell reports
// "distinct comparisons @ recall%".
func BlockingStrategyTable(datasets []*datagen.Dataset) *Table {
	t := &Table{
		Title:  "BLOCKING STRATEGIES — DISTINCT COMPARISONS @ RECALL",
		Header: append([]string{"strategy"}, names(datasets)...),
	}
	type strategy struct {
		name string
		run  func(ds *datagen.Dataset) (int64, float64)
	}
	strategies := []strategy{
		{"token blocking (raw)", func(ds *datagen.Dataset) (int64, float64) {
			c := blocking.TokenBlocks(ds.KB1, ds.KB2)
			st := blocking.ComputeStats(c, ds.GT)
			return st.DistinctComparisons, st.Recall
		}},
		{"+ block purging", func(ds *datagen.Dataset) (int64, float64) {
			c := blocking.TokenBlocks(ds.KB1, ds.KB2)
			c, _ = blocking.Purge(c, blocking.DefaultPurgeConfig())
			st := blocking.ComputeStats(c, ds.GT)
			return st.DistinctComparisons, st.Recall
		}},
		{"+ ratio-knee purging", func(ds *datagen.Dataset) (int64, float64) {
			c := blocking.TokenBlocks(ds.KB1, ds.KB2)
			c, _ = blocking.PurgeByRatio(c, blocking.DefaultSmoothing)
			st := blocking.ComputeStats(c, ds.GT)
			return st.DistinctComparisons, st.Recall
		}},
		{"meta-blocking ARCS/WNP", func(ds *datagen.Dataset) (int64, float64) {
			c := blocking.TokenBlocks(ds.KB1, ds.KB2)
			c, _ = blocking.Purge(c, blocking.DefaultPurgeConfig())
			g := metablocking.BuildGraph(c, metablocking.ARCS)
			kept := g.Prune(metablocking.WNP)
			st := metablocking.ComputeStats(kept, ds.GT)
			return int64(st.Comparisons), st.Recall
		}},
		{"meta-blocking JS/WEP", func(ds *datagen.Dataset) (int64, float64) {
			c := blocking.TokenBlocks(ds.KB1, ds.KB2)
			c, _ = blocking.Purge(c, blocking.DefaultPurgeConfig())
			g := metablocking.BuildGraph(c, metablocking.JS)
			kept := g.Prune(metablocking.WEP)
			st := metablocking.ComputeStats(kept, ds.GT)
			return int64(st.Comparisons), st.Recall
		}},
		{"attribute clustering", func(ds *datagen.Dataset) (int64, float64) {
			clusters := blocking.ClusterAttributes(ds.KB1, ds.KB2, 0.15, 500)
			c := blocking.AttributeClusteredBlocks(ds.KB1, ds.KB2, clusters)
			c, _ = blocking.Purge(c, blocking.DefaultPurgeConfig())
			st := blocking.ComputeStats(c, ds.GT)
			return st.DistinctComparisons, st.Recall
		}},
	}
	for _, s := range strategies {
		cells := []string{s.name}
		for _, ds := range datasets {
			cmp, recall := s.run(ds)
			cells = append(cells, fmt.Sprintf("%s @ %.1f%%", sci(float64(cmp)), 100*recall))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
