package experiments

import (
	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
)

// Variant is one MinoanER configuration under ablation.
type Variant struct {
	Name   string
	Config core.Config
}

// Variants enumerates the ablations of the design choices DESIGN.md
// calls out: each heuristic switched off, the θ trade-off swept, the
// candidate-list depth K varied, and Block Purging replaced or
// disabled.
func Variants() []Variant {
	mk := func(name string, mut func(*core.Config)) Variant {
		cfg := core.DefaultConfig()
		mut(&cfg)
		return Variant{Name: name, Config: cfg}
	}
	return []Variant{
		mk("full", func(c *core.Config) {}),
		mk("no-H1", func(c *core.Config) { c.DisableH1 = true }),
		mk("no-H2", func(c *core.Config) { c.DisableH2 = true }),
		mk("no-H3", func(c *core.Config) { c.DisableH3 = true }),
		mk("no-H4", func(c *core.Config) { c.DisableH4 = true }),
		mk("theta=0.2", func(c *core.Config) { c.Theta = 0.2 }),
		mk("theta=0.8", func(c *core.Config) { c.Theta = 0.8 }),
		mk("K=5", func(c *core.Config) { c.K = 5 }),
		mk("K=30", func(c *core.Config) { c.K = 30 }),
		mk("N=1", func(c *core.Config) { c.N = 1 }),
		mk("no-purge", func(c *core.Config) { c.Purge = blocking.NoPurge() }),
	}
}

// RunVariant executes one ablation variant on one dataset.
func RunVariant(ds *datagen.Dataset, v Variant) eval.Metrics {
	m, err := core.NewMatcher(ds.KB1, ds.KB2, v.Config)
	if err != nil {
		panic(err) // Variants produces valid configs only
	}
	return eval.Evaluate(m.Run().Matches, ds.GT)
}

// AblationTable reports F1 per variant per dataset.
func AblationTable(datasets []*datagen.Dataset) *Table {
	t := &Table{
		Title:  "ABLATIONS — MinoanER F1 PER VARIANT",
		Header: append([]string{"variant"}, names(datasets)...),
	}
	for _, v := range Variants() {
		cells := []string{v.Name}
		for _, ds := range datasets {
			m := RunVariant(ds, v)
			cells = append(cells, pct(m.F1))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
