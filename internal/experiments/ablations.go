package experiments

import (
	"context"

	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/pipeline"
)

// Variant is one MinoanER configuration under ablation. Structural
// ablations (a heuristic off, purging replaced) are expressed as plan
// edits over the default stage plan; parameter sweeps (θ, K, N) stay
// configuration changes. Edit may be nil for the unmodified plan.
type Variant struct {
	Name   string
	Config core.Config
	Edit   func([]pipeline.Stage) []pipeline.Stage
}

// Variants enumerates the ablations of the design choices DESIGN.md
// calls out: each heuristic stage dropped from the plan, the θ
// trade-off swept, the candidate-list depth K varied, and Block
// Purging replaced by the keep-everything stage.
func Variants() []Variant {
	cfg := func(mut func(*core.Config)) core.Config {
		c := core.DefaultConfig()
		mut(&c)
		return c
	}
	def := core.DefaultConfig()
	drop := func(stage string) func([]pipeline.Stage) []pipeline.Stage {
		return func(plan []pipeline.Stage) []pipeline.Stage { return pipeline.Drop(plan, stage) }
	}
	return []Variant{
		{Name: "full", Config: def},
		{Name: "no-H1", Config: def, Edit: drop(pipeline.StageNameMatching)},
		{Name: "no-H2", Config: def, Edit: drop(pipeline.StageValueMatching)},
		{Name: "no-H3", Config: def, Edit: drop(pipeline.StageRankAggregation)},
		{Name: "no-H4", Config: def, Edit: drop(pipeline.StageReciprocity)},
		{Name: "theta=0.2", Config: cfg(func(c *core.Config) { c.Theta = 0.2 })},
		{Name: "theta=0.8", Config: cfg(func(c *core.Config) { c.Theta = 0.8 })},
		{Name: "K=5", Config: cfg(func(c *core.Config) { c.K = 5 })},
		{Name: "K=30", Config: cfg(func(c *core.Config) { c.K = 30 })},
		{Name: "N=1", Config: cfg(func(c *core.Config) { c.N = 1 })},
		{Name: "no-purge", Config: def, Edit: func(plan []pipeline.Stage) []pipeline.Stage {
			return pipeline.Replace(plan, pipeline.StageBlockPurging, pipeline.KeepAllBlocks())
		}},
	}
}

// RunVariant executes one ablation variant on one dataset.
func RunVariant(ds *datagen.Dataset, v Variant) eval.Metrics {
	m, err := core.NewMatcher(ds.KB1, ds.KB2, v.Config)
	if err != nil {
		panic(err) // Variants produces valid configs only
	}
	plan := m.Plan()
	if v.Edit != nil {
		plan = v.Edit(plan)
	}
	res, err := m.RunPlan(context.Background(), plan, nil)
	if err != nil {
		panic(err) // edited default plans cannot fail without cancellation
	}
	return eval.Evaluate(res.Matches, ds.GT)
}

// AblationTable reports F1 per variant per dataset.
func AblationTable(datasets []*datagen.Dataset) *Table {
	t := &Table{
		Title:  "ABLATIONS — MinoanER F1 PER VARIANT",
		Header: append([]string{"variant"}, names(datasets)...),
	}
	for _, v := range Variants() {
		cells := []string{v.Name}
		for _, ds := range datasets {
			m := RunVariant(ds, v)
			cells = append(cells, pct(m.F1))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
