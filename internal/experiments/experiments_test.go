package experiments

import (
	"strings"
	"testing"

	"minoaner/internal/datagen"
)

// testDatasets builds all four stand-ins once per test binary at a
// scale small enough for CI but large enough for the paper's shapes to
// hold.
var testDatasets []*datagen.Dataset

func datasets(t testing.TB) []*datagen.Dataset {
	t.Helper()
	if testDatasets == nil {
		ds, err := Datasets(datagen.Options{Seed: 42, Scale: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		testDatasets = ds
	}
	return testDatasets
}

func TestTableIShape(t *testing.T) {
	tab := TableI(datasets(t))
	if len(tab.Rows) != 11 {
		t.Fatalf("Table I rows = %d, want 11", len(tab.Rows))
	}
	if len(tab.Header) != 5 {
		t.Fatalf("Table I header = %v", tab.Header)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Restaurant", "Rexa-DBLP", "BBCmusic-DBpedia", "YAGO-IMDb", "Matches", "E1 entities"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	ds := datasets(t)
	for _, d := range ds {
		r := BlockStats(d)
		t.Run(d.Name, func(t *testing.T) {
			// The paper's block-level claims (Table II):
			// recall is consistently high...
			if r.UnionStats.Recall < 0.95 {
				t.Errorf("union block recall = %.4f, want >= 0.95", r.UnionStats.Recall)
			}
			// ...precision is very low (blocking is recall-oriented)...
			if r.UnionStats.Precision > 0.2 {
				t.Errorf("union block precision = %.4f, suspiciously high", r.UnionStats.Precision)
			}
			// ...token blocks suggest far more comparisons than name
			// blocks...
			if r.TokenBlocks.Comparisons < r.NameBlocks.Comparisons {
				t.Errorf("||BT|| (%d) < ||BN|| (%d)", r.TokenBlocks.Comparisons, r.NameBlocks.Comparisons)
			}
			// ...and the union stays well below the Cartesian product.
			union := float64(r.TokenBlocks.Comparisons + r.NameBlocks.Comparisons)
			if union > r.CartesianProduct/5 {
				t.Errorf("union comparisons %.0f not well below Cartesian %.0f", union, r.CartesianProduct)
			}
		})
	}
}

// TestTableIIIShapes asserts the paper's comparative claims rather than
// absolute numbers (DESIGN.md §2 and §4).
func TestTableIIIShapes(t *testing.T) {
	ds := datasets(t)
	results := RunMethods(ds, Methods())
	f1 := make(map[string]map[string]float64)
	for _, r := range results {
		if f1[r.Dataset] == nil {
			f1[r.Dataset] = make(map[string]float64)
		}
		f1[r.Dataset][r.Method] = r.Metrics.F1
	}

	// Restaurant: every system is strong on the homogeneous pair.
	for method, score := range f1["Restaurant"] {
		if score < 0.9 {
			t.Errorf("Restaurant/%s F1 = %.3f, want >= 0.9", method, score)
		}
	}
	// Rexa-DBLP: MinoanER strictly beats the value-only and
	// literal/label-dependent systems, and stays within approximation
	// noise (2 points) of the strongest competitor. (Our SiGMa
	// reimplementation is slightly stronger than the original on this
	// synthetic stand-in; see EXPERIMENTS.md.)
	rexa := f1["Rexa-DBLP"]
	for _, weaker := range []string{"BSL", "PARIS", "LINDA", "RiMOM"} {
		if rexa["MinoanER"] <= rexa[weaker]-1e-9 {
			t.Errorf("Rexa-DBLP: MinoanER (%.3f) not above %s (%.3f)", rexa["MinoanER"], weaker, rexa[weaker])
		}
	}
	for method, score := range rexa {
		if rexa["MinoanER"] < score-0.02 {
			t.Errorf("Rexa-DBLP: MinoanER (%.3f) more than 2 points below %s (%.3f)", rexa["MinoanER"], method, score)
		}
	}
	// BBCmusic-DBpedia, the heterogeneity stress test:
	// MinoanER >> BSL >> PARIS.
	bbc := f1["BBCmusic-DBpedia"]
	if !(bbc["MinoanER"] > bbc["BSL"] && bbc["BSL"] > bbc["PARIS"]) {
		t.Errorf("BBCmusic ordering violated: MinoanER=%.3f BSL=%.3f PARIS=%.3f",
			bbc["MinoanER"], bbc["BSL"], bbc["PARIS"])
	}
	if bbc["MinoanER"] < 0.8 {
		t.Errorf("BBCmusic MinoanER F1 = %.3f, want >= 0.8", bbc["MinoanER"])
	}
	if bbc["PARIS"] > 0.5 {
		t.Errorf("BBCmusic PARIS F1 = %.3f, should collapse (< 0.5)", bbc["PARIS"])
	}
	// YAGO-IMDb: relational systems (MinoanER, SiGMa, PARIS) stay high;
	// value-only BSL is the clear loser.
	yago := f1["YAGO-IMDb"]
	for _, method := range []string{"MinoanER", "SiGMa", "PARIS"} {
		if yago[method] < yago["BSL"] {
			t.Errorf("YAGO-IMDb: %s (%.3f) below BSL (%.3f)", method, yago[method], yago["BSL"])
		}
	}
	if yago["MinoanER"] < 0.85 {
		t.Errorf("YAGO-IMDb MinoanER F1 = %.3f, want >= 0.85", yago["MinoanER"])
	}

	// Rendering sanity.
	tab := TableIII(ds, results)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MinoanER") {
		t.Error("Table III missing MinoanER rows")
	}
	// 6 methods × 3 rows each.
	if len(tab.Rows) != 18 {
		t.Errorf("Table III rows = %d, want 18", len(tab.Rows))
	}
}

func TestTableIIIMissingMethod(t *testing.T) {
	ds := datasets(t)
	results := []MethodResult{{Method: "OnlyOne", Dataset: ds[0].Name}}
	tab := TableIII(ds, results)
	// Cells for the other datasets must render as "-".
	found := false
	for _, row := range tab.Rows {
		for _, cell := range row {
			if cell == "-" {
				found = true
			}
		}
	}
	if !found {
		t.Error("missing results not rendered as '-'")
	}
}

func TestSciAndPct(t *testing.T) {
	if got := sci(123); got != "123" {
		t.Errorf("sci(123) = %q", got)
	}
	if got := sci(1.23e8); got != "1.23e+08" {
		t.Errorf("sci(1.23e8) = %q", got)
	}
	if got := pct(0.5); got != "50.00" {
		t.Errorf("pct(0.5) = %q", got)
	}
	if got := pct(0.0000123); !strings.Contains(got, "e-") {
		t.Errorf("pct(tiny) = %q, want scientific", got)
	}
	if got := pct(0); got != "0.00" {
		t.Errorf("pct(0) = %q", got)
	}
}
