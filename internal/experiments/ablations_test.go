package experiments

import (
	"strings"
	"testing"
)

func TestVariantsAreValid(t *testing.T) {
	vs := Variants()
	if len(vs) < 8 {
		t.Fatalf("only %d variants", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		if err := v.Config.Validate(); err != nil {
			t.Errorf("variant %q invalid: %v", v.Name, err)
		}
		if names[v.Name] {
			t.Errorf("duplicate variant name %q", v.Name)
		}
		names[v.Name] = true
	}
	for _, want := range []string{"full", "no-H1", "no-H2", "no-H3", "no-H4", "no-purge"} {
		if !names[want] {
			t.Errorf("missing variant %q", want)
		}
	}
}

func TestRunVariantAndAblationTable(t *testing.T) {
	ds := datasets(t)
	full := RunVariant(ds[0], Variants()[0])
	if full.F1 < 0.9 {
		t.Errorf("full variant on Restaurant F1 = %v", full)
	}
	tab := AblationTable(ds[:1])
	if len(tab.Rows) != len(Variants()) {
		t.Errorf("ablation rows = %d, want %d", len(tab.Rows), len(Variants()))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no-H3") {
		t.Error("ablation table missing variants")
	}
}

func TestNoH3HurtsOnRelationalData(t *testing.T) {
	ds := datasets(t)
	var yago *struct{}
	_ = yago
	for _, d := range ds {
		if d.Name != "YAGO-IMDb" {
			continue
		}
		full := RunVariant(d, Variants()[0])
		var noH3 Variant
		for _, v := range Variants() {
			if v.Name == "no-H3" {
				noH3 = v
			}
		}
		ablated := RunVariant(d, noH3)
		if ablated.F1 >= full.F1 {
			t.Errorf("removing H3 did not hurt on YAGO-IMDb: %.3f vs %.3f", ablated.F1, full.F1)
		}
		return
	}
	t.Fatal("YAGO-IMDb dataset missing")
}

func TestBlockingStrategyTable(t *testing.T) {
	ds := datasets(t)
	tab := BlockingStrategyTable(ds[:1]) // Restaurant only: fast
	if len(tab.Rows) != 6 {
		t.Fatalf("strategies = %d, want 6", len(tab.Rows))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"token blocking (raw)", "meta-blocking ARCS/WNP", "attribute clustering", "@"} {
		if !strings.Contains(out, want) {
			t.Errorf("blocking study missing %q", want)
		}
	}
}
