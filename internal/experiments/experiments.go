// Package experiments regenerates the three tables of the paper's
// evaluation (§IV) over the synthesized benchmark stand-ins:
//
//   - Table I  — dataset statistics
//   - Table II — block statistics of B_N and B_T
//   - Table III — precision/recall/F1 of SiGMa, LINDA, RiMOM, PARIS,
//     BSL, and MinoanER
//
// Absolute numbers differ from the paper (the substrates are synthetic;
// see DESIGN.md §2), but the comparative shapes are expected to hold.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"minoaner/internal/baseline"
	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/linda"
	"minoaner/internal/paris"
	"minoaner/internal/rimom"
	"minoaner/internal/sigma"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table in aligned-column text form.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return tw.Flush()
}

// Datasets builds all four benchmark stand-ins.
func Datasets(opts datagen.Options) ([]*datagen.Dataset, error) {
	var out []*datagen.Dataset
	for _, g := range datagen.Generators() {
		ds, err := g.Build(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// TableI reports the dataset statistics of Table I.
func TableI(datasets []*datagen.Dataset) *Table {
	t := &Table{
		Title:  "TABLE I — DATASET STATISTICS",
		Header: append([]string{""}, names(datasets)...),
	}
	row := func(label string, f func(*datagen.Dataset) string) {
		cells := []string{label}
		for _, ds := range datasets {
			cells = append(cells, f(ds))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("E1 entities", func(d *datagen.Dataset) string { return fmt.Sprintf("%d", d.KB1.Len()) })
	row("E2 entities", func(d *datagen.Dataset) string { return fmt.Sprintf("%d", d.KB2.Len()) })
	row("E1 triples", func(d *datagen.Dataset) string { return fmt.Sprintf("%d", d.KB1.NumTriples()) })
	row("E2 triples", func(d *datagen.Dataset) string { return fmt.Sprintf("%d", d.KB2.NumTriples()) })
	row("E1 av. tokens", func(d *datagen.Dataset) string { return fmt.Sprintf("%.2f", d.KB1.AvgTokens()) })
	row("E2 av. tokens", func(d *datagen.Dataset) string { return fmt.Sprintf("%.2f", d.KB2.AvgTokens()) })
	row("E1/E2 attributes", func(d *datagen.Dataset) string {
		return fmt.Sprintf("%d / %d", d.KB1.NumAttributes(), d.KB2.NumAttributes())
	})
	row("E1/E2 relations", func(d *datagen.Dataset) string {
		return fmt.Sprintf("%d / %d", d.KB1.NumRelations(), d.KB2.NumRelations())
	})
	row("E1/E2 types", func(d *datagen.Dataset) string {
		return fmt.Sprintf("%d / %d", d.KB1.NumTypes(), d.KB2.NumTypes())
	})
	row("E1/E2 vocab.", func(d *datagen.Dataset) string {
		return fmt.Sprintf("%d / %d", d.KB1.NumVocabularies(), d.KB2.NumVocabularies())
	})
	row("Matches", func(d *datagen.Dataset) string { return fmt.Sprintf("%d", d.GT.Len()) })
	return t
}

// BlockReport carries the Table II numbers for one dataset.
type BlockReport struct {
	Dataset          string
	NameBlocks       blocking.Stats
	TokenBlocks      blocking.Stats
	UnionStats       blocking.Stats
	CartesianProduct float64
}

// BlockStats computes the Table II statistics for one dataset: B_N with
// the paper's k=2 name attributes, B_T purged with the default
// smoothing.
func BlockStats(ds *datagen.Dataset) BlockReport {
	bn := blocking.NameBlocks(ds.KB1, ds.KB2, 2)
	bt := blocking.TokenBlocks(ds.KB1, ds.KB2)
	bt, _ = blocking.Purge(bt, blocking.DefaultPurgeConfig())
	union := blocking.Union("N:", bn, "T:", bt)
	return BlockReport{
		Dataset:          ds.Name,
		NameBlocks:       blocking.ComputeStats(bn, ds.GT),
		TokenBlocks:      blocking.ComputeStats(bt, ds.GT),
		UnionStats:       blocking.ComputeStats(union, ds.GT),
		CartesianProduct: float64(ds.KB1.Len()) * float64(ds.KB2.Len()),
	}
}

// TableII reports the block statistics of Table II.
func TableII(datasets []*datagen.Dataset) *Table {
	reports := make([]BlockReport, len(datasets))
	for i, ds := range datasets {
		reports[i] = BlockStats(ds)
	}
	t := &Table{
		Title:  "TABLE II — BLOCK STATISTICS",
		Header: append([]string{""}, names(datasets)...),
	}
	row := func(label string, f func(BlockReport) string) {
		cells := []string{label}
		for _, r := range reports {
			cells = append(cells, f(r))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("|BN|", func(r BlockReport) string { return fmt.Sprintf("%d", r.NameBlocks.Blocks) })
	row("|BT|", func(r BlockReport) string { return fmt.Sprintf("%d", r.TokenBlocks.Blocks) })
	row("||BN||", func(r BlockReport) string { return sci(float64(r.NameBlocks.Comparisons)) })
	row("||BT||", func(r BlockReport) string { return sci(float64(r.TokenBlocks.Comparisons)) })
	row("|E1|·|E2|", func(r BlockReport) string { return sci(r.CartesianProduct) })
	row("Precision", func(r BlockReport) string { return pct(r.UnionStats.Precision) })
	row("Recall", func(r BlockReport) string { return pct(r.UnionStats.Recall) })
	row("F1", func(r BlockReport) string { return pct(r.UnionStats.F1) })
	return t
}

// Method is one entity-resolution system under comparison.
type Method struct {
	Name string
	Run  func(ds *datagen.Dataset) []eval.Pair
}

// Methods returns the six systems of Table III in the paper's row
// order.
func Methods() []Method {
	return []Method{
		{Name: "SiGMa", Run: func(ds *datagen.Dataset) []eval.Pair {
			return sigma.Run(ds.KB1, ds.KB2, sigma.DefaultConfig())
		}},
		{Name: "LINDA", Run: func(ds *datagen.Dataset) []eval.Pair {
			return linda.Run(ds.KB1, ds.KB2, linda.DefaultConfig())
		}},
		{Name: "RiMOM", Run: func(ds *datagen.Dataset) []eval.Pair {
			return rimom.Run(ds.KB1, ds.KB2, rimom.DefaultConfig())
		}},
		{Name: "PARIS", Run: func(ds *datagen.Dataset) []eval.Pair {
			return paris.Run(ds.KB1, ds.KB2, paris.DefaultConfig())
		}},
		{Name: "BSL", Run: func(ds *datagen.Dataset) []eval.Pair {
			return baseline.Run(ds.KB1, ds.KB2, ds.GT, baseline.DefaultConfig()).BestMatches
		}},
		{Name: "MinoanER", Run: func(ds *datagen.Dataset) []eval.Pair {
			m, err := core.NewMatcher(ds.KB1, ds.KB2, core.DefaultConfig())
			if err != nil {
				panic(err) // DefaultConfig is always valid
			}
			return m.Run().Matches
		}},
	}
}

// MethodResult is one Table III cell group.
type MethodResult struct {
	Method  string
	Dataset string
	Metrics eval.Metrics
}

// RunMethods evaluates the given methods on every dataset.
func RunMethods(datasets []*datagen.Dataset, methods []Method) []MethodResult {
	var out []MethodResult
	for _, m := range methods {
		for _, ds := range datasets {
			matches := m.Run(ds)
			out = append(out, MethodResult{
				Method:  m.Name,
				Dataset: ds.Name,
				Metrics: eval.Evaluate(matches, ds.GT),
			})
		}
	}
	return out
}

// TableIII renders method results in the paper's layout: one block of
// Prec./Recall/F1 rows per method.
func TableIII(datasets []*datagen.Dataset, results []MethodResult) *Table {
	t := &Table{
		Title:  "TABLE III — EVALUATION COMPARED TO EXISTING METHODS",
		Header: append([]string{"", ""}, names(datasets)...),
	}
	byKey := make(map[string]eval.Metrics, len(results))
	var methodOrder []string
	seen := map[string]bool{}
	for _, r := range results {
		byKey[r.Method+"\x00"+r.Dataset] = r.Metrics
		if !seen[r.Method] {
			seen[r.Method] = true
			methodOrder = append(methodOrder, r.Method)
		}
	}
	for _, m := range methodOrder {
		rows := []struct {
			label string
			get   func(eval.Metrics) float64
		}{
			{"Prec.", func(x eval.Metrics) float64 { return x.Precision }},
			{"Recall", func(x eval.Metrics) float64 { return x.Recall }},
			{"F1", func(x eval.Metrics) float64 { return x.F1 }},
		}
		for i, spec := range rows {
			cells := []string{"", spec.label}
			if i == 0 {
				cells[0] = m
			}
			for _, ds := range datasets {
				metrics, ok := byKey[m+"\x00"+ds.Name]
				if !ok {
					cells = append(cells, "-")
					continue
				}
				cells = append(cells, fmt.Sprintf("%.2f", 100*spec.get(metrics)))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	return t
}

func names(datasets []*datagen.Dataset) []string {
	out := make([]string, len(datasets))
	for i, ds := range datasets {
		out[i] = ds.Name
	}
	return out
}

func sci(v float64) string {
	if v < 10000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2e", v)
}

func pct(v float64) string {
	p := 100 * v
	if p != 0 && p < 0.01 {
		return fmt.Sprintf("%.2e", p)
	}
	return fmt.Sprintf("%.2f", p)
}
