// Package datagen synthesizes the four benchmark KB pairs of the
// paper's evaluation (Table I). The real datasets (Restaurant,
// Rexa-DBLP, BBCmusic-DBpedia, YAGO-IMDb) are not redistributable and,
// at full size, not laptop-scale; each generator reproduces the
// *properties the algorithms are sensitive to* instead — schema
// overlap, name distinctiveness, token-frequency structure, literal
// noise, and relation topology. DESIGN.md §2 documents each
// substitution.
//
// All generators are deterministic in their Options (seed, scale).
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

// Options select the size and randomness of a generated dataset.
type Options struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// Scale multiplies every entity population. 1.0 is the default
	// benchmark size (laptop-scale stand-ins for the paper's datasets);
	// tests use much smaller scales.
	Scale float64
}

// DefaultOptions is the configuration used by the experiment harness.
var DefaultOptions = Options{Seed: 42, Scale: 1.0}

func (o Options) scaled(n int) int {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n)*s + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Dataset is one generated KB pair with its ground truth.
type Dataset struct {
	Name     string
	KB1, KB2 *kb.KB
	GT       *eval.GroundTruth
	// Triples1 and Triples2 allow serializing the dataset to N-Triples.
	Triples1, Triples2 []rdf.Triple
}

// Generator is a named dataset constructor.
type Generator struct {
	Name  string
	Build func(Options) (*Dataset, error)
}

// Generators lists the four benchmark stand-ins in the paper's column
// order.
func Generators() []Generator {
	return []Generator{
		{Name: "Restaurant", Build: Restaurant},
		{Name: "Rexa-DBLP", Build: Bibliography},
		{Name: "BBCmusic-DBpedia", Build: Music},
		{Name: "YAGO-IMDb", Build: Movies},
	}
}

// ByName returns the generator with the given name.
func ByName(name string) (Generator, bool) {
	for _, g := range Generators() {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}

// ---------------------------------------------------------------------
// Word and name synthesis

var syllables = []string{
	"ka", "ro", "mi", "ta", "ne", "su", "lo", "vi", "da", "pe",
	"ma", "ri", "to", "sa", "nu", "le", "fa", "ze", "bo", "gi",
	"cha", "dor", "len", "mar", "nis", "pol", "qui", "ras", "sol", "tun",
}

// wordGen produces deterministic pseudo-natural words and names.
type wordGen struct {
	rng *rand.Rand
}

func newWordGen(seed int64) *wordGen {
	return &wordGen{rng: rand.New(rand.NewSource(seed))}
}

// word builds a pronounceable word of the given syllable count.
func (w *wordGen) word(sylls int) string {
	var b strings.Builder
	for i := 0; i < sylls; i++ {
		b.WriteString(syllables[w.rng.Intn(len(syllables))])
	}
	return b.String()
}

// pool builds n distinct words.
func (w *wordGen) pool(n, sylls int) []string {
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for len(out) < n {
		word := w.word(sylls)
		// Suffix duplicates to force distinctness without skewing the
		// distribution.
		if _, dup := seen[word]; dup {
			word = fmt.Sprintf("%s%d", word, len(out))
		}
		seen[word] = struct{}{}
		out = append(out, word)
	}
	return out
}

// phrase joins k words drawn from a pool (with replacement).
func (w *wordGen) phrase(pool []string, k int) string {
	parts := make([]string, k)
	for i := range parts {
		parts[i] = pool[w.rng.Intn(len(pool))]
	}
	return strings.Join(parts, " ")
}

// zipfPick draws from a pool with a Zipf-like skew: low indices are
// much more likely, emulating natural token frequencies.
func (w *wordGen) zipfPick(pool []string) string {
	// Inverse-CDF of a discrete power law via rejection-free transform.
	u := w.rng.Float64()
	idx := int(float64(len(pool)) * u * u * u)
	if idx >= len(pool) {
		idx = len(pool) - 1
	}
	return pool[idx]
}

// corrupt applies token-level noise to a phrase: with probability
// dropP each token is dropped, with swapP two tokens are swapped, and
// with replaceP a token is replaced from the junk pool.
func (w *wordGen) corrupt(phrase string, dropP, swapP, replaceP float64, junk []string) string {
	toks := strings.Fields(phrase)
	if len(toks) == 0 {
		return phrase
	}
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		r := w.rng.Float64()
		switch {
		case r < dropP && len(toks) > 1:
			// dropped
		case r < dropP+replaceP && len(junk) > 0:
			out = append(out, junk[w.rng.Intn(len(junk))])
		default:
			out = append(out, tok)
		}
	}
	if len(out) == 0 {
		out = append(out, toks[0])
	}
	if len(out) > 1 && w.rng.Float64() < swapP {
		i := w.rng.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	return strings.Join(out, " ")
}

// ---------------------------------------------------------------------
// Triple emission

// emitter accumulates the triples of one KB under one namespace. Real
// web KBs mix several vocabularies; setVocabs registers alternative
// ontology namespaces, and each predicate is deterministically pinned
// to one of them (by name hash), which feeds the "vocab." row of
// Table I without affecting the schema-agnostic pipeline.
type emitter struct {
	ns      string
	vocabs  []string
	triples []rdf.Triple
}

func newEmitter(ns string) *emitter { return &emitter{ns: ns} }

// setVocabs splits this KB's predicates over n ontology namespaces.
func (e *emitter) setVocabs(n int) {
	e.vocabs = e.vocabs[:0]
	for i := 0; i < n; i++ {
		e.vocabs = append(e.vocabs, fmt.Sprintf("%svocab%d/", e.ns, i))
	}
}

func (e *emitter) entity(local string) string { return e.ns + "resource/" + local }

func (e *emitter) predIRI(pred string) string {
	if len(e.vocabs) == 0 {
		return e.ns + "ontology/" + pred
	}
	h := uint32(2166136261)
	for i := 0; i < len(pred); i++ {
		h = (h ^ uint32(pred[i])) * 16777619
	}
	return e.vocabs[h%uint32(len(e.vocabs))] + pred
}

func (e *emitter) attr(subj, pred, value string) {
	e.triples = append(e.triples, rdf.NewTriple(
		rdf.NewIRI(subj), rdf.NewIRI(e.predIRI(pred)), rdf.NewLiteral(value)))
}

func (e *emitter) rel(subj, pred, obj string) {
	e.triples = append(e.triples, rdf.NewTriple(
		rdf.NewIRI(subj), rdf.NewIRI(e.predIRI(pred)), rdf.NewIRI(obj)))
}

func (e *emitter) typ(subj, class string) {
	e.triples = append(e.triples, rdf.NewTriple(
		rdf.NewIRI(subj), rdf.NewIRI(kb.RDFType), rdf.NewIRI(e.ns+"class/"+class)))
}

// assemble builds the Dataset from two emitters and URI-level ground
// truth pairs.
func assemble(name string, e1, e2 *emitter, gtURIs [][2]string) (*Dataset, error) {
	kb1, err := kb.FromTriples(name+"/KB1", e1.triples)
	if err != nil {
		return nil, fmt.Errorf("datagen: %s KB1: %w", name, err)
	}
	kb2, err := kb.FromTriples(name+"/KB2", e2.triples)
	if err != nil {
		return nil, fmt.Errorf("datagen: %s KB2: %w", name, err)
	}
	gt := eval.NewGroundTruth()
	sort.Slice(gtURIs, func(i, j int) bool { return gtURIs[i][0] < gtURIs[j][0] })
	for _, pair := range gtURIs {
		id1, ok := kb1.Lookup(pair[0])
		if !ok {
			return nil, fmt.Errorf("datagen: %s: ground truth URI %q missing from KB1", name, pair[0])
		}
		id2, ok := kb2.Lookup(pair[1])
		if !ok {
			return nil, fmt.Errorf("datagen: %s: ground truth URI %q missing from KB2", name, pair[1])
		}
		if err := gt.Add(id1, id2); err != nil {
			return nil, fmt.Errorf("datagen: %s: %w", name, err)
		}
	}
	return &Dataset{
		Name:     name,
		KB1:      kb1,
		KB2:      kb2,
		GT:       gt,
		Triples1: e1.triples,
		Triples2: e2.triples,
	}, nil
}
