package datagen

import (
	"strings"
	"testing"

	"minoaner/internal/kb"
)

var testOpts = Options{Seed: 7, Scale: 0.1}

// predBySuffix finds an attribute predicate whose IRI ends with the
// suffix, independent of which vocabulary namespace it landed in.
func predBySuffix(k *kb.KB, suffix string) (int32, bool) {
	for _, st := range k.AttrStats() {
		if strings.HasSuffix(k.Pred(st.Pred), suffix) {
			return st.Pred, true
		}
	}
	return 0, false
}

func buildAll(t testing.TB, opts Options) []*Dataset {
	t.Helper()
	var out []*Dataset
	for _, g := range Generators() {
		ds, err := g.Build(opts)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		out = append(out, ds)
	}
	return out
}

func TestGeneratorsListed(t *testing.T) {
	gens := Generators()
	if len(gens) != 4 {
		t.Fatalf("generators = %d, want 4", len(gens))
	}
	wantNames := []string{"Restaurant", "Rexa-DBLP", "BBCmusic-DBpedia", "YAGO-IMDb"}
	for i, g := range gens {
		if g.Name != wantNames[i] {
			t.Errorf("generator %d = %s, want %s", i, g.Name, wantNames[i])
		}
		if _, ok := ByName(g.Name); !ok {
			t.Errorf("ByName(%s) failed", g.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestAllDatasetsWellFormed(t *testing.T) {
	for _, ds := range buildAll(t, testOpts) {
		t.Run(ds.Name, func(t *testing.T) {
			if ds.KB1.Len() == 0 || ds.KB2.Len() == 0 {
				t.Fatal("empty KB")
			}
			if ds.GT.Len() == 0 {
				t.Fatal("empty ground truth")
			}
			if ds.KB1.Len() >= ds.KB2.Len() {
				t.Errorf("KB1 (%d) should be smaller than KB2 (%d), as in the paper",
					ds.KB1.Len(), ds.KB2.Len())
			}
			if ds.GT.Len() > ds.KB1.Len() {
				t.Errorf("more matches (%d) than KB1 entities (%d)", ds.GT.Len(), ds.KB1.Len())
			}
			if len(ds.Triples1) == 0 || len(ds.Triples2) == 0 {
				t.Error("triples not retained")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, g := range Generators() {
		a, err := g.Build(testOpts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Build(testOpts)
		if err != nil {
			t.Fatal(err)
		}
		if a.KB1.Len() != b.KB1.Len() || a.KB2.Len() != b.KB2.Len() || a.GT.Len() != b.GT.Len() {
			t.Errorf("%s: nondeterministic sizes", g.Name)
		}
		pa, pb := a.GT.Pairs(), b.GT.Pairs()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: ground truth differs at %d", g.Name, i)
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a, _ := Restaurant(Options{Seed: 1, Scale: 0.1})
	b, _ := Restaurant(Options{Seed: 2, Scale: 0.1})
	// Same sizes, different content.
	if a.KB1.Len() != b.KB1.Len() {
		t.Error("sizes should not depend on seed")
	}
	same := 0
	for i := 0; i < a.KB1.Len(); i++ {
		ea := a.KB1.Entity(kb.EntityID(i))
		eb := b.KB1.Entity(kb.EntityID(i))
		if strings.Join(ea.Tokens, " ") == strings.Join(eb.Tokens, " ") {
			same++
		}
	}
	if same == a.KB1.Len() {
		t.Error("different seeds produced identical KBs")
	}
}

func TestScaleChangesSize(t *testing.T) {
	small, _ := Restaurant(Options{Seed: 1, Scale: 0.1})
	big, _ := Restaurant(Options{Seed: 1, Scale: 0.3})
	if big.KB1.Len() <= small.KB1.Len() {
		t.Errorf("scale 0.3 (%d) not larger than 0.1 (%d)", big.KB1.Len(), small.KB1.Len())
	}
}

func TestRestaurantShape(t *testing.T) {
	ds, err := Restaurant(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Homogeneous schemas: few attributes and relations on both sides.
	if ds.KB1.NumAttributes() > 10 || ds.KB2.NumAttributes() > 10 {
		t.Errorf("restaurant attributes exploded: %d/%d", ds.KB1.NumAttributes(), ds.KB2.NumAttributes())
	}
	if ds.KB1.NumRelations() != 1 || ds.KB2.NumRelations() != 1 {
		t.Errorf("relations = %d/%d, want 1/1", ds.KB1.NumRelations(), ds.KB2.NumRelations())
	}
	if ds.KB1.NumTypes() != 2 {
		t.Errorf("types = %d, want 2", ds.KB1.NumTypes())
	}
}

func TestMusicHeterogeneity(t *testing.T) {
	ds, err := Music(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The defining property of the BBCmusic-DBpedia pair: KB2's schema
	// explodes relative to KB1's.
	if ds.KB2.NumAttributes() < 10*ds.KB1.NumAttributes() {
		t.Errorf("KB2 attributes (%d) should dwarf KB1's (%d)",
			ds.KB2.NumAttributes(), ds.KB1.NumAttributes())
	}
	if ds.KB2.NumTypes() < 20*ds.KB1.NumTypes() {
		t.Errorf("KB2 types (%d) should dwarf KB1's (%d)", ds.KB2.NumTypes(), ds.KB1.NumTypes())
	}
	// KB2 descriptions are much longer on average (token dilution).
	if ds.KB2.AvgTokens() < 1.5*ds.KB1.AvgTokens() {
		t.Errorf("KB2 avg tokens (%.1f) should exceed KB1's (%.1f)",
			ds.KB2.AvgTokens(), ds.KB1.AvgTokens())
	}
}

func TestMoviesShortDescriptions(t *testing.T) {
	ds, err := Movies(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.KB1.AvgTokens() > 20 || ds.KB2.AvgTokens() > 20 {
		t.Errorf("movie descriptions too long: %.1f / %.1f tokens",
			ds.KB1.AvgTokens(), ds.KB2.AvgTokens())
	}
	if ds.KB1.NumRelations() < 2 {
		t.Errorf("movie KB1 relations = %d, want >= 2", ds.KB1.NumRelations())
	}
}

func TestBibliographyNoise(t *testing.T) {
	ds, err := Bibliography(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Count matched publication pairs with identical normalized titles;
	// noise must make this well below 100% but token overlap must stay.
	pid1, ok1 := predBySuffix(ds.KB1, "/title")
	pid2, ok2 := predBySuffix(ds.KB2, "/title")
	if !ok1 || !ok2 {
		t.Fatal("title predicates missing")
	}
	exact, total := 0, 0
	for _, p := range ds.GT.Pairs() {
		n1 := ds.KB1.Names(p.E1, []int32{pid1})
		n2 := ds.KB2.Names(p.E2, []int32{pid2})
		if len(n1) == 0 || len(n2) == 0 {
			continue // author pair
		}
		total++
		if n1[0] == n2[0] {
			exact++
		}
	}
	if total == 0 {
		t.Fatal("no publication pairs found")
	}
	ratio := float64(exact) / float64(total)
	if ratio > 0.8 {
		t.Errorf("title noise too weak: %.2f exact", ratio)
	}
	if ratio < 0.05 {
		t.Errorf("title noise too strong: %.2f exact", ratio)
	}
}
