package datagen

import (
	"strings"
	"testing"

	"minoaner/internal/kb"
)

// collectNameValues gathers the values of the attribute with the given
// IRI suffix per entity URI.
func collectNameValues(k *kb.KB, suffix string) map[string][]string {
	out := make(map[string][]string)
	for i := 0; i < k.Len(); i++ {
		id := kb.EntityID(i)
		e := k.Entity(id)
		for _, av := range e.Attrs {
			if strings.HasSuffix(k.Pred(av.Pred), suffix) {
				out[k.URI(id)] = append(out[k.URI(id)], av.Value)
			}
		}
	}
	return out
}

// TestMoviesRemakesExist: the YAGO-IMDb stand-in must contain
// same-title movies on non-matching entities in both KBs — the
// mechanism that breaks value-only matching.
func TestMoviesRemakesExist(t *testing.T) {
	ds, err := Movies(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	count := func(k *kb.KB, suffix string) int {
		titles := map[string]int{}
		for _, vals := range collectNameValues(k, suffix) {
			for _, v := range vals {
				titles[v]++
			}
		}
		dups := 0
		for _, n := range titles {
			if n > 1 {
				dups++
			}
		}
		return dups
	}
	if d := count(ds.KB1, "/label"); d == 0 {
		t.Error("no duplicate titles in KB1")
	}
	if d := count(ds.KB2, "/primaryTitle"); d == 0 {
		t.Error("no duplicate titles in KB2")
	}
}

// TestMoviesHomonymActors: some KB2 person names must occur twice.
func TestMoviesHomonymActors(t *testing.T) {
	ds, err := Movies(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, vals := range collectNameValues(ds.KB2, "/primaryName") {
		for _, v := range vals {
			names[v]++
		}
	}
	dups := 0
	for _, n := range names {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no homonym person names in KB2")
	}
}

// TestBibliographyHomonymAuthors: abbreviated author strings collide in
// KB2.
func TestBibliographyHomonymAuthors(t *testing.T) {
	ds, err := Bibliography(Options{Seed: 7, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, vals := range collectNameValues(ds.KB2, "/fullName") {
		for _, v := range vals {
			names[v]++
		}
	}
	dups := 0
	for _, n := range names {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no homonym author names in KB2")
	}
}

// TestGroundTruthCoversOnlyExistingEntities is a datagen sanity
// property already enforced by assemble; this exercises the error
// path indirectly by checking all GT pairs resolve.
func TestGroundTruthResolvable(t *testing.T) {
	for _, g := range Generators() {
		ds, err := g.Build(testOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ds.GT.Pairs() {
			if int(p.E1) >= ds.KB1.Len() || int(p.E2) >= ds.KB2.Len() {
				t.Fatalf("%s: GT pair out of range", g.Name)
			}
		}
	}
}

// TestScaledFloors: extreme down-scaling still yields valid datasets.
func TestScaledFloors(t *testing.T) {
	for _, g := range Generators() {
		ds, err := g.Build(Options{Seed: 1, Scale: 0.01})
		if err != nil {
			t.Fatalf("%s at scale 0.01: %v", g.Name, err)
		}
		if ds.GT.Len() == 0 {
			t.Errorf("%s: no ground truth at tiny scale", g.Name)
		}
	}
}
