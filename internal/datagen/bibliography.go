package datagen

import "fmt"

// Bibliography synthesizes the Rexa-DBLP stand-in: a small, noisy
// bibliographic KB (Rexa role) against a large, clean one (DBLP role).
// Ground-truth matches cover both publications and authors. Titles in
// KB1 carry token-level noise (drops, swaps, junk insertions), so exact
// literal equality often fails while token overlap survives — the
// regime where MinoanER's unnormalized valueSim and the author/venue
// neighborhood shine (Table III, column 2).
func Bibliography(opts Options) (*Dataset, error) {
	w := newWordGen(opts.Seed + 1)
	matchedPubs := opts.scaled(250)
	matchedAuthors := opts.scaled(150)
	extraPubs1 := opts.scaled(350)
	extraAuthors1 := opts.scaled(250)
	extraPubs2 := opts.scaled(5500)
	extraAuthors2 := opts.scaled(3500)

	commonTopic := w.pool(80, 2) // frequent "stop-ish" title words
	rareTopic := w.pool(8000, 3) // distinctive title words
	junk := w.pool(300, 2)       // KB1-side corruption tokens
	meta1 := w.pool(200, 2)      // per-KB metadata vocabularies (disjoint,
	meta2 := w.pool(200, 4)      // so metadata never fakes cross-KB evidence)
	firstNames := w.pool(80, 2)
	lastNames := w.pool(2500, 3)
	venues := w.pool(45, 3)

	e1 := newEmitter("http://rexa.example.org/")
	e1.setVocabs(3)
	e2 := newEmitter("http://dblp.example.org/")
	e2.setVocabs(3)
	var gt [][2]string

	type author struct {
		first, last string
	}
	mkAuthor := func() author {
		return author{first: firstNames[w.rng.Intn(len(firstNames))], last: lastNames[w.rng.Intn(len(lastNames))]}
	}
	authorName := func(a author) string { return a.first + " " + a.last }

	emitAuthor := func(e *emitter, idx int, a author, abbreviated bool) (string, bool) {
		u := e.entity(fmt.Sprintf("author/%05d", idx))
		name := authorName(a)
		abbr := false
		if abbreviated && w.rng.Float64() < 0.35 {
			// DBLP-style initialled given name. The surname token — the
			// distinctive one — is preserved.
			name = a.first[:1] + " " + a.last
			abbr = true
		}
		e.attr(u, "fullName", name)
		e.typ(u, "Person")
		return u, abbr
	}

	type pub struct {
		title   string
		year    int
		venue   string
		authors []int // indices into the matched-author space or local extras
	}
	var authorURIs1, authorURIs2 []string

	// Matched authors. Abbreviated DBLP entries frequently collide with
	// other people sharing the initial and surname; a quarter of them
	// get such a homonym in KB2 — indistinguishable by name, separable
	// only through co-authorship.
	type homonym struct {
		a   author
		idx int
	}
	var homonyms []homonym
	for i := 0; i < matchedAuthors; i++ {
		a := mkAuthor()
		u1, _ := emitAuthor(e1, i, a, false)
		u2, abbr := emitAuthor(e2, i, a, true)
		authorURIs1 = append(authorURIs1, u1)
		authorURIs2 = append(authorURIs2, u2)
		gt = append(gt, [2]string{u1, u2})
		if abbr && w.rng.Float64() < 0.7 {
			homonyms = append(homonyms, homonym{a: a, idx: i})
		}
	}
	// Extra authors per KB (never matched).
	extras1Start := len(authorURIs1)
	for i := 0; i < extraAuthors1; i++ {
		u, _ := emitAuthor(e1, matchedAuthors+i, mkAuthor(), false)
		authorURIs1 = append(authorURIs1, u)
	}
	extras2Start := len(authorURIs2)
	for i := 0; i < extraAuthors2; i++ {
		u, _ := emitAuthor(e2, matchedAuthors+i, mkAuthor(), true)
		authorURIs2 = append(authorURIs2, u)
	}
	// The homonyms join KB2's extras with the exact abbreviated string
	// of their namesake, and they publish too. Half sort before their
	// namesake and half after, so deterministic tie-breaking cannot
	// systematically favor either side.
	for i, h := range homonyms {
		local := fmt.Sprintf("author/h_%05d", i)
		if i%2 == 0 {
			local = fmt.Sprintf("aaa_author/h_%05d", i)
		}
		u := e2.entity(local)
		e2.attr(u, "fullName", h.a.first[:1]+" "+h.a.last)
		e2.typ(u, "Person")
		authorURIs2 = append(authorURIs2, u)
	}

	// Titles mix frequent connective words with distinctive rare ones:
	// the rare tokens carry the identifying weight under valueSim.
	mkTitle := func() string {
		return w.phrase(commonTopic, 2) + " " + w.phrase(rareTopic, 3+w.rng.Intn(3))
	}
	mkPub := func(matchedOnly bool) pub {
		nAuth := 1 + w.rng.Intn(3)
		p := pub{
			title: mkTitle(),
			year:  1985 + w.rng.Intn(30),
			venue: venues[w.rng.Intn(len(venues))],
		}
		for j := 0; j < nAuth; j++ {
			if matchedOnly {
				p.authors = append(p.authors, w.rng.Intn(matchedAuthors))
			} else {
				p.authors = append(p.authors, -1) // filled by the caller's KB-local extras
			}
		}
		return p
	}

	emitPub := func(e *emitter, idx int, p pub, uris []string, extraStart int, noisy bool) string {
		u := e.entity(fmt.Sprintf("pub/%06d", idx))
		title := p.title
		if noisy {
			if w.rng.Float64() < 0.15 {
				// A slice of Rexa records is severely mangled; their
				// titles alone cannot identify them.
				title = w.corrupt(title, 0.5, 0.5, 0.25, junk)
			} else {
				title = w.corrupt(title, 0.08, 0.25, 0.05, junk)
			}
		}
		e.attr(u, "title", title)
		e.attr(u, "year", fmt.Sprintf("%d", p.year))
		e.attr(u, "venue", p.venue)
		e.typ(u, "Publication")
		for _, ai := range p.authors {
			target := ai
			if target < 0 {
				target = extraStart + w.rng.Intn(len(uris)-extraStart)
			}
			// The two KBs name the authorship relation differently
			// (rarely-aligned labels, as in real web vocabularies).
			relName := "author"
			if e == e2 {
				relName = "creator"
			}
			e.rel(u, relName, uris[target])
		}
		// Long-tail metadata on a few entities inflates the attribute
		// count, as in the real DBLP/Rexa exports.
		if w.rng.Float64() < 0.08 {
			meta := meta1
			if e == e2 {
				meta = meta2
			}
			e.attr(u, fmt.Sprintf("meta%02d", w.rng.Intn(40)), w.phrase(meta, 2))
		}
		return u
	}

	siblings := 0
	for i := 0; i < matchedPubs; i++ {
		p := mkPub(true)
		u1 := emitPub(e1, i, p, authorURIs1, extras1Start, true)
		u2 := emitPub(e2, i, p, authorURIs2, extras2Start, false)
		gt = append(gt, [2]string{u1, u2})
		// Version siblings (tech report / conference / journal) reuse a
		// paper's title core with a variant token and a shifted year —
		// near-duplicates that value-only matching confuses.
		if w.rng.Float64() < 0.2 {
			sib := p
			sib.title = p.title + " part " + rareTopic[w.rng.Intn(len(rareTopic))]
			sib.year = p.year + 1
			emitPub(e1, 900000+siblings, sib, authorURIs1, extras1Start, true)
			emitPub(e2, 900000+siblings, sib, authorURIs2, extras2Start, false)
			siblings++
		}
	}
	for i := 0; i < extraPubs1; i++ {
		emitPub(e1, matchedPubs+i, mkPub(false), authorURIs1, extras1Start, true)
	}
	for i := 0; i < extraPubs2; i++ {
		emitPub(e2, matchedPubs+i, mkPub(false), authorURIs2, extras2Start, false)
	}
	return assemble("Rexa-DBLP", e1, e2, gt)
}
