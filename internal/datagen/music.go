package datagen

import "fmt"

// Music synthesizes the BBCmusic-DBpedia stand-in, the most
// heterogeneous pair in the evaluation: KB1 plays the clean, curated
// BBCmusic role; KB2 plays the BTC2012-DBpedia role with an exploded
// long-tail attribute vocabulary, a huge type inventory, and literal
// values wrapped in qualifier junk. Exact full-literal equality across
// the KBs is rare (PARIS collapses; H1 fires for only a small slice),
// but the *tokens* of names survive, so MinoanER's unnormalized
// valueSim plus band/birthplace neighbor evidence carries matching
// (Table III, column 3). BSL's normalized measures drown in the junk
// tokens, landing in between.
func Music(opts Options) (*Dataset, error) {
	w := newWordGen(opts.Seed + 2)
	matchedMusicians := opts.scaled(700)
	matchedBands := opts.scaled(200)
	matchedPlaces := opts.scaled(100)
	extra1 := opts.scaled(400)
	extra2 := opts.scaled(6500)
	trapPairs := opts.scaled(45) // same-name different-entity traps

	firstNames := w.pool(250, 2)
	lastNames := w.pool(4000, 3)
	bandWords := w.pool(1500, 2)
	placeWords := w.pool(800, 2)
	junk := w.pool(4000, 2)     // junk value vocabulary (Zipf-picked)
	dbpAttrs := w.pool(1500, 3) // long-tail KB2 attribute names
	dbpTypes := w.pool(3000, 3) // huge KB2 type inventory
	qualifiers := []string{"musician", "singer", "band", "artist", "group", "performer", "uk", "album", "rock", "pop"}

	e1 := newEmitter("http://bbcmusic.example.org/")
	e1.setVocabs(3)
	e2 := newEmitter("http://dbpedia.example.org/")
	e2.setVocabs(5)
	var gt [][2]string

	// junkPhrase emits Zipf-skewed junk so a few junk tokens become
	// stop-word-frequent (purged) while the tail stays mid-frequency
	// (diluting normalized similarities).
	junkPhrase := func(k int) string {
		s := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				s += " "
			}
			s += w.zipfPick(junk)
		}
		return s
	}

	// decorate wraps a clean name in DBpedia-style qualifiers and junk.
	decorate := func(name string) string {
		q := qualifiers[w.rng.Intn(len(qualifiers))]
		return name + " " + q + " " + junkPhrase(1+w.rng.Intn(2))
	}

	// dbpediaExtras attaches the long-tail attribute noise and type
	// explosion to a KB2 entity.
	dbpediaExtras := func(u string) {
		nAttrs := 6 + w.rng.Intn(7)
		for i := 0; i < nAttrs; i++ {
			e2.attr(u, dbpAttrs[w.rng.Intn(len(dbpAttrs))], junkPhrase(2+w.rng.Intn(4)))
		}
		nTypes := 1 + w.rng.Intn(4)
		for i := 0; i < nTypes; i++ {
			e2.typ(u, dbpTypes[w.rng.Intn(len(dbpTypes))])
		}
	}

	usedNames := make(map[string]struct{})
	fresh := func(gen func() string) string {
		for {
			n := gen()
			if _, dup := usedNames[n]; !dup {
				usedNames[n] = struct{}{}
				return n
			}
		}
	}

	// --- Places ------------------------------------------------------
	var placeURIs1, placeURIs2 []string
	emitPlace := func(i int, name string, matched bool) {
		u1 := e1.entity(fmt.Sprintf("place/%04d", i))
		e1.attr(u1, "placeName", name)
		e1.typ(u1, "Place")
		placeURIs1 = append(placeURIs1, u1)
		u2 := e2.entity(fmt.Sprintf("place/%04d", i))
		n2 := name
		if w.rng.Float64() < 0.85 {
			n2 = decorate(name)
		}
		e2.attr(u2, "label", n2)
		dbpediaExtras(u2)
		placeURIs2 = append(placeURIs2, u2)
		if matched {
			gt = append(gt, [2]string{u1, u2})
		}
	}
	for i := 0; i < matchedPlaces; i++ {
		emitPlace(i, fresh(func() string { return w.phrase(placeWords, 1+w.rng.Intn(2)) }), true)
	}

	// --- Bands -------------------------------------------------------
	var bandURIs1, bandURIs2 []string
	emitBand := func(i int, name string, matched bool) {
		u1 := e1.entity(fmt.Sprintf("band/%04d", i))
		e1.attr(u1, "bandName", name)
		e1.attr(u1, "bio", junkPhrase(6+w.rng.Intn(6)))
		e1.typ(u1, "Band")
		bandURIs1 = append(bandURIs1, u1)
		u2 := e2.entity(fmt.Sprintf("band/%04d", i))
		n2 := name
		if w.rng.Float64() < 0.9 {
			n2 = decorate(name)
		}
		e2.attr(u2, "label", n2)
		dbpediaExtras(u2)
		bandURIs2 = append(bandURIs2, u2)
		if matched {
			gt = append(gt, [2]string{u1, u2})
		}
	}
	for i := 0; i < matchedBands; i++ {
		emitBand(i, fresh(func() string { return "the " + w.phrase(bandWords, 1+w.rng.Intn(2)) }), true)
	}

	// --- Musicians ----------------------------------------------------
	mkMusicianName := func() string {
		return fresh(func() string {
			return firstNames[w.rng.Intn(len(firstNames))] + " " + lastNames[w.rng.Intn(len(lastNames))]
		})
	}
	emitMusician := func(i int, name string, matched bool) {
		u1 := e1.entity(fmt.Sprintf("artist/%05d", i))
		e1.attr(u1, "artistName", name)
		e1.attr(u1, "bio", junkPhrase(14+w.rng.Intn(12)))
		e1.typ(u1, "Musician")
		if len(bandURIs1) > 0 && w.rng.Float64() < 0.7 {
			b := w.rng.Intn(len(bandURIs1))
			e1.rel(u1, "memberOf", bandURIs1[b])
			if matched {
				e2.rel(e2.entity(fmt.Sprintf("artist/%05d", i)), "associatedBand", bandURIs2[b])
			}
		}
		if len(placeURIs1) > 0 && w.rng.Float64() < 0.8 {
			p := w.rng.Intn(len(placeURIs1))
			e1.rel(u1, "bornIn", placeURIs1[p])
			if matched {
				e2.rel(e2.entity(fmt.Sprintf("artist/%05d", i)), "birthPlace", placeURIs2[p])
			}
		}
		u2 := e2.entity(fmt.Sprintf("artist/%05d", i))
		n2 := name
		if w.rng.Float64() < 0.92 {
			n2 = decorate(name)
		}
		e2.attr(u2, "label", n2)
		dbpediaExtras(u2)
		if matched {
			gt = append(gt, [2]string{u1, u2})
		}
	}
	for i := 0; i < matchedMusicians; i++ {
		emitMusician(i, mkMusicianName(), true)
	}

	// --- Trap pairs: same name, different entities ---------------------
	// A KB1-only artist and a KB2-only artist share a name; systems
	// trusting names alone lose precision here.
	for i := 0; i < trapPairs; i++ {
		name := mkMusicianName()
		u1 := e1.entity(fmt.Sprintf("artist/trap1_%04d", i))
		e1.attr(u1, "artistName", name)
		e1.attr(u1, "bio", junkPhrase(8))
		e1.typ(u1, "Musician")
		u2 := e2.entity(fmt.Sprintf("artist/trap2_%04d", i))
		e2.attr(u2, "label", name)
		dbpediaExtras(u2)
	}

	// --- Unmatched extras ----------------------------------------------
	for i := 0; i < extra1; i++ {
		u := e1.entity(fmt.Sprintf("artist/x1_%05d", i))
		e1.attr(u, "artistName", mkMusicianName())
		e1.attr(u, "bio", junkPhrase(8+w.rng.Intn(8)))
		e1.typ(u, "Musician")
	}
	for i := 0; i < extra2; i++ {
		u := e2.entity(fmt.Sprintf("misc/%06d", i))
		e2.attr(u, "label", decorate(mkMusicianName()))
		dbpediaExtras(u)
	}
	return assemble("BBCmusic-DBpedia", e1, e2, gt)
}
