package datagen

import "fmt"

// Restaurant synthesizes the OAEI Restaurant benchmark stand-in: two
// small, schema-homogeneous KBs (≈7 attributes, 2 relations, 2-3 types
// each) describing restaurants and their addresses, with strongly
// similar values across the KBs. Every ER system should approach
// perfect F1 here (Table III, column 1).
func Restaurant(opts Options) (*Dataset, error) {
	w := newWordGen(opts.Seed)
	matched := opts.scaled(89)
	extra1 := opts.scaled(21)
	extra2 := opts.scaled(660)

	cuisine := []string{"italian", "french", "greek", "thai", "mexican", "japanese", "indian", "american"}
	cities := w.pool(12, 2)
	nameWords := w.pool(600, 2)
	streetWords := w.pool(300, 2)

	e1 := newEmitter("http://restaurants1.example.org/")
	e2 := newEmitter("http://restaurants2.example.org/")
	var gt [][2]string

	usedNames := make(map[string]struct{})
	freshName := func() string {
		for {
			n := w.phrase(nameWords, 2+w.rng.Intn(2))
			if _, dup := usedNames[n]; !dup {
				usedNames[n] = struct{}{}
				return n
			}
		}
	}

	type restaurant struct {
		name, phone, cuisine, street, city string
	}
	mk := func() restaurant {
		return restaurant{
			name:    freshName(),
			phone:   fmt.Sprintf("%03d-%04d", w.rng.Intn(1000), w.rng.Intn(10000)),
			cuisine: cuisine[w.rng.Intn(len(cuisine))],
			street:  fmt.Sprintf("%s street %d", w.phrase(streetWords, 1), 1+w.rng.Intn(200)),
			city:    cities[w.rng.Intn(len(cities))],
		}
	}

	emit := func(e *emitter, idx int, r restaurant, phoneStyle int) string {
		rest := e.entity(fmt.Sprintf("restaurant/%04d", idx))
		addr := e.entity(fmt.Sprintf("address/%04d", idx))
		phone := r.phone
		if phoneStyle == 1 {
			// Same digits, different formatting: token-identical after
			// normalization splits on '-', '/' alike.
			phone = r.phone[:3] + "/" + r.phone[4:]
		}
		e.attr(rest, "name", r.name)
		e.attr(rest, "phone", phone)
		e.attr(rest, "category", r.cuisine)
		e.rel(rest, "hasAddress", addr)
		e.typ(rest, "Restaurant")
		e.attr(addr, "street", r.street)
		e.attr(addr, "city", r.city)
		e.typ(addr, "Address")
		return rest
	}

	for i := 0; i < matched; i++ {
		r := mk()
		u1 := emit(e1, i, r, 0)
		u2 := emit(e2, i, r, 1)
		gt = append(gt, [2]string{u1, u2})
	}
	for i := 0; i < extra1; i++ {
		emit(e1, matched+i, mk(), 0)
	}
	for i := 0; i < extra2; i++ {
		emit(e2, matched+i, mk(), 1)
	}
	return assemble("Restaurant", e1, e2, gt)
}
