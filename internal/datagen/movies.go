package datagen

import "fmt"

// Movies synthesizes the YAGO-IMDb stand-in (scaled down ~1000×): two
// movie KBs with *short* descriptions (≈12-15 tokens), titles built
// from a small common vocabulary — so individual tokens are ambiguous
// and value-only matching (BSL) collapses — while full title strings
// stay unique, names mostly align exactly, and dense actedIn/directed
// relations provide the structural evidence PARIS, SiGMa, and
// MinoanER's H1/H3 thrive on (Table III, column 4).
func Movies(opts Options) (*Dataset, error) {
	w := newWordGen(opts.Seed + 3)
	matchedMovies := opts.scaled(1200)
	matchedActors := opts.scaled(700)
	matchedDirectors := opts.scaled(200)
	// Most movies are unmatched, as in YAGO-IMDb (56k matches out of
	// 5.2M entities): the distractor mass is what drowns value-only
	// matching.
	extra1 := opts.scaled(2800)
	extra2 := opts.scaled(3000)
	trapPairs := opts.scaled(120)

	titleWords := w.pool(150, 2) // small pool → ambiguous tokens, but below the purge cutoff
	firstNames := w.pool(110, 2)
	lastNames := w.pool(450, 3)
	// Metadata token pools are disjoint between the KBs (YAGO facts vs
	// IMDb ids share no vocabulary): junk dilutes descriptions without
	// ever producing cross-KB collisions.
	junk1 := w.pool(1500, 2)
	junk2 := w.pool(1500, 4)
	junkAttrs := []string{"code", "region", "note", "tag", "format", "source", "revision", "slot"}
	genres := []string{"drama", "comedy", "thriller", "action", "romance", "horror", "western"}

	e1 := newEmitter("http://yago.example.org/")
	e1.setVocabs(2)
	e2 := newEmitter("http://imdb.example.org/")
	var gt [][2]string

	// metadata dilutes every description with KB-local tokens — the
	// defining property of YAGO-IMDb: matches share almost nothing
	// beyond their (ambiguous) title/name tokens, so normalized value
	// similarities collapse. Each of the junk attributes covers only
	// ~30% of entities, keeping their importance below the name
	// attributes'.
	metadata := func(e *emitter, u string) {
		junk := junk1
		if e == e2 {
			junk = junk2
		}
		n := 2 + w.rng.Intn(2)
		for i := 0; i < n; i++ {
			attr := junkAttrs[w.rng.Intn(len(junkAttrs))]
			val := junk[w.rng.Intn(len(junk))] + " " + junk[w.rng.Intn(len(junk))] + " " + junk[w.rng.Intn(len(junk))]
			e.attr(u, attr, val)
		}
	}

	usedTitles := make(map[string]struct{})
	freshTitle := func() string {
		for {
			t := w.phrase(titleWords, 2+w.rng.Intn(3))
			if _, dup := usedTitles[t]; !dup {
				usedTitles[t] = struct{}{}
				return t
			}
		}
	}
	usedNames := make(map[string]struct{})
	freshPerson := func() string {
		for {
			n := firstNames[w.rng.Intn(len(firstNames))] + " " + lastNames[w.rng.Intn(len(lastNames))]
			if _, dup := usedNames[n]; !dup {
				usedNames[n] = struct{}{}
				return n
			}
		}
	}

	// --- People --------------------------------------------------------
	var actors1, actors2, directors1, directors2 []string
	emitPerson := func(kind string, i int, name string, matched bool) (string, string) {
		// Person entries are thin in both KBs (as in YAGO/IMDb): the
		// name is essentially all the value evidence there is.
		u1 := e1.entity(fmt.Sprintf("%s/%05d", kind, i))
		e1.attr(u1, "label", name)
		e1.typ(u1, "Person")
		u2 := e2.entity(fmt.Sprintf("%s/%05d", kind, i))
		n2 := name
		if w.rng.Float64() < 0.12 {
			// IMDb disambiguation suffix: breaks H1 for this person.
			n2 = fmt.Sprintf("%s %s", name, "ii")
		}
		e2.attr(u2, "primaryName", n2)
		e2.typ(u2, "Name")
		if matched {
			gt = append(gt, [2]string{u1, u2})
		}
		return u1, u2
	}
	var homonymNames []string
	for i := 0; i < matchedActors; i++ {
		name := freshPerson()
		u1, u2 := emitPerson("actor", i, name, true)
		actors1 = append(actors1, u1)
		actors2 = append(actors2, u2)
		// Homonyms are common on IMDb: 30% of matched actors share
		// their name with an unrelated person in KB2, so name evidence
		// alone cannot resolve them — only the shared filmography can.
		if w.rng.Float64() < 0.3 {
			homonymNames = append(homonymNames, name)
		}
	}
	for i, name := range homonymNames {
		u := e2.entity(fmt.Sprintf("actor/h2_%05d", i))
		e2.attr(u, "primaryName", name)
		e2.typ(u, "Name")
	}
	for i := 0; i < matchedDirectors; i++ {
		u1, u2 := emitPerson("director", i, freshPerson(), true)
		directors1 = append(directors1, u1)
		directors2 = append(directors2, u2)
	}

	// --- Movies --------------------------------------------------------
	emitMovie := func(i int, title string, year int, matched bool) {
		u1 := e1.entity(fmt.Sprintf("movie/%06d", i))
		e1.attr(u1, "label", title)
		e1.attr(u1, "genre", genres[w.rng.Intn(len(genres))])
		e1.typ(u1, "Movie")
		metadata(e1, u1)
		u2 := e2.entity(fmt.Sprintf("movie/%06d", i))
		t2 := title
		if w.rng.Float64() < 0.18 {
			// IMDb-style year-qualified title: H1 misses, neighbors must
			// recover the match.
			t2 = fmt.Sprintf("%s %d", title, year)
		}
		e2.attr(u2, "primaryTitle", t2)
		e2.attr(u2, "startYear", fmt.Sprintf("%d", year))
		e2.typ(u2, "Title")
		metadata(e2, u2)

		nActors := 2 + w.rng.Intn(3)
		for a := 0; a < nActors; a++ {
			idx := w.rng.Intn(len(actors1))
			e1.rel(u1, "actedIn", actors1[idx]) // YAGO orientation quirk kept simple: edge per KB
			e2.rel(u2, "hasActor", actors2[idx])
		}
		d := w.rng.Intn(len(directors1))
		e1.rel(u1, "directedBy", directors1[d])
		e2.rel(u2, "director", directors2[d])

		if matched {
			gt = append(gt, [2]string{u1, u2})
		}
	}

	// remake emits an unmatched movie with an exact copy of a matched
	// movie's title into one KB: identical full literals on non-matching
	// entities are what break value-only matching on YAGO-IMDb, while
	// relational evidence (shared cast) still disambiguates.
	remake := func(e *emitter, idx int, title string) {
		if e == e1 {
			u := e1.entity(fmt.Sprintf("movie/r1_%06d", idx))
			e1.attr(u, "label", title)
			e1.typ(u, "Movie")
			metadata(e1, u)
			e1.rel(u, "directedBy", directors1[w.rng.Intn(len(directors1))])
			for a := 0; a < 1+w.rng.Intn(2); a++ {
				e1.rel(u, "actedIn", actors1[w.rng.Intn(len(actors1))])
			}
			return
		}
		u := e2.entity(fmt.Sprintf("movie/r2_%06d", idx))
		e2.attr(u, "primaryTitle", title)
		e2.attr(u, "startYear", fmt.Sprintf("%d", 1950+w.rng.Intn(70)))
		e2.typ(u, "Title")
		metadata(e2, u)
		e2.rel(u, "director", directors2[w.rng.Intn(len(directors2))])
		for a := 0; a < 1+w.rng.Intn(2); a++ {
			e2.rel(u, "hasActor", actors2[w.rng.Intn(len(actors2))])
		}
	}

	remakes := 0
	used1, used2 := 0, 0
	for i := 0; i < matchedMovies; i++ {
		title := freshTitle()
		emitMovie(i, title, 1950+w.rng.Intn(70), true)
		// Most matched movies get same-title remakes; KB2 (IMDb) often
		// lists several.
		if w.rng.Float64() < 0.85 {
			remake(e1, remakes, title)
			remake(e2, remakes, title)
			used1++
			used2++
			if w.rng.Float64() < 0.5 {
				remake(e2, matchedMovies+remakes, title)
				used2++
			}
			remakes++
		}
	}
	extra1 -= used1
	extra2 -= used2
	if extra1 < 0 {
		extra1 = 0
	}
	if extra2 < 0 {
		extra2 = 0
	}

	// --- Trap pairs: remakes sharing a title across KBs -----------------
	for i := 0; i < trapPairs; i++ {
		title := freshTitle()
		u1 := e1.entity(fmt.Sprintf("movie/trap1_%05d", i))
		e1.attr(u1, "label", title)
		e1.typ(u1, "Movie")
		e1.rel(u1, "directedBy", directors1[w.rng.Intn(len(directors1))])
		u2 := e2.entity(fmt.Sprintf("movie/trap2_%05d", i))
		e2.attr(u2, "primaryTitle", title)
		e2.typ(u2, "Title")
		e2.rel(u2, "director", directors2[w.rng.Intn(len(directors2))])
	}

	// --- Unmatched extras ------------------------------------------------
	for i := 0; i < extra1; i++ {
		u := e1.entity(fmt.Sprintf("movie/x1_%06d", i))
		e1.attr(u, "label", freshTitle())
		e1.typ(u, "Movie")
		metadata(e1, u)
		e1.rel(u, "directedBy", directors1[w.rng.Intn(len(directors1))])
		for a := 0; a < 1+w.rng.Intn(2); a++ {
			e1.rel(u, "actedIn", actors1[w.rng.Intn(len(actors1))])
		}
	}
	for i := 0; i < extra2; i++ {
		u := e2.entity(fmt.Sprintf("movie/x2_%06d", i))
		e2.attr(u, "primaryTitle", freshTitle())
		e2.attr(u, "startYear", fmt.Sprintf("%d", 1950+w.rng.Intn(70)))
		e2.typ(u, "Title")
		metadata(e2, u)
		e2.rel(u, "director", directors2[w.rng.Intn(len(directors2))])
		for a := 0; a < 1+w.rng.Intn(2); a++ {
			e2.rel(u, "hasActor", actors2[w.rng.Intn(len(actors2))])
		}
	}
	return assemble("YAGO-IMDb", e1, e2, gt)
}
