package binio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 7)
	w.Int(42)
	w.Bool(true)
	w.Bool(false)
	w.Str("")
	w.Str("hello, κόσμος")
	w.Float(math.Pi)
	w.Float(math.Inf(-1))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+7 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools wrong")
	}
	if got := r.Str(); got != "" {
		t.Errorf("str = %q", got)
	}
	if got := r.Str(); got != "hello, κόσμος" {
		t.Errorf("str = %q", got)
	}
	if got := r.Float(); got != math.Pi {
		t.Errorf("float = %v", got)
	}
	if got := r.Float(); !math.IsInf(got, -1) {
		t.Errorf("float = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(1, func(sw *Writer) { sw.Str("first") })
	w.Section(7, func(sw *Writer) { sw.Int(123); sw.Str("second") })
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	id, body := r.Section()
	if id != 1 || body.Str() != "first" || body.Err() != nil {
		t.Fatalf("section 1 wrong: id=%d", id)
	}
	id, body = r.Section()
	if id != 7 || body.Int() != 123 || body.Str() != "second" {
		t.Fatalf("section 7 wrong: id=%d", id)
	}
	if id, _ := r.Section(); id != EndSection {
		t.Fatalf("expected end marker, got %d", id)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSectionChecksumDetectsFlips(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(3, func(sw *Writer) { sw.Str(strings.Repeat("payload ", 32)) })
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte well inside the section.
	for _, off := range []int{len(data) / 2, len(data) - 6} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		r := NewReader(bytes.NewReader(mut))
		for {
			id, _ := r.Section()
			if id == EndSection {
				break
			}
		}
		if err := r.Err(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: error = %v, want ErrCorrupt", off, err)
		}
	}
}

func TestSectionTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(2, func(sw *Writer) { sw.Str("some payload content") })
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 1; cut < len(data)-1; cut += 3 {
		r := NewReader(bytes.NewReader(data[:cut]))
		id, _ := r.Section()
		if id != EndSection && r.Err() == nil {
			// Section decoded fully despite truncation: must be impossible.
			t.Fatalf("cut at %d: section %d decoded from truncated stream", cut, id)
		}
	}
}

func TestSectionRejectsReservedID(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(EndSection, func(sw *Writer) {})
	if err := w.Flush(); err == nil {
		t.Error("section ID 0 accepted")
	}
}

func TestReaderSticksOnFirstError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.Uvarint()
	first := r.Err()
	if first == nil {
		t.Fatal("no error on empty input")
	}
	_ = r.Str()
	if r.Err() != first {
		t.Error("error did not stick")
	}
}

func TestBoolRejectsOther(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	_ = r.Bool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Error("bool 2 accepted")
	}
}
