package binio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

var mapMagic = [4]byte{'T', 'M', 'A', 'P'}

// buildMapImage writes a small three-section image in the framed
// format Map consumes.
func buildMapImage(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Raw(mapMagic[:])
	w.Uvarint(3)
	w.Section(1, func(sw *Writer) { sw.Str("alpha") })
	w.Section(2, func(sw *Writer) { sw.Int(42); sw.Str("beta") })
	w.Section(9, func(sw *Writer) { sw.Blob([]byte{1, 2, 3, 4}) })
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMapDirectoryAndSections(t *testing.T) {
	data := buildMapImage(t)
	m, err := BytesMap(data, mapMagic, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != 3 {
		t.Errorf("Version = %d", m.Version())
	}
	if got := m.SectionIDs(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 9 {
		t.Errorf("SectionIDs = %v", got)
	}
	if !m.Has(2) || m.Has(7) {
		t.Error("Has answers wrong")
	}
	b, err := m.Reader(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Int(); got != 42 {
		t.Errorf("section 2 int = %d", got)
	}
	if got := b.Str(); got != "beta" {
		t.Errorf("section 2 str = %q", got)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	// Raw skips checksum verification but returns the same payload.
	raw, ok := m.Raw(1)
	if !ok {
		t.Fatal("Raw(1) missing")
	}
	sec, err := m.Section(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, sec) {
		t.Error("Raw and Section payloads differ")
	}
	if _, err := m.Section(7); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing section error = %v", err)
	}
}

func TestMapChecksumVerifiesOnAccess(t *testing.T) {
	data := buildMapImage(t)
	// Flip a payload byte of section 2 ("beta" lives near the end of
	// its payload). The directory pass must still succeed; Section(2)
	// must fail; the other sections stay readable.
	mut := append([]byte(nil), data...)
	idx := bytes.Index(mut, []byte("beta"))
	if idx < 0 {
		t.Fatal("payload marker not found")
	}
	mut[idx] ^= 0x20
	m, err := BytesMap(mut, mapMagic, 3)
	if err != nil {
		t.Fatalf("directory pass rejected payload corruption early: %v", err)
	}
	if _, err := m.Section(2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt section error = %v", err)
	}
	// The verdict is latched: asking again gives the same error.
	if _, err := m.Section(2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("second access error = %v", err)
	}
	if _, err := m.Section(1); err != nil {
		t.Errorf("sibling section rejected: %v", err)
	}
}

func TestMapRejectsStructuralDamage(t *testing.T) {
	data := buildMapImage(t)
	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] = 'X'
		if _, err := BytesMap(mut, mapMagic, 3); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		if _, err := BytesMap(data, mapMagic, 2); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 3, 5, len(data) / 2, len(data) - 1} {
			if _, err := BytesMap(data[:cut], mapMagic, 3); !errors.Is(err, ErrCorrupt) {
				t.Errorf("cut %d: err = %v", cut, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), data...), 0xFF)
		if _, err := BytesMap(mut, mapMagic, 3); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("duplicate section", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Raw(mapMagic[:])
		w.Uvarint(3)
		w.Section(1, func(sw *Writer) { sw.Int(1) })
		w.Section(1, func(sw *Writer) { sw.Int(2) })
		w.End()
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := BytesMap(buf.Bytes(), mapMagic, 3); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestOpenMapFile(t *testing.T) {
	data := buildMapImage(t)
	path := filepath.Join(t.TempDir(), "image.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMap(path, mapMagic, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != len(data) {
		t.Errorf("Size = %d, want %d", m.Size(), len(data))
	}
	b, err := m.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Str(); got != "alpha" {
		t.Errorf("str = %q", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Error("Close not idempotent:", err)
	}
	if _, err := m.Section(1); err == nil {
		t.Error("Section on closed map succeeded")
	}
}

// TestBytesReaderMatchesStreamReader drives the same encoded stream
// through the io.Reader-backed and slice-backed decoders, including
// the skip helpers, and demands identical values and error states.
func TestBytesReaderMatchesStreamReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(77)
	w.Str("skipped")
	w.Str("kept")
	w.Blob([]byte{9, 8, 7})
	w.Float(2.5)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	stream := NewReader(bytes.NewReader(data))
	sliced := NewBytesReader(data)
	for name, r := range map[string]*Reader{"stream": stream, "data": sliced} {
		if got := r.Uvarint(); got != 77 {
			t.Errorf("%s: uvarint = %d", name, got)
		}
		r.SkipStr()
		if got := r.Str(); got != "kept" {
			t.Errorf("%s: str = %q", name, got)
		}
		if got := r.Blob(); !bytes.Equal(got, []byte{9, 8, 7}) {
			t.Errorf("%s: blob = %v", name, got)
		}
		if got := r.Float(); got != 2.5 {
			t.Errorf("%s: float = %v", name, got)
		}
		if r.More() {
			t.Errorf("%s: More() after end", name)
		}
		if err := r.Err(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	// Truncation surfaces as the sticky error in both modes.
	for name, r := range map[string]*Reader{
		"stream": NewReader(bytes.NewReader(data[:len(data)-3])),
		"data":   NewBytesReader(data[:len(data)-3]),
	} {
		r.Uvarint()
		r.SkipStr()
		r.Str()
		r.Blob()
		r.Float()
		if err := r.Err(); err == nil {
			t.Errorf("%s: truncated stream decoded cleanly", name)
		}
	}
}
