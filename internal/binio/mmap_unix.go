//go:build unix

package binio

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and returns the mapping with
// its release function. A zero-size file maps to an empty slice (mmap
// rejects zero-length mappings).
func mmapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, os.NewSyscallError("mmap", err)
	}
	return data, syscall.Munmap, nil
}
