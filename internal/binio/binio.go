// Package binio provides the shared binary-encoding substrate of the
// repo's persistent formats: varint/string/float primitives with sticky
// error handling, plus length-prefixed, CRC-checksummed sections. The
// KB codec (internal/kb), the block-collection codec
// (internal/blocking), and the public index snapshot all speak the same
// section framing:
//
//	uvarint sectionID | uvarint payloadLen | payload | uint32 CRC32(payload)
//
// terminated by a single sectionID 0. Readers skip sections whose ID
// they do not recognize (forward compatibility within a format
// version); any payload whose checksum does not match is rejected
// before a single byte of it is decoded.
package binio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// EndSection is the section ID that terminates a section stream.
const EndSection = 0

// maxSectionBytes bounds a single section payload; a longer length
// prefix marks corruption (or an absurd file) and is rejected outright.
// Within the bound, payloads are read incrementally (readN), so a
// damaged length never provokes one huge up-front allocation.
const maxSectionBytes = 1 << 32

// maxStringBytes bounds a single string; longer length prefixes mark
// corruption.
const maxStringBytes = 1 << 28

// ErrCorrupt is wrapped by every decoding failure: structural damage,
// checksum mismatches, truncation, and out-of-range values all satisfy
// errors.Is(err, binio.ErrCorrupt).
var ErrCorrupt = errors.New("binio: corrupt data")

// Writer encodes primitives onto an io.Writer with a sticky error: the
// first failure latches and subsequent calls are no-ops, so callers
// check Err (or Flush) once at the end.
type Writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the latched error, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains the internal buffer and returns the latched error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Uvarint writes one unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

// Int writes a non-negative int as a uvarint.
func (w *Writer) Int(v int) { w.Uvarint(uint64(v)) }

// Bool writes a boolean as one uvarint (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

// Float writes a float64 as the uvarint of its IEEE-754 bits.
func (w *Writer) Float(f float64) {
	w.Uvarint(math.Float64bits(f))
}

// Raw writes bytes verbatim (no length prefix).
func (w *Writer) Raw(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Blob writes a length-prefixed byte slice — the container primitive
// for embedding one format inside another (e.g. a KB image inside an
// index snapshot).
func (w *Writer) Blob(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.Raw(p)
}

// Embed streams a nested format directly into the stream via its
// io.Writer-based encoder, avoiding an intermediate buffer. Inside a
// Section the section framing already delimits the payload, so no
// length prefix is added; the nested format's own magic/versioning
// makes it self-describing.
func (w *Writer) Embed(write func(io.Writer) error) {
	if w.err != nil {
		return
	}
	w.err = write(w.w)
}

// Section buffers the output of fn and emits it as one checksummed
// section with the given non-zero ID.
func (w *Writer) Section(id uint64, fn func(*Writer)) {
	if w.err != nil {
		return
	}
	if id == EndSection {
		w.err = fmt.Errorf("binio: section ID %d is reserved for the end marker", EndSection)
		return
	}
	var payload bytes.Buffer
	sw := NewWriter(&payload)
	fn(sw)
	if err := sw.Flush(); err != nil {
		w.err = err
		return
	}
	w.Uvarint(id)
	w.Uvarint(uint64(payload.Len()))
	w.Raw(payload.Bytes())
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload.Bytes()))
	w.Raw(sum[:])
}

// End terminates the section stream.
func (w *Writer) End() { w.Uvarint(EndSection) }

// Reader decodes primitives from an io.Reader with a sticky error.
// After any failure, subsequent reads return zero values; callers check
// Err once.
//
// A Reader constructed with NewBytesReader runs in data mode: reads are
// bounds checks plus position bumps over the backing slice, and bulk
// reads (readN, Blob, section payloads) return subslices of it instead
// of copying. Strings still copy (Str builds a Go string), so decoded
// structures never alias the backing slice through a string.
type Reader struct {
	r    io.ByteReader
	in   io.Reader
	data []byte // data mode: backing slice (nil in stream mode)
	pos  int    // data mode: read position within data
	err  error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	type byteReader interface {
		io.Reader
		io.ByteReader
	}
	br, ok := r.(byteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Reader{r: br, in: br}
}

// NewBytesReader returns a data-mode Reader over data: bulk reads
// return subslices of data rather than copies, so they are valid only
// as long as data is (in particular, until a backing mapping is
// unmapped). All other semantics match NewReader over a bytes.Reader.
func NewBytesReader(data []byte) *Reader {
	r := &Reader{data: data}
	s := &sliceStream{r: r}
	r.r, r.in = s, s
	return r
}

// sliceStream adapts a data-mode Reader's backing slice to the
// io.Reader/io.ByteReader/Len surface the stream-mode code paths
// expect, sharing the Reader's position so nested stream decoders
// (Embedded) advance the parent.
type sliceStream struct{ r *Reader }

func (s *sliceStream) Read(p []byte) (int, error) {
	d := s.r
	if d.pos >= len(d.data) {
		return 0, io.EOF
	}
	n := copy(p, d.data[d.pos:])
	d.pos += n
	return n, nil
}

func (s *sliceStream) ReadByte() (byte, error) {
	d := s.r
	if d.pos >= len(d.data) {
		return 0, io.EOF
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

// Len reports the unread byte count (makes More precise in data mode).
func (s *sliceStream) Len() int { return len(s.r.data) - s.r.pos }

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Fail latches a corruption error with the given description.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	if r.data != nil {
		v, k := binary.Uvarint(r.data[r.pos:])
		if k <= 0 {
			r.Fail("truncated or overlong varint")
			return 0
		}
		r.pos += k
		return v
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v
}

// Int reads a uvarint-encoded non-negative int, failing when it does
// not fit the platform int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if uint64(int(v)) != v || int(v) < 0 {
		r.Fail("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

// Bool reads a uvarint-encoded boolean.
func (r *Reader) Bool() bool {
	switch v := r.Uvarint(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("invalid boolean %d", v)
		return false
	}
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxStringBytes {
		r.Fail("absurd string length %d", n)
		return ""
	}
	return string(r.readN(n))
}

// readN reads exactly n bytes. In data mode it returns a capacity-
// clipped subslice of the backing slice (zero copy; a damaged length
// prefix is caught by a bounds check before any int conversion). In
// stream mode the buffer grows with the bytes actually arriving
// (io.CopyN over a growing buffer) rather than being allocated up
// front, so a corrupt length prefix on a short stream fails with
// ErrCorrupt and modest memory instead of attempting one huge
// allocation — and values beyond the platform's int cannot overflow a
// make call.
func (r *Reader) readN(n uint64) []byte {
	if r.err != nil || n == 0 {
		return nil
	}
	if r.data != nil {
		if n > uint64(len(r.data)-r.pos) {
			r.Fail("truncated: %d bytes wanted, %d remain", n, len(r.data)-r.pos)
			return nil
		}
		end := r.pos + int(n)
		p := r.data[r.pos:end:end]
		r.pos = end
		return p
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r.in, int64(n)); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return nil
	}
	return buf.Bytes()
}

// Float reads a float64 written by Writer.Float.
func (r *Reader) Float() float64 {
	return math.Float64frombits(r.Uvarint())
}

// Skip advances past n raw bytes without materializing them — a
// position bump in data mode, a discard copy in stream mode.
func (r *Reader) Skip(n uint64) {
	if r.err != nil || n == 0 {
		return
	}
	if r.data != nil {
		if n > uint64(len(r.data)-r.pos) {
			r.Fail("truncated: %d bytes to skip, %d remain", n, len(r.data)-r.pos)
			return
		}
		r.pos += int(n)
		return
	}
	if _, err := io.CopyN(io.Discard, r.in, int64(n)); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
}

// SkipStr skips one length-prefixed string without building it —
// the allocation-free counterpart of Str for lazy scans.
func (r *Reader) SkipStr() {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n > maxStringBytes {
		r.Fail("absurd string length %d", n)
		return
	}
	r.Skip(n)
}

// ReadFull fills buf with raw bytes (the counterpart of Writer.Raw).
func (r *Reader) ReadFull(buf []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.in, buf); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
}

// Blob reads a length-prefixed byte slice written by Writer.Blob.
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxSectionBytes {
		r.Fail("absurd blob length %d", n)
		return nil
	}
	return r.readN(n)
}

// Embedded returns the reader's remaining stream for a nested decoder
// to consume directly (the counterpart of Writer.Embed). The nested
// decoder advances this reader; interleave with primitive reads only
// after it finishes.
func (r *Reader) Embedded() io.Reader {
	return r.in
}

// More reports whether unread bytes remain. It is precise for
// in-memory readers — in particular the section bodies Sections()
// returns, where it distinguishes "older payload that ends here" from
// "payload with trailing fields" for backward-compatible section
// extensions. On streaming readers it conservatively reports false.
func (r *Reader) More() bool {
	if r.err != nil {
		return false
	}
	type lener interface{ Len() int }
	if l, ok := r.in.(lener); ok {
		return l.Len() > 0
	}
	return false
}

// Magic consumes a 4-byte magic number and fails unless it matches.
func (r *Reader) Magic(want [4]byte) {
	var got [4]byte
	r.ReadFull(got[:])
	if r.err != nil {
		r.err = fmt.Errorf("%w: missing magic: %v", ErrCorrupt, r.err)
		return
	}
	if got != want {
		r.Fail("bad magic %q (want %q)", got[:], want[:])
	}
}

// Version consumes the format-version uvarint and fails unless it is
// one of the accepted values. It returns the version read so callers
// can dispatch between accepted formats.
func (r *Reader) Version(accepted ...uint64) uint64 {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	for _, a := range accepted {
		if v == a {
			return v
		}
	}
	r.Fail("unsupported version %d", v)
	return 0
}

// Sections drains the whole section stream into a map keyed by section
// ID, verifying each checksum and rejecting duplicate IDs. Callers look
// up the sections they know and ignore the rest (forward
// compatibility). On any failure the reader's error is latched and nil
// is returned.
func (r *Reader) Sections() map[uint64]*Reader {
	bodies := make(map[uint64]*Reader)
	for {
		id, body := r.Section()
		if id == EndSection {
			break
		}
		if _, dup := bodies[id]; dup {
			r.Fail("duplicate section %d", id)
			return nil
		}
		bodies[id] = body
	}
	if r.err != nil {
		return nil
	}
	return bodies
}

// Section reads the next section header and its full payload, verifies
// the checksum, and returns the section ID with a sub-Reader over the
// payload. It returns (EndSection, nil) at the end marker. Unknown IDs
// are the caller's to skip — the payload is already consumed, so
// skipping costs nothing.
func (r *Reader) Section() (uint64, *Reader) {
	id := r.Uvarint()
	if r.err != nil || id == EndSection {
		return EndSection, nil
	}
	n := r.Uvarint()
	if r.err != nil {
		return EndSection, nil
	}
	if n > maxSectionBytes {
		r.Fail("absurd section length %d", n)
		return EndSection, nil
	}
	payload := r.readN(n)
	if r.err != nil {
		r.err = fmt.Errorf("section %d truncated: %w", id, r.err)
		return EndSection, nil
	}
	var sum [4]byte
	if _, err := io.ReadFull(r.in, sum[:]); err != nil {
		r.err = fmt.Errorf("%w: section %d checksum truncated: %v", ErrCorrupt, id, err)
		return EndSection, nil
	}
	want := binary.LittleEndian.Uint32(sum[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		r.err = fmt.Errorf("%w: section %d checksum mismatch (got %08x, want %08x)", ErrCorrupt, id, got, want)
		return EndSection, nil
	}
	return id, NewBytesReader(payload)
}
