//go:build !unix

package binio

import (
	"io"
	"os"
)

// mmapFile has no mmap on this platform: read the file into memory.
// Lazy decoding still applies; only residency differs.
func mmapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
