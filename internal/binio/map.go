package binio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync"
)

// Map is a read-only, byte-slice-backed view of one sectioned file —
// typically a memory mapping. One header pass builds a section
// directory (IDs, payload subslices, recorded checksums) without
// touching payload bytes, so opening a multi-gigabyte file costs
// O(section count), not O(file size). Payloads are returned as
// subslices of the backing slice:
//
//   - Section verifies the recorded CRC32 on the first access to that
//     section (exactly once, concurrency-safe) and fails with
//     ErrCorrupt on mismatch — the lazy counterpart of
//     Reader.Section's eager check.
//   - Raw skips the outer checksum; it is for payloads that embed a
//     self-checksummed format (a nested section stream carrying its
//     own per-section CRCs), where re-hashing the whole payload would
//     defeat lazy decoding, and for O(header) metadata peeks.
//
// Every payload subslice aliases the mapping: it is valid only until
// Close. Decoders that outlive the Map must copy what they keep
// (Reader.Str already does for strings). Accessors must not race with
// Close; callers serialize that transition.
type Map struct {
	data    []byte
	unmap   func([]byte) error
	version uint64
	order   []uint64
	secs    map[uint64]*mapSection
	closed  bool
}

type mapSection struct {
	payload []byte
	crc     uint32
	verify  sync.Once
	err     error
}

// OpenMap maps the file at path and builds its section directory,
// validating magic and version. On platforms without mmap support the
// file is read into memory instead — laziness of decoding is
// preserved, only residency differs. The returned Map holds the
// mapping until Close; a finalizer backstops leaked Maps.
func OpenMap(path string, magic [4]byte, accepted ...uint64) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("mapping %s: %w", path, err)
	}
	m, err := newMap(data, unmap, magic, accepted...)
	if err != nil {
		if unmap != nil {
			unmap(data)
		}
		return nil, err
	}
	if unmap != nil {
		runtime.SetFinalizer(m, func(m *Map) { m.Close() })
	}
	return m, nil
}

// BytesMap builds a section directory over an in-memory image. Close
// releases nothing; the caller owns data.
func BytesMap(data []byte, magic [4]byte, accepted ...uint64) (*Map, error) {
	return newMap(data, nil, magic, accepted...)
}

func newMap(data []byte, unmap func([]byte) error, magic [4]byte, accepted ...uint64) (*Map, error) {
	dec := NewBytesReader(data)
	dec.Magic(magic)
	version := dec.Version(accepted...)
	m := &Map{data: data, unmap: unmap, version: version, secs: make(map[uint64]*mapSection)}
	for dec.Err() == nil {
		id := dec.Uvarint()
		if dec.Err() != nil || id == EndSection {
			break
		}
		n := dec.Uvarint()
		if n > maxSectionBytes {
			dec.Fail("absurd section %d length %d", id, n)
			break
		}
		payload := dec.readN(n)
		var sum [4]byte
		dec.ReadFull(sum[:])
		if dec.Err() != nil {
			return nil, fmt.Errorf("%w: section %d truncated: %v", ErrCorrupt, id, dec.Err())
		}
		if _, dup := m.secs[id]; dup {
			dec.Fail("duplicate section %d", id)
			break
		}
		m.secs[id] = &mapSection{payload: payload, crc: binary.LittleEndian.Uint32(sum[:])}
		m.order = append(m.order, id)
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: %d trailing bytes after end marker", ErrCorrupt, len(data)-dec.pos)
	}
	return m, nil
}

// Version returns the format version read from the header.
func (m *Map) Version() uint64 { return m.version }

// Size returns the total byte size of the backing image.
func (m *Map) Size() int { return len(m.data) }

// Has reports whether a section with the given ID is present.
func (m *Map) Has(id uint64) bool {
	_, ok := m.secs[id]
	return ok
}

// SectionIDs returns the section IDs in file order.
func (m *Map) SectionIDs() []uint64 {
	ids := make([]uint64, len(m.order))
	copy(ids, m.order)
	return ids
}

// Section returns the payload of the section with the given ID,
// verifying its checksum on first access (once; subsequent calls reuse
// the verdict). Missing sections and checksum mismatches fail with
// ErrCorrupt.
func (m *Map) Section(id uint64) ([]byte, error) {
	s, ok := m.secs[id]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
	}
	s.verify.Do(func() {
		if got := crc32.ChecksumIEEE(s.payload); got != s.crc {
			s.err = fmt.Errorf("%w: section %d checksum mismatch (got %08x, want %08x)", ErrCorrupt, id, got, s.crc)
		}
	})
	if s.err != nil {
		return nil, s.err
	}
	return s.payload, nil
}

// Raw returns the payload of the section with the given ID without
// verifying the outer checksum. Use it for payloads whose embedded
// format carries its own per-section checksums, or for bounded
// metadata peeks where a wrong value is caught by validation.
func (m *Map) Raw(id uint64) ([]byte, bool) {
	s, ok := m.secs[id]
	if !ok {
		return nil, false
	}
	return s.payload, true
}

// Reader returns a data-mode Reader over the (checksum-verified)
// payload of the section with the given ID.
func (m *Map) Reader(id uint64) (*Reader, error) {
	payload, err := m.Section(id)
	if err != nil {
		return nil, err
	}
	return NewBytesReader(payload), nil
}

// Close releases the mapping. It is idempotent. After Close every
// previously returned payload subslice is invalid; callers must have
// copied or fully decoded what they keep.
func (m *Map) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	runtime.SetFinalizer(m, nil)
	data := m.data
	m.data, m.secs, m.order = nil, nil, nil
	if m.unmap != nil && data != nil {
		return m.unmap(data)
	}
	return nil
}
