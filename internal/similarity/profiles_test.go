package similarity

import (
	"math"
	"testing"
)

func TestProfileNormAndSum(t *testing.T) {
	p := mkProfile([2]float64{0, 3}, [2]float64{1, 4})
	if got := p.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %f, want 5", got)
	}
	if got := p.Sum(); math.Abs(got-7) > 1e-12 {
		t.Errorf("Sum = %f, want 7", got)
	}
	var empty Profile
	if empty.Norm() != 0 || empty.Sum() != 0 {
		t.Error("empty profile norm/sum nonzero")
	}
}

func TestBuildProfilesDeterministic(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"alpha beta gamma", "beta beta delta"})
	kb2 := kbFromValues(t, "b", []string{"gamma alpha", "epsilon"})
	for _, scheme := range []Scheme{TF, TFIDF} {
		a := BuildProfiles(kb1, kb2, 1, scheme)
		b := BuildProfiles(kb1, kb2, 1, scheme)
		for i := range a.P1 {
			if len(a.P1[i]) != len(b.P1[i]) {
				t.Fatalf("scheme %v: profile %d differs in size", scheme, i)
			}
			for j := range a.P1[i] {
				if a.P1[i][j] != b.P1[i][j] {
					t.Fatalf("scheme %v: profile %d entry %d differs", scheme, i, j)
				}
			}
		}
	}
}

func TestBuildProfilesSharedDictionary(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"alpha"})
	kb2 := kbFromValues(t, "b", []string{"alpha"})
	ps := BuildProfiles(kb1, kb2, 1, TF)
	if len(ps.P1[0]) != 1 || len(ps.P2[0]) != 1 {
		t.Fatal("profiles wrong size")
	}
	if ps.P1[0][0].Term != ps.P2[0][0].Term {
		t.Error("shared token interned under different IDs")
	}
}

func TestBuildProfilesEmptyEntities(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"...", "real tokens"})
	kb2 := kbFromValues(t, "b", []string{"other words"})
	ps := BuildProfiles(kb1, kb2, 1, TFIDF)
	if len(ps.P1[0]) != 0 {
		t.Errorf("punctuation-only entity has profile %v", ps.P1[0])
	}
	for _, m := range AllMeasures {
		if got := Compare(m, ps.P1[0], ps.P2[0]); got != 0 {
			t.Errorf("%v with empty profile = %f", m, got)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	if TF.String() != "TF" || TFIDF.String() != "TF-IDF" {
		t.Error("scheme names wrong")
	}
}
