package similarity

import (
	"math"
	"sort"

	"minoaner/internal/kb"
	"minoaner/internal/tokenize"
)

// Scheme selects the token-weighting scheme of a profile (BSL baseline
// configuration (ii) in §IV of the paper).
type Scheme uint8

const (
	// TF weights terms by their in-entity frequency.
	TF Scheme = iota
	// TFIDF additionally discounts terms frequent across the corpus
	// (both KBs pooled).
	TFIDF
)

// String names the scheme.
func (s Scheme) String() string {
	if s == TFIDF {
		return "TF-IDF"
	}
	return "TF"
}

// Entry is one weighted term of a profile.
type Entry struct {
	Term int32
	W    float64
}

// Profile is the sparse weighted-term vector of one entity, sorted by
// term ID.
type Profile []Entry

// Norm returns the Euclidean norm of the profile.
func (p Profile) Norm() float64 {
	var s float64
	for _, e := range p {
		s += e.W * e.W
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the profile's weights.
func (p Profile) Sum() float64 {
	var s float64
	for _, e := range p {
		s += e.W
	}
	return s
}

// ProfileSet holds the profiles of every entity of both KBs under one
// (n-gram, scheme) configuration, sharing one term dictionary.
type ProfileSet struct {
	NGram  int
	Scheme Scheme
	P1     []Profile // indexed by KB1 entity ID
	P2     []Profile // indexed by KB2 entity ID
}

// BuildProfiles constructs the schema-agnostic n-gram representation of
// every entity of both KBs: each entity becomes the weighted multiset of
// the token 1..n-grams of its attribute values.
func BuildProfiles(kb1, kb2 *kb.KB, ngram int, scheme Scheme) *ProfileSet {
	dict := make(map[string]int32)
	df := []int32{} // document frequency per term, pooled over both KBs

	counts1 := entityTermCounts(kb1, ngram, dict, &df)
	counts2 := entityTermCounts(kb2, ngram, dict, &df)

	n := float64(kb1.Len() + kb2.Len())
	weigh := func(counts []map[int32]int32) []Profile {
		out := make([]Profile, len(counts))
		for i, tc := range counts {
			p := make(Profile, 0, len(tc))
			for term, c := range tc {
				w := float64(c)
				if scheme == TFIDF {
					w *= math.Log(1 + n/float64(df[term]))
				}
				p = append(p, Entry{Term: term, W: w})
			}
			sort.Slice(p, func(a, b int) bool { return p[a].Term < p[b].Term })
			out[i] = p
		}
		return out
	}
	return &ProfileSet{NGram: ngram, Scheme: scheme, P1: weigh(counts1), P2: weigh(counts2)}
}

// entityTermCounts tokenizes every entity into n-grams, interning terms
// in dict and maintaining pooled document frequencies.
func entityTermCounts(k *kb.KB, ngram int, dict map[string]int32, df *[]int32) []map[int32]int32 {
	out := make([]map[int32]int32, k.Len())
	for i := 0; i < k.Len(); i++ {
		e := k.Entity(kb.EntityID(i))
		values := make([]string, len(e.Attrs))
		for j, av := range e.Attrs {
			values[j] = av.Value
		}
		toks := tokenize.TokensOfAll(values, tokenize.DefaultOptions)
		grams := tokenize.NGrams(toks, ngram)
		tc := make(map[int32]int32, len(grams))
		for _, g := range grams {
			id, ok := dict[g]
			if !ok {
				id = int32(len(*df))
				dict[g] = id
				*df = append(*df, 0)
			}
			tc[id]++
		}
		for term := range tc {
			(*df)[term]++
		}
		out[i] = tc
	}
	return out
}
