package similarity

// Measure selects one of the four similarity functions of the BSL
// baseline (paper §IV, configuration (iii)).
type Measure uint8

const (
	// Cosine is the cosine of the weighted profiles.
	Cosine Measure = iota
	// Jaccard is the set Jaccard coefficient over profile terms,
	// ignoring weights.
	Jaccard
	// GeneralizedJaccard is Σ min(w_a, w_b) / Σ max(w_a, w_b) over the
	// weighted profiles.
	GeneralizedJaccard
	// SiGMa is the weighted-overlap measure of Lacoste-Julien et al.:
	// shared weight divided by total minus shared weight, with a shared
	// term contributing the mean of its two side weights.
	SiGMa
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case Cosine:
		return "Cosine"
	case Jaccard:
		return "Jaccard"
	case GeneralizedJaccard:
		return "GeneralizedJaccard"
	case SiGMa:
		return "SiGMa"
	default:
		return "Measure(?)"
	}
}

// AllMeasures lists every measure in sweep order.
var AllMeasures = []Measure{Cosine, Jaccard, GeneralizedJaccard, SiGMa}

// Compare evaluates the measure on two profiles. All measures return
// values in [0,1]; empty profiles yield 0.
func Compare(m Measure, a, b Profile) float64 {
	switch m {
	case Cosine:
		return cosine(a, b)
	case Jaccard:
		return jaccard(a, b)
	case GeneralizedJaccard:
		return generalizedJaccard(a, b)
	case SiGMa:
		return sigmaSim(a, b)
	default:
		return 0
	}
}

func cosine(a, b Profile) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			i++
		case a[i].Term > b[j].Term:
			j++
		default:
			dot += a[i].W * b[j].W
			i++
			j++
		}
	}
	if dot == 0 {
		return 0
	}
	return dot / (a.Norm() * b.Norm())
}

func jaccard(a, b Profile) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var inter int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			i++
		case a[i].Term > b[j].Term:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

func generalizedJaccard(a, b Profile) float64 {
	var minSum, maxSum float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			maxSum += a[i].W
			i++
		case a[i].Term > b[j].Term:
			maxSum += b[j].W
			j++
		default:
			minSum += min64(a[i].W, b[j].W)
			maxSum += max64(a[i].W, b[j].W)
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		maxSum += a[i].W
	}
	for ; j < len(b); j++ {
		maxSum += b[j].W
	}
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

func sigmaSim(a, b Profile) float64 {
	var shared float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			i++
		case a[i].Term > b[j].Term:
			j++
		default:
			shared += (a[i].W + b[j].W) / 2
			i++
			j++
		}
	}
	total := a.Sum() + b.Sum() - shared
	if total == 0 {
		return 0
	}
	return shared / total
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
