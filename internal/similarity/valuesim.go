// Package similarity implements the value-similarity functions of the
// paper: the ARCS-variant valueSim that drives H2 and H3, and the
// baseline measures (Cosine, Jaccard, Generalized Jaccard, SiGMa) over
// TF / TF-IDF weighted token n-gram profiles used by BSL.
package similarity

import (
	"math"

	"minoaner/internal/kb"
)

// ARCSWeights holds the per-token weights of valueSim for one pair of
// KBs:
//
//	w(t) = 1 / log2(EF_E1(t) · EF_E2(t) + 1)
//
// where EF_E(t) is the number of entities of E containing token t
// (paper §III, H2). Tokens absent from either KB have weight 0 — they
// cannot contribute to a cross-KB intersection.
type ARCSWeights struct {
	kb1, kb2 *kb.KB
}

// NewARCSWeights prepares valueSim weights for the KB pair.
func NewARCSWeights(kb1, kb2 *kb.KB) *ARCSWeights {
	return &ARCSWeights{kb1: kb1, kb2: kb2}
}

// Weight returns w(t). A token unique in both KBs gets
// 1/log2(1·1+1) = 1; frequent tokens decay towards 0.
func (w *ARCSWeights) Weight(token string) float64 {
	ef1 := w.kb1.EF(token)
	if ef1 == 0 {
		return 0
	}
	ef2 := w.kb2.EF(token)
	if ef2 == 0 {
		return 0
	}
	return 1 / math.Log2(float64(ef1)*float64(ef2)+1)
}

// ValueSim computes the paper's value similarity between two token
// bags, given as sorted slices of distinct tokens (the representation
// kb.Tokens returns):
//
//	valueSim(e_i, e_j) = Σ_{t ∈ tokens(e_i) ∩ tokens(e_j)} w(t)
//
// The result is non-negative, symmetric, and grows with the number of
// shared infrequent tokens; a single token unique to the pair already
// yields 1.
func (w *ARCSWeights) ValueSim(toks1, toks2 []string) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(toks1) && j < len(toks2) {
		switch {
		case toks1[i] < toks2[j]:
			i++
		case toks1[i] > toks2[j]:
			j++
		default:
			sum += w.Weight(toks1[i])
			i++
			j++
		}
	}
	return sum
}

// ValueSimIDs is the hot-path variant over interned token IDs: a and b
// are sorted slices of distinct IDs, weights[id] the precomputed w(t).
func ValueSimIDs(a, b []int32, weights []float64) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			sum += weights[a[i]]
			i++
			j++
		}
	}
	return sum
}
