package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func kbFromValues(t testing.TB, name string, values []string) *kb.KB {
	t.Helper()
	var triples []rdf.Triple
	for i, v := range values {
		triples = append(triples, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://%s/e%03d", name, i)),
			rdf.NewIRI("http://v/name"),
			rdf.NewLiteral(v),
		))
	}
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestARCSWeight(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"unique shared", "shared"})
	kb2 := kbFromValues(t, "b", []string{"unique shared", "shared"})
	w := NewARCSWeights(kb1, kb2)
	// "unique": EF=1 in both → 1/log2(2) = 1.
	if got := w.Weight("unique"); math.Abs(got-1) > 1e-12 {
		t.Errorf("Weight(unique) = %f, want 1", got)
	}
	// "shared": EF=2 in both → 1/log2(5).
	want := 1 / math.Log2(5)
	if got := w.Weight("shared"); math.Abs(got-want) > 1e-12 {
		t.Errorf("Weight(shared) = %f, want %f", got, want)
	}
	if w.Weight("absent") != 0 {
		t.Error("absent token has non-zero weight")
	}
}

func TestValueSim(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"alpha beta gamma", "delta"})
	kb2 := kbFromValues(t, "b", []string{"beta gamma epsilon", "delta"})
	w := NewARCSWeights(kb1, kb2)
	e1 := kb1.Tokens(0)
	e2 := kb2.Tokens(0)
	// Shared: beta, gamma — each unique per KB → weight 1 each.
	if got := w.ValueSim(e1, e2); math.Abs(got-2) > 1e-12 {
		t.Errorf("ValueSim = %f, want 2", got)
	}
	// No overlap.
	if got := w.ValueSim(kb1.Tokens(0), kb2.Tokens(1)); got != 0 {
		t.Errorf("disjoint ValueSim = %f", got)
	}
}

func TestValueSimSymmetric(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"x y z", "x q"})
	kb2 := kbFromValues(t, "b", []string{"y z w", "q"})
	w := NewARCSWeights(kb1, kb2)
	for i := 0; i < kb1.Len(); i++ {
		for j := 0; j < kb2.Len(); j++ {
			a := w.ValueSim(kb1.Tokens(kb.EntityID(i)), kb2.Tokens(kb.EntityID(j)))
			b := w.ValueSim(kb2.Tokens(kb.EntityID(j)), kb1.Tokens(kb.EntityID(i)))
			if math.Abs(a-b) > 1e-12 {
				t.Errorf("asymmetric: %f vs %f", a, b)
			}
			if a < 0 {
				t.Errorf("negative similarity %f", a)
			}
		}
	}
}

func TestValueSimUniquePairThreshold(t *testing.T) {
	// The H2 rationale: a single token unique to one entity in each KB
	// pushes valueSim to exactly 1.
	kb1 := kbFromValues(t, "a", []string{"distinctivetoken", "other"})
	kb2 := kbFromValues(t, "b", []string{"distinctivetoken", "another"})
	w := NewARCSWeights(kb1, kb2)
	got := w.ValueSim(kb1.Tokens(0), kb2.Tokens(0))
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("unique-token pair sim = %f, want exactly 1", got)
	}
}

func TestValueSimIDs(t *testing.T) {
	weights := []float64{0.5, 1.0, 2.0, 0.25}
	a := []int32{0, 1, 3}
	b := []int32{1, 2, 3}
	got := ValueSimIDs(a, b, weights)
	if want := 1.0 + 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("ValueSimIDs = %f, want %f", got, want)
	}
	if ValueSimIDs(nil, b, weights) != 0 || ValueSimIDs(a, nil, weights) != 0 {
		t.Error("empty input should give 0")
	}
}

// Property: ValueSimIDs equals brute-force sum over the intersection.
func TestValueSimIDsProperty(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		weights := make([]float64, 256)
		for i := range weights {
			weights[i] = float64(i%7) / 7
		}
		a := uniqSorted(rawA)
		b := uniqSorted(rawB)
		want := 0.0
		inA := map[int32]bool{}
		for _, x := range a {
			inA[x] = true
		}
		for _, y := range b {
			if inA[y] {
				want += weights[y]
			}
		}
		got := ValueSimIDs(a, b, weights)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func uniqSorted(raw []uint8) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, r := range raw {
		v := int32(r)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBuildProfilesTF(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"red red blue"})
	kb2 := kbFromValues(t, "b", []string{"red green"})
	ps := BuildProfiles(kb1, kb2, 1, TF)
	if len(ps.P1) != 1 || len(ps.P2) != 1 {
		t.Fatalf("profile counts: %d/%d", len(ps.P1), len(ps.P2))
	}
	// P1[0] has red:2, blue:1.
	var redW, blueW float64
	for _, e := range ps.P1[0] {
		switch e.W {
		case 2:
			redW = e.W
		case 1:
			blueW = e.W
		}
	}
	if redW != 2 || blueW != 1 {
		t.Errorf("TF weights wrong: %+v", ps.P1[0])
	}
}

func TestBuildProfilesTFIDF(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"common rare1", "common rare2"})
	kb2 := kbFromValues(t, "b", []string{"common rare3"})
	ps := BuildProfiles(kb1, kb2, 1, TFIDF)
	// "common" appears in all 3 entities; its IDF must be lower than a
	// rare term's.
	findW := func(p Profile, terms map[int32]string, name string) float64 {
		for _, e := range p {
			if terms[e.Term] == name {
				return e.W
			}
		}
		return -1
	}
	// Rebuild term names by re-tokenizing: common=shared term in both profiles.
	// Instead compare: every profile has 2 entries; the weights must differ.
	p := ps.P1[0]
	if len(p) != 2 {
		t.Fatalf("profile size = %d", len(p))
	}
	if p[0].W == p[1].W {
		t.Error("TF-IDF assigned equal weight to common and rare term")
	}
	_ = findW
}

func TestBuildProfilesNGrams(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"new york city"})
	kb2 := kbFromValues(t, "b", []string{"new york state"})
	ps := BuildProfiles(kb1, kb2, 2, TF)
	// Bigrams of e1: "new york", "york city" → 2 entries.
	if len(ps.P1[0]) != 2 {
		t.Errorf("bigram profile = %+v", ps.P1[0])
	}
	ps3 := BuildProfiles(kb1, kb2, 3, TF)
	if len(ps3.P1[0]) != 1 {
		t.Errorf("trigram profile = %+v", ps3.P1[0])
	}
}

func mkProfile(pairs ...[2]float64) Profile {
	p := make(Profile, 0, len(pairs))
	for _, pr := range pairs {
		p = append(p, Entry{Term: int32(pr[0]), W: pr[1]})
	}
	sort.Slice(p, func(i, j int) bool { return p[i].Term < p[j].Term })
	return p
}

func TestCosine(t *testing.T) {
	a := mkProfile([2]float64{0, 1}, [2]float64{1, 1})
	b := mkProfile([2]float64{0, 1}, [2]float64{1, 1})
	if got := Compare(Cosine, a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical cosine = %f", got)
	}
	c := mkProfile([2]float64{2, 1})
	if got := Compare(Cosine, a, c); got != 0 {
		t.Errorf("orthogonal cosine = %f", got)
	}
	d := mkProfile([2]float64{0, 1})
	want := 1 / math.Sqrt2
	if got := Compare(Cosine, a, d); math.Abs(got-want) > 1e-12 {
		t.Errorf("cosine = %f, want %f", got, want)
	}
}

func TestJaccard(t *testing.T) {
	a := mkProfile([2]float64{0, 5}, [2]float64{1, 5})
	b := mkProfile([2]float64{1, 1}, [2]float64{2, 1})
	// Intersection {1}, union {0,1,2}.
	if got := Compare(Jaccard, a, b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("jaccard = %f", got)
	}
	if got := Compare(Jaccard, nil, b); got != 0 {
		t.Errorf("empty jaccard = %f", got)
	}
}

func TestGeneralizedJaccard(t *testing.T) {
	a := mkProfile([2]float64{0, 2}, [2]float64{1, 1})
	b := mkProfile([2]float64{0, 1}, [2]float64{1, 3})
	// min: 1+1=2; max: 2+3=5.
	if got := Compare(GeneralizedJaccard, a, b); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("gen jaccard = %f", got)
	}
	// Identical profiles → 1.
	if got := Compare(GeneralizedJaccard, a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self gen jaccard = %f", got)
	}
}

func TestSiGMaMeasure(t *testing.T) {
	a := mkProfile([2]float64{0, 1}, [2]float64{1, 1})
	b := mkProfile([2]float64{0, 1}, [2]float64{2, 1})
	// shared = (1+1)/2 = 1; total = 2 + 2 - 1 = 3.
	if got := Compare(SiGMa, a, b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("sigma = %f", got)
	}
	if got := Compare(SiGMa, a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self sigma = %f", got)
	}
}

func TestMeasureNames(t *testing.T) {
	names := map[Measure]string{Cosine: "Cosine", Jaccard: "Jaccard", GeneralizedJaccard: "GeneralizedJaccard", SiGMa: "SiGMa"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v name = %q", m, m.String())
		}
	}
	if TF.String() != "TF" || TFIDF.String() != "TF-IDF" {
		t.Error("scheme names wrong")
	}
	if Measure(99).String() != "Measure(?)" {
		t.Error("unknown measure name wrong")
	}
}

// Property: every measure is symmetric, bounded in [0,1], and maximal on
// identical profiles.
func TestMeasureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randProfile := func() Profile {
		n := rng.Intn(8)
		seen := map[int32]bool{}
		var p Profile
		for i := 0; i < n; i++ {
			term := int32(rng.Intn(20))
			if seen[term] {
				continue
			}
			seen[term] = true
			p = append(p, Entry{Term: term, W: rng.Float64()*3 + 0.01})
		}
		sort.Slice(p, func(i, j int) bool { return p[i].Term < p[j].Term })
		return p
	}
	for trial := 0; trial < 200; trial++ {
		a, b := randProfile(), randProfile()
		for _, m := range AllMeasures {
			ab := Compare(m, a, b)
			ba := Compare(m, b, a)
			if math.Abs(ab-ba) > 1e-9 {
				t.Fatalf("%v asymmetric: %f vs %f", m, ab, ba)
			}
			if ab < 0 || ab > 1+1e-9 {
				t.Fatalf("%v out of range: %f", m, ab)
			}
			if len(a) > 0 {
				self := Compare(m, a, a)
				if self < ab-1e-9 {
					t.Fatalf("%v self-similarity %f below cross similarity %f", m, self, ab)
				}
			}
		}
	}
}

func BenchmarkValueSimIDs(b *testing.B) {
	weights := make([]float64, 10000)
	for i := range weights {
		weights[i] = 1 / math.Log2(float64(i%50)+2)
	}
	mk := func(seed int64, n int) []int32 {
		rng := rand.New(rand.NewSource(seed))
		seen := map[int32]bool{}
		var out []int32
		for len(out) < n {
			v := int32(rng.Intn(10000))
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	a := mk(1, 40)
	c := mk(2, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ValueSimIDs(a, c, weights)
	}
}
