// Package linda approximates LINDA (Böhm et al., CIKM 2012), the
// distributed web-of-data matching baseline. LINDA propagates matching
// decisions like SiGMa, but judges two relations compatible only when
// their *labels* are similar — a condition that rarely holds across
// independently designed web vocabularies, which is why LINDA trails
// the other systems in the paper's Table III.
package linda

import (
	"strings"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/propagate"
	"minoaner/internal/sigma"
	"minoaner/internal/strsim"
	"minoaner/internal/tokenize"
)

// Config tunes the approximation.
type Config struct {
	// NameK seeds matches from the top-k name attributes.
	NameK int
	// LabelJaccard is the minimum label similarity between two relation
	// labels (IRI local names) for the relations to count as
	// compatible.
	LabelJaccard float64
	// LabelSimilarity scores two relation labels in [0,1]. Nil selects
	// token Jaccard; strsim.JaroWinkler is a common alternative that
	// tolerates morphological variation ("directedBy" vs "director").
	LabelSimilarity func(a, b string) float64
	// Engine configures the propagation.
	Engine propagate.Config
}

// DefaultConfig returns the standard settings.
func DefaultConfig() Config {
	return Config{NameK: 2, LabelJaccard: 0.5, Engine: propagate.DefaultConfig()}
}

// JaroWinklerConfig is DefaultConfig with Jaro-Winkler label matching —
// a more forgiving reading of LINDA's label-similarity assumption.
func JaroWinklerConfig() Config {
	cfg := DefaultConfig()
	cfg.LabelSimilarity = strsim.JaroWinkler
	cfg.LabelJaccard = 0.8
	return cfg
}

// labelCompat scores relation pairs by the similarity of their labels.
// It learns nothing.
type labelCompat struct {
	kb1, kb2  *kb.KB
	threshold float64
	sim       func(a, b string) float64
	cache     map[[2]int32]float64
}

// Weight implements propagate.Compat.
func (c *labelCompat) Weight(r1, r2 int32) float64 {
	k := [2]int32{r1, r2}
	if w, ok := c.cache[k]; ok {
		return w
	}
	j := c.sim(localName(c.kb1.Pred(r1)), localName(c.kb2.Pred(r2)))
	w := 0.0
	if j >= c.threshold {
		w = j
	}
	c.cache[k] = w
	return w
}

// Learn implements propagate.Compat as a no-op: label evidence is
// static.
func (c *labelCompat) Learn(r1, r2 int32) {}

// labelJaccard is the default label similarity: Jaccard over the
// labels' tokens.
func labelJaccard(iri1, iri2 string) float64 {
	t1 := tokenize.Set(tokenize.Tokens(localName(iri1), tokenize.DefaultOptions))
	t2 := tokenize.Set(tokenize.Tokens(localName(iri2), tokenize.DefaultOptions))
	if len(t1) == 0 || len(t2) == 0 {
		return 0
	}
	inter := 0
	for tok := range t1 {
		if _, ok := t2[tok]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(t1)+len(t2)-inter)
}

func localName(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

// Run executes the LINDA approximation.
func Run(kb1, kb2 *kb.KB, cfg Config) []eval.Pair {
	seeds := sigma.NameSeeds(kb1, kb2, cfg.NameK)
	vs := sigma.ValueSimilarity(kb1, kb2)
	sim := cfg.LabelSimilarity
	if sim == nil {
		sim = labelJaccard
	}
	compat := &labelCompat{
		kb1: kb1, kb2: kb2,
		threshold: cfg.LabelJaccard,
		sim:       sim,
		cache:     make(map[[2]int32]float64),
	}
	return propagate.Run(kb1, kb2, seeds, vs, compat, cfg.Engine)
}
