package linda

import (
	"fmt"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func tr(s, p string, o rdf.Term) rdf.Triple { return rdf.NewTriple(iri(s), iri(p), o) }

func mustKB(t testing.TB, name string, triples []rdf.Triple) *kb.KB {
	t.Helper()
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestLabelJaccard(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"http://v/directed_by", "http://w/directed_by", 1},
		{"http://v/directed_by", "http://w/directed", 0.5},
		{"http://v/starring", "http://w/director", 0},
		{"http://v/", "http://w/x", 0},
	}
	for _, tc := range tests {
		if got := labelJaccard(tc.a, tc.b); got != tc.want {
			t.Errorf("labelJaccard(%q,%q) = %f, want %f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLabelCompatThreshold(t *testing.T) {
	t1 := []rdf.Triple{tr("http://a/x", "http://v/p", lit("v"))}
	kb1 := mustKB(t, "a", t1)
	c := &labelCompat{kb1: kb1, kb2: kb1, threshold: 0.5, sim: labelJaccard, cache: map[[2]int32]float64{}}
	pid, _ := kb1.PredID("http://v/p")
	if w := c.Weight(pid, pid); w != 1 {
		t.Errorf("identical labels weight = %f", w)
	}
	// Learn must be a no-op.
	c.Learn(pid, pid)
}

func TestJaroWinklerConfigTolerance(t *testing.T) {
	// "directedBy" vs "director" fails token Jaccard but passes
	// Jaro-Winkler at 0.8 — JaroWinklerConfig recovers graph evidence
	// where labels vary morphologically.
	if labelJaccard("http://a/directedBy", "http://b/director") != 0 {
		t.Fatal("token jaccard unexpectedly nonzero")
	}
	kb1, kb2, gt := buildLabelPair(t, false) // disjoint labels... but morphologically?
	_ = kb1
	_ = kb2
	_ = gt
	cfg := JaroWinklerConfig()
	if cfg.LabelSimilarity == nil || cfg.LabelJaccard != 0.8 {
		t.Errorf("JaroWinklerConfig wrong: %+v", cfg)
	}
	if s := cfg.LabelSimilarity("directedby", "director"); s < 0.8 {
		t.Errorf("JaroWinkler(directedby, director) = %f, want >= 0.8", s)
	}
}

// buildLabelPair builds movie graphs; when sameLabels is true the two
// vocabularies use the same relation local names, otherwise disjoint
// ones.
func buildLabelPair(t testing.TB, sameLabels bool) (*kb.KB, *kb.KB, *eval.GroundTruth) {
	t.Helper()
	rel2 := "http://vb/directed_by"
	if !sameLabels {
		rel2 = "http://vb/helmedWith"
	}
	var t1, t2 []rdf.Triple
	n := 6
	for i := 0; i < n; i++ {
		m1 := fmt.Sprintf("http://a/m%02d", i)
		m2 := fmt.Sprintf("http://b/m%02d", i)
		title := fmt.Sprintf("Unique Movie %02d", i)
		t1 = append(t1,
			tr(m1, "http://va/title", lit(title)),
			tr(m1, "http://va/directed_by", iri(fmt.Sprintf("http://a/d%02d", i))),
		)
		t2 = append(t2,
			tr(m2, "http://vb/name", lit(title)),
			tr(m2, rel2, iri(fmt.Sprintf("http://b/d%02d", i))),
		)
		// Director names weakly similar: one shared surname token diluted
		// by several unshared ones, so value evidence alone stays below
		// the acceptance threshold and only graph evidence can rescue it.
		t1 = append(t1, tr(fmt.Sprintf("http://a/d%02d", i), "http://va/person",
			lit(fmt.Sprintf("alice maria wonder dirname%02d extra%02da", i, i))))
		t2 = append(t2, tr(fmt.Sprintf("http://b/d%02d", i), "http://vb/person",
			lit(fmt.Sprintf("a m dirname%02d other%02db filler%02dc", i, i, i))))
	}
	kb1, kb2 := mustKB(t, "a", t1), mustKB(t, "b", t2)
	gt := eval.NewGroundTruth()
	for i := 0; i < n; i++ {
		for _, prefix := range []string{"m", "d"} {
			e1, _ := kb1.Lookup(fmt.Sprintf("http://a/%s%02d", prefix, i))
			e2, _ := kb2.Lookup(fmt.Sprintf("http://b/%s%02d", prefix, i))
			if err := gt.Add(e1, e2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return kb1, kb2, gt
}

func TestRunWithSimilarLabels(t *testing.T) {
	kb1, kb2, gt := buildLabelPair(t, true)
	m := eval.Evaluate(Run(kb1, kb2, DefaultConfig()), gt)
	if m.Recall < 0.9 {
		t.Errorf("LINDA with aligned labels: %s", m)
	}
}

func TestRunWithDisjointLabels(t *testing.T) {
	// Relation labels differ entirely, so the graph evidence vanishes;
	// LINDA must recall fewer matches than with aligned labels — its
	// structural weakness on web data (paper §II).
	kb1Same, kb2Same, gtSame := buildLabelPair(t, true)
	mSame := eval.Evaluate(Run(kb1Same, kb2Same, DefaultConfig()), gtSame)
	kb1, kb2, gt := buildLabelPair(t, false)
	m := eval.Evaluate(Run(kb1, kb2, DefaultConfig()), gt)
	if m.Recall >= mSame.Recall {
		t.Errorf("LINDA recall with disjoint labels (%f) should trail aligned labels (%f)", m.Recall, mSame.Recall)
	}
}

func TestRunDeterministic(t *testing.T) {
	kb1, kb2, _ := buildLabelPair(t, true)
	a := Run(kb1, kb2, DefaultConfig())
	b := Run(kb1, kb2, DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
