// Live maintenance of the one-sided blocking substrate and of block
// collections. A mutated KB epoch touches only the keys of the changed
// entities; Prepared.ApplyPatch layers those edits over the frozen
// substrate as a copy-on-write overlay (flattening periodically and on
// ID remaps), and Collection.Patch splices the same edits into a
// key-sorted two-sided collection. Both operations reproduce, key for
// key and member for member, what Prepare / TokenBlocksN /
// NameBlocksN build from scratch over the mutated KBs.
package blocking

import (
	"sort"

	"minoaner/internal/kb"
)

// maxOverlayDepth bounds the overlay chain before ApplyPatch flattens:
// lookups walk the chain, so unbounded depth would make probes degrade
// with mutation count.
const maxOverlayDepth = 8

// KeyEdit rewrites one posting: members to drop and members to insert,
// both ascending. A member present in both lists stays (remove then
// re-add), so callers can submit an entity's full old and new key sets
// without intersecting them first.
type KeyEdit struct {
	Key    string
	Remove []kb.EntityID
	Add    []kb.EntityID
}

// PreparedPatch is one epoch's worth of substrate edits. Remap, when
// non-nil, translates every surviving member from the old ID space
// (-1 marks deleted entities) and NewSize is the mutated KB's entity
// count; edits are expressed in the new space.
type PreparedPatch struct {
	Tokens  []KeyEdit
	Names   []KeyEdit
	Remap   []kb.EntityID
	NewSize int
}

// ApplyPatch returns the substrate with the patch applied. Without a
// remap the result is an overlay sharing every untouched posting with
// the receiver (flattened once the chain grows past a small depth);
// with a remap every posting is rewritten. The receiver is unchanged
// and both remain safe for concurrent probes.
func (p *Prepared) ApplyPatch(pt PreparedPatch) *Prepared {
	if pt.Remap != nil {
		flat := p.flattenRemapped(pt.Remap, pt.NewSize)
		applyEditsFlat(flat.tokens, pt.Tokens, flat.lookupToken)
		applyEditsFlat(flat.names, pt.Names, flat.lookupName)
		return flat
	}
	out := &Prepared{
		n1:     p.n1,
		nameK:  p.nameK,
		tokens: editLayer(pt.Tokens, p.lookupToken),
		names:  editLayer(pt.Names, p.lookupName),
		base:   p,
		depth:  p.depth + 1,
	}
	if out.depth > maxOverlayDepth {
		return out.Flatten()
	}
	return out
}

// editLayer materializes one overlay layer: the edited postings only
// (empty slices are tombstones).
func editLayer(edits []KeyEdit, lookup func(string) []kb.EntityID) map[string][]kb.EntityID {
	layer := make(map[string][]kb.EntityID, len(edits))
	for _, e := range edits {
		layer[e.Key] = applyEdit(lookup(e.Key), e)
	}
	return layer
}

// applyEditsFlat applies edits directly onto flat maps (the remap
// path), deleting keys whose postings empty out.
func applyEditsFlat(m map[string][]kb.EntityID, edits []KeyEdit, lookup func(string) []kb.EntityID) {
	for _, e := range edits {
		members := applyEdit(lookup(e.Key), e)
		if len(members) == 0 {
			delete(m, e.Key)
		} else {
			m[e.Key] = members
		}
	}
}

// applyEdit merges one posting with its edit, preserving ascending
// order and uniqueness.
func applyEdit(old []kb.EntityID, e KeyEdit) []kb.EntityID {
	out := make([]kb.EntityID, 0, len(old)+len(e.Add))
	ri, ai := 0, 0
	for _, id := range old {
		for ai < len(e.Add) && e.Add[ai] < id {
			out = append(out, e.Add[ai])
			ai++
		}
		for ri < len(e.Remove) && e.Remove[ri] < id {
			ri++
		}
		if ri < len(e.Remove) && e.Remove[ri] == id {
			ri++
			continue
		}
		if ai < len(e.Add) && e.Add[ai] == id {
			ai++ // re-added member: keep exactly one copy
		}
		out = append(out, id)
	}
	out = append(out, e.Add[ai:]...)
	return out
}

// TokenPosting returns the token posting of a key (nil when the key
// blocks nothing), resolving overlay layers. Callers must not mutate
// the returned slice.
func (p *Prepared) TokenPosting(key string) []kb.EntityID { return p.lookupToken(key) }

// NamePosting is TokenPosting for name keys.
func (p *Prepared) NamePosting(key string) []kb.EntityID { return p.lookupName(key) }

// lookupToken resolves a token posting through the overlay chain; nil
// means the key blocks nothing (absent or tombstoned).
func (p *Prepared) lookupToken(key string) []kb.EntityID {
	for q := p; q != nil; q = q.base {
		if members, ok := q.tokens[key]; ok {
			return members
		}
	}
	return nil
}

// lookupName is lookupToken for name postings.
func (p *Prepared) lookupName(key string) []kb.EntityID {
	for q := p; q != nil; q = q.base {
		if members, ok := q.names[key]; ok {
			return members
		}
	}
	return nil
}

// forEachPosting visits every live posting of one side (side selects
// the token or name maps), in no particular order.
func (p *Prepared) forEachPosting(side func(*Prepared) map[string][]kb.EntityID, fn func(key string, members []kb.EntityID)) {
	if p.base == nil {
		for key, members := range side(p) {
			if len(members) > 0 {
				fn(key, members)
			}
		}
		return
	}
	shadowed := make(map[string]struct{})
	for q := p; q != nil; q = q.base {
		for key, members := range side(q) {
			if _, seen := shadowed[key]; seen {
				continue
			}
			shadowed[key] = struct{}{}
			if len(members) > 0 {
				fn(key, members)
			}
		}
	}
}

func tokenSide(p *Prepared) map[string][]kb.EntityID { return p.tokens }
func nameSide(p *Prepared) map[string][]kb.EntityID  { return p.names }

// Flatten collapses an overlay chain into a single-layer substrate
// (identity for already-flat ones). Serialization and compaction use
// it; probes work on any depth.
//
//minoaner:mutator out is allocated here and unpublished until return; the receiver is never written
func (p *Prepared) Flatten() *Prepared {
	if p.base == nil {
		return p
	}
	out := &Prepared{
		n1:     p.n1,
		nameK:  p.nameK,
		tokens: make(map[string][]kb.EntityID),
		names:  make(map[string][]kb.EntityID),
	}
	p.forEachPosting(tokenSide, func(key string, members []kb.EntityID) { out.tokens[key] = members })
	p.forEachPosting(nameSide, func(key string, members []kb.EntityID) { out.names[key] = members })
	return out
}

// Depth returns the overlay depth (0 for a flat substrate).
func (p *Prepared) Depth() int { return p.depth }

// flattenRemapped flattens while translating every member through the
// remap, dropping deleted entities and postings that empty out.
//
//minoaner:mutator out is allocated here and unpublished until return; the receiver is never written
func (p *Prepared) flattenRemapped(remap []kb.EntityID, newSize int) *Prepared {
	out := &Prepared{
		n1:     newSize,
		nameK:  p.nameK,
		tokens: make(map[string][]kb.EntityID),
		names:  make(map[string][]kb.EntityID),
	}
	move := func(members []kb.EntityID) []kb.EntityID {
		mapped := make([]kb.EntityID, 0, len(members))
		for _, id := range members {
			if nid := remap[id]; nid >= 0 {
				mapped = append(mapped, nid)
			}
		}
		if len(mapped) == 0 {
			return nil
		}
		return mapped
	}
	p.forEachPosting(tokenSide, func(key string, members []kb.EntityID) {
		if mapped := move(members); mapped != nil {
			out.tokens[key] = mapped
		}
	})
	p.forEachPosting(nameSide, func(key string, members []kb.EntityID) {
		if mapped := move(members); mapped != nil {
			out.names[key] = mapped
		}
	})
	return out
}

// RebuildNames returns the substrate with its name postings rebuilt
// from scratch for the given KB and name-K — the fallback when a
// mutation reorders the KB's most distinctive attributes, which
// invalidates every name key at once. Token postings are shared (the
// receiver is flattened first so the result is single-layer).
func (p *Prepared) RebuildNames(kb1 *kb.KB, nameK, workers int) *Prepared {
	flat := p.Flatten()
	attrs := kb1.TopNameAttributes(nameK)
	names := entityNames(kb1, attrs, workers)
	return &Prepared{
		n1:     flat.n1,
		nameK:  nameK,
		tokens: flat.tokens,
		names:  buildPostings(workers, kb1.Len(), func(e int) []string { return names[e] }),
	}
}

// JoinTokenBlocks derives the two-sided token-block collection of a KB
// pair from the two one-sided substrates: one block per key held by
// both sides, member slices shared with the postings. The result is
// bit-identical to TokenBlocksN over the same KBs.
func JoinTokenBlocks(p1, p2 *Prepared) *Collection {
	return join(p1, p2, tokenSide, (*Prepared).lookupToken)
}

// JoinNameBlocks is JoinTokenBlocks for name blocks, bit-identical to
// NameBlocksN.
func JoinNameBlocks(p1, p2 *Prepared) *Collection {
	return join(p1, p2, nameSide, (*Prepared).lookupName)
}

func join(p1, p2 *Prepared, side func(*Prepared) map[string][]kb.EntityID, lookup func(*Prepared, string) []kb.EntityID) *Collection {
	c := NewCollection(p1.n1, p2.n1)
	p1.forEachPosting(side, func(key string, e1 []kb.EntityID) {
		if e2 := lookup(p2, key); len(e2) > 0 {
			c.Blocks = append(c.Blocks, Block{Key: key, E1: e1, E2: e2})
		}
	})
	c.sortBlocks()
	return c
}

// CollectionPatch updates a key-sorted two-sided collection for one
// epoch: the changed keys (sorted, unique) are re-derived through the
// post-patch substrate lookups, every other block survives with its
// members remapped (or shared outright when the side's IDs did not
// move).
type CollectionPatch struct {
	Keys             []string
	Lookup1, Lookup2 func(key string) []kb.EntityID
	Remap1, Remap2   []kb.EntityID // old->new, -1 deleted; nil = identity
	N1, N2           int           // mutated KB sizes
}

// Patch returns the patched collection; the receiver is unchanged.
func (c *Collection) Patch(p CollectionPatch) *Collection {
	out := NewCollection(p.N1, p.N2)
	out.Blocks = make([]Block, 0, len(c.Blocks)+len(p.Keys))
	emit := func(key string) {
		e1, e2 := p.Lookup1(key), p.Lookup2(key)
		if len(e1) > 0 && len(e2) > 0 {
			out.Blocks = append(out.Blocks, Block{Key: key, E1: e1, E2: e2})
		}
	}
	ki := 0
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for ki < len(p.Keys) && p.Keys[ki] < b.Key {
			emit(p.Keys[ki]) // key absent before, possibly a block now
			ki++
		}
		if ki < len(p.Keys) && p.Keys[ki] == b.Key {
			emit(p.Keys[ki])
			ki++
			continue
		}
		e1 := remapMembers(b.E1, p.Remap1)
		e2 := remapMembers(b.E2, p.Remap2)
		if len(e1) == 0 || len(e2) == 0 {
			continue // every member was a deleted entity: block vanishes
		}
		out.Blocks = append(out.Blocks, Block{Key: b.Key, E1: e1, E2: e2})
	}
	for ; ki < len(p.Keys); ki++ {
		emit(p.Keys[ki])
	}
	return out
}

// remapMembers translates a member list (identity when remap is nil),
// dropping deleted entities — deletions are carried entirely by the
// remap, so deleted members appear in otherwise-untouched blocks.
func remapMembers(members []kb.EntityID, remap []kb.EntityID) []kb.EntityID {
	if remap == nil {
		return members
	}
	out := make([]kb.EntityID, 0, len(members))
	for _, id := range members {
		if nid := remap[id]; nid >= 0 {
			out = append(out, nid)
		}
	}
	return out
}

// SortedKeySet deduplicates and sorts a key list (the Keys input of
// Patch).
func SortedKeySet(keys []string) []string {
	sort.Strings(keys)
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

// BuildPreparedPatch derives the substrate patch of one KB mutation
// from the epoch diff: every changed entity removes its old token and
// name keys and adds its new ones, inserted entities add theirs, and
// deleted entities are handled by the remap (their IDs translate to
// -1). The name-attribute lists must rank the same predicates on both
// sides — when a mutation reorders a KB's most distinctive attributes,
// fall back to RebuildNames instead.
func BuildPreparedPatch(old, new *kb.KB, d *kb.Diff, oldNameAttrs, newNameAttrs []int32) PreparedPatch {
	tokens := make(map[string]*KeyEdit)
	names := make(map[string]*KeyEdit)
	edit := func(m map[string]*KeyEdit, key string) *KeyEdit {
		e := m[key]
		if e == nil {
			e = &KeyEdit{Key: key}
			m[key] = e
		}
		return e
	}
	for _, e := range d.AttrsChanged {
		oldID := d.Back[e]
		for _, tok := range old.Tokens(oldID) {
			ke := edit(tokens, tok)
			ke.Remove = append(ke.Remove, e)
		}
		for _, tok := range new.Tokens(e) {
			ke := edit(tokens, tok)
			ke.Add = append(ke.Add, e)
		}
		for _, key := range old.Names(oldID, oldNameAttrs) {
			ke := edit(names, key)
			ke.Remove = append(ke.Remove, e)
		}
		for _, key := range new.Names(e, newNameAttrs) {
			ke := edit(names, key)
			ke.Add = append(ke.Add, e)
		}
	}
	for _, e := range d.Inserted {
		for _, tok := range new.Tokens(e) {
			ke := edit(tokens, tok)
			ke.Add = append(ke.Add, e)
		}
		for _, key := range new.Names(e, newNameAttrs) {
			ke := edit(names, key)
			ke.Add = append(ke.Add, e)
		}
	}
	// Deleted entities are dropped by the remap itself; their keys are
	// still recorded (as empty edits) so every downstream consumer —
	// collection patching, affected-set scoring — sees those blocks as
	// changed.
	for _, oldID := range d.Deleted {
		for _, tok := range old.Tokens(oldID) {
			edit(tokens, tok)
		}
		for _, key := range old.Names(oldID, oldNameAttrs) {
			edit(names, key)
		}
	}
	pt := PreparedPatch{Tokens: finalizeEdits(tokens), Names: finalizeEdits(names), NewSize: new.Len()}
	if d.Shifted() {
		pt.Remap = d.Remap
	}
	return pt
}

// finalizeEdits orders the edit set deterministically: keys ascending,
// member lists ascending.
func finalizeEdits(m map[string]*KeyEdit) []KeyEdit {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]KeyEdit, 0, len(keys))
	for _, k := range keys {
		e := m[k]
		sortIDs(e.Remove)
		sortIDs(e.Add)
		out = append(out, *e)
	}
	return out
}

func sortIDs(ids []kb.EntityID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
