package blocking

// Equivalence guard for key-sharded blocking: TokenBlocksN, NameBlocksN
// and BuildIndexN must produce collections and indexes bit-identical to
// the sequential path at every worker count, on all four synthetic
// benchmarks.

import (
	"reflect"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
)

var shardWorkerCounts = []int{2, 4, 8}

func equivalenceDatasets(t *testing.T) []*datagen.Dataset {
	t.Helper()
	var out []*datagen.Dataset
	for _, g := range datagen.Generators() {
		ds, err := g.Build(datagen.Options{Seed: 42, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ds)
	}
	return out
}

func TestTokenBlocksShardedBitIdentical(t *testing.T) {
	for _, ds := range equivalenceDatasets(t) {
		want := TokenBlocksN(ds.KB1, ds.KB2, 1)
		for _, w := range shardWorkerCounts {
			got := TokenBlocksN(ds.KB1, ds.KB2, w)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: TokenBlocksN(workers=%d) differs from sequential", ds.Name, w)
			}
		}
	}
}

func TestNameBlocksShardedBitIdentical(t *testing.T) {
	for _, ds := range equivalenceDatasets(t) {
		want := NameBlocksN(ds.KB1, ds.KB2, 2, 1)
		for _, w := range shardWorkerCounts {
			got := NameBlocksN(ds.KB1, ds.KB2, 2, w)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: NameBlocksN(workers=%d) differs from sequential", ds.Name, w)
			}
		}
	}
}

func TestBuildIndexShardedBitIdentical(t *testing.T) {
	for _, ds := range equivalenceDatasets(t) {
		c := TokenBlocksN(ds.KB1, ds.KB2, 1)
		want := c.BuildIndexN(1)
		for _, w := range shardWorkerCounts {
			got := c.BuildIndexN(w)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: BuildIndexN(workers=%d) differs from sequential", ds.Name, w)
			}
		}
	}
}

func TestBuildIndexMoreWorkersThanBlocks(t *testing.T) {
	c := NewCollection(3, 3)
	c.Blocks = []Block{{Key: "k", E1: []kb.EntityID{0, 2}, E2: []kb.EntityID{1}}}
	want := c.BuildIndexN(1)
	got := c.BuildIndexN(64)
	if !reflect.DeepEqual(got, want) {
		t.Error("BuildIndexN with more workers than blocks diverged")
	}
}
