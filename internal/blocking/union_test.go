package blocking

import (
	"reflect"
	"strings"
	"testing"

	"minoaner/internal/kb"
)

func TestUnionMismatchedSizesPanics(t *testing.T) {
	a := NewCollection(10, 20)
	b := NewCollection(10, 21)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Union over mismatched KB sizes did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "mismatched KB sizes") {
			t.Errorf("panic message = %v, want a mismatched-sizes explanation", r)
		}
	}()
	Union("A:", a, "B:", b)
}

func TestUnionDoesNotAliasInputs(t *testing.T) {
	a := NewCollection(4, 4)
	a.Blocks = []Block{{Key: "x", E1: []kb.EntityID{0, 1}, E2: []kb.EntityID{2}}}
	b := NewCollection(4, 4)
	b.Blocks = []Block{{Key: "y", E1: []kb.EntityID{3}, E2: []kb.EntityID{0, 3}}}

	u := Union("A:", a, "B:", b)
	if u.Size() != 2 {
		t.Fatalf("union size = %d, want 2", u.Size())
	}

	// Mutating the union must not write through to the inputs.
	for i := range u.Blocks {
		for j := range u.Blocks[i].E1 {
			u.Blocks[i].E1[j] = 99
		}
		for j := range u.Blocks[i].E2 {
			u.Blocks[i].E2[j] = 99
		}
	}
	if !reflect.DeepEqual(a.Blocks[0].E1, []kb.EntityID{0, 1}) || !reflect.DeepEqual(a.Blocks[0].E2, []kb.EntityID{2}) {
		t.Errorf("input a mutated through the union: %+v", a.Blocks[0])
	}
	if !reflect.DeepEqual(b.Blocks[0].E1, []kb.EntityID{3}) || !reflect.DeepEqual(b.Blocks[0].E2, []kb.EntityID{0, 3}) {
		t.Errorf("input b mutated through the union: %+v", b.Blocks[0])
	}
}

func TestUnionKeepsSizesAndIndexes(t *testing.T) {
	a := NewCollection(4, 5)
	a.Blocks = []Block{{Key: "x", E1: []kb.EntityID{3}, E2: []kb.EntityID{4}}}
	b := NewCollection(4, 5)
	b.Blocks = []Block{{Key: "y", E1: []kb.EntityID{0}, E2: []kb.EntityID{1}}}
	u := Union("A:", a, "B:", b)
	n1, n2 := u.KBSizes()
	if n1 != 4 || n2 != 5 {
		t.Fatalf("union sizes = (%d,%d), want (4,5)", n1, n2)
	}
	// BuildIndex over the union must address every member in range.
	idx := u.BuildIndex()
	if len(idx.ByE1) != 4 || len(idx.ByE2) != 5 {
		t.Errorf("index sized (%d,%d), want (4,5)", len(idx.ByE1), len(idx.ByE2))
	}
	if len(idx.ByE1[3]) != 1 || len(idx.ByE2[4]) != 1 {
		t.Error("union members missing from the index")
	}
}
