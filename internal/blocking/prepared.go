package blocking

import (
	"context"
	"sort"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// Prepared is the frozen one-sided blocking substrate of a KB: every
// token and name key of the KB mapped to its member entities, built
// once so that delta queries probe it with only the delta's keys
// instead of re-scanning the KB per query. A probed collection is
// bit-identical to the one TokenBlocksN/NameBlocksN build for the same
// pair, so downstream purging, weighting, and matching see exactly the
// evidence the full construction would produce.
//
// The per-key entity lists double as the KB-side EF counts of the ARCS
// weights (EF_KB(t) == len(posting)), and Purge derives its
// comparison-cutoff thresholds from the probed collection unchanged.
//
// Prepared is immutable after Prepare and safe for concurrent probes.
// A mutated KB epoch derives its substrate with ApplyPatch (see
// patch.go), which layers the touched keys over the frozen base as a
// copy-on-write overlay instead of rebuilding the inverted index.
//
//minoaner:frozen
type Prepared struct {
	n1    int
	nameK int
	// tokens and names map each blocking key of the prepared KB to its
	// member entities in ascending ID order. On an overlay layer they
	// hold only the edited keys (empty slices tombstone vanished
	// keys); lookups fall through to base.
	tokens map[string][]kb.EntityID
	names  map[string][]kb.EntityID
	base   *Prepared
	depth  int
}

// Prepare builds the frozen substrate of kb1 for the given name-K,
// across the given worker count (<= 0 selects GOMAXPROCS). The result
// is identical at every count.
func Prepare(kb1 *kb.KB, nameK, workers int) *Prepared {
	w := parallel.Workers(workers)
	p := &Prepared{n1: kb1.Len(), nameK: nameK}
	p.tokens = buildPostings(w, kb1.Len(), func(e int) []string { return kb1.Tokens(kb.EntityID(e)) })
	attrs := kb1.TopNameAttributes(nameK)
	names := entityNames(kb1, attrs, w)
	p.names = buildPostings(w, kb1.Len(), func(e int) []string { return names[e] })
	return p
}

// buildPostings inverts per-entity key lists into key -> members. Keys
// are sharded by hash across workers (as in shardedBlocks), and each
// worker scans the entities in ID order, so member lists are ascending
// and the merged map is independent of the worker count.
func buildPostings(workers, n int, keys func(e int) []string) map[string][]kb.EntityID {
	scan := func(shard, workers int) map[string][]kb.EntityID {
		m := make(map[string][]kb.EntityID)
		for e := 0; e < n; e++ {
			for _, key := range keys(e) {
				if shard != singleShard && parallel.ShardOf(key, workers) != shard {
					continue
				}
				m[key] = append(m[key], kb.EntityID(e))
			}
		}
		return m
	}
	if workers <= 1 {
		return scan(singleShard, 1)
	}
	shards := make([]map[string][]kb.EntityID, workers)
	_ = parallel.For(context.Background(), workers, workers, func(w, _, _ int) error {
		shards[w] = scan(w, workers)
		return nil
	})
	// Each key lives in exactly one shard; merging is a plain union.
	total := 0
	for _, m := range shards {
		total += len(m)
	}
	out := make(map[string][]kb.EntityID, total)
	for _, m := range shards {
		for key, members := range m {
			out[key] = members
		}
	}
	return out
}

// KBSize returns the entity count of the prepared KB.
func (p *Prepared) KBSize() int { return p.n1 }

// NameK returns the name-attribute count the substrate was prepared
// for; a probe is only valid under the same parameter.
func (p *Prepared) NameK() int { return p.nameK }

// Tokens returns the number of prepared token keys.
func (p *Prepared) Tokens() int { return p.countKeys(tokenSide) }

// Names returns the number of prepared name keys.
func (p *Prepared) Names() int { return p.countKeys(nameSide) }

func (p *Prepared) countKeys(side func(*Prepared) map[string][]kb.EntityID) int {
	if p.base == nil {
		return len(side(p))
	}
	n := 0
	p.forEachPosting(side, func(string, []kb.EntityID) { n++ })
	return n
}

// probeCancelStride is how many delta entities a probe scans between
// context checks.
const probeCancelStride = 1024

// ProbeTokenBlocks builds the token-block collection of (prepared KB,
// delta) by probing the frozen token index with the delta's tokens
// only: O(delta tokens) work instead of a full re-scan of the prepared
// KB. The result is bit-identical to TokenBlocksN(kb1, delta) — same
// blocks, same key order, same member order. KB-side member slices are
// shared with the substrate; callers must not mutate them.
func (p *Prepared) ProbeTokenBlocks(ctx context.Context, delta *kb.KB) (*Collection, error) {
	return p.probe(ctx, delta.Len(), p.lookupToken, func(e int) []string { return delta.Tokens(kb.EntityID(e)) })
}

// ProbeNameBlocks builds the name-block collection of (prepared KB,
// delta) by probing the frozen name index with the delta's name keys.
// The delta's own top name attributes are derived from the delta, as in
// the full construction; the result is bit-identical to
// NameBlocksN(kb1, delta, nameK).
func (p *Prepared) ProbeNameBlocks(ctx context.Context, delta *kb.KB) (*Collection, error) {
	attrs := delta.TopNameAttributes(p.nameK)
	return p.probe(ctx, delta.Len(), p.lookupName, func(e int) []string { return delta.Names(kb.EntityID(e), attrs) })
}

// probe assembles the two-sided blocks for the delta's keys: a key
// yields a block exactly when the prepared side holds it, mirroring the
// full construction's drop of single-sided blocks. Delta members are
// appended in entity order and blocks sorted by key, matching
// fromKeyMaps exactly.
func (p *Prepared) probe(ctx context.Context, nDelta int, lookup func(string) []kb.EntityID, keys func(e int) []string) (*Collection, error) {
	type bucket struct {
		e1, e2 []kb.EntityID
	}
	buckets := make(map[string]*bucket)
	for e := 0; e < nDelta; e++ {
		if e%probeCancelStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		id := kb.EntityID(e)
		for _, key := range keys(e) {
			b := buckets[key]
			if b == nil {
				members := lookup(key)
				if len(members) == 0 {
					continue
				}
				b = &bucket{e1: members}
				buckets[key] = b
			}
			b.e2 = append(b.e2, id)
		}
	}
	c := NewCollection(p.n1, nDelta)
	c.Blocks = make([]Block, 0, len(buckets))
	for key, b := range buckets {
		c.Blocks = append(c.Blocks, Block{Key: key, E1: b.e1, E2: b.e2})
	}
	c.sortBlocks()
	return c, nil
}

// BuildIndexSide2 indexes only the delta side of a (typically probed)
// collection: entity -> ascending block positions, exactly the ByE2
// half of BuildIndex without paying O(|KB1|) for the other side.
func (c *Collection) BuildIndexSide2() [][]int32 {
	by := make([][]int32, c.n2)
	for bi := range c.Blocks {
		for _, e := range c.Blocks[bi].E2 {
			by[e] = append(by[e], int32(bi))
		}
	}
	return by
}

// BuildIndexSide1Sparse indexes the prepared side of a probed
// collection as a sparse map — only entities that actually appear in a
// block get an entry, so the cost is the collection's side-1 membership
// rather than O(|KB1|). Lists are in ascending block position, matching
// BuildIndex's ByE1 entries for the touched entities.
func (c *Collection) BuildIndexSide1Sparse() map[kb.EntityID][]int32 {
	by := make(map[kb.EntityID][]int32)
	for bi := range c.Blocks {
		for _, e := range c.Blocks[bi].E1 {
			by[e] = append(by[e], int32(bi))
		}
	}
	return by
}

// sortedKeys returns map keys in ascending order (for deterministic
// serialization).
func sortedKeys(m map[string][]kb.EntityID) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
