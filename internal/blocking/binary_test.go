package blocking

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"minoaner/internal/binio"
	"minoaner/internal/datagen"
)

func collectionRoundTrip(t *testing.T, c *Collection) *Collection {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestCollectionBinaryRoundTrip(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"alpha beta", "gamma delta", "epsilon"})
	kb2 := kbFromValues(t, "b", []string{"alpha gamma", "delta epsilon"})
	c := TokenBlocks(kb1, kb2)
	back := collectionRoundTrip(t, c)

	if !reflect.DeepEqual(back.Blocks, c.Blocks) {
		t.Fatalf("blocks differ after round trip:\n%v\n%v", back.Blocks, c.Blocks)
	}
	n1, n2 := back.KBSizes()
	wantN1, wantN2 := c.KBSizes()
	if n1 != wantN1 || n2 != wantN2 {
		t.Errorf("KB sizes (%d,%d), want (%d,%d)", n1, n2, wantN1, wantN2)
	}
	if back.Comparisons() != c.Comparisons() {
		t.Errorf("comparisons differ")
	}
	// The rebuilt index over the reloaded collection is identical.
	if !reflect.DeepEqual(back.BuildIndex(), c.BuildIndex()) {
		t.Error("index over reloaded collection differs")
	}
}

func TestCollectionBinaryRoundTripEmpty(t *testing.T) {
	c := NewCollection(5, 7)
	back := collectionRoundTrip(t, c)
	if back.Size() != 0 {
		t.Errorf("size = %d", back.Size())
	}
	if n1, n2 := back.KBSizes(); n1 != 5 || n2 != 7 {
		t.Errorf("KB sizes (%d,%d)", n1, n2)
	}
}

// TestCollectionBinaryBitIdentityBenchmarks is the acceptance property
// on the blocking side: Write -> Read -> Write is bit-identical for the
// token and name block collections of all four benchmarks.
func TestCollectionBinaryBitIdentityBenchmarks(t *testing.T) {
	for _, g := range datagen.Generators() {
		t.Run(g.Name, func(t *testing.T) {
			ds, err := g.Build(datagen.Options{Seed: 42, Scale: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			for name, c := range map[string]*Collection{
				"token": TokenBlocks(ds.KB1, ds.KB2),
				"name":  NameBlocks(ds.KB1, ds.KB2, 2),
			} {
				var first bytes.Buffer
				if err := c.WriteBinary(&first); err != nil {
					t.Fatal(err)
				}
				back, err := ReadBinary(bytes.NewReader(first.Bytes()))
				if err != nil {
					t.Fatalf("%s blocks: %v", name, err)
				}
				var second bytes.Buffer
				if err := back.WriteBinary(&second); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Errorf("%s blocks not bit-identical after reload (%d vs %d bytes)",
						name, first.Len(), second.Len())
				}
			}
		})
	}
}

func TestCollectionBinaryRejectsCorruption(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"alpha beta", "gamma"})
	kb2 := kbFromValues(t, "b", []string{"alpha gamma"})
	var buf bytes.Buffer
	if err := TokenBlocks(kb1, kb2).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] = 'X'
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[4] = 42
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Error("bad version accepted")
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for off := 5; off < len(data); off++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x04
			if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
				t.Errorf("bit flip at %d accepted", off)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
}

// TestCollectionBinaryRejectsOutOfRange builds a hostile payload whose
// checksums are valid but whose member IDs exceed the declared KB
// sizes: referential validation must catch what the CRC cannot.
func TestCollectionBinaryRejectsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Raw([]byte("MBC1"))
	w.Uvarint(1)
	w.Section(1, func(e *binio.Writer) {
		e.Int(2) // n1
		e.Int(2) // n2
		e.Int(1) // one block
	})
	w.Section(2, func(e *binio.Writer) {
		e.Str("key")
		e.Int(1)
		e.Uvarint(9) // out of range for n1=2
		e.Int(1)
		e.Uvarint(0)
	})
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); !errors.Is(err, errCorrupt) {
		t.Errorf("out-of-range member: err = %v", err)
	}
}
