package blocking

import (
	"fmt"
	"sort"

	"minoaner/internal/kb"
	"minoaner/internal/tokenize"
)

// Attribute-clustering blocking (Papadakis et al., TKDE 2013 — the
// schema-agnostic blocking family the paper builds on): instead of one
// global token namespace, attributes of the two KBs are first clustered
// by the similarity of their *value distributions*; token keys are then
// qualified by their attribute's cluster, so a token only co-occurs
// across KBs when it appears under comparable attributes. This retains
// Token Blocking's schema independence while cutting the comparisons
// that stem from token collisions across unrelated attributes.

// AttributeClusters maps every attribute predicate of both KBs to a
// cluster ID. Cluster 0 is the "glue" cluster for attributes without a
// sufficiently similar partner.
type AttributeClusters struct {
	ByKB1 map[int32]int
	ByKB2 map[int32]int
	Count int
}

// ClusterAttributes groups the attributes of the two KBs: each KB1
// attribute is linked to its most value-similar KB2 attribute (token
// Jaccard over sampled value tokens) when that similarity reaches
// minSim, and connected components of the resulting links become
// clusters. maxTokens bounds the per-attribute token sample.
func ClusterAttributes(kb1, kb2 *kb.KB, minSim float64, maxTokens int) *AttributeClusters {
	if maxTokens <= 0 {
		maxTokens = 1000
	}
	prof1 := attributeProfiles(kb1, maxTokens)
	prof2 := attributeProfiles(kb2, maxTokens)

	// Best partner per KB1 attribute and per KB2 attribute.
	type link struct {
		a, b int32
	}
	var links []link
	for _, p1 := range prof1 {
		bestSim := 0.0
		var best int32 = -1
		for _, p2 := range prof2 {
			if s := tokenJaccard(p1.tokens, p2.tokens); s > bestSim {
				bestSim = s
				best = p2.pred
			}
		}
		if best >= 0 && bestSim >= minSim {
			links = append(links, link{a: p1.pred, b: best})
		}
	}
	for _, p2 := range prof2 {
		bestSim := 0.0
		var best int32 = -1
		for _, p1 := range prof1 {
			if s := tokenJaccard(p2.tokens, p1.tokens); s > bestSim {
				bestSim = s
				best = p1.pred
			}
		}
		if best >= 0 && bestSim >= minSim {
			links = append(links, link{a: best, b: p2.pred})
		}
	}

	// Union-find over the bipartite links.
	uf := newUnionFind()
	for _, l := range links {
		uf.union(node{1, l.a}, node{2, l.b})
	}
	clusters := &AttributeClusters{
		ByKB1: make(map[int32]int),
		ByKB2: make(map[int32]int),
	}
	ids := map[node]int{}
	next := 1 // 0 is the glue cluster
	assign := func(side uint8, pred int32, out map[int32]int) {
		n := node{side, pred}
		root, ok := uf.find(n)
		if !ok {
			out[pred] = 0 // unlinked → glue cluster
			return
		}
		id, seen := ids[root]
		if !seen {
			id = next
			next++
			ids[root] = id
		}
		out[pred] = id
	}
	for _, p := range prof1 {
		assign(1, p.pred, clusters.ByKB1)
	}
	for _, p := range prof2 {
		assign(2, p.pred, clusters.ByKB2)
	}
	clusters.Count = next
	return clusters
}

// AttributeClusteredBlocks builds token blocks whose keys are qualified
// by attribute cluster: key = "<cluster>|<token>". Tokens under the
// glue cluster collide globally (preserving recall for unlinked
// attributes); tokens under a real cluster only collide within it.
func AttributeClusteredBlocks(kb1, kb2 *kb.KB, clusters *AttributeClusters) *Collection {
	keys := make(map[string]*keyBucket)
	collect := func(k *kb.KB, byPred map[int32]int, side int) {
		for i := 0; i < k.Len(); i++ {
			id := kb.EntityID(i)
			seen := make(map[string]struct{})
			for _, av := range k.Entity(id).Attrs {
				cluster := byPred[av.Pred]
				for _, tok := range tokenize.Tokens(av.Value, tokenize.DefaultOptions) {
					key := fmt.Sprintf("%d|%s", cluster, tok)
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					if side == 1 {
						b := keys[key]
						if b == nil {
							b = &keyBucket{}
							keys[key] = b
						}
						b.e1 = append(b.e1, id)
					} else {
						b := keys[key]
						if b == nil {
							continue // key absent from KB1: can never pair
						}
						b.e2 = append(b.e2, id)
					}
				}
			}
		}
	}
	collect(kb1, clusters.ByKB1, 1)
	collect(kb2, clusters.ByKB2, 2)
	return fromKeyMaps([]map[string]*keyBucket{keys}, kb1.Len(), kb2.Len())
}

type attrProfile struct {
	pred   int32
	tokens map[string]struct{}
}

// attributeProfiles samples up to maxTokens distinct value tokens per
// attribute, in deterministic entity order.
func attributeProfiles(k *kb.KB, maxTokens int) []attrProfile {
	byPred := make(map[int32]map[string]struct{})
	for i := 0; i < k.Len(); i++ {
		for _, av := range k.Entity(kb.EntityID(i)).Attrs {
			set := byPred[av.Pred]
			if set == nil {
				set = make(map[string]struct{})
				byPred[av.Pred] = set
			}
			if len(set) >= maxTokens {
				continue
			}
			for _, tok := range tokenize.Tokens(av.Value, tokenize.DefaultOptions) {
				if len(set) >= maxTokens {
					break
				}
				set[tok] = struct{}{}
			}
		}
	}
	out := make([]attrProfile, 0, len(byPred))
	for pred, set := range byPred {
		out = append(out, attrProfile{pred: pred, tokens: set})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pred < out[j].pred })
	return out
}

func tokenJaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for tok := range small {
		if _, ok := large[tok]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// node identifies an attribute on one side of the bipartite link graph.
type node struct {
	side uint8
	pred int32
}

type unionFind struct {
	parent map[node]node
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[node]node)} }

func (u *unionFind) find(n node) (node, bool) {
	p, ok := u.parent[n]
	if !ok {
		return n, false
	}
	for p != n {
		u.parent[n] = u.parent[p]
		n = p
		p = u.parent[n]
	}
	return n, true
}

func (u *unionFind) union(a, b node) {
	ra := u.root(a)
	rb := u.root(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// root is find with auto-registration.
func (u *unionFind) root(n node) node {
	if _, ok := u.parent[n]; !ok {
		u.parent[n] = n
	}
	r, _ := u.find(n)
	return r
}
