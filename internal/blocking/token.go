package blocking

import "minoaner/internal/kb"

// TokenBlocks applies Token Blocking to the two KBs: every distinct
// token appearing in the values of entities of both KBs becomes a block
// whose members are the entities containing it (paper §III, H2: "H2
// applies Token Blocking to the input KBs, yielding a set of blocks
// B_T").
func TokenBlocks(kb1, kb2 *kb.KB) *Collection {
	keys := make(map[string]*keyBucket)
	for i := 0; i < kb1.Len(); i++ {
		id := kb.EntityID(i)
		for _, tok := range kb1.Tokens(id) {
			// Tokens absent from KB2 can never form a two-sided block.
			if kb2.EF(tok) == 0 {
				continue
			}
			bucketFor(keys, tok).e1 = append(bucketFor(keys, tok).e1, id)
		}
	}
	for i := 0; i < kb2.Len(); i++ {
		id := kb.EntityID(i)
		for _, tok := range kb2.Tokens(id) {
			if _, ok := keys[tok]; !ok {
				continue
			}
			keys[tok].e2 = append(keys[tok].e2, id)
		}
	}
	return fromKeyMap(keys, kb1.Len(), kb2.Len())
}

// NameBlocks applies Name Blocking: the normalized literal values of the
// k most important attributes of each KB ("entity names") serve as
// blocking keys (paper §III, H1: "H1 treats the entire entity names as
// blocking keys to create a set of blocks B_N").
func NameBlocks(kb1, kb2 *kb.KB, k int) *Collection {
	attrs1 := kb1.TopNameAttributes(k)
	attrs2 := kb2.TopNameAttributes(k)
	keys := make(map[string]*keyBucket)
	for i := 0; i < kb1.Len(); i++ {
		id := kb.EntityID(i)
		for _, name := range kb1.Names(id, attrs1) {
			bucketFor(keys, name).e1 = append(bucketFor(keys, name).e1, id)
		}
	}
	for i := 0; i < kb2.Len(); i++ {
		id := kb.EntityID(i)
		for _, name := range kb2.Names(id, attrs2) {
			if _, ok := keys[name]; !ok {
				continue
			}
			keys[name].e2 = append(keys[name].e2, id)
		}
	}
	return fromKeyMap(keys, kb1.Len(), kb2.Len())
}

func bucketFor(keys map[string]*keyBucket, key string) *keyBucket {
	b := keys[key]
	if b == nil {
		b = &keyBucket{}
		keys[key] = b
	}
	return b
}
