package blocking

import (
	"context"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// TokenBlocks applies Token Blocking to the two KBs: every distinct
// token appearing in the values of entities of both KBs becomes a block
// whose members are the entities containing it (paper §III, H2: "H2
// applies Token Blocking to the input KBs, yielding a set of blocks
// B_T"). Construction is sharded across GOMAXPROCS workers; see
// TokenBlocksN.
func TokenBlocks(kb1, kb2 *kb.KB) *Collection {
	return TokenBlocksN(kb1, kb2, 0)
}

// TokenBlocksN is TokenBlocks with an explicit worker count (<= 0
// selects GOMAXPROCS). Blocking keys are sharded by hash: each worker
// owns a disjoint key subset and scans both KBs for it, so member
// lists stay in entity order and the merged, key-sorted collection is
// bit-identical at every worker count.
func TokenBlocksN(kb1, kb2 *kb.KB, workers int) *Collection {
	return shardedBlocks(parallel.Workers(workers), kb1.Len(), kb2.Len(),
		func(e int) []string { return kb1.Tokens(kb.EntityID(e)) },
		func(e int) []string { return kb2.Tokens(kb.EntityID(e)) },
		// Tokens absent from KB2 can never form a two-sided block.
		func(tok string) bool { return kb2.EF(tok) > 0 },
	)
}

// NameBlocks applies Name Blocking: the normalized literal values of the
// k most important attributes of each KB ("entity names") serve as
// blocking keys (paper §III, H1: "H1 treats the entire entity names as
// blocking keys to create a set of blocks B_N"). Construction is
// sharded across GOMAXPROCS workers; see NameBlocksN.
func NameBlocks(kb1, kb2 *kb.KB, k int) *Collection {
	return NameBlocksN(kb1, kb2, k, 0)
}

// NameBlocksN is NameBlocks with an explicit worker count (<= 0 selects
// GOMAXPROCS); the collection is bit-identical at every count.
func NameBlocksN(kb1, kb2 *kb.KB, k, workers int) *Collection {
	w := parallel.Workers(workers)
	attrs1 := kb1.TopNameAttributes(k)
	attrs2 := kb2.TopNameAttributes(k)
	// Name keys are derived (normalized, deduplicated) rather than
	// stored on the entity, so compute them once per entity up front
	// instead of once per shard.
	names1 := entityNames(kb1, attrs1, w)
	names2 := entityNames(kb2, attrs2, w)
	return shardedBlocks(w, kb1.Len(), kb2.Len(),
		func(e int) []string { return names1[e] },
		func(e int) []string { return names2[e] },
		nil,
	)
}

// entityNames materializes the name keys of every entity in parallel.
func entityNames(k *kb.KB, attrs []int32, workers int) [][]string {
	out := make([][]string, k.Len())
	_ = parallel.For(context.Background(), k.Len(), workers, func(_, start, end int) error {
		for e := start; e < end; e++ {
			out[e] = k.Names(kb.EntityID(e), attrs)
		}
		return nil
	})
	return out
}

// shardedBlocks builds a Collection from per-entity key lists. Worker w
// owns the keys with parallel.ShardOf(key, workers) == w: it scans KB1
// filling e1 member lists (keys rejected by filter1 are dropped), then
// KB2 filling e2 for keys KB1 populated — exactly the sequential
// construction, restricted to one key shard. fromKeyMaps then drops
// single-sided blocks and sorts by key, making the result independent
// of the shard count.
func shardedBlocks(workers, n1, n2 int, keys1, keys2 func(e int) []string, filter1 func(key string) bool) *Collection {
	if workers <= 1 {
		m := buildShard(singleShard, 1, n1, n2, keys1, keys2, filter1)
		return fromKeyMaps([]map[string]*keyBucket{m}, n1, n2)
	}
	shards := make([]map[string]*keyBucket, workers)
	_ = parallel.For(context.Background(), workers, workers, func(w, _, _ int) error {
		shards[w] = buildShard(w, workers, n1, n2, keys1, keys2, filter1)
		return nil
	})
	return fromKeyMaps(shards, n1, n2)
}

// singleShard marks the workers==1 fast path: no hashing at all.
const singleShard = -1

// buildShard runs the two entity scans for one key shard. shard ==
// singleShard disables hashing and owns every key.
func buildShard(shard, workers, n1, n2 int, keys1, keys2 func(e int) []string, filter1 func(key string) bool) map[string]*keyBucket {
	m := make(map[string]*keyBucket)
	for e := 0; e < n1; e++ {
		id := kb.EntityID(e)
		for _, key := range keys1(e) {
			if shard != singleShard && parallel.ShardOf(key, workers) != shard {
				continue
			}
			if filter1 != nil && !filter1(key) {
				continue
			}
			b := m[key]
			if b == nil {
				b = &keyBucket{}
				m[key] = b
			}
			b.e1 = append(b.e1, id)
		}
	}
	for e := 0; e < n2; e++ {
		id := kb.EntityID(e)
		for _, key := range keys2(e) {
			if shard != singleShard && parallel.ShardOf(key, workers) != shard {
				continue
			}
			b := m[key]
			if b == nil {
				continue
			}
			b.e2 = append(b.e2, id)
		}
	}
	return m
}
