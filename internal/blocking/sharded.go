// Owner-based sharding of the one-sided blocking substrate. A sharded
// index partitions the prepared KB's entities across K sub-substrates
// by a stable hash of their URIs; each sub-substrate holds the postings
// restricted to its owned entities, in the global ID space, so a probe
// against all K subs reproduces — after an ascending-ID merge per key —
// exactly the blocks a probe against the unsplit substrate yields.
package blocking

import (
	"fmt"

	"minoaner/internal/kb"
)

// SplitByOwner partitions the substrate into k owner-restricted
// sub-substrates: sub s keeps, for every key, the members e with
// owners[e] == s, in the same (ascending) order. Entity IDs stay
// global and every sub reports the global KB size, so purge cutoffs
// and ARCS weights computed downstream see the same totals the
// unsplit substrate implies. The receiver is unchanged.
//
//minoaner:mutator the subs are allocated here and unpublished until return; the receiver is never written
func (p *Prepared) SplitByOwner(owners []int32, k int) []*Prepared {
	subs := make([]*Prepared, k)
	for s := range subs {
		subs[s] = &Prepared{
			n1:     p.n1,
			nameK:  p.nameK,
			tokens: make(map[string][]kb.EntityID),
			names:  make(map[string][]kb.EntityID),
		}
	}
	parts := make([][]kb.EntityID, k)
	split := func(members []kb.EntityID, assign func(s int, part []kb.EntityID)) {
		for _, id := range members {
			s := owners[id]
			parts[s] = append(parts[s], id)
		}
		for s := range parts {
			if len(parts[s]) > 0 {
				assign(s, parts[s])
				parts[s] = nil
			}
		}
	}
	p.forEachPosting(tokenSide, func(key string, members []kb.EntityID) {
		split(members, func(s int, part []kb.EntityID) { subs[s].tokens[key] = part })
	})
	p.forEachPosting(nameSide, func(key string, members []kb.EntityID) {
		split(members, func(s int, part []kb.EntityID) { subs[s].names[key] = part })
	})
	return subs
}

// SplitPatchByOwner distributes one substrate patch across k
// owner-restricted sub-substrates: each key edit's Remove and Add
// lists (already in the new ID space) are filtered to the members the
// shard owns under the post-mutation owner map, so applying part s to
// sub-substrate s touches only that shard's postings. Without a remap,
// shards with no owned edits get an empty patch (callers can skip
// applying those); with a remap every part carries it, because every
// surviving member's ID may move even when the shard has no edits.
func SplitPatchByOwner(pt PreparedPatch, owners []int32, k int) []PreparedPatch {
	out := make([]PreparedPatch, k)
	for s := range out {
		out[s].Remap = pt.Remap
		out[s].NewSize = pt.NewSize
	}
	splitEdits := func(edits []KeyEdit, get func(s int) *[]KeyEdit) {
		for _, e := range edits {
			for s := 0; s < k; s++ {
				rm := filterOwned(e.Remove, owners, int32(s))
				ad := filterOwned(e.Add, owners, int32(s))
				if len(rm) == 0 && len(ad) == 0 {
					continue
				}
				dst := get(s)
				*dst = append(*dst, KeyEdit{Key: e.Key, Remove: rm, Add: ad})
			}
		}
	}
	splitEdits(pt.Tokens, func(s int) *[]KeyEdit { return &out[s].Tokens })
	splitEdits(pt.Names, func(s int) *[]KeyEdit { return &out[s].Names })
	return out
}

// filterOwned keeps the members of one shard, preserving order. It
// returns nil when the shard owns none of them.
func filterOwned(members []kb.EntityID, owners []int32, shard int32) []kb.EntityID {
	var out []kb.EntityID
	for _, id := range members {
		if owners[id] == shard {
			out = append(out, id)
		}
	}
	return out
}

// IsEmpty reports whether the patch edits nothing and remaps nothing —
// applying it would be the identity.
func (pt PreparedPatch) IsEmpty() bool {
	return len(pt.Tokens) == 0 && len(pt.Names) == 0 && pt.Remap == nil
}

// Cutoff returns the purging member-count limit for a KB of n
// entities: max(EntityFraction*n, MinEntities, 1). Purge applies it
// per side; sharded purging calls it directly because the per-shard
// collections must be purged against the global member counts.
func (cfg PurgeConfig) Cutoff(n int) int { return cutoff(n, cfg) }

// ValidateSplit checks that subs look like an owner split of p: same
// KB size, same name-K, and per-side key counts consistent with a
// partition (every sub key exists in p). It guards snapshot loads that
// re-derive a split against config drift.
func ValidateSplit(p *Prepared, subs []*Prepared) error {
	for s, sub := range subs {
		if sub.n1 != p.n1 {
			return fmt.Errorf("blocking: shard %d covers %d entities, substrate %d", s, sub.n1, p.n1)
		}
		if sub.nameK != p.nameK {
			return fmt.Errorf("blocking: shard %d prepared with NameK=%d, substrate %d", s, sub.nameK, p.nameK)
		}
	}
	return nil
}
