package blocking

import (
	"errors"
	"fmt"
	"io"

	"minoaner/internal/binio"
	"minoaner/internal/kb"
)

// Binary serialization of a block collection. Blocking is the most
// expensive derivation between a parsed KB pair and matching; the codec
// lets a built (and typically purged) collection be snapshotted once
// and reloaded without touching the source KBs. The format mirrors the
// KB codec: magic, format version, CRC32-checksummed sections (see
// internal/binio):
//
//	magic "MBC1" | uvarint version | sections | end marker
//
//	section 1 (header): |E1|, |E2|, block count
//	section 2 (blocks): per block: key, E1 members, E2 members
//
// The entity-to-blocks Index is not stored: BuildIndex reconstructs it
// deterministically, and storing it would double the snapshot for data
// that is pure derivation. Unknown section IDs are skipped, so a
// same-version reader tolerates future appended sections.

// The prepared one-sided substrate has its own frame (same section
// discipline) so an index snapshot can embed it next to the
// collections:
//
//	magic "MPS1" | uvarint version | sections | end marker
//
//	section 1 (header):   |E1|, nameK, token-key count, name-key count
//	section 2 (tokens):   per key (ascending): key, members
//	section 3 (names):    per key (ascending): key, members
var collectionMagic = [4]byte{'M', 'B', 'C', '1'}

const collectionVersion = 1

// Section IDs of the collection frame.
//
//minoaner:sections writer=WriteBinary reader=readCollection
const (
	secCollHeader = 1
	secCollBlocks = 2
)

// errCorrupt wraps structural failures of the collection decoder.
var errCorrupt = errors.New("blocking: corrupt binary collection")

// WriteBinary serializes the collection. The encoding is deterministic:
// the same collection always produces the same bytes.
func (c *Collection) WriteBinary(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Raw(collectionMagic[:])
	bw.Uvarint(collectionVersion)
	bw.Section(secCollHeader, func(e *binio.Writer) {
		e.Int(c.n1)
		e.Int(c.n2)
		e.Int(len(c.Blocks))
	})
	bw.Section(secCollBlocks, func(e *binio.Writer) {
		for i := range c.Blocks {
			b := &c.Blocks[i]
			e.Str(b.Key)
			e.Int(len(b.E1))
			for _, id := range b.E1 {
				e.Uvarint(uint64(id))
			}
			e.Int(len(b.E2))
			for _, id := range b.E2 {
				e.Uvarint(uint64(id))
			}
		}
	})
	bw.End()
	return bw.Flush()
}

// ReadBinary deserializes a collection written by WriteBinary,
// verifying the per-section checksums and that every member ID is in
// range for the recorded KB sizes.
func ReadBinary(r io.Reader) (*Collection, error) {
	return readCollection(binio.NewReader(r))
}

// ReadBinaryData deserializes a collection from an in-memory image
// (typically a mapped snapshot section) through the data-mode reader,
// which slices instead of copying payload bytes.
func ReadBinaryData(data []byte) (*Collection, error) {
	return readCollection(binio.NewBytesReader(data))
}

func readCollection(dec *binio.Reader) (*Collection, error) {
	dec.Magic(collectionMagic)
	dec.Version(collectionVersion)
	bodies := dec.Sections()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}

	header, ok := bodies[secCollHeader]
	if !ok {
		return nil, fmt.Errorf("%w: missing header section", errCorrupt)
	}
	n1 := header.Int()
	n2 := header.Int()
	nBlocks := header.Int()
	if err := header.Err(); err != nil {
		return nil, fmt.Errorf("%w: header: %v", errCorrupt, err)
	}
	if nBlocks > 1<<31 {
		return nil, fmt.Errorf("%w: absurd block count %d", errCorrupt, nBlocks)
	}
	c := NewCollection(n1, n2)

	blocks, ok := bodies[secCollBlocks]
	if !ok {
		return nil, fmt.Errorf("%w: missing blocks section", errCorrupt)
	}
	c.Blocks = make([]Block, 0, min(nBlocks, 1<<20))
	readSide := func(limit int) []kb.EntityID {
		n := blocks.Int()
		if blocks.Err() != nil {
			return nil
		}
		if n > limit {
			blocks.Fail("block side larger than its KB (%d > %d)", n, limit)
			return nil
		}
		out := make([]kb.EntityID, 0, n)
		for i := 0; i < n && blocks.Err() == nil; i++ {
			id := blocks.Uvarint()
			if id >= uint64(limit) {
				blocks.Fail("member %d out of range [0,%d)", id, limit)
				return nil
			}
			out = append(out, kb.EntityID(id))
		}
		return out
	}
	for i := 0; i < nBlocks && blocks.Err() == nil; i++ {
		var b Block
		b.Key = blocks.Str()
		b.E1 = readSide(n1)
		b.E2 = readSide(n2)
		c.Blocks = append(c.Blocks, b)
	}
	if err := blocks.Err(); err != nil {
		return nil, fmt.Errorf("%w: blocks: %v", errCorrupt, err)
	}
	return c, nil
}

var preparedMagic = [4]byte{'M', 'P', 'S', '1'}

const preparedVersion = 1

// Section IDs of the prepared-substrate frame.
//
//minoaner:sections writer=WriteBinary reader=readPreparedFrom
const (
	secPrepHeader = 1
	secPrepTokens = 2
	secPrepNames  = 3
)

// errCorruptPrepared wraps structural failures of the prepared decoder.
var errCorruptPrepared = errors.New("blocking: corrupt prepared substrate")

// WriteBinary serializes the prepared substrate. Keys are written in
// ascending order, so the encoding is deterministic: the same substrate
// always produces the same bytes.
func (p *Prepared) WriteBinary(w io.Writer) error {
	p = p.Flatten() // overlay chains serialize as their flat view
	bw := binio.NewWriter(w)
	bw.Raw(preparedMagic[:])
	bw.Uvarint(preparedVersion)
	bw.Section(secPrepHeader, func(e *binio.Writer) {
		e.Int(p.n1)
		e.Int(p.nameK)
		e.Int(len(p.tokens))
		e.Int(len(p.names))
	})
	writeSide := func(id uint64, m map[string][]kb.EntityID) {
		bw.Section(id, func(e *binio.Writer) {
			for _, key := range sortedKeys(m) {
				e.Str(key)
				members := m[key]
				e.Int(len(members))
				for _, id := range members {
					e.Uvarint(uint64(id))
				}
			}
		})
	}
	writeSide(secPrepTokens, p.tokens)
	writeSide(secPrepNames, p.names)
	bw.End()
	return bw.Flush()
}

// ReadPrepared deserializes a substrate written by
// Prepared.WriteBinary, verifying the per-section checksums and that
// every member list is ascending and in range for the recorded KB size.
func ReadPrepared(r io.Reader) (*Prepared, error) {
	return readPreparedFrom(binio.NewReader(r))
}

// ReadPreparedData deserializes a prepared substrate from an in-memory
// image through the data-mode reader.
func ReadPreparedData(data []byte) (*Prepared, error) {
	return readPreparedFrom(binio.NewBytesReader(data))
}

func readPreparedFrom(dec *binio.Reader) (*Prepared, error) {
	dec.Magic(preparedMagic)
	dec.Version(preparedVersion)
	bodies := dec.Sections()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorruptPrepared, err)
	}

	header, ok := bodies[secPrepHeader]
	if !ok {
		return nil, fmt.Errorf("%w: missing header section", errCorruptPrepared)
	}
	p := &Prepared{}
	p.n1 = header.Int()
	p.nameK = header.Int()
	nTokens := header.Int()
	nNames := header.Int()
	if err := header.Err(); err != nil {
		return nil, fmt.Errorf("%w: header: %v", errCorruptPrepared, err)
	}
	if nTokens > 1<<31 || nNames > 1<<31 {
		return nil, fmt.Errorf("%w: absurd key counts (%d, %d)", errCorruptPrepared, nTokens, nNames)
	}

	readSide := func(id uint64, name string, nKeys int) (map[string][]kb.EntityID, error) {
		body, ok := bodies[id]
		if !ok {
			return nil, fmt.Errorf("%w: missing %s section", errCorruptPrepared, name)
		}
		// Preallocations are capped: the counts come from the (checksummed
		// but still possibly hostile) header, so a crafted file must fail
		// with ErrCorrupt when its payload runs out, not pre-commit huge
		// allocations.
		m := make(map[string][]kb.EntityID, min(nKeys, 1<<20))
		for i := 0; i < nKeys && body.Err() == nil; i++ {
			key := body.Str()
			n := body.Int()
			if body.Err() != nil {
				break
			}
			if n > p.n1 {
				body.Fail("posting larger than the KB (%d > %d)", n, p.n1)
				break
			}
			members := make([]kb.EntityID, 0, min(n, 1<<20))
			prev := int64(-1)
			for j := 0; j < n && body.Err() == nil; j++ {
				id := body.Uvarint()
				if id >= uint64(p.n1) || int64(id) <= prev {
					body.Fail("posting member %d out of order or range [0,%d)", id, p.n1)
					break
				}
				prev = int64(id)
				members = append(members, kb.EntityID(id))
			}
			m[key] = members
		}
		if err := body.Err(); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", errCorruptPrepared, name, err)
		}
		return m, nil
	}
	var err error
	if p.tokens, err = readSide(secPrepTokens, "tokens", nTokens); err != nil {
		return nil, err
	}
	if p.names, err = readSide(secPrepNames, "names", nNames); err != nil {
		return nil, err
	}
	return p, nil
}
