package blocking

import (
	"errors"
	"fmt"
	"io"

	"minoaner/internal/binio"
	"minoaner/internal/kb"
)

// Binary serialization of a block collection. Blocking is the most
// expensive derivation between a parsed KB pair and matching; the codec
// lets a built (and typically purged) collection be snapshotted once
// and reloaded without touching the source KBs. The format mirrors the
// KB codec: magic, format version, CRC32-checksummed sections (see
// internal/binio):
//
//	magic "MBC1" | uvarint version | sections | end marker
//
//	section 1 (header): |E1|, |E2|, block count
//	section 2 (blocks): per block: key, E1 members, E2 members
//
// The entity-to-blocks Index is not stored: BuildIndex reconstructs it
// deterministically, and storing it would double the snapshot for data
// that is pure derivation. Unknown section IDs are skipped, so a
// same-version reader tolerates future appended sections.

var collectionMagic = [4]byte{'M', 'B', 'C', '1'}

const collectionVersion = 1

// Section IDs of the collection frame.
const (
	secCollHeader = 1
	secCollBlocks = 2
)

// errCorrupt wraps structural failures of the collection decoder.
var errCorrupt = errors.New("blocking: corrupt binary collection")

// WriteBinary serializes the collection. The encoding is deterministic:
// the same collection always produces the same bytes.
func (c *Collection) WriteBinary(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Raw(collectionMagic[:])
	bw.Uvarint(collectionVersion)
	bw.Section(secCollHeader, func(e *binio.Writer) {
		e.Int(c.n1)
		e.Int(c.n2)
		e.Int(len(c.Blocks))
	})
	bw.Section(secCollBlocks, func(e *binio.Writer) {
		for i := range c.Blocks {
			b := &c.Blocks[i]
			e.Str(b.Key)
			e.Int(len(b.E1))
			for _, id := range b.E1 {
				e.Uvarint(uint64(id))
			}
			e.Int(len(b.E2))
			for _, id := range b.E2 {
				e.Uvarint(uint64(id))
			}
		}
	})
	bw.End()
	return bw.Flush()
}

// ReadBinary deserializes a collection written by WriteBinary,
// verifying the per-section checksums and that every member ID is in
// range for the recorded KB sizes.
func ReadBinary(r io.Reader) (*Collection, error) {
	dec := binio.NewReader(r)
	dec.Magic(collectionMagic)
	dec.Version(collectionVersion)
	bodies := dec.Sections()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}

	header, ok := bodies[secCollHeader]
	if !ok {
		return nil, fmt.Errorf("%w: missing header section", errCorrupt)
	}
	n1 := header.Int()
	n2 := header.Int()
	nBlocks := header.Int()
	if err := header.Err(); err != nil {
		return nil, fmt.Errorf("%w: header: %v", errCorrupt, err)
	}
	if nBlocks > 1<<31 {
		return nil, fmt.Errorf("%w: absurd block count %d", errCorrupt, nBlocks)
	}
	c := NewCollection(n1, n2)

	blocks, ok := bodies[secCollBlocks]
	if !ok {
		return nil, fmt.Errorf("%w: missing blocks section", errCorrupt)
	}
	c.Blocks = make([]Block, 0, min(nBlocks, 1<<20))
	readSide := func(limit int) []kb.EntityID {
		n := blocks.Int()
		if blocks.Err() != nil {
			return nil
		}
		if n > limit {
			blocks.Fail("block side larger than its KB (%d > %d)", n, limit)
			return nil
		}
		out := make([]kb.EntityID, 0, n)
		for i := 0; i < n && blocks.Err() == nil; i++ {
			id := blocks.Uvarint()
			if id >= uint64(limit) {
				blocks.Fail("member %d out of range [0,%d)", id, limit)
				return nil
			}
			out = append(out, kb.EntityID(id))
		}
		return out
	}
	for i := 0; i < nBlocks && blocks.Err() == nil; i++ {
		var b Block
		b.Key = blocks.Str()
		b.E1 = readSide(n1)
		b.E2 = readSide(n2)
		c.Blocks = append(c.Blocks, b)
	}
	if err := blocks.Err(); err != nil {
		return nil, fmt.Errorf("%w: blocks: %v", errCorrupt, err)
	}
	return c, nil
}
