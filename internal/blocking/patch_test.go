package blocking

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

// mutableKB builds a KB with links, names, and a wide token overlap so
// mutations exercise every patch path (blocks appearing, vanishing,
// shrinking, growing).
func mutableTriples(rng *rand.Rand, prefix string, nSubjects, nTriples int) []rdf.Triple {
	vocab := make([]string, 30)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%02d", i)
	}
	var out []rdf.Triple
	for len(out) < nTriples {
		s := rdf.NewIRI(fmt.Sprintf("http://%s/e%03d", prefix, rng.Intn(nSubjects)))
		switch rng.Intn(6) {
		case 0:
			out = append(out, rdf.NewTriple(s, rdf.NewIRI("http://v/knows"),
				rdf.NewIRI(fmt.Sprintf("http://%s/e%03d", prefix, rng.Intn(nSubjects)))))
		case 1:
			out = append(out, rdf.NewTriple(s, rdf.NewIRI("http://v/name"),
				rdf.NewLiteral(vocab[rng.Intn(len(vocab))]+" "+vocab[rng.Intn(len(vocab))])))
		default:
			out = append(out, rdf.NewTriple(s, rdf.NewIRI("http://v/desc"),
				rdf.NewLiteral(vocab[rng.Intn(len(vocab))])))
		}
	}
	return out
}

// samePreparedFlat compares two substrates by their flat views.
func samePreparedFlat(a, b *Prepared) bool {
	return reflect.DeepEqual(a.Flatten(), b.Flatten())
}

// sameRankedAttrs reports whether two KBs rank the same top name
// attributes (by predicate name) — the precondition of a name patch.
func sameRankedAttrs(a, b *kb.KB, k int) bool {
	aa, bb := a.TopNameAttributes(k), b.TopNameAttributes(k)
	if len(aa) != len(bb) {
		return false
	}
	for i := range aa {
		if a.Pred(aa[i]) != b.Pred(bb[i]) {
			return false
		}
	}
	return true
}

// TestPreparedPatchMatchesFresh: after randomized upsert/delete
// rounds, the patched substrate equals Prepare over the mutated KB,
// and patched pair collections equal the from-scratch constructions.
func TestPreparedPatchMatchesFresh(t *testing.T) {
	const nameK = 2
	for _, seed := range []int64{3, 11, 29} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			side1, err := kb.FromTriples("s1", mutableTriples(rng, "s1", 30, 150))
			if err != nil {
				t.Fatal(err)
			}
			// The un-mutated opposite side of the pair.
			side2, err := kb.FromTriples("s2", mutableTriples(rng, "s2", 25, 120))
			if err != nil {
				t.Fatal(err)
			}
			store, err := kb.NewStore(side1)
			if err != nil {
				t.Fatal(err)
			}

			prep1 := Prepare(side1, nameK, 2)
			prep2 := Prepare(side2, nameK, 2)
			tokenColl := JoinTokenBlocks(prep1, prep2)
			nameColl := JoinNameBlocks(prep1, prep2)
			if want := TokenBlocksN(side1, side2, 1); !reflect.DeepEqual(tokenColl, want) {
				t.Fatal("joined token blocks diverge from TokenBlocksN")
			}
			if want := NameBlocksN(side1, side2, nameK, 1); !reflect.DeepEqual(nameColl, want) {
				t.Fatal("joined name blocks diverge from NameBlocksN")
			}

			cur := side1
			for round := 0; round < 10; round++ {
				var deltaKB *kb.KB
				var deletes []string
				if rng.Intn(3) == 0 && cur.Len() > 2 {
					deletes = []string{cur.URI(kb.EntityID(rng.Intn(cur.Len())))}
				} else {
					ts := mutableTriples(rng, "s1", 34, 6+rng.Intn(8)) // ids 30..33 are brand new subjects
					deltaKB, err = kb.FromTriples("delta", ts)
					if err != nil {
						t.Fatal(err)
					}
				}
				changed, _, err := store.Apply(deltaKB, deletes)
				if err != nil {
					t.Fatal(err)
				}
				if !changed {
					continue
				}
				next := store.Assemble(cur)
				d := kb.ComputeDiff(cur, next)
				if !sameRankedAttrs(cur, next, nameK) {
					// Rare with this generator; the fallback re-derives
					// substrate and collections wholesale (the name
					// rebuild itself is covered by TestRebuildNames).
					prep1 = Prepare(next, nameK, 1)
					tokenColl = JoinTokenBlocks(prep1, prep2)
					nameColl = JoinNameBlocks(prep1, prep2)
				} else {
					pt := BuildPreparedPatch(cur, next, d, cur.TopNameAttributes(nameK), next.TopNameAttributes(nameK))
					prep1 = prep1.ApplyPatch(pt)

					// The pair collections patch with the same key set.
					var remap1 []kb.EntityID
					if d.Shifted() {
						remap1 = d.Remap
					}
					tokenKeys := make([]string, 0, len(pt.Tokens))
					for _, e := range pt.Tokens {
						tokenKeys = append(tokenKeys, e.Key)
					}
					nameKeys := make([]string, 0, len(pt.Names))
					for _, e := range pt.Names {
						nameKeys = append(nameKeys, e.Key)
					}
					tokenColl = tokenColl.Patch(CollectionPatch{
						Keys:    tokenKeys,
						Lookup1: prep1.lookupToken,
						Lookup2: prep2.lookupToken,
						Remap1:  remap1,
						N1:      next.Len(),
						N2:      side2.Len(),
					})
					nameColl = nameColl.Patch(CollectionPatch{
						Keys:    nameKeys,
						Lookup1: prep1.lookupName,
						Lookup2: prep2.lookupName,
						Remap1:  remap1,
						N1:      next.Len(),
						N2:      side2.Len(),
					})
					if want := TokenBlocksN(next, side2, 1); !reflect.DeepEqual(tokenColl, want) {
						wm := map[string]Block{}
						for _, b := range want.Blocks {
							wm[b.Key] = b
						}
						gm := map[string]Block{}
						for _, b := range tokenColl.Blocks {
							gm[b.Key] = b
						}
						for k, wb := range wm {
							gb, ok := gm[k]
							if !ok {
								t.Logf("missing key %s want E1=%v E2=%v", k, wb.E1, wb.E2)
								continue
							}
							if !reflect.DeepEqual(gb.E1, wb.E1) {
								t.Logf("key %s E1 got %v want %v", k, gb.E1, wb.E1)
							}
							if !reflect.DeepEqual(gb.E2, wb.E2) {
								t.Logf("key %s E2 got %v want %v", k, gb.E2, wb.E2)
							}
						}
						for k := range gm {
							if _, ok := wm[k]; !ok {
								t.Logf("extra key %s", k)
							}
						}
						t.Fatalf("round %d: patched token collection diverges (shift=%v)", round, d.Shifted())
					}
					if want := NameBlocksN(next, side2, nameK, 1); !reflect.DeepEqual(nameColl, want) {
						t.Fatalf("round %d: patched name collection diverges", round)
					}
				}
				if fresh := Prepare(next, nameK, 1); !samePreparedFlat(prep1, fresh) {
					t.Fatalf("round %d: patched substrate diverges from fresh Prepare", round)
				}
				cur = next
			}
			if prep1.Depth() > maxOverlayDepth {
				t.Fatalf("overlay depth %d escaped the flatten bound", prep1.Depth())
			}
		})
	}
}

// TestRebuildNames: the wholesale name rebuild (attribute-ranking
// change fallback) matches a fresh Prepare while sharing tokens.
func TestRebuildNames(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	k, err := kb.FromTriples("s1", mutableTriples(rng, "s1", 20, 100))
	if err != nil {
		t.Fatal(err)
	}
	p := Prepare(k, 2, 1)
	got := p.RebuildNames(k, 1, 1) // different nameK forces different name keys
	want := Prepare(k, 1, 1)
	if !samePreparedFlat(got, want) {
		t.Fatal("rebuilt names diverge from fresh Prepare")
	}
	if got.NameK() != 1 {
		t.Fatal("nameK not updated")
	}
}

// TestApplyEdit covers the posting merge edge cases directly.
func TestApplyEdit(t *testing.T) {
	ids := func(xs ...int) []kb.EntityID {
		out := make([]kb.EntityID, len(xs))
		for i, x := range xs {
			out[i] = kb.EntityID(x)
		}
		return out
	}
	cases := []struct {
		old, remove, add, want []kb.EntityID
	}{
		{ids(1, 3, 5), ids(3), ids(4), ids(1, 4, 5)},
		{ids(1, 3, 5), ids(1, 3, 5), nil, ids()},
		{nil, nil, ids(2, 7), ids(2, 7)},
		{ids(2, 7), ids(2, 7), ids(2, 7), ids(2, 7)}, // remove + re-add keeps one copy
		{ids(5), nil, ids(5), ids(5)},                // defensive dedup of an already-present add
		{ids(2, 4, 6), ids(4), ids(0, 9), ids(0, 2, 6, 9)},
	}
	for i, tc := range cases {
		got := applyEdit(tc.old, KeyEdit{Remove: tc.remove, Add: tc.add})
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}
