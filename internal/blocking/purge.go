package blocking

import "sort"

// PurgeConfig controls Block Purging. Purging removes the excessively
// large blocks that stem from highly frequent tokens (stop-words),
// which contribute quadratically many comparisons but no discriminative
// evidence (paper §III, following [6]).
type PurgeConfig struct {
	// EntityFraction purges a block when its members from either KB
	// exceed this fraction of that KB's entities: a token carried by a
	// large share of a KB cannot identify anything.
	EntityFraction float64
	// MinEntities is a floor for the cutoff so that tiny datasets keep
	// their (absolutely small) blocks.
	MinEntities int
}

// DefaultPurgeConfig returns the configuration used across the
// experiments: blocks covering more than 3% of either KB (but at least
// 25 entities) are purged.
func DefaultPurgeConfig() PurgeConfig {
	return PurgeConfig{EntityFraction: 0.03, MinEntities: 25}
}

// NoPurge disables purging (every block survives).
func NoPurge() PurgeConfig {
	return PurgeConfig{EntityFraction: 1.0, MinEntities: 1 << 30}
}

// PurgeResult describes what Block Purging removed.
type PurgeResult struct {
	// Cutoff1 and Cutoff2 are the per-KB member-count limits applied.
	Cutoff1, Cutoff2   int
	RemovedBlocks      int
	RemovedComparisons int64
}

// Purge applies frequency-based Block Purging: a block survives only if
// its member count from each KB stays within the configured fraction of
// that KB (with the MinEntities floor). The paper reports that purging
// keeps the comparisons two orders of magnitude below the Cartesian
// product at negligible recall cost; ComputeStats verifies that on
// every dataset.
func Purge(c *Collection, cfg PurgeConfig) (*Collection, PurgeResult) {
	cut1 := cutoff(c.n1, cfg)
	cut2 := cutoff(c.n2, cfg)
	out := NewCollection(c.n1, c.n2)
	res := PurgeResult{Cutoff1: cut1, Cutoff2: cut2}
	for _, b := range c.Blocks {
		if len(b.E1) > cut1 || len(b.E2) > cut2 {
			res.RemovedBlocks++
			res.RemovedComparisons += b.Comparisons()
			continue
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out, res
}

func cutoff(n int, cfg PurgeConfig) int {
	c := int(cfg.EntityFraction * float64(n))
	if c < cfg.MinEntities {
		c = cfg.MinEntities
	}
	if c < 1 {
		c = 1
	}
	return c
}

// PurgeByRatio is the alternative comparison-cardinality knee heuristic
// (kept for ablation studies): distinct block cardinalities are scanned
// in ascending order while tracking the cumulative
// comparisons-per-assignment ratio; the scan stops at the first
// cardinality whose cumulative ratio exceeds the previous one by more
// than the smoothing factor, and larger blocks are purged. It is far
// more aggressive than Purge on smooth cardinality distributions.
func PurgeByRatio(c *Collection, smoothing float64) (*Collection, PurgeResult) {
	if len(c.Blocks) == 0 {
		return c, PurgeResult{}
	}
	type cardStat struct {
		card int64
		cc   int64
		ba   int64
	}
	byCard := make(map[int64]*cardStat)
	for i := range c.Blocks {
		b := &c.Blocks[i]
		card := b.Comparisons()
		st := byCard[card]
		if st == nil {
			st = &cardStat{card: card}
			byCard[card] = st
		}
		st.cc += card
		st.ba += b.Assignments()
	}
	stats := make([]*cardStat, 0, len(byCard))
	for _, st := range byCard {
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].card < stats[j].card })

	maxCard := stats[0].card
	var cc, ba int64
	prevRatio := -1.0
	for _, st := range stats {
		cc += st.cc
		ba += st.ba
		ratio := float64(cc) / float64(ba)
		if prevRatio >= 0 && ratio > smoothing*prevRatio {
			break
		}
		maxCard = st.card
		prevRatio = ratio
	}

	out := NewCollection(c.n1, c.n2)
	res := PurgeResult{}
	for _, b := range c.Blocks {
		if cmp := b.Comparisons(); cmp > maxCard {
			res.RemovedBlocks++
			res.RemovedComparisons += cmp
			continue
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out, res
}

// DefaultSmoothing is the smoothing factor of PurgeByRatio.
const DefaultSmoothing = 1.025
