package blocking

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

// randomPair builds a deterministic random KB pair with overlapping
// token vocabularies and a couple of name-bearing attributes.
func randomPair(t testing.TB, seed int64, n1, n2 int) (*kb.KB, *kb.KB) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%02d", i)
	}
	build := func(name string, n int) *kb.KB {
		var triples []rdf.Triple
		for i := 0; i < n; i++ {
			subj := rdf.NewIRI(fmt.Sprintf("http://%s/e%03d", name, i))
			words := vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))]
			triples = append(triples,
				rdf.NewTriple(subj, rdf.NewIRI("http://v/name"), rdf.NewLiteral(words)),
				rdf.NewTriple(subj, rdf.NewIRI("http://v/desc"), rdf.NewLiteral(vocab[rng.Intn(len(vocab))])),
			)
		}
		k, err := kb.FromTriples(name, triples)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	return build("a", n1), build("b", n2)
}

// TestProbeMatchesFullConstruction: probing the prepared substrate
// with a delta reproduces TokenBlocksN/NameBlocksN over the same pair
// exactly, at several worker counts.
func TestProbeMatchesFullConstruction(t *testing.T) {
	kb1, delta := randomPair(t, 7, 60, 9)
	const nameK = 2
	for _, workers := range []int{1, 2, 4} {
		p := Prepare(kb1, nameK, workers)
		gotTok, err := p.ProbeTokenBlocks(context.Background(), delta)
		if err != nil {
			t.Fatal(err)
		}
		if wantTok := TokenBlocksN(kb1, delta, workers); !reflect.DeepEqual(gotTok, wantTok) {
			t.Fatalf("workers=%d: probed token blocks diverge (%d vs %d blocks)",
				workers, gotTok.Size(), wantTok.Size())
		}
		gotName, err := p.ProbeNameBlocks(context.Background(), delta)
		if err != nil {
			t.Fatal(err)
		}
		if wantName := NameBlocksN(kb1, delta, nameK, workers); !reflect.DeepEqual(gotName, wantName) {
			t.Fatalf("workers=%d: probed name blocks diverge (%d vs %d blocks)",
				workers, gotName.Size(), wantName.Size())
		}
	}
}

// TestPrepareWorkerInvariance: the substrate is identical at every
// worker count.
func TestPrepareWorkerInvariance(t *testing.T) {
	kb1, _ := randomPair(t, 3, 80, 1)
	base := Prepare(kb1, 2, 1)
	for _, workers := range []int{2, 4, 8} {
		if got := Prepare(kb1, 2, workers); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d substrate diverges from workers=1", workers)
		}
	}
}

// TestProbeCancellation: a cancelled context aborts the probe.
func TestProbeCancellation(t *testing.T) {
	kb1, delta := randomPair(t, 5, 30, 5)
	p := Prepare(kb1, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ProbeTokenBlocks(ctx, delta); err != context.Canceled {
		t.Errorf("token probe err = %v, want context.Canceled", err)
	}
	if _, err := p.ProbeNameBlocks(ctx, delta); err != context.Canceled {
		t.Errorf("name probe err = %v, want context.Canceled", err)
	}
}

// TestSparseIndexMatchesFull: the one-sided index builders agree with
// BuildIndex on a probed collection.
func TestSparseIndexMatchesFull(t *testing.T) {
	kb1, delta := randomPair(t, 11, 50, 8)
	p := Prepare(kb1, 2, 1)
	c, err := p.ProbeTokenBlocks(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	full := c.BuildIndex()
	if got := c.BuildIndexSide2(); !reflect.DeepEqual(got, full.ByE2) {
		t.Error("BuildIndexSide2 diverges from BuildIndex.ByE2")
	}
	sparse := c.BuildIndexSide1Sparse()
	for e, want := range full.ByE1 {
		got := sparse[kb.EntityID(e)]
		if len(want) == 0 {
			if len(got) != 0 {
				t.Errorf("entity %d: sparse index has %v, full has none", e, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("entity %d: sparse %v != full %v", e, got, want)
		}
	}
	if len(sparse) > len(full.ByE1) {
		t.Errorf("sparse index has %d entries for %d entities", len(sparse), len(full.ByE1))
	}
}

// TestPreparedBinaryRoundTrip: the substrate codec is deterministic
// and bit-identical through a reload, and corruption is rejected.
func TestPreparedBinaryRoundTrip(t *testing.T) {
	kb1, delta := randomPair(t, 13, 70, 10)
	p := Prepare(kb1, 2, 4)
	var first bytes.Buffer
	if err := p.WriteBinary(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPrepared(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatal("substrate diverges after reload")
	}
	var second bytes.Buffer
	if err := back.WriteBinary(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("not bit-identical after reload (%d vs %d bytes)", first.Len(), second.Len())
	}

	// A reloaded substrate probes identically.
	want, err := p.ProbeTokenBlocks(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.ProbeTokenBlocks(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reloaded substrate probes differently")
	}

	data := first.Bytes()
	for off := 5; off < len(data); off += len(data)/41 + 1 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20
		if _, err := ReadPrepared(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
	for _, cut := range []int{0, 3, len(data) / 2, len(data) - 1} {
		if _, err := ReadPrepared(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
