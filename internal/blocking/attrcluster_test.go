package blocking

import (
	"fmt"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func kbFromAttrs(t testing.TB, name string, rows []map[string]string) *kb.KB {
	t.Helper()
	var triples []rdf.Triple
	for i, row := range rows {
		subj := rdf.NewIRI(fmt.Sprintf("http://%s/e%03d", name, i))
		for pred, val := range row {
			triples = append(triples, rdf.NewTriple(subj, rdf.NewIRI("http://"+name+"/"+pred), rdf.NewLiteral(val)))
		}
	}
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestClusterAttributesLinksSimilarValueSpaces(t *testing.T) {
	kb1 := kbFromAttrs(t, "a", []map[string]string{
		{"name": "alice wonder", "city": "springfield"},
		{"name": "bob builder", "city": "shelbyville"},
	})
	kb2 := kbFromAttrs(t, "b", []map[string]string{
		{"label": "alice wonder", "town": "springfield"},
		{"label": "bob builder", "town": "shelbyville"},
	})
	clusters := ClusterAttributes(kb1, kb2, 0.3, 0)
	name1, _ := kb1.PredID("http://a/name")
	label2, _ := kb2.PredID("http://b/label")
	city1, _ := kb1.PredID("http://a/city")
	town2, _ := kb2.PredID("http://b/town")
	if clusters.ByKB1[name1] != clusters.ByKB2[label2] {
		t.Errorf("name/label not co-clustered: %d vs %d", clusters.ByKB1[name1], clusters.ByKB2[label2])
	}
	if clusters.ByKB1[city1] != clusters.ByKB2[town2] {
		t.Errorf("city/town not co-clustered")
	}
	if clusters.ByKB1[name1] == clusters.ByKB1[city1] {
		t.Errorf("name and city merged into one cluster")
	}
	if clusters.ByKB1[name1] == 0 || clusters.ByKB1[city1] == 0 {
		t.Errorf("linked attributes fell into the glue cluster")
	}
}

func TestClusterAttributesGlueForUnlinked(t *testing.T) {
	kb1 := kbFromAttrs(t, "a", []map[string]string{{"name": "alpha beta"}})
	kb2 := kbFromAttrs(t, "b", []map[string]string{{"code": "zz99 qq88"}})
	clusters := ClusterAttributes(kb1, kb2, 0.3, 0)
	name1, _ := kb1.PredID("http://a/name")
	code2, _ := kb2.PredID("http://b/code")
	if clusters.ByKB1[name1] != 0 || clusters.ByKB2[code2] != 0 {
		t.Errorf("dissimilar attributes should land in the glue cluster: %d/%d",
			clusters.ByKB1[name1], clusters.ByKB2[code2])
	}
}

func TestAttributeClusteredBlocksSeparateClusters(t *testing.T) {
	// "springfield" appears both as a city and inside a name; with
	// clustering, the name-attribute occurrence must not pair with the
	// city-attribute occurrence.
	kb1 := kbFromAttrs(t, "a", []map[string]string{
		{"name": "springfield brewery", "city": "ogdenville"},
		{"name": "moe tavern", "city": "springfield"},
		{"name": "luigi place", "city": "ogdenville"},
	})
	kb2 := kbFromAttrs(t, "b", []map[string]string{
		{"label": "springfield brewery", "town": "ogdenville"},
		{"label": "moe tavern", "town": "springfield"},
		{"label": "luigi place", "town": "ogdenville"},
	})
	clusters := ClusterAttributes(kb1, kb2, 0.2, 0)
	c := AttributeClusteredBlocks(kb1, kb2, clusters)

	// The qualified keys must separate name-springfield from
	// town-springfield: no block may contain both e0 (name) and pair
	// with e1's town occurrence.
	plain := TokenBlocks(kb1, kb2)
	plainCmp := plain.Comparisons()
	clusteredCmp := c.Comparisons()
	if clusteredCmp >= plainCmp {
		t.Errorf("clustered comparisons (%d) not below plain token blocking (%d)", clusteredCmp, plainCmp)
	}
	// Recall on the obvious matches is preserved: every entity pair
	// (i,i) still co-occurs.
	idx := c.BuildIndex()
	for i := 0; i < kb1.Len(); i++ {
		cands := c.Candidates1(idx, kb.EntityID(i))
		found := false
		for _, e2 := range cands {
			if int(e2) == i {
				found = true
			}
		}
		if !found {
			t.Errorf("entity %d lost its match under attribute clustering", i)
		}
	}
}

func TestAttributeClusteringOnBenchmark(t *testing.T) {
	ds, err := datagen.Restaurant(datagen.Options{Seed: 11, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	clusters := ClusterAttributes(ds.KB1, ds.KB2, 0.15, 500)
	if clusters.Count < 2 {
		t.Fatalf("expected multiple clusters, got %d", clusters.Count)
	}
	c := AttributeClusteredBlocks(ds.KB1, ds.KB2, clusters)
	st := ComputeStats(c, ds.GT)
	if st.Recall < 0.99 {
		t.Errorf("attribute-clustered recall = %.3f, want >= 0.99", st.Recall)
	}
	plain := ComputeStats(TokenBlocks(ds.KB1, ds.KB2), ds.GT)
	if st.DistinctComparisons > plain.DistinctComparisons {
		t.Errorf("clustering increased comparisons: %d vs %d", st.DistinctComparisons, plain.DistinctComparisons)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind()
	a := node{1, 1}
	b := node{2, 1}
	c := node{2, 2}
	uf.union(a, b)
	uf.union(b, c)
	ra, _ := uf.find(a)
	rc, _ := uf.find(c)
	if ra != rc {
		t.Error("transitive union broken")
	}
	if _, ok := uf.find(node{1, 99}); ok {
		t.Error("unregistered node found")
	}
}
