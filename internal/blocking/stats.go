package blocking

import (
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Stats reports the quality and cost of a block collection, matching the
// rows of Table II in the paper.
type Stats struct {
	Blocks              int     // |B|
	Comparisons         int64   // ||B|| with multiplicity
	DistinctComparisons int64   // distinct cross-KB pairs suggested
	PairsFound          int     // ground-truth pairs co-occurring in ≥1 block
	Recall              float64 // PC: PairsFound / |ground truth|
	Precision           float64 // PQ: PairsFound / DistinctComparisons
	F1                  float64
}

// ComputeStats scans the collection once, counting distinct suggested
// pairs with a stamp array (O(|E2|) memory) and probing the ground
// truth.
func ComputeStats(c *Collection, gt *eval.GroundTruth) Stats {
	st := Stats{Blocks: c.Size(), Comparisons: c.Comparisons()}
	idx := c.BuildIndex()
	stamps := make([]int32, c.n2)
	for i := range stamps {
		stamps[i] = -1
	}
	for e1 := 0; e1 < c.n1; e1++ {
		blockIDs := idx.ByE1[e1]
		if len(blockIDs) == 0 {
			continue
		}
		want, inGT := gt.Match1(kb.EntityID(e1))
		for _, bi := range blockIDs {
			for _, e2 := range c.Blocks[bi].E2 {
				if stamps[e2] == int32(e1) {
					continue
				}
				stamps[e2] = int32(e1)
				st.DistinctComparisons++
				if inGT && e2 == want {
					st.PairsFound++
				}
			}
		}
	}
	if gt.Len() > 0 {
		st.Recall = float64(st.PairsFound) / float64(gt.Len())
	}
	if st.DistinctComparisons > 0 {
		st.Precision = float64(st.PairsFound) / float64(st.DistinctComparisons)
	}
	if st.Precision+st.Recall > 0 {
		st.F1 = 2 * st.Precision * st.Recall / (st.Precision + st.Recall)
	}
	return st
}
