// Package blocking implements the schema-agnostic blocking layer of
// MinoanER: Token Blocking (B_T), Name Blocking (B_N), Block Purging,
// and the block statistics reported in Table II of the paper.
//
// A block groups the entities of the two input KBs that share one
// blocking key. Only blocks with at least one entity from each KB are
// kept: in the clean-clean setting of the paper, single-sided blocks
// suggest no comparisons.
package blocking

import (
	"context"
	"fmt"
	"sort"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// Block is one blocking-key bucket with members from both KBs.
type Block struct {
	Key string
	E1  []kb.EntityID // members from the first KB
	E2  []kb.EntityID // members from the second KB
}

// Comparisons returns ||b||, the number of cross-KB pairs the block
// suggests.
func (b *Block) Comparisons() int64 {
	return int64(len(b.E1)) * int64(len(b.E2))
}

// Assignments returns the number of entity-to-block assignments,
// |b.E1|+|b.E2|; Block Purging trades comparisons against assignments.
func (b *Block) Assignments() int64 {
	return int64(len(b.E1)) + int64(len(b.E2))
}

// Collection is an ordered set of blocks between one pair of KBs.
type Collection struct {
	Blocks []Block
	n1, n2 int // entity counts of the underlying KBs
}

// NewCollection returns an empty collection for KBs of the given sizes.
func NewCollection(n1, n2 int) *Collection {
	return &Collection{n1: n1, n2: n2}
}

// Size returns |B|, the number of blocks.
func (c *Collection) Size() int { return len(c.Blocks) }

// Comparisons returns ||B||, the total number of suggested comparisons
// (with multiplicity: a pair co-occurring in multiple blocks counts each
// time, as in the paper's Table II).
func (c *Collection) Comparisons() int64 {
	var total int64
	for i := range c.Blocks {
		total += c.Blocks[i].Comparisons()
	}
	return total
}

// KBSizes returns the entity counts (|E1|, |E2|) the collection was
// built for.
func (c *Collection) KBSizes() (int, int) { return c.n1, c.n2 }

// sortBlocks orders blocks by key so collections are deterministic
// regardless of map iteration order during construction.
func (c *Collection) sortBlocks() {
	sort.Slice(c.Blocks, func(i, j int) bool { return c.Blocks[i].Key < c.Blocks[j].Key })
}

// fromKeyMaps materializes a deterministic Collection out of per-shard,
// per-key member lists, dropping single-sided blocks. Each key lives in
// exactly one shard, so concatenating the shards and sorting by key
// yields the same collection a single map would.
func fromKeyMaps(shards []map[string]*keyBucket, n1, n2 int) *Collection {
	c := NewCollection(n1, n2)
	total := 0
	for _, m := range shards {
		total += len(m)
	}
	c.Blocks = make([]Block, 0, total)
	for _, m := range shards {
		for key, b := range m {
			if len(b.e1) == 0 || len(b.e2) == 0 {
				continue
			}
			c.Blocks = append(c.Blocks, Block{Key: key, E1: b.e1, E2: b.e2})
		}
	}
	c.sortBlocks()
	return c
}

type keyBucket struct {
	e1, e2 []kb.EntityID
}

// Index maps every entity to the positions of the blocks that contain
// it, enabling candidate enumeration during matching.
type Index struct {
	ByE1 [][]int32 // entity of KB1 -> indices into Collection.Blocks
	ByE2 [][]int32
}

// BuildIndex constructs the entity-to-blocks index for the collection,
// sharded across GOMAXPROCS workers; see BuildIndexN.
func (c *Collection) BuildIndex() *Index {
	return c.BuildIndexN(0)
}

// BuildIndexN is BuildIndex with an explicit worker count (<= 0 selects
// GOMAXPROCS). Each worker indexes a contiguous block range into a
// partial index; per-entity lists are then concatenated in block-range
// order, so every list stays sorted by block position and the result is
// bit-identical at any worker count.
func (c *Collection) BuildIndexN(workers int) *Index {
	w := parallel.Workers(workers)
	if w > len(c.Blocks) {
		w = len(c.Blocks)
	}
	if w <= 1 {
		idx := &Index{
			ByE1: make([][]int32, c.n1),
			ByE2: make([][]int32, c.n2),
		}
		c.indexRange(idx, 0, len(c.Blocks))
		return idx
	}
	partials := make([]*Index, w)
	chunk := (len(c.Blocks) + w - 1) / w
	_ = parallel.For(context.Background(), w, w, func(worker, _, _ int) error {
		lo := worker * chunk
		if lo >= len(c.Blocks) {
			return nil
		}
		hi := lo + chunk
		if hi > len(c.Blocks) {
			hi = len(c.Blocks)
		}
		p := &Index{
			ByE1: make([][]int32, c.n1),
			ByE2: make([][]int32, c.n2),
		}
		c.indexRange(p, lo, hi)
		partials[worker] = p
		return nil
	})
	idx := &Index{
		ByE1: make([][]int32, c.n1),
		ByE2: make([][]int32, c.n2),
	}
	mergeIndexSide := func(out [][]int32, side func(*Index) [][]int32) {
		_ = parallel.For(context.Background(), len(out), w, func(_, start, end int) error {
			for e := start; e < end; e++ {
				total := 0
				for _, p := range partials {
					if p != nil {
						total += len(side(p)[e])
					}
				}
				if total == 0 {
					continue // keep nil, as the sequential path does
				}
				merged := make([]int32, 0, total)
				for _, p := range partials {
					if p != nil {
						merged = append(merged, side(p)[e]...)
					}
				}
				out[e] = merged
			}
			return nil
		})
	}
	mergeIndexSide(idx.ByE1, func(p *Index) [][]int32 { return p.ByE1 })
	mergeIndexSide(idx.ByE2, func(p *Index) [][]int32 { return p.ByE2 })
	return idx
}

// indexRange appends the block positions [lo,hi) to the index.
func (c *Collection) indexRange(idx *Index, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		b := &c.Blocks[bi]
		for _, e := range b.E1 {
			idx.ByE1[e] = append(idx.ByE1[e], int32(bi))
		}
		for _, e := range b.E2 {
			idx.ByE2[e] = append(idx.ByE2[e], int32(bi))
		}
	}
}

// Candidates1 returns the distinct KB2 entities co-occurring with e1 in
// any block, in ascending order.
func (c *Collection) Candidates1(idx *Index, e1 kb.EntityID) []kb.EntityID {
	return collectCandidates(idx.ByE1[e1], c.Blocks, false)
}

// Candidates2 returns the distinct KB1 entities co-occurring with e2 in
// any block, in ascending order.
func (c *Collection) Candidates2(idx *Index, e2 kb.EntityID) []kb.EntityID {
	return collectCandidates(idx.ByE2[e2], c.Blocks, true)
}

func collectCandidates(blockIDs []int32, blocks []Block, side1 bool) []kb.EntityID {
	if len(blockIDs) == 0 {
		return nil
	}
	seen := make(map[kb.EntityID]struct{})
	var out []kb.EntityID
	for _, bi := range blockIDs {
		members := blocks[bi].E2
		if side1 {
			members = blocks[bi].E1
		}
		for _, e := range members {
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindBlock locates the block with the given key by binary search
// (blocks are key-sorted) and returns its position, or -1 when absent.
func (c *Collection) FindBlock(key string) int32 {
	lo := sort.Search(len(c.Blocks), func(i int) bool { return c.Blocks[i].Key >= key })
	if lo < len(c.Blocks) && c.Blocks[lo].Key == key {
		return int32(lo)
	}
	return -1
}

// Union merges two collections over the same KB pair into one (keys are
// namespaced by collection to avoid accidental merging of distinct
// semantics, e.g. a name key equal to a token key). The inputs must
// have been built for the same KB sizes — a mismatched pair would
// carry entity IDs beyond the other KB's range and panic or silently
// drop members in BuildIndex — and member slices are copied, so the
// merged collection shares no storage with its inputs.
func Union(prefix1 string, a *Collection, prefix2 string, b *Collection) *Collection {
	if a.n1 != b.n1 || a.n2 != b.n2 {
		panic(fmt.Sprintf("blocking: Union over collections of mismatched KB sizes: (%d,%d) vs (%d,%d)",
			a.n1, a.n2, b.n1, b.n2))
	}
	out := NewCollection(a.n1, a.n2)
	out.Blocks = make([]Block, 0, len(a.Blocks)+len(b.Blocks))
	appendPrefixed := func(prefix string, blocks []Block) {
		for _, blk := range blocks {
			out.Blocks = append(out.Blocks, Block{
				Key: prefix + blk.Key,
				E1:  append([]kb.EntityID(nil), blk.E1...),
				E2:  append([]kb.EntityID(nil), blk.E2...),
			})
		}
	}
	appendPrefixed(prefix1, a.Blocks)
	appendPrefixed(prefix2, b.Blocks)
	out.sortBlocks()
	return out
}
