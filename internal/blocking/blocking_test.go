package blocking

import (
	"fmt"
	"math/rand"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

// kbFromValues builds a KB where entity i has one "name" literal.
func kbFromValues(t testing.TB, name string, values []string) *kb.KB {
	t.Helper()
	var triples []rdf.Triple
	for i, v := range values {
		triples = append(triples, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://%s/e%03d", name, i)),
			rdf.NewIRI("http://v/name"),
			rdf.NewLiteral(v),
		))
	}
	k, err := kb.FromTriples(name, triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func mustID(t testing.TB, k *kb.KB, uri string) kb.EntityID {
	t.Helper()
	id, ok := k.Lookup(uri)
	if !ok {
		t.Fatalf("entity %s not found", uri)
	}
	return id
}

func TestTokenBlocksBasic(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"alpha beta", "gamma"})
	kb2 := kbFromValues(t, "b", []string{"beta delta", "epsilon"})
	c := TokenBlocks(kb1, kb2)
	// Only "beta" is shared.
	if c.Size() != 1 {
		t.Fatalf("blocks = %d, want 1", c.Size())
	}
	b := c.Blocks[0]
	if b.Key != "beta" {
		t.Errorf("key = %q", b.Key)
	}
	if len(b.E1) != 1 || len(b.E2) != 1 {
		t.Errorf("block members = %d/%d", len(b.E1), len(b.E2))
	}
	if b.Comparisons() != 1 || b.Assignments() != 2 {
		t.Errorf("comparisons=%d assignments=%d", b.Comparisons(), b.Assignments())
	}
}

func TestTokenBlocksCompleteness(t *testing.T) {
	// Property: any cross-KB pair sharing at least one token co-occurs in
	// at least one block.
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"red", "green", "blue", "cyan", "magenta", "yellow", "black"}
	mkVals := func(n int) []string {
		vals := make([]string, n)
		for i := range vals {
			a := vocab[rng.Intn(len(vocab))]
			b := vocab[rng.Intn(len(vocab))]
			vals[i] = a + " " + b
		}
		return vals
	}
	kb1 := kbFromValues(t, "a", mkVals(30))
	kb2 := kbFromValues(t, "b", mkVals(30))
	c := TokenBlocks(kb1, kb2)
	idx := c.BuildIndex()
	for i := 0; i < kb1.Len(); i++ {
		e1 := kb.EntityID(i)
		cands := c.Candidates1(idx, e1)
		inCands := make(map[kb.EntityID]bool, len(cands))
		for _, e2 := range cands {
			inCands[e2] = true
		}
		toks1 := map[string]bool{}
		for _, tok := range kb1.Tokens(e1) {
			toks1[tok] = true
		}
		for j := 0; j < kb2.Len(); j++ {
			e2 := kb.EntityID(j)
			shares := false
			for _, tok := range kb2.Tokens(e2) {
				if toks1[tok] {
					shares = true
					break
				}
			}
			if shares && !inCands[e2] {
				t.Fatalf("pair (%d,%d) shares a token but is not blocked", e1, e2)
			}
			if !shares && inCands[e2] {
				t.Fatalf("pair (%d,%d) shares no token but is blocked", e1, e2)
			}
		}
	}
}

func TestNameBlocks(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"Joe's Diner", "Central Cafe"})
	kb2 := kbFromValues(t, "b", []string{"joe s diner", "Other Place"})
	c := NameBlocks(kb1, kb2, 2)
	if c.Size() != 1 {
		t.Fatalf("blocks = %d, want 1 (normalized name match)", c.Size())
	}
	if c.Blocks[0].Key != "joe s diner" {
		t.Errorf("key = %q", c.Blocks[0].Key)
	}
}

func TestNameBlocksUsesOnlyTopK(t *testing.T) {
	// Entity has a shared "comment" literal, but with k=1 only the most
	// important attribute (name, higher discriminability+support) is used.
	var triples1, triples2 []rdf.Triple
	add := func(ts *[]rdf.Triple, subj, pred, val string) {
		*ts = append(*ts, rdf.NewTriple(rdf.NewIRI(subj), rdf.NewIRI(pred), rdf.NewLiteral(val)))
	}
	for i := 0; i < 4; i++ {
		s := fmt.Sprintf("http://a/e%d", i)
		add(&triples1, s, "http://v/name", fmt.Sprintf("unique name %d", i))
		add(&triples1, s, "http://v/comment", "same comment")
	}
	for i := 0; i < 4; i++ {
		s := fmt.Sprintf("http://b/e%d", i)
		add(&triples2, s, "http://v/name", fmt.Sprintf("unique name %d", i))
		add(&triples2, s, "http://v/comment", "same comment")
	}
	kb1, err := kb.FromTriples("a", triples1)
	if err != nil {
		t.Fatal(err)
	}
	kb2, err := kb.FromTriples("b", triples2)
	if err != nil {
		t.Fatal(err)
	}
	c := NameBlocks(kb1, kb2, 1)
	for _, b := range c.Blocks {
		if b.Key == "same comment" {
			t.Error("low-importance attribute used as name with k=1")
		}
	}
	if c.Size() != 4 {
		t.Errorf("blocks = %d, want 4 unique-name blocks", c.Size())
	}
}

func TestCandidates(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"x y", "y z", "w"})
	kb2 := kbFromValues(t, "b", []string{"y", "z q", "w"})
	c := TokenBlocks(kb1, kb2)
	idx := c.BuildIndex()

	e0 := mustID(t, kb1, "http://a/e000")
	cands := c.Candidates1(idx, e0)
	// e0 has tokens {x,y}; KB2 entity 0 has y.
	if len(cands) != 1 || kb2.URI(cands[0]) != "http://b/e000" {
		t.Errorf("candidates of e0 = %v", cands)
	}

	b0 := mustID(t, kb2, "http://b/e000")
	rev := c.Candidates2(idx, b0)
	if len(rev) != 2 {
		t.Errorf("reverse candidates = %v, want 2 (both y-entities)", rev)
	}

	// Entity with no shared tokens has no candidates even though it has tokens.
	if got := c.Candidates1(idx, mustID(t, kb1, "http://a/e002")); len(got) != 1 {
		// "w" IS shared with b/e002.
		t.Errorf("candidates of w-entity = %v, want [b/e002]", got)
	}
}

func TestUnion(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"x", "y"})
	kb2 := kbFromValues(t, "b", []string{"x", "y"})
	tb := TokenBlocks(kb1, kb2)
	nb := NameBlocks(kb1, kb2, 1)
	u := Union("T:", tb, "N:", nb)
	if u.Size() != tb.Size()+nb.Size() {
		t.Fatalf("union size = %d", u.Size())
	}
	if u.Comparisons() != tb.Comparisons()+nb.Comparisons() {
		t.Errorf("union comparisons = %d", u.Comparisons())
	}
}

func TestPurgeRemovesStopwordBlocks(t *testing.T) {
	// 50 distinctive 1x1 blocks plus one stop-word block containing
	// every entity.
	n := 50
	v1 := make([]string, n)
	v2 := make([]string, n)
	for i := range v1 {
		v1[i] = fmt.Sprintf("unique%02d the", i)
		v2[i] = fmt.Sprintf("unique%02d the", i)
	}
	kb1 := kbFromValues(t, "a", v1)
	kb2 := kbFromValues(t, "b", v2)
	c := TokenBlocks(kb1, kb2)
	if c.Size() != n+1 {
		t.Fatalf("blocks = %d, want %d", c.Size(), n+1)
	}
	purged, res := Purge(c, DefaultPurgeConfig())
	if res.RemovedBlocks != 1 {
		t.Fatalf("removed %d blocks, want 1 (the stop-word block); result %+v", res.RemovedBlocks, res)
	}
	if purged.Size() != n {
		t.Errorf("remaining = %d, want %d", purged.Size(), n)
	}
	if res.RemovedComparisons != int64(n)*int64(n) {
		t.Errorf("removed comparisons = %d, want %d", res.RemovedComparisons, n*n)
	}
	for _, b := range purged.Blocks {
		if b.Key == "the" {
			t.Error("stop-word block survived purging")
		}
	}

	// The ratio-knee variant must also remove it.
	purgedR, resR := PurgeByRatio(c, DefaultSmoothing)
	if resR.RemovedBlocks == 0 {
		t.Error("PurgeByRatio kept the stop-word block")
	}
	if purgedR.Comparisons() > purged.Comparisons() {
		t.Error("PurgeByRatio should be at least as aggressive here")
	}
}

func TestPurgeKeepsUniformBlocks(t *testing.T) {
	// All blocks small and the same size: nothing to purge.
	v := []string{"a b", "c d", "e f"}
	kb1 := kbFromValues(t, "x", v)
	kb2 := kbFromValues(t, "y", v)
	c := TokenBlocks(kb1, kb2)
	purged, res := Purge(c, DefaultPurgeConfig())
	if res.RemovedBlocks != 0 || purged.Size() != c.Size() {
		t.Errorf("uniform blocks purged: %+v", res)
	}
	purgedR, resR := PurgeByRatio(c, DefaultSmoothing)
	if resR.RemovedBlocks != 0 || purgedR.Size() != c.Size() {
		t.Errorf("PurgeByRatio purged uniform blocks: %+v", resR)
	}
}

func TestPurgeEmpty(t *testing.T) {
	c := NewCollection(0, 0)
	purged, res := Purge(c, DefaultPurgeConfig())
	if purged.Size() != 0 || res.RemovedBlocks != 0 {
		t.Errorf("empty purge wrong: %+v", res)
	}
	purgedR, resR := PurgeByRatio(c, DefaultSmoothing)
	if purgedR.Size() != 0 || resR.RemovedBlocks != 0 {
		t.Errorf("empty ratio purge wrong: %+v", resR)
	}
}

func TestNoPurgeKeepsEverything(t *testing.T) {
	n := 40
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("unique%02d the", i)
	}
	kb1 := kbFromValues(t, "a", vals)
	kb2 := kbFromValues(t, "b", vals)
	c := TokenBlocks(kb1, kb2)
	purged, res := Purge(c, NoPurge())
	if res.RemovedBlocks != 0 || purged.Size() != c.Size() {
		t.Errorf("NoPurge removed blocks: %+v", res)
	}
}

func TestPurgeMonotone(t *testing.T) {
	// Property: both purging variants never increase comparisons, keep
	// the block accounting consistent, and leave all survivors within
	// the cutoffs.
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%02d", i)
	}
	mkVals := func(n int) []string {
		vals := make([]string, n)
		for i := range vals {
			k := 1 + rng.Intn(4)
			s := ""
			for j := 0; j < k; j++ {
				if j > 0 {
					s += " "
				}
				s += vocab[rng.Intn(len(vocab))]
			}
			vals[i] = s
		}
		return vals
	}
	kb1 := kbFromValues(t, "a", mkVals(60))
	kb2 := kbFromValues(t, "b", mkVals(60))
	c := TokenBlocks(kb1, kb2)

	cfg := PurgeConfig{EntityFraction: 0.05, MinEntities: 2}
	purged, res := Purge(c, cfg)
	if purged.Comparisons() > c.Comparisons() {
		t.Error("purging increased comparisons")
	}
	if purged.Size()+res.RemovedBlocks != c.Size() {
		t.Error("block accounting inconsistent")
	}
	for _, b := range purged.Blocks {
		if len(b.E1) > res.Cutoff1 || len(b.E2) > res.Cutoff2 {
			t.Errorf("block %q exceeds cutoffs %d/%d", b.Key, res.Cutoff1, res.Cutoff2)
		}
	}

	purgedR, resR := PurgeByRatio(c, DefaultSmoothing)
	if purgedR.Comparisons() > c.Comparisons() {
		t.Error("ratio purging increased comparisons")
	}
	if purgedR.Size()+resR.RemovedBlocks != c.Size() {
		t.Error("ratio block accounting inconsistent")
	}
}

func TestComputeStats(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"alpha", "beta", "gamma"})
	kb2 := kbFromValues(t, "b", []string{"alpha", "beta", "delta"})
	gt := eval.NewGroundTruth()
	for _, names := range [][2]string{{"http://a/e000", "http://b/e000"}, {"http://a/e001", "http://b/e001"}, {"http://a/e002", "http://b/e002"}} {
		if err := gt.Add(mustID(t, kb1, names[0]), mustID(t, kb2, names[1])); err != nil {
			t.Fatal(err)
		}
	}
	c := TokenBlocks(kb1, kb2)
	st := ComputeStats(c, gt)
	if st.Blocks != 2 {
		t.Errorf("blocks = %d, want 2", st.Blocks)
	}
	if st.Comparisons != 2 || st.DistinctComparisons != 2 {
		t.Errorf("comparisons = %d/%d, want 2/2", st.Comparisons, st.DistinctComparisons)
	}
	if st.PairsFound != 2 {
		t.Errorf("pairs found = %d, want 2 (gamma-delta pair unreachable)", st.PairsFound)
	}
	if want := 2.0 / 3.0; st.Recall != want {
		t.Errorf("recall = %f, want %f", st.Recall, want)
	}
	if st.Precision != 1.0 {
		t.Errorf("precision = %f, want 1", st.Precision)
	}
	if st.F1 <= 0 || st.F1 > 1 {
		t.Errorf("f1 = %f out of range", st.F1)
	}
}

func TestComputeStatsCountsDistinctOnce(t *testing.T) {
	// Same pair co-occurs in two token blocks; distinct count must be 1.
	kb1 := kbFromValues(t, "a", []string{"x y"})
	kb2 := kbFromValues(t, "b", []string{"x y"})
	gt := eval.NewGroundTruth()
	if err := gt.Add(0, 0); err != nil {
		t.Fatal(err)
	}
	c := TokenBlocks(kb1, kb2)
	st := ComputeStats(c, gt)
	if st.Comparisons != 2 {
		t.Errorf("raw comparisons = %d, want 2", st.Comparisons)
	}
	if st.DistinctComparisons != 1 {
		t.Errorf("distinct = %d, want 1", st.DistinctComparisons)
	}
	if st.PairsFound != 1 || st.Recall != 1 || st.Precision != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBlocksDeterministic(t *testing.T) {
	kb1 := kbFromValues(t, "a", []string{"m n o", "p q", "n p"})
	kb2 := kbFromValues(t, "b", []string{"n", "p o", "q m"})
	c1 := TokenBlocks(kb1, kb2)
	c2 := TokenBlocks(kb1, kb2)
	if c1.Size() != c2.Size() {
		t.Fatal("nondeterministic block count")
	}
	for i := range c1.Blocks {
		if c1.Blocks[i].Key != c2.Blocks[i].Key {
			t.Fatalf("block order differs at %d: %q vs %q", i, c1.Blocks[i].Key, c2.Blocks[i].Key)
		}
	}
}

func BenchmarkTokenBlocks(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := make([]string, 500)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%03d", i)
	}
	mkVals := func(n int) []string {
		vals := make([]string, n)
		for i := range vals {
			s := ""
			for j := 0; j < 10; j++ {
				if j > 0 {
					s += " "
				}
				s += vocab[rng.Intn(len(vocab))]
			}
			vals[i] = s
		}
		return vals
	}
	kb1 := kbFromValues(b, "a", mkVals(1000))
	kb2 := kbFromValues(b, "b", mkVals(1000))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TokenBlocks(kb1, kb2)
	}
}
