// Package dedup adapts the MinoanER machinery to dirty ER: finding
// duplicate descriptions inside a single KB (the setting of Dedoop [8]
// and classic record deduplication). The pipeline mirrors the
// clean-clean case — Token Blocking, frequency-based purging, ARCS
// value similarity — but compares entities of one KB against each
// other, and returns duplicate *clusters* (connected components of
// accepted pairs) rather than a 1-1 mapping.
package dedup

import (
	"math"
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Config tunes deduplication.
type Config struct {
	// Threshold is the minimum valueSim for two descriptions to count
	// as duplicates. The H2 rationale carries over: 1.0 means "a token
	// unique to the pair, or several infrequent shared tokens".
	Threshold float64
	// MaxTokenFraction purges tokens carried by more than this fraction
	// of the KB (stop-words), with MinTokenEntities as floor.
	MaxTokenFraction float64
	MinTokenEntities int
}

// DefaultConfig mirrors the clean-clean defaults.
func DefaultConfig() Config {
	return Config{Threshold: 1.0, MaxTokenFraction: 0.03, MinTokenEntities: 25}
}

// Pair is one accepted duplicate pair (A < B).
type Pair struct {
	A, B kb.EntityID
	Sim  float64
}

// Result holds the accepted pairs and their transitive clusters.
type Result struct {
	// Pairs are the accepted duplicate pairs sorted by (A, B).
	Pairs []Pair
	// Clusters are the connected components with at least two members,
	// each sorted, ordered by their smallest member.
	Clusters [][]kb.EntityID
}

// Run deduplicates the KB.
func Run(k *kb.KB, cfg Config) *Result {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1.0
	}
	cutoff := int(cfg.MaxTokenFraction * float64(k.Len()))
	if cutoff < cfg.MinTokenEntities {
		cutoff = cfg.MinTokenEntities
	}

	// Inverted index over tokens, skipping purged (stop-word) tokens.
	index := make(map[string][]kb.EntityID)
	for i := 0; i < k.Len(); i++ {
		id := kb.EntityID(i)
		for _, tok := range k.Tokens(id) {
			if k.EF(tok) > cutoff {
				continue
			}
			index[tok] = append(index[tok], id)
		}
	}

	// Accumulate valueSim per candidate pair. In the dirty setting a
	// token shared by a duplicate pair has EF >= 2 by construction, so
	// the clean-clean weight 1/log2(EF1·EF2+1) would never reach 1;
	// the dirty analogue weights by the token block's comparison count
	// ||b|| = EF·(EF-1)/2 instead: a token unique to one pair
	// contributes exactly 1, preserving the H2 threshold semantics.
	// Enumeration is per entity over its blocks, counting each
	// unordered pair once (A < B).
	sums := make([]float64, k.Len())
	touched := make([]kb.EntityID, 0, 64)
	var pairs []Pair
	for i := 0; i < k.Len(); i++ {
		a := kb.EntityID(i)
		for _, tok := range k.Tokens(a) {
			members, ok := index[tok]
			if !ok {
				continue
			}
			ef := float64(k.EF(tok))
			comparisons := ef * (ef - 1) / 2
			w := 1 / math.Log2(comparisons+1)
			for _, b := range members {
				if b <= a {
					continue
				}
				if sums[b] == 0 {
					touched = append(touched, b)
				}
				sums[b] += w
			}
		}
		for _, b := range touched {
			if sums[b] >= cfg.Threshold {
				pairs = append(pairs, Pair{A: a, B: b, Sim: sums[b]})
			}
			sums[b] = 0
		}
		touched = touched[:0]
	}
	eval.SortPairsBy(pairs, func(p Pair) eval.Pair { return eval.Pair{E1: p.A, E2: p.B} })

	return &Result{Pairs: pairs, Clusters: clusterize(pairs, k.Len())}
}

// clusterize builds the connected components of the accepted pairs.
func clusterize(pairs []Pair, n int) [][]kb.EntityID {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range pairs {
		ra, rb := find(int32(p.A)), find(int32(p.B))
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	byRoot := make(map[int32][]kb.EntityID)
	for _, p := range pairs {
		for _, e := range [2]kb.EntityID{p.A, p.B} {
			root := find(int32(e))
			members := byRoot[root]
			if len(members) == 0 || members[len(members)-1] != e {
				byRoot[root] = append(members, e)
			}
		}
	}
	out := make([][]kb.EntityID, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		members = dedupSorted(members)
		if len(members) >= 2 {
			out = append(out, members)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func dedupSorted(in []kb.EntityID) []kb.EntityID {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}
