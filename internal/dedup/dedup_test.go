package dedup

import (
	"fmt"
	"reflect"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/rdf"
)

func kbFromValues(t testing.TB, values []string) *kb.KB {
	t.Helper()
	var triples []rdf.Triple
	for i, v := range values {
		triples = append(triples, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://d/e%03d", i)),
			rdf.NewIRI("http://v/name"),
			rdf.NewLiteral(v),
		))
	}
	k, err := kb.FromTriples("dirty", triples)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRunFindsDuplicates(t *testing.T) {
	k := kbFromValues(t, []string{
		"joes diner downtown",  // e0
		"central cafe uptown",  // e1
		"joes diner down town", // e2: duplicate of e0
		"completely different", // e3
	})
	res := Run(k, DefaultConfig())
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	e0, _ := k.Lookup("http://d/e000")
	e2, _ := k.Lookup("http://d/e002")
	if !reflect.DeepEqual(res.Clusters[0], []kb.EntityID{e0, e2}) {
		t.Errorf("cluster = %v, want [%d %d]", res.Clusters[0], e0, e2)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Sim < 1 {
		t.Errorf("pairs = %v", res.Pairs)
	}
}

func TestRunTransitiveClusters(t *testing.T) {
	// e0~e1 and e1~e2 via distinct rare tokens; the cluster must merge
	// all three even though e0 and e2 share nothing.
	k := kbFromValues(t, []string{
		"uniqueab linkone",
		"linkone linktwo",
		"linktwo uniquecd",
		"unrelated entity",
	})
	res := Run(k, DefaultConfig())
	if len(res.Clusters) != 1 || len(res.Clusters[0]) != 3 {
		t.Fatalf("clusters = %v, want one 3-cluster", res.Clusters)
	}
}

func TestRunThreshold(t *testing.T) {
	k := kbFromValues(t, []string{
		"shared tokena",
		"shared tokenb",
		"shared tokenc",
	})
	// "shared" has EF 3 → block comparisons 3 → weight 1/2: below the
	// default threshold, so no duplicates.
	res := Run(k, DefaultConfig())
	if len(res.Pairs) != 0 {
		t.Errorf("sub-threshold pair accepted: %v", res.Pairs)
	}
	// A permissive threshold accepts all three pairs.
	cfg := DefaultConfig()
	cfg.Threshold = 0.3
	res = Run(k, cfg)
	if len(res.Pairs) != 3 {
		t.Errorf("pairs = %v", res.Pairs)
	}
}

func TestRunStopwordPurging(t *testing.T) {
	// 60 entities share the token "the" plus one unique token each;
	// without purging that is ~1800 candidate pairs. With it, none.
	values := make([]string, 60)
	for i := range values {
		values[i] = fmt.Sprintf("the unique%02d", i)
	}
	k := kbFromValues(t, values)
	res := Run(k, DefaultConfig())
	if len(res.Pairs) != 0 {
		t.Errorf("stop-word produced %d pairs", len(res.Pairs))
	}
}

func TestRunEmptyKB(t *testing.T) {
	k := kbFromValues(t, nil)
	res := Run(k, DefaultConfig())
	if len(res.Pairs) != 0 || len(res.Clusters) != 0 {
		t.Errorf("nonempty result on empty KB: %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	values := []string{
		"alpha beta gamma", "alpha beta gamma x", "delta epsilon",
		"delta epsilon y", "zeta eta theta",
	}
	k := kbFromValues(t, values)
	a := Run(k, DefaultConfig())
	b := Run(k, DefaultConfig())
	if !reflect.DeepEqual(a, b) {
		t.Error("nondeterministic dedup")
	}
}

func BenchmarkDedup(b *testing.B) {
	values := make([]string, 2000)
	for i := range values {
		values[i] = fmt.Sprintf("entity number %04d with words w%d w%d", i, i%97, i%53)
	}
	k := kbFromValues(b, values)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(k, DefaultConfig())
	}
}
