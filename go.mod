module minoaner

go 1.24
