package minoaner_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"minoaner"
)

// snapshotBytes serializes an index (the replica-convergence oracle:
// bit-identical snapshots mean bit-identical state).
func snapshotBytes(t *testing.T, ix *minoaner.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertConverged asserts the replica is bit-for-bit the primary:
// matches, stats, and the saved snapshot all identical.
func assertConverged(t *testing.T, label string, primary, replica *minoaner.Index) {
	t.Helper()
	if pe, re := primary.Epoch(), replica.Epoch(); pe != re {
		t.Fatalf("%s: epochs diverge: primary %d, replica %d", label, pe, re)
	}
	if !reflect.DeepEqual(primary.Matches(), replica.Matches()) {
		t.Fatalf("%s: matches diverge", label)
	}
	if ps, rs := primary.Stats(), replica.Stats(); ps != rs {
		t.Fatalf("%s: stats diverge:\nprimary %+v\nreplica %+v", label, ps, rs)
	}
	pb, rb := snapshotBytes(t, primary), snapshotBytes(t, replica)
	if !bytes.Equal(pb, rb) {
		t.Fatalf("%s: snapshots not bit-identical (%d vs %d bytes)", label, len(pb), len(rb))
	}
}

// TestJournalCarriesDelta: upsert entries must record the full delta
// payload (the bug this PR fixes — subjects alone cannot be replayed);
// delete entries stay payload-free.
func TestJournalCarriesDelta(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 17, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 6; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}
	journal := ix.Journal()
	if len(journal) == 0 {
		t.Fatal("no journal entries after mutations")
	}
	upserts := 0
	for _, je := range journal {
		switch je.Op {
		case minoaner.JournalUpsert:
			upserts++
			if len(je.Delta) == 0 {
				t.Fatalf("epoch %d: upsert entry has no delta payload", je.Seq)
			}
			if len(je.Delta) != je.Triples {
				t.Fatalf("epoch %d: %d delta lines for %d triples", je.Seq, len(je.Delta), je.Triples)
			}
			for _, line := range je.Delta {
				if !strings.HasSuffix(strings.TrimSpace(line), ".") {
					t.Fatalf("epoch %d: delta line not N-Triples: %q", je.Seq, line)
				}
			}
		case minoaner.JournalDelete:
			if len(je.Delta) != 0 {
				t.Fatalf("epoch %d: delete entry carries a delta payload", je.Seq)
			}
		}
	}
	if upserts == 0 {
		t.Fatal("storm produced no upserts")
	}
}

// TestReplayRebuildEquivalence is the tentpole invariant: a replica
// bootstrapped from the primary's epoch-0 snapshot and fed the journal
// through Replay converges to the primary bit-for-bit — matches,
// stats, and snapshot bytes — on all four benchmarks.
func TestReplayRebuildEquivalence(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := minoaner.GenerateBenchmark(name, 42, 0.08)
			if err != nil {
				t.Fatal(err)
			}
			primary, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			base := snapshotBytes(t, primary)

			d1 := docFromKB(t, b.WriteKB1)
			d2 := docFromKB(t, b.WriteKB2)
			rng := rand.New(rand.NewSource(99))
			applied := 0
			for round := 0; applied < 8 && round < 24; round++ {
				side, doc, cur := 2, d2, primary.KB2()
				if rng.Intn(3) == 0 {
					side, doc, cur = 1, d1, primary.KB1()
				}
				if mutationStep(t, rng, primary, side, doc, cur, round) {
					applied++
				}
			}

			replica, err := minoaner.LoadIndex(bytes.NewReader(base))
			if err != nil {
				t.Fatal(err)
			}
			n, err := replica.Replay(context.Background(), primary.Journal())
			if err != nil {
				t.Fatal(err)
			}
			if n != int(primary.Epoch()) {
				t.Fatalf("replayed %d entries, want %d", n, primary.Epoch())
			}
			assertConverged(t, name, primary, replica)

			// Replay is idempotent: feeding the same journal again is a
			// no-op, not a divergence.
			if n, err := replica.Replay(context.Background(), primary.Journal()); err != nil || n != 0 {
				t.Fatalf("second replay applied %d entries, err %v", n, err)
			}
		})
	}
}

// TestReplayRejectsGapsAndStrippedDeltas: entries that jump epochs or
// upserts without a payload (a journal from before the replayable
// format) are typed journal-truncation errors — the replica's signal
// to resync from a snapshot.
func TestReplayRejectsGapsAndStrippedDeltas(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 21, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	primary, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := snapshotBytes(t, primary)
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 4; round++ {
		mutationStep(t, rng, primary, 2, d2, primary.KB2(), round)
	}
	journal := primary.Journal()
	if len(journal) < 2 {
		t.Fatalf("want >= 2 journal entries, got %d", len(journal))
	}

	replica, err := minoaner.LoadIndex(bytes.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Replay(context.Background(), journal[1:]); !errors.Is(err, minoaner.ErrJournalTruncated) {
		t.Fatalf("gap replay err = %v, want ErrJournalTruncated", err)
	}

	var firstUpsert int
	for i, je := range journal {
		if je.Op == minoaner.JournalUpsert {
			firstUpsert = i
			break
		}
	}
	stripped := append([]minoaner.JournalEntry(nil), journal...)
	stripped[firstUpsert].Delta = nil
	if _, err := replica.Replay(context.Background(), stripped); !errors.Is(err, minoaner.ErrJournalTruncated) {
		t.Fatalf("stripped-delta replay err = %v, want ErrJournalTruncated", err)
	}
}

// TestJournalSince pins the cursor protocol: (base, epoch] coverage,
// empty tails at or past the head, and a typed truncation error once
// Compact has dropped the cursor.
func TestJournalSince(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 29, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 5; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}
	epoch := ix.Epoch()

	full, err := ix.JournalSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Epoch != epoch || !reflect.DeepEqual(full.Entries, ix.Journal()) {
		t.Fatal("JournalSince(0) is not the full journal")
	}
	mid, err := ix.JournalSince(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Entries) != int(epoch)-2 || mid.Entries[0].Seq != 3 {
		t.Fatalf("JournalSince(2): %d entries starting at %d", len(mid.Entries), mid.Entries[0].Seq)
	}
	for _, since := range []uint64{epoch, epoch + 5} {
		tail, err := ix.JournalSince(since)
		if err != nil || len(tail.Entries) != 0 {
			t.Fatalf("JournalSince(%d): %d entries, err %v", since, len(tail.Entries), err)
		}
	}

	ix.Compact()
	if _, err := ix.JournalSince(0); !errors.Is(err, minoaner.ErrJournalTruncated) {
		t.Fatalf("post-compact JournalSince(0) err = %v, want ErrJournalTruncated", err)
	}
	if tail, err := ix.JournalSince(epoch); err != nil || tail.Compactions != 1 {
		t.Fatalf("post-compact JournalSince(epoch): compactions %d, err %v", tail.Compactions, err)
	}
}

// TestServeJournalAndSnapshotEndpoints: /journal streams the NDJSON
// tail with cursor headers and answers 410 Gone past a compaction;
// /snapshot serves the exact SaveIndex bytes.
func TestServeJournalAndSnapshotEndpoints(t *testing.T) {
	_, ix, srv, _, d2 := newMutableServer(t)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 4; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}

	resp, err := http.Get(srv.URL + fmt.Sprintf("/journal?since=%d", 1))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/journal status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("/journal content type %q", got)
	}
	if got := resp.Header.Get("X-Minoaner-Epoch"); got != fmt.Sprint(ix.Epoch()) {
		t.Fatalf("X-Minoaner-Epoch %q, want %d", got, ix.Epoch())
	}
	if got := resp.Header.Get("X-Minoaner-Compactions"); got != "0" {
		t.Fatalf("X-Minoaner-Compactions %q, want 0", got)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	want := ix.Journal()[1:]
	if len(lines) != len(want) {
		t.Fatalf("%d NDJSON lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		var rec struct {
			Seq      uint64   `json:"seq"`
			Op       string   `json:"op"`
			Subjects []string `json:"subjects"`
			Delta    []string `json:"delta"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Seq != want[i].Seq || !reflect.DeepEqual(rec.Subjects, want[i].Subjects) {
			t.Fatalf("line %d does not match journal entry %+v", i, want[i])
		}
		if want[i].Op == minoaner.JournalUpsert && !reflect.DeepEqual(rec.Delta, want[i].Delta) {
			t.Fatalf("line %d delta does not match journal entry", i)
		}
	}

	if resp, err := http.Get(srv.URL + "/journal?since=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad cursor status %d, want 400", resp.StatusCode)
		}
	}

	snap, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snapBody, _ := io.ReadAll(snap.Body)
	snap.Body.Close()
	if snap.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot status %d", snap.StatusCode)
	}
	if !bytes.Equal(snapBody, snapshotBytes(t, ix)) {
		t.Fatal("/snapshot bytes differ from SaveIndex")
	}

	ix.Compact()
	gone, err := http.Get(srv.URL + "/journal?since=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, gone.Body)
	gone.Body.Close()
	if gone.StatusCode != http.StatusGone {
		t.Fatalf("post-compact /journal status %d, want 410", gone.StatusCode)
	}
	if got := gone.Header.Get("X-Minoaner-Compactions"); got != "1" {
		t.Fatalf("post-compact X-Minoaner-Compactions %q, want 1", got)
	}
}

// waitForReplica polls until cond holds or the deadline passes.
func waitForReplica(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaFollowsPrimary: a Replica bootstraps over HTTP, tails the
// journal, and converges bit-for-bit with the primary after each batch
// of mutations.
func TestReplicaFollowsPrimary(t *testing.T) {
	_, primary, srv, _, d2 := newMutableServer(t)
	rep, err := minoaner.NewReplica(srv.URL,
		minoaner.WithReplicaClient(srv.Client()),
		minoaner.WithReplicaPoll(2*time.Millisecond),
		minoaner.WithReplicaJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	})

	waitForReplica(t, "bootstrap", func() bool { return rep.Index() != nil })
	rng := rand.New(rand.NewSource(12))
	for round := 0; round < 6; round++ {
		mutationStep(t, rng, primary, 2, d2, primary.KB2(), round)
	}
	target := primary.Epoch()
	waitForReplica(t, "catch-up", func() bool { return rep.Index().Epoch() >= target })
	assertConverged(t, "tailing", primary, rep.Index())

	st := rep.Status()
	if st.Lag != 0 || st.PrimaryEpoch != target || st.Applied < int64(target) {
		t.Fatalf("status after catch-up: %+v", st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("bootstrap counted as a resync: %+v", st)
	}
}

// TestReplicaStormWithCompactResync is the ISSUE's mutation storm:
// random upserts and deletes on the primary while a replica tails it,
// with a mid-storm Compact forcing the replica through the
// truncation/resync path. The replica must report the resync and end
// bit-for-bit identical to the primary. Run under -race.
func TestReplicaStormWithCompactResync(t *testing.T) {
	_, primary, srv, d1, d2 := newMutableServer(t)
	rep, err := minoaner.NewReplica(srv.URL,
		minoaner.WithReplicaClient(srv.Client()),
		minoaner.WithReplicaPoll(2*time.Millisecond),
		minoaner.WithReplicaBackoffMax(20*time.Millisecond),
		minoaner.WithReplicaJitterSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	waitForReplica(t, "bootstrap", func() bool { return rep.Index() != nil })

	// Serve the replica's index over HTTP throughout the storm — reads
	// must survive resyncs without a hiccup.
	repSrv := httptest.NewServer(minoaner.NewServer(rep.Index(), minoaner.WithReplica(rep)))
	t.Cleanup(repSrv.Close)

	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 16; round++ {
		side, doc, cur := 2, d2, primary.KB2()
		if rng.Intn(3) == 0 {
			side, doc, cur = 1, d1, primary.KB1()
		}
		mutationStep(t, rng, primary, side, doc, cur, round)
		if round == 7 {
			// Let the replica catch up, then compact: its next poll
			// sees the moved compaction counter and must resync even
			// though its cursor is still within the (empty) journal.
			target := primary.Epoch()
			waitForReplica(t, "pre-compact catch-up", func() bool { return rep.Index().Epoch() >= target })
			primary.Compact()
		}
		if round%5 == 0 {
			if resp, err := srv.Client().Get(repSrv.URL + "/stats"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}

	target := primary.Epoch()
	waitForReplica(t, "post-storm convergence", func() bool {
		return rep.Index().Epoch() == target && rep.Status().Resyncs >= 1
	})
	assertConverged(t, "post-storm", primary, rep.Index())
	if st := rep.Status(); st.Resyncs < 1 {
		t.Fatalf("compaction did not force a resync: %+v", st)
	}

	// The replica's /metrics advertises zero lag and the resync count.
	resp, err := srv.Client().Get(repSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"minoaner_replica_lag_epochs 0\n",
		"minoaner_replica_primary_epoch " + fmt.Sprint(target),
		"minoaner_replica_resyncs_total",
		"minoaner_replica_entries_applied_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("replica /metrics missing %q:\n%s", want, metrics)
		}
	}

	// And /stats exposes the replication object.
	sresp, err := srv.Client().Get(repSrv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Replica *struct {
			Primary      string `json:"primary"`
			PrimaryEpoch uint64 `json:"primary_epoch"`
			LagEpochs    uint64 `json:"lag_epochs"`
			Resyncs      int64  `json:"resyncs"`
		} `json:"replica"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Replica == nil || stats.Replica.Resyncs < 1 || stats.Replica.LagEpochs != 0 {
		t.Fatalf("replica /stats: %+v", stats.Replica)
	}

	// Final cross-check through the serving layer: identical /resolve
	// answers from primary and replica.
	uris := append(primary.KB1().URIs()[:5:5], primary.KB2().URIs()[:5]...)
	if p, r := resolveBody(t, srv.URL, uris), resolveBody(t, repSrv.URL, uris); p != r {
		t.Fatalf("/resolve diverges:\nprimary: %s\nreplica: %s", p, r)
	}
}

// TestNewReplicaValidation rejects URLs a replica cannot tail.
func TestNewReplicaValidation(t *testing.T) {
	for _, bad := range []string{"", "ftp://x", "http://", "://nope", "not a url\x7f"} {
		if _, err := minoaner.NewReplica(bad); err == nil {
			t.Errorf("NewReplica(%q) accepted", bad)
		}
	}
	if _, err := minoaner.NewReplica("http://primary:8080/"); err != nil {
		t.Errorf("NewReplica rejected a valid URL: %v", err)
	}
}
