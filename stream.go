package minoaner

import (
	"context"
	"fmt"

	"minoaner/internal/core"
	"minoaner/internal/pipeline"
)

// Anytime resolution: ResolveStream (and Index.QueryKBStream) turn
// matching into a streaming computation that emits each confirmed pair
// the moment heuristics H1–H4 agree on it, in decreasing pair quality.
// Time-to-first-match is bounded by the cheap blocking prefix rather
// than KB size, and a budget — max pairs, max comparisons, or a
// context deadline — truncates the stream to a deterministic prefix of
// the quality order. Draining an unbudgeted stream yields exactly the
// match set Resolve reports for the same inputs.

// ScoredPair is one confirmed match of a streaming resolution.
type ScoredPair struct {
	// URI1 and URI2 identify the matched entities (first and second KB).
	URI1 string
	URI2 string
	// Score orders the stream: emitted scores never increase. The
	// integer part is the heuristic tier (name matches score highest,
	// then values, then rank aggregation); the fraction ranks pairs
	// within a tier by their schedule position.
	Score float64
	// Heuristic names the proposing heuristic: "name" (H1), "value"
	// (H2), or "rank" (H3). Reciprocity (H4) filters, it never proposes.
	Heuristic string
}

// StreamStrategy selects the pair-quality scheduler of a streaming
// resolution. Both strategies surface the pairs with the rarest shared
// evidence first; they differ in how block weights become a visit
// order.
type StreamStrategy int

const (
	// WeightOrdered visits entities by the ARCS weight of their rarest
	// shared token block, descending — comparison scheduling à la
	// progressive meta-blocking. The default.
	WeightOrdered StreamStrategy = iota
	// BlockRoundRobin walks the token blocks in decreasing ARCS weight
	// and takes one yet-unseen entity from each per round — the
	// block-centric scheduling variant.
	BlockRoundRobin
)

// StreamOption customizes one ResolveStream (or QueryKBStream) run.
type StreamOption func(*streamOptions)

type streamOptions struct {
	maxPairs       int
	maxComparisons int64
	strategy       StreamStrategy
}

// WithMaxPairs stops the stream after n emitted pairs (n <= 0 means
// unlimited). The emitted pairs are always the first n of the
// unbudgeted stream.
func WithMaxPairs(n int) StreamOption {
	return func(o *streamOptions) { o.maxPairs = n }
}

// WithMaxComparisons stops the stream once the lazy candidate scoring
// has accumulated n entity-entity contributions (n <= 0 means
// unlimited). The cut point is deterministic: the same budget always
// yields the same prefix.
func WithMaxComparisons(n int64) StreamOption {
	return func(o *streamOptions) { o.maxComparisons = n }
}

// WithStreamStrategy selects the pair-quality scheduler.
func WithStreamStrategy(s StreamStrategy) StreamOption {
	return func(o *streamOptions) { o.strategy = s }
}

// heuristicName maps the pipeline's heuristic tags onto the public
// wire names (matching Result.ByName/ByValue/ByRank).
func heuristicName(h uint8) string {
	switch h {
	case 1:
		return "name"
	case 2:
		return "value"
	case 3:
		return "rank"
	}
	return fmt.Sprintf("h%d", h)
}

// ResolveStream runs the MinoanER matching process as an anytime
// computation: the returned channel yields each confirmed match the
// moment H1–H4 agree on it, best pairs first, and closes when the
// stream is drained, a budget is reached, or ctx is cancelled (a
// deadline on ctx is the wall-clock budget). Configuration errors are
// reported synchronously, before any work starts.
//
// Draining the channel with no budget yields exactly the matches
// Resolve reports for the same inputs — streaming changes the order
// and the latency to the first pair, never the result. The emission
// order is deterministic for a given strategy.
//
// The caller must either drain the channel or cancel ctx; abandoning
// the channel with a live context leaks the resolving goroutine.
func ResolveStream(ctx context.Context, kb1, kb2 *KB, cfg Config, opts ...StreamOption) (<-chan ScoredPair, error) {
	var o streamOptions
	for _, opt := range opts {
		opt(&o)
	}
	ccfg := cfg.internal()
	ccfg.Strategy = pipeline.StreamStrategy(o.strategy)
	if err := ccfg.Validate(); err != nil {
		return nil, err
	}
	budget := pipeline.StreamBudget{MaxPairs: o.maxPairs, MaxComparisons: o.maxComparisons}
	ch := make(chan ScoredPair)
	go func() {
		defer close(ch)
		// Budget expiry and cancellation both surface as a closed
		// channel: an anytime consumer keeps every pair received so far.
		_ = core.RunStream(ctx, kb1.kb, kb2.kb, ccfg, budget, func(sp pipeline.ScoredPair) bool {
			out := ScoredPair{
				URI1:      kb1.kb.URI(sp.Pair.E1),
				URI2:      kb2.kb.URI(sp.Pair.E2),
				Score:     sp.Score,
				Heuristic: heuristicName(sp.Heuristic),
			}
			select {
			case ch <- out:
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	return ch, nil
}

// QueryKBStream resolves a delta KB against the index's first KB as an
// anytime stream (the streaming counterpart of QueryKB): confirmed
// matches arrive best-first on the returned channel, under the same
// budget and strategy options as ResolveStream. Draining it unbudgeted
// yields exactly QueryKB's match set for the same delta. The call
// answers from one epoch; concurrent mutations never tear it.
func (ix *Index) QueryKBStream(ctx context.Context, delta *KB, opts ...StreamOption) (<-chan ScoredPair, error) {
	e := ix.cur.Load()
	if err := e.materializeKB1(); err != nil {
		return nil, err
	}
	return ResolveStream(ctx, e.kb1, delta, e.cfg, opts...)
}

// materializeKB2 forces KB2's full tier — what full-pair streaming
// reads. A nil check on eager indexes.
func (e *epoch) materializeKB2() error {
	if err := e.kb2.kb.Materialize(); err != nil {
		return fmt.Errorf("%w: kb2: %v", ErrSnapshotCorrupt, err)
	}
	return nil
}
